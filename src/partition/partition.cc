#include "partition/partition.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/check.h"
#include "common/rng.h"

namespace sgnn::partition {

using graph::CsrGraph;
using graph::NodeId;

PartitionQuality EvaluatePartition(const CsrGraph& graph,
                                   const Partition& partition) {
  SGNN_CHECK_EQ(partition.part_of.size(),
                static_cast<size_t>(graph.num_nodes()));
  SGNN_CHECK_GT(partition.k, 0);
  PartitionQuality q;
  int64_t cut_directed = 0;
  std::vector<int64_t> sizes(static_cast<size_t>(partition.k), 0);
  std::unordered_set<int> remote;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const int pu = partition.part_of[u];
    SGNN_CHECK(pu >= 0 && pu < partition.k);
    sizes[static_cast<size_t>(pu)]++;
    remote.clear();
    for (NodeId v : graph.Neighbors(u)) {
      const int pv = partition.part_of[v];
      if (pv != pu) {
        ++cut_directed;
        remote.insert(pv);
      }
    }
    q.comm_volume += static_cast<int64_t>(remote.size());
  }
  q.edge_cut = cut_directed / 2;
  const double avg =
      static_cast<double>(graph.num_nodes()) / partition.k;
  const int64_t max_size = *std::max_element(sizes.begin(), sizes.end());
  q.imbalance = avg > 0.0 ? static_cast<double>(max_size) / avg : 0.0;
  return q;
}

Partition RandomPartition(const CsrGraph& graph, int k, uint64_t seed) {
  SGNN_CHECK_GT(k, 0);
  common::Rng rng(seed);
  Partition p;
  p.k = k;
  p.part_of.resize(graph.num_nodes());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    p.part_of[u] = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(k)));
  }
  return p;
}

namespace {

std::vector<NodeId> RandomOrder(NodeId n, common::Rng* rng) {
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  return order;
}

/// Counts already-placed neighbours of u per part into `scratch` (sized k,
/// zeroed on entry and re-zeroed before return for reuse).
void NeighborCounts(const CsrGraph& graph, const std::vector<int>& part_of,
                    NodeId u, std::vector<double>* scratch,
                    std::vector<int>* touched) {
  touched->clear();
  for (NodeId v : graph.Neighbors(u)) {
    const int pv = part_of[v];
    if (pv < 0) continue;
    if ((*scratch)[static_cast<size_t>(pv)] == 0.0) touched->push_back(pv);
    (*scratch)[static_cast<size_t>(pv)] += 1.0;
  }
}

}  // namespace

Partition LdgPartition(const CsrGraph& graph, int k, double slack,
                       uint64_t seed) {
  SGNN_CHECK_GT(k, 0);
  SGNN_CHECK_GE(slack, 1.0);
  common::Rng rng(seed);
  const double capacity =
      slack * static_cast<double>(graph.num_nodes()) / k;
  Partition p;
  p.k = k;
  p.part_of.assign(graph.num_nodes(), -1);
  std::vector<int64_t> sizes(static_cast<size_t>(k), 0);
  std::vector<double> counts(static_cast<size_t>(k), 0.0);
  std::vector<int> touched;
  for (NodeId u : RandomOrder(graph.num_nodes(), &rng)) {
    NeighborCounts(graph, p.part_of, u, &counts, &touched);
    int best = -1;
    double best_score = -1.0;
    for (int part = 0; part < k; ++part) {
      if (static_cast<double>(sizes[static_cast<size_t>(part)]) >= capacity) {
        continue;
      }
      const double fullness =
          1.0 - static_cast<double>(sizes[static_cast<size_t>(part)]) / capacity;
      const double score = counts[static_cast<size_t>(part)] * fullness;
      if (score > best_score) {
        best_score = score;
        best = part;
      }
    }
    if (best == -1) {
      // All parts at capacity (possible with slack == 1 and rounding):
      // place on the smallest.
      best = static_cast<int>(std::min_element(sizes.begin(), sizes.end()) -
                              sizes.begin());
    }
    p.part_of[u] = best;
    sizes[static_cast<size_t>(best)]++;
    for (int t : touched) counts[static_cast<size_t>(t)] = 0.0;
  }
  return p;
}

Partition FennelPartition(const CsrGraph& graph, int k, double gamma,
                          uint64_t seed) {
  SGNN_CHECK_GT(k, 0);
  SGNN_CHECK_GT(gamma, 1.0);
  common::Rng rng(seed);
  const double n = static_cast<double>(graph.num_nodes());
  const double m = static_cast<double>(graph.num_edges()) / 2.0;
  const double alpha =
      m * std::pow(static_cast<double>(k), gamma - 1.0) / std::pow(n, gamma);
  // Fennel's hard balance cap.
  const double capacity = 1.1 * n / k + 1.0;
  Partition p;
  p.k = k;
  p.part_of.assign(graph.num_nodes(), -1);
  std::vector<int64_t> sizes(static_cast<size_t>(k), 0);
  std::vector<double> counts(static_cast<size_t>(k), 0.0);
  std::vector<int> touched;
  for (NodeId u : RandomOrder(graph.num_nodes(), &rng)) {
    NeighborCounts(graph, p.part_of, u, &counts, &touched);
    int best = -1;
    double best_score = 0.0;
    for (int part = 0; part < k; ++part) {
      const double size =
          static_cast<double>(sizes[static_cast<size_t>(part)]);
      if (size >= capacity) continue;
      const double score = counts[static_cast<size_t>(part)] -
                           alpha * gamma * std::pow(size, gamma - 1.0);
      if (best == -1 || score > best_score) {
        best_score = score;
        best = part;
      }
    }
    if (best == -1) {
      best = static_cast<int>(std::min_element(sizes.begin(), sizes.end()) -
                              sizes.begin());
    }
    p.part_of[u] = best;
    sizes[static_cast<size_t>(best)]++;
    for (int t : touched) counts[static_cast<size_t>(t)] = 0.0;
  }
  return p;
}

namespace {

/// One coarsening level produced by heavy-edge matching.
struct CoarseLevel {
  CsrGraph graph;                  ///< Coarse graph with summed edge weights.
  std::vector<NodeId> coarse_of;   ///< Fine node -> coarse node.
  std::vector<int64_t> node_weight;  ///< Coarse node -> merged fine count.
};

CoarseLevel CoarsenOnce(const CsrGraph& graph,
                        const std::vector<int64_t>& node_weight,
                        common::Rng* rng) {
  const NodeId n = graph.num_nodes();
  std::vector<NodeId> match(n, graph::kInvalidNode);
  for (NodeId u : RandomOrder(n, rng)) {
    if (match[u] != graph::kInvalidNode) continue;
    // Heaviest unmatched neighbour.
    NodeId best = graph::kInvalidNode;
    float best_w = -1.0f;
    auto nbrs = graph.Neighbors(u);
    auto ws = graph.Weights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId v = nbrs[i];
      if (v == u || match[v] != graph::kInvalidNode) continue;
      if (ws[i] > best_w) {
        best_w = ws[i];
        best = v;
      }
    }
    if (best == graph::kInvalidNode) {
      match[u] = u;  // Stays single.
    } else {
      match[u] = best;
      match[best] = u;
    }
  }
  CoarseLevel level;
  level.coarse_of.assign(n, graph::kInvalidNode);
  NodeId next = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (level.coarse_of[u] != graph::kInvalidNode) continue;
    level.coarse_of[u] = next;
    const NodeId mate = match[u];
    if (mate != u && mate != graph::kInvalidNode) level.coarse_of[mate] = next;
    ++next;
  }
  level.node_weight.assign(next, 0);
  for (NodeId u = 0; u < n; ++u) {
    level.node_weight[level.coarse_of[u]] += node_weight[u];
  }
  graph::EdgeListBuilder builder(next);
  for (NodeId u = 0; u < n; ++u) {
    const NodeId cu = level.coarse_of[u];
    auto nbrs = graph.Neighbors(u);
    auto ws = graph.Weights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId cv = level.coarse_of[nbrs[i]];
      if (cu == cv) continue;
      builder.AddEdge(cu, cv, ws[i]);
    }
  }
  builder.Deduplicate();  // Sums parallel weights.
  level.graph = CsrGraph::FromBuilder(std::move(builder));
  return level;
}

/// Weight-aware initial partition of the coarsest graph: grows each part
/// by BFS from a high-degree seed until it reaches the weight target, so
/// parts start contiguous and balanced before refinement.
std::vector<int> GrowInitialPartition(const CsrGraph& graph,
                                      const std::vector<int64_t>& node_weight,
                                      int k) {
  const NodeId n = graph.num_nodes();
  int64_t total_weight = 0;
  for (int64_t w : node_weight) total_weight += w;
  const double target = static_cast<double>(total_weight) / k;

  std::vector<int> part_of(n, -1);
  std::vector<NodeId> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::sort(by_degree.begin(), by_degree.end(), [&graph](NodeId a, NodeId b) {
    return graph.OutDegree(a) > graph.OutDegree(b);
  });

  size_t seed_cursor = 0;
  for (int part = 0; part < k; ++part) {
    double weight = 0.0;
    std::vector<NodeId> frontier;
    while (weight < target) {
      if (frontier.empty()) {
        while (seed_cursor < by_degree.size() &&
               part_of[by_degree[seed_cursor]] != -1) {
          ++seed_cursor;
        }
        if (seed_cursor >= by_degree.size()) break;  // Everything assigned.
        frontier.push_back(by_degree[seed_cursor]);
        part_of[by_degree[seed_cursor]] = part;
        weight += static_cast<double>(node_weight[by_degree[seed_cursor]]);
      }
      std::vector<NodeId> next;
      for (NodeId u : frontier) {
        for (NodeId v : graph.Neighbors(u)) {
          if (part_of[v] != -1 || weight >= target) continue;
          part_of[v] = part;
          weight += static_cast<double>(node_weight[v]);
          next.push_back(v);
        }
      }
      if (next.empty() && weight < target) {
        frontier.clear();  // Region exhausted: reseed.
      } else {
        frontier = std::move(next);
      }
    }
  }
  // Any stragglers go to the last part (refinement rebalances).
  for (NodeId u = 0; u < n; ++u) {
    if (part_of[u] == -1) part_of[u] = k - 1;
  }
  return part_of;
}

/// Greedy boundary refinement: move nodes to the neighbouring part with
/// the largest cut gain while respecting the weighted balance cap.
void RefineLevel(const CsrGraph& graph, const std::vector<int64_t>& node_weight,
                 int k, double max_imbalance, int passes,
                 std::vector<int>* part_of) {
  const NodeId n = graph.num_nodes();
  int64_t total_weight = 0;
  std::vector<int64_t> part_weight(static_cast<size_t>(k), 0);
  for (NodeId u = 0; u < n; ++u) {
    part_weight[static_cast<size_t>((*part_of)[u])] += node_weight[u];
    total_weight += node_weight[u];
  }
  const double cap = max_imbalance * static_cast<double>(total_weight) / k;
  std::vector<double> gain(static_cast<size_t>(k), 0.0);
  std::vector<int> touched;
  for (int pass = 0; pass < passes; ++pass) {
    bool moved = false;
    for (NodeId u = 0; u < n; ++u) {
      const int pu = (*part_of)[u];
      touched.clear();
      double internal = 0.0;
      auto nbrs = graph.Neighbors(u);
      auto ws = graph.Weights(u);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        const int pv = (*part_of)[nbrs[i]];
        if (pv == pu) {
          internal += ws[i];
          continue;
        }
        if (gain[static_cast<size_t>(pv)] == 0.0) touched.push_back(pv);
        gain[static_cast<size_t>(pv)] += ws[i];
      }
      int best = -1;
      double best_gain = 0.0;
      for (int t : touched) {
        const double g = gain[static_cast<size_t>(t)] - internal;
        if (g > best_gain &&
            static_cast<double>(part_weight[static_cast<size_t>(t)] +
                                node_weight[u]) <= cap) {
          best_gain = g;
          best = t;
        }
        gain[static_cast<size_t>(t)] = 0.0;
      }
      if (best != -1) {
        part_weight[static_cast<size_t>(pu)] -= node_weight[u];
        part_weight[static_cast<size_t>(best)] += node_weight[u];
        (*part_of)[u] = best;
        moved = true;
      }
    }
    if (!moved) break;
  }
}

}  // namespace

Partition MultilevelPartition(const CsrGraph& graph, int k,
                              const MultilevelConfig& config, uint64_t seed) {
  SGNN_CHECK_GT(k, 0);
  SGNN_CHECK_GE(config.coarsest_nodes, k);
  common::Rng rng(seed);

  // Coarsening phase.
  std::vector<CoarseLevel> levels;
  const CsrGraph* current = &graph;
  std::vector<int64_t> weights(graph.num_nodes(), 1);
  while (current->num_nodes() >
             static_cast<NodeId>(config.coarsest_nodes) &&
         levels.size() < 40) {
    CoarseLevel level = CoarsenOnce(*current, weights, &rng);
    if (level.graph.num_nodes() == current->num_nodes()) break;  // Stalled.
    weights = level.node_weight;
    levels.push_back(std::move(level));
    current = &levels.back().graph;
  }

  // Weight-aware initial partition of the coarsest graph.
  std::vector<int> part_of = GrowInitialPartition(*current, weights, k);
  RefineLevel(*current, weights, k, config.max_imbalance,
              config.refine_passes, &part_of);

  // Uncoarsening with refinement at each level.
  for (size_t li = levels.size(); li-- > 0;) {
    const CoarseLevel& level = levels[li];
    const CsrGraph& fine =
        (li == 0) ? graph : levels[li - 1].graph;
    std::vector<int> fine_part(fine.num_nodes());
    for (NodeId u = 0; u < fine.num_nodes(); ++u) {
      fine_part[u] = part_of[level.coarse_of[u]];
    }
    std::vector<int64_t> fine_weights;
    if (li == 0) {
      fine_weights.assign(graph.num_nodes(), 1);
    } else {
      fine_weights = levels[li - 1].node_weight;
    }
    RefineLevel(fine, fine_weights, k, config.max_imbalance,
                config.refine_passes, &fine_part);
    part_of = std::move(fine_part);
  }

  Partition p;
  p.k = k;
  p.part_of = std::move(part_of);
  return p;
}

std::vector<std::vector<NodeId>> ClusterBatches(const Partition& partition,
                                                int parts_per_batch,
                                                uint64_t seed) {
  SGNN_CHECK_GT(parts_per_batch, 0);
  SGNN_CHECK_GT(partition.k, 0);
  common::Rng rng(seed);
  std::vector<int> order(static_cast<size_t>(partition.k));
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(&order);

  std::vector<std::vector<NodeId>> members(static_cast<size_t>(partition.k));
  for (NodeId u = 0; u < partition.part_of.size(); ++u) {
    members[static_cast<size_t>(partition.part_of[u])].push_back(u);
  }
  std::vector<std::vector<NodeId>> batches;
  for (size_t i = 0; i < order.size(); i += static_cast<size_t>(parts_per_batch)) {
    std::vector<NodeId> batch;
    for (size_t j = i;
         j < std::min(order.size(), i + static_cast<size_t>(parts_per_batch));
         ++j) {
      const auto& part = members[static_cast<size_t>(order[j])];
      batch.insert(batch.end(), part.begin(), part.end());
    }
    if (batch.empty()) continue;
    std::sort(batch.begin(), batch.end());
    batches.push_back(std::move(batch));
  }
  return batches;
}

}  // namespace sgnn::partition
