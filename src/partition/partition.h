#ifndef SGNN_PARTITION_PARTITION_H_
#define SGNN_PARTITION_PARTITION_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

namespace sgnn::partition {

/// Graph partitioning for distributed/mini-batch GNN training (§3.1.2).
/// A partition assigns every node one of k parts; quality is judged by the
/// communication it induces (edge cut, communication volume) and the load
/// balance across parts.

struct Partition {
  std::vector<int> part_of;  ///< Per node, in [0, k).
  int k = 0;
};

/// Fraction-free quality metrics.
struct PartitionQuality {
  int64_t edge_cut = 0;        ///< Undirected edges crossing parts.
  int64_t comm_volume = 0;     ///< Sum over nodes of distinct remote parts
                               ///< among their neighbours (replication cost).
  double imbalance = 0.0;      ///< max part size / (n / k); 1.0 is perfect.
};

PartitionQuality EvaluatePartition(const graph::CsrGraph& graph,
                                   const Partition& partition);

/// Uniform random assignment: the no-information baseline.
Partition RandomPartition(const graph::CsrGraph& graph, int k, uint64_t seed);

/// Linear Deterministic Greedy streaming partitioner (Stanton & Kliot):
/// nodes arrive in random order; each goes to the part holding most of its
/// already-placed neighbours, damped by a fullness penalty
/// (1 - |P|/capacity). `slack` >= 1 scales the per-part capacity.
Partition LdgPartition(const graph::CsrGraph& graph, int k, double slack,
                       uint64_t seed);

/// Fennel streaming partitioner (Tsourakakis et al.): interpolates between
/// edge-cut and balance objectives with score
///   |N(v) ∩ P| - alpha * gamma * |P|^(gamma-1).
Partition FennelPartition(const graph::CsrGraph& graph, int k, double gamma,
                          uint64_t seed);

/// Multilevel partitioner: heavy-edge-matching coarsening, LDG on the
/// coarsest graph, then boundary refinement on each uncoarsening level
/// (greedy gain moves under a balance cap). The strongest baseline here,
/// analogous to METIS in the tutorial's discussion.
struct MultilevelConfig {
  int coarsest_nodes = 200;      ///< Stop coarsening near this size.
  int refine_passes = 4;         ///< Gain passes per level.
  double max_imbalance = 1.1;    ///< Allowed max-part/avg ratio.
};
Partition MultilevelPartition(const graph::CsrGraph& graph, int k,
                              const MultilevelConfig& config, uint64_t seed);

/// Cluster-GCN batching: groups the k parts into batches of `parts_per_batch`
/// random parts each; returns per batch the sorted node list.
std::vector<std::vector<graph::NodeId>> ClusterBatches(
    const Partition& partition, int parts_per_batch, uint64_t seed);

}  // namespace sgnn::partition

#endif  // SGNN_PARTITION_PARTITION_H_
