#include "storage/ooc.h"

#include <cmath>
#include <queue>
#include <utility>

#include "common/check.h"
#include "common/counters.h"
#include "par/par.h"
#include "sampling/assembly.h"
#include "simd/simd.h"

namespace sgnn::storage {

using common::Status;
using common::StatusOr;
using graph::NodeId;
using graph::Normalization;

namespace {

/// Same shard grains as the in-memory kernels, so intra-shard parallel
/// geometry matches them row for row.
constexpr int64_t kEdgeGrain = 32 * 1024;
constexpr int64_t kDstGrain = 256;

double Inv(double d) { return d > 0.0 ? 1.0 / d : 0.0; }
double InvSqrt(double d) { return d > 0.0 ? 1.0 / std::sqrt(d) : 0.0; }

}  // namespace

StatusOr<OocPropagator> OocPropagator::Create(ShardedGraph* graph,
                                              Normalization norm,
                                              bool add_self_loops) {
  SGNN_CHECK(graph != nullptr);
  OocPropagator prop;
  prop.graph_ = graph;
  prop.norm_ = norm;
  const NodeId n = graph->num_nodes();
  prop.degree_.assign(n, 0.0);
  // One streaming pass builds the degree table the per-edge coefficients
  // need (kColumn/kSymmetric read degree[v] for neighbours in *other*
  // shards, so the table must cover all nodes — O(n) doubles resident).
  for (int s = 0; s < graph->num_shards(); ++s) {
    auto pin_or = graph->PinShard(s);
    if (!pin_or.ok()) return pin_or.status();
    const PinnedShard& pin = pin_or.value();
    const auto ranges = par::RowRanges(
        pin.local_offsets(),
        par::ShardsFor(pin.local_offsets().back(), kEdgeGrain));
    par::ParallelFor(
        "storage.prop.degrees", ranges, [&](int, par::Range range) {
          for (int64_t r = range.begin; r < range.end; ++r) {
            // Float weights accumulate into a double in adjacency order —
            // the exact `CsrGraph::WeightedDegree` arithmetic.
            double acc = 0.0;
            for (float w : pin.WeightsLocal(r)) acc += w;
            prop.degree_[pin.rows()[static_cast<size_t>(r)]] =
                acc + (add_self_loops ? 1.0 : 0.0);
          }
        });
  }
  if (add_self_loops) {
    prop.self_loop_coeff_.resize(n);
    for (NodeId u = 0; u < n; ++u) {
      double c = 1.0;
      switch (norm) {
        case Normalization::kNone:
          break;
        case Normalization::kRow:
        case Normalization::kColumn:
          c = Inv(prop.degree_[u]);
          break;
        case Normalization::kSymmetric:
          c = Inv(prop.degree_[u]);  // 1/sqrt(d) * 1/sqrt(d)
          break;
      }
      prop.self_loop_coeff_[u] = static_cast<float>(c);
    }
  }
  return prop;
}

Status OocPropagator::Apply(const tensor::Matrix& x,
                            tensor::Matrix* out) const {
  SGNN_CHECK(out != nullptr);
  SGNN_CHECK(graph_ != nullptr);
  SGNN_CHECK_EQ(x.rows(), static_cast<int64_t>(graph_->num_nodes()));
  const int64_t cols = x.cols();
  *out = tensor::Matrix(x.rows(), cols);
  for (int s = 0; s < graph_->num_shards(); ++s) {
    auto pin_or = graph_->PinShard(s);
    if (!pin_or.ok()) return pin_or.status();
    const PinnedShard& pin = pin_or.value();
    const int64_t shard_edges = pin.local_offsets().back();
    const auto ranges = par::RowRanges(
        pin.local_offsets(), par::ShardsFor(shard_edges, kEdgeGrain));
    // Row-partitioned SpMM exactly like `Propagator::Apply`, with the
    // per-edge float coefficient recomputed on the fly: double expression,
    // then one float cast — the same rounding the in-memory constructor
    // stored, so every axpy adds the identical float. The accumulation row
    // is the same unfused-mul/add microkernel, so the out-of-core result
    // stays byte-identical to the in-memory one at any resident budget.
    const simd::KernelTable& kt = simd::Active();
    // Applied axpy rows per par shard (nonzero coefficients + engaged
    // self-loops), summed after the section for the byte bill.
    std::vector<uint64_t> applied(ranges.size(), 0);
    par::ParallelFor(
        "storage.prop.apply", ranges, [&](int shard, par::Range range) {
          uint64_t rows_applied = 0;
          for (int64_t r = range.begin; r < range.end; ++r) {
            const NodeId u = pin.rows()[static_cast<size_t>(r)];
            auto nbrs = pin.NeighborsLocal(r);
            auto ws = pin.WeightsLocal(r);
            float* orow = out->data() + static_cast<int64_t>(u) * cols;
            for (size_t i = 0; i < nbrs.size(); ++i) {
              const NodeId v = nbrs[i];
              double c = ws[i];
              switch (norm_) {
                case Normalization::kNone:
                  break;
                case Normalization::kRow:
                  c *= Inv(degree_[u]);
                  break;
                case Normalization::kColumn:
                  c *= Inv(degree_[v]);
                  break;
                case Normalization::kSymmetric:
                  c *= InvSqrt(degree_[u]) * InvSqrt(degree_[v]);
                  break;
              }
              const float cf = static_cast<float>(c);
              if (cf == 0.0f) continue;
              ++rows_applied;
              kt.axpy(cf, x.data() + static_cast<int64_t>(v) * cols, orow,
                      cols);
            }
            if (!self_loop_coeff_.empty() && self_loop_coeff_[u] != 0.0f) {
              ++rows_applied;
              kt.axpy(self_loop_coeff_[u],
                      x.data() + static_cast<int64_t>(u) * cols, orow, cols);
            }
          }
          applied[static_cast<size_t>(shard)] = rows_applied;
        });
    uint64_t shard_applied = 0;
    for (uint64_t a : applied) shard_applied += a;
    auto& counters = common::GlobalCounters();
    counters.edges_touched += static_cast<uint64_t>(shard_edges);
    counters.floats_moved +=
        static_cast<uint64_t>(shard_edges) * static_cast<uint64_t>(cols);
    // Bytes: weight + local-index streams per edge, then the gathered x
    // slice plus the output row (RMW) per applied axpy — the same formula
    // `Propagator::Apply` bills, so in-memory and out-of-core runs agree.
    counters.BillBytes(
        static_cast<uint64_t>(shard_edges) * (sizeof(float) + sizeof(NodeId)) +
            shard_applied * 2u * static_cast<uint64_t>(cols) * sizeof(float),
        shard_applied * static_cast<uint64_t>(cols) * sizeof(float));
  }
  return Status::OK();
}

StatusOr<ppr::PushResult> ForwardPush(ShardedGraph* graph, NodeId source,
                                      double alpha, double r_max) {
  SGNN_CHECK(graph != nullptr);
  SGNN_CHECK(alpha > 0.0 && alpha < 1.0);
  SGNN_CHECK_GT(r_max, 0.0);
  SGNN_CHECK_LT(source, graph->num_nodes());

  std::vector<double> p(graph->num_nodes(), 0.0);
  std::vector<double> r(graph->num_nodes(), 0.0);
  std::vector<bool> queued(graph->num_nodes(), false);
  std::queue<NodeId> active;

  r[source] = 1.0;
  active.push(source);
  queued[source] = true;

  ppr::PushResult result;
  while (!active.empty()) {
    const NodeId u = active.front();
    active.pop();
    queued[u] = false;
    const auto deg = graph->OutDegree(u);
    if (deg == 0) {
      // Dangling node: all residual mass settles here.
      p[u] += r[u];
      r[u] = 0.0;
      continue;
    }
    if (r[u] <= r_max * static_cast<double>(deg)) continue;
    const double ru = r[u];
    p[u] += alpha * ru;
    r[u] = 0.0;
    ++result.pushes;
    result.edges_touched += deg;
    // The shard is pinned only for actual pushes — threshold checks read
    // the resident degree index — so faults track pushes, not queue churn.
    auto pin_or = graph->Pin(u);
    if (!pin_or.ok()) return pin_or.status();
    const PinnedShard& pin = pin_or.value();
    const double w_deg = pin.WeightedDegree(u);
    const double spread = (1.0 - alpha) * ru / w_deg;
    auto nbrs = pin.Neighbors(u);
    auto ws = pin.Weights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId v = nbrs[i];
      r[v] += spread * ws[i];
      if (!queued[v] &&
          r[v] > r_max * static_cast<double>(graph->OutDegree(v))) {
        active.push(v);
        queued[v] = true;
      }
    }
  }

  for (NodeId v = 0; v < graph->num_nodes(); ++v) {
    if (p[v] > 0.0) result.estimate.emplace_back(v, p[v]);
  }
  common::GlobalCounters().edges_touched +=
      static_cast<uint64_t>(result.edges_touched);
  return result;
}

StatusOr<std::vector<ppr::PushResult>> PushBatch(
    ShardedGraph* graph, std::span<const NodeId> seeds, double alpha,
    double r_max) {
  std::vector<ppr::PushResult> results(seeds.size());
  // Sequential seeds: each push is a pure function of its seed (so the
  // values match the in-memory parallel batch exactly), and serialising
  // the cache access makes the load/eviction sequence — the thing the
  // budget meters — deterministic too.
  for (size_t i = 0; i < seeds.size(); ++i) {
    auto result_or = ForwardPush(graph, seeds[i], alpha, r_max);
    if (!result_or.ok()) return result_or.status();
    results[i] = std::move(result_or).value();
  }
  return results;
}

StatusOr<sampling::MiniBatch> SampleNodeWise(ShardedGraph* graph,
                                             std::span<const NodeId> seeds,
                                             std::span<const int> fanouts,
                                             common::Rng* rng) {
  SGNN_CHECK(graph != nullptr);
  SGNN_CHECK(rng != nullptr);
  SGNN_CHECK_GE(fanouts.size(), 1u);
  SGNN_CHECK(!seeds.empty());

  std::vector<sampling::LayerSample> outer_first;
  std::vector<NodeId> frontier(seeds.begin(), seeds.end());
  for (size_t l = 0; l < fanouts.size(); ++l) {
    const int fanout = fanouts[l];
    SGNN_CHECK_GE(fanout, 1);
    const std::vector<NodeId>& dst = frontier;
    // One caller-side engine draw per layer, then keyed per-destination
    // streams — the in-memory sampler's scheme, so the draws (and the
    // assembled block) do not depend on the shard grouping below.
    const uint64_t layer_base = rng->engine()();
    std::vector<std::vector<std::pair<NodeId, float>>> edges(dst.size());
    std::vector<std::vector<int64_t>> by_shard(
        static_cast<size_t>(graph->num_shards()));
    for (size_t i = 0; i < dst.size(); ++i) {
      by_shard[static_cast<size_t>(graph->shard_of(dst[i]))].push_back(
          static_cast<int64_t>(i));
    }
    for (int s = 0; s < graph->num_shards(); ++s) {
      const std::vector<int64_t>& bucket = by_shard[static_cast<size_t>(s)];
      if (bucket.empty()) continue;
      auto pin_or = graph->PinShard(s);
      if (!pin_or.ok()) return pin_or.status();
      const PinnedShard& pin = pin_or.value();
      const int64_t m = static_cast<int64_t>(bucket.size());
      const auto ranges = par::SplitUniform(m, par::ShardsFor(m, kDstGrain));
      par::ParallelFor(
          "storage.sample.node_wise", ranges, [&](int, par::Range range) {
            for (int64_t b = range.begin; b < range.end; ++b) {
              const size_t i = static_cast<size_t>(bucket[b]);
              auto nbrs = pin.Neighbors(dst[i]);
              auto& out = edges[i];
              if (nbrs.empty()) continue;
              if (static_cast<int>(nbrs.size()) <= fanout) {
                const float w = 1.0f / static_cast<float>(nbrs.size());
                for (NodeId v : nbrs) out.emplace_back(v, w);
              } else {
                common::Rng local(common::MixSeed(layer_base, dst[i]));
                auto picks = local.SampleWithoutReplacement(
                    nbrs.size(), static_cast<uint64_t>(fanout));
                const float w = 1.0f / static_cast<float>(fanout);
                for (uint64_t pick : picks) out.emplace_back(nbrs[pick], w);
              }
            }
          });
    }
    sampling::LayerSample layer = sampling::AssembleLayer(dst, edges);
    frontier = layer.src;
    outer_first.push_back(std::move(layer));
  }
  sampling::MiniBatch batch;
  batch.layers.assign(std::make_move_iterator(outer_first.rbegin()),
                      std::make_move_iterator(outer_first.rend()));
  return batch;
}

}  // namespace sgnn::storage
