#ifndef SGNN_STORAGE_SHARD_WRITER_H_
#define SGNN_STORAGE_SHARD_WRITER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/csr_graph.h"
#include "partition/partition.h"
#include "storage/format.h"

namespace sgnn::storage {

/// Node-to-shard assignment used when converting an in-memory graph to the
/// on-disk format. A plan is a pure function of its inputs, so the shard
/// geometry — and therefore every load/eviction the cache later performs —
/// is deterministic.
struct ShardPlan {
  std::vector<uint32_t> shard_of;  ///< Per node, in [0, num_shards).
  int num_shards = 0;

  /// Contiguous node ranges balanced by edge count: a cumulative sweep over
  /// the CSR offsets cuts after a node once its prefix exceeds the next
  /// 1/num_shards edge quantile. Degenerates gracefully (empty trailing
  /// shards stay valid) and never splits a node's adjacency.
  static ShardPlan Contiguous(const graph::CsrGraph& graph, int num_shards);

  /// Adopts a `sgnn::partition` assignment (LDG, Fennel, multilevel, ...),
  /// so locality-aware partitions directly become disk layout. Shards from
  /// a partition generally hold non-contiguous node sets.
  static ShardPlan FromPartition(const partition::Partition& partition);
};

/// Converts an in-memory graph to the on-disk sharded format in `dir`
/// (created if missing): one CSR shard file per plan shard plus the
/// manifest. Each file is written to a `.tmp` sibling and renamed, and the
/// manifest is written last, so a crash mid-write never leaves a directory
/// that opens successfully with partial data. Returns `kInvalidArgument`
/// for a plan that does not cover the graph and `kIOError` on filesystem
/// failure.
SGNN_NODISCARD common::Status WriteShardedGraph(const graph::CsrGraph& graph,
                                 const ShardPlan& plan,
                                 const std::string& dir);

}  // namespace sgnn::storage

#endif  // SGNN_STORAGE_SHARD_WRITER_H_
