#include "storage/sharded_graph.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <fstream>
#include <utility>

#include "common/counters.h"
#include "common/crc32.h"
#include "common/posix.h"
#include "core/run_context.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sgnn::storage {

using common::Status;
using common::StatusOr;
using graph::NodeId;

namespace {

Status Corrupt(const std::string& where, const std::string& why) {
  return Status::DataLoss("corrupt shard data " + where + ": " + why);
}

/// Open-time read of one shard's header + rows + offsets sections through
/// buffered streams (these feed the resident index arrays; they are not
/// cache loads and are not billed as such). The adjacency sections stay on
/// disk until the shard is pinned.
Status ReadShardIndex(const std::string& path, const ShardEntry& entry,
                      int shard, std::vector<NodeId>* rows,
                      std::vector<uint64_t>* offsets) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no such file: " + path);
  char header[kShardHeaderBytes];
  in.read(header, sizeof(header));
  if (!in) return Corrupt(path, "truncated shard file (smaller than header)");

  auto header_or = ParseShardHeader(header, entry.file_bytes, path);
  if (!header_or.ok()) return header_or.status();
  const ShardHeader& parsed = header_or.value();
  if (parsed.shard_id != static_cast<uint32_t>(shard)) {
    return Corrupt(path, "shard id " + std::to_string(parsed.shard_id) +
                             " does not match manifest position " +
                             std::to_string(shard));
  }
  if (parsed.num_rows != entry.num_rows ||
      parsed.num_edges != entry.num_edges) {
    return Corrupt(path, "shard header counts disagree with manifest");
  }

  const ShardLayout layout = LayoutFor(entry.num_rows, entry.num_edges);
  rows->resize(entry.num_rows);
  offsets->resize(uint64_t{entry.num_rows} + 1);
  in.seekg(static_cast<std::streamoff>(layout.rows_off));
  in.read(reinterpret_cast<char*>(rows->data()),
          static_cast<std::streamsize>(rows->size() * sizeof(NodeId)));
  in.seekg(static_cast<std::streamoff>(layout.offsets_off));
  in.read(reinterpret_cast<char*>(offsets->data()),
          static_cast<std::streamsize>(offsets->size() * sizeof(uint64_t)));
  if (!in) return Corrupt(path, "truncated shard file (index sections)");
  if (common::Crc32(rows->data(), rows->size() * sizeof(NodeId)) !=
      parsed.crc_rows) {
    return Corrupt(path, "CRC mismatch in rows section");
  }
  if (common::Crc32(offsets->data(), offsets->size() * sizeof(uint64_t)) !=
      parsed.crc_offsets) {
    return Corrupt(path, "CRC mismatch in offsets section");
  }
  return Status::OK();
}

}  // namespace

OpenOptions OptionsFromRunContext(const core::RunContext& ctx) {
  OpenOptions options;
  options.budget_bytes = ctx.resident_budget_bytes;
  options.metrics = ctx.metrics;
  options.tracer = ctx.tracer;
  return options;
}

// ---- PinnedShard --------------------------------------------------------

PinnedShard::PinnedShard(ShardedGraph* owner, int shard)
    : owner_(owner), shard_(shard) {}

PinnedShard& PinnedShard::operator=(PinnedShard&& other) noexcept {
  if (this != &other) {
    Release();
    owner_ = std::exchange(other.owner_, nullptr);
    shard_ = std::exchange(other.shard_, -1);
    num_rows_ = other.num_rows_;
    rows_ = other.rows_;
    offsets_ = other.offsets_;
    neighbors_ = other.neighbors_;
    weights_ = other.weights_;
  }
  return *this;
}

void PinnedShard::Release() {
  if (owner_ != nullptr) {
    owner_->Unpin(shard_);
    owner_ = nullptr;
  }
}

// ---- ShardedGraph -------------------------------------------------------

StatusOr<std::unique_ptr<ShardedGraph>> ShardedGraph::Open(
    const std::string& dir, OpenOptions options) {
  // Peaks are per-thread high-water marks; re-base them here (like
  // `Pipeline::Run` does at run entry) so an out-of-core run's reported
  // peak residency is its own, not a ghost of an earlier run.
  common::GlobalCounters().RebasePeaks();

  auto manifest_or = ReadManifest(ManifestPath(dir));
  if (!manifest_or.ok()) return manifest_or.status();

  std::unique_ptr<ShardedGraph> g(new ShardedGraph());
  g->dir_ = dir;
  g->manifest_ = std::move(manifest_or).value();
  g->budget_bytes_ = ResidentBudgetBytes(options.budget_bytes);
  if (g->budget_bytes_ == kUnlimitedBudget) g->budget_bytes_ = 0;
  g->verify_crc_on_load_ = options.verify_crc_on_load;
  g->tracer_ = options.tracer;

  const ShardManifest& manifest = g->manifest_;
  const std::string manifest_path = ManifestPath(dir);
  const auto num_shards = static_cast<uint32_t>(manifest.shards.size());

  // Resident index arrays from the assignment: local row = rank of u
  // within its shard in ascending node order, which is exactly the row
  // order the writer laid down.
  g->local_row_.resize(manifest.num_nodes);
  std::vector<uint64_t> rows_seen(num_shards, 0);
  for (NodeId u = 0; u < manifest.num_nodes; ++u) {
    const uint32_t s = manifest.shard_of[u];
    if (s >= num_shards) {
      return Corrupt(manifest_path,
                     "node " + std::to_string(u) + " assigned to shard " +
                         std::to_string(s) + " of " +
                         std::to_string(num_shards));
    }
    g->local_row_[u] = static_cast<uint32_t>(rows_seen[s]++);
  }
  uint64_t total_edges = 0;
  for (uint32_t s = 0; s < num_shards; ++s) {
    const ShardEntry& entry = manifest.shards[s];
    if (rows_seen[s] != entry.num_rows) {
      return Corrupt(manifest_path,
                     "shard " + std::to_string(s) + " claims " +
                         std::to_string(entry.num_rows) +
                         " rows but the assignment yields " +
                         std::to_string(rows_seen[s]) +
                         " (overlapping or missing ownership)");
    }
    total_edges += entry.num_edges;
  }
  if (total_edges != manifest.num_edges) {
    return Corrupt(manifest_path, "shard edge counts sum to " +
                                      std::to_string(total_edges) +
                                      ", manifest says " +
                                      std::to_string(manifest.num_edges));
  }

  // Per-shard index read: verifies header + rows/offsets CRCs and fills
  // the resident degree array the kernels consult without pinning.
  g->degrees_.assign(manifest.num_nodes, 0);
  g->slots_.resize(num_shards);
  std::vector<NodeId> rows;
  std::vector<uint64_t> offsets;
  for (uint32_t s = 0; s < num_shards; ++s) {
    const ShardEntry& entry = manifest.shards[s];
    const std::string path = ShardPath(dir, static_cast<int>(s));
    SGNN_RETURN_IF_ERROR(
        ReadShardIndex(path, entry, static_cast<int>(s), &rows, &offsets));
    if (offsets[0] != 0 || offsets[entry.num_rows] != entry.num_edges) {
      return Corrupt(path, "offsets do not span the edge section");
    }
    NodeId prev = 0;
    for (uint32_t r = 0; r < entry.num_rows; ++r) {
      const NodeId u = rows[r];
      if (u >= manifest.num_nodes) {
        return Corrupt(path, "row node id " + std::to_string(u) +
                                 " out of range");
      }
      if (r > 0 && u <= prev) {
        return Corrupt(path, "row ids not strictly ascending at row " +
                                 std::to_string(r));
      }
      prev = u;
      if (manifest.shard_of[u] != s || g->local_row_[u] != r) {
        return Corrupt(path, "node " + std::to_string(u) +
                                 " listed in shard " + std::to_string(s) +
                                 " but assigned to shard " +
                                 std::to_string(manifest.shard_of[u]) +
                                 " (overlapping shard ownership)");
      }
      if (offsets[r + 1] < offsets[r]) {
        return Corrupt(path, "offsets decrease at row " + std::to_string(r));
      }
      g->degrees_[u] =
          static_cast<graph::EdgeIndex>(offsets[r + 1] - offsets[r]);
    }
    g->slots_[s].entry = entry;
    g->total_shard_bytes_ += entry.file_bytes;
  }

  if (options.metrics != nullptr) {
    obs::MetricsRegistry& metrics = *options.metrics;
    g->loads_metric_ = metrics.GetCounter(
        "sgnn_storage_shard_loads_total",
        "Shard files mapped into the resident cache (reloads count again)");
    g->evictions_metric_ = metrics.GetCounter(
        "sgnn_storage_shard_evictions_total",
        "Shards unmapped to stay under the resident budget");
    g->bytes_loaded_metric_ = metrics.GetCounter(
        "sgnn_storage_bytes_loaded_total", "Total shard bytes mapped");
    g->resident_metric_ = metrics.GetGauge(
        "sgnn_storage_resident_bytes",
        "Currently mapped shard bytes (never exceeds the budget)");
    g->resident_peak_metric_ = metrics.GetGauge(
        "sgnn_storage_resident_peak_bytes",
        "High-water mark of mapped shard bytes");
    metrics
        .GetGauge("sgnn_storage_budget_bytes",
                  "Resolved resident budget (0 = unlimited)")
        ->Set(static_cast<double>(g->budget_bytes_));
  }

  if (options.deep_validator) {
    SGNN_RETURN_IF_ERROR(options.deep_validator(dir));
  }
  return g;
}

ShardedGraph::~ShardedGraph() {
  common::MutexLock lock(mu_);
  for (Slot& slot : slots_) {
    SGNN_DCHECK(slot.pins == 0);
    if (slot.mapped) UnmapLocked(slot);
  }
}

StatusOr<PinnedShard> ShardedGraph::PinShard(int shard) {
  SGNN_CHECK(shard >= 0 && shard < num_shards());
  common::MutexLock lock(mu_);
  Slot& slot = slots_[static_cast<size_t>(shard)];
  slot.last_use = ++use_clock_;
  if (!slot.mapped) {
    const uint64_t needed = slot.entry.file_bytes;
    const uint64_t cap = budget_bytes_ == 0 ? ~uint64_t{0} : budget_bytes_;
    while (stats_.resident_bytes + needed > cap) {
      // Deterministic LRU: the unique unpinned shard with the smallest
      // logical access stamp. O(num_shards) scan; shard counts are small.
      int victim = -1;
      uint64_t oldest = ~uint64_t{0};
      for (int i = 0; i < num_shards(); ++i) {
        const Slot& candidate = slots_[static_cast<size_t>(i)];
        if (candidate.mapped && candidate.pins == 0 &&
            candidate.last_use < oldest) {
          oldest = candidate.last_use;
          victim = i;
        }
      }
      if (victim < 0) {
        return Status::ResourceExhausted(
            "resident budget " + std::to_string(budget_bytes_) +
            " bytes cannot fit shard " + std::to_string(shard) + " (" +
            std::to_string(needed) + " bytes) on top of " +
            std::to_string(stats_.resident_bytes) +
            " pinned bytes; raise SGNN_RESIDENT_BUDGET or use more shards");
      }
      EvictLocked(victim);
    }
    SGNN_RETURN_IF_ERROR(MapLocked(shard));
  }
  ++slot.pins;

  PinnedShard pin(this, shard);
  pin.num_rows_ = static_cast<int64_t>(slot.entry.num_rows);
  pin.rows_ = slot.rows;
  pin.offsets_ = slot.offsets;
  pin.neighbors_ = slot.neighbors;
  pin.weights_ = slot.weights;
  return pin;
}

Status ShardedGraph::MapLocked(int shard) {
  Slot& slot = slots_[static_cast<size_t>(shard)];
  const std::string path = ShardPath(dir_, shard);
  auto span =
      obs::StartSpan(tracer_, "storage:load:" + std::to_string(shard),
                     "storage");

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return common::StatusFromErrno("cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    Status status = common::StatusFromErrno("fstat failed: " + path);
    ::close(fd);
    return status;
  }
  if (static_cast<uint64_t>(st.st_size) != slot.entry.file_bytes) {
    ::close(fd);
    return Corrupt(path, "size changed since open (truncated shard file)");
  }
  void* base = ::mmap(nullptr, slot.entry.file_bytes, PROT_READ, MAP_PRIVATE,
                      fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    return common::StatusFromErrno("mmap failed: " + path);
  }

  auto fail = [&](Status status) {
    ::munmap(base, slot.entry.file_bytes);
    return status;
  };
  auto header_or = ParseShardHeader(base, slot.entry.file_bytes, path);
  if (!header_or.ok()) return fail(header_or.status());
  const ShardHeader& header = header_or.value();
  if (header.shard_id != static_cast<uint32_t>(shard) ||
      header.num_rows != slot.entry.num_rows ||
      header.num_edges != slot.entry.num_edges) {
    return fail(Corrupt(path, "shard header disagrees with manifest"));
  }
  if (verify_crc_on_load_) {
    Status section_status = VerifyShardSections(base, header, path);
    if (!section_status.ok()) return fail(section_status);
  }

  const ShardLayout layout =
      LayoutFor(slot.entry.num_rows, slot.entry.num_edges);
  const char* bytes = static_cast<const char*>(base);
  slot.base = base;
  slot.rows = reinterpret_cast<const NodeId*>(bytes + layout.rows_off);
  slot.offsets =
      reinterpret_cast<const uint64_t*>(bytes + layout.offsets_off);
  slot.neighbors =
      reinterpret_cast<const NodeId*>(bytes + layout.neighbors_off);
  slot.weights = reinterpret_cast<const float*>(bytes + layout.weights_off);
  slot.mapped = true;

  stats_.loads += 1;
  stats_.bytes_loaded += slot.entry.file_bytes;
  stats_.resident_bytes += slot.entry.file_bytes;
  if (stats_.resident_bytes > stats_.peak_resident_bytes) {
    stats_.peak_resident_bytes = stats_.resident_bytes;
  }
  common::OpCounters& counters = common::GlobalCounters();
  counters.shard_loads += 1;
  counters.shard_bytes_loaded += slot.entry.file_bytes;
  counters.AcquireShardBytes(slot.entry.file_bytes);
  if (loads_metric_ != nullptr) {
    loads_metric_->Increment();
    bytes_loaded_metric_->Increment(slot.entry.file_bytes);
    resident_metric_->Set(static_cast<double>(stats_.resident_bytes));
    resident_peak_metric_->SetMax(static_cast<double>(stats_.resident_bytes));
  }
  return Status::OK();
}

void ShardedGraph::EvictLocked(int shard) {
  Slot& slot = slots_[static_cast<size_t>(shard)];
  auto span = obs::StartSpan(
      tracer_, "storage:evict:" + std::to_string(shard), "storage");
  UnmapLocked(slot);
  stats_.evictions += 1;
  common::GlobalCounters().shard_evictions += 1;
  if (evictions_metric_ != nullptr) evictions_metric_->Increment();
}

void ShardedGraph::UnmapLocked(Slot& slot) {
  ::munmap(slot.base, slot.entry.file_bytes);
  slot.base = nullptr;
  slot.rows = nullptr;
  slot.offsets = nullptr;
  slot.neighbors = nullptr;
  slot.weights = nullptr;
  slot.mapped = false;
  stats_.resident_bytes -= slot.entry.file_bytes;
  common::GlobalCounters().ReleaseShardBytes(slot.entry.file_bytes);
  if (resident_metric_ != nullptr) {
    resident_metric_->Set(static_cast<double>(stats_.resident_bytes));
  }
}

void ShardedGraph::Unpin(int shard) {
  common::MutexLock lock(mu_);
  Slot& slot = slots_[static_cast<size_t>(shard)];
  SGNN_DCHECK(slot.pins > 0);
  --slot.pins;
}

StorageStats ShardedGraph::stats() const {
  common::MutexLock lock(mu_);
  return stats_;
}

}  // namespace sgnn::storage
