#ifndef SGNN_STORAGE_SHARDED_GRAPH_H_
#define SGNN_STORAGE_SHARDED_GRAPH_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "graph/types.h"
#include "storage/format.h"

namespace sgnn::obs {
class Tracer;
class MetricsRegistry;
class Counter;
class Gauge;
}  // namespace sgnn::obs

namespace sgnn::core {
struct RunContext;
}

namespace sgnn::storage {

class ShardedGraph;

/// Point-in-time shard-cache accounting, all in bytes of mapped shard
/// files. `resident_bytes` never exceeds the resolved budget — that is the
/// hard cap this subsystem exists to enforce.
struct StorageStats {
  uint64_t loads = 0;           ///< Shard files mapped (reloads count again).
  uint64_t evictions = 0;       ///< Budget-driven unmaps.
  uint64_t bytes_loaded = 0;    ///< Total bytes mapped (monotone).
  uint64_t resident_bytes = 0;  ///< Currently mapped bytes.
  uint64_t peak_resident_bytes = 0;  ///< High-water mark of resident_bytes.
};

/// How to open a sharded graph. The default options reproduce the plain
/// case: budget from `SGNN_RESIDENT_BUDGET` (unlimited when unset), CRC
/// verification on, no observability sinks.
struct OpenOptions {
  /// Resident cap for mapped shard bytes. 0 = consult
  /// `SGNN_RESIDENT_BUDGET`, unlimited when that is unset too. Pass
  /// `kUnlimitedBudget` to force unlimited regardless of the environment.
  uint64_t budget_bytes = 0;
  /// Verify every section CRC each time a shard is mapped (loads and
  /// reloads), so a file corrupted mid-run surfaces as a status instead of
  /// wrong numbers. Off only for benchmarks that measure raw fault cost.
  bool verify_crc_on_load = true;
  /// Metric sink for the `sgnn_storage_*` family. Null = metrics off.
  obs::MetricsRegistry* metrics = nullptr;
  /// Span sink for `storage:load`/`storage:evict`. Null = tracing off.
  obs::Tracer* tracer = nullptr;
  /// Deep semantic validation hook run once after the structural open
  /// succeeds (validate-every-stage debug mode wires
  /// `analysis::ValidateShardedGraph` here); a non-OK return fails `Open`.
  std::function<common::Status(const std::string& dir)> deep_validator;
};

/// Explicitly unlimited budget (a real cap larger than any file set).
inline constexpr uint64_t kUnlimitedBudget = ~uint64_t{0};

/// Open options derived from a run's context: its budget, metrics and
/// tracer, plus `analysis`-style deep validation when the context has
/// `validate_stages` set (the caller supplies that hook — see
/// `analysis::ValidateShardedGraph` — to keep `storage` below `analysis`
/// in the layering).
OpenOptions OptionsFromRunContext(const core::RunContext& ctx);

/// RAII pin over one mapped shard. While any pin on a shard is live the
/// mapping is excluded from eviction and its section pointers are stable,
/// so kernels iterate spans at in-memory speed. Move-only; a
/// default-constructed pin is inert.
///
/// Row accessors mirror the `CsrGraph` surface (`Neighbors`/`Weights`/
/// `WeightedDegree` by *global* node id, which must belong to this shard);
/// the `*Local` forms index by shard row for shard-major kernels.
class PinnedShard {
 public:
  PinnedShard() = default;
  PinnedShard(PinnedShard&& other) noexcept { *this = std::move(other); }
  PinnedShard& operator=(PinnedShard&& other) noexcept;
  ~PinnedShard() { Release(); }

  PinnedShard(const PinnedShard&) = delete;
  PinnedShard& operator=(const PinnedShard&) = delete;

  bool active() const { return owner_ != nullptr; }
  int shard() const { return shard_; }

  /// Sorted global ids of the nodes this shard owns.
  std::span<const graph::NodeId> rows() const {
    return {rows_, static_cast<size_t>(num_rows_)};
  }
  int64_t num_rows() const { return num_rows_; }

  /// Local CSR offsets (size `num_rows() + 1`), viewable as the
  /// `int64_t` span `par::RowRanges` expects.
  std::span<const int64_t> local_offsets() const {
    return {reinterpret_cast<const int64_t*>(offsets_),
            static_cast<size_t>(num_rows_) + 1};
  }

  std::span<const graph::NodeId> NeighborsLocal(int64_t row) const {
    SGNN_DCHECK(row >= 0 && row < num_rows_);
    return {neighbors_ + offsets_[row],
            static_cast<size_t>(offsets_[row + 1] - offsets_[row])};
  }
  std::span<const float> WeightsLocal(int64_t row) const {
    SGNN_DCHECK(row >= 0 && row < num_rows_);
    return {weights_ + offsets_[row],
            static_cast<size_t>(offsets_[row + 1] - offsets_[row])};
  }

  std::span<const graph::NodeId> Neighbors(graph::NodeId u) const {
    return NeighborsLocal(LocalRow(u));
  }
  std::span<const float> Weights(graph::NodeId u) const {
    return WeightsLocal(LocalRow(u));
  }

  /// Sum of u's edge weights, accumulated in adjacency order exactly like
  /// `CsrGraph::WeightedDegree` so downstream arithmetic is bit-identical.
  double WeightedDegree(graph::NodeId u) const {
    double acc = 0.0;
    for (float w : Weights(u)) acc += w;
    return acc;
  }

 private:
  friend class ShardedGraph;
  PinnedShard(ShardedGraph* owner, int shard);

  int64_t LocalRow(graph::NodeId u) const;
  void Release();

  ShardedGraph* owner_ = nullptr;
  int shard_ = -1;
  int64_t num_rows_ = 0;
  const graph::NodeId* rows_ = nullptr;
  const uint64_t* offsets_ = nullptr;
  const graph::NodeId* neighbors_ = nullptr;
  const float* weights_ = nullptr;
};

/// Disk-backed view of a sharded graph: O(num_nodes) index arrays stay
/// resident (node -> shard, node -> local row, out-degrees), while the
/// O(num_edges) adjacency lives in mmap'd shard files streamed through a
/// deterministic LRU cache bounded by the resident budget.
///
/// Determinism: shard geometry is fixed by the writer's plan, kernels
/// access shards in ascending order from a single orchestrating thread,
/// and LRU order is logical (an access counter, no clocks) — so the
/// sequence of loads and evictions, and every counter derived from it, is
/// a pure function of (graph, plan, budget), independent of
/// `SGNN_THREADS`.
///
/// Thread safety: `Pin`/`PinShard`/`stats` are safe from any thread;
/// reads through a `PinnedShard` are lock-free. Kernels that want
/// reproducible eviction sequences must serialise their *pin* order (the
/// in-tree out-of-core kernels pin from one thread and parallelise only
/// within a pinned shard).
class ShardedGraph {
 public:
  /// Opens `dir`, verifying manifest + per-shard header/rows/offsets
  /// integrity and building the resident index arrays. O(num_nodes) work
  /// and I/O; adjacency sections are not read until a shard is pinned.
  /// Re-bases the calling thread's residency peaks (`RebasePeaks`) so the
  /// run's reported peaks are its own. Returns `kNotFound` when no
  /// manifest exists, `kDataLoss` for corruption (first offender named).
  static common::StatusOr<std::unique_ptr<ShardedGraph>> Open(
      const std::string& dir, OpenOptions options = {});

  ~ShardedGraph();

  ShardedGraph(const ShardedGraph&) = delete;
  ShardedGraph& operator=(const ShardedGraph&) = delete;

  graph::NodeId num_nodes() const { return manifest_.num_nodes; }
  graph::EdgeIndex num_edges() const {
    return static_cast<graph::EdgeIndex>(manifest_.num_edges);
  }
  int num_shards() const { return static_cast<int>(manifest_.shards.size()); }
  const ShardManifest& manifest() const { return manifest_; }
  const std::string& dir() const { return dir_; }
  /// Resolved resident cap in bytes; 0 = unlimited.
  uint64_t budget_bytes() const { return budget_bytes_; }
  /// Total bytes of all shard files — what "fully resident" would cost.
  uint64_t total_shard_bytes() const { return total_shard_bytes_; }

  int shard_of(graph::NodeId u) const {
    SGNN_DCHECK(u < num_nodes());
    return static_cast<int>(manifest_.shard_of[u]);
  }
  graph::EdgeIndex OutDegree(graph::NodeId u) const {
    SGNN_DCHECK(u < num_nodes());
    return degrees_[u];
  }

  /// Maps (if needed) and pins shard `shard`, evicting least-recently-used
  /// unpinned shards to respect the budget. `kResourceExhausted` when the
  /// working set (this shard plus currently pinned ones) cannot fit;
  /// `kDataLoss` when the shard file fails integrity checks.
  SGNN_NODISCARD common::StatusOr<PinnedShard> PinShard(int shard) SGNN_EXCLUDES(mu_);

  /// Pins the shard owning node `u`.
  SGNN_NODISCARD common::StatusOr<PinnedShard> Pin(graph::NodeId u) {
    return PinShard(shard_of(u));
  }

  StorageStats stats() const SGNN_EXCLUDES(mu_);

 private:
  friend class PinnedShard;

  struct Slot {
    ShardEntry entry;
    void* base = nullptr;
    const graph::NodeId* rows = nullptr;
    const uint64_t* offsets = nullptr;
    const graph::NodeId* neighbors = nullptr;
    const float* weights = nullptr;
    int pins = 0;
    uint64_t last_use = 0;
    bool mapped = false;
  };

  ShardedGraph() = default;

  common::Status MapLocked(int shard) SGNN_REQUIRES(mu_);
  void EvictLocked(int shard) SGNN_REQUIRES(mu_);
  void UnmapLocked(Slot& slot) SGNN_REQUIRES(mu_);
  void Unpin(int shard) SGNN_EXCLUDES(mu_);

  // The next block is written exactly once by Open(), before the graph is
  // handed to any other thread; afterwards every field is read-only, so
  // unguarded access is sound without taking mu_ on hot read paths.
  // sgnn-lint: allow(lock/unannotated-field): set once in Open() pre-share
  std::string dir_;
  // sgnn-lint: allow(lock/unannotated-field): set once in Open() pre-share
  ShardManifest manifest_;
  // sgnn-lint: allow(lock/unannotated-field): set once in Open() pre-share
  uint64_t budget_bytes_ = 0;
  // sgnn-lint: allow(lock/unannotated-field): set once in Open() pre-share
  uint64_t total_shard_bytes_ = 0;
  // sgnn-lint: allow(lock/unannotated-field): set once in Open() pre-share
  bool verify_crc_on_load_ = true;
  // sgnn-lint: allow(lock/unannotated-field): set once in Open() pre-share
  std::vector<graph::EdgeIndex> degrees_;  // size num_nodes
  // sgnn-lint: allow(lock/unannotated-field): set once in Open() pre-share
  std::vector<uint32_t> local_row_;        // size num_nodes

  obs::Tracer* tracer_ = nullptr;
  obs::Counter* loads_metric_ = nullptr;
  obs::Counter* evictions_metric_ = nullptr;
  obs::Counter* bytes_loaded_metric_ = nullptr;
  obs::Gauge* resident_metric_ = nullptr;
  obs::Gauge* resident_peak_metric_ = nullptr;

  mutable common::Mutex mu_;
  std::vector<Slot> slots_ SGNN_GUARDED_BY(mu_);
  uint64_t use_clock_ SGNN_GUARDED_BY(mu_) = 0;
  StorageStats stats_ SGNN_GUARDED_BY(mu_);
};

inline int64_t PinnedShard::LocalRow(graph::NodeId u) const {
  SGNN_DCHECK(owner_ != nullptr);
  SGNN_DCHECK(owner_->shard_of(u) == shard_);
  return static_cast<int64_t>(owner_->local_row_[u]);
}

}  // namespace sgnn::storage

#endif  // SGNN_STORAGE_SHARDED_GRAPH_H_
