#include "storage/format.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <type_traits>

#include "common/crc32.h"

namespace sgnn::storage {

using common::Status;
using common::StatusOr;

namespace {

// ---- little serialisation helpers over a growable byte buffer ----------
// (same idiom as core/checkpoint.cc: append PODs, read back through a
// bounds-checked cursor so truncation is a framing error, never UB).

void PutBytes(std::string* buf, const void* data, size_t n) {
  buf->append(static_cast<const char*>(data), n);
}

template <typename T>
void PutPod(std::string* buf, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  PutBytes(buf, &v, sizeof(v));
}

struct Cursor {
  const char* p;
  size_t left;
  bool ok = true;

  bool Take(void* out, size_t n) {
    if (!ok || n > left) {
      ok = false;
      return false;
    }
    std::memcpy(out, p, n);
    p += n;
    left -= n;
    return true;
  }

  template <typename T>
  T Pod() {
    T v{};
    Take(&v, sizeof(v));
    return v;
  }
};

constexpr uint64_t PadTo8(uint64_t n) { return (n + 7) & ~uint64_t{7}; }

Status Corrupt(const std::string& where, const std::string& why) {
  // kDataLoss rather than kIOError: the read itself worked, but the bytes
  // fail integrity checks — a torn write or bit rot, not a device error.
  return Status::DataLoss("corrupt shard data " + where + ": " + why);
}

/// Reads a whole file; `kNotFound` when it does not exist.
StatusOr<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no such file: " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("read failed: " + path);
  return bytes;
}

}  // namespace

ShardLayout LayoutFor(uint64_t num_rows, uint64_t num_edges) {
  ShardLayout layout;
  layout.rows_off = kShardHeaderBytes;
  layout.offsets_off = layout.rows_off + PadTo8(num_rows * sizeof(uint32_t));
  layout.neighbors_off =
      layout.offsets_off + (num_rows + 1) * sizeof(uint64_t);
  layout.weights_off =
      layout.neighbors_off + PadTo8(num_edges * sizeof(uint32_t));
  layout.file_bytes = layout.weights_off + num_edges * sizeof(float);
  return layout;
}

std::string ManifestPath(const std::string& dir) {
  return dir + "/manifest.sgnn";
}

std::string ShardPath(const std::string& dir, int shard) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%06d.sgnn", shard);
  return dir + "/" + name;
}

std::string SerializeManifest(const ShardManifest& manifest) {
  std::string buf;
  PutBytes(&buf, kManifestMagic, sizeof(kManifestMagic));
  PutPod<uint32_t>(&buf, manifest.version);
  PutPod<uint32_t>(&buf, static_cast<uint32_t>(manifest.shards.size()));
  PutPod<uint32_t>(&buf, manifest.num_nodes);
  PutPod<uint64_t>(&buf, manifest.num_edges);
  for (const ShardEntry& entry : manifest.shards) {
    PutPod<uint32_t>(&buf, entry.num_rows);
    PutPod<uint32_t>(&buf, entry.min_node);
    PutPod<uint32_t>(&buf, entry.max_node);
    PutPod<uint64_t>(&buf, entry.num_edges);
    PutPod<uint64_t>(&buf, entry.file_bytes);
  }
  const size_t assignment_bytes =
      manifest.shard_of.size() * sizeof(uint32_t);
  PutPod<uint32_t>(&buf,
                   common::Crc32(manifest.shard_of.data(), assignment_bytes));
  PutBytes(&buf, manifest.shard_of.data(), assignment_bytes);
  PutPod<uint32_t>(&buf, common::Crc32(buf.data(), buf.size()));
  return buf;
}

std::string SerializeShard(const ShardData& shard) {
  const uint64_t num_rows = shard.rows.size();
  const uint64_t num_edges = shard.neighbors.size();
  const ShardLayout layout = LayoutFor(num_rows, num_edges);

  std::string buf;
  buf.reserve(layout.file_bytes);
  PutBytes(&buf, kShardMagic, sizeof(kShardMagic));
  PutPod<uint32_t>(&buf, kFormatVersion);
  PutPod<uint32_t>(&buf, shard.shard_id);
  PutPod<uint32_t>(&buf, static_cast<uint32_t>(num_rows));
  PutPod<uint32_t>(&buf, common::Crc32(shard.rows.data(),
                                       num_rows * sizeof(uint32_t)));
  PutPod<uint64_t>(&buf, num_edges);
  PutPod<uint32_t>(&buf, common::Crc32(shard.offsets.data(),
                                       (num_rows + 1) * sizeof(uint64_t)));
  PutPod<uint32_t>(&buf, common::Crc32(shard.neighbors.data(),
                                       num_edges * sizeof(uint32_t)));
  PutPod<uint32_t>(&buf, common::Crc32(shard.weights.data(),
                                       num_edges * sizeof(float)));
  PutPod<uint32_t>(&buf, common::Crc32(buf.data(), buf.size()));

  auto put_section = [&buf](const void* data, size_t n, uint64_t end_off) {
    PutBytes(&buf, data, n);
    buf.resize(end_off, '\0');  // Zero pad to the next 8-byte boundary.
  };
  put_section(shard.rows.data(), num_rows * sizeof(uint32_t),
              layout.offsets_off);
  put_section(shard.offsets.data(), (num_rows + 1) * sizeof(uint64_t),
              layout.neighbors_off);
  put_section(shard.neighbors.data(), num_edges * sizeof(uint32_t),
              layout.weights_off);
  put_section(shard.weights.data(), num_edges * sizeof(float),
              layout.file_bytes);
  return buf;
}

StatusOr<ShardManifest> ReadManifest(const std::string& path) {
  auto bytes_or = ReadFileBytes(path);
  if (!bytes_or.ok()) return bytes_or.status();
  const std::string& bytes = bytes_or.value();

  if (bytes.size() < sizeof(kManifestMagic) + sizeof(uint32_t)) {
    return Corrupt(path, "truncated manifest (too small for header)");
  }
  if (std::memcmp(bytes.data(), kManifestMagic, sizeof(kManifestMagic)) != 0) {
    return Corrupt(path, "bad magic (not a shard manifest)");
  }
  const size_t payload = bytes.size() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + payload, sizeof(stored_crc));
  if (common::Crc32(bytes.data(), payload) != stored_crc) {
    return Corrupt(path, "manifest CRC mismatch");
  }

  Cursor cur{bytes.data() + sizeof(kManifestMagic),
             payload - sizeof(kManifestMagic)};
  ShardManifest manifest;
  manifest.version = cur.Pod<uint32_t>();
  if (cur.ok && manifest.version != kFormatVersion) {
    return Corrupt(path, "unsupported format version " +
                             std::to_string(manifest.version));
  }
  const uint32_t num_shards = cur.Pod<uint32_t>();
  manifest.num_nodes = cur.Pod<uint32_t>();
  manifest.num_edges = cur.Pod<uint64_t>();
  if (cur.ok && (num_shards == 0 || num_shards > (1u << 20))) {
    return Corrupt(path, "implausible shard count " +
                             std::to_string(num_shards));
  }
  if (cur.ok) manifest.shards.reserve(num_shards);
  for (uint32_t s = 0; cur.ok && s < num_shards; ++s) {
    ShardEntry entry;
    entry.num_rows = cur.Pod<uint32_t>();
    entry.min_node = cur.Pod<uint32_t>();
    entry.max_node = cur.Pod<uint32_t>();
    entry.num_edges = cur.Pod<uint64_t>();
    entry.file_bytes = cur.Pod<uint64_t>();
    manifest.shards.push_back(entry);
  }
  const uint32_t assignment_crc = cur.Pod<uint32_t>();
  if (cur.ok) {
    manifest.shard_of.resize(manifest.num_nodes);
    cur.Take(manifest.shard_of.data(),
             manifest.shard_of.size() * sizeof(uint32_t));
  }
  if (!cur.ok) return Corrupt(path, "truncated manifest");
  if (cur.left != 0) return Corrupt(path, "trailing bytes after manifest");
  if (common::Crc32(manifest.shard_of.data(),
                    manifest.shard_of.size() * sizeof(uint32_t)) !=
      assignment_crc) {
    return Corrupt(path, "assignment section CRC mismatch");
  }
  return manifest;
}

StatusOr<ShardHeader> ParseShardHeader(const void* bytes, uint64_t file_bytes,
                                       const std::string& where) {
  if (file_bytes < kShardHeaderBytes) {
    return Corrupt(where, "truncated shard file (smaller than header)");
  }
  const char* p = static_cast<const char*>(bytes);
  if (std::memcmp(p, kShardMagic, sizeof(kShardMagic)) != 0) {
    return Corrupt(where, "bad magic (not a shard file)");
  }
  Cursor cur{p + sizeof(kShardMagic),
             kShardHeaderBytes - sizeof(kShardMagic)};
  const uint32_t version = cur.Pod<uint32_t>();
  ShardHeader header;
  header.shard_id = cur.Pod<uint32_t>();
  header.num_rows = cur.Pod<uint32_t>();
  header.crc_rows = cur.Pod<uint32_t>();
  header.num_edges = cur.Pod<uint64_t>();
  header.crc_offsets = cur.Pod<uint32_t>();
  header.crc_neighbors = cur.Pod<uint32_t>();
  header.crc_weights = cur.Pod<uint32_t>();
  const uint32_t header_crc = cur.Pod<uint32_t>();
  if (common::Crc32(p, kShardHeaderBytes - sizeof(uint32_t)) != header_crc) {
    return Corrupt(where, "shard header CRC mismatch");
  }
  if (version != kFormatVersion) {
    return Corrupt(where,
                   "unsupported format version " + std::to_string(version));
  }
  const ShardLayout layout = LayoutFor(header.num_rows, header.num_edges);
  if (layout.file_bytes != file_bytes) {
    return Corrupt(where, "truncated shard file (header implies " +
                              std::to_string(layout.file_bytes) +
                              " bytes, file has " +
                              std::to_string(file_bytes) + ")");
  }
  return header;
}

Status VerifyShardSections(const void* bytes, const ShardHeader& header,
                           const std::string& where) {
  const char* p = static_cast<const char*>(bytes);
  const ShardLayout layout = LayoutFor(header.num_rows, header.num_edges);
  struct Section {
    const char* name;
    uint64_t off;
    uint64_t size;
    uint32_t crc;
  };
  const Section sections[] = {
      {"rows", layout.rows_off, header.num_rows * sizeof(uint32_t),
       header.crc_rows},
      {"offsets", layout.offsets_off,
       (uint64_t{header.num_rows} + 1) * sizeof(uint64_t),
       header.crc_offsets},
      {"neighbors", layout.neighbors_off, header.num_edges * sizeof(uint32_t),
       header.crc_neighbors},
      {"weights", layout.weights_off, header.num_edges * sizeof(float),
       header.crc_weights},
  };
  for (const Section& section : sections) {
    if (common::Crc32(p + section.off, section.size) != section.crc) {
      return Corrupt(where, std::string("CRC mismatch in ") + section.name +
                                " section");
    }
  }
  return Status::OK();
}

StatusOr<ShardData> ReadShardFile(const std::string& path) {
  auto bytes_or = ReadFileBytes(path);
  if (!bytes_or.ok()) return bytes_or.status();
  const std::string& bytes = bytes_or.value();

  auto header_or = ParseShardHeader(bytes.data(), bytes.size(), path);
  if (!header_or.ok()) return header_or.status();
  const ShardHeader& header = header_or.value();
  SGNN_RETURN_IF_ERROR(VerifyShardSections(bytes.data(), header, path));

  const ShardLayout layout = LayoutFor(header.num_rows, header.num_edges);
  ShardData shard;
  shard.shard_id = header.shard_id;
  shard.rows.resize(header.num_rows);
  shard.offsets.resize(uint64_t{header.num_rows} + 1);
  shard.neighbors.resize(header.num_edges);
  shard.weights.resize(header.num_edges);
  std::memcpy(shard.rows.data(), bytes.data() + layout.rows_off,
              shard.rows.size() * sizeof(uint32_t));
  std::memcpy(shard.offsets.data(), bytes.data() + layout.offsets_off,
              shard.offsets.size() * sizeof(uint64_t));
  std::memcpy(shard.neighbors.data(), bytes.data() + layout.neighbors_off,
              shard.neighbors.size() * sizeof(uint32_t));
  std::memcpy(shard.weights.data(), bytes.data() + layout.weights_off,
              shard.weights.size() * sizeof(float));
  return shard;
}

uint64_t ParseBudget(const char* text, uint64_t fallback) {
  if (text == nullptr || *text == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text) return fallback;
  uint64_t multiplier = 1;
  if (*end == 'k' || *end == 'K') {
    multiplier = uint64_t{1} << 10;
    ++end;
  } else if (*end == 'm' || *end == 'M') {
    multiplier = uint64_t{1} << 20;
    ++end;
  } else if (*end == 'g' || *end == 'G') {
    multiplier = uint64_t{1} << 30;
    ++end;
  }
  if (*end != '\0') return fallback;
  return static_cast<uint64_t>(value) * multiplier;
}

uint64_t ResidentBudgetBytes(uint64_t context_budget) {
  if (context_budget != 0) return context_budget;
  return ParseBudget(std::getenv(kResidentBudgetEnv), 0);
}

}  // namespace sgnn::storage
