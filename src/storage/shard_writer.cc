#include "storage/shard_writer.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/check.h"
#include "common/posix.h"

namespace sgnn::storage {

using common::Status;
using graph::NodeId;

namespace {

/// Writes `bytes` to `path` via a `.tmp` sibling + rename, the same
/// atomicity story as checkpoint saves: a crash mid-write leaves the old
/// file (or nothing), never a torn one.
Status AtomicWrite(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot write " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) return Status::IOError("write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return common::StatusFromErrno("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

}  // namespace

ShardPlan ShardPlan::Contiguous(const graph::CsrGraph& graph,
                                int num_shards) {
  SGNN_CHECK_GT(num_shards, 0);
  ShardPlan plan;
  plan.num_shards = num_shards;
  plan.shard_of.resize(graph.num_nodes());
  // Cumulative weight offsets[u+1] + (u+1): edges dominate, the +1 per
  // node keeps sparse/empty graphs splitting instead of collapsing into
  // shard 0. Cut after a node once its prefix passes the next 1/k
  // quantile; integer arithmetic keeps the cuts exact and deterministic.
  const auto& offsets = graph.offsets();
  const int64_t total =
      graph.num_edges() + static_cast<int64_t>(graph.num_nodes());
  int shard = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    plan.shard_of[u] = static_cast<uint32_t>(shard);
    const int64_t prefix = offsets[u + 1] + static_cast<int64_t>(u) + 1;
    while (shard + 1 < num_shards &&
           prefix * num_shards >= (shard + 1) * total) {
      ++shard;
    }
  }
  return plan;
}

ShardPlan ShardPlan::FromPartition(const partition::Partition& partition) {
  SGNN_CHECK_GT(partition.k, 0);
  ShardPlan plan;
  plan.num_shards = partition.k;
  plan.shard_of.reserve(partition.part_of.size());
  for (int part : partition.part_of) {
    SGNN_CHECK(part >= 0 && part < partition.k);
    plan.shard_of.push_back(static_cast<uint32_t>(part));
  }
  return plan;
}

Status WriteShardedGraph(const graph::CsrGraph& graph, const ShardPlan& plan,
                         const std::string& dir) {
  if (plan.num_shards <= 0) {
    return Status::InvalidArgument("shard plan has no shards");
  }
  if (plan.shard_of.size() != graph.num_nodes()) {
    return Status::InvalidArgument(
        "shard plan covers " + std::to_string(plan.shard_of.size()) +
        " nodes, graph has " + std::to_string(graph.num_nodes()));
  }
  for (size_t u = 0; u < plan.shard_of.size(); ++u) {
    if (plan.shard_of[u] >= static_cast<uint32_t>(plan.num_shards)) {
      return Status::InvalidArgument(
          "node " + std::to_string(u) + " assigned to shard " +
          std::to_string(plan.shard_of[u]) + " of " +
          std::to_string(plan.num_shards));
    }
  }

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create " + dir + ": " + ec.message());

  // Rows per shard in ascending node order — the order every reader and
  // the cache iterate in, and what makes per-row output independent of
  // shard geometry.
  std::vector<std::vector<NodeId>> rows(
      static_cast<size_t>(plan.num_shards));
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    rows[plan.shard_of[u]].push_back(u);
  }

  ShardManifest manifest;
  manifest.num_nodes = graph.num_nodes();
  manifest.num_edges = static_cast<uint64_t>(graph.num_edges());
  manifest.shard_of = plan.shard_of;
  manifest.shards.resize(static_cast<size_t>(plan.num_shards));

  for (int s = 0; s < plan.num_shards; ++s) {
    ShardData shard;
    shard.shard_id = static_cast<uint32_t>(s);
    shard.rows = rows[static_cast<size_t>(s)];
    shard.offsets.reserve(shard.rows.size() + 1);
    shard.offsets.push_back(0);
    for (NodeId u : shard.rows) {
      auto nbrs = graph.Neighbors(u);
      auto ws = graph.Weights(u);
      shard.neighbors.insert(shard.neighbors.end(), nbrs.begin(), nbrs.end());
      shard.weights.insert(shard.weights.end(), ws.begin(), ws.end());
      shard.offsets.push_back(shard.neighbors.size());
    }

    const std::string bytes = SerializeShard(shard);
    SGNN_RETURN_IF_ERROR(AtomicWrite(ShardPath(dir, s), bytes));

    ShardEntry& entry = manifest.shards[static_cast<size_t>(s)];
    entry.num_rows = static_cast<uint32_t>(shard.rows.size());
    entry.min_node = shard.rows.empty() ? 0 : shard.rows.front();
    entry.max_node = shard.rows.empty() ? 0 : shard.rows.back();
    entry.num_edges = shard.neighbors.size();
    entry.file_bytes = bytes.size();
  }

  // Manifest last: an interrupted conversion leaves a directory that
  // fails to open (no manifest) rather than one that lies.
  return AtomicWrite(ManifestPath(dir), SerializeManifest(manifest));
}

}  // namespace sgnn::storage
