#ifndef SGNN_STORAGE_OOC_H_
#define SGNN_STORAGE_OOC_H_

#include <span>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "graph/propagate.h"
#include "ppr/ppr.h"
#include "sampling/block.h"
#include "storage/sharded_graph.h"
#include "tensor/matrix.h"

namespace sgnn::storage {

/// Out-of-core counterparts of the in-memory kernels, streaming shards
/// through the `ShardedGraph` cache instead of holding the adjacency
/// resident.
///
/// Bit-identity contract: each kernel reproduces its in-memory
/// counterpart's arithmetic exactly — same per-row accumulation order,
/// same double->float coefficient rounding, same keyed RNG draws — and a
/// shard holds whole rows, so for any shard plan, any budget, and any
/// `SGNN_THREADS` the outputs are byte-identical to the in-memory kernel
/// on the same graph. Only the shard-fault/eviction counters change with
/// the budget. Kernels orchestrate cache access from the calling thread
/// (parallelism fans out *inside* a pinned shard), which also makes the
/// load/eviction sequence deterministic.

/// Out-of-core `graph::Propagator`: the O(num_edges) coefficient array is
/// never materialised — coefficients are recomputed per edge from a
/// resident O(num_nodes) degree table using the exact double-precision
/// expressions the in-memory constructor evaluates, so the rounded float
/// applied per edge is bit-identical.
class OocPropagator {
 public:
  /// Builds the resident degree/self-loop tables with one streaming pass
  /// over the shards (ascending order). Fails with the cache's status when
  /// a shard cannot be loaded. `graph` must outlive the propagator.
  static common::StatusOr<OocPropagator> Create(ShardedGraph* graph,
                                                graph::Normalization norm,
                                                bool add_self_loops);

  /// out = \hat{A} x, bit-identical to `Propagator::Apply`. Streams shards
  /// in ascending order; rows within the pinned shard fan out over
  /// `sgnn::par`. Bills edges/floats to `common::GlobalCounters` exactly
  /// like the in-memory kernel.
  SGNN_NODISCARD common::Status Apply(const tensor::Matrix& x, tensor::Matrix* out) const;

  graph::Normalization normalization() const { return norm_; }
  bool self_loops() const { return !self_loop_coeff_.empty(); }

  /// Public only for `StatusOr`; a default-constructed propagator is inert.
  OocPropagator() = default;

 private:
  ShardedGraph* graph_ = nullptr;
  graph::Normalization norm_ = graph::Normalization::kNone;
  std::vector<double> degree_;          // Weighted degree (+1 w/ self loops).
  std::vector<float> self_loop_coeff_;  // Per node; empty if no self loops.
};

/// Out-of-core `ppr::ForwardPush`: identical queue traversal (and thus
/// identical result and push/edge counts); neighbour reads pin the owning
/// shard per push, degrees come from the resident index.
SGNN_NODISCARD common::StatusOr<ppr::PushResult> ForwardPush(ShardedGraph* graph,
                                              graph::NodeId source,
                                              double alpha, double r_max);

/// Out-of-core `ppr::PushBatch`. Seeds run *sequentially* (unlike the
/// in-memory batch) so the eviction sequence is reproducible; per-seed
/// results are bit-identical to both `ppr::PushBatch` and per-seed
/// `ForwardPush`.
SGNN_NODISCARD common::StatusOr<std::vector<ppr::PushResult>> PushBatch(
    ShardedGraph* graph, std::span<const graph::NodeId> seeds, double alpha,
    double r_max);

/// Out-of-core `sampling::SampleNodeWise`: same per-layer engine draw and
/// per-destination keyed streams, so the batch is byte-identical to the
/// in-memory sampler with an equal-state `rng`. Destinations are grouped
/// by shard and shards visited in ascending order; the keyed draws make
/// the grouping invisible in the output.
SGNN_NODISCARD common::StatusOr<sampling::MiniBatch> SampleNodeWise(
    ShardedGraph* graph, std::span<const graph::NodeId> seeds,
    std::span<const int> fanouts, common::Rng* rng);

}  // namespace sgnn::storage

#endif  // SGNN_STORAGE_OOC_H_
