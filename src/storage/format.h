#ifndef SGNN_STORAGE_FORMAT_H_
#define SGNN_STORAGE_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/types.h"

namespace sgnn::storage {

/// On-disk sharded-CSR graph format, version 1.
///
/// A sharded graph is a directory holding one `manifest.sgnn` plus one
/// `shard-NNNNNN.sgnn` file per shard. Shards own disjoint *sets* of nodes
/// (not necessarily contiguous ranges — a `partition::Partition` may
/// interleave them); each shard file stores the full adjacency of its nodes
/// as a local CSR. Every section carries a CRC-32 (same `common/crc32` the
/// pipeline checkpoints use) so corruption surfaces as a diagnostic, never
/// as silently wrong results.
///
/// Manifest layout (variable-size fields framed, read via a bounds-checked
/// cursor; integrity = trailing CRC over everything before it):
///
///   magic "SGNNSHMF" | u32 version | u32 num_shards | u32 num_nodes
///   | u64 num_edges
///   | num_shards x { u32 num_rows | u32 min_node | u32 max_node
///                  | u64 num_edges | u64 file_bytes }
///   | u32 assignment_crc | num_nodes x u32 shard_of
///   | u32 manifest_crc
///
/// Shard file layout (mmap'd at run time, so every section starts on an
/// 8-byte boundary; pad bytes are zero and excluded from section CRCs):
///
///   header (48 bytes):
///     magic "SGNNSHRD" | u32 version | u32 shard_id | u32 num_rows
///     | u32 crc_rows | u64 num_edges | u32 crc_offsets | u32 crc_neighbors
///     | u32 crc_weights | u32 header_crc          (CRC of bytes [0, 44))
///   sections (each padded to 8 bytes):
///     rows       num_rows x u32       sorted global node ids
///     offsets    (num_rows+1) x u64   local CSR offsets, offsets[0] = 0
///     neighbors  num_edges x u32      global ids, sorted per row
///     weights    num_edges x f32      aligned with neighbors
inline constexpr char kManifestMagic[8] = {'S', 'G', 'N', 'N',
                                           'S', 'H', 'M', 'F'};
inline constexpr char kShardMagic[8] = {'S', 'G', 'N', 'N', 'S', 'H', 'R', 'D'};
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr uint64_t kShardHeaderBytes = 48;

/// Environment variable consulted when `RunContext::resident_budget_bytes`
/// is 0: decimal bytes with an optional K/M/G suffix (1024-based).
inline constexpr char kResidentBudgetEnv[] = "SGNN_RESIDENT_BUDGET";

/// Per-shard summary recorded in the manifest. `min_node`/`max_node` bound
/// the shard's (possibly non-contiguous) node set; `file_bytes` is the
/// exact shard file size, which doubles as the shard's resident cost when
/// mapped.
struct ShardEntry {
  uint32_t num_rows = 0;
  graph::NodeId min_node = 0;
  graph::NodeId max_node = 0;
  uint64_t num_edges = 0;
  uint64_t file_bytes = 0;
};

/// Decoded manifest: shard table plus the full node->shard assignment.
struct ShardManifest {
  uint32_t version = kFormatVersion;
  graph::NodeId num_nodes = 0;
  uint64_t num_edges = 0;
  std::vector<ShardEntry> shards;
  std::vector<uint32_t> shard_of;  // size num_nodes
};

/// Fully decoded shard file (validators and tests; the hot path maps the
/// file instead of decoding it).
struct ShardData {
  uint32_t shard_id = 0;
  std::vector<graph::NodeId> rows;       // sorted global ids
  std::vector<uint64_t> offsets;         // size rows.size() + 1
  std::vector<graph::NodeId> neighbors;  // size offsets.back()
  std::vector<float> weights;            // aligned with neighbors
};

/// Fixed-size shard header after magic/version/CRC verification.
struct ShardHeader {
  uint32_t shard_id = 0;
  uint32_t num_rows = 0;
  uint64_t num_edges = 0;
  uint32_t crc_rows = 0;
  uint32_t crc_offsets = 0;
  uint32_t crc_neighbors = 0;
  uint32_t crc_weights = 0;
};

/// Byte offsets of each section for the given counts. `file_bytes` is the
/// total (and exact) shard file size.
struct ShardLayout {
  uint64_t rows_off = 0;
  uint64_t offsets_off = 0;
  uint64_t neighbors_off = 0;
  uint64_t weights_off = 0;
  uint64_t file_bytes = 0;
};

ShardLayout LayoutFor(uint64_t num_rows, uint64_t num_edges);

std::string ManifestPath(const std::string& dir);
std::string ShardPath(const std::string& dir, int shard);

/// Serialises to the layouts documented above (CRCs included).
std::string SerializeManifest(const ShardManifest& manifest);
std::string SerializeShard(const ShardData& shard);

/// Decodes + integrity-checks a manifest file. Framing errors (truncation,
/// bad magic/version) and CRC mismatches return `kDataLoss` naming the first
/// offending section; a missing file returns `kNotFound`. Semantic checks
/// (assignment consistency, overlap) live in `analysis::ValidateShardManifest`.
SGNN_NODISCARD common::StatusOr<ShardManifest> ReadManifest(const std::string& path);

/// Decodes + integrity-checks one shard file (magic, version, exact size,
/// header CRC, all four section CRCs), same status contract as
/// `ReadManifest`.
SGNN_NODISCARD common::StatusOr<ShardData> ReadShardFile(const std::string& path);

/// Verifies magic/version/header-CRC and that `file_bytes` matches the
/// layout implied by the header counts, without touching the sections.
/// `where` names the file in diagnostics.
SGNN_NODISCARD common::StatusOr<ShardHeader> ParseShardHeader(const void* bytes,
                                               uint64_t file_bytes,
                                               const std::string& where);

/// CRC-checks all four sections of a complete shard image (mapped or
/// read); `header` must come from `ParseShardHeader` over the same bytes.
SGNN_NODISCARD common::Status VerifyShardSections(const void* bytes,
                                   const ShardHeader& header,
                                   const std::string& where);

/// Parses a budget spec: decimal bytes with an optional K/M/G suffix
/// (1024-based), e.g. "262144", "256K", "1G". Null/empty/invalid specs
/// return `fallback`. "0" means unlimited, matching the budget convention.
uint64_t ParseBudget(const char* text, uint64_t fallback);

/// Effective resident budget: `context_budget` when non-zero, else the
/// `SGNN_RESIDENT_BUDGET` environment variable, else 0 (unlimited).
uint64_t ResidentBudgetBytes(uint64_t context_budget);

}  // namespace sgnn::storage

#endif  // SGNN_STORAGE_FORMAT_H_
