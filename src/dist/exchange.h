#ifndef SGNN_DIST_EXCHANGE_H_
#define SGNN_DIST_EXCHANGE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/csr_graph.h"
#include "partition/partition.h"
#include "tensor/matrix.h"

namespace sgnn::dist {

/// Per-epoch communication plan for partition-parallel propagation: which
/// rows each worker owns and which remote (halo/boundary) rows it must
/// receive before it can aggregate its local nodes. `need[w]` is exactly
/// the set `core::SimulateDistributedEpoch` prices — the distinct
/// neighbours of w's local nodes owned by other workers — so measured
/// wire volume and E15's simulated volume are directly comparable.
/// Both lists are sorted ascending, making every payload deterministic.
struct HaloPlan {
  int num_workers = 0;
  std::vector<std::vector<graph::NodeId>> owned;  ///< Per worker, sorted.
  std::vector<std::vector<graph::NodeId>> need;   ///< Per worker, sorted.

  /// Sum over workers of |need[w]| (the simulator's replicated-node count).
  int64_t total_halo_nodes() const;
  /// Scalars shipped per epoch at feature width `dim` (E15's halo_values).
  int64_t halo_values(int64_t dim) const;
};

HaloPlan BuildHaloPlan(const graph::CsrGraph& graph,
                       const partition::Partition& parts);

/// Row-batch payload codec, shared by scatter, halo, and gather frames:
/// `u32 count`, then `count` records of `u32 node id` + `cols` raw floats.
/// Floats travel as raw bits, which is what makes a respawned worker's
/// recomputation bit-identical to the original.
std::string EncodeRows(const std::vector<graph::NodeId>& ids,
                       const tensor::Matrix& src);

/// Decodes a row batch, invoking `sink(id, row)` per record with `row`
/// pointing at `cols` floats. Framing errors are `kDataLoss`; a non-OK
/// sink status aborts the decode and is returned as-is.
SGNN_NODISCARD common::Status DecodeRows(
    const std::string& payload, int64_t cols,
    const std::function<common::Status(graph::NodeId, const float*)>& sink);

}  // namespace sgnn::dist

#endif  // SGNN_DIST_EXCHANGE_H_
