#ifndef SGNN_DIST_FRAME_H_
#define SGNN_DIST_FRAME_H_

#include <cstdint>
#include <string>

#include "common/fault.h"
#include "common/status.h"

namespace sgnn::dist {

/// `sgnn::dist` wire protocol: every message between the coordinator and a
/// worker is one length-prefixed, CRC-32'd frame over a `socketpair`
/// stream. The 20-byte header carries magic, type, epoch, payload length,
/// and the payload's CRC; a receiver therefore *detects* a torn stream, a
/// flipped bit, or a peer that died mid-frame (`kDataLoss`) instead of
/// mis-parsing it, and a cleanly closed peer surfaces as `kUnavailable`.
/// Frames are self-delimiting, so a lost frame never desynchronises the
/// frames after it.

enum class FrameType : uint32_t {
  kConfig = 1,     ///< Coordinator -> worker: WorkerSpec (spawn/respawn).
  kRows = 2,       ///< Either direction: a batch of (node id, float row).
  kHalo = 3,       ///< Coordinator -> worker: boundary rows for an epoch.
  kGo = 4,         ///< Coordinator -> worker: compute epoch `epoch`.
  kHeartbeat = 5,  ///< Worker -> coordinator: alive and computing.
  kEpochDone = 6,  ///< Worker -> coordinator: all result rows sent.
  kShutdown = 7,   ///< Coordinator -> worker: exit cleanly.
};

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  uint32_t epoch = 0;
  std::string payload;
};

/// Serialized frame header size (magic, type, epoch, length, payload CRC).
inline constexpr std::size_t kFrameHeaderBytes = 20;
/// Upper bound a receiver accepts for one payload; a corrupted length
/// field fails fast instead of driving a giant allocation.
inline constexpr uint32_t kMaxFramePayload = 1u << 30;

/// Fault-injection sites observed by the frame layer and the worker loop
/// (token = `KillToken(worker, epoch, incarnation)`):
///  - `dist.worker.kill`: worker `_exit`s mid-epoch, after shipping some
///    but not all of its result rows.
///  - `dist.frame.drop`: sender silently skips one frame (the receiver
///    sees a stalled stream and recovers via its deadline).
///  - `dist.frame.corrupt`: one payload byte is flipped *after* the CRC is
///    computed, so the receiver detects `kDataLoss`.
///  - `dist.frame.truncate`: sender writes half the frame then stops, as a
///    crash mid-`write` would.
inline constexpr char kSiteWorkerKill[] = "dist.worker.kill";
inline constexpr char kSiteFrameDrop[] = "dist.frame.drop";
inline constexpr char kSiteFrameCorrupt[] = "dist.frame.corrupt";
inline constexpr char kSiteFrameTruncate[] = "dist.frame.truncate";

/// Order-independent fault token for worker `worker` in epoch `epoch` of
/// incarnation `incarnation`. Token triggers are replayable (see
/// `FaultInjector`), so the incarnation is part of the token: a respawned
/// worker draws a fresh verdict instead of being re-killed forever.
constexpr uint64_t KillToken(int worker, int epoch, int incarnation) {
  return (static_cast<uint64_t>(incarnation) << 40) |
         (static_cast<uint64_t>(epoch) << 16) | static_cast<uint64_t>(worker);
}

/// Optional sender-side fault hook for `WriteFrame`.
struct FrameFaults {
  common::FaultInjector* injector = nullptr;
  uint64_t token = 0;
};

/// Byte/frame accounting, filled by the read/write calls that took it.
struct WireStats {
  uint64_t frames = 0;
  uint64_t bytes = 0;  ///< Header + payload bytes actually on the wire.
};

/// Writes one frame. With `faults` armed, the drop site makes the write a
/// silent no-op (OK), the corrupt site flips a payload byte post-CRC, and
/// the truncate site writes half the bytes and returns `kDataLoss` — the
/// sender's stream is then poisoned and it must stop using the socket.
SGNN_NODISCARD common::Status WriteFrame(int fd, const Frame& frame,
                          WireStats* stats = nullptr,
                          const FrameFaults& faults = {});

/// Reads one frame, honouring `deadline` on every blocking wait
/// (`kDeadlineExceeded` when it expires first). A peer that closed the
/// stream between frames is `kUnavailable`; one that died mid-frame, or a
/// CRC/framing mismatch, is `kDataLoss`.
SGNN_NODISCARD common::Status ReadFrame(int fd, Frame* frame, const common::Deadline& deadline,
                         WireStats* stats = nullptr);

}  // namespace sgnn::dist

#endif  // SGNN_DIST_FRAME_H_
