#include "dist/frame.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/crc32.h"
#include "common/posix.h"

namespace sgnn::dist {

using common::Status;

namespace {

constexpr uint32_t kFrameMagic = 0x53444631;  // "SDF1"

void PutU32(char* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// `ReadFull` with the deadline honoured on every blocking wait: each
/// iteration polls for readability with the remaining budget, then reads
/// what is available. `bytes_read` counts bytes consumed even on failure.
Status ReadWithDeadline(int fd, void* buf, std::size_t n,
                        const common::Deadline& deadline,
                        std::size_t* bytes_read) {
  char* p = static_cast<char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    if (!deadline.infinite()) {
      const int64_t remaining = deadline.remaining_micros();
      if (remaining <= 0) {
        if (bytes_read != nullptr) *bytes_read = done;
        return Status::DeadlineExceeded("read deadline expired after " +
                                        std::to_string(done) + "/" +
                                        std::to_string(n) + " bytes");
      }
      struct pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLIN;
      const int timeout_ms = static_cast<int>(
          std::min<int64_t>((remaining + 999) / 1000, 60'000));
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        if (bytes_read != nullptr) *bytes_read = done;
        return common::StatusFromErrno("poll failed");
      }
      if (ready == 0) continue;  // Re-check the deadline, poll again.
    }
    const ssize_t got = ::read(fd, p + done, n - done);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (bytes_read != nullptr) *bytes_read = done;
      return common::StatusFromErrno("read failed");
    }
    if (got == 0) {
      if (bytes_read != nullptr) *bytes_read = done;
      return Status::DataLoss("unexpected EOF after " + std::to_string(done) +
                              "/" + std::to_string(n) + " bytes");
    }
    done += static_cast<std::size_t>(got);
  }
  if (bytes_read != nullptr) *bytes_read = done;
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, const Frame& frame, WireStats* stats,
                  const FrameFaults& faults) {
  if (frame.payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload too large: " +
                                   std::to_string(frame.payload.size()));
  }
  std::string wire(kFrameHeaderBytes, '\0');
  PutU32(wire.data(), kFrameMagic);
  PutU32(wire.data() + 4, static_cast<uint32_t>(frame.type));
  PutU32(wire.data() + 8, frame.epoch);
  PutU32(wire.data() + 12, static_cast<uint32_t>(frame.payload.size()));
  PutU32(wire.data() + 16,
         common::Crc32(frame.payload.data(), frame.payload.size()));
  wire += frame.payload;

  if (faults.injector != nullptr) {
    if (faults.injector->ShouldFail(kSiteFrameDrop, faults.token)) {
      return Status::OK();  // Silently lost; the receiver's deadline acts.
    }
    if (!frame.payload.empty() &&
        faults.injector->ShouldFail(kSiteFrameCorrupt, faults.token)) {
      wire[kFrameHeaderBytes] =
          static_cast<char>(wire[kFrameHeaderBytes] ^ 0x5A);
    }
    if (faults.injector->ShouldFail(kSiteFrameTruncate, faults.token)) {
      const std::size_t half = wire.size() / 2;
      SGNN_RETURN_IF_ERROR(common::WriteFull(fd, wire.data(), half));
      if (stats != nullptr) stats->bytes += half;
      return Status::DataLoss("injected frame truncation after " +
                              std::to_string(half) + " bytes");
    }
  }

  SGNN_RETURN_IF_ERROR(common::WriteFull(fd, wire.data(), wire.size()));
  if (stats != nullptr) {
    stats->frames += 1;
    stats->bytes += wire.size();
  }
  return Status::OK();
}

Status ReadFrame(int fd, Frame* frame, const common::Deadline& deadline,
                 WireStats* stats) {
  SGNN_CHECK(frame != nullptr);
  char header[kFrameHeaderBytes];
  std::size_t got = 0;
  Status status = ReadWithDeadline(fd, header, sizeof(header), deadline, &got);
  if (!status.ok()) {
    if (status.code() == common::StatusCode::kDataLoss && got == 0) {
      // EOF on a frame boundary: the peer closed (or died) cleanly from
      // the stream's point of view — retryable, unlike a torn frame.
      return Status::Unavailable("peer closed connection");
    }
    return status;
  }
  if (GetU32(header) != kFrameMagic) {
    return Status::DataLoss("bad frame magic (stream desynchronised)");
  }
  const uint32_t type = GetU32(header + 4);
  const uint32_t epoch = GetU32(header + 8);
  const uint32_t length = GetU32(header + 12);
  const uint32_t payload_crc = GetU32(header + 16);
  if (length > kMaxFramePayload) {
    return Status::DataLoss("implausible frame payload length " +
                            std::to_string(length));
  }
  std::string payload(length, '\0');
  if (length > 0) {
    SGNN_RETURN_IF_ERROR(
        ReadWithDeadline(fd, payload.data(), length, deadline, nullptr));
  }
  if (common::Crc32(payload.data(), payload.size()) != payload_crc) {
    return Status::DataLoss("frame payload CRC mismatch");
  }
  frame->type = static_cast<FrameType>(type);
  frame->epoch = epoch;
  frame->payload = std::move(payload);
  if (stats != nullptr) {
    stats->frames += 1;
    stats->bytes += kFrameHeaderBytes + length;
  }
  return Status::OK();
}

}  // namespace sgnn::dist
