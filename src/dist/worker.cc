#include "dist/worker.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <type_traits>
#include <utility>

#include "common/check.h"
#include "common/counters.h"
#include "dist/exchange.h"
#include "dist/frame.h"
#include "tensor/matrix.h"

namespace sgnn::dist {

using common::Status;
using common::StatusOr;
using graph::NodeId;

namespace {

// Same append/cursor serialisation idiom as storage/format.cc: PODs and
// POD vectors into a growable buffer, read back bounds-checked so a short
// payload is a framing error, never UB. (The frame CRC already catches
// corruption; the cursor catches logic/version mismatches.)

template <typename T>
void PutPod(std::string* buf, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  buf->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
void PutVec(std::string* buf, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  PutPod<uint64_t>(buf, v.size());
  buf->append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
}

struct Cursor {
  const char* p;
  size_t left;
  bool ok = true;

  bool Take(void* out, size_t n) {
    if (!ok || n > left) {
      ok = false;
      return false;
    }
    std::memcpy(out, p, n);
    p += n;
    left -= n;
    return true;
  }

  template <typename T>
  T Pod() {
    T v{};
    Take(&v, sizeof(v));
    return v;
  }

  template <typename T>
  void Vec(std::vector<T>* out) {
    const uint64_t n = Pod<uint64_t>();
    if (!ok || n * sizeof(T) > left) {
      ok = false;
      return;
    }
    out->resize(n);
    Take(out->data(), n * sizeof(T));
  }
};

}  // namespace

std::string WorkerSpec::Serialize() const {
  std::string buf;
  PutPod<int32_t>(&buf, worker_id);
  PutPod<int32_t>(&buf, num_workers);
  PutPod<int32_t>(&buf, incarnation);
  PutPod<int32_t>(&buf, rows_per_frame);
  PutPod<int64_t>(&buf, cols);
  PutPod<int64_t>(&buf, read_deadline_micros);
  PutVec(&buf, owned);
  PutVec(&buf, halo);
  PutVec(&buf, offsets);
  PutVec(&buf, neighbors);
  PutVec(&buf, coefficients);
  PutVec(&buf, self_loop);
  return buf;
}

StatusOr<WorkerSpec> WorkerSpec::Parse(const std::string& payload) {
  Cursor cur{payload.data(), payload.size()};
  WorkerSpec spec;
  spec.worker_id = cur.Pod<int32_t>();
  spec.num_workers = cur.Pod<int32_t>();
  spec.incarnation = cur.Pod<int32_t>();
  spec.rows_per_frame = cur.Pod<int32_t>();
  spec.cols = cur.Pod<int64_t>();
  spec.read_deadline_micros = cur.Pod<int64_t>();
  cur.Vec(&spec.owned);
  cur.Vec(&spec.halo);
  cur.Vec(&spec.offsets);
  cur.Vec(&spec.neighbors);
  cur.Vec(&spec.coefficients);
  cur.Vec(&spec.self_loop);
  if (!cur.ok || cur.left != 0) {
    return Status::DataLoss("truncated or oversized worker spec");
  }
  if (spec.worker_id < 0 || spec.num_workers <= 0 ||
      spec.worker_id >= spec.num_workers || spec.cols < 0 ||
      spec.rows_per_frame <= 0 ||
      spec.offsets.size() != spec.owned.size() + 1 ||
      spec.self_loop.size() != spec.owned.size() ||
      spec.coefficients.size() != spec.neighbors.size() ||
      (!spec.offsets.empty() && spec.offsets.back() != spec.neighbors.size())) {
    return Status::DataLoss("inconsistent worker spec");
  }
  return spec;
}

namespace {

/// Mutable per-process worker state between frames.
struct WorkerState {
  WorkerSpec spec;
  tensor::Matrix local;  ///< Owned rows first, then halo rows.
  tensor::Matrix out;    ///< One row per owned node, epoch scratch.
  /// Global node id -> row slot in `local`; linear scan is avoided with a
  /// sorted-merge-friendly map (ids arrive sorted, lookups are random).
  std::vector<std::pair<NodeId, int64_t>> slots;  ///< Sorted by id.

  int64_t SlotOf(NodeId id) const {
    auto it = std::lower_bound(
        slots.begin(), slots.end(), id,
        [](const std::pair<NodeId, int64_t>& s, NodeId v) {
          return s.first < v;
        });
    if (it == slots.end() || it->first != id) return -1;
    return it->second;
  }
};

/// Encodes rows [begin, begin+count) of `state.out` as a row-batch
/// payload keyed by their global ids (matches `DecodeRows`).
std::string EncodeOutChunk(const WorkerState& state, size_t begin,
                           size_t count) {
  const int64_t cols = state.spec.cols;
  const size_t record = sizeof(uint32_t) + static_cast<size_t>(cols) *
                                               sizeof(float);
  std::string payload;
  payload.resize(sizeof(uint32_t) + count * record);
  char* p = payload.data();
  const uint32_t n = static_cast<uint32_t>(count);
  std::memcpy(p, &n, sizeof(n));
  p += sizeof(n);
  for (size_t i = begin; i < begin + count; ++i) {
    const uint32_t raw = static_cast<uint32_t>(state.spec.owned[i]);
    std::memcpy(p, &raw, sizeof(raw));
    p += sizeof(raw);
    std::memcpy(p, state.out.Row(static_cast<int64_t>(i)).data(),
                static_cast<size_t>(cols) * sizeof(float));
    p += static_cast<size_t>(cols) * sizeof(float);
  }
  return payload;
}

/// One epoch of local aggregation: the exact per-row loop of
/// `Propagator::Apply` (same accumulation order, same float coefficients,
/// self-loop term last), just indirected through the local slot table.
void ComputeEpoch(WorkerState* state) {
  const WorkerSpec& spec = state->spec;
  const int64_t cols = spec.cols;
  state->out.Zero();
  for (size_t i = 0; i < spec.owned.size(); ++i) {
    float* orow = state->out.Row(static_cast<int64_t>(i)).data();
    const uint64_t begin = spec.offsets[i];
    const uint64_t end = spec.offsets[i + 1];
    for (uint64_t e = begin; e < end; ++e) {
      const float c = spec.coefficients[e];
      if (c == 0.0f) continue;
      const int64_t slot = state->SlotOf(spec.neighbors[e]);
      SGNN_CHECK_GE(slot, 0);
      const float* xrow = state->local.Row(slot).data();
      for (int64_t j = 0; j < cols; ++j) orow[j] += c * xrow[j];
    }
    if (spec.self_loop[i] != 0.0f) {
      const float c = spec.self_loop[i];
      const float* xrow = state->local.Row(static_cast<int64_t>(i)).data();
      for (int64_t j = 0; j < cols; ++j) orow[j] += c * xrow[j];
    }
  }
  // Same billing as Propagator::Apply: every local edge is walked, and one
  // feature row moves per edge (this worker's own counters; the
  // coordinator aggregates per-process totals out of band).
  const uint64_t edges =
      spec.offsets.empty() ? 0 : spec.offsets[spec.owned.size()] -
                                     spec.offsets[0];
  auto& counters = common::GlobalCounters();
  counters.edges_touched += edges;
  counters.floats_moved += edges * static_cast<uint64_t>(cols);
}

/// Stores a received row batch (scatter, restore, or halo) into the local
/// value store; unknown ids are a protocol violation.
Status StoreRows(WorkerState* state, const std::string& payload) {
  return DecodeRows(
      payload, state->spec.cols, [state](NodeId id, const float* row) {
        const int64_t slot = state->SlotOf(id);
        if (slot < 0) {
          return Status::DataLoss("row for node " + std::to_string(id) +
                                  " not owned or haloed here");
        }
        std::memcpy(state->local.Row(slot).data(), row,
                    static_cast<size_t>(state->spec.cols) * sizeof(float));
        return Status::OK();
      });
}

}  // namespace

void WorkerMain(int fd, common::FaultInjector* faults) {
  WorkerState state;
  bool configured = false;
  for (;;) {
    const int64_t read_micros = state.spec.read_deadline_micros;
    Frame frame;
    const Status read_status =
        ReadFrame(fd, &frame, common::Deadline::After(read_micros));
    if (!read_status.ok()) {
      // Coordinator gone (EOF), stream torn, or deadline: nothing to do
      // but die; the coordinator's own detection drives recovery.
      _exit(read_status.code() == common::StatusCode::kUnavailable ? 0 : 5);
    }
    switch (frame.type) {
      case FrameType::kConfig: {
        auto spec_or = WorkerSpec::Parse(frame.payload);
        if (!spec_or.ok()) _exit(2);
        state.spec = std::move(spec_or).value();
        const int64_t rows = static_cast<int64_t>(state.spec.owned.size()) +
                             static_cast<int64_t>(state.spec.halo.size());
        state.local = tensor::Matrix(rows, state.spec.cols);
        state.out = tensor::Matrix(
            static_cast<int64_t>(state.spec.owned.size()), state.spec.cols);
        state.slots.clear();
        state.slots.reserve(static_cast<size_t>(rows));
        for (size_t i = 0; i < state.spec.owned.size(); ++i) {
          state.slots.emplace_back(state.spec.owned[i],
                                   static_cast<int64_t>(i));
        }
        for (size_t i = 0; i < state.spec.halo.size(); ++i) {
          state.slots.emplace_back(
              state.spec.halo[i],
              static_cast<int64_t>(state.spec.owned.size() + i));
        }
        std::sort(state.slots.begin(), state.slots.end());
        configured = true;
        break;
      }
      case FrameType::kRows:
      case FrameType::kHalo: {
        if (!configured) _exit(2);
        if (!StoreRows(&state, frame.payload).ok()) _exit(2);
        break;
      }
      case FrameType::kGo: {
        if (!configured) _exit(2);
        const uint64_t token =
            KillToken(state.spec.worker_id, static_cast<int>(frame.epoch),
                      state.spec.incarnation);
        const FrameFaults send_faults{faults, token};
        Frame heartbeat;
        heartbeat.type = FrameType::kHeartbeat;
        heartbeat.epoch = frame.epoch;
        if (!WriteFrame(fd, heartbeat, nullptr, send_faults).ok()) _exit(4);

        ComputeEpoch(&state);

        const size_t total = state.spec.owned.size();
        const size_t per_frame =
            static_cast<size_t>(state.spec.rows_per_frame);
        const size_t num_chunks = (total + per_frame - 1) / per_frame;
        for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
          if (chunk == num_chunks / 2 && faults != nullptr &&
              faults->ShouldFail(kSiteWorkerKill, token)) {
            // Injected mid-epoch death: some result rows are already on
            // the wire, the rest never will be. `_exit`, not `exit`: a
            // real SIGKILL runs no user code either.
            _exit(3);
          }
          const size_t begin = chunk * per_frame;
          const size_t count = std::min(per_frame, total - begin);
          Frame rows;
          rows.type = FrameType::kRows;
          rows.epoch = frame.epoch;
          rows.payload = EncodeOutChunk(state, begin, count);
          if (!WriteFrame(fd, rows, nullptr, send_faults).ok()) _exit(4);
        }
        // Adopt the new values for the next epoch before reporting done.
        for (size_t i = 0; i < total; ++i) {
          std::memcpy(state.local.Row(static_cast<int64_t>(i)).data(),
                      state.out.Row(static_cast<int64_t>(i)).data(),
                      static_cast<size_t>(state.spec.cols) * sizeof(float));
        }
        Frame done;
        done.type = FrameType::kEpochDone;
        done.epoch = frame.epoch;
        if (!WriteFrame(fd, done, nullptr, send_faults).ok()) _exit(4);
        break;
      }
      case FrameType::kShutdown:
        _exit(0);
      default:
        _exit(2);
    }
  }
}

}  // namespace sgnn::dist
