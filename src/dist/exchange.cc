#include "dist/exchange.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "common/counters.h"

namespace sgnn::dist {

using common::Status;
using graph::NodeId;

int64_t HaloPlan::total_halo_nodes() const {
  int64_t total = 0;
  for (const auto& ids : need) total += static_cast<int64_t>(ids.size());
  return total;
}

int64_t HaloPlan::halo_values(int64_t dim) const {
  return total_halo_nodes() * dim;
}

HaloPlan BuildHaloPlan(const graph::CsrGraph& graph,
                       const partition::Partition& parts) {
  SGNN_CHECK_GT(parts.k, 0);
  SGNN_CHECK_EQ(parts.part_of.size(), static_cast<size_t>(graph.num_nodes()));
  HaloPlan plan;
  plan.num_workers = parts.k;
  plan.owned.resize(static_cast<size_t>(parts.k));
  plan.need.resize(static_cast<size_t>(parts.k));
  // `seen[v] == w + 1` marks v as already in need[w]: one O(n) stamp array
  // per worker instead of a hash set keeps the scan deterministic and
  // allocation-light. Node ids ascend in the outer loop, so both lists
  // come out sorted without an explicit sort.
  std::vector<int> seen(static_cast<size_t>(graph.num_nodes()), 0);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const int w = parts.part_of[u];
    SGNN_DCHECK(w >= 0 && w < parts.k);
    plan.owned[static_cast<size_t>(w)].push_back(u);
  }
  for (int w = 0; w < parts.k; ++w) {
    for (const NodeId u : plan.owned[static_cast<size_t>(w)]) {
      for (const NodeId v : graph.Neighbors(u)) {
        if (parts.part_of[v] == w) continue;
        if (seen[v] == w + 1) continue;
        seen[v] = w + 1;
        plan.need[static_cast<size_t>(w)].push_back(v);
      }
    }
    auto& need = plan.need[static_cast<size_t>(w)];
    std::sort(need.begin(), need.end());
  }
  // Each node is owned by exactly one worker, so the halo scan reads every
  // directed edge exactly once.
  common::GlobalCounters().edges_touched += graph.num_edges();
  return plan;
}

std::string EncodeRows(const std::vector<NodeId>& ids,
                       const tensor::Matrix& src) {
  const int64_t cols = src.cols();
  const size_t record = sizeof(uint32_t) + static_cast<size_t>(cols) *
                                               sizeof(float);
  std::string payload;
  payload.resize(sizeof(uint32_t) + ids.size() * record);
  char* p = payload.data();
  const uint32_t count = static_cast<uint32_t>(ids.size());
  std::memcpy(p, &count, sizeof(count));
  p += sizeof(count);
  for (const NodeId id : ids) {
    const uint32_t raw = static_cast<uint32_t>(id);
    std::memcpy(p, &raw, sizeof(raw));
    p += sizeof(raw);
    std::memcpy(p, src.Row(id).data(),
                static_cast<size_t>(cols) * sizeof(float));
    p += static_cast<size_t>(cols) * sizeof(float);
  }
  common::GlobalCounters().floats_moved +=
      static_cast<uint64_t>(ids.size()) * static_cast<uint64_t>(cols);
  return payload;
}

Status DecodeRows(
    const std::string& payload, int64_t cols,
    const std::function<Status(NodeId, const float*)>& sink) {
  if (payload.size() < sizeof(uint32_t)) {
    return Status::DataLoss("row batch smaller than its count field");
  }
  uint32_t count = 0;
  std::memcpy(&count, payload.data(), sizeof(count));
  const size_t record =
      sizeof(uint32_t) + static_cast<size_t>(cols) * sizeof(float);
  if (payload.size() != sizeof(uint32_t) + count * record) {
    return Status::DataLoss("row batch length does not match its count (" +
                            std::to_string(count) + " rows of " +
                            std::to_string(cols) + " cols in " +
                            std::to_string(payload.size()) + " bytes)");
  }
  const char* p = payload.data() + sizeof(uint32_t);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t raw = 0;
    std::memcpy(&raw, p, sizeof(raw));
    p += sizeof(raw);
    SGNN_RETURN_IF_ERROR(
        sink(static_cast<NodeId>(raw), reinterpret_cast<const float*>(p)));
    p += static_cast<size_t>(cols) * sizeof(float);
  }
  return Status::OK();
}

}  // namespace sgnn::dist
