#ifndef SGNN_DIST_COORDINATOR_H_
#define SGNN_DIST_COORDINATOR_H_

#include <cstdint>
#include <string>

#include "common/fault.h"
#include "common/status.h"
#include "core/run_context.h"
#include "graph/csr_graph.h"
#include "graph/propagate.h"
#include "partition/partition.h"
#include "tensor/matrix.h"

namespace sgnn::dist {

/// Options for one distributed propagation run. Worker count comes from
/// the partition's `k`; everything here is policy.
struct DistOptions {
  int hops = 2;
  graph::Normalization norm = graph::Normalization::kSymmetric;
  bool add_self_loops = true;
  /// Budget for one full epoch (halo send -> all gathers done). A worker
  /// that goes silent past this point is declared dead and respawned.
  int64_t epoch_deadline_micros = 30'000'000;
  /// Result rows per gather frame; smaller chunks mean finer-grained
  /// mid-epoch kill points, larger ones less framing overhead.
  int32_t rows_per_frame = 256;
  /// Respawn budget *per worker* (`max_attempts` spawns total each) with
  /// deterministic jittered backoff between respawns.
  common::RetryPolicy retry{.max_attempts = 4};
  /// Trips after this many consecutive worker crashes across the run
  /// (success of any respawned worker closes it again). An open breaker
  /// fails the run with `kUnavailable` instead of respawning forever.
  common::CircuitBreakerConfig breaker{.failure_threshold = 16,
                                       .probe_interval = 4};
  /// Epoch snapshot file (`core::SaveSnapshot` format); empty = fall back
  /// to `RunContext::checkpoint_path`, both empty = no checkpointing.
  std::string checkpoint_path;
};

/// What the run did, for tests, benches, and the E23 comparison against
/// E15's simulated communication volume.
struct DistReport {
  int num_workers = 0;
  int epochs_run = 0;       ///< Epochs actually executed this run.
  int epochs_restored = 0;  ///< Epochs skipped thanks to a checkpoint.
  bool resumed = false;
  int respawns = 0;
  int checkpoints_written = 0;
  /// Coordinator->worker wire bytes (header + payload), by channel.
  uint64_t halo_bytes = 0;     ///< Boundary rows, the E15-comparable flow.
  uint64_t scatter_bytes = 0;  ///< Initial/restore owned-row shipments.
  uint64_t control_bytes = 0;  ///< Config, go, shutdown frames.
  /// Worker->coordinator wire bytes (result rows, heartbeats, done).
  uint64_t gather_bytes = 0;
  uint64_t frames_sent = 0;
  uint64_t frames_received = 0;
  /// Halo scalars shipped per epoch (|need| * cols summed over workers) —
  /// exactly `WorkerLoad::halo_values` summed, for the E15 cross-check.
  int64_t halo_values_per_epoch = 0;
};

/// Runs `hops` epochs of partition-parallel propagation over `parts.k`
/// forked worker processes with per-epoch halo exchange, returning
/// `\hat{A}^hops x` bit-identical to `graph::PropagateKHops` on the same
/// inputs — at any worker count and under any injected kill schedule.
///
/// Robustness: every worker read carries a deadline; a worker that dies
/// (EOF/EPIPE), ships a torn or corrupt frame (`kDataLoss`), or goes
/// silent (deadline) is SIGKILLed, reaped, and respawned with backoff
/// (`opts.retry`), restored from the coordinator's canonical epoch state,
/// and re-run — completed workers are never recomputed. Exhausting a
/// worker's respawn budget or tripping the breaker fails the run with
/// `kUnavailable`. With a checkpoint path, each completed epoch is
/// persisted via `core::SaveSnapshot`, and a fresh run (`ctx.resume`)
/// restarts after the last completed epoch.
///
/// `ctx` supplies the observability sinks (`sgnn_dist_*` metrics, `dist:`
/// spans), the run deadline, and the fault injector; when `ctx.faults` is
/// null an injector armed from `SGNN_FAULTS` (see
/// `FaultInjector::ArmFromEnv`) is used, which is how CI injects a kill
/// schedule into an unmodified binary.
SGNN_NODISCARD common::StatusOr<tensor::Matrix> RunDistributedPropagation(
    const graph::CsrGraph& graph, const partition::Partition& parts,
    const tensor::Matrix& x, const DistOptions& opts,
    const core::RunContext& ctx, DistReport* report = nullptr);

}  // namespace sgnn::dist

#endif  // SGNN_DIST_COORDINATOR_H_
