#ifndef SGNN_DIST_WORKER_H_
#define SGNN_DIST_WORKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/status.h"
#include "graph/csr_graph.h"

namespace sgnn::dist {

/// Everything a worker process needs to compute its partition's rows,
/// shipped in one `kConfig` frame at spawn (and again at respawn, with a
/// bumped `incarnation`). The adjacency arrives pre-normalised — neighbour
/// ids plus the *float* propagation coefficients and self-loop terms the
/// coordinator's `Propagator` computed — so the worker replays the exact
/// per-row accumulation of `Propagator::Apply` on identical bits, which is
/// what makes the distributed result bit-identical to the single-process
/// one at any worker count and under any kill schedule.
struct WorkerSpec {
  int32_t worker_id = 0;
  int32_t num_workers = 0;
  int32_t incarnation = 0;
  int32_t rows_per_frame = 256;
  int64_t cols = 0;
  /// Deadline for each blocking read in the worker loop; a silent
  /// coordinator past this point means the parent is gone and the worker
  /// exits rather than lingering as an orphan.
  int64_t read_deadline_micros = 600'000'000;

  std::vector<graph::NodeId> owned;  ///< Sorted global ids this worker owns.
  std::vector<graph::NodeId> halo;   ///< Sorted remote ids it receives.
  /// CSR over `owned`: neighbours/coefficients of owned[i] live at
  /// [offsets[i], offsets[i+1]).
  std::vector<uint64_t> offsets;
  std::vector<graph::NodeId> neighbors;
  std::vector<float> coefficients;
  std::vector<float> self_loop;  ///< Per owned row.

  std::string Serialize() const;
  static common::StatusOr<WorkerSpec> Parse(const std::string& payload);
};

/// Worker process main loop: speaks the frame protocol on `fd` until a
/// shutdown frame, a closed/har-deadlined stream, or an injected fault
/// terminates it. Never returns; exits via `_exit` so a forked child
/// tears down without running the parent's atexit/static-destructor
/// machinery. `faults` is the injector inherited across `fork` (may be
/// null); kill/drop/corrupt/truncate sites are evaluated with
/// `KillToken(worker, epoch, incarnation)` tokens.
[[noreturn]] void WorkerMain(int fd, common::FaultInjector* faults);

}  // namespace sgnn::dist

#endif  // SGNN_DIST_WORKER_H_
