#include "dist/coordinator.h"

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "common/posix.h"
#include "core/checkpoint.h"
#include "dist/exchange.h"
#include "dist/frame.h"
#include "dist/worker.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sgnn::dist {

using common::Status;
using common::StatusOr;
using graph::NodeId;

namespace {

/// Ignores SIGPIPE for the coordinator's lifetime (writes to a dead
/// worker must surface as EPIPE -> `kUnavailable`, not kill the process),
/// restoring the previous disposition on destruction.
class ScopedSigpipeIgnore {
 public:
  ScopedSigpipeIgnore() { previous_ = std::signal(SIGPIPE, SIG_IGN); }
  ~ScopedSigpipeIgnore() {
    if (previous_ != SIG_ERR) std::signal(SIGPIPE, previous_);
  }

 private:
  using Handler = void (*)(int);
  Handler previous_;
};

struct WorkerHandle {
  pid_t pid = -1;
  int fd = -1;
  int incarnation = 0;
  int spawns = 0;  ///< Total spawns, first launch included.
  size_t rows_received = 0;
  bool epoch_done = false;
};

class Coordinator {
 public:
  Coordinator(const graph::CsrGraph& graph, const partition::Partition& parts,
              const tensor::Matrix& x, const DistOptions& opts,
              const core::RunContext& ctx)
      : graph_(graph),
        parts_(parts),
        opts_(opts),
        ctx_(ctx),
        prop_(graph, opts.norm, opts.add_self_loops),
        breaker_(opts.breaker),
        state_(x) {}

  ~Coordinator() { KillAll(); }

  StatusOr<tensor::Matrix> Run(DistReport* report);

 private:
  std::string CheckpointPath() const {
    return opts_.checkpoint_path.empty() ? ctx_.checkpoint_path
                                         : opts_.checkpoint_path;
  }

  uint64_t Signature() const {
    // Hop count is deliberately NOT part of the signature: every epoch
    // applies the same operator, so a snapshot at epoch s is a valid
    // resume point for any run with hops >= s (TryResume checks that).
    const std::string config =
        "norm=" + std::to_string(static_cast<int>(opts_.norm)) +
        ";self_loops=" + std::to_string(opts_.add_self_loops ? 1 : 0) +
        ";nodes=" + std::to_string(graph_.num_nodes()) +
        ";cols=" + std::to_string(state_.cols()) +
        ";edges=" + std::to_string(graph_.num_edges());
    // The worker count is deliberately NOT part of the signature: results
    // are bit-identical across worker counts, so a checkpoint written at
    // k=2 is a valid resume point for a k=4 run.
    return core::PipelineSignature({"dist:propagate"}, config);
  }

  WorkerSpec SpecFor(int w) const;
  Status SpawnWorker(int w);
  Status SendEpochInputs(int w, int epoch);
  Status Recover(int w, int epoch, const Status& cause);
  Status CollectWorker(int w, int epoch, tensor::Matrix* next);
  Status CheckpointEpoch(int epoch);
  void TryResume(int* start_epoch);
  void KillAll();
  void FlushMetrics() const;

  common::Deadline EpochDeadline() const {
    const int64_t micros = std::min(opts_.epoch_deadline_micros,
                                    ctx_.deadline.remaining_micros());
    return common::Deadline::After(micros);
  }

  const graph::CsrGraph& graph_;
  const partition::Partition& parts_;
  const DistOptions& opts_;
  const core::RunContext& ctx_;
  graph::Propagator prop_;
  common::FaultInjector env_faults_;
  common::FaultInjector* faults_ = nullptr;
  common::CircuitBreaker breaker_;
  HaloPlan plan_;
  tensor::Matrix state_;  ///< Canonical H_e: input state of the next epoch.
  std::vector<WorkerHandle> workers_;
  common::Deadline epoch_deadline_;  ///< Deadline of the epoch in flight.

  DistReport report_;
  WireStats halo_stats_;
  WireStats scatter_stats_;
  WireStats control_stats_;
  WireStats gather_stats_;
};

WorkerSpec Coordinator::SpecFor(int w) const {
  WorkerSpec spec;
  spec.worker_id = w;
  spec.num_workers = plan_.num_workers;
  spec.incarnation = workers_[static_cast<size_t>(w)].incarnation;
  spec.rows_per_frame = opts_.rows_per_frame;
  spec.cols = state_.cols();
  spec.owned = plan_.owned[static_cast<size_t>(w)];
  spec.halo = plan_.need[static_cast<size_t>(w)];
  spec.offsets.reserve(spec.owned.size() + 1);
  spec.offsets.push_back(0);
  spec.self_loop.reserve(spec.owned.size());
  for (const NodeId u : spec.owned) {
    const auto nbrs = graph_.Neighbors(u);
    const auto coeffs = prop_.Coefficients(u);
    spec.neighbors.insert(spec.neighbors.end(), nbrs.begin(), nbrs.end());
    spec.coefficients.insert(spec.coefficients.end(), coeffs.begin(),
                             coeffs.end());
    spec.offsets.push_back(spec.neighbors.size());
    spec.self_loop.push_back(prop_.SelfLoopCoefficient(u));
  }
  return spec;
}

Status Coordinator::SpawnWorker(int w) {
  WorkerHandle& handle = workers_[static_cast<size_t>(w)];
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    return common::StatusFromErrno("socketpair failed");
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    Status status = common::StatusFromErrno("fork failed");
    ::close(sv[0]);
    ::close(sv[1]);
    return status;
  }
  if (pid == 0) {
    // Child. Close every inherited coordinator-side descriptor — holding a
    // sibling's socket would keep its stream open past that sibling's
    // death and mask the EOF the coordinator relies on.
    ::close(sv[0]);
    for (const WorkerHandle& other : workers_) {
      if (other.fd >= 0) ::close(other.fd);
    }
    WorkerMain(sv[1], faults_);  // Never returns.
  }
  ::close(sv[1]);
  handle.pid = pid;
  handle.fd = sv[0];
  handle.spawns += 1;
  handle.rows_received = 0;
  handle.epoch_done = false;

  Frame config;
  config.type = FrameType::kConfig;
  config.payload = SpecFor(w).Serialize();
  SGNN_RETURN_IF_ERROR(WriteFrame(handle.fd, config, &control_stats_));
  Frame scatter;
  scatter.type = FrameType::kRows;
  scatter.payload = EncodeRows(plan_.owned[static_cast<size_t>(w)], state_);
  return WriteFrame(handle.fd, scatter, &scatter_stats_);
}

Status Coordinator::SendEpochInputs(int w, int epoch) {
  WorkerHandle& handle = workers_[static_cast<size_t>(w)];
  handle.rows_received = 0;
  handle.epoch_done = false;
  if (!plan_.need[static_cast<size_t>(w)].empty()) {
    Frame halo;
    halo.type = FrameType::kHalo;
    halo.epoch = static_cast<uint32_t>(epoch);
    halo.payload = EncodeRows(plan_.need[static_cast<size_t>(w)], state_);
    SGNN_RETURN_IF_ERROR(WriteFrame(handle.fd, halo, &halo_stats_));
  }
  Frame go;
  go.type = FrameType::kGo;
  go.epoch = static_cast<uint32_t>(epoch);
  return WriteFrame(handle.fd, go, &control_stats_);
}

/// Declares worker `w` dead (cause attached for diagnostics), reaps it,
/// and — respawn budget and breaker permitting — brings a fresh
/// incarnation back to the exact point the epoch needs: config + current
/// epoch state + halo + go. `epoch < 0` means no epoch is in flight.
Status Coordinator::Recover(int w, int epoch, const Status& cause) {
  WorkerHandle& handle = workers_[static_cast<size_t>(w)];
  auto span = obs::StartSpan(ctx_.tracer, "dist:respawn:" + std::to_string(w),
                             "dist");
  if (handle.fd >= 0) {
    ::close(handle.fd);
    handle.fd = -1;
  }
  if (handle.pid > 0) {
    ::kill(handle.pid, SIGKILL);  // Idempotent if already dead.
    int wstatus = 0;
    ::waitpid(handle.pid, &wstatus, 0);
    handle.pid = -1;
  }
  breaker_.RecordFailure();
  if (!breaker_.Allow()) {
    return Status::Unavailable(
        "circuit breaker open after repeated worker crashes; last: worker " +
        std::to_string(w) + " failed with [" + cause.ToString() + "]");
  }
  if (handle.spawns >= opts_.retry.max_attempts) {
    return Status::Unavailable(
        "worker " + std::to_string(w) + " respawn budget exhausted (" +
        std::to_string(handle.spawns) + " spawns); last: " + cause.ToString());
  }
  // Deterministic jittered backoff before reconnecting, attempt = number
  // of respawns so far for this worker.
  const int64_t backoff = opts_.retry.BackoffMicros(
      handle.spawns, static_cast<uint64_t>(w));
  std::this_thread::sleep_for(std::chrono::microseconds(backoff));
  handle.incarnation += 1;
  report_.respawns += 1;
  SGNN_RETURN_IF_ERROR(SpawnWorker(w));
  if (epoch >= 0) {
    SGNN_RETURN_IF_ERROR(SendEpochInputs(w, epoch));
  }
  return Status::OK();
}

Status Coordinator::CollectWorker(int w, int epoch, tensor::Matrix* next) {
  WorkerHandle& handle = workers_[static_cast<size_t>(w)];
  const size_t expected = plan_.owned[static_cast<size_t>(w)].size();
  while (!handle.epoch_done) {
    Frame frame;
    Status status =
        ReadFrame(handle.fd, &frame, epoch_deadline_, &gather_stats_);
    if (status.ok() && frame.type == FrameType::kHeartbeat) continue;
    if (status.ok() && frame.type == FrameType::kRows &&
        frame.epoch == static_cast<uint32_t>(epoch)) {
      status = DecodeRows(
          frame.payload, state_.cols(),
          [this, next, w, &handle](NodeId id, const float* row) {
            if (id >= graph_.num_nodes() || parts_.part_of[id] != w) {
              return Status::DataLoss("worker " + std::to_string(w) +
                                      " sent a row it does not own: node " +
                                      std::to_string(id));
            }
            std::memcpy(next->Row(id).data(), row,
                        static_cast<size_t>(state_.cols()) * sizeof(float));
            handle.rows_received += 1;
            return Status::OK();
          });
      if (status.ok()) continue;
    } else if (status.ok() && frame.type == FrameType::kEpochDone) {
      if (handle.rows_received == expected) {
        handle.epoch_done = true;
        breaker_.RecordSuccess();
        continue;
      }
      status = Status::DataLoss(
          "worker " + std::to_string(w) + " reported epoch done after " +
          std::to_string(handle.rows_received) + "/" +
          std::to_string(expected) + " rows");
    } else if (status.ok()) {
      status = Status::DataLoss("unexpected frame type " +
                                std::to_string(static_cast<uint32_t>(
                                    frame.type)) +
                                " from worker " + std::to_string(w));
    }
    // Worker died (EOF), went silent (deadline), or shipped garbage
    // (CRC/protocol): one recovery path for all of them. The respawned
    // incarnation recomputes the epoch's rows from the canonical state and
    // overwrites any partial rows with identical bits.
    if (ctx_.deadline.expired()) {
      return Status::DeadlineExceeded("run deadline expired collecting from "
                                      "worker " +
                                      std::to_string(w));
    }
    SGNN_RETURN_IF_ERROR(Recover(w, epoch, status));
  }
  return Status::OK();
}

Status Coordinator::CheckpointEpoch(int epoch) {
  const std::string path = CheckpointPath();
  if (path.empty()) return Status::OK();
  auto span = obs::StartSpan(ctx_.tracer,
                             "dist:checkpoint:" + std::to_string(epoch),
                             "dist");
  core::PipelineSnapshot snap;
  snap.signature = Signature();
  snap.stages_done = epoch + 1;
  for (int e = 0; e <= epoch; ++e) {
    core::StageTiming timing;
    timing.name = "dist:epoch:" + std::to_string(e);
    // seconds stays 0: the snapshot must be a pure function of the seeded
    // workload so resumed runs stay byte-comparable.
    snap.stages.push_back(timing);
  }
  snap.edges_before = graph_.num_edges();
  snap.feature_cols_before = state_.cols();
  snap.graph = graph::CsrGraph(0);  // Adjacency is the caller's; state is H.
  snap.features = state_;
  SGNN_RETURN_IF_ERROR(core::SaveSnapshot(snap, path));
  report_.checkpoints_written += 1;
  return Status::OK();
}

void Coordinator::TryResume(int* start_epoch) {
  const std::string path = CheckpointPath();
  if (path.empty() || !ctx_.resume) return;
  auto snap_or = core::LoadSnapshot(path, Signature());
  if (!snap_or.ok()) return;  // Missing/corrupt/foreign: from scratch.
  core::PipelineSnapshot snap = std::move(snap_or).value();
  if (snap.stages_done < 1 || snap.stages_done > opts_.hops ||
      snap.features.rows() != state_.rows() ||
      snap.features.cols() != state_.cols()) {
    return;
  }
  state_ = std::move(snap.features);
  *start_epoch = snap.stages_done;
  report_.resumed = true;
  report_.epochs_restored = snap.stages_done;
}

void Coordinator::KillAll() {
  for (WorkerHandle& handle : workers_) {
    if (handle.fd >= 0) {
      Frame shutdown;
      shutdown.type = FrameType::kShutdown;
      // Best-effort courtesy shutdown: a failed write means the worker is
      // already gone, and the close + SIGKILL below reap it regardless.
      if (!WriteFrame(handle.fd, shutdown, &control_stats_).ok()) {
        // Fall through to close + SIGKILL.
      }
      ::close(handle.fd);
      handle.fd = -1;
    }
    if (handle.pid > 0) {
      int wstatus = 0;
      if (::waitpid(handle.pid, &wstatus, WNOHANG) == 0) {
        ::kill(handle.pid, SIGKILL);
        ::waitpid(handle.pid, &wstatus, 0);
      }
      handle.pid = -1;
    }
  }
}

void Coordinator::FlushMetrics() const {
  obs::MetricsRegistry* metrics = ctx_.metrics;
  if (metrics == nullptr) return;
  const auto bytes_counter = [metrics](const char* channel) {
    return metrics->GetCounter(
        "sgnn_dist_bytes_sent_total",
        "Wire bytes (frame header + payload) moved by sgnn::dist, by channel",
        {{"channel", channel}});
  };
  bytes_counter("halo")->Increment(halo_stats_.bytes);
  bytes_counter("scatter")->Increment(scatter_stats_.bytes);
  bytes_counter("control")->Increment(control_stats_.bytes);
  bytes_counter("gather")->Increment(gather_stats_.bytes);
  const auto frames_counter = [metrics](const char* direction) {
    return metrics->GetCounter("sgnn_dist_frames_total",
                               "Frames moved by sgnn::dist, by direction",
                               {{"direction", direction}});
  };
  frames_counter("sent")->Increment(halo_stats_.frames +
                                    scatter_stats_.frames +
                                    control_stats_.frames);
  frames_counter("received")->Increment(gather_stats_.frames);
  metrics
      ->GetCounter("sgnn_dist_worker_respawns_total",
                   "Workers respawned after a detected crash")
      ->Increment(static_cast<uint64_t>(report_.respawns));
  metrics
      ->GetCounter("sgnn_dist_epochs_total",
                   "Distributed propagation epochs executed")
      ->Increment(static_cast<uint64_t>(report_.epochs_run));
  metrics
      ->GetCounter("sgnn_dist_checkpoints_total",
                   "Epoch checkpoints written by the dist coordinator")
      ->Increment(static_cast<uint64_t>(report_.checkpoints_written));
  metrics
      ->GetGauge("sgnn_dist_workers", "Worker processes of the last run")
      ->Set(static_cast<double>(report_.num_workers));
  metrics
      ->GetGauge("sgnn_dist_halo_values_per_epoch",
                 "Halo scalars shipped per epoch (E15-comparable volume)")
      ->Set(static_cast<double>(report_.halo_values_per_epoch));
}

StatusOr<tensor::Matrix> Coordinator::Run(DistReport* report) {
  if (state_.rows() != static_cast<int64_t>(graph_.num_nodes())) {
    return Status::InvalidArgument(
        "feature rows (" + std::to_string(state_.rows()) +
        ") do not match graph nodes (" + std::to_string(graph_.num_nodes()) +
        ")");
  }
  if (parts_.k <= 0 ||
      parts_.part_of.size() != static_cast<size_t>(graph_.num_nodes())) {
    return Status::InvalidArgument("partition does not cover the graph");
  }
  for (const int p : parts_.part_of) {
    if (p < 0 || p >= parts_.k) {
      return Status::InvalidArgument("partition id " + std::to_string(p) +
                                     " outside [0, " +
                                     std::to_string(parts_.k) + ")");
    }
  }
  if (opts_.hops < 0) {
    return Status::InvalidArgument("negative hop count");
  }

  auto run_span = obs::StartSpan(ctx_.tracer, "dist:run", "dist");
  ScopedSigpipeIgnore ignore_sigpipe;
  faults_ = ctx_.faults;
  if (faults_ == nullptr) {
    SGNN_RETURN_IF_ERROR(env_faults_.ArmFromEnv());
    faults_ = &env_faults_;
  }

  plan_ = BuildHaloPlan(graph_, parts_);
  workers_.assign(static_cast<size_t>(parts_.k), WorkerHandle{});
  report_ = DistReport{};
  report_.num_workers = parts_.k;
  report_.halo_values_per_epoch = plan_.halo_values(state_.cols());

  int start_epoch = 0;
  TryResume(&start_epoch);

  Status status = Status::OK();
  for (int w = 0; w < parts_.k && status.ok(); ++w) {
    status = SpawnWorker(w);
    if (!status.ok() && common::RetryPolicy::Retryable(status.code())) {
      status = Recover(w, /*epoch=*/-1, status);
    }
  }

  for (int epoch = start_epoch; status.ok() && epoch < opts_.hops; ++epoch) {
    if (ctx_.deadline.expired()) {
      status = Status::DeadlineExceeded("run deadline expired before epoch " +
                                        std::to_string(epoch));
      break;
    }
    auto epoch_span = obs::StartSpan(
        ctx_.tracer, "dist:epoch:" + std::to_string(epoch), "dist");
    epoch_deadline_ = EpochDeadline();
    tensor::Matrix next(state_.rows(), state_.cols());
    for (int w = 0; w < parts_.k && status.ok(); ++w) {
      status = SendEpochInputs(w, epoch);
      if (!status.ok() && common::RetryPolicy::Retryable(status.code())) {
        status = Recover(w, epoch, status);
      }
    }
    for (int w = 0; w < parts_.k && status.ok(); ++w) {
      status = CollectWorker(w, epoch, &next);
    }
    if (!status.ok()) break;
    state_ = std::move(next);
    report_.epochs_run += 1;
    status = CheckpointEpoch(epoch);
  }

  KillAll();
  report_.halo_bytes = halo_stats_.bytes;
  report_.scatter_bytes = scatter_stats_.bytes;
  report_.control_bytes = control_stats_.bytes;
  report_.gather_bytes = gather_stats_.bytes;
  report_.frames_sent =
      halo_stats_.frames + scatter_stats_.frames + control_stats_.frames;
  report_.frames_received = gather_stats_.frames;
  FlushMetrics();
  if (report != nullptr) *report = report_;
  if (!status.ok()) return status;
  return std::move(state_);
}

}  // namespace

StatusOr<tensor::Matrix> RunDistributedPropagation(
    const graph::CsrGraph& graph, const partition::Partition& parts,
    const tensor::Matrix& x, const DistOptions& opts,
    const core::RunContext& ctx, DistReport* report) {
  Coordinator coordinator(graph, parts, x, opts, ctx);
  return coordinator.Run(report);
}

}  // namespace sgnn::dist
