#ifndef SGNN_COARSEN_COARSEN_H_
#define SGNN_COARSEN_COARSEN_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"
#include "tensor/matrix.h"

namespace sgnn::coarsen {

/// Graph coarsening (§3.3.4): contract node clusters into supernodes,
/// producing a smaller weighted graph that a GNN can train on cheaply;
/// restrict/lift operators move features and predictions between levels.
struct Coarsening {
  graph::CsrGraph coarse;               ///< Weighted coarse graph.
  std::vector<graph::NodeId> coarse_of; ///< Fine node -> supernode.
  std::vector<int64_t> cluster_size;    ///< Fine nodes per supernode.

  graph::NodeId num_coarse() const {
    return static_cast<graph::NodeId>(cluster_size.size());
  }
};

/// Multi-level heavy-edge-matching coarsening until the coarse node count
/// drops to `target_ratio` * n (or matching stalls). 0 < target_ratio <= 1.
Coarsening HeavyEdgeCoarsen(const graph::CsrGraph& graph, double target_ratio,
                            uint64_t seed);

/// Structural-equivalence coarsening: merges nodes with identical
/// neighbour sets (GDEM/ConvMatch-flavoured: such nodes are
/// indistinguishable to any convolution, so merging is lossless for
/// propagation).
Coarsening StructuralCoarsen(const graph::CsrGraph& graph);

/// Coarse features: supernode row = mean of its cluster's rows.
tensor::Matrix RestrictFeatures(const Coarsening& coarsening,
                                const tensor::Matrix& features);

/// Lifts coarse rows back to fine nodes (each fine node copies its
/// supernode's row); the adjoint of `RestrictFeatures` up to cluster sizes.
tensor::Matrix LiftFeatures(const Coarsening& coarsening,
                            const tensor::Matrix& coarse_features);

/// Majority label per supernode (ties to the smaller label id).
std::vector<int> RestrictLabels(const Coarsening& coarsening,
                                std::span<const int> labels, int num_classes);

/// Spectral distortion of the coarsening: mean relative difference of the
/// Laplacian Rayleigh quotient between a random coarse test vector
/// evaluated on the coarse graph and its lift evaluated on the original —
/// the quantity GDEM matches explicitly. Lower is better; 0 means the
/// probed quadratic forms agree exactly.
double SpectralDistortion(const graph::CsrGraph& graph,
                          const Coarsening& coarsening, int num_probes,
                          uint64_t seed);

}  // namespace sgnn::coarsen

#endif  // SGNN_COARSEN_COARSEN_H_
