#include "coarsen/coarsen.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"
#include "graph/propagate.h"
#include "spectral/spectrum.h"

namespace sgnn::coarsen {

using graph::CsrGraph;
using graph::NodeId;
using tensor::Matrix;

namespace {

/// One heavy-edge matching pass; returns fine->coarse map and count.
std::pair<std::vector<NodeId>, NodeId> MatchOnce(const CsrGraph& graph,
                                                 common::Rng* rng) {
  const NodeId n = graph.num_nodes();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);
  std::vector<NodeId> match(n, graph::kInvalidNode);
  for (NodeId u : order) {
    if (match[u] != graph::kInvalidNode) continue;
    NodeId best = graph::kInvalidNode;
    float best_w = -1.0f;
    auto nbrs = graph.Neighbors(u);
    auto ws = graph.Weights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] == u || match[nbrs[i]] != graph::kInvalidNode) continue;
      if (ws[i] > best_w) {
        best_w = ws[i];
        best = nbrs[i];
      }
    }
    if (best == graph::kInvalidNode) {
      match[u] = u;
    } else {
      match[u] = best;
      match[best] = u;
    }
  }
  std::vector<NodeId> coarse_of(n, graph::kInvalidNode);
  NodeId next = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (coarse_of[u] != graph::kInvalidNode) continue;
    coarse_of[u] = next;
    if (match[u] != u && match[u] != graph::kInvalidNode) {
      coarse_of[match[u]] = next;
    }
    ++next;
  }
  return {std::move(coarse_of), next};
}

CsrGraph BuildCoarseGraph(const CsrGraph& fine,
                          const std::vector<NodeId>& coarse_of,
                          NodeId num_coarse) {
  graph::EdgeListBuilder builder(num_coarse);
  for (NodeId u = 0; u < fine.num_nodes(); ++u) {
    auto nbrs = fine.Neighbors(u);
    auto ws = fine.Weights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId cu = coarse_of[u], cv = coarse_of[nbrs[i]];
      if (cu == cv) continue;
      builder.AddEdge(cu, cv, ws[i]);
    }
  }
  builder.Deduplicate();
  return CsrGraph::FromBuilder(std::move(builder));
}

Coarsening Finalize(const CsrGraph& graph, std::vector<NodeId> coarse_of,
                    NodeId num_coarse) {
  SGNN_DCHECK_EQ(coarse_of.size(), static_cast<size_t>(graph.num_nodes()));
  Coarsening out;
  out.cluster_size.assign(num_coarse, 0);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    SGNN_DCHECK_LT(coarse_of[u], num_coarse);
    out.cluster_size[coarse_of[u]]++;
  }
  out.coarse = BuildCoarseGraph(graph, coarse_of, num_coarse);
  out.coarse_of = std::move(coarse_of);
  return out;
}

}  // namespace

Coarsening HeavyEdgeCoarsen(const CsrGraph& graph, double target_ratio,
                            uint64_t seed) {
  SGNN_CHECK(target_ratio > 0.0 && target_ratio <= 1.0);
  common::Rng rng(seed);
  const NodeId target = std::max<NodeId>(
      1, static_cast<NodeId>(target_ratio * graph.num_nodes()));

  std::vector<NodeId> overall(graph.num_nodes());
  std::iota(overall.begin(), overall.end(), 0);
  CsrGraph current = graph;  // Copy; successive levels replace it.
  NodeId current_n = graph.num_nodes();
  while (current_n > target) {
    auto [coarse_of, num_coarse] = MatchOnce(current, &rng);
    if (num_coarse == current_n) break;  // No edges left to contract.
    CsrGraph next = BuildCoarseGraph(current, coarse_of, num_coarse);
    for (NodeId u = 0; u < graph.num_nodes(); ++u) {
      overall[u] = coarse_of[overall[u]];
    }
    current = std::move(next);
    current_n = num_coarse;
  }
  return Finalize(graph, std::move(overall), current_n);
}

Coarsening StructuralCoarsen(const CsrGraph& graph) {
  // Group nodes by their exact (sorted) neighbour list. Nodes with equal
  // open neighbourhoods are structurally equivalent for propagation.
  std::map<std::vector<NodeId>, std::vector<NodeId>> groups;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    auto nbrs = graph.Neighbors(u);
    std::vector<NodeId> key(nbrs.begin(), nbrs.end());
    groups[std::move(key)].push_back(u);
  }
  std::vector<NodeId> coarse_of(graph.num_nodes(), graph::kInvalidNode);
  NodeId next = 0;
  for (const auto& [key, members] : groups) {
    for (NodeId u : members) coarse_of[u] = next;
    ++next;
  }
  return Finalize(graph, std::move(coarse_of), next);
}

Matrix RestrictFeatures(const Coarsening& coarsening, const Matrix& features) {
  SGNN_CHECK_EQ(features.rows(),
                static_cast<int64_t>(coarsening.coarse_of.size()));
  Matrix out(static_cast<int64_t>(coarsening.num_coarse()), features.cols());
  for (size_t u = 0; u < coarsening.coarse_of.size(); ++u) {
    SGNN_DCHECK_LT(coarsening.coarse_of[u], coarsening.num_coarse());
    out.AccumulateRow(static_cast<int64_t>(coarsening.coarse_of[u]),
                      features.Row(static_cast<int64_t>(u)));
  }
  for (NodeId c = 0; c < coarsening.num_coarse(); ++c) {
    const float inv =
        1.0f / static_cast<float>(coarsening.cluster_size[c]);
    auto row = out.Row(static_cast<int64_t>(c));
    for (float& v : row) v *= inv;
  }
  return out;
}

Matrix LiftFeatures(const Coarsening& coarsening,
                    const Matrix& coarse_features) {
  SGNN_CHECK_EQ(coarse_features.rows(),
                static_cast<int64_t>(coarsening.num_coarse()));
  Matrix out(static_cast<int64_t>(coarsening.coarse_of.size()),
             coarse_features.cols());
  for (size_t u = 0; u < coarsening.coarse_of.size(); ++u) {
    SGNN_DCHECK_LT(coarsening.coarse_of[u], coarsening.num_coarse());
    auto src = coarse_features.Row(
        static_cast<int64_t>(coarsening.coarse_of[u]));
    std::copy(src.begin(), src.end(), out.Row(static_cast<int64_t>(u)).begin());
  }
  return out;
}

std::vector<int> RestrictLabels(const Coarsening& coarsening,
                                std::span<const int> labels, int num_classes) {
  SGNN_CHECK_EQ(labels.size(), coarsening.coarse_of.size());
  SGNN_CHECK_GT(num_classes, 0);
  std::vector<std::vector<int>> counts(
      coarsening.num_coarse(), std::vector<int>(static_cast<size_t>(num_classes), 0));
  for (size_t u = 0; u < labels.size(); ++u) {
    SGNN_CHECK(labels[u] >= 0 && labels[u] < num_classes);
    counts[coarsening.coarse_of[u]][static_cast<size_t>(labels[u])]++;
  }
  std::vector<int> out(coarsening.num_coarse());
  for (NodeId c = 0; c < coarsening.num_coarse(); ++c) {
    const auto& row = counts[c];
    out[c] = static_cast<int>(std::max_element(row.begin(), row.end()) -
                              row.begin());
  }
  return out;
}

double SpectralDistortion(const CsrGraph& graph, const Coarsening& coarsening,
                          int num_probes, uint64_t seed) {
  SGNN_CHECK_GE(num_probes, 1);
  // Heuristic distortion: compare the low ends of the normalised-Laplacian
  // spectra of the fine and coarse graphs via Lanczos Ritz values.
  graph::Propagator fine_prop(graph, graph::Normalization::kSymmetric, false);
  graph::Propagator coarse_prop(coarsening.coarse,
                                graph::Normalization::kSymmetric, false);
  const int steps = std::max(20, 4 * num_probes);
  auto fine = spectral::LanczosLaplacianSpectrum(fine_prop, steps, seed);
  auto coarse = spectral::LanczosLaplacianSpectrum(coarse_prop, steps, seed);
  const size_t count = std::min({static_cast<size_t>(num_probes),
                                 fine.size(), coarse.size()});
  double acc = 0.0;
  for (size_t i = 0; i < count; ++i) {
    acc += std::fabs(fine[i] - coarse[i]);
  }
  return acc / static_cast<double>(count);
}

}  // namespace sgnn::coarsen
