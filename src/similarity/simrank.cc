#include "similarity/simrank.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "common/rng.h"

namespace sgnn::similarity {

using graph::CsrGraph;
using graph::NodeId;

std::vector<double> AllPairsSimRank(const CsrGraph& graph, double c,
                                    int iterations) {
  SGNN_CHECK(c > 0.0 && c < 1.0);
  SGNN_CHECK_GE(iterations, 1);
  const size_t n = graph.num_nodes();
  std::vector<double> s(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) s[i * n + i] = 1.0;

  // One iteration is S' = c * P S P^T with unit diagonal, where P = D^-1 A.
  // Computed as two sparse-dense products, O(m n) each.
  std::vector<double> t(n * n, 0.0);
  std::vector<double> next(n * n, 0.0);
  for (int iter = 0; iter < iterations; ++iter) {
    // t = P * s : row u of t is the neighbour-average of rows of s.
    std::fill(t.begin(), t.end(), 0.0);
    for (NodeId u = 0; u < graph.num_nodes(); ++u) {
      auto nbrs = graph.Neighbors(u);
      if (nbrs.empty()) continue;
      const double inv = 1.0 / static_cast<double>(nbrs.size());
      double* trow = t.data() + static_cast<size_t>(u) * n;
      for (NodeId a : nbrs) {
        const double* srow = s.data() + static_cast<size_t>(a) * n;
        for (size_t j = 0; j < n; ++j) trow[j] += inv * srow[j];
      }
    }
    // next = c * t * P^T : column v of next is neighbour-average of columns
    // of t (exploiting (t P^T)[u][v] = mean_{b in N(v)} t[u][b]).
    std::fill(next.begin(), next.end(), 0.0);
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      auto nbrs = graph.Neighbors(v);
      if (nbrs.empty()) continue;
      const double factor = c / static_cast<double>(nbrs.size());
      for (NodeId b : nbrs) {
        const double* tcol_base = t.data() + b;  // t[*][b] strided.
        double* ncol_base = next.data() + v;
        for (size_t u = 0; u < n; ++u) {
          ncol_base[u * n] += factor * tcol_base[u * n];
        }
      }
    }
    for (size_t i = 0; i < n; ++i) next[i * n + i] = 1.0;
    s.swap(next);
  }
  return s;
}

namespace {

/// One uniform step on the graph; returns false at a dangling node.
bool Step(const CsrGraph& graph, common::Rng* rng, NodeId* pos) {
  auto nbrs = graph.Neighbors(*pos);
  if (nbrs.empty()) return false;
  *pos = nbrs[rng->UniformInt(nbrs.size())];
  return true;
}

}  // namespace

double SimRankMonteCarlo(const CsrGraph& graph, NodeId u, NodeId v, double c,
                         int num_walk_pairs, int max_length, uint64_t seed) {
  SGNN_CHECK(c > 0.0 && c < 1.0);
  SGNN_CHECK_GE(num_walk_pairs, 1);
  SGNN_CHECK_GE(max_length, 1);
  SGNN_CHECK_LT(u, graph.num_nodes());
  SGNN_CHECK_LT(v, graph.num_nodes());
  if (u == v) return 1.0;
  common::Rng rng(seed);
  double acc = 0.0;
  for (int w = 0; w < num_walk_pairs; ++w) {
    NodeId a = u, b = v;
    for (int step = 1; step <= max_length; ++step) {
      if (!Step(graph, &rng, &a) || !Step(graph, &rng, &b)) break;
      if (a == b) {
        acc += std::pow(c, step);
        break;
      }
    }
  }
  return acc / static_cast<double>(num_walk_pairs);
}

std::vector<std::pair<NodeId, double>> TopKSimRank(
    const CsrGraph& graph, NodeId source, double c, int k, int num_walk_pairs,
    int max_length, int extra_candidates, uint64_t seed) {
  SGNN_CHECK_GT(k, 0);
  SGNN_CHECK_LT(source, graph.num_nodes());
  common::Rng rng(seed);

  // Candidate pool: 2-hop neighbourhood plus random probes, so distant
  // similar nodes remain reachable.
  std::unordered_set<NodeId> candidates;
  for (NodeId a : graph.Neighbors(source)) {
    candidates.insert(a);
    for (NodeId b : graph.Neighbors(a)) candidates.insert(b);
  }
  for (int i = 0; i < extra_candidates; ++i) {
    candidates.insert(static_cast<NodeId>(rng.UniformInt(graph.num_nodes())));
  }
  candidates.erase(source);

  // Score in ascending node order: iterating the unordered_set directly
  // would consume the RNG in hash order, making scores depend on the
  // standard library's hashing.
  std::vector<NodeId> ordered(candidates.begin(), candidates.end());
  std::sort(ordered.begin(), ordered.end());

  std::vector<std::pair<NodeId, double>> scored;
  scored.reserve(ordered.size());
  for (NodeId v : ordered) {
    const double score = SimRankMonteCarlo(graph, source, v, c,
                                           num_walk_pairs, max_length,
                                           rng.engine()());
    if (score > 0.0) scored.emplace_back(v, score);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (static_cast<int>(scored.size()) > k) scored.resize(static_cast<size_t>(k));
  return scored;
}

}  // namespace sgnn::similarity
