#ifndef SGNN_SIMILARITY_COSINE_H_
#define SGNN_SIMILARITY_COSINE_H_

#include <utility>
#include <vector>

#include "graph/csr_graph.h"
#include "tensor/matrix.h"

namespace sgnn::similarity {

/// Cosine similarities used for DHGR-style rewiring (§3.2.2): topology
/// similarity compares adjacency rows, attribute similarity compares
/// feature rows.

/// |N(u) ∩ N(v)| / sqrt(d(u) d(v)); 0 when either side is isolated.
/// Exploits sorted adjacency for a linear merge.
double TopologyCosine(const graph::CsrGraph& graph, graph::NodeId u,
                      graph::NodeId v);

/// Cosine of feature rows u and v; 0 when either row is all-zero.
double AttributeCosine(const tensor::Matrix& features, graph::NodeId u,
                       graph::NodeId v);

/// Blended node-pair score: `topology_weight` * topology +
/// (1 - `topology_weight`) * attribute.
double BlendedSimilarity(const graph::CsrGraph& graph,
                         const tensor::Matrix& features, graph::NodeId u,
                         graph::NodeId v, double topology_weight);

/// Top-k most attribute-similar nodes to `source` (exact scan over all
/// nodes, excluding the source). Descending score, ties by id.
std::vector<std::pair<graph::NodeId, double>> TopKAttributeSimilar(
    const tensor::Matrix& features, graph::NodeId source, int k);

}  // namespace sgnn::similarity

#endif  // SGNN_SIMILARITY_COSINE_H_
