#ifndef SGNN_SIMILARITY_SIMRANK_H_
#define SGNN_SIMILARITY_SIMRANK_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/csr_graph.h"

namespace sgnn::similarity {

/// SimRank (Jeh & Widom): s(u,u) = 1 and
///   s(u,v) = c / (d(u) d(v)) * sum_{a in N(u), b in N(v)} s(a, b).
/// The structural node-pair similarity SIMGA (§3.2.2) uses to discover
/// same-class far-apart nodes under heterophily.

/// Exact-by-iteration all-pairs SimRank. O(n^2) memory and
/// O(iters * sum_u sum_v d(u) d(v)) time: intended for graphs with up to a
/// few thousand nodes (tests, small pipelines). Row-major n x n result.
std::vector<double> AllPairsSimRank(const graph::CsrGraph& graph, double c,
                                    int iterations);

/// Monte-Carlo single-pair estimate: simulates `num_walk_pairs` pairs of
/// sqrt(c)-decayed reverse random walks and scores first-meeting times.
/// Unbiased for the walk-based SimRank definition s(u,v) = E[c^{tau}].
double SimRankMonteCarlo(const graph::CsrGraph& graph, graph::NodeId u,
                         graph::NodeId v, double c, int num_walk_pairs,
                         int max_length, uint64_t seed);

/// Top-k most SimRank-similar nodes to `source` (excluding itself),
/// decoupled-precomputation style: candidates are gathered from the 2-hop
/// neighbourhood plus `extra_candidates` random nodes, scored by Monte
/// Carlo, and ranked. Returns (node, score) sorted descending.
std::vector<std::pair<graph::NodeId, double>> TopKSimRank(
    const graph::CsrGraph& graph, graph::NodeId source, double c, int k,
    int num_walk_pairs, int max_length, int extra_candidates, uint64_t seed);

}  // namespace sgnn::similarity

#endif  // SGNN_SIMILARITY_SIMRANK_H_
