#include "similarity/hub_labeling.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/check.h"

namespace sgnn::similarity {

using graph::CsrGraph;
using graph::NodeId;

HubLabeling::HubLabeling(const CsrGraph& graph) {
  const NodeId n = graph.num_nodes();
  labels_.resize(n);
  rank_to_node_.resize(n);
  std::iota(rank_to_node_.begin(), rank_to_node_.end(), 0);
  std::sort(rank_to_node_.begin(), rank_to_node_.end(),
            [&graph](NodeId a, NodeId b) {
              const auto da = graph.OutDegree(a), db = graph.OutDegree(b);
              return da != db ? da > db : a < b;
            });

  // Query using only labels built so far (hubs of rank < current).
  auto partial_query = [this](NodeId u, NodeId v) {
    const auto& lu = labels_[u];
    const auto& lv = labels_[v];
    int best = -1;
    size_t i = 0, j = 0;
    while (i < lu.size() && j < lv.size()) {
      if (lu[i].hub == lv[j].hub) {
        const int d = lu[i].dist + lv[j].dist;
        if (best == -1 || d < best) best = d;
        ++i;
        ++j;
      } else if (lu[i].hub < lv[j].hub) {
        ++i;
      } else {
        ++j;
      }
    }
    return best;
  };

  std::vector<int> dist(n, -1);
  std::vector<NodeId> touched;
  for (NodeId rank = 0; rank < n; ++rank) {
    const NodeId landmark = rank_to_node_[rank];
    // Pruned BFS from the landmark.
    std::queue<NodeId> frontier;
    dist[landmark] = 0;
    touched.clear();
    touched.push_back(landmark);
    frontier.push(landmark);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      const int du = dist[u];
      // Prune: if existing labels already certify a path of length <= du,
      // u (and its subtree via this landmark) gains nothing.
      const int certified = partial_query(landmark, u);
      if (certified != -1 && certified <= du) continue;
      labels_[u].push_back(Entry{rank, du});
      for (NodeId v : graph.Neighbors(u)) {
        if (dist[v] == -1) {
          dist[v] = du + 1;
          touched.push_back(v);
          frontier.push(v);
        }
      }
    }
    for (NodeId u : touched) dist[u] = -1;
  }
}

int HubLabeling::Query(NodeId u, NodeId v) const {
  SGNN_CHECK_LT(u, labels_.size());
  SGNN_CHECK_LT(v, labels_.size());
  if (u == v) return 0;
  const auto& lu = labels_[u];
  const auto& lv = labels_[v];
  int best = -1;
  size_t i = 0, j = 0;
  while (i < lu.size() && j < lv.size()) {
    if (lu[i].hub == lv[j].hub) {
      const int d = lu[i].dist + lv[j].dist;
      if (best == -1 || d < best) best = d;
      ++i;
      ++j;
    } else if (lu[i].hub < lv[j].hub) {
      ++i;
    } else {
      ++j;
    }
  }
  return best;
}

int64_t HubLabeling::TotalLabelEntries() const {
  int64_t total = 0;
  for (const auto& label : labels_) total += static_cast<int64_t>(label.size());
  return total;
}

std::vector<NodeId> HubLabeling::Hubs(NodeId u) const {
  SGNN_CHECK_LT(u, labels_.size());
  std::vector<NodeId> hubs;
  hubs.reserve(labels_[u].size());
  for (const Entry& e : labels_[u]) hubs.push_back(rank_to_node_[e.hub]);
  return hubs;
}

}  // namespace sgnn::similarity
