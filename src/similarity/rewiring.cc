#include "similarity/rewiring.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "similarity/cosine.h"

namespace sgnn::similarity {

using graph::CsrGraph;
using graph::NodeId;

RewiringResult RewireBySimilarity(const CsrGraph& graph,
                                  const tensor::Matrix& features,
                                  const RewiringConfig& config) {
  SGNN_CHECK_EQ(features.rows(), static_cast<int64_t>(graph.num_nodes()));
  SGNN_CHECK_GE(config.add_per_node, 0);

  graph::EdgeListBuilder builder(graph.num_nodes());
  RewiringResult result{CsrGraph(0), 0, 0};

  // Keep existing edges whose endpoints are similar enough.
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    auto nbrs = graph.Neighbors(u);
    auto ws = graph.Weights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const double sim = BlendedSimilarity(graph, features, u, nbrs[i],
                                           config.topology_weight);
      if (sim < config.remove_threshold) {
        ++result.edges_removed;
      } else {
        builder.AddEdge(u, nbrs[i], ws[i]);
      }
    }
  }

  // Add top-k attribute-similar pairs per node, each undirected pair once.
  if (config.add_per_node > 0) {
    std::unordered_set<uint64_t> added;
    for (NodeId u = 0; u < graph.num_nodes(); ++u) {
      auto top = TopKAttributeSimilar(features, u, config.add_per_node);
      for (const auto& [v, sim] : top) {
        if (sim < config.add_threshold) continue;
        if (graph.HasEdge(u, v)) continue;
        const NodeId lo = std::min(u, v), hi = std::max(u, v);
        const uint64_t key = (static_cast<uint64_t>(lo) << 32) | hi;
        if (!added.insert(key).second) continue;
        builder.AddUndirectedEdge(u, v);
        result.edges_added += 2;
      }
    }
  }

  builder.Symmetrize();  // Also deduplicates double-added pairs.
  result.graph = CsrGraph::FromBuilder(std::move(builder));
  return result;
}

}  // namespace sgnn::similarity
