#ifndef SGNN_SIMILARITY_REWIRING_H_
#define SGNN_SIMILARITY_REWIRING_H_

#include "graph/csr_graph.h"
#include "tensor/matrix.h"

namespace sgnn::similarity {

/// DHGR-style similarity rewiring (§3.2.2): add edges between highly
/// similar node pairs (recovering multi-scale same-class links that
/// heterophilous graphs lack) and drop edges between dissimilar endpoints.
struct RewiringConfig {
  /// Edges added per node toward its most attribute-similar peers.
  int add_per_node = 2;
  /// Only add a pair when its similarity is at least this.
  double add_threshold = 0.5;
  /// Remove existing edges whose endpoint similarity is below this.
  double remove_threshold = 0.0;
  /// Blend between topology (1.0) and attribute (0.0) similarity for the
  /// removal decision.
  double topology_weight = 0.0;
};

struct RewiringResult {
  graph::CsrGraph graph;
  int64_t edges_added = 0;    ///< Directed count.
  int64_t edges_removed = 0;  ///< Directed count.
};

/// Rewires an undirected graph; the result is symmetrised and simple.
RewiringResult RewireBySimilarity(const graph::CsrGraph& graph,
                                  const tensor::Matrix& features,
                                  const RewiringConfig& config);

}  // namespace sgnn::similarity

#endif  // SGNN_SIMILARITY_REWIRING_H_
