#ifndef SGNN_SIMILARITY_HUB_LABELING_H_
#define SGNN_SIMILARITY_HUB_LABELING_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

namespace sgnn::similarity {

/// Pruned landmark labelling (Akiba et al.): a 2-hop hub-label index over
/// an unweighted graph answering exact shortest-path-distance queries in
/// O(|label(u)| + |label(v)|). This is the indexing structure CFGNN and
/// DHIL-GT (§3.2.2) build their hierarchy/bias queries on.
class HubLabeling {
 public:
  /// Builds the index. Landmarks are processed in descending-degree order
  /// (ties by id), the standard heuristic that keeps labels small on
  /// skewed graphs.
  explicit HubLabeling(const graph::CsrGraph& graph);

  /// Exact hop distance between u and v, or -1 if disconnected.
  int Query(graph::NodeId u, graph::NodeId v) const;

  /// Total number of (hub, distance) entries across all labels.
  int64_t TotalLabelEntries() const;

  /// Label size of one node.
  int64_t LabelSize(graph::NodeId u) const {
    return static_cast<int64_t>(labels_[u].size());
  }

  /// Hubs of `u`'s label in insertion (descending-rank) order; the
  /// "cores" CFGNN treats distinctively.
  std::vector<graph::NodeId> Hubs(graph::NodeId u) const;

 private:
  struct Entry {
    graph::NodeId hub;  // Rank-space id (position in the landmark order).
    int dist;
  };
  // Per node: entries sorted by hub rank (insertion order is rank order).
  std::vector<std::vector<Entry>> labels_;
  std::vector<graph::NodeId> rank_to_node_;
};

}  // namespace sgnn::similarity

#endif  // SGNN_SIMILARITY_HUB_LABELING_H_
