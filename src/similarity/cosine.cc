#include "similarity/cosine.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace sgnn::similarity {

using graph::CsrGraph;
using graph::NodeId;

double TopologyCosine(const CsrGraph& graph, NodeId u, NodeId v) {
  SGNN_CHECK_LT(u, graph.num_nodes());
  SGNN_CHECK_LT(v, graph.num_nodes());
  auto nu = graph.Neighbors(u);
  auto nv = graph.Neighbors(v);
  if (nu.empty() || nv.empty()) return 0.0;
  size_t i = 0, j = 0, common = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] == nv[j]) {
      ++common;
      ++i;
      ++j;
    } else if (nu[i] < nv[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return static_cast<double>(common) /
         std::sqrt(static_cast<double>(nu.size()) *
                   static_cast<double>(nv.size()));
}

double AttributeCosine(const tensor::Matrix& features, NodeId u, NodeId v) {
  SGNN_CHECK_LT(static_cast<int64_t>(u), features.rows());
  SGNN_CHECK_LT(static_cast<int64_t>(v), features.rows());
  auto ru = features.Row(u);
  auto rv = features.Row(v);
  const double nu = tensor::Norm2(ru);
  const double nv = tensor::Norm2(rv);
  if (nu == 0.0 || nv == 0.0) return 0.0;
  return tensor::Dot(ru, rv) / (nu * nv);
}

double BlendedSimilarity(const CsrGraph& graph, const tensor::Matrix& features,
                         NodeId u, NodeId v, double topology_weight) {
  SGNN_CHECK(topology_weight >= 0.0 && topology_weight <= 1.0);
  return topology_weight * TopologyCosine(graph, u, v) +
         (1.0 - topology_weight) * AttributeCosine(features, u, v);
}

std::vector<std::pair<NodeId, double>> TopKAttributeSimilar(
    const tensor::Matrix& features, NodeId source, int k) {
  SGNN_CHECK_GT(k, 0);
  std::vector<std::pair<NodeId, double>> scored;
  scored.reserve(static_cast<size_t>(features.rows()));
  for (int64_t v = 0; v < features.rows(); ++v) {
    if (static_cast<NodeId>(v) == source) continue;
    scored.emplace_back(static_cast<NodeId>(v),
                        AttributeCosine(features, source,
                                        static_cast<NodeId>(v)));
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (static_cast<int>(scored.size()) > k) scored.resize(static_cast<size_t>(k));
  return scored;
}

}  // namespace sgnn::similarity
