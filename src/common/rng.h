#ifndef SGNN_COMMON_RNG_H_
#define SGNN_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace sgnn::common {

/// SplitMix64 finaliser: a strong, cheap 64-bit bit mixer. The primitive
/// behind keyed stream derivation — every bit of the input affects every
/// bit of the output, so nearby keys give decorrelated streams.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Derives the seed of an independent stream from a (base, key) pair.
/// Parallel kernels seed one `Rng` per work item as
/// `Rng(MixSeed(base, item))`: the stream depends only on the pair, never
/// on which thread or in what order the item runs — the property that
/// makes sampling results independent of the worker count.
inline uint64_t MixSeed(uint64_t base, uint64_t key) {
  return SplitMix64(base ^ SplitMix64(key));
}

/// Uniform double in [0, 1) as a pure function of (base, key); the shared
/// per-vertex variate of LABOR-style samplers. 53-bit resolution.
inline double KeyedUniform(uint64_t base, uint64_t key) {
  return static_cast<double>(MixSeed(base, key) >> 11) * 0x1.0p-53;
}

/// Deterministic random number generator used throughout the library.
///
/// Every stochastic component (generators, samplers, initialisers) takes an
/// explicit 64-bit seed and derives an `Rng`, so any run of the library is
/// reproducible bit-for-bit given the seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    SGNN_DCHECK(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) {
    SGNN_DCHECK(n > 0);
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Standard normal draw scaled to N(mean, stddev^2).
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->size() < 2) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = UniformInt(i + 1);
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) uniformly (k <= n), in
  /// unspecified order. Uses Floyd's algorithm for k << n.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

  /// Draws an index from an unnormalised non-negative weight vector.
  /// Requires at least one strictly positive weight.
  size_t Categorical(const std::vector<double>& weights);

  /// Forks a child generator whose stream is decorrelated from this one;
  /// used to give parallel or per-item components independent streams.
  Rng Fork() { return Rng(engine_() ^ 0x9E3779B97F4A7C15ULL); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sgnn::common

#endif  // SGNN_COMMON_RNG_H_
