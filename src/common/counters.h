#ifndef SGNN_COMMON_COUNTERS_H_
#define SGNN_COMMON_COUNTERS_H_

#include <cstdint>
#include <string>

namespace sgnn::common {

/// Hardware-independent scalability accounting.
///
/// The tutorial's scalability claims are about *data movement*, not wall
/// clock on a particular device: how many edges a method touches, how many
/// feature scalars it moves, and how large its resident working set gets.
/// Library kernels increment these counters so benchmarks can report the
/// quantities the paper reasons about directly.
struct OpCounters {
  /// Directed edge traversals (one neighbour visit = one).
  uint64_t edges_touched = 0;
  /// Scalar feature values read or written by propagation/NN kernels.
  uint64_t floats_moved = 0;
  /// Bytes a kernel logically read: operand elements consumed, including
  /// the read half of read-modify-write accumulations and the index/
  /// coefficient streams of sparse kernels. Billed per kernel as a pure
  /// function of the workload (never of the thread count or backend), so
  /// roofline ratios like bytes/edge are reproducible. The formula each
  /// kernel bills is documented at its `BillBytes` call site.
  uint64_t bytes_read = 0;
  /// Bytes a kernel logically wrote (result elements stored).
  uint64_t bytes_written = 0;
  /// High-water mark of simultaneously materialised feature scalars; a
  /// proxy for peak (GPU) memory in the paper's discussions.
  uint64_t peak_resident_floats = 0;
  /// Currently materialised feature scalars (drives the peak).
  uint64_t resident_floats = 0;
  /// Shard files faulted into memory by the out-of-core storage layer.
  uint64_t shard_loads = 0;
  /// Shards evicted to stay under the resident budget.
  uint64_t shard_evictions = 0;
  /// Total bytes mapped by shard loads (monotone; reloads count again).
  uint64_t shard_bytes_loaded = 0;
  /// Currently mapped shard bytes (drives the shard-byte peak).
  uint64_t resident_shard_bytes = 0;
  /// High-water mark of simultaneously mapped shard bytes; the quantity a
  /// resident budget caps.
  uint64_t peak_resident_shard_bytes = 0;

  void Reset() { *this = OpCounters(); }

  /// Bills one kernel's logical data movement (see `bytes_read`). Kernels
  /// call this once per shard with totals derived from the shard's
  /// workload, so per-region deltas sum exactly at any worker count.
  void BillBytes(uint64_t read, uint64_t written) {
    bytes_read += read;
    bytes_written += written;
  }

  /// Registers an allocation of `n` feature scalars.
  void Acquire(uint64_t n) {
    resident_floats += n;
    if (resident_floats > peak_resident_floats) {
      peak_resident_floats = resident_floats;
    }
  }

  /// Registers release of `n` feature scalars.
  void Release(uint64_t n) {
    resident_floats = (n > resident_floats) ? 0 : resident_floats - n;
  }

  /// Registers `n` shard bytes mapped in by the storage layer.
  void AcquireShardBytes(uint64_t n) {
    resident_shard_bytes += n;
    if (resident_shard_bytes > peak_resident_shard_bytes) {
      peak_resident_shard_bytes = resident_shard_bytes;
    }
  }

  /// Registers `n` shard bytes unmapped (eviction or close).
  void ReleaseShardBytes(uint64_t n) {
    resident_shard_bytes =
        (n > resident_shard_bytes) ? 0 : resident_shard_bytes - n;
  }

  /// Re-bases the high-water marks to the current residency, making peaks
  /// run-local: a run that pins this at entry reports the peak *it* caused,
  /// not a ghost from an earlier, larger run on the same thread. The
  /// pipeline does this at run start; out-of-core opens do the same so
  /// per-budget peaks are reproducible in reports.
  void RebasePeaks() {
    peak_resident_floats = resident_floats;
    peak_resident_shard_bytes = resident_shard_bytes;
  }

  /// Accumulates `other` into this counter set. Peaks add (the sum of
  /// per-thread peaks upper-bounds the true simultaneous peak).
  void MergeFrom(const OpCounters& other) {
    edges_touched += other.edges_touched;
    floats_moved += other.floats_moved;
    bytes_read += other.bytes_read;
    bytes_written += other.bytes_written;
    peak_resident_floats += other.peak_resident_floats;
    resident_floats += other.resident_floats;
    shard_loads += other.shard_loads;
    shard_evictions += other.shard_evictions;
    shard_bytes_loaded += other.shard_bytes_loaded;
    resident_shard_bytes += other.resident_shard_bytes;
    peak_resident_shard_bytes += other.peak_resident_shard_bytes;
  }

  /// Work done between two snapshots of the same counter instance. The
  /// monotone counters subtract; `peak_resident_floats` and
  /// `resident_floats` are point-in-time quantities and report `end`'s
  /// value. This is the single definition of "per-region delta" — the
  /// pipeline report rows and the `obs` gauge exports both call it, so the
  /// two can never disagree.
  static OpCounters Delta(const OpCounters& begin, const OpCounters& end) {
    OpCounters d;
    d.edges_touched = end.edges_touched - begin.edges_touched;
    d.floats_moved = end.floats_moved - begin.floats_moved;
    d.bytes_read = end.bytes_read - begin.bytes_read;
    d.bytes_written = end.bytes_written - begin.bytes_written;
    d.peak_resident_floats = end.peak_resident_floats;
    d.resident_floats = end.resident_floats;
    d.shard_loads = end.shard_loads - begin.shard_loads;
    d.shard_evictions = end.shard_evictions - begin.shard_evictions;
    d.shard_bytes_loaded = end.shard_bytes_loaded - begin.shard_bytes_loaded;
    d.resident_shard_bytes = end.resident_shard_bytes;
    d.peak_resident_shard_bytes = end.peak_resident_shard_bytes;
    return d;
  }

  std::string ToString() const;
};

/// Per-thread counter instance incremented by instrumented kernels. Each
/// thread owns a private (plain, uncontended) instance, so kernels stay as
/// cheap as the historical single-threaded globals and a single-threaded
/// program observes exactly the historical values.
OpCounters& GlobalCounters();

/// Sums the counters of every thread that ever called `GlobalCounters()`:
/// live threads contribute their current values, exited threads the values
/// they retired with. Counts from threads still running are a relaxed
/// snapshot (they may be mid-increment); for exact totals, call after the
/// workers of interest have quiesced or joined.
OpCounters AggregateThreadCounters();

/// Immutable point-in-time copy of the calling thread's counters; pair two
/// snapshots with `OpCounters::Delta` to attribute work to a region.
inline OpCounters SnapshotThreadCounters() { return GlobalCounters(); }

/// Captures the counter state at construction and exposes the delta since,
/// so a caller can attribute work to a region without resetting globals.
/// Thread-scoped: it observes only the calling thread's counters.
class ScopedCounterDelta {
 public:
  ScopedCounterDelta() : base_(SnapshotThreadCounters()) {}

  /// Work done since construction. `peak_resident_floats` is reported as
  /// the maximum observed during the scope, not a difference.
  OpCounters Delta() const {
    return OpCounters::Delta(base_, SnapshotThreadCounters());
  }

 private:
  OpCounters base_;
};

}  // namespace sgnn::common

#endif  // SGNN_COMMON_COUNTERS_H_
