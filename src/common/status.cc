#include "common/status.h"

namespace sgnn::common {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "SGNN_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

void CheckOpFailed(const char* file, int line, const char* expr,
                   const std::string& lhs, const std::string& rhs) {
  std::fprintf(stderr, "SGNN_CHECK failed at %s:%d: %s (%s vs. %s)\n", file,
               line, expr, lhs.c_str(), rhs.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal

}  // namespace sgnn::common
