#ifndef SGNN_COMMON_CHECK_H_
#define SGNN_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace sgnn::common::internal {

/// Prints a fatal-check failure and aborts. Out-of-line so the macro body
/// stays tiny on the happy path.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr);

/// As above, for comparison checks: also prints the rendered operand
/// values, so `SGNN_CHECK_EQ(rows, n)` failures show *what* the two sides
/// were, not just that they differed.
[[noreturn]] void CheckOpFailed(const char* file, int line, const char* expr,
                                const std::string& lhs, const std::string& rhs);

/// Renders a failed comparison operand. Streamable types print their
/// value; everything else a placeholder. Only ever called on the abort
/// path, so the stringstream cost never touches the happy path.
template <typename T>
std::string CheckOpValue(const T& v) {
  if constexpr (requires(std::ostringstream& os) { os << v; }) {
    std::ostringstream os;
    os << v;
    return os.str();
  } else {
    return "<unprintable>";
  }
}

}  // namespace sgnn::common::internal

/// Aborts with a diagnostic if `cond` is false. Used for programming errors
/// (contract violations), never for data-dependent failures, which return
/// `sgnn::common::Status` instead.
#define SGNN_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::sgnn::common::internal::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                                 \
  } while (false)

/// Comparison core: evaluates each operand exactly once, compares, and on
/// failure aborts with both values rendered. The happy path is a single
/// comparison and branch — operand capture is by reference and the
/// rendering machinery is only instantiated on the abort path.
#define SGNN_CHECK_OP__(a, b, op)                                        \
  do {                                                                   \
    auto&& sgnn_check_a__ = (a);                                         \
    auto&& sgnn_check_b__ = (b);                                         \
    if (!(sgnn_check_a__ op sgnn_check_b__)) {                           \
      ::sgnn::common::internal::CheckOpFailed(                           \
          __FILE__, __LINE__, #a " " #op " " #b,                         \
          ::sgnn::common::internal::CheckOpValue(sgnn_check_a__),        \
          ::sgnn::common::internal::CheckOpValue(sgnn_check_b__));       \
    }                                                                    \
  } while (false)

/// `SGNN_CHECK` variants with the comparison rendered in the macro name so
/// failure sites read naturally at the call site; failures print both
/// operand values ("SGNN_CHECK failed ... (3 vs. 5)").
#define SGNN_CHECK_EQ(a, b) SGNN_CHECK_OP__(a, b, ==)
#define SGNN_CHECK_NE(a, b) SGNN_CHECK_OP__(a, b, !=)
#define SGNN_CHECK_LT(a, b) SGNN_CHECK_OP__(a, b, <)
#define SGNN_CHECK_LE(a, b) SGNN_CHECK_OP__(a, b, <=)
#define SGNN_CHECK_GT(a, b) SGNN_CHECK_OP__(a, b, >)
#define SGNN_CHECK_GE(a, b) SGNN_CHECK_OP__(a, b, >=)

/// Debug-only checks; compiled out in NDEBUG builds on hot paths.
#ifdef NDEBUG
#define SGNN_DCHECK(cond) \
  do {                    \
  } while (false)
#define SGNN_DCHECK_OP__(a, b, op) \
  do {                             \
  } while (false)
#else
#define SGNN_DCHECK(cond) SGNN_CHECK(cond)
#define SGNN_DCHECK_OP__(a, b, op) SGNN_CHECK_OP__(a, b, op)
#endif

#define SGNN_DCHECK_EQ(a, b) SGNN_DCHECK_OP__(a, b, ==)
#define SGNN_DCHECK_NE(a, b) SGNN_DCHECK_OP__(a, b, !=)
#define SGNN_DCHECK_LT(a, b) SGNN_DCHECK_OP__(a, b, <)
#define SGNN_DCHECK_LE(a, b) SGNN_DCHECK_OP__(a, b, <=)
#define SGNN_DCHECK_GT(a, b) SGNN_DCHECK_OP__(a, b, >)
#define SGNN_DCHECK_GE(a, b) SGNN_DCHECK_OP__(a, b, >=)

#endif  // SGNN_COMMON_CHECK_H_
