#ifndef SGNN_COMMON_CHECK_H_
#define SGNN_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace sgnn::common::internal {

/// Prints a fatal-check failure and aborts. Out-of-line so the macro body
/// stays tiny on the happy path.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr);

}  // namespace sgnn::common::internal

/// Aborts with a diagnostic if `cond` is false. Used for programming errors
/// (contract violations), never for data-dependent failures, which return
/// `sgnn::common::Status` instead.
#define SGNN_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::sgnn::common::internal::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                                 \
  } while (false)

/// `SGNN_CHECK` variants with the comparison rendered in the macro name so
/// failure sites read naturally at the call site.
#define SGNN_CHECK_EQ(a, b) SGNN_CHECK((a) == (b))
#define SGNN_CHECK_NE(a, b) SGNN_CHECK((a) != (b))
#define SGNN_CHECK_LT(a, b) SGNN_CHECK((a) < (b))
#define SGNN_CHECK_LE(a, b) SGNN_CHECK((a) <= (b))
#define SGNN_CHECK_GT(a, b) SGNN_CHECK((a) > (b))
#define SGNN_CHECK_GE(a, b) SGNN_CHECK((a) >= (b))

/// Debug-only check; compiled out in NDEBUG builds on hot paths.
#ifdef NDEBUG
#define SGNN_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define SGNN_DCHECK(cond) SGNN_CHECK(cond)
#endif

#endif  // SGNN_COMMON_CHECK_H_
