#ifndef SGNN_COMMON_THREAD_POOL_H_
#define SGNN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace sgnn::common {

/// Point-in-time load view of a `ThreadPool`, cheap enough to poll from a
/// metrics exporter: queue depth is the backlog signal an operator watches
/// (a rising depth means submitters outpace the workers).
struct ThreadPoolStats {
  uint64_t submitted = 0;        ///< Tasks ever accepted by `Submit`.
  uint64_t executed = 0;         ///< Tasks that finished running.
  uint64_t queue_depth = 0;      ///< Tasks queued but not yet started.
  uint64_t max_queue_depth = 0;  ///< High-water mark of `queue_depth`.
  int active = 0;                ///< Tasks currently executing.
};

/// Worker pool executing submitted closures FIFO; sized at construction
/// and resizable between workloads (`Resize`). The internal
/// task list is unbounded; callers that need backpressure bound their own
/// admission (see `BoundedMpmcQueue` and `serve::BatchingServer`).
///
/// Destruction drains: queued tasks still run before the workers join, so
/// work submitted before shutdown is never silently dropped.
///
/// Mutable state (`tasks_`, `active_`, `stopping_`) is guarded by `mu_`
/// and annotated so Clang's `-Wthread-safety` verifies the discipline;
/// `workers_` is written only during construction and joined at shutdown,
/// so it needs no lock.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn` on some worker. Must not be called after `Shutdown`.
  void Submit(std::function<void()> fn) SGNN_EXCLUDES(mu_);

  /// Blocks until every queued and running task has finished.
  void WaitIdle() SGNN_EXCLUDES(mu_);

  /// Drains remaining tasks and joins the workers; idempotent.
  void Shutdown() SGNN_EXCLUDES(mu_);

  /// Changes the worker count to `n` (>= 1): drains the queue, joins the
  /// current workers, then starts `n` fresh ones. Cumulative `Stats()`
  /// counts (submitted/executed/high-water) survive the resize. Must not
  /// race with `Submit` — configure between workloads (`par::SetThreads`
  /// serialises its calls); a no-op when `n` already matches.
  void Resize(int n) SGNN_EXCLUDES(mu_);

  /// Load snapshot (see `ThreadPoolStats`). Thread-safe; values from live
  /// workers are a consistent instant under the pool lock.
  ThreadPoolStats Stats() const SGNN_EXCLUDES(mu_);

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop() SGNN_EXCLUDES(mu_);

  mutable Mutex mu_;
  std::condition_variable_any work_available_;
  std::condition_variable_any idle_;
  std::deque<std::function<void()>> tasks_ SGNN_GUARDED_BY(mu_);
  // sgnn-lint: allow(lock/unannotated-field): mutated only by Resize and
  // the destructor, which the documented contract serialises outside any
  // workload; joining under mu_ would deadlock against WorkerLoop.
  std::vector<std::thread> workers_;
  int active_ SGNN_GUARDED_BY(mu_) = 0;  ///< Tasks currently executing.
  bool stopping_ SGNN_GUARDED_BY(mu_) = false;
  uint64_t submitted_ SGNN_GUARDED_BY(mu_) = 0;
  uint64_t executed_ SGNN_GUARDED_BY(mu_) = 0;
  uint64_t max_queue_depth_ SGNN_GUARDED_BY(mu_) = 0;
};

}  // namespace sgnn::common

#endif  // SGNN_COMMON_THREAD_POOL_H_
