#ifndef SGNN_COMMON_THREAD_POOL_H_
#define SGNN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sgnn::common {

/// Fixed-size worker pool executing submitted closures FIFO. The internal
/// task list is unbounded; callers that need backpressure bound their own
/// admission (see `BoundedMpmcQueue` and `serve::BatchingServer`).
///
/// Destruction drains: queued tasks still run before the workers join, so
/// work submitted before shutdown is never silently dropped.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn` on some worker. Must not be called after `Shutdown`.
  void Submit(std::function<void()> fn);

  /// Blocks until every queued and running task has finished.
  void WaitIdle();

  /// Drains remaining tasks and joins the workers; idempotent.
  void Shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  int active_ = 0;      ///< Tasks currently executing.
  bool stopping_ = false;
};

}  // namespace sgnn::common

#endif  // SGNN_COMMON_THREAD_POOL_H_
