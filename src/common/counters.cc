#include "common/counters.h"

#include <cstdio>

namespace sgnn::common {

OpCounters& GlobalCounters() {
  static OpCounters counters;  // Trivially destructible POD: allowed static.
  return counters;
}

std::string OpCounters::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "edges_touched=%llu floats_moved=%llu peak_resident=%llu",
                static_cast<unsigned long long>(edges_touched),
                static_cast<unsigned long long>(floats_moved),
                static_cast<unsigned long long>(peak_resident_floats));
  return std::string(buf);
}

}  // namespace sgnn::common
