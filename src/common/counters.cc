#include "common/counters.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/thread_annotations.h"

namespace sgnn::common {

namespace {

/// Book-keeping shared by all threads' counter slots. Live slots are listed
/// so `AggregateThreadCounters` can read them; a thread's totals move into
/// `retired` when the thread exits so its work is never lost.
struct CounterRegistry {
  Mutex mu;
  std::vector<const OpCounters*> live SGNN_GUARDED_BY(mu);
  OpCounters retired SGNN_GUARDED_BY(mu);
};

CounterRegistry& Registry() {
  static CounterRegistry* registry = new CounterRegistry();  // Never freed:
  return *registry;  // thread slots may unregister during process teardown.
}

/// One thread's counter instance; registers on first use, retires its
/// totals on thread exit.
struct ThreadCounterSlot {
  OpCounters counters;

  ThreadCounterSlot() {
    CounterRegistry& registry = Registry();
    MutexLock lock(registry.mu);
    registry.live.push_back(&counters);
  }

  ~ThreadCounterSlot() {
    CounterRegistry& registry = Registry();
    MutexLock lock(registry.mu);
    registry.retired.MergeFrom(counters);
    auto it = std::find(registry.live.begin(), registry.live.end(), &counters);
    if (it != registry.live.end()) registry.live.erase(it);
  }
};

}  // namespace

OpCounters& GlobalCounters() {
  thread_local ThreadCounterSlot slot;
  return slot.counters;
}

OpCounters AggregateThreadCounters() {
  CounterRegistry& registry = Registry();
  MutexLock lock(registry.mu);
  OpCounters total = registry.retired;
  for (const OpCounters* c : registry.live) total.MergeFrom(*c);
  return total;
}

std::string OpCounters::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "edges_touched=%llu floats_moved=%llu peak_resident=%llu",
                static_cast<unsigned long long>(edges_touched),
                static_cast<unsigned long long>(floats_moved),
                static_cast<unsigned long long>(peak_resident_floats));
  std::string out(buf);
  // Byte accounting appears once any converted kernel billed it; runs that
  // never touch the simd-substrate kernels keep the historical shape.
  if (bytes_read != 0 || bytes_written != 0) {
    std::snprintf(buf, sizeof(buf), " bytes_read=%llu bytes_written=%llu",
                  static_cast<unsigned long long>(bytes_read),
                  static_cast<unsigned long long>(bytes_written));
    out += buf;
  }
  // Storage fields only appear when the out-of-core path ran, so reports
  // from purely in-memory runs keep their historical shape.
  if (shard_loads != 0 || shard_evictions != 0 ||
      peak_resident_shard_bytes != 0) {
    std::snprintf(buf, sizeof(buf),
                  " shard_loads=%llu shard_evictions=%llu"
                  " shard_bytes_loaded=%llu peak_resident_shard_bytes=%llu",
                  static_cast<unsigned long long>(shard_loads),
                  static_cast<unsigned long long>(shard_evictions),
                  static_cast<unsigned long long>(shard_bytes_loaded),
                  static_cast<unsigned long long>(peak_resident_shard_bytes));
    out += buf;
  }
  return out;
}

}  // namespace sgnn::common
