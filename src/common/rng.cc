#include "common/rng.h"

#include <unordered_set>

namespace sgnn::common {

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  SGNN_CHECK_LE(k, n);
  std::vector<uint64_t> out;
  out.reserve(k);
  if (k == 0) return out;
  // Dense regime: shuffle a prefix of the identity permutation.
  if (k * 3 >= n) {
    std::vector<uint64_t> all(n);
    for (uint64_t i = 0; i < n; ++i) all[i] = i;
    for (uint64_t i = 0; i < k; ++i) {
      uint64_t j = i + UniformInt(n - i);
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }
  // Sparse regime: Floyd's algorithm.
  std::unordered_set<uint64_t> seen;
  seen.reserve(k * 2);
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = UniformInt(j + 1);
    if (!seen.insert(t).second) {
      seen.insert(j);
      out.push_back(j);
    } else {
      out.push_back(t);
    }
  }
  return out;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    SGNN_DCHECK(w >= 0.0);
    total += w;
  }
  SGNN_CHECK_GT(total, 0.0);
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace sgnn::common
