#ifndef SGNN_COMMON_CRC32_H_
#define SGNN_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace sgnn::common {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant) over `n` bytes.
/// Pass a previous result as `crc` to checksum data incrementally:
/// `Crc32(b, nb, Crc32(a, na))` equals the CRC of a||b. Used to detect
/// torn or corrupted checkpoint files before trusting their contents.
uint32_t Crc32(const void* data, size_t n, uint32_t crc = 0);

}  // namespace sgnn::common

#endif  // SGNN_COMMON_CRC32_H_
