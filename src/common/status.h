#ifndef SGNN_COMMON_STATUS_H_
#define SGNN_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/check.h"

/// Marks a type or function whose result must not be silently dropped.
/// Applied to `Status`/`StatusOr` themselves, so every function returning
/// one by value inherits the check; also placed on individual
/// Status-returning public APIs as documentation. The compiler enforces
/// what the `status/discarded` lint rule checks textually.
#define SGNN_NODISCARD [[nodiscard]]

namespace sgnn::common {

/// Error category for a failed operation. `kOk` denotes success.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kInternal,
  kUnavailable,
  kDeadlineExceeded,
  kAborted,
  kResourceExhausted,
  kDataLoss,
};

/// Returns a short human-readable name such as "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
///
/// The library does not throw exceptions across API boundaries; operations
/// that can fail for data-dependent reasons return `Status` (or `StatusOr<T>`
/// for value-producing operations), following the RocksDB/Arrow idiom.
/// Programming errors are enforced with `SGNN_CHECK` instead.
class SGNN_NODISCARD Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Transient overload (e.g. a full request queue): the caller may retry.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// The operation's time budget ran out before it completed. Retrying
  /// without a fresh deadline is pointless.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// The operation was cancelled mid-flight (e.g. an injected crash or a
  /// shutdown race); partial effects may need rollback or resume.
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  /// A hard resource cap (e.g. `RunContext::resident_budget_bytes`) cannot
  /// admit the operation's working set. Retrying at the same budget fails
  /// the same way; the caller must raise the budget or shrink the shards.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// Stored or transmitted bytes failed an integrity check (CRC mismatch,
  /// torn write, truncated stream). Unlike `kIOError` the device worked;
  /// the *data* is unrecoverable from this replica and the caller must
  /// re-fetch, restore from a checkpoint, or fail the dependent operation.
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "Code: message", or "OK".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or a non-OK `Status` explaining its absence.
///
/// Accessing `value()` on an error-state object aborts via `SGNN_CHECK`,
/// so callers must test `ok()` first.
template <typename T>
class SGNN_NODISCARD StatusOr {
 public:
  /// Implicit construction from a value or an error, mirroring absl.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    SGNN_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SGNN_CHECK(status_.ok());
    return value_;
  }
  T& value() & {
    SGNN_CHECK(status_.ok());
    return value_;
  }
  T&& value() && {
    SGNN_CHECK(status_.ok());
    return std::move(value_);
  }

 private:
  Status status_;
  // `T()` rather than `T{}`: braces would reject types whose only default
  // construction path is an explicit constructor (e.g. `CsrGraph`).
  T value_ = T();
};

/// Propagates a non-OK status to the caller.
#define SGNN_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::sgnn::common::Status _sgnn_status = (expr);    \
    if (!_sgnn_status.ok()) return _sgnn_status;     \
  } while (false)

}  // namespace sgnn::common

#endif  // SGNN_COMMON_STATUS_H_
