#include "common/fault.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <limits>

#include "common/check.h"

namespace sgnn::common {

namespace internal {

uint64_t MixHash(uint64_t a, uint64_t b, uint64_t c) {
  uint64_t x = a ^ (b * 0x9E3779B97F4A7C15ULL) ^ (c * 0xBF58476D1CE4E5B9ULL);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

double HashToUnit(uint64_t h) {
  // Top 53 bits -> [0, 1), the standard double-from-bits construction.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace internal

namespace {

uint64_t SiteHash(const std::string& site) {
  // FNV-1a over the site name: stable across runs and platforms.
  uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

FaultInjector::Site& FaultInjector::SiteFor(const std::string& name) {
  return sites_[name];
}

void FaultInjector::Arm(const std::string& site, double probability) {
  SGNN_CHECK(probability >= 0.0 && probability <= 1.0);
  MutexLock lock(mu_);
  SiteFor(site).probability = probability;
}

void FaultInjector::ArmAt(const std::string& site, int64_t op_index) {
  SGNN_CHECK_GE(op_index, 0);
  MutexLock lock(mu_);
  SiteFor(site).fail_at = op_index;
}

void FaultInjector::Disarm(const std::string& site) {
  MutexLock lock(mu_);
  Site& s = SiteFor(site);
  s.probability = 0.0;
  s.fail_at = -1;
}

bool FaultInjector::ShouldFail(const std::string& site) {
  MutexLock lock(mu_);
  Site& s = SiteFor(site);
  const int64_t op = s.ops++;
  if (s.fail_at >= 0 && op == s.fail_at) {
    s.fail_at = -1;  // One-shot.
    return true;
  }
  if (s.probability <= 0.0) return false;
  const uint64_t h = internal::MixHash(seed_, SiteHash(site),
                                       static_cast<uint64_t>(op));
  return internal::HashToUnit(h) < s.probability;
}

bool FaultInjector::ShouldFail(const std::string& site, uint64_t token) {
  MutexLock lock(mu_);
  Site& s = SiteFor(site);
  s.ops++;
  if (s.fail_at >= 0 && static_cast<uint64_t>(s.fail_at) == token) {
    return true;  // Token triggers are replayable, so not one-shot.
  }
  if (s.probability <= 0.0) return false;
  const uint64_t h = internal::MixHash(seed_, SiteHash(site), token);
  return internal::HashToUnit(h) < s.probability;
}

Status FaultInjector::MaybeFail(const std::string& site, uint64_t token) {
  if (ShouldFail(site, token)) {
    return Status::Unavailable("injected fault at " + site);
  }
  return Status::OK();
}

Status FaultInjector::ArmFromSpec(const std::string& spec) {
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find_first_of(";,", start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    const std::size_t at = entry.find('@');
    const std::size_t eq = entry.find('=');
    const std::size_t sep = std::min(at, eq);
    if (sep == std::string::npos || sep == 0 || sep + 1 >= entry.size()) {
      return Status::InvalidArgument("malformed fault spec entry '" + entry +
                                     "' (want site@token or site=probability)");
    }
    const std::string site = entry.substr(0, sep);
    const std::string arg = entry.substr(sep + 1);
    errno = 0;
    char* parse_end = nullptr;
    if (at < eq) {
      const long long token = std::strtoll(arg.c_str(), &parse_end, 10);
      if (errno != 0 || parse_end == arg.c_str() || *parse_end != '\0' ||
          token < 0) {
        return Status::InvalidArgument("bad token in fault spec entry '" +
                                       entry + "'");
      }
      ArmAt(site, token);
    } else {
      const double p = std::strtod(arg.c_str(), &parse_end);
      if (errno != 0 || parse_end == arg.c_str() || *parse_end != '\0' ||
          p < 0.0 || p > 1.0) {
        return Status::InvalidArgument("bad probability in fault spec entry '" +
                                       entry + "'");
      }
      Arm(site, p);
    }
  }
  return Status::OK();
}

Status FaultInjector::ArmFromEnv() {
  const char* spec = std::getenv(kFaultsEnv);
  if (spec == nullptr || *spec == '\0') return Status::OK();
  return ArmFromSpec(spec);
}

int64_t FaultInjector::OpCount(const std::string& site) const {
  MutexLock lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.ops;
}

int64_t Deadline::remaining_micros() const {
  if (infinite_) return std::numeric_limits<int64_t>::max();
  return std::chrono::duration_cast<std::chrono::microseconds>(at_ -
                                                               Clock::now())
      .count();
}

int64_t RetryPolicy::BackoffMicros(int attempt, uint64_t token) const {
  SGNN_CHECK_GE(attempt, 1);
  double backoff = static_cast<double>(base_backoff_micros);
  for (int i = 1; i < attempt; ++i) backoff *= backoff_multiplier;
  backoff = std::min(backoff, static_cast<double>(max_backoff_micros));
  if (jitter > 0.0) {
    const uint64_t h = internal::MixHash(
        seed, static_cast<uint64_t>(attempt), token);
    // Uniform in [1 - jitter, 1 + jitter).
    backoff *= 1.0 + jitter * (2.0 * internal::HashToUnit(h) - 1.0);
  }
  return static_cast<int64_t>(backoff);
}

CircuitBreaker::CircuitBreaker(Config config) : config_(config) {
  SGNN_CHECK_GE(config_.failure_threshold, 1);
  SGNN_CHECK_GE(config_.probe_interval, 1);
}

bool CircuitBreaker::Allow() {
  MutexLock lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      ++rejected_since_open_;
      if (rejected_since_open_ % config_.probe_interval == 0) {
        state_ = State::kHalfOpen;  // Admit one probe.
        return true;
      }
      ++fast_fails_;
      return false;
    case State::kHalfOpen:
      ++fast_fails_;  // One probe at a time.
      return false;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  MutexLock lock(mu_);
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  rejected_since_open_ = 0;
}

void CircuitBreaker::RecordFailure() {
  MutexLock lock(mu_);
  ++consecutive_failures_;
  const bool trip = state_ == State::kHalfOpen ||
                    (state_ == State::kClosed &&
                     consecutive_failures_ >= config_.failure_threshold);
  if (trip) {
    state_ = State::kOpen;
    rejected_since_open_ = 0;
    ++trips_;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  MutexLock lock(mu_);
  return state_;
}

int64_t CircuitBreaker::trips() const {
  MutexLock lock(mu_);
  return trips_;
}

int64_t CircuitBreaker::fast_fails() const {
  MutexLock lock(mu_);
  return fast_fails_;
}

const char* CircuitBreaker::StateName(State s) {
  switch (s) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace sgnn::common
