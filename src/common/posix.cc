#include "common/posix.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

namespace sgnn::common {

Status StatusFromErrno(const std::string& prefix, int err) {
  // std::system_category().message() is thread-safe, unlike strerror().
  std::string msg = prefix + ": " + std::system_category().message(err);
  switch (err) {
    case ENOENT:
      return Status::NotFound(std::move(msg));
    case EPIPE:
    case ECONNRESET:
    case ECONNREFUSED:
      return Status::Unavailable(std::move(msg));
    case ETIMEDOUT:
      return Status::DeadlineExceeded(std::move(msg));
    case ENOSPC:
    case ENOMEM:
    case EMFILE:
    case ENFILE:
      return Status::ResourceExhausted(std::move(msg));
    case EACCES:
    case EPERM:
      return Status::FailedPrecondition(std::move(msg));
    case EINVAL:
    case EBADF:
      return Status::InvalidArgument(std::move(msg));
    default:
      return Status::IOError(std::move(msg));
  }
}

Status StatusFromErrno(const std::string& prefix) {
  return StatusFromErrno(prefix, errno);
}

Status ReadFull(int fd, void* buf, std::size_t n, std::size_t* bytes_read) {
  char* p = static_cast<char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    ssize_t got = ::read(fd, p + done, n - done);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (bytes_read != nullptr) *bytes_read = done;
      return StatusFromErrno("read failed");
    }
    if (got == 0) {
      if (bytes_read != nullptr) *bytes_read = done;
      return Status::DataLoss("unexpected EOF after " + std::to_string(done) +
                              "/" + std::to_string(n) + " bytes");
    }
    done += static_cast<std::size_t>(got);
  }
  if (bytes_read != nullptr) *bytes_read = done;
  return Status::OK();
}

Status WriteFull(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  std::size_t done = 0;
  while (done < n) {
    ssize_t put = ::write(fd, p + done, n - done);
    if (put < 0) {
      if (errno == EINTR) continue;
      return StatusFromErrno("write failed");
    }
    done += static_cast<std::size_t>(put);
  }
  return Status::OK();
}

}  // namespace sgnn::common
