#ifndef SGNN_COMMON_FAULT_H_
#define SGNN_COMMON_FAULT_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace sgnn::common {

/// Environment variable consulted by `FaultInjector::ArmFromEnv`.
inline constexpr char kFaultsEnv[] = "SGNN_FAULTS";

/// Deterministic, seed-driven fault injection for robustness tests and
/// benchmarks. Faults are keyed by a string *site* name (e.g.
/// `"serve.embed"`, `"io.write"`, `"pipeline.after_stage"`) so a test can
/// target one failure point without touching the others. Two trigger
/// styles:
///
///  - `ShouldFail(site)` — sequential: a per-site operation counter plus a
///    per-site random stream decide; deterministic given the call order
///    (use from a single thread or when ordering is controlled).
///  - `ShouldFail(site, token)` — order-independent: the decision is a pure
///    hash of (seed, site, token), so concurrent callers reproduce the
///    exact same per-token outcomes regardless of thread interleaving.
///    This is what makes multi-worker fault tests replayable.
///
/// Thread-safe; a disarmed (or unknown) site never fails but still counts
/// operations, so `ArmAt` can be calibrated against a dry run.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0) : seed_(seed) {}

  /// Arms `site` to fail each operation independently with probability `p`.
  void Arm(const std::string& site, double probability) SGNN_EXCLUDES(mu_);

  /// Arms `site` to fail exactly once, on 0-based operation `op_index`
  /// (sequential trigger) or on `token == op_index` (token trigger).
  void ArmAt(const std::string& site, int64_t op_index) SGNN_EXCLUDES(mu_);

  void Disarm(const std::string& site) SGNN_EXCLUDES(mu_);

  /// Sequential trigger; counts one operation at `site`.
  bool ShouldFail(const std::string& site) SGNN_EXCLUDES(mu_);

  /// Order-independent trigger; counts one operation at `site`. The same
  /// (seed, site, token) always yields the same verdict.
  bool ShouldFail(const std::string& site, uint64_t token) SGNN_EXCLUDES(mu_);

  /// Convenience wrapper: `kUnavailable` ("injected fault at <site>") when
  /// the token trigger fires, OK otherwise.
  SGNN_NODISCARD Status MaybeFail(const std::string& site, uint64_t token) SGNN_EXCLUDES(mu_);

  /// Operations observed at `site` (armed or not).
  int64_t OpCount(const std::string& site) const SGNN_EXCLUDES(mu_);

  uint64_t seed() const { return seed_; }

  /// Arms sites from a `;`- or `,`-separated spec string, one entry per
  /// site: `site@token` arms a token/op-index trigger (`ArmAt`) and
  /// `site=probability` an independent-probability trigger (`Arm`).
  /// Example: `"dist.worker.kill@65537;dist.frame.corrupt=0.01"`. Empty
  /// entries are skipped; a malformed entry yields `kInvalidArgument`
  /// (entries before it stay armed).
  SGNN_NODISCARD Status ArmFromSpec(const std::string& spec) SGNN_EXCLUDES(mu_);

  /// Reads the `SGNN_FAULTS` environment variable and forwards a non-empty
  /// value to `ArmFromSpec`; OK when unset. This is how a forked worker or
  /// a CI job injects a deterministic kill schedule without code changes.
  SGNN_NODISCARD Status ArmFromEnv() SGNN_EXCLUDES(mu_);

 private:
  struct Site {
    double probability = 0.0;
    int64_t fail_at = -1;  ///< 0-based op/token index; -1 = disabled.
    int64_t ops = 0;
  };

  Site& SiteFor(const std::string& name) SGNN_REQUIRES(mu_);

  const uint64_t seed_;
  mutable Mutex mu_;
  std::map<std::string, Site> sites_ SGNN_GUARDED_BY(mu_);
};

/// An absolute time budget carried by a request. `Infinite()` never
/// expires; `After(micros)` expires that far from now.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() : infinite_(true) {}

  static Deadline Infinite() { return Deadline(); }
  static Deadline After(int64_t micros) {
    Deadline d;
    d.infinite_ = false;
    d.at_ = Clock::now() + std::chrono::microseconds(micros);
    return d;
  }
  static Deadline At(Clock::time_point at) {
    Deadline d;
    d.infinite_ = false;
    d.at_ = at;
    return d;
  }

  bool infinite() const { return infinite_; }
  bool expired() const { return !infinite_ && Clock::now() >= at_; }

  /// Microseconds until expiry; <= 0 when expired, INT64_MAX when infinite.
  int64_t remaining_micros() const;

  Clock::time_point at() const { return at_; }

 private:
  bool infinite_ = true;
  Clock::time_point at_{};
};

/// Bounded-attempt retry with exponential backoff and deterministic
/// jitter: the jitter for (attempt, token) is a pure hash, so retry
/// schedules reproduce exactly under a fixed seed even across threads.
struct RetryPolicy {
  int max_attempts = 3;               ///< Total attempts, including the first.
  int64_t base_backoff_micros = 100;  ///< Backoff before the first retry.
  double backoff_multiplier = 2.0;
  int64_t max_backoff_micros = 100000;
  double jitter = 0.2;  ///< Fraction of the backoff randomised (+/-).
  uint64_t seed = 0x5eedf001;

  /// Transient codes worth retrying; everything else is permanent.
  static bool Retryable(StatusCode code) {
    return code == StatusCode::kUnavailable || code == StatusCode::kAborted;
  }

  /// Backoff before retry number `attempt` (1-based: attempt 1 follows the
  /// first failure), jittered deterministically by `token`.
  int64_t BackoffMicros(int attempt, uint64_t token) const;
};

struct CircuitBreakerConfig {
  int failure_threshold = 8;
  int probe_interval = 16;
};

/// Consecutive-failure circuit breaker (closed -> open -> half-open).
///
/// Closed: every call is admitted; `failure_threshold` consecutive
/// failures trip the breaker. Open: calls fast-fail, except every
/// `probe_interval`-th rejected call is admitted as a half-open probe.
/// Half-open: further calls fast-fail until the probe resolves — success
/// closes the breaker, failure re-opens it. Counting-based (no wall
/// clock), so state transitions are deterministic given the call order.
/// Thread-safe.
class CircuitBreaker {
 public:
  using Config = CircuitBreakerConfig;
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(Config config = Config());

  /// True when the protected call may proceed; false = fast-fail.
  bool Allow() SGNN_EXCLUDES(mu_);

  void RecordSuccess() SGNN_EXCLUDES(mu_);
  void RecordFailure() SGNN_EXCLUDES(mu_);

  State state() const SGNN_EXCLUDES(mu_);
  /// Times the breaker transitioned closed/half-open -> open.
  int64_t trips() const SGNN_EXCLUDES(mu_);
  int64_t fast_fails() const SGNN_EXCLUDES(mu_);

  static const char* StateName(State s);

 private:
  const Config config_;
  mutable Mutex mu_;
  State state_ SGNN_GUARDED_BY(mu_) = State::kClosed;
  int consecutive_failures_ SGNN_GUARDED_BY(mu_) = 0;
  int64_t rejected_since_open_ SGNN_GUARDED_BY(mu_) = 0;
  int64_t trips_ SGNN_GUARDED_BY(mu_) = 0;
  int64_t fast_fails_ SGNN_GUARDED_BY(mu_) = 0;
};

namespace internal {
/// SplitMix64-style mix used by the deterministic triggers; exposed for
/// tests that want to predict verdicts.
uint64_t MixHash(uint64_t a, uint64_t b, uint64_t c);
/// Uniform double in [0, 1) from a hash value.
double HashToUnit(uint64_t h);
}  // namespace internal

}  // namespace sgnn::common

#endif  // SGNN_COMMON_FAULT_H_
