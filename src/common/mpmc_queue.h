#ifndef SGNN_COMMON_MPMC_QUEUE_H_
#define SGNN_COMMON_MPMC_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>

#include "common/check.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace sgnn::common {

/// Bounded multi-producer / multi-consumer queue with reject-on-full
/// backpressure: producers never block, they get `kUnavailable` when the
/// queue is at capacity so the caller can shed load or retry. Consumers
/// wait with a deadline, which is what a micro-batching drain loop needs.
///
/// Lock discipline is enforced statically under Clang: `items_` and
/// `closed_` are `SGNN_GUARDED_BY(mu_)`, so any access outside the lock is
/// a compile error.
template <typename T>
class BoundedMpmcQueue {
 public:
  explicit BoundedMpmcQueue(size_t capacity) : capacity_(capacity) {
    SGNN_CHECK_GT(capacity, 0u);
  }

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  /// Enqueues without blocking. `kUnavailable` when full (backpressure),
  /// `kFailedPrecondition` after `Close()`.
  SGNN_NODISCARD Status TryPush(T item) SGNN_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (closed_) {
        return Status::FailedPrecondition("queue is closed");
      }
      if (items_.size() >= capacity_) {
        return Status::Unavailable("queue is full");
      }
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return Status::OK();
  }

  /// Dequeues into `*out`, waiting up to `timeout`. Returns false on
  /// timeout, or when the queue is closed and drained; spurious wakeups are
  /// absorbed internally.
  template <typename Rep, typename Period>
  bool WaitPop(T* out, std::chrono::duration<Rep, Period> timeout)
      SGNN_EXCLUDES(mu_) {
    SGNN_CHECK(out != nullptr);
    MutexLock lock(mu_);
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (items_.empty()) {
      if (closed_) return false;
      if (not_empty_.wait_until(mu_, deadline) == std::cv_status::timeout &&
          items_.empty()) {
        return false;
      }
    }
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Non-blocking dequeue; false when empty.
  bool TryPop(T* out) SGNN_EXCLUDES(mu_) {
    SGNN_CHECK(out != nullptr);
    MutexLock lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Rejects all future pushes and wakes blocked consumers; already-queued
  /// items remain poppable (drain-then-stop shutdown).
  void Close() SGNN_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  bool closed() const SGNN_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

  size_t size() const SGNN_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  /// `condition_variable_any` waits on the annotated `Mutex` directly.
  std::condition_variable_any not_empty_;
  std::deque<T> items_ SGNN_GUARDED_BY(mu_);
  bool closed_ SGNN_GUARDED_BY(mu_) = false;
};

}  // namespace sgnn::common

#endif  // SGNN_COMMON_MPMC_QUEUE_H_
