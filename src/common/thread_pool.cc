#include "common/thread_pool.h"

#include <utility>

#include "common/check.h"

namespace sgnn::common {

ThreadPool::ThreadPool(int num_threads) {
  SGNN_CHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> fn) {
  SGNN_CHECK(fn != nullptr);
  {
    MutexLock lock(mu_);
    SGNN_CHECK(!stopping_);
    tasks_.push_back(std::move(fn));
    ++submitted_;
    const uint64_t depth = tasks_.size();
    if (depth > max_queue_depth_) max_queue_depth_ = depth;
  }
  work_available_.notify_one();
}

ThreadPoolStats ThreadPool::Stats() const {
  MutexLock lock(mu_);
  ThreadPoolStats stats;
  stats.submitted = submitted_;
  stats.executed = executed_;
  stats.queue_depth = tasks_.size();
  stats.max_queue_depth = max_queue_depth_;
  stats.active = active_;
  return stats;
}

void ThreadPool::WaitIdle() {
  MutexLock lock(mu_);
  while (!tasks_.empty() || active_ != 0) idle_.wait(mu_);
}

void ThreadPool::Resize(int n) {
  SGNN_CHECK_GE(n, 1);
  if (n == num_threads()) return;
  {
    MutexLock lock(mu_);
    SGNN_CHECK(!stopping_);  // Resize after Shutdown is a programming error.
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  {
    MutexLock lock(mu_);
    stopping_ = false;  // Queue is drained; accept work again.
  }
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && tasks_.empty()) work_available_.wait(mu_);
      if (tasks_.empty()) return;  // stopping_ and fully drained.
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(mu_);
      --active_;
      ++executed_;
      if (tasks_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace sgnn::common
