#ifndef SGNN_COMMON_THREAD_ANNOTATIONS_H_
#define SGNN_COMMON_THREAD_ANNOTATIONS_H_

#include <mutex>
#include <shared_mutex>

/// Clang thread-safety annotations (`-Wthread-safety`) for the concurrent
/// subsystems, plus annotated mutex wrappers the analysis can reason about.
///
/// Under Clang, lock-discipline violations — touching a `SGNN_GUARDED_BY`
/// field without its mutex, calling a `SGNN_REQUIRES` function unlocked,
/// double-locking — become compile errors (CI builds with
/// `-Werror=thread-safety`). Under GCC the attributes expand to nothing and
/// the wrappers are zero-cost forwarding shims over the std primitives.
///
/// The macro set mirrors the Clang documentation's reference mutex.h; only
/// the spellings used in this codebase are defined. `std::mutex` itself
/// carries no capability attributes under libstdc++, hence the wrappers:
/// annotated code must hold locks via `common::Mutex`/`common::SharedMutex`
/// and the scoped guards below.

#if defined(__clang__)
#define SGNN_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define SGNN_THREAD_ANNOTATION__(x)
#endif

/// Declares a type to be a lockable capability (mutex-like).
#define SGNN_CAPABILITY(x) SGNN_THREAD_ANNOTATION__(capability(x))

/// Declares a RAII type that acquires in its constructor and releases in
/// its destructor.
#define SGNN_SCOPED_CAPABILITY SGNN_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only with the given mutex held.
#define SGNN_GUARDED_BY(x) SGNN_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given mutex.
#define SGNN_PT_GUARDED_BY(x) SGNN_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function that must be called with the given mutex(es) held exclusively.
#define SGNN_REQUIRES(...) \
  SGNN_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function that must be called with the given mutex(es) held at least
/// shared.
#define SGNN_REQUIRES_SHARED(...) \
  SGNN_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function that must be called with the given mutex(es) NOT held
/// (deadlock prevention for self-locking methods).
#define SGNN_EXCLUDES(...) SGNN_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Function acquires the capability exclusively and holds it on return.
#define SGNN_ACQUIRE(...) \
  SGNN_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function acquires the capability shared and holds it on return.
#define SGNN_ACQUIRE_SHARED(...) \
  SGNN_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the (exclusive or scoped) capability.
#define SGNN_RELEASE(...) \
  SGNN_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function releases a shared hold of the capability.
#define SGNN_RELEASE_SHARED(...) \
  SGNN_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success return value.
#define SGNN_TRY_ACQUIRE(...) \
  SGNN_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Escape hatch for code the analysis cannot model (use sparingly, with a
/// comment saying why).
#define SGNN_NO_THREAD_SAFETY_ANALYSIS \
  SGNN_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace sgnn::common {

/// Annotated exclusive mutex. Also satisfies BasicLockable (lower-case
/// `lock`/`unlock`), so a `std::condition_variable_any` can wait on it
/// directly — the wait's internal unlock/relock happens in a system header,
/// which the analysis ignores, leaving the caller's hold intact.
class SGNN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SGNN_ACQUIRE() { mu_.lock(); }
  void Unlock() SGNN_RELEASE() { mu_.unlock(); }
  bool TryLock() SGNN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// BasicLockable spellings for `std::condition_variable_any`.
  void lock() SGNN_ACQUIRE() { mu_.lock(); }
  void unlock() SGNN_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// Annotated reader/writer mutex.
class SGNN_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() SGNN_ACQUIRE() { mu_.lock(); }
  void Unlock() SGNN_RELEASE() { mu_.unlock(); }
  void LockShared() SGNN_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() SGNN_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock over `Mutex`.
class SGNN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SGNN_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SGNN_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive (writer) lock over `SharedMutex`.
class SGNN_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) SGNN_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() SGNN_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared (reader) lock over `SharedMutex`.
class SGNN_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) SGNN_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() SGNN_RELEASE() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace sgnn::common

#endif  // SGNN_COMMON_THREAD_ANNOTATIONS_H_
