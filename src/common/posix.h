#ifndef SGNN_COMMON_POSIX_H_
#define SGNN_COMMON_POSIX_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace sgnn::common {

/// Maps an errno value onto the library's `StatusCode` taxonomy and renders
/// `prefix + ": " + strerror(err)`. Every syscall failure in the tree goes
/// through this so that callers can branch on codes instead of parsing
/// platform-specific message strings:
///
///   ENOENT                      -> kNotFound
///   EPIPE/ECONNRESET/ECONNREFUSED -> kUnavailable (peer gone; retryable)
///   ETIMEDOUT                   -> kDeadlineExceeded
///   ENOSPC/ENOMEM/EMFILE/ENFILE -> kResourceExhausted
///   EACCES/EPERM                -> kFailedPrecondition
///   EINVAL/EBADF                -> kInvalidArgument
///   anything else               -> kIOError
SGNN_NODISCARD Status StatusFromErrno(const std::string& prefix, int err);

/// Overload reading the calling thread's current `errno`.
SGNN_NODISCARD Status StatusFromErrno(const std::string& prefix);

/// Reads exactly `n` bytes from `fd` into `buf`, retrying on `EINTR` and
/// continuing across short reads. On end-of-stream before `n` bytes the
/// status is `kDataLoss` ("unexpected EOF after X/N bytes"); other failures
/// map through `StatusFromErrno`. If `bytes_read` is non-null it receives
/// the number of bytes actually consumed (also on failure), which lets a
/// framing layer distinguish a clean close (0 bytes) from a torn frame.
SGNN_NODISCARD Status ReadFull(int fd, void* buf, std::size_t n,
                std::size_t* bytes_read = nullptr);

/// Writes exactly `n` bytes from `buf` to `fd`, retrying on `EINTR` and
/// continuing across short writes. `EPIPE` surfaces as `kUnavailable` via
/// `StatusFromErrno` (callers must have SIGPIPE ignored or blocked).
SGNN_NODISCARD Status WriteFull(int fd, const void* buf, std::size_t n);

}  // namespace sgnn::common

#endif  // SGNN_COMMON_POSIX_H_
