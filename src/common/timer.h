#ifndef SGNN_COMMON_TIMER_H_
#define SGNN_COMMON_TIMER_H_

#include <chrono>

namespace sgnn::common {

/// Monotonic wall-clock timer for coarse-grained measurement in reports and
/// benchmarks. Starts on construction; `Restart()` resets the origin.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last `Restart()`.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sgnn::common

#endif  // SGNN_COMMON_TIMER_H_
