#ifndef SGNN_COMMON_TIMER_H_
#define SGNN_COMMON_TIMER_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace sgnn::common {

/// Monotonic wall-clock timer for coarse-grained measurement in reports and
/// benchmarks. Starts on construction; `Restart()` resets the origin.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last `Restart()`.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Deterministic logical clock: a monotonically increasing counter with no
/// relation to wall time. Two events stamped by the same `TickClock` are
/// ordered by causality of the stamping calls, and a seeded run reproduces
/// the exact tick sequence — which is why `obs::Tracer` timestamps spans
/// with ticks instead of wall time (trace exports stay byte-identical
/// across runs, and the determinism lint stays clean). Thread-safe.
class TickClock {
 public:
  TickClock() = default;
  TickClock(const TickClock&) = delete;
  TickClock& operator=(const TickClock&) = delete;

  /// Returns the next tick; every call yields a distinct, increasing value.
  uint64_t Next() { return next_.fetch_add(1, std::memory_order_relaxed); }

  /// Ticks handed out so far.
  uint64_t now() const { return next_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> next_{0};
};

}  // namespace sgnn::common

#endif  // SGNN_COMMON_TIMER_H_
