#ifndef SGNN_NN_LINEAR_H_
#define SGNN_NN_LINEAR_H_

#include <vector>

#include "common/rng.h"
#include "tensor/matrix.h"

namespace sgnn::nn {

/// A parameter tensor paired with its gradient accumulator; optimizers
/// operate on spans of these.
struct ParamRef {
  tensor::Matrix* value = nullptr;
  tensor::Matrix* grad = nullptr;
};

/// Fully-connected layer y = x W + b with hand-derived backward.
/// Gradients accumulate across Backward calls until `ZeroGrad`.
class Linear {
 public:
  /// Glorot-uniform weight init, zero bias.
  Linear(int64_t in_dim, int64_t out_dim, common::Rng* rng);

  int64_t in_dim() const { return weight_.rows(); }
  int64_t out_dim() const { return weight_.cols(); }

  /// out = x W + b.
  void Forward(const tensor::Matrix& x, tensor::Matrix* out) const;

  /// Accumulates dW += x^T dout, db += column-sums(dout); if `dx` is
  /// non-null, writes dx = dout W^T. `x` must be the Forward input.
  void Backward(const tensor::Matrix& x, const tensor::Matrix& dout,
                tensor::Matrix* dx);

  void ZeroGrad();

  /// Parameter/gradient pairs for the optimizer.
  std::vector<ParamRef> Params();

  const tensor::Matrix& weight() const { return weight_; }
  const tensor::Matrix& bias() const { return bias_; }

 private:
  tensor::Matrix weight_;       // in x out
  tensor::Matrix bias_;         // 1 x out
  tensor::Matrix weight_grad_;  // in x out
  tensor::Matrix bias_grad_;    // 1 x out
};

/// Inverted dropout: zeroes entries with probability `p` and scales the
/// survivors by 1/(1-p); identity when `training` is false. The mask is
/// written to `mask` for the backward pass (`DropoutBackward`).
void DropoutForward(double p, bool training, common::Rng* rng,
                    tensor::Matrix* x, tensor::Matrix* mask);

/// grad *= mask (the saved forward mask).
void DropoutBackward(const tensor::Matrix& mask, tensor::Matrix* grad);

}  // namespace sgnn::nn

#endif  // SGNN_NN_LINEAR_H_
