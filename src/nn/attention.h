#ifndef SGNN_NN_ATTENTION_H_
#define SGNN_NN_ATTENTION_H_

#include <vector>

#include "nn/linear.h"

namespace sgnn::nn {

/// Single-head scaled dot-product attention from node tokens to a shared
/// anchor set (the linear-cost attention pattern graph Transformers use
/// at scale, §3.4.1): every node attends to the same m anchors instead of
/// all n nodes, so cost is O(n * m) with an additive structural bias
/// (e.g. shortest-path distances) injected into the scores.
///
///   out = softmax(Q K^T / sqrt(h) + bias) V,
///   Q = X_nodes Wq, K = X_anchors Wk, V = X_anchors Wv.
class AnchorAttention {
 public:
  AnchorAttention(int64_t in_dim, int64_t head_dim, common::Rng* rng);

  int64_t head_dim() const { return wq_.out_dim(); }

  /// `bias` is (num_nodes x num_anchors), added to the pre-softmax scores
  /// (pass a zero matrix for unbiased attention). In training mode the
  /// activations are cached for Backward.
  void Forward(const tensor::Matrix& node_tokens,
               const tensor::Matrix& anchor_tokens, const tensor::Matrix& bias,
               bool training, tensor::Matrix* out);

  /// Backward from d(loss)/d(out): accumulates parameter gradients and
  /// writes gradients for both token matrices (either may be null).
  void Backward(const tensor::Matrix& dout, tensor::Matrix* dnode_tokens,
                tensor::Matrix* danchor_tokens);

  void ZeroGrad();
  std::vector<ParamRef> Params();

 private:
  Linear wq_;
  Linear wk_;
  Linear wv_;
  // Training caches.
  tensor::Matrix node_tokens_;
  tensor::Matrix anchor_tokens_;
  tensor::Matrix q_, k_, v_;
  tensor::Matrix attn_;  ///< Softmaxed weights (n x m).
};

}  // namespace sgnn::nn

#endif  // SGNN_NN_ATTENTION_H_
