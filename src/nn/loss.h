#ifndef SGNN_NN_LOSS_H_
#define SGNN_NN_LOSS_H_

#include <span>
#include <vector>

#include "graph/types.h"
#include "tensor/matrix.h"

namespace sgnn::nn {

/// Masked softmax cross-entropy over the rows listed in `rows` (node ids
/// into `logits`/`labels`). Returns the mean loss over those rows and
/// writes d(loss)/d(logits) into `dlogits` (zero outside `rows`,
/// already divided by |rows|). `dlogits` may be null for evaluation.
double SoftmaxCrossEntropy(const tensor::Matrix& logits,
                           std::span<const int> labels,
                           std::span<const graph::NodeId> rows,
                           tensor::Matrix* dlogits);

/// Weighted variant: row `rows[i]` contributes with weight `weights[i]`
/// (GraphSAINT-style inclusion-probability normalisation). The loss is
/// sum_i w_i * CE_i / sum_i w_i and the gradient matches. `weights` must
/// align with `rows` and contain at least one positive entry.
double SoftmaxCrossEntropyWeighted(const tensor::Matrix& logits,
                                   std::span<const int> labels,
                                   std::span<const graph::NodeId> rows,
                                   std::span<const float> weights,
                                   tensor::Matrix* dlogits);

/// Accuracy of argmax predictions over the listed rows.
double Accuracy(const tensor::Matrix& logits, std::span<const int> labels,
                std::span<const graph::NodeId> rows);

/// Macro-averaged F1 over the listed rows with `num_classes` classes.
double MacroF1(const tensor::Matrix& logits, std::span<const int> labels,
               std::span<const graph::NodeId> rows, int num_classes);

}  // namespace sgnn::nn

#endif  // SGNN_NN_LOSS_H_
