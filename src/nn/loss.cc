#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sgnn::nn {

using tensor::Matrix;

double SoftmaxCrossEntropy(const Matrix& logits, std::span<const int> labels,
                           std::span<const graph::NodeId> rows,
                           Matrix* dlogits) {
  SGNN_CHECK_EQ(labels.size(), static_cast<size_t>(logits.rows()));
  SGNN_CHECK(!rows.empty());
  if (dlogits != nullptr) *dlogits = Matrix(logits.rows(), logits.cols());
  const double inv_count = 1.0 / static_cast<double>(rows.size());
  double loss = 0.0;
  std::vector<double> probs(static_cast<size_t>(logits.cols()));
  for (graph::NodeId r : rows) {
    SGNN_CHECK_LT(static_cast<int64_t>(r), logits.rows());
    const int label = labels[r];
    SGNN_CHECK(label >= 0 && label < logits.cols());
    auto row = logits.Row(static_cast<int64_t>(r));
    const float mx = *std::max_element(row.begin(), row.end());
    double sum = 0.0;
    for (int64_t c = 0; c < logits.cols(); ++c) {
      probs[static_cast<size_t>(c)] = std::exp(static_cast<double>(row[c] - mx));
      sum += probs[static_cast<size_t>(c)];
    }
    loss -= std::log(probs[static_cast<size_t>(label)] / sum) * inv_count;
    if (dlogits != nullptr) {
      auto drow = dlogits->Row(static_cast<int64_t>(r));
      for (int64_t c = 0; c < logits.cols(); ++c) {
        const double p = probs[static_cast<size_t>(c)] / sum;
        drow[c] = static_cast<float>(
            (p - (c == label ? 1.0 : 0.0)) * inv_count);
      }
    }
  }
  return loss;
}

double SoftmaxCrossEntropyWeighted(const Matrix& logits,
                                   std::span<const int> labels,
                                   std::span<const graph::NodeId> rows,
                                   std::span<const float> weights,
                                   Matrix* dlogits) {
  SGNN_CHECK_EQ(labels.size(), static_cast<size_t>(logits.rows()));
  SGNN_CHECK_EQ(rows.size(), weights.size());
  SGNN_CHECK(!rows.empty());
  double total_weight = 0.0;
  for (float w : weights) {
    SGNN_CHECK_GE(w, 0.0f);
    total_weight += w;
  }
  SGNN_CHECK_GT(total_weight, 0.0);
  if (dlogits != nullptr) *dlogits = Matrix(logits.rows(), logits.cols());
  double loss = 0.0;
  std::vector<double> probs(static_cast<size_t>(logits.cols()));
  for (size_t i = 0; i < rows.size(); ++i) {
    const graph::NodeId r = rows[i];
    const double w = weights[i] / total_weight;
    if (w == 0.0) continue;
    SGNN_CHECK_LT(static_cast<int64_t>(r), logits.rows());
    const int label = labels[r];
    SGNN_CHECK(label >= 0 && label < logits.cols());
    auto row = logits.Row(static_cast<int64_t>(r));
    const float mx = *std::max_element(row.begin(), row.end());
    double sum = 0.0;
    for (int64_t c = 0; c < logits.cols(); ++c) {
      probs[static_cast<size_t>(c)] =
          std::exp(static_cast<double>(row[c] - mx));
      sum += probs[static_cast<size_t>(c)];
    }
    loss -= std::log(probs[static_cast<size_t>(label)] / sum) * w;
    if (dlogits != nullptr) {
      auto drow = dlogits->Row(static_cast<int64_t>(r));
      for (int64_t c = 0; c < logits.cols(); ++c) {
        const double p = probs[static_cast<size_t>(c)] / sum;
        drow[c] += static_cast<float>((p - (c == label ? 1.0 : 0.0)) * w);
      }
    }
  }
  return loss;
}

double Accuracy(const Matrix& logits, std::span<const int> labels,
                std::span<const graph::NodeId> rows) {
  SGNN_CHECK(!rows.empty());
  int64_t correct = 0;
  for (graph::NodeId r : rows) {
    auto row = logits.Row(static_cast<int64_t>(r));
    const int64_t pred =
        std::max_element(row.begin(), row.end()) - row.begin();
    if (pred == labels[r]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(rows.size());
}

double MacroF1(const Matrix& logits, std::span<const int> labels,
               std::span<const graph::NodeId> rows, int num_classes) {
  SGNN_CHECK(!rows.empty());
  SGNN_CHECK_GT(num_classes, 0);
  std::vector<int64_t> tp(static_cast<size_t>(num_classes), 0);
  std::vector<int64_t> fp(static_cast<size_t>(num_classes), 0);
  std::vector<int64_t> fn(static_cast<size_t>(num_classes), 0);
  for (graph::NodeId r : rows) {
    auto row = logits.Row(static_cast<int64_t>(r));
    const int pred = static_cast<int>(
        std::max_element(row.begin(), row.end()) - row.begin());
    const int truth = labels[r];
    if (pred == truth) {
      tp[static_cast<size_t>(truth)]++;
    } else {
      fp[static_cast<size_t>(pred)]++;
      fn[static_cast<size_t>(truth)]++;
    }
  }
  double f1_sum = 0.0;
  for (int c = 0; c < num_classes; ++c) {
    const double precision_den =
        static_cast<double>(tp[static_cast<size_t>(c)] + fp[static_cast<size_t>(c)]);
    const double recall_den =
        static_cast<double>(tp[static_cast<size_t>(c)] + fn[static_cast<size_t>(c)]);
    if (precision_den == 0.0 || recall_den == 0.0) continue;
    const double precision = tp[static_cast<size_t>(c)] / precision_den;
    const double recall = tp[static_cast<size_t>(c)] / recall_den;
    if (precision + recall > 0.0) {
      f1_sum += 2.0 * precision * recall / (precision + recall);
    }
  }
  return f1_sum / num_classes;
}

}  // namespace sgnn::nn
