#include "nn/mlp.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace sgnn::nn {

using tensor::Matrix;

Mlp::Mlp(const std::vector<int64_t>& dims, double dropout, common::Rng* rng)
    : dropout_(dropout) {
  SGNN_CHECK_GE(dims.size(), 2u);
  SGNN_CHECK(dropout >= 0.0 && dropout < 1.0);
  layers_.reserve(dims.size() - 1);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  }
}

void Mlp::Forward(const Matrix& x, bool training, common::Rng* rng,
                  Matrix* logits) {
  SGNN_CHECK(logits != nullptr);
  inputs_.clear();
  pre_activations_.clear();
  dropout_masks_.clear();

  Matrix cur = x;
  for (size_t l = 0; l < layers_.size(); ++l) {
    if (training) inputs_.push_back(cur);
    Matrix out;
    layers_[l].Forward(cur, &out);
    const bool is_last = (l + 1 == layers_.size());
    if (!is_last) {
      if (training) pre_activations_.push_back(out);
      tensor::Relu(&out);
      Matrix mask;
      DropoutForward(dropout_, training, rng, &out, &mask);
      if (training) dropout_masks_.push_back(std::move(mask));
    }
    cur = std::move(out);
  }
  *logits = std::move(cur);
}

void Mlp::Backward(const Matrix& dlogits, Matrix* dx) {
  SGNN_CHECK_EQ(inputs_.size(), layers_.size());
  Matrix grad = dlogits;
  for (size_t l = layers_.size(); l-- > 0;) {
    const bool is_last = (l + 1 == layers_.size());
    if (!is_last) {
      DropoutBackward(dropout_masks_[l], &grad);
      tensor::ReluBackward(pre_activations_[l], &grad);
    }
    Matrix dinput;
    const bool need_dinput = (l > 0) || (dx != nullptr);
    layers_[l].Backward(inputs_[l], grad, need_dinput ? &dinput : nullptr);
    grad = std::move(dinput);
  }
  if (dx != nullptr) *dx = std::move(grad);
}

void Mlp::ZeroGrad() {
  for (Linear& layer : layers_) layer.ZeroGrad();
}

std::vector<ParamRef> Mlp::Params() {
  std::vector<ParamRef> params;
  for (Linear& layer : layers_) {
    for (const ParamRef& p : layer.Params()) params.push_back(p);
  }
  return params;
}

}  // namespace sgnn::nn
