#include "nn/linear.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace sgnn::nn {

using tensor::Matrix;

Linear::Linear(int64_t in_dim, int64_t out_dim, common::Rng* rng)
    : weight_(Matrix::GlorotUniform(in_dim, out_dim, rng)),
      bias_(1, out_dim),
      weight_grad_(in_dim, out_dim),
      bias_grad_(1, out_dim) {}

void Linear::Forward(const Matrix& x, Matrix* out) const {
  SGNN_CHECK(out != nullptr);
  SGNN_CHECK_EQ(x.cols(), weight_.rows());
  tensor::Gemm(x, weight_, out);
  tensor::AddBiasRow(bias_.Row(0), out);
}

void Linear::Backward(const Matrix& x, const Matrix& dout, Matrix* dx) {
  SGNN_CHECK_EQ(x.rows(), dout.rows());
  SGNN_CHECK_EQ(dout.cols(), weight_.cols());
  Matrix dw;
  tensor::GemmTransposeA(x, dout, &dw);
  tensor::Axpy(1.0f, dw, &weight_grad_);
  auto bias_grad = bias_grad_.Row(0);
  for (int64_t r = 0; r < dout.rows(); ++r) {
    auto row = dout.Row(r);
    for (int64_t c = 0; c < dout.cols(); ++c) bias_grad[c] += row[c];
  }
  if (dx != nullptr) tensor::GemmTransposeB(dout, weight_, dx);
}

void Linear::ZeroGrad() {
  weight_grad_.Zero();
  bias_grad_.Zero();
}

std::vector<ParamRef> Linear::Params() {
  return {{&weight_, &weight_grad_}, {&bias_, &bias_grad_}};
}

void DropoutForward(double p, bool training, common::Rng* rng, Matrix* x,
                    Matrix* mask) {
  SGNN_CHECK(x != nullptr);
  SGNN_CHECK(mask != nullptr);
  SGNN_CHECK(p >= 0.0 && p < 1.0);
  *mask = Matrix(x->rows(), x->cols(), 1.0f);
  if (!training || p == 0.0) return;
  SGNN_CHECK(rng != nullptr);
  const float scale = static_cast<float>(1.0 / (1.0 - p));
  for (int64_t i = 0; i < x->size(); ++i) {
    if (rng->Bernoulli(p)) {
      mask->data()[i] = 0.0f;
      x->data()[i] = 0.0f;
    } else {
      mask->data()[i] = scale;
      x->data()[i] *= scale;
    }
  }
}

void DropoutBackward(const Matrix& mask, Matrix* grad) {
  tensor::Hadamard(mask, grad);
}

}  // namespace sgnn::nn
