#ifndef SGNN_NN_TRAINER_H_
#define SGNN_NN_TRAINER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"
#include "nn/mlp.h"
#include "tensor/matrix.h"

namespace sgnn::nn {

/// Configuration shared by all trainers in the library.
struct TrainConfig {
  int epochs = 200;
  double lr = 0.01;
  double weight_decay = 5e-4;
  double dropout = 0.5;
  int64_t hidden_dim = 64;
  int patience = 30;      ///< Early stop after this many non-improving epochs.
  uint64_t seed = 1;
  int batch_size = 0;     ///< 0 = full batch (where applicable).
};

/// Per-run training summary.
struct TrainReport {
  double best_val_accuracy = 0.0;
  double test_accuracy = 0.0;
  double final_train_loss = 0.0;
  int epochs_run = 0;
  double train_seconds = 0.0;
};

/// Trains an MLP classifier on fixed (precomputed) row embeddings — the
/// decoupled-training loop shared by SGC, spectral and implicit models:
/// mini-batches over training rows, Adam, early stopping on validation
/// accuracy (best weights are NOT restored; the report carries best-val).
/// Returns the report; `mlp` ends in its final state and can be used for
/// inference via `Mlp::Forward`.
TrainReport TrainMlpOnEmbeddings(Mlp* mlp, const tensor::Matrix& embeddings,
                                 std::span<const int> labels,
                                 std::span<const graph::NodeId> train_nodes,
                                 std::span<const graph::NodeId> val_nodes,
                                 std::span<const graph::NodeId> test_nodes,
                                 const TrainConfig& config);

}  // namespace sgnn::nn

#endif  // SGNN_NN_TRAINER_H_
