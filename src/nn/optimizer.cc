#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"

namespace sgnn::nn {

Sgd::Sgd(std::vector<ParamRef> params, double lr, double weight_decay)
    : params_(std::move(params)), lr_(lr), weight_decay_(weight_decay) {
  SGNN_CHECK_GT(lr_, 0.0);
  for (const ParamRef& p : params_) {
    SGNN_CHECK(p.value != nullptr && p.grad != nullptr);
    SGNN_CHECK_EQ(p.value->size(), p.grad->size());
  }
}

void Sgd::Step() {
  for (const ParamRef& p : params_) {
    float* value = p.value->data();
    const float* grad = p.grad->data();
    for (int64_t i = 0; i < p.value->size(); ++i) {
      value[i] -= static_cast<float>(
          lr_ * (grad[i] + weight_decay_ * value[i]));
    }
  }
}

Adam::Adam(std::vector<ParamRef> params, double lr, double beta1, double beta2,
           double eps, double weight_decay)
    : params_(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  SGNN_CHECK_GT(lr_, 0.0);
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const ParamRef& p : params_) {
    SGNN_CHECK(p.value != nullptr && p.grad != nullptr);
    SGNN_CHECK_EQ(p.value->size(), p.grad->size());
    m_.emplace_back(p.value->rows(), p.value->cols());
    v_.emplace_back(p.value->rows(), p.value->cols());
  }
}

void Adam::Step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t j = 0; j < params_.size(); ++j) {
    float* value = params_[j].value->data();
    const float* grad = params_[j].grad->data();
    float* m = m_[j].data();
    float* v = v_[j].data();
    for (int64_t i = 0; i < params_[j].value->size(); ++i) {
      const double g = grad[i] + weight_decay_ * value[i];
      m[i] = static_cast<float>(beta1_ * m[i] + (1.0 - beta1_) * g);
      v[i] = static_cast<float>(beta2_ * v[i] + (1.0 - beta2_) * g * g);
      const double m_hat = m[i] / bc1;
      const double v_hat = v[i] / bc2;
      value[i] -= static_cast<float>(lr_ * m_hat / (std::sqrt(v_hat) + eps_));
    }
  }
}

}  // namespace sgnn::nn
