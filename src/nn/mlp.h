#ifndef SGNN_NN_MLP_H_
#define SGNN_NN_MLP_H_

#include <memory>
#include <vector>

#include "nn/linear.h"

namespace sgnn::nn {

/// Multi-layer perceptron: Linear -> ReLU -> Dropout, repeated, with a
/// final Linear producing logits. The training head of every decoupled
/// model (SGC, APPNP, LD2-style, implicit), and the feature transform
/// inside GCN/SAGE layers.
class Mlp {
 public:
  /// `dims` = {in, hidden..., out}; at least {in, out}.
  Mlp(const std::vector<int64_t>& dims, double dropout, common::Rng* rng);

  Mlp(const Mlp&) = delete;
  Mlp& operator=(const Mlp&) = delete;
  Mlp(Mlp&&) = default;
  Mlp& operator=(Mlp&&) = default;

  /// Computes logits. In training mode, dropout is active and the
  /// intermediate activations are cached for `Backward`.
  void Forward(const tensor::Matrix& x, bool training, common::Rng* rng,
               tensor::Matrix* logits);

  /// Backpropagates from d(loss)/d(logits); accumulates parameter
  /// gradients. If `dx` is non-null, also produces d(loss)/d(input).
  /// Must follow a training-mode Forward.
  void Backward(const tensor::Matrix& dlogits, tensor::Matrix* dx);

  void ZeroGrad();
  std::vector<ParamRef> Params();

  int64_t in_dim() const { return layers_.front().in_dim(); }
  int64_t out_dim() const { return layers_.back().out_dim(); }

  /// Read access to the fitted layers, so inference artifacts
  /// (`serve::FrozenModel`) can snapshot the weights without mutating them.
  const std::vector<Linear>& layers() const { return layers_; }

 private:
  std::vector<Linear> layers_;
  double dropout_;
  // Training-mode caches (inputs to each layer, pre-activations, masks).
  std::vector<tensor::Matrix> inputs_;
  std::vector<tensor::Matrix> pre_activations_;
  std::vector<tensor::Matrix> dropout_masks_;
};

}  // namespace sgnn::nn

#endif  // SGNN_NN_MLP_H_
