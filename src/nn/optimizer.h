#ifndef SGNN_NN_OPTIMIZER_H_
#define SGNN_NN_OPTIMIZER_H_

#include <vector>

#include "nn/linear.h"

namespace sgnn::nn {

/// Plain SGD with optional L2 weight decay: p -= lr * (g + decay * p).
class Sgd {
 public:
  Sgd(std::vector<ParamRef> params, double lr, double weight_decay = 0.0);

  void Step();

 private:
  std::vector<ParamRef> params_;
  double lr_;
  double weight_decay_;
};

/// Adam (Kingma & Ba) with bias correction and L2 weight decay applied to
/// the gradient (the classic, non-decoupled variant).
class Adam {
 public:
  Adam(std::vector<ParamRef> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8, double weight_decay = 0.0);

  void Step();

  int64_t steps() const { return t_; }

 private:
  std::vector<ParamRef> params_;
  std::vector<tensor::Matrix> m_;
  std::vector<tensor::Matrix> v_;
  double lr_, beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
};

}  // namespace sgnn::nn

#endif  // SGNN_NN_OPTIMIZER_H_
