#include "nn/trainer.h"

#include <algorithm>

#include "common/check.h"
#include "common/counters.h"
#include "common/timer.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace sgnn::nn {

using graph::NodeId;
using tensor::Matrix;

TrainReport TrainMlpOnEmbeddings(Mlp* mlp, const Matrix& embeddings,
                                 std::span<const int> labels,
                                 std::span<const NodeId> train_nodes,
                                 std::span<const NodeId> val_nodes,
                                 std::span<const NodeId> test_nodes,
                                 const TrainConfig& config) {
  SGNN_CHECK(mlp != nullptr);
  SGNN_CHECK(!train_nodes.empty());
  SGNN_CHECK(!val_nodes.empty());
  SGNN_CHECK(!test_nodes.empty());
  common::Rng rng(config.seed);
  Adam opt(mlp->Params(), config.lr, 0.9, 0.999, 1e-8, config.weight_decay);
  common::WallTimer timer;

  std::vector<NodeId> order(train_nodes.begin(), train_nodes.end());
  const size_t batch =
      config.batch_size > 0 ? static_cast<size_t>(config.batch_size)
                            : order.size();

  TrainReport report;
  int since_best = 0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t start = 0; start < order.size(); start += batch) {
      const size_t end = std::min(order.size(), start + batch);
      std::vector<int64_t> gather(order.begin() + static_cast<int64_t>(start),
                                  order.begin() + static_cast<int64_t>(end));
      Matrix x = embeddings.GatherRows(gather);
      std::vector<int> batch_labels(gather.size());
      std::vector<NodeId> batch_rows(gather.size());
      for (size_t i = 0; i < gather.size(); ++i) {
        batch_labels[i] = labels[static_cast<size_t>(gather[i])];
        batch_rows[i] = static_cast<NodeId>(i);
      }
      // Resident accounting: batch features + per-layer activations and
      // gradients. The decoupled design's memory story is exactly that
      // this is O(batch), not O(n).
      const uint64_t resident = static_cast<uint64_t>(
          x.size() + 2 * x.rows() * (config.hidden_dim + mlp->out_dim()));
      common::GlobalCounters().Acquire(resident);
      Matrix logits;
      mlp->Forward(x, /*training=*/true, &rng, &logits);
      Matrix dlogits;
      epoch_loss +=
          SoftmaxCrossEntropy(logits, batch_labels, batch_rows, &dlogits);
      ++batches;
      mlp->ZeroGrad();
      mlp->Backward(dlogits, nullptr);
      opt.Step();
      common::GlobalCounters().Release(resident);
    }
    report.final_train_loss = epoch_loss / static_cast<double>(batches);
    report.epochs_run = epoch + 1;

    // Validation (inference mode, whole matrix).
    Matrix logits;
    mlp->Forward(embeddings, /*training=*/false, nullptr, &logits);
    const double val_acc = Accuracy(logits, labels, val_nodes);
    if (val_acc > report.best_val_accuracy) {
      report.best_val_accuracy = val_acc;
      report.test_accuracy = Accuracy(logits, labels, test_nodes);
      since_best = 0;
    } else if (++since_best >= config.patience) {
      break;
    }
  }
  report.train_seconds = timer.Seconds();
  return report;
}

}  // namespace sgnn::nn
