#include "nn/attention.h"

#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace sgnn::nn {

using tensor::Matrix;

AnchorAttention::AnchorAttention(int64_t in_dim, int64_t head_dim,
                                 common::Rng* rng)
    : wq_(in_dim, head_dim, rng),
      wk_(in_dim, head_dim, rng),
      wv_(in_dim, head_dim, rng) {}

void AnchorAttention::Forward(const Matrix& node_tokens,
                              const Matrix& anchor_tokens, const Matrix& bias,
                              bool training, Matrix* out) {
  SGNN_CHECK(out != nullptr);
  SGNN_CHECK_EQ(node_tokens.cols(), wq_.in_dim());
  SGNN_CHECK_EQ(anchor_tokens.cols(), wq_.in_dim());
  SGNN_CHECK_EQ(bias.rows(), node_tokens.rows());
  SGNN_CHECK_EQ(bias.cols(), anchor_tokens.rows());

  Matrix q, k, v;
  wq_.Forward(node_tokens, &q);
  wk_.Forward(anchor_tokens, &k);
  wv_.Forward(anchor_tokens, &v);

  Matrix scores;
  tensor::GemmTransposeB(q, k, &scores);  // n x m
  const float scale =
      1.0f / std::sqrt(static_cast<float>(wq_.out_dim()));
  tensor::Scale(scale, &scores);
  tensor::Axpy(1.0f, bias, &scores);
  tensor::SoftmaxRows(&scores);

  tensor::Gemm(scores, v, out);

  if (training) {
    node_tokens_ = node_tokens;
    anchor_tokens_ = anchor_tokens;
    q_ = std::move(q);
    k_ = std::move(k);
    v_ = std::move(v);
    attn_ = std::move(scores);
  }
}

void AnchorAttention::Backward(const Matrix& dout, Matrix* dnode_tokens,
                               Matrix* danchor_tokens) {
  SGNN_CHECK(!attn_.empty());  // Requires a training-mode Forward.
  // out = A v  (A = attn_, n x m; v m x h)
  Matrix dattn;
  tensor::GemmTransposeB(dout, v_, &dattn);  // n x m
  Matrix dv;
  tensor::GemmTransposeA(attn_, dout, &dv);  // m x h

  // Softmax backward per row: ds = A ⊙ (dA - rowsum(dA ⊙ A)).
  Matrix dscores = dattn;
  for (int64_t r = 0; r < dscores.rows(); ++r) {
    auto arow = attn_.Row(r);
    auto drow = dscores.Row(r);
    double dot = 0.0;
    for (int64_t c = 0; c < dscores.cols(); ++c) dot += drow[c] * arow[c];
    for (int64_t c = 0; c < dscores.cols(); ++c) {
      drow[c] = arow[c] * (drow[c] - static_cast<float>(dot));
    }
  }
  const float scale =
      1.0f / std::sqrt(static_cast<float>(wq_.out_dim()));
  tensor::Scale(scale, &dscores);

  // scores = q k^T: dq = ds k; dk = ds^T q.
  Matrix dq, dk;
  tensor::Gemm(dscores, k_, &dq);
  tensor::GemmTransposeA(dscores, q_, &dk);

  Matrix dnode_q;
  wq_.Backward(node_tokens_, dq, dnode_tokens != nullptr ? &dnode_q : nullptr);
  Matrix danchor_k, danchor_v;
  wk_.Backward(anchor_tokens_, dk,
               danchor_tokens != nullptr ? &danchor_k : nullptr);
  wv_.Backward(anchor_tokens_, dv,
               danchor_tokens != nullptr ? &danchor_v : nullptr);

  if (dnode_tokens != nullptr) *dnode_tokens = std::move(dnode_q);
  if (danchor_tokens != nullptr) {
    tensor::Axpy(1.0f, danchor_v, &danchor_k);
    *danchor_tokens = std::move(danchor_k);
  }
}

void AnchorAttention::ZeroGrad() {
  wq_.ZeroGrad();
  wk_.ZeroGrad();
  wv_.ZeroGrad();
}

std::vector<ParamRef> AnchorAttention::Params() {
  std::vector<ParamRef> params;
  for (auto* layer : {&wq_, &wk_, &wv_}) {
    for (const ParamRef& p : layer->Params()) params.push_back(p);
  }
  return params;
}

}  // namespace sgnn::nn
