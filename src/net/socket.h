#ifndef SGNN_NET_SOCKET_H_
#define SGNN_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace sgnn::net {

/// `sgnn::net` socket substrate: every socket, accept, connect, and epoll
/// syscall in the tree lives in this module (lint-enforced, the same
/// confinement `src/dist/` has for fork/pipe). Errors map through
/// `common::StatusFromErrno`, so callers branch on `StatusCode` — a reset
/// peer is `kUnavailable`, an exhausted fd table `kResourceExhausted` —
/// never on platform errno values.

/// Move-only owner of a file descriptor; closes on destruction. `-1` =
/// empty. The serving tier passes these instead of raw ints so an early
/// return can never leak a connection.
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  OwnedFd(OwnedFd&& other) noexcept : fd_(other.release()) {}
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.release();
    }
    return *this;
  }
  ~OwnedFd() { Close(); }

  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Relinquishes ownership without closing.
  int release() { return std::exchange(fd_, -1); }

  /// Closes now (idempotent; the destructor calls it too).
  void Close();

 private:
  int fd_ = -1;
};

/// Creates a TCP listening socket bound to `host:*port` (IPv4 dotted quad
/// or "localhost"), `SO_REUSEADDR` set, non-blocking, backlog applied.
/// `*port == 0` picks an ephemeral port and writes the chosen one back —
/// how tests and benches avoid port collisions.
SGNN_NODISCARD common::StatusOr<OwnedFd> ListenTcp(const std::string& host,
                                                   uint16_t* port,
                                                   int backlog = 128);

/// Blocking TCP connect to `host:port`. The returned socket stays blocking
/// (the client side reads whole responses; only the server multiplexes).
SGNN_NODISCARD common::StatusOr<OwnedFd> ConnectTcp(const std::string& host,
                                                    uint16_t port);

/// Accepts one pending connection from a non-blocking listener. The
/// accepted socket is left blocking. `kUnavailable` when no connection is
/// pending (`EAGAIN`) — the accept loop's "drained" signal.
SGNN_NODISCARD common::StatusOr<OwnedFd> AcceptConn(int listen_fd);

/// Reads whatever is available on `fd` (up to `capacity`) without
/// blocking. Returns the byte count — 0 means the peer closed its end —
/// or `kUnavailable` when nothing is ready (`EAGAIN` on a spurious epoll
/// wakeup).
SGNN_NODISCARD common::StatusOr<size_t> RecvSome(int fd, void* buf,
                                                 size_t capacity);

/// Writes all `n` bytes to a socket, retrying on `EINTR` and short sends.
/// Uses `MSG_NOSIGNAL`, so a dead peer is `kUnavailable` via `EPIPE`
/// rather than a process-wide `SIGPIPE`.
SGNN_NODISCARD common::Status SendAll(int fd, const void* buf, size_t n);

/// Thin epoll wrappers; `data` round-trips through
/// `epoll_event.data.u64` (the front door stores connection cookies
/// there).
SGNN_NODISCARD common::StatusOr<OwnedFd> EpollCreate();
SGNN_NODISCARD common::Status EpollAdd(int epoll_fd, int fd, uint32_t events,
                                       uint64_t data);
SGNN_NODISCARD common::Status EpollDel(int epoll_fd, int fd);

/// One ready event out of `WaitEvents`.
struct ReadyEvent {
  uint64_t data = 0;
  uint32_t events = 0;
};

/// Waits up to `timeout_ms` for readiness, appending up to `max_events`
/// entries to `out` (cleared first). Returns the event count; 0 on
/// timeout. `EINTR` is absorbed as a 0-event wait.
SGNN_NODISCARD common::StatusOr<int> WaitEvents(int epoll_fd,
                                                std::vector<ReadyEvent>* out,
                                                int max_events,
                                                int timeout_ms);

}  // namespace sgnn::net

#endif  // SGNN_NET_SOCKET_H_
