#ifndef SGNN_NET_SERVER_H_
#define SGNN_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/mpmc_queue.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/run_context.h"
#include "net/http.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/admission.h"
#include "serve/batching_server.h"

namespace sgnn::net {

/// Fault-injection sites observed by the front door (deterministic token
/// triggers, the replayable style `dist/frame.h` uses):
///  - `net.accept.fail` (token = 0-based accept sequence number): the
///    accepted connection is dropped on the floor, as a listener hitting
///    fd exhaustion would.
///  - `net.read.trunc` (token = `ReadToken(conn, read)`): the connection's
///    stream is torn mid-read — half the received bytes are delivered,
///    then the connection closes as if the peer died. Feeds the
///    `/healthz` torn-read counter.
inline constexpr char kSiteAcceptFail[] = "net.accept.fail";
inline constexpr char kSiteReadTrunc[] = "net.read.trunc";

/// Order-independent fault token for read number `read_seq` (0-based) on
/// connection `conn_id` (0-based accept order).
constexpr uint64_t ReadToken(uint64_t conn_id, uint64_t read_seq) {
  return (conn_id << 20) | (read_seq & ((uint64_t{1} << 20) - 1));
}

/// Tuning of the HTTP front door.
struct HttpFrontDoorConfig {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; `Start` writes the chosen port into `port()`.
  uint16_t port = 0;
  /// Threads blocking on `BatchingServer` futures and writing responses.
  int num_waiters = 2;
  /// Multi-tenant admission: quotas, DWRR weights, shed policy.
  serve::AdmissionConfig admission;
  HttpLimits http_limits;
  /// `/healthz` turns 503 after this many consecutive torn reads
  /// (`kDataLoss` stream endings); any successfully parsed request resets
  /// the streak.
  int torn_read_threshold = 3;
  /// Dispatcher/epoll poll granularity — bounds shutdown latency only.
  int64_t poll_interval_micros = 20000;
};

/// The epoll HTTP/1.1 front door of the serving tier. Three endpoints:
///
///   POST /v1/infer   {"node":N,"tenant":"t","deadline_micros":D}
///   GET  /metrics    Prometheus text exposition of the shared registry
///   GET  /healthz    "ok" (200) or the reason it is not (503)
///
/// An infer request flows: epoll thread parses it and `Offer`s it to the
/// `serve::AdmissionQueue` (token-bucket quota, shed tier); a dispatcher
/// thread pops deficit-weighted-fair and `Submit`s to the
/// `BatchingServer`; waiter threads block on the response futures, render
/// JSON, and write responses back *in request order per connection*
/// (HTTP/1.1 pipelining). Load shedding degrades exact → stale → reject
/// as the serving breaker opens and the admission queues fill.
///
/// The front door owns only the sockets; the model, cache, and breaker
/// stay in the `BatchingServer` it fronts. Shut down the front door
/// before the server: `Shutdown` drains admission and resolves every
/// accepted request.
class HttpFrontDoor {
 public:
  /// `server` must outlive the front door. `ctx.metrics` is where the
  /// `sgnn_net_*` series land and what `/metrics` serves (falls back to a
  /// private registry); `ctx.tracer` receives `net:` spans; `ctx.faults`
  /// is consulted at the `net.*` sites above.
  HttpFrontDoor(serve::BatchingServer* server, HttpFrontDoorConfig config,
                const core::RunContext& ctx = core::RunContext());
  ~HttpFrontDoor();

  HttpFrontDoor(const HttpFrontDoor&) = delete;
  HttpFrontDoor& operator=(const HttpFrontDoor&) = delete;

  /// Binds, listens, and starts the event loop, dispatcher, and waiter
  /// threads. Errors (port in use, fd exhaustion) surface here.
  SGNN_NODISCARD common::Status Start();

  /// Stops accepting, drains every admitted request to a response, joins
  /// all threads, closes all connections. Idempotent; the destructor
  /// calls it.
  void Shutdown();

  /// The bound port (valid after `Start`).
  uint16_t port() const { return port_; }

  /// The admission stage, exposed for tests and benches (pause/resume,
  /// dispatch log).
  serve::AdmissionQueue& admission() { return admission_; }

  /// The `/healthz` verdict: true while the shed tier is `kExact` and the
  /// torn-read streak is under threshold.
  bool Healthy() const;

 private:
  /// One pipelined response slot; responses are written strictly in
  /// request order per connection, so a slow infer holds back the slots
  /// behind it (HTTP semantics) without blocking other connections.
  struct Slot {
    uint64_t seq = 0;
    bool ready = false;
    std::string bytes;
  };

  struct Conn {
    Conn(uint64_t id_in, const HttpLimits& limits)
        : id(id_in), parser(limits) {}
    const uint64_t id;
    /// The socket. Reads and the final close happen only on the
    /// event-loop thread (or in Shutdown after it joins); waiters write
    /// responses through it under `mu`, and `dead` is checked first, so a
    /// closed fd is never written.
    // sgnn-lint: allow(lock/unannotated-field): closed only by the
    // event-loop thread / post-join Shutdown; writers take mu and check
    // `dead` before touching the fd.
    OwnedFd fd;
    // sgnn-lint: allow(lock/unannotated-field): fed and drained only by
    // the event-loop thread.
    HttpRequestParser parser;
    /// Per-conn read counter feeding `ReadToken`.
    // sgnn-lint: allow(lock/unannotated-field): event-loop thread only.
    uint64_t reads = 0;
    common::Mutex mu;
    std::deque<Slot> slots SGNN_GUARDED_BY(mu);
    uint64_t next_seq SGNN_GUARDED_BY(mu) = 0;
    bool dead SGNN_GUARDED_BY(mu) = false;
  };

  /// The connection registry; its own lock scope so lookups from waiter
  /// threads never contend with anything but accept/close.
  struct ConnTable {
    mutable common::Mutex mu;
    std::map<uint64_t, std::shared_ptr<Conn>> map SGNN_GUARDED_BY(mu);
  };

  /// A dispatched request waiting on its `BatchingServer` future.
  struct Completion {
    uint64_t cookie = 0;
    std::future<serve::InferenceResponse> future;
  };

  void EventLoop();
  void DispatchLoop();
  void WaiterLoop();

  void HandleAcceptable();
  void HandleReadable(const std::shared_ptr<Conn>& conn);
  void HandleRequest(const std::shared_ptr<Conn>& conn, HttpRequest request);
  void HandleInfer(const std::shared_ptr<Conn>& conn,
                   const HttpRequest& request);
  std::string MetricsBody();
  std::string HealthzBody(int* http_status);

  /// Reserves the next in-order response slot on `conn`; returns the
  /// cookie that routes the response back to it.
  uint64_t ReserveSlot(const std::shared_ptr<Conn>& conn);
  /// Fills the slot `cookie` names and flushes the connection's ready
  /// in-order prefix. Safe from any thread; a vanished connection drops
  /// the bytes.
  void FillSlot(uint64_t cookie, std::string bytes);
  /// Writes the ready prefix of `conn->slots`.
  void FlushConn(const std::shared_ptr<Conn>& conn);
  /// Closes and forgets a connection; `torn` feeds the healthz streak.
  void CloseConn(const std::shared_ptr<Conn>& conn, bool torn);

  serve::BatchingServer* const server_;
  const HttpFrontDoorConfig config_;
  obs::Tracer* const tracer_;
  common::FaultInjector* const faults_;
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* const registry_;

  serve::AdmissionQueue admission_;
  common::BoundedMpmcQueue<Completion> completions_;

  OwnedFd listen_fd_;
  OwnedFd epoll_fd_;
  uint16_t port_ = 0;

  ConnTable conns_;
  std::atomic<uint64_t> next_conn_id_{0};

  std::atomic<uint64_t> accepts_{0};
  std::atomic<int> torn_streak_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};

  obs::Counter* accepted_total_;
  obs::Counter* accept_faults_total_;
  obs::Counter* requests_total_;
  obs::Counter* responses_total_;
  obs::Counter* http_errors_total_;
  obs::Counter* admitted_total_;
  obs::Counter* admitted_stale_total_;
  obs::Counter* shed_rejected_total_;
  obs::Counter* quota_rejected_total_;
  obs::Counter* torn_reads_total_;
  obs::Counter* dispatches_total_;
  obs::Gauge* open_connections_;
  obs::Gauge* shed_tier_;

  // sgnn-lint: allow(lock/unannotated-field): started in Start() before
  // any concurrent access, joined in Shutdown(); not touched in between.
  std::thread event_thread_;
  // sgnn-lint: allow(lock/unannotated-field): same start/join discipline.
  std::thread dispatch_thread_;
  // sgnn-lint: allow(lock/unannotated-field): same start/join discipline.
  std::vector<std::thread> waiter_threads_;
};

}  // namespace sgnn::net

#endif  // SGNN_NET_SERVER_H_
