#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace sgnn::net {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view TrimOws(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parsed shape of a header block: everything but the start line, which
/// differs between requests and responses.
struct MessageHead {
  std::string start_line;
  HttpHeaders headers;
  size_t body_length = 0;
  size_t head_bytes = 0;  ///< Start line through the blank line, inclusive.
};

/// Finds and parses one complete header block at the front of `buffer`.
/// Returns OK with `head->head_bytes > 0` when complete, OK with
/// `head->head_bytes == 0` when more bytes are needed, or an error.
common::Status ParseHead(const std::string& buffer, const HttpLimits& limits,
                         MessageHead* head) {
  head->head_bytes = 0;
  const size_t end = buffer.find("\r\n\r\n");
  if (end == std::string::npos) {
    // No complete head yet; police the limits against what has piled up so
    // a peer can't grow the buffer forever by never sending the blank line.
    const size_t line_end = buffer.find("\r\n");
    if (line_end == std::string::npos &&
        buffer.size() > limits.max_start_line_bytes) {
      return common::Status::ResourceExhausted("start line exceeds " +
                                               std::to_string(
                                                   limits.max_start_line_bytes) +
                                               " bytes");
    }
    if (buffer.size() > limits.max_header_bytes) {
      return common::Status::ResourceExhausted(
          "header block exceeds " + std::to_string(limits.max_header_bytes) +
          " bytes");
    }
    return common::Status::OK();
  }
  if (end + 4 > limits.max_header_bytes) {
    return common::Status::ResourceExhausted(
        "header block exceeds " + std::to_string(limits.max_header_bytes) +
        " bytes");
  }
  const std::string_view block(buffer.data(), end);
  size_t pos = block.find("\r\n");
  if (pos == std::string::npos) pos = block.size();
  head->start_line = std::string(block.substr(0, pos));
  if (head->start_line.size() > limits.max_start_line_bytes) {
    return common::Status::ResourceExhausted(
        "start line exceeds " + std::to_string(limits.max_start_line_bytes) +
        " bytes");
  }
  if (head->start_line.empty()) {
    return common::Status::InvalidArgument("empty start line");
  }
  head->headers.clear();
  while (pos < block.size()) {
    pos += 2;  // Skip the CRLF.
    size_t next = block.find("\r\n", pos);
    if (next == std::string::npos) next = block.size();
    const std::string_view line = block.substr(pos, next - pos);
    pos = next;
    if (line.empty()) continue;
    if (line.front() == ' ' || line.front() == '\t') {
      return common::Status::InvalidArgument(
          "obsolete header continuation line");
    }
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return common::Status::InvalidArgument("malformed header line '" +
                                             std::string(line) + "'");
    }
    head->headers.emplace_back(std::string(TrimOws(line.substr(0, colon))),
                               std::string(TrimOws(line.substr(colon + 1))));
  }

  if (FindHeader(head->headers, "Transfer-Encoding") != nullptr) {
    return common::Status::InvalidArgument(
        "chunked transfer coding is not supported");
  }
  head->body_length = 0;
  if (const std::string* cl = FindHeader(head->headers, "Content-Length")) {
    uint64_t n = 0;
    const auto [ptr, ec] =
        std::from_chars(cl->data(), cl->data() + cl->size(), n);
    if (ec != std::errc() || ptr != cl->data() + cl->size()) {
      return common::Status::InvalidArgument("unparseable Content-Length '" +
                                             *cl + "'");
    }
    if (n > limits.max_body_bytes) {
      return common::Status::ResourceExhausted(
          "body of " + std::to_string(n) + " bytes exceeds limit " +
          std::to_string(limits.max_body_bytes));
    }
    head->body_length = static_cast<size_t>(n);
  }
  head->head_bytes = end + 4;
  return common::Status::OK();
}

/// Splits `line` at single spaces into exactly three parts.
common::Status SplitStartLine(const std::string& line, std::string* a,
                              std::string* b, std::string* c) {
  const size_t s1 = line.find(' ');
  const size_t s2 = s1 == std::string::npos ? std::string::npos
                                            : line.find(' ', s1 + 1);
  if (s1 == std::string::npos || s2 == std::string::npos) {
    return common::Status::InvalidArgument("malformed start line '" + line +
                                           "'");
  }
  *a = line.substr(0, s1);
  *b = line.substr(s1 + 1, s2 - s1 - 1);
  *c = line.substr(s2 + 1);
  if (a->empty() || b->empty() || c->empty()) {
    return common::Status::InvalidArgument("malformed start line '" + line +
                                           "'");
  }
  return common::Status::OK();
}

}  // namespace

const std::string* FindHeader(const HttpHeaders& headers,
                              std::string_view name) {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

HttpRequestParser::HttpRequestParser(const HttpLimits& limits)
    : limits_(limits) {}

common::Status HttpRequestParser::Feed(std::string_view data) {
  if (!error_.ok()) return error_;
  buffer_.append(data.data(), data.size());
  error_ = ParseBuffered();
  return error_;
}

common::Status HttpRequestParser::ParseBuffered() {
  for (;;) {
    MessageHead head;
    common::Status s = ParseHead(buffer_, limits_, &head);
    if (!s.ok()) return s;
    if (head.head_bytes == 0) return common::Status::OK();  // Need more.
    if (buffer_.size() < head.head_bytes + head.body_length) {
      return common::Status::OK();  // Head complete, body still arriving.
    }
    HttpRequest request;
    SGNN_RETURN_IF_ERROR(SplitStartLine(head.start_line, &request.method,
                                        &request.target, &request.version));
    if (request.version != "HTTP/1.1" && request.version != "HTTP/1.0") {
      return common::Status::InvalidArgument("unsupported version '" +
                                             request.version + "'");
    }
    request.headers = std::move(head.headers);
    request.body = buffer_.substr(head.head_bytes, head.body_length);
    buffer_.erase(0, head.head_bytes + head.body_length);
    ready_.push_back(std::move(request));
  }
}

bool HttpRequestParser::TakeRequest(HttpRequest* out) {
  if (ready_.empty()) return false;
  *out = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

common::Status HttpRequestParser::OnEof() const {
  if (buffer_.empty()) return common::Status::OK();
  return common::Status::DataLoss("peer closed mid-request after " +
                                  std::to_string(buffer_.size()) +
                                  " unparsed bytes");
}

HttpResponseParser::HttpResponseParser(const HttpLimits& limits)
    : limits_(limits) {}

common::Status HttpResponseParser::Feed(std::string_view data) {
  if (!error_.ok()) return error_;
  buffer_.append(data.data(), data.size());
  error_ = ParseBuffered();
  return error_;
}

common::Status HttpResponseParser::ParseBuffered() {
  for (;;) {
    MessageHead head;
    common::Status s = ParseHead(buffer_, limits_, &head);
    if (!s.ok()) return s;
    if (head.head_bytes == 0) return common::Status::OK();
    if (buffer_.size() < head.head_bytes + head.body_length) {
      return common::Status::OK();
    }
    HttpResponse response;
    std::string version, code;
    SGNN_RETURN_IF_ERROR(
        SplitStartLine(head.start_line, &version, &code, &response.reason));
    const auto [ptr, ec] =
        std::from_chars(code.data(), code.data() + code.size(),
                        response.status_code);
    if (ec != std::errc() || ptr != code.data() + code.size()) {
      return common::Status::InvalidArgument("unparseable status code '" +
                                             code + "'");
    }
    response.headers = std::move(head.headers);
    response.body = buffer_.substr(head.head_bytes, head.body_length);
    buffer_.erase(0, head.head_bytes + head.body_length);
    ready_.push_back(std::move(response));
  }
}

bool HttpResponseParser::TakeResponse(HttpResponse* out) {
  if (ready_.empty()) return false;
  *out = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

common::Status HttpResponseParser::OnEof() const {
  if (buffer_.empty()) return common::Status::OK();
  return common::Status::DataLoss("peer closed mid-response after " +
                                  std::to_string(buffer_.size()) +
                                  " unparsed bytes");
}

const char* ReasonPhrase(int status_code) {
  switch (status_code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Content Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string SerializeResponse(int status_code, std::string_view reason,
                              std::string_view body,
                              std::string_view content_type,
                              const HttpHeaders& extra_headers) {
  std::string out = "HTTP/1.1 " + std::to_string(status_code) + " ";
  out.append(reason);
  out += "\r\nContent-Type: ";
  out.append(content_type);
  out += "\r\nContent-Length: " + std::to_string(body.size()) + "\r\n";
  for (const auto& [key, value] : extra_headers) {
    out += key + ": " + value + "\r\n";
  }
  out += "\r\n";
  out.append(body);
  return out;
}

std::string SerializeRequest(std::string_view method, std::string_view target,
                             std::string_view body,
                             std::string_view content_type,
                             const HttpHeaders& extra_headers) {
  std::string out;
  out.append(method);
  out += ' ';
  out.append(target);
  out += " HTTP/1.1\r\nHost: sgnn\r\n";
  if (!body.empty()) {
    out += "Content-Type: ";
    out.append(content_type);
    out += "\r\nContent-Length: " + std::to_string(body.size()) + "\r\n";
  }
  for (const auto& [key, value] : extra_headers) {
    out += key + ": " + value + "\r\n";
  }
  out += "\r\n";
  out.append(body);
  return out;
}

}  // namespace sgnn::net
