#include "net/server.h"

#include <sys/epoll.h>

#include <chrono>
#include <limits>
#include <utility>

#include "common/check.h"
#include "net/json.h"

namespace sgnn::net {

namespace {

/// epoll user-data value marking the listening socket; connection events
/// carry the connection id instead.
constexpr uint64_t kListenCookie = ~uint64_t{0};

/// Slot seq occupies the low bits of a routing cookie, conn id the rest.
constexpr int kSeqBits = 24;
constexpr uint64_t kSeqMask = (uint64_t{1} << kSeqBits) - 1;

constexpr uint64_t MakeCookie(uint64_t conn_id, uint64_t seq) {
  return (conn_id << kSeqBits) | (seq & kSeqMask);
}

}  // namespace

HttpFrontDoor::HttpFrontDoor(serve::BatchingServer* server,
                             HttpFrontDoorConfig config,
                             const core::RunContext& ctx)
    : server_(server),
      config_(std::move(config)),
      tracer_(ctx.tracer),
      faults_(ctx.faults),
      owned_registry_(ctx.metrics == nullptr
                          ? std::make_unique<obs::MetricsRegistry>()
                          : nullptr),
      registry_(ctx.metrics == nullptr ? owned_registry_.get() : ctx.metrics),
      admission_(config_.admission),
      completions_(config_.admission.per_tenant_capacity * 8 + 256) {
  SGNN_CHECK(server_ != nullptr);
  obs::MetricsRegistry& r = *registry_;
  accepted_total_ =
      r.GetCounter("sgnn_net_accepted_total",
                   "TCP connections accepted by the front door.", {},
                   obs::kVolatile);
  accept_faults_total_ = r.GetCounter(
      "sgnn_net_accept_faults_total",
      "Accepted connections dropped by the net.accept.fail fault site.", {},
      obs::kVolatile);
  requests_total_ =
      r.GetCounter("sgnn_net_http_requests_total", "HTTP requests parsed.",
                   {}, obs::kVolatile);
  responses_total_ =
      r.GetCounter("sgnn_net_http_responses_total", "HTTP responses written.",
                   {}, obs::kVolatile);
  http_errors_total_ =
      r.GetCounter("sgnn_net_http_errors_total",
                   "HTTP error (4xx/5xx) responses.", {}, obs::kVolatile);
  admitted_total_ = r.GetCounter(
      "sgnn_net_infer_admitted_total",
      "Infer requests admitted past quota and shedding.", {}, obs::kVolatile);
  admitted_stale_total_ =
      r.GetCounter("sgnn_net_infer_admitted_stale_total",
                   "Infer requests admitted into the stale tier.", {},
                   obs::kVolatile);
  shed_rejected_total_ = r.GetCounter(
      "sgnn_net_infer_shed_total",
      "Infer requests rejected by the shed policy or a full tenant queue.",
      {}, obs::kVolatile);
  quota_rejected_total_ =
      r.GetCounter("sgnn_net_infer_quota_rejected_total",
                   "Infer requests rejected by a tenant token bucket.", {},
                   obs::kVolatile);
  torn_reads_total_ = r.GetCounter(
      "sgnn_net_torn_reads_total",
      "Connections that ended mid-message (torn stream, kDataLoss).", {},
      obs::kVolatile);
  dispatches_total_ = r.GetCounter(
      "sgnn_net_dispatches_total",
      "Requests dispatched weighted-fair to the batching server.", {},
      obs::kVolatile);
  open_connections_ =
      r.GetGauge("sgnn_net_open_connections", "Currently open connections.",
                 {}, obs::kVolatile);
  shed_tier_ = r.GetGauge(
      "sgnn_net_shed_tier",
      "Shed tier at the last admission decision (0 exact, 1 stale, 2 reject).",
      {}, obs::kVolatile);
}

HttpFrontDoor::~HttpFrontDoor() { Shutdown(); }

common::Status HttpFrontDoor::Start() {
  if (started_.load()) {
    return common::Status::FailedPrecondition("front door already started");
  }
  uint16_t port = config_.port;
  auto listener = ListenTcp(config_.host, &port);
  if (!listener.ok()) return listener.status();
  listen_fd_ = std::move(listener).value();
  port_ = port;
  auto epoll = EpollCreate();
  if (!epoll.ok()) return epoll.status();
  epoll_fd_ = std::move(epoll).value();
  SGNN_RETURN_IF_ERROR(
      EpollAdd(epoll_fd_.fd(), listen_fd_.fd(), EPOLLIN, kListenCookie));
  started_.store(true);
  event_thread_ = std::thread([this] { EventLoop(); });
  dispatch_thread_ = std::thread([this] { DispatchLoop(); });
  waiter_threads_.reserve(static_cast<size_t>(config_.num_waiters));
  for (int i = 0; i < config_.num_waiters; ++i) {
    waiter_threads_.emplace_back([this] { WaiterLoop(); });
  }
  return common::Status::OK();
}

void HttpFrontDoor::Shutdown() {
  if (!started_.load() || stop_.exchange(true)) return;
  // Order matters: quiesce the only Offer-ing thread first, then drain
  // admission through the dispatcher, then drain the completion queue
  // through the waiters — every admitted request is answered before any
  // connection closes.
  event_thread_.join();
  admission_.Close();
  dispatch_thread_.join();
  completions_.Close();
  for (std::thread& t : waiter_threads_) t.join();
  waiter_threads_.clear();
  {
    common::MutexLock lock(conns_.mu);
    for (auto& [id, conn] : conns_.map) {
      common::MutexLock conn_lock(conn->mu);
      conn->dead = true;
      conn->fd.Close();
    }
    conns_.map.clear();
  }
  open_connections_->Set(0.0);
  listen_fd_.Close();
  epoll_fd_.Close();
}

bool HttpFrontDoor::Healthy() const {
  const serve::ShedTier tier = config_.admission.shed.Decide(
      server_->breaker_state(), admission_.FillFraction());
  return tier == serve::ShedTier::kExact &&
         torn_streak_.load() < config_.torn_read_threshold;
}

void HttpFrontDoor::EventLoop() {
  std::vector<ReadyEvent> events;
  const int timeout_ms =
      static_cast<int>(config_.poll_interval_micros / 1000) + 1;
  while (!stop_.load()) {
    auto n = WaitEvents(epoll_fd_.fd(), &events, 64, timeout_ms);
    if (!n.ok()) break;  // Only fails when the epoll fd itself is gone.
    for (const ReadyEvent& ev : events) {
      if (ev.data == kListenCookie) {
        HandleAcceptable();
        continue;
      }
      std::shared_ptr<Conn> conn;
      {
        common::MutexLock lock(conns_.mu);
        auto it = conns_.map.find(ev.data);
        if (it == conns_.map.end()) continue;  // Closed while queued.
        conn = it->second;
      }
      HandleReadable(conn);
    }
  }
}

void HttpFrontDoor::HandleAcceptable() {
  for (;;) {
    auto accepted = AcceptConn(listen_fd_.fd());
    if (!accepted.ok()) return;  // kUnavailable: drained the backlog.
    const uint64_t accept_index = accepts_.fetch_add(1);
    accepted_total_->Increment();
    if (faults_ != nullptr &&
        faults_->ShouldFail(kSiteAcceptFail, accept_index)) {
      accept_faults_total_->Increment();
      continue;  // The OwnedFd closes; the client sees a reset.
    }
    auto conn = std::make_shared<Conn>(next_conn_id_.fetch_add(1),
                                       config_.http_limits);
    conn->fd = std::move(accepted).value();
    size_t open = 0;
    {
      common::MutexLock lock(conns_.mu);
      conns_.map.emplace(conn->id, conn);
      open = conns_.map.size();
    }
    common::Status added =
        EpollAdd(epoll_fd_.fd(), conn->fd.fd(), EPOLLIN, conn->id);
    if (!added.ok()) {
      CloseConn(conn, false);
      continue;
    }
    open_connections_->Set(static_cast<double>(open));
  }
}

void HttpFrontDoor::HandleReadable(const std::shared_ptr<Conn>& conn) {
  char buf[16384];
  for (;;) {
    auto n = RecvSome(conn->fd.fd(), buf, sizeof(buf));
    if (!n.ok()) {
      if (n.status().code() == common::StatusCode::kUnavailable) return;
      CloseConn(conn, !conn->parser.at_boundary());
      return;
    }
    if (n.value() == 0) {  // EOF: clean at a boundary, torn otherwise.
      CloseConn(conn, !conn->parser.OnEof().ok());
      return;
    }
    const uint64_t read_seq = conn->reads++;
    std::string_view data(buf, n.value());
    if (faults_ != nullptr &&
        faults_->ShouldFail(kSiteReadTrunc, ReadToken(conn->id, read_seq))) {
      // Deliver half the bytes, then tear the stream as a mid-read peer
      // death would. The parse outcome is irrelevant: the connection dies
      // either way, and OnEof() below classifies the tear.
      // sgnn-lint: allow(status/void-cast): injected tear discards the
      // half-fed parse result by design; OnEof() is the observed verdict.
      (void)conn->parser.Feed(data.substr(0, data.size() / 2));
      CloseConn(conn, !conn->parser.OnEof().ok());
      return;
    }
    common::Status fed = conn->parser.Feed(data);
    if (!fed.ok()) {
      const int code =
          fed.code() == common::StatusCode::kResourceExhausted ? 431 : 400;
      const std::string body = RenderError(fed);
      http_errors_total_->Increment();
      FillSlot(ReserveSlot(conn),
               SerializeResponse(code, ReasonPhrase(code), body,
                                 "application/json"));
      CloseConn(conn, false);  // Framing is gone; nothing to salvage.
      return;
    }
    HttpRequest request;
    while (conn->parser.TakeRequest(&request)) {
      HandleRequest(conn, std::move(request));
      request = HttpRequest();
    }
    if (n.value() < sizeof(buf)) return;  // Drained what was ready.
  }
}

void HttpFrontDoor::HandleRequest(const std::shared_ptr<Conn>& conn,
                                  HttpRequest request) {
  obs::TraceSpan span = obs::StartSpan(tracer_, "net:request", "net");
  requests_total_->Increment();
  // A successfully parsed request proves the stream is healthy again;
  // health probes themselves stay observers so a 503 remains visible.
  if (request.target != "/healthz") torn_streak_.store(0);

  auto respond = [&](int code, const std::string& body,
                     std::string_view content_type) {
    if (code >= 400) http_errors_total_->Increment();
    const uint64_t cookie = ReserveSlot(conn);
    FillSlot(cookie,
             SerializeResponse(code, ReasonPhrase(code), body, content_type));
  };

  if (request.target == "/healthz") {
    if (request.method != "GET") {
      respond(405, RenderError(common::Status::InvalidArgument(
                       "/healthz accepts GET only")),
              "application/json");
      return;
    }
    int code = 200;
    const std::string body = HealthzBody(&code);
    respond(code, body, "text/plain; version=0.0.4");
    return;
  }
  if (request.target == "/metrics") {
    if (request.method != "GET") {
      respond(405, RenderError(common::Status::InvalidArgument(
                       "/metrics accepts GET only")),
              "application/json");
      return;
    }
    respond(200, MetricsBody(), "text/plain; version=0.0.4");
    return;
  }
  if (request.target == "/v1/infer") {
    if (request.method != "POST") {
      respond(405, RenderError(common::Status::InvalidArgument(
                       "/v1/infer accepts POST only")),
              "application/json");
      return;
    }
    HandleInfer(conn, request);
    return;
  }
  respond(404, RenderError(common::Status::NotFound("no route for '" +
                                                    request.target + "'")),
          "application/json");
}

void HttpFrontDoor::HandleInfer(const std::shared_ptr<Conn>& conn,
                                const HttpRequest& request) {
  auto fail = [&](const common::Status& status) {
    const int code = HttpStatusForCode(status.code());
    http_errors_total_->Increment();
    const uint64_t cookie = ReserveSlot(conn);
    FillSlot(cookie, SerializeResponse(code, ReasonPhrase(code),
                                       RenderError(status),
                                       "application/json"));
  };

  auto parsed = ParseInferRequest(request.body);
  if (!parsed.ok()) {
    fail(parsed.status());
    return;
  }
  const InferRequestBody& body = parsed.value();
  if (body.node < 0 ||
      body.node > static_cast<int64_t>(
                      std::numeric_limits<graph::NodeId>::max())) {
    fail(common::Status::InvalidArgument("node id out of range"));
    return;
  }
  serve::InferenceRequest infer;
  infer.node = static_cast<graph::NodeId>(body.node);
  infer.tenant_id = body.tenant;
  infer.deadline_micros = body.deadline_micros;

  const uint64_t cookie = ReserveSlot(conn);
  auto admitted =
      admission_.Offer(std::move(infer), cookie, server_->breaker_state());
  if (!admitted.ok()) {
    shed_tier_->Set(static_cast<double>(serve::ShedTier::kReject));
    if (admitted.status().code() == common::StatusCode::kResourceExhausted) {
      quota_rejected_total_->Increment();
    } else {
      shed_rejected_total_->Increment();
    }
    const int code = HttpStatusForCode(admitted.status().code());
    http_errors_total_->Increment();
    FillSlot(cookie, SerializeResponse(code, ReasonPhrase(code),
                                       RenderError(admitted.status()),
                                       "application/json"));
    return;
  }
  shed_tier_->Set(static_cast<double>(admitted.value()));
  admitted_total_->Increment();
  if (admitted.value() == serve::ShedTier::kStale) {
    admitted_stale_total_->Increment();
  }
}

std::string HttpFrontDoor::MetricsBody() {
  // Metrics() refreshes the registry-side breaker/pool/ops gauges, so a
  // scrape through the front door sees the same numbers a snapshot does.
  (void)server_->Metrics();
  return registry_->PrometheusText(true);
}

std::string HttpFrontDoor::HealthzBody(int* http_status) {
  const serve::ShedTier tier = config_.admission.shed.Decide(
      server_->breaker_state(), admission_.FillFraction());
  const int torn = torn_streak_.load();
  if (tier == serve::ShedTier::kExact &&
      torn < config_.torn_read_threshold) {
    *http_status = 200;
    return "ok\n";
  }
  *http_status = 503;
  std::string body = "unhealthy: shed_tier=";
  body += serve::ShedTierName(tier);
  body += " breaker=";
  body += common::CircuitBreaker::StateName(server_->breaker_state());
  body += " torn_streak=" + std::to_string(torn) + "\n";
  return body;
}

uint64_t HttpFrontDoor::ReserveSlot(const std::shared_ptr<Conn>& conn) {
  common::MutexLock lock(conn->mu);
  const uint64_t seq = conn->next_seq++;
  conn->slots.push_back(Slot{seq, false, std::string()});
  return MakeCookie(conn->id, seq);
}

void HttpFrontDoor::FillSlot(uint64_t cookie, std::string bytes) {
  const uint64_t conn_id = cookie >> kSeqBits;
  const uint64_t seq = cookie & kSeqMask;
  std::shared_ptr<Conn> conn;
  {
    common::MutexLock lock(conns_.mu);
    auto it = conns_.map.find(conn_id);
    if (it == conns_.map.end()) return;  // Conn died; response dropped.
    conn = it->second;
  }
  {
    common::MutexLock lock(conn->mu);
    for (Slot& slot : conn->slots) {
      if ((slot.seq & kSeqMask) == seq) {
        slot.ready = true;
        slot.bytes = std::move(bytes);
        break;
      }
    }
  }
  responses_total_->Increment();
  FlushConn(conn);
}

void HttpFrontDoor::FlushConn(const std::shared_ptr<Conn>& conn) {
  common::MutexLock lock(conn->mu);
  while (!conn->slots.empty() && conn->slots.front().ready) {
    if (!conn->dead) {
      const std::string& bytes = conn->slots.front().bytes;
      common::Status sent = SendAll(conn->fd.fd(), bytes.data(), bytes.size());
      if (!sent.ok()) {
        // The peer is gone; the epoll thread owns closing the fd (it will
        // see the EOF/error), we just stop writing.
        conn->dead = true;
      }
    }
    conn->slots.pop_front();
  }
}

void HttpFrontDoor::CloseConn(const std::shared_ptr<Conn>& conn, bool torn) {
  size_t open = 0;
  {
    common::MutexLock lock(conns_.mu);
    conns_.map.erase(conn->id);
    open = conns_.map.size();
  }
  {
    common::MutexLock lock(conn->mu);
    conn->dead = true;
    if (conn->fd.valid()) {
      // sgnn-lint: allow(status/void-cast): best-effort deregistration on
      // the close path; the fd is closed next, which detaches it anyway.
      (void)EpollDel(epoll_fd_.fd(), conn->fd.fd());
      conn->fd.Close();
    }
  }
  if (torn) {
    torn_reads_total_->Increment();
    torn_streak_.fetch_add(1);
  }
  open_connections_->Set(static_cast<double>(open));
}

void HttpFrontDoor::DispatchLoop() {
  for (;;) {
    serve::InferenceRequest request;
    uint64_t cookie = 0;
    const bool got = admission_.PopDispatch(&request, &cookie,
                                            config_.poll_interval_micros);
    if (!got) {
      if (stop_.load() && admission_.TotalQueued() == 0) return;
      continue;
    }
    obs::TraceSpan span = obs::StartSpan(tracer_, "net:dispatch", "net");
    dispatches_total_->Increment();
    auto submitted = server_->Submit(request);
    if (!submitted.ok()) {
      const int code = HttpStatusForCode(submitted.status().code());
      http_errors_total_->Increment();
      FillSlot(cookie, SerializeResponse(code, ReasonPhrase(code),
                                         RenderError(submitted.status()),
                                         "application/json"));
      continue;
    }
    // Single-producer backpressure: this thread is the only pusher, so a
    // size check below capacity guarantees the TryPush lands (pops only
    // shrink the queue). A failed TryPush would destroy the future and
    // lose the response, so never race it against a full queue.
    while (completions_.size() >= completions_.capacity()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    common::Status pushed =
        completions_.TryPush(Completion{cookie, std::move(submitted).value()});
    // Close() happens only after this thread joins (see Shutdown), so the
    // push cannot be rejected.
    SGNN_CHECK(pushed.ok());
  }
}

void HttpFrontDoor::WaiterLoop() {
  for (;;) {
    Completion completion;
    if (!completions_.WaitPop(&completion, std::chrono::milliseconds(20))) {
      if (completions_.closed()) return;
      continue;
    }
    serve::InferenceResponse response = completion.future.get();
    const int code =
        response.status.ok() ? 200 : HttpStatusForCode(response.status.code());
    if (code >= 400) http_errors_total_->Increment();
    const std::string body = RenderInferResponse(response);
    FillSlot(completion.cookie,
             SerializeResponse(code, ReasonPhrase(code), body,
                               "application/json"));
  }
}

}  // namespace sgnn::net
