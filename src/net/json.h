#ifndef SGNN_NET_JSON_H_
#define SGNN_NET_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "serve/batching_server.h"

namespace sgnn::net {

/// JSON bodies of the inference API. One serializer is shared by the
/// server, the client, and the tests, with stable float formatting
/// (`%.9g`) — which is what makes the "HTTP response is bit-identical to
/// the in-process response" guarantee checkable byte-for-byte.

/// Parsed body of `POST /v1/infer`:
///   {"node": 7, "tenant": "team-a", "deadline_micros": 5000}
/// `tenant` and `deadline_micros` are optional (default tenant, inherited
/// deadline).
struct InferRequestBody {
  int64_t node = 0;
  std::string tenant;
  int64_t deadline_micros = 0;
};

/// Parses an infer request body. A flat-object JSON subset: string and
/// integer members only, unknown keys rejected (`kInvalidArgument`, which
/// the front door answers 400) so client typos fail loudly.
SGNN_NODISCARD common::StatusOr<InferRequestBody> ParseInferRequest(
    std::string_view json);

/// Renders a terminal inference response. Success:
///   {"status":"ok","node":7,"tenant":"team-a","predicted_class":2,
///    "cache_hit":true,"degraded":false,"logits":[...]}
/// Failure: {"status":"<code name>","node":7,"error":"<message>"}.
/// Latency is deliberately absent: it is the one volatile field, and
/// excluding it keeps HTTP bodies bit-comparable across transports.
std::string RenderInferResponse(const serve::InferenceResponse& response);

/// Renders a bare error body: {"status":"<code name>","error":"<message>"}.
std::string RenderError(const common::Status& status);

/// Lower-snake-case name of a status code ("ok", "unavailable",
/// "resource_exhausted", ...), the `status` field of the JSON bodies.
const char* StatusCodeJsonName(common::StatusCode code);

/// HTTP status code conveying `code`: 200 for OK, 400 invalid argument,
/// 404 not found, 413/431 resource exhausted at the parser, 429 resource
/// exhausted at admission, 503 unavailable, 504 deadline exceeded, 500
/// anything else.
int HttpStatusForCode(common::StatusCode code);

/// Escapes `s` for inclusion in a JSON string literal (quotes, backslash,
/// control characters).
std::string JsonEscape(std::string_view s);

}  // namespace sgnn::net

#endif  // SGNN_NET_JSON_H_
