#ifndef SGNN_NET_CLIENT_H_
#define SGNN_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "net/http.h"
#include "net/socket.h"

namespace sgnn::net {

/// Minimal blocking HTTP/1.1 client over one keep-alive connection — the
/// test, bench, and CI harness side of the front door. Not thread-safe;
/// one client per thread.
///
/// Two usage shapes: the one-shot `Get`/`Post` helpers, and the split
/// `SendRequest` + `ReadResponse` pair for pipelining (queue many
/// requests, then collect responses in order — how the fairness tests
/// saturate the admission queues from a single connection per tenant).
class HttpClient {
 public:
  /// Dials `host:port` (blocking connect).
  SGNN_NODISCARD static common::StatusOr<HttpClient> Connect(
      const std::string& host, uint16_t port);

  /// Disconnected client (what `StatusOr` default-constructs); every call
  /// on it is `kFailedPrecondition` until move-assigned from `Connect`.
  HttpClient() = default;

  HttpClient(HttpClient&&) = default;
  HttpClient& operator=(HttpClient&&) = default;

  /// One round trip.
  SGNN_NODISCARD common::StatusOr<HttpResponse> Get(const std::string& target);
  SGNN_NODISCARD common::StatusOr<HttpResponse> Post(
      const std::string& target, std::string_view body,
      const std::string& content_type = "application/json");

  /// Writes one request without waiting for its response (HTTP/1.1
  /// pipelining). Pair each call with one later `ReadResponse`.
  SGNN_NODISCARD common::Status SendRequest(
      const std::string& method, const std::string& target,
      std::string_view body, const std::string& content_type);

  /// Blocks for the next in-order response. A peer that closed cleanly
  /// between responses is `kUnavailable`; one that died mid-response is
  /// `kDataLoss` (same taxonomy as the server side).
  SGNN_NODISCARD common::StatusOr<HttpResponse> ReadResponse();

  /// Closes the connection (the destructor does too).
  void Close() { fd_.Close(); }

 private:
  explicit HttpClient(OwnedFd fd) : fd_(std::move(fd)) {}

  OwnedFd fd_;
  HttpResponseParser parser_;
};

}  // namespace sgnn::net

#endif  // SGNN_NET_CLIENT_H_
