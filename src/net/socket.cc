#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.h"
#include "common/posix.h"

namespace sgnn::net {

namespace {

/// "localhost" and the dotted-quad loopback are the only names the serving
/// tier binds or dials — no resolver, no DNS dependency, no blocking
/// lookups on the event loop.
common::StatusOr<in_addr> ParseHost(const std::string& host) {
  std::string dotted = (host == "localhost" || host.empty())
                           ? std::string("127.0.0.1")
                           : host;
  in_addr addr{};
  if (::inet_pton(AF_INET, dotted.c_str(), &addr) != 1) {
    return common::Status::InvalidArgument("unparseable IPv4 host '" + host +
                                           "'");
  }
  return addr;
}

/// Nagle off. The tier always writes whole HTTP messages, so coalescing
/// buys nothing — but against delayed ACKs it stalls pipelined small
/// requests ~40ms apiece (the E24 pipeline bench sees the cliff).
common::Status SetNoDelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return common::StatusFromErrno("setsockopt(TCP_NODELAY)");
  }
  return common::Status::OK();
}

common::Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return common::StatusFromErrno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return common::StatusFromErrno("fcntl(F_SETFL, O_NONBLOCK)");
  }
  return common::Status::OK();
}

}  // namespace

void OwnedFd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

common::StatusOr<OwnedFd> ListenTcp(const std::string& host, uint16_t* port,
                                    int backlog) {
  SGNN_CHECK(port != nullptr);
  auto addr = ParseHost(host);
  if (!addr.ok()) return addr.status();

  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return common::StatusFromErrno("socket");
  const int one = 1;
  if (::setsockopt(fd.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return common::StatusFromErrno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr = addr.value();
  sa.sin_port = htons(*port);
  if (::bind(fd.fd(), reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) <
      0) {
    return common::StatusFromErrno("bind " + host);
  }
  if (::listen(fd.fd(), backlog) < 0) {
    return common::StatusFromErrno("listen");
  }
  if (*port == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.fd(), reinterpret_cast<sockaddr*>(&bound), &len) <
        0) {
      return common::StatusFromErrno("getsockname");
    }
    *port = ntohs(bound.sin_port);
  }
  common::Status nb = SetNonBlocking(fd.fd());
  if (!nb.ok()) return nb;
  return fd;
}

common::StatusOr<OwnedFd> ConnectTcp(const std::string& host, uint16_t port) {
  auto addr = ParseHost(host);
  if (!addr.ok()) return addr.status();

  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return common::StatusFromErrno("socket");
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr = addr.value();
  sa.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(fd.fd(), reinterpret_cast<const sockaddr*>(&sa),
                   sizeof(sa));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    return common::StatusFromErrno("connect " + host + ":" +
                                   std::to_string(port));
  }
  common::Status nodelay = SetNoDelay(fd.fd());
  if (!nodelay.ok()) return nodelay;
  return fd;
}

common::StatusOr<OwnedFd> AcceptConn(int listen_fd) {
  int rc;
  do {
    rc = ::accept(listen_fd, nullptr, nullptr);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return common::Status::Unavailable("no pending connection");
    }
    return common::StatusFromErrno("accept");
  }
  OwnedFd fd(rc);
  common::Status nodelay = SetNoDelay(fd.fd());
  if (!nodelay.ok()) return nodelay;
  return fd;
}

common::StatusOr<size_t> RecvSome(int fd, void* buf, size_t capacity) {
  ssize_t n;
  do {
    n = ::recv(fd, buf, capacity, MSG_DONTWAIT);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return common::Status::Unavailable("no bytes ready");
    }
    return common::StatusFromErrno("recv");
  }
  return static_cast<size_t>(n);
}

common::Status SendAll(int fd, const void* buf, size_t n) {
  const char* p = static_cast<const char*>(buf);
  size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return common::StatusFromErrno("send");
    }
    sent += static_cast<size_t>(rc);
  }
  return common::Status::OK();
}

common::StatusOr<OwnedFd> EpollCreate() {
  OwnedFd fd(::epoll_create1(0));
  if (!fd.valid()) return common::StatusFromErrno("epoll_create1");
  return fd;
}

common::Status EpollAdd(int epoll_fd, int fd, uint32_t events,
                        uint64_t data) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = data;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
    return common::StatusFromErrno("epoll_ctl(ADD)");
  }
  return common::Status::OK();
}

common::Status EpollDel(int epoll_fd, int fd) {
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, fd, nullptr) < 0) {
    return common::StatusFromErrno("epoll_ctl(DEL)");
  }
  return common::Status::OK();
}

common::StatusOr<int> WaitEvents(int epoll_fd, std::vector<ReadyEvent>* out,
                                 int max_events, int timeout_ms) {
  SGNN_CHECK(out != nullptr);
  SGNN_CHECK_GT(max_events, 0);
  out->clear();
  std::vector<epoll_event> events(static_cast<size_t>(max_events));
  const int n = ::epoll_wait(epoll_fd, events.data(), max_events, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;
    return common::StatusFromErrno("epoll_wait");
  }
  out->reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out->push_back(ReadyEvent{events[static_cast<size_t>(i)].data.u64,
                              events[static_cast<size_t>(i)].events});
  }
  return n;
}

}  // namespace sgnn::net
