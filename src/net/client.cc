#include "net/client.h"

#include <sys/socket.h>

#include <cerrno>

#include "common/posix.h"

namespace sgnn::net {

common::StatusOr<HttpClient> HttpClient::Connect(const std::string& host,
                                                 uint16_t port) {
  auto fd = ConnectTcp(host, port);
  if (!fd.ok()) return fd.status();
  return HttpClient(std::move(fd).value());
}

common::StatusOr<HttpResponse> HttpClient::Get(const std::string& target) {
  SGNN_RETURN_IF_ERROR(SendRequest("GET", target, "", ""));
  return ReadResponse();
}

common::StatusOr<HttpResponse> HttpClient::Post(
    const std::string& target, std::string_view body,
    const std::string& content_type) {
  SGNN_RETURN_IF_ERROR(SendRequest("POST", target, body, content_type));
  return ReadResponse();
}

common::Status HttpClient::SendRequest(const std::string& method,
                                       const std::string& target,
                                       std::string_view body,
                                       const std::string& content_type) {
  if (!fd_.valid()) {
    return common::Status::FailedPrecondition("client connection is closed");
  }
  const std::string wire = SerializeRequest(method, target, body,
                                            content_type);
  return SendAll(fd_.fd(), wire.data(), wire.size());
}

common::StatusOr<HttpResponse> HttpClient::ReadResponse() {
  HttpResponse response;
  if (parser_.TakeResponse(&response)) return response;
  if (!fd_.valid()) {
    return common::Status::FailedPrecondition("client connection is closed");
  }
  char buf[16384];
  for (;;) {
    ssize_t n;
    do {
      n = ::recv(fd_.fd(), buf, sizeof(buf), 0);  // Blocking read.
    } while (n < 0 && errno == EINTR);
    if (n < 0) return common::StatusFromErrno("recv");
    if (n == 0) {
      // EOF before a full response: clean between messages, torn inside
      // one — the client-side mirror of the server's read path.
      common::Status eof = parser_.OnEof();
      if (!eof.ok()) return eof;
      return common::Status::Unavailable("server closed the connection");
    }
    SGNN_RETURN_IF_ERROR(
        parser_.Feed(std::string_view(buf, static_cast<size_t>(n))));
    if (parser_.TakeResponse(&response)) return response;
  }
}

}  // namespace sgnn::net
