#ifndef SGNN_NET_HTTP_H_
#define SGNN_NET_HTTP_H_

#include <cstddef>
#include <deque>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace sgnn::net {

/// Minimal HTTP/1.1 message layer for the serving front door: incremental
/// request/response parsers fed from socket reads, and a response
/// serializer. Pure byte-shuffling — no syscalls — so every edge case
/// (truncation, oversized headers, pipelining, mid-body EOF) is unit
/// testable without a socket.
///
/// Scope is deliberately the subset the serving tier speaks: methods with
/// `Content-Length` bodies (no chunked transfer coding), no continuation
/// lines, case-insensitive header names. Anything outside the subset is a
/// parse error, not undefined behaviour.

/// Header list in received order; names compare case-insensitively.
using HttpHeaders = std::vector<std::pair<std::string, std::string>>;

/// Case-insensitive lookup; null when absent.
const std::string* FindHeader(const HttpHeaders& headers,
                              std::string_view name);

struct HttpRequest {
  std::string method;
  std::string target;   ///< Request target as sent, e.g. "/v1/infer".
  std::string version;  ///< "HTTP/1.1".
  HttpHeaders headers;
  std::string body;
};

struct HttpResponse {
  int status_code = 0;
  std::string reason;
  HttpHeaders headers;
  std::string body;
};

/// Parser size bounds; exceeding one is `kResourceExhausted` (the server
/// answers 431/413), which keeps a hostile peer from ballooning memory.
struct HttpLimits {
  size_t max_start_line_bytes = 4096;
  size_t max_header_bytes = 16384;  ///< Start line + all header lines.
  size_t max_body_bytes = 1 << 20;
};

/// Incremental HTTP/1.1 request parser. Feed it raw socket bytes; take
/// complete requests out as they form (several per feed under pipelining).
/// A parse error is sticky — the connection's framing is gone, so the
/// owner must close after reporting it.
///
/// End-of-stream semantics mirror `dist/frame.h`: a peer that closes at a
/// message boundary is a clean goodbye (`kUnavailable`), one that closes
/// mid-message tore the stream (`kDataLoss`). The front door counts the
/// latter against `/healthz`.
class HttpRequestParser {
 public:
  explicit HttpRequestParser(const HttpLimits& limits = HttpLimits());

  /// Appends bytes and parses as far as possible. Errors:
  /// `kInvalidArgument` (malformed line / unsupported framing),
  /// `kResourceExhausted` (a limit exceeded). Sticky on error.
  SGNN_NODISCARD common::Status Feed(std::string_view data);

  /// Moves the oldest complete request into `*out`; false when none is
  /// ready yet.
  bool TakeRequest(HttpRequest* out);

  /// Classifies end-of-stream: OK when nothing was buffered (the peer
  /// finished cleanly between messages), `kDataLoss` when it died
  /// mid-message.
  SGNN_NODISCARD common::Status OnEof() const;

  /// True while no partial message is buffered.
  bool at_boundary() const { return buffer_.empty(); }

 private:
  SGNN_NODISCARD common::Status ParseBuffered();

  HttpLimits limits_;
  std::string buffer_;
  std::deque<HttpRequest> ready_;
  common::Status error_ = common::Status::OK();
};

/// Incremental HTTP/1.1 response parser (the client side); same feeding
/// discipline and EOF semantics as the request parser.
class HttpResponseParser {
 public:
  explicit HttpResponseParser(const HttpLimits& limits = HttpLimits());

  SGNN_NODISCARD common::Status Feed(std::string_view data);
  bool TakeResponse(HttpResponse* out);
  SGNN_NODISCARD common::Status OnEof() const;
  bool at_boundary() const { return buffer_.empty(); }

 private:
  SGNN_NODISCARD common::Status ParseBuffered();

  HttpLimits limits_;
  std::string buffer_;
  std::deque<HttpResponse> ready_;
  common::Status error_ = common::Status::OK();
};

/// Serializes one response with `Content-Length` and the given content
/// type; `extra_headers` land between the standard ones and the body.
std::string SerializeResponse(int status_code, std::string_view reason,
                              std::string_view body,
                              std::string_view content_type,
                              const HttpHeaders& extra_headers = {});

/// Serializes one request (`Content-Length` added when `body` is
/// non-empty).
std::string SerializeRequest(std::string_view method, std::string_view target,
                             std::string_view body,
                             std::string_view content_type,
                             const HttpHeaders& extra_headers = {});

/// Canonical reason phrase for the status codes the front door emits;
/// "Unknown" otherwise.
const char* ReasonPhrase(int status_code);

}  // namespace sgnn::net

#endif  // SGNN_NET_HTTP_H_
