#include "net/json.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace sgnn::net {

namespace {

/// Cursor over the request-body subset: a single flat object whose values
/// are strings or integers. Hand-rolled on purpose — no dependency, and
/// small enough to reason about every byte.
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view s) : s_(s) {}

  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= s_.size();
  }

  common::Status ParseString(std::string* out) {
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      return common::Status::InvalidArgument("expected '\"' at offset " +
                                             std::to_string(pos_));
    }
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) break;
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default:
            return common::Status::InvalidArgument(
                std::string("unsupported escape '\\") + esc + "'");
        }
      }
      out->push_back(c);
    }
    if (pos_ >= s_.size()) {
      return common::Status::InvalidArgument("unterminated string");
    }
    ++pos_;  // Closing quote.
    return common::Status::OK();
  }

  common::Status ParseInt(int64_t* out) {
    SkipWs();
    const char* begin = s_.data() + pos_;
    const char* end = s_.data() + s_.size();
    const auto [ptr, ec] = std::from_chars(begin, end, *out);
    if (ec != std::errc() || ptr == begin) {
      return common::Status::InvalidArgument("expected integer at offset " +
                                             std::to_string(pos_));
    }
    pos_ += static_cast<size_t>(ptr - begin);
    return common::Status::OK();
  }

 private:
  std::string_view s_;
  size_t pos_ = 0;
};

}  // namespace

common::StatusOr<InferRequestBody> ParseInferRequest(std::string_view json) {
  JsonCursor cur(json);
  if (!cur.Consume('{')) {
    return common::Status::InvalidArgument("request body must be a JSON object");
  }
  InferRequestBody body;
  bool saw_node = false;
  if (!cur.Consume('}')) {
    do {
      std::string key;
      common::Status s = cur.ParseString(&key);
      if (!s.ok()) return s;
      if (!cur.Consume(':')) {
        return common::Status::InvalidArgument("expected ':' after \"" + key +
                                               "\"");
      }
      if (key == "node") {
        s = cur.ParseInt(&body.node);
        saw_node = true;
      } else if (key == "tenant") {
        s = cur.ParseString(&body.tenant);
      } else if (key == "deadline_micros") {
        s = cur.ParseInt(&body.deadline_micros);
      } else {
        return common::Status::InvalidArgument("unknown key \"" + key + "\"");
      }
      if (!s.ok()) return s;
    } while (cur.Consume(','));
    if (!cur.Consume('}')) {
      return common::Status::InvalidArgument("expected ',' or '}'");
    }
  }
  if (!cur.AtEnd()) {
    return common::Status::InvalidArgument("trailing bytes after object");
  }
  if (!saw_node) {
    return common::Status::InvalidArgument("missing required key \"node\"");
  }
  if (body.deadline_micros < 0) {
    return common::Status::InvalidArgument("deadline_micros must be >= 0");
  }
  return body;
}

const char* StatusCodeJsonName(common::StatusCode code) {
  switch (code) {
    case common::StatusCode::kOk: return "ok";
    case common::StatusCode::kInvalidArgument: return "invalid_argument";
    case common::StatusCode::kNotFound: return "not_found";
    case common::StatusCode::kOutOfRange: return "out_of_range";
    case common::StatusCode::kFailedPrecondition: return "failed_precondition";
    case common::StatusCode::kIOError: return "io_error";
    case common::StatusCode::kInternal: return "internal";
    case common::StatusCode::kUnavailable: return "unavailable";
    case common::StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case common::StatusCode::kAborted: return "aborted";
    case common::StatusCode::kResourceExhausted: return "resource_exhausted";
    case common::StatusCode::kDataLoss: return "data_loss";
  }
  return "unknown";
}

int HttpStatusForCode(common::StatusCode code) {
  switch (code) {
    case common::StatusCode::kOk: return 200;
    case common::StatusCode::kInvalidArgument: return 400;
    case common::StatusCode::kOutOfRange: return 400;
    case common::StatusCode::kNotFound: return 404;
    case common::StatusCode::kResourceExhausted: return 429;
    case common::StatusCode::kUnavailable: return 503;
    case common::StatusCode::kFailedPrecondition: return 503;
    case common::StatusCode::kAborted: return 503;
    case common::StatusCode::kDeadlineExceeded: return 504;
    default: return 500;
  }
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string RenderInferResponse(const serve::InferenceResponse& response) {
  if (!response.status.ok()) {
    std::string out = "{\"status\":\"";
    out += StatusCodeJsonName(response.status.code());
    out += "\",\"node\":" + std::to_string(response.node);
    out += ",\"error\":\"" + JsonEscape(response.status.message()) + "\"}";
    return out;
  }
  std::string out = "{\"status\":\"ok\",\"node\":" +
                    std::to_string(response.node);
  out += ",\"tenant\":\"" + JsonEscape(response.tenant_id) + "\"";
  out += ",\"predicted_class\":" + std::to_string(response.predicted_class);
  out += response.cache_hit ? ",\"cache_hit\":true" : ",\"cache_hit\":false";
  out += response.degraded ? ",\"degraded\":true" : ",\"degraded\":false";
  out += ",\"logits\":[";
  char buf[40];
  for (size_t i = 0; i < response.logits.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.9g",
                  static_cast<double>(response.logits[i]));
    if (i > 0) out += ',';
    out += buf;
  }
  out += "]}";
  return out;
}

std::string RenderError(const common::Status& status) {
  std::string out = "{\"status\":\"";
  out += StatusCodeJsonName(status.code());
  out += "\",\"error\":\"" + JsonEscape(status.message()) + "\"}";
  return out;
}

}  // namespace sgnn::net
