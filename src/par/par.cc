#include "par/par.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/thread_annotations.h"
#include "obs/trace.h"

namespace sgnn::par {

namespace {

/// Process-wide substrate state. The pool starts lazily on the first
/// section that actually dispatches, so single-threaded programs (and the
/// historical default) never spawn a worker.
struct ParState {
  common::Mutex mu;
  int threads SGNN_GUARDED_BY(mu) = 0;  ///< 0 = env not read yet.
  std::unique_ptr<common::ThreadPool> pool SGNN_GUARDED_BY(mu);
  std::atomic<uint64_t> sections{0};
  std::atomic<uint64_t> shards{0};
  std::atomic<obs::Tracer*> tracer{nullptr};
};

ParState& State() {
  // Ordinary static (not leaked): destruction joins the pool's workers,
  // which are idle by then — no sections run during static teardown.
  static ParState state;
  return state;
}

int ThreadsLocked(ParState& state) SGNN_REQUIRES(state.mu) {
  if (state.threads == 0) {
    state.threads =
        ThreadsFromEnv(std::getenv("SGNN_THREADS"), /*fallback=*/1);
  }
  return state.threads;
}

/// One parallel section's shared bookkeeping. Heap-allocated and held via
/// shared_ptr by every pool task, so a task that is still queued when the
/// section completes (all shards claimed by faster threads) finds the
/// index exhausted and returns without touching the caller's stack.
struct Section {
  std::atomic<int64_t> next{0};
  const std::function<void(int, Range)>* fn = nullptr;  ///< Caller-owned.
  std::span<const Range> ranges;
  // sgnn-lint: allow(lock/unannotated-field): sized before any task is
  // submitted; each worker writes only the slots of shards it claimed via
  // `next`, so writes are disjoint and the caller reads after `done`.
  std::vector<common::OpCounters> deltas;

  common::Mutex mu;
  std::condition_variable_any done;
  int64_t remaining SGNN_GUARDED_BY(mu) = 0;

  /// Claims shards until the index runs out. Per-shard counter deltas are
  /// recorded and reverted so only the section's final merge (on the
  /// caller, in shard order) bills the work.
  void RunShards() {
    const int64_t total = static_cast<int64_t>(ranges.size());
    common::OpCounters& slot = common::GlobalCounters();
    for (;;) {
      const int64_t shard = next.fetch_add(1, std::memory_order_relaxed);
      if (shard >= total) return;
      const common::OpCounters before = slot;
      (*fn)(static_cast<int>(shard), ranges[static_cast<size_t>(shard)]);
      deltas[static_cast<size_t>(shard)] = common::OpCounters::Delta(before, slot);
      slot = before;
      NoteShardDone();
    }
  }

  void NoteShardDone() SGNN_EXCLUDES(mu) {
    common::MutexLock lock(mu);
    if (--remaining == 0) done.notify_all();
  }

  void AwaitAll() SGNN_EXCLUDES(mu) {
    common::MutexLock lock(mu);
    while (remaining != 0) done.wait(mu);
  }
};

}  // namespace

int ThreadsFromEnv(const char* value, int fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 1) return fallback;
  return static_cast<int>(std::min<long>(parsed, 1024));
}

int NumThreads() {
  ParState& state = State();
  common::MutexLock lock(state.mu);
  return ThreadsLocked(state);
}

void SetThreads(int n) {
  if (n < 1) n = 1;
  ParState& state = State();
  common::MutexLock lock(state.mu);
  state.threads = n;
  if (state.pool != nullptr && state.pool->num_threads() != n) {
    state.pool->Resize(n);
  }
}

ParStats Stats() {
  ParState& state = State();
  return {state.sections.load(std::memory_order_relaxed),
          state.shards.load(std::memory_order_relaxed)};
}

obs::Tracer* SetTracer(obs::Tracer* tracer) {
  return State().tracer.exchange(tracer, std::memory_order_acq_rel);
}

int ShardsFor(int64_t work, int64_t grain) {
  SGNN_CHECK_GT(grain, 0);
  if (work <= 0) return 1;
  const int64_t shards = (work + grain - 1) / grain;
  return static_cast<int>(std::clamp<int64_t>(shards, 1, kMaxShards));
}

std::vector<Range> SplitUniform(int64_t n, int shards) {
  SGNN_CHECK_GE(shards, 1);
  if (n <= 0) return {};
  const int64_t count = std::min<int64_t>(shards, n);
  std::vector<Range> ranges(static_cast<size_t>(count));
  const int64_t base = n / count;
  const int64_t extra = n % count;
  int64_t begin = 0;
  for (int64_t s = 0; s < count; ++s) {
    const int64_t len = base + (s < extra ? 1 : 0);
    ranges[static_cast<size_t>(s)] = {begin, begin + len};
    begin += len;
  }
  return ranges;
}

std::vector<Range> RowRanges(std::span<const int64_t> offsets, int shards) {
  SGNN_CHECK_GE(shards, 1);
  SGNN_CHECK(!offsets.empty());
  const int64_t rows = static_cast<int64_t>(offsets.size()) - 1;
  if (rows <= 0) return {};
  const int64_t total = offsets[static_cast<size_t>(rows)] - offsets[0];
  if (total <= 0) return SplitUniform(rows, shards);
  const int64_t count = std::min<int64_t>(std::min<int64_t>(shards, rows), total);
  std::vector<Range> ranges;
  ranges.reserve(static_cast<size_t>(count));
  int64_t begin = 0;
  for (int64_t s = 0; s < count && begin < rows; ++s) {
    // Smallest end whose cumulative edge mass reaches the s+1-th share.
    const int64_t target = offsets[0] + (total * (s + 1)) / count;
    const auto it = std::lower_bound(offsets.begin() + begin + 1,
                                     offsets.end(), target);
    int64_t end = static_cast<int64_t>(it - offsets.begin());
    if (s + 1 == count) end = rows;  // Last shard absorbs the tail.
    end = std::min(end, rows);
    SGNN_DCHECK_GT(end, begin);
    ranges.push_back({begin, end});
    begin = end;
  }
  return ranges;
}

void ParallelFor(const char* label, std::span<const Range> ranges,
                 const std::function<void(int, Range)>& fn) {
  const int64_t num_shards = static_cast<int64_t>(ranges.size());
  if (num_shards == 0) return;
  ParState& state = State();
  state.sections.fetch_add(1, std::memory_order_relaxed);
  state.shards.fetch_add(static_cast<uint64_t>(num_shards),
                         std::memory_order_relaxed);

  obs::TraceSpan span;
  if (obs::Tracer* tracer = state.tracer.load(std::memory_order_acquire)) {
    span = tracer->Span(std::string("par:") + label, "par");
  }

  common::ThreadPool* pool = nullptr;
  int workers = 1;
  {
    common::MutexLock lock(state.mu);
    workers = ThreadsLocked(state);
    if (workers > 1 && num_shards > 1) {
      if (state.pool == nullptr) {
        state.pool = std::make_unique<common::ThreadPool>(workers);
      }
      pool = state.pool.get();
    }
  }

  if (pool == nullptr) {
    // Inline execution walks the identical shard geometry, so billing and
    // bits match the pooled path exactly.
    for (int64_t s = 0; s < num_shards; ++s) {
      fn(static_cast<int>(s), ranges[static_cast<size_t>(s)]);
    }
    return;
  }

  auto section = std::make_shared<Section>();
  section->fn = &fn;
  section->ranges = ranges;
  section->deltas.resize(static_cast<size_t>(num_shards));
  {
    common::MutexLock lock(section->mu);
    section->remaining = num_shards;
  }
  // num_shards - 1 helpers at most: the caller claims shards too, so the
  // section finishes even if every helper stays stuck in the queue.
  const int64_t helpers =
      std::min<int64_t>(workers, num_shards - 1);
  for (int64_t h = 0; h < helpers; ++h) {
    pool->Submit([section] { section->RunShards(); });
  }
  section->RunShards();
  section->AwaitAll();

  // Re-bill the recorded shard work to this thread, in shard order, so a
  // ScopedCounterDelta around the kernel sees it and process aggregates
  // match a single-threaded run.
  common::OpCounters& mine = common::GlobalCounters();
  for (const common::OpCounters& delta : section->deltas) {
    mine.edges_touched += delta.edges_touched;
    mine.floats_moved += delta.floats_moved;
    mine.bytes_read += delta.bytes_read;
    mine.bytes_written += delta.bytes_written;
  }
}

}  // namespace sgnn::par
