#ifndef SGNN_PAR_PAR_H_
#define SGNN_PAR_PAR_H_

#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/counters.h"
#include "common/thread_pool.h"

namespace sgnn::obs {
class Tracer;
}

namespace sgnn::par {

/// `sgnn::par` — the deterministic parallel kernel substrate. Every hot
/// compute kernel (SpMM propagation, GEMM, batch PPR, sampling fan-out)
/// runs its loops through `ParallelFor`/`ParallelReduce` over a shard
/// geometry computed here.
///
/// Determinism contract — *bit-identical outputs for any worker count*:
///
///  1. Shard geometry is a pure function of the problem (`ShardsFor`,
///     `SplitUniform`, `RowRanges` never consult the thread count), so the
///     same shards exist whether they run inline on one thread or spread
///     over eight.
///  2. Shards own disjoint output slices (row partitioning), so no atomics
///     or locks touch kernel data and no write order is observable.
///  3. Reductions (`ParallelReduce`, per-shard partial accumulators in
///     `tensor::GemmTransposeA`) combine partials in ascending shard
///     order — a fixed floating-point summation tree.
///  4. Randomised kernels derive per-item streams from `(seed, item)` keys
///     (`common::MixSeed`), never from which worker runs the item.
///
/// Worker count is process-wide: `SetThreads(n)` (or the `SGNN_THREADS`
/// environment variable, read once at first use; default 1) resizes the
/// shared lazily-started `common::ThreadPool`. The calling thread always
/// participates in its own sections, so a section makes progress even when
/// every pool worker is busy (nested sections cannot deadlock).
///
/// Work accounting: per-shard `common::OpCounters` deltas recorded on the
/// worker threads are reverted there and re-billed to the *calling*
/// thread's counters, in shard order, when the section completes. A
/// `ScopedCounterDelta` around a parallel kernel therefore sees exactly
/// the work the kernel did, and `AggregateThreadCounters()` totals match a
/// single-threaded run to the unit.

/// Half-open index range [begin, end); the unit of work a shard owns.
struct Range {
  int64_t begin = 0;
  int64_t end = 0;

  int64_t size() const { return end - begin; }
  bool operator==(const Range& other) const = default;
};

/// Hard ceiling on shards per section. Bounds reduction-partial memory and
/// task bookkeeping; raising it changes shard geometry and therefore the
/// bits of reduction kernels, so it is a compile-time constant, not a knob.
inline constexpr int kMaxShards = 64;

/// Current worker count (>= 1). First call reads `SGNN_THREADS`.
int NumThreads();

/// Sets the process-wide worker count (clamped to >= 1) and resizes the
/// shared pool if it has started. Not safe to call concurrently with
/// running parallel sections; configure between kernels (the pipeline does
/// this once at run entry).
void SetThreads(int n);

/// Parses an `SGNN_THREADS`-style value: returns the clamped thread count,
/// or `fallback` when `value` is null, empty, or not a positive integer.
/// Exposed for tests; `NumThreads` uses it on the real environment.
int ThreadsFromEnv(const char* value, int fallback);

/// Cumulative substrate counters. Sections and shards are pure functions
/// of the executed workload (geometry never depends on worker count), so
/// per-run deltas are reproducible across any `SGNN_THREADS`.
struct ParStats {
  uint64_t sections = 0;  ///< `ParallelFor` calls.
  uint64_t shards = 0;    ///< Shards executed (inline or pooled).
};
ParStats Stats();

/// Installs a tracer: every subsequent parallel section opens a
/// `par:<label>` span on the *calling* thread (never on workers, so track
/// assignment and tick order stay deterministic). Returns the previous
/// tracer so callers can restore it (the pipeline scopes installation to
/// one run). Pass nullptr to disable.
obs::Tracer* SetTracer(obs::Tracer* tracer);

/// Shard count for `work` items at the given grain: ceil-divides, clamps
/// to [1, kMaxShards]. Depends only on the problem size — never on the
/// worker count — which is what keeps reduction trees fixed.
int ShardsFor(int64_t work, int64_t grain);

/// Splits [0, n) into `shards` contiguous near-equal ranges (the first
/// `n % shards` ranges are one longer). Empty ranges are never produced:
/// `shards` is clamped to n when n < shards (n == 0 yields no ranges).
std::vector<Range> SplitUniform(int64_t n, int shards);

/// Edge-count-balanced row partition for CSR kernels: `offsets` is the
/// row-offset array (size num_rows + 1, monotone); boundaries are chosen
/// so each range covers ~equal `offsets` mass, so one hub-heavy shard
/// cannot serialise an SpMM. Degenerate inputs (all-empty rows) fall back
/// to a uniform split.
std::vector<Range> RowRanges(std::span<const int64_t> offsets, int shards);

/// Runs `fn(shard, ranges[shard])` for every shard and blocks until all
/// complete. Shards execute inline when the configured worker count is 1
/// (or there is a single shard); otherwise the caller and up to
/// `NumThreads()` pool workers pull shards from a shared index. `label`
/// names the section's trace span and must be a string literal.
///
/// `fn` must write only shard-owned state; `OpCounters` billed inside `fn`
/// are re-attributed to the calling thread (see file comment).
void ParallelFor(const char* label, std::span<const Range> ranges,
                 const std::function<void(int, Range)>& fn);

/// Map-reduce with a deterministic reduction tree: `map(shard, range)`
/// runs as a parallel section, then partials fold left-to-right in shard
/// order via `combine`. The float result is therefore identical for any
/// worker count (geometry fixes the tree shape).
template <typename T>
T ParallelReduce(const char* label, std::span<const Range> ranges,
                 const std::function<T(int, Range)>& map,
                 const std::function<T(T, T)>& combine, T init) {
  std::vector<T> partials(ranges.size());
  ParallelFor(label, ranges,
              [&](int shard, Range range) { partials[shard] = map(shard, range); });
  T acc = std::move(init);
  for (T& partial : partials) acc = combine(std::move(acc), std::move(partial));
  return acc;
}

}  // namespace sgnn::par

#endif  // SGNN_PAR_PAR_H_
