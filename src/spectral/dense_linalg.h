#ifndef SGNN_SPECTRAL_DENSE_LINALG_H_
#define SGNN_SPECTRAL_DENSE_LINALG_H_

#include <vector>

namespace sgnn::spectral {

/// Small dense double-precision helpers for the spectral module. These are
/// for k x k problems with k in the tens (Lanczos tridiagonals, filter
/// least-squares), not for graph-sized matrices.

/// Column-major-free simple dense symmetric matrix: row-major n*n vector.
struct SymmetricEigenResult {
  std::vector<double> eigenvalues;    ///< Ascending.
  std::vector<double> eigenvectors;   ///< Row-major n x n; column j pairs
                                      ///< with eigenvalues[j].
};

/// Cyclic Jacobi rotation eigensolver for a dense symmetric matrix
/// (row-major `a`, size n x n). O(n^3) per sweep; intended for n <= ~200.
SymmetricEigenResult JacobiEigen(std::vector<double> a, int n,
                                 int max_sweeps = 50, double tol = 1e-12);

/// Solves A x = b via Gaussian elimination with partial pivoting.
/// `a` is row-major n x n and is consumed. Returns x. Near-singular pivots
/// are regularised by a tiny ridge, so the call always produces a result;
/// callers needing strict solvability should check the residual.
std::vector<double> SolveLinearSystem(std::vector<double> a,
                                      std::vector<double> b, int n);

/// Least squares fit: finds x minimising ||M x - y||_2 for row-major
/// `m` of shape rows x cols (rows >= cols) via normal equations with a
/// small ridge for conditioning.
std::vector<double> LeastSquares(const std::vector<double>& m, int rows,
                                 int cols, const std::vector<double>& y,
                                 double ridge = 1e-10);

}  // namespace sgnn::spectral

#endif  // SGNN_SPECTRAL_DENSE_LINALG_H_
