#include "spectral/dense_linalg.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace sgnn::spectral {

SymmetricEigenResult JacobiEigen(std::vector<double> a, int n, int max_sweeps,
                                 double tol) {
  SGNN_CHECK_GE(n, 1);
  SGNN_CHECK_EQ(a.size(), static_cast<size_t>(n) * n);
  std::vector<double> v(static_cast<size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) v[static_cast<size_t>(i) * n + i] = 1.0;

  auto at = [&](std::vector<double>& m, int r, int c) -> double& {
    return m[static_cast<size_t>(r) * n + c];
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) off += at(a, p, q) * at(a, p, q);
    }
    if (off < tol) break;
    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = at(a, p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double theta = (at(a, q, q) - at(a, p, p)) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (int i = 0; i < n; ++i) {
          const double aip = at(a, i, p), aiq = at(a, i, q);
          at(a, i, p) = c * aip - s * aiq;
          at(a, i, q) = s * aip + c * aiq;
        }
        for (int i = 0; i < n; ++i) {
          const double api = at(a, p, i), aqi = at(a, q, i);
          at(a, p, i) = c * api - s * aqi;
          at(a, q, i) = s * api + c * aqi;
        }
        for (int i = 0; i < n; ++i) {
          const double vip = at(v, i, p), viq = at(v, i, q);
          at(v, i, p) = c * vip - s * viq;
          at(v, i, q) = s * vip + c * viq;
        }
      }
    }
  }

  SymmetricEigenResult result;
  result.eigenvalues.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    result.eigenvalues[static_cast<size_t>(i)] = at(a, i, i);
  }
  // Sort ascending, permuting eigenvector columns to match.
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int x, int y) {
    return result.eigenvalues[static_cast<size_t>(x)] <
           result.eigenvalues[static_cast<size_t>(y)];
  });
  std::vector<double> sorted_vals(static_cast<size_t>(n));
  std::vector<double> sorted_vecs(static_cast<size_t>(n) * n);
  for (int j = 0; j < n; ++j) {
    sorted_vals[static_cast<size_t>(j)] =
        result.eigenvalues[static_cast<size_t>(order[j])];
    for (int i = 0; i < n; ++i) {
      sorted_vecs[static_cast<size_t>(i) * n + j] =
          v[static_cast<size_t>(i) * n + order[j]];
    }
  }
  result.eigenvalues = std::move(sorted_vals);
  result.eigenvectors = std::move(sorted_vecs);
  return result;
}

std::vector<double> SolveLinearSystem(std::vector<double> a,
                                      std::vector<double> b, int n) {
  SGNN_CHECK_EQ(a.size(), static_cast<size_t>(n) * n);
  SGNN_CHECK_EQ(b.size(), static_cast<size_t>(n));
  auto at = [&](int r, int c) -> double& {
    return a[static_cast<size_t>(r) * n + c];
  };
  for (int col = 0; col < n; ++col) {
    int pivot = col;
    for (int r = col + 1; r < n; ++r) {
      if (std::fabs(at(r, col)) > std::fabs(at(pivot, col))) pivot = r;
    }
    if (pivot != col) {
      for (int c = 0; c < n; ++c) std::swap(at(col, c), at(pivot, c));
      std::swap(b[static_cast<size_t>(col)], b[static_cast<size_t>(pivot)]);
    }
    if (std::fabs(at(col, col)) < 1e-14) at(col, col) += 1e-12;
    const double inv = 1.0 / at(col, col);
    for (int r = col + 1; r < n; ++r) {
      const double f = at(r, col) * inv;
      if (f == 0.0) continue;
      for (int c = col; c < n; ++c) at(r, c) -= f * at(col, c);
      b[static_cast<size_t>(r)] -= f * b[static_cast<size_t>(col)];
    }
  }
  std::vector<double> x(static_cast<size_t>(n), 0.0);
  for (int r = n - 1; r >= 0; --r) {
    double acc = b[static_cast<size_t>(r)];
    for (int c = r + 1; c < n; ++c) acc -= at(r, c) * x[static_cast<size_t>(c)];
    x[static_cast<size_t>(r)] = acc / at(r, r);
  }
  return x;
}

std::vector<double> LeastSquares(const std::vector<double>& m, int rows,
                                 int cols, const std::vector<double>& y,
                                 double ridge) {
  SGNN_CHECK_EQ(m.size(), static_cast<size_t>(rows) * cols);
  SGNN_CHECK_EQ(y.size(), static_cast<size_t>(rows));
  SGNN_CHECK_GE(rows, cols);
  std::vector<double> mtm(static_cast<size_t>(cols) * cols, 0.0);
  std::vector<double> mty(static_cast<size_t>(cols), 0.0);
  for (int r = 0; r < rows; ++r) {
    const double* row = m.data() + static_cast<size_t>(r) * cols;
    for (int i = 0; i < cols; ++i) {
      mty[static_cast<size_t>(i)] += row[i] * y[static_cast<size_t>(r)];
      for (int j = 0; j < cols; ++j) {
        mtm[static_cast<size_t>(i) * cols + j] += row[i] * row[j];
      }
    }
  }
  for (int i = 0; i < cols; ++i) mtm[static_cast<size_t>(i) * cols + i] += ridge;
  return SolveLinearSystem(std::move(mtm), std::move(mty), cols);
}

}  // namespace sgnn::spectral
