#include "spectral/spectrum.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "spectral/dense_linalg.h"

namespace sgnn::spectral {

namespace {

using Vec = std::vector<double>;

double Dot(const Vec& a, const Vec& b) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm(const Vec& a) { return std::sqrt(Dot(a, a)); }

void Scale(double s, Vec* a) {
  for (double& x : *a) x *= s;
}

void Axpy(double s, const Vec& x, Vec* y) {
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += s * x[i];
}

/// y = L x = x - S x.
void ApplyLaplacian(const graph::Propagator& prop, const Vec& x, Vec* y) {
  prop.ApplyVector(x, y);
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] = x[i] - (*y)[i];
}

Vec RandomUnit(size_t n, uint64_t seed) {
  sgnn::common::Rng rng(seed);
  Vec v(n);
  for (double& x : v) x = rng.Gaussian(0.0, 1.0);
  const double norm = Norm(v);
  SGNN_CHECK_GT(norm, 0.0);
  Scale(1.0 / norm, &v);
  return v;
}

/// Trivial (lambda = 0) eigenvector of the normalised Laplacian:
/// proportional to sqrt(degree + self_loop) per node.
Vec TrivialEigenvector(const graph::Propagator& prop) {
  const auto& g = prop.graph();
  Vec v(g.num_nodes());
  const double self = prop.self_loops() ? 1.0 : 0.0;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    v[u] = std::sqrt(g.WeightedDegree(u) + self);
  }
  const double norm = Norm(v);
  if (norm > 0.0) Scale(1.0 / norm, &v);
  return v;
}

/// Lanczos with full reorthogonalisation; returns ascending Ritz values of
/// L. If `deflate` is non-null, the process runs in its orthogonal
/// complement.
std::vector<double> LanczosRitz(const graph::Propagator& prop, int steps,
                                uint64_t seed, const Vec* deflate) {
  const size_t n = prop.graph().num_nodes();
  SGNN_CHECK_GE(n, 1u);
  steps = std::min<int>(steps, static_cast<int>(n));
  SGNN_CHECK_GE(steps, 1);

  std::vector<Vec> basis;
  Vec q = RandomUnit(n, seed);
  if (deflate != nullptr) {
    Axpy(-Dot(q, *deflate), *deflate, &q);
    const double norm = Norm(q);
    SGNN_CHECK_GT(norm, 1e-12);
    Scale(1.0 / norm, &q);
  }
  basis.push_back(q);

  std::vector<double> alpha, beta;
  Vec w(n);
  for (int j = 0; j < steps; ++j) {
    ApplyLaplacian(prop, basis.back(), &w);
    const double a = Dot(w, basis.back());
    alpha.push_back(a);
    // Full reorthogonalisation keeps the tridiagonal faithful despite
    // floating-point drift.
    for (const Vec& b : basis) Axpy(-Dot(w, b), b, &w);
    for (const Vec& b : basis) Axpy(-Dot(w, b), b, &w);
    if (deflate != nullptr) Axpy(-Dot(w, *deflate), *deflate, &w);
    const double bnorm = Norm(w);
    if (j + 1 == steps || bnorm < 1e-10) break;
    beta.push_back(bnorm);
    Vec next = w;
    Scale(1.0 / bnorm, &next);
    basis.push_back(std::move(next));
  }

  const int k = static_cast<int>(alpha.size());
  std::vector<double> tri(static_cast<size_t>(k) * k, 0.0);
  for (int i = 0; i < k; ++i) {
    tri[static_cast<size_t>(i) * k + i] = alpha[static_cast<size_t>(i)];
    if (i + 1 < k) {
      tri[static_cast<size_t>(i) * k + i + 1] = beta[static_cast<size_t>(i)];
      tri[static_cast<size_t>(i + 1) * k + i] = beta[static_cast<size_t>(i)];
    }
  }
  return JacobiEigen(std::move(tri), k).eigenvalues;
}

}  // namespace

double PowerMethodDominant(const graph::Propagator& prop, int iters,
                           uint64_t seed) {
  SGNN_CHECK_GE(iters, 1);
  const size_t n = prop.graph().num_nodes();
  Vec v = RandomUnit(n, seed);
  Vec w(n);
  double rayleigh = 0.0;
  for (int i = 0; i < iters; ++i) {
    prop.ApplyVector(v, &w);
    const double norm = Norm(w);
    if (norm < 1e-300) return 0.0;
    rayleigh = Dot(v, w);
    v = w;
    Scale(1.0 / norm, &v);
  }
  return rayleigh;
}

std::vector<double> LanczosLaplacianSpectrum(const graph::Propagator& prop,
                                             int steps, uint64_t seed) {
  return LanczosRitz(prop, steps, seed, nullptr);
}

double SpectralGap(const graph::Propagator& prop, int steps, uint64_t seed) {
  const Vec trivial = TrivialEigenvector(prop);
  auto ritz = LanczosRitz(prop, steps, seed, &trivial);
  SGNN_CHECK(!ritz.empty());
  return ritz.front();
}

}  // namespace sgnn::spectral
