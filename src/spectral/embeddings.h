#ifndef SGNN_SPECTRAL_EMBEDDINGS_H_
#define SGNN_SPECTRAL_EMBEDDINGS_H_

#include "graph/propagate.h"
#include "tensor/matrix.h"

namespace sgnn::spectral {

/// LD2-style combined multi-scale embeddings (§3.2.1 "Combined
/// Embeddings"): several decoupled spectral channels are precomputed once
/// and concatenated, so downstream training is a plain mini-batchable MLP
/// over fixed rows — whole-graph information without graph ops in the
/// training loop.
struct CombinedEmbeddingConfig {
  int hops = 4;           ///< Propagation depth per channel.
  double alpha = 0.15;    ///< Restart weight of the low-pass channel.
  bool include_identity = true;   ///< Raw features channel.
  bool include_low_pass = true;   ///< PPR-weighted smoothing channel.
  bool include_high_pass = true;  ///< (L/2)^K channel: heterophily signal.
  bool l2_normalize = true;       ///< Row-normalise each channel.
};

/// Computes the concatenated embedding. `prop` must be the kSymmetric
/// normalisation. Output has x.cols() times the number of enabled channels
/// columns.
tensor::Matrix CombinedEmbeddings(const graph::Propagator& prop,
                                  const tensor::Matrix& x,
                                  const CombinedEmbeddingConfig& config);

}  // namespace sgnn::spectral

#endif  // SGNN_SPECTRAL_EMBEDDINGS_H_
