#include "spectral/embeddings.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace sgnn::spectral {

using tensor::Matrix;

Matrix CombinedEmbeddings(const graph::Propagator& prop, const Matrix& x,
                          const CombinedEmbeddingConfig& config) {
  SGNN_CHECK_GE(config.hops, 1);
  SGNN_CHECK(config.alpha > 0.0 && config.alpha <= 1.0);
  SGNN_CHECK(config.include_identity || config.include_low_pass ||
             config.include_high_pass);

  Matrix out;
  auto append = [&out, &config](Matrix channel) {
    if (config.l2_normalize) tensor::NormalizeRows(2, &channel);
    out = out.empty() ? std::move(channel)
                      : tensor::ConcatCols(out, channel);
  };

  if (config.include_identity) append(x);

  if (config.include_low_pass) {
    // z_{k+1} = (1-alpha) S z_k + alpha x : the APPNP/PPR smoothing.
    Matrix z = x;
    Matrix sz;
    for (int k = 0; k < config.hops; ++k) {
      prop.Apply(z, &sz);
      tensor::Scale(static_cast<float>(1.0 - config.alpha), &sz);
      tensor::Axpy(static_cast<float>(config.alpha), x, &sz);
      z = std::move(sz);
    }
    append(std::move(z));
  }

  if (config.include_high_pass) {
    // h_{k+1} = (h_k - S h_k) / 2 = (L/2) h_k : amplifies disagreement
    // between a node and its neighbourhood, the informative direction
    // under heterophily.
    Matrix h = x;
    Matrix sh;
    for (int k = 0; k < config.hops; ++k) {
      prop.Apply(h, &sh);
      tensor::Scale(-0.5f, &sh);
      tensor::Axpy(0.5f, h, &sh);
      h = std::move(sh);
    }
    append(std::move(h));
  }

  return out;
}

}  // namespace sgnn::spectral
