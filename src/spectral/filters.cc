#include "spectral/filters.h"

#include <cmath>

#include "common/check.h"
#include "spectral/dense_linalg.h"
#include "tensor/ops.h"

namespace sgnn::spectral {

namespace {

/// Three-term recurrence P_{k+1}(m) = (cx*m + c0) P_k(m) + cprev P_{k-1}(m)
/// in the variable m = lambda - 1 in [-1, 1].
struct Recurrence {
  double cx = 0.0;
  double c0 = 0.0;
  double cprev = 0.0;
};

/// First-degree polynomial P_1(m) = dx*m + d0.
struct FirstTerm {
  double dx = 0.0;
  double d0 = 0.0;
};

FirstTerm FirstOf(const PolyFilter& f) {
  switch (f.basis) {
    case PolyBasis::kMonomialAdj:
      // S = I - L has eigenvalue 1 - lambda = -m, so S^1 -> -m.
      return {-1.0, 0.0};
    case PolyBasis::kChebyshev:
      return {1.0, 0.0};
    case PolyBasis::kJacobi:
      return {(f.jacobi_a + f.jacobi_b + 2.0) / 2.0,
              (f.jacobi_a - f.jacobi_b) / 2.0};
  }
  return {0.0, 0.0};
}

/// Recurrence producing P_{k+1} from P_k, P_{k-1} (valid for k >= 1).
Recurrence RecurrenceOf(const PolyFilter& f, int k) {
  switch (f.basis) {
    case PolyBasis::kMonomialAdj:
      return {-1.0, 0.0, 0.0};
    case PolyBasis::kChebyshev:
      return {2.0, 0.0, -1.0};
    case PolyBasis::kJacobi: {
      const double a = f.jacobi_a, b = f.jacobi_b;
      const double n = static_cast<double>(k) + 1.0;
      const double denom = 2.0 * n * (n + a + b) * (2.0 * n + a + b - 2.0);
      SGNN_CHECK_NE(denom, 0.0);
      Recurrence r;
      r.cx = (2.0 * n + a + b - 1.0) * (2.0 * n + a + b) *
             (2.0 * n + a + b - 2.0) / denom;
      r.c0 = (2.0 * n + a + b - 1.0) * (a * a - b * b) / denom;
      r.cprev = -2.0 * (n + a - 1.0) * (n + b - 1.0) * (2.0 * n + a + b) /
                denom;
      return r;
    }
  }
  return {};
}

}  // namespace

tensor::Matrix ApplyFilter(const graph::Propagator& prop,
                           const PolyFilter& filter, const tensor::Matrix& x) {
  SGNN_CHECK(!filter.coeffs.empty());
  SGNN_CHECK(prop.normalization() == graph::Normalization::kSymmetric);
  const int degree = static_cast<int>(filter.coeffs.size()) - 1;

  // Applies m-multiplication: M y = (L - I) y = -S y.
  auto apply_m = [&prop](const tensor::Matrix& in, tensor::Matrix* out) {
    prop.Apply(in, out);
    tensor::Scale(-1.0f, out);
  };

  tensor::Matrix z = x;
  tensor::Scale(static_cast<float>(filter.coeffs[0]), &z);
  if (degree == 0) return z;

  tensor::Matrix p_prev = x;  // P_0 X
  tensor::Matrix p_cur;       // P_1 X
  const FirstTerm first = FirstOf(filter);
  apply_m(x, &p_cur);
  tensor::Scale(static_cast<float>(first.dx), &p_cur);
  tensor::Axpy(static_cast<float>(first.d0), x, &p_cur);
  tensor::Axpy(static_cast<float>(filter.coeffs[1]), p_cur, &z);

  tensor::Matrix mp;
  for (int k = 1; k < degree; ++k) {
    const Recurrence r = RecurrenceOf(filter, k);
    apply_m(p_cur, &mp);
    tensor::Matrix p_next = std::move(mp);
    tensor::Scale(static_cast<float>(r.cx), &p_next);
    tensor::Axpy(static_cast<float>(r.c0), p_cur, &p_next);
    tensor::Axpy(static_cast<float>(r.cprev), p_prev, &p_next);
    tensor::Axpy(static_cast<float>(filter.coeffs[static_cast<size_t>(k) + 1]),
                 p_next, &z);
    p_prev = std::move(p_cur);
    p_cur = std::move(p_next);
    mp = tensor::Matrix();
  }
  return z;
}

double EvaluateResponse(const PolyFilter& filter, double lambda) {
  SGNN_CHECK(!filter.coeffs.empty());
  const double m = lambda - 1.0;
  double acc = filter.coeffs[0];
  if (filter.coeffs.size() == 1) return acc;
  const FirstTerm first = FirstOf(filter);
  double p_prev = 1.0;
  double p_cur = first.dx * m + first.d0;
  acc += filter.coeffs[1] * p_cur;
  for (size_t k = 1; k + 1 < filter.coeffs.size(); ++k) {
    const Recurrence r = RecurrenceOf(filter, static_cast<int>(k));
    const double p_next = (r.cx * m + r.c0) * p_cur + r.cprev * p_prev;
    acc += filter.coeffs[k + 1] * p_next;
    p_prev = p_cur;
    p_cur = p_next;
  }
  return acc;
}

PolyFilter FitFilter(PolyBasis basis, int degree,
                     const std::function<double(double)>& target,
                     int grid_points, double jacobi_a, double jacobi_b) {
  SGNN_CHECK_GE(degree, 0);
  SGNN_CHECK_GT(grid_points, degree);
  PolyFilter probe;
  probe.basis = basis;
  probe.jacobi_a = jacobi_a;
  probe.jacobi_b = jacobi_b;

  const int cols = degree + 1;
  std::vector<double> design(static_cast<size_t>(grid_points) * cols);
  std::vector<double> y(static_cast<size_t>(grid_points));
  for (int g = 0; g < grid_points; ++g) {
    const double lambda = 2.0 * (static_cast<double>(g) + 0.5) / grid_points;
    y[static_cast<size_t>(g)] = target(lambda);
    // Row g: value of each basis polynomial at lambda, extracted by
    // evaluating unit-coefficient filters incrementally via the recurrence.
    const double m = lambda - 1.0;
    double p_prev = 1.0;
    design[static_cast<size_t>(g) * cols + 0] = 1.0;
    if (degree >= 1) {
      const FirstTerm first = FirstOf(probe);
      double p_cur = first.dx * m + first.d0;
      design[static_cast<size_t>(g) * cols + 1] = p_cur;
      for (int k = 1; k < degree; ++k) {
        const Recurrence r = RecurrenceOf(probe, k);
        const double p_next = (r.cx * m + r.c0) * p_cur + r.cprev * p_prev;
        design[static_cast<size_t>(g) * cols + k + 1] = p_next;
        p_prev = p_cur;
        p_cur = p_next;
      }
    }
  }
  PolyFilter out = probe;
  out.coeffs = LeastSquares(design, grid_points, cols, y);
  return out;
}

double LowPassResponse(double lambda) { return 1.0 - lambda / 2.0; }
double HighPassResponse(double lambda) { return lambda / 2.0; }
double BandRejectResponse(double lambda) { return std::fabs(1.0 - lambda); }

}  // namespace sgnn::spectral
