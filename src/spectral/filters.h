#ifndef SGNN_SPECTRAL_FILTERS_H_
#define SGNN_SPECTRAL_FILTERS_H_

#include <functional>
#include <vector>

#include "graph/propagate.h"
#include "tensor/matrix.h"

namespace sgnn::spectral {

/// Polynomial spectral graph filters (§3.2.1).
///
/// All filters act on the symmetric-normalised operator
///   S = D^-1/2 A D^-1/2 (optionally with self loops), whose spectrum lies
/// in [-1, 1]; the normalised Laplacian is L = I - S with spectrum [0, 2].
/// A filter g is parameterised by coefficients over a polynomial basis and
/// applied as Z = g(L) X using only repeated S-multiplications, so cost is
/// O(K |E| d) regardless of basis — the scalability property the tutorial
/// highlights for spectral methods.

enum class PolyBasis {
  kMonomialAdj,  ///< sum_k theta_k S^k            (SGC/GPR-GNN style)
  kChebyshev,    ///< sum_k theta_k T_k(L - I)     (ChebNet style)
  kJacobi,       ///< sum_k theta_k P_k^{(a,b)}(L - I)  (universal basis)
};

/// A filter: basis + coefficients (+ Jacobi parameters when applicable).
struct PolyFilter {
  PolyBasis basis = PolyBasis::kMonomialAdj;
  std::vector<double> coeffs;  ///< coeffs[k] multiplies basis polynomial k.
  double jacobi_a = 0.0;
  double jacobi_b = 0.0;
};

/// Applies the filter to a feature matrix using `prop`, which must be the
/// kSymmetric normalisation of the graph.
tensor::Matrix ApplyFilter(const graph::Propagator& prop,
                           const PolyFilter& filter, const tensor::Matrix& x);

/// Evaluates the filter's scalar frequency response g(lambda) at a
/// normalised-Laplacian eigenvalue lambda in [0, 2]. `ApplyFilter` realises
/// exactly this response on each eigencomponent (tested property).
double EvaluateResponse(const PolyFilter& filter, double lambda);

/// Fits coefficients of `degree`+1 basis polynomials so the filter's
/// response approximates `target` over lambda in [0, 2] (least squares on
/// `grid_points` uniform samples). This is the AdaptKry-style adaptive
/// basis: one fitting routine serves any heterophily level by choosing the
/// target response.
PolyFilter FitFilter(PolyBasis basis, int degree,
                     const std::function<double(double)>& target,
                     int grid_points = 64, double jacobi_a = 0.0,
                     double jacobi_b = 0.0);

/// Canonical target responses.
double LowPassResponse(double lambda);   ///< (1 - lambda/2): homophily.
double HighPassResponse(double lambda);  ///< lambda/2: heterophily.
double BandRejectResponse(double lambda);  ///< |1 - lambda|: mid-band notch.

}  // namespace sgnn::spectral

#endif  // SGNN_SPECTRAL_FILTERS_H_
