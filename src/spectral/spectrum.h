#ifndef SGNN_SPECTRAL_SPECTRUM_H_
#define SGNN_SPECTRAL_SPECTRUM_H_

#include <cstdint>
#include <vector>

#include "graph/propagate.h"

namespace sgnn::spectral {

/// Spectrum estimation for the normalised Laplacian L = I - S, the
/// quantity behind coarsening-distortion metrics (E10) and adaptive filter
/// design (§3.2.1).

/// Dominant eigenvalue (by magnitude) of the operator S via power method.
/// Returns the Rayleigh-quotient estimate after `iters` iterations.
double PowerMethodDominant(const graph::Propagator& prop, int iters,
                           uint64_t seed);

/// Ritz approximations to eigenvalues of L = I - S from a `steps`-step
/// Lanczos process with full reorthogonalisation (exact when
/// steps >= num_nodes). Ascending order. The extreme Ritz values converge
/// to the extreme Laplacian eigenvalues.
std::vector<double> LanczosLaplacianSpectrum(const graph::Propagator& prop,
                                             int steps, uint64_t seed);

/// Spectral gap estimate: the smallest non-trivial Laplacian eigenvalue
/// (lambda_2) from a Lanczos run with the trivial eigenvector deflated.
double SpectralGap(const graph::Propagator& prop, int steps, uint64_t seed);

}  // namespace sgnn::spectral

#endif  // SGNN_SPECTRAL_SPECTRUM_H_
