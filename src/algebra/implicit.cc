#include "algebra/implicit.h"

#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace sgnn::algebra {

using tensor::Matrix;

Matrix NeumannSolve(const graph::Propagator& prop, const Matrix& x,
                    double gamma, double tol, int max_iters,
                    SolveStats* stats) {
  SGNN_CHECK(gamma >= 0.0 && gamma < 1.0);
  SGNN_CHECK_GE(max_iters, 1);
  SGNN_DCHECK_GT(tol, 0.0);
  SGNN_DCHECK_EQ(x.rows(), static_cast<int64_t>(prop.num_nodes()));
  Matrix z = x;        // Accumulated series.
  Matrix term = x;     // (gamma S)^k X.
  Matrix next;
  SolveStats local;
  for (int k = 0; k < max_iters; ++k) {
    prop.Apply(term, &next);
    tensor::Scale(static_cast<float>(gamma), &next);
    term = std::move(next);
    tensor::Axpy(1.0f, term, &z);
    ++local.iterations;
    double max_abs = 0.0;
    for (int64_t i = 0; i < term.size(); ++i) {
      max_abs = std::max(max_abs, std::fabs(static_cast<double>(term.data()[i])));
    }
    local.final_residual = max_abs;
    if (max_abs < tol) {
      local.converged = true;
      break;
    }
  }
  if (stats != nullptr) *stats = local;
  return z;
}

Matrix PicardSolve(const graph::Propagator& prop, const Matrix& x,
                   double gamma, double tol, int max_iters,
                   SolveStats* stats) {
  SGNN_CHECK(gamma >= 0.0 && gamma < 1.0);
  SGNN_CHECK_GE(max_iters, 1);
  SGNN_DCHECK_GT(tol, 0.0);
  SGNN_DCHECK_EQ(x.rows(), static_cast<int64_t>(prop.num_nodes()));
  Matrix z = x;
  Matrix sz;
  SolveStats local;
  for (int k = 0; k < max_iters; ++k) {
    prop.Apply(z, &sz);
    tensor::Scale(static_cast<float>(gamma), &sz);
    tensor::Axpy(1.0f, x, &sz);
    ++local.iterations;
    local.final_residual = tensor::MaxAbsDiff(z, sz);
    z = std::move(sz);
    if (local.final_residual < tol) {
      local.converged = true;
      break;
    }
  }
  if (stats != nullptr) *stats = local;
  return z;
}

Matrix MultiscaleImplicit(const graph::Propagator& prop, const Matrix& x,
                          double gamma, const std::vector<int>& scales,
                          double tol, int max_iters, SolveStats* stats) {
  SGNN_CHECK(!scales.empty());
  SGNN_DCHECK_GT(tol, 0.0);
  SGNN_DCHECK_EQ(x.rows(), static_cast<int64_t>(prop.num_nodes()));
  Matrix out(x.rows(), x.cols());
  SolveStats total;
  for (int m : scales) {
    SGNN_CHECK_GE(m, 1);
    // Solve Z = gamma S^m Z + X via Neumann on the m-hop operator.
    Matrix z = x;
    Matrix term = x;
    Matrix hop;
    SolveStats local;
    for (int k = 0; k < max_iters; ++k) {
      for (int h = 0; h < m; ++h) {
        prop.Apply(term, &hop);
        term = std::move(hop);
      }
      tensor::Scale(static_cast<float>(gamma), &term);
      tensor::Axpy(1.0f, term, &z);
      ++local.iterations;
      double max_abs = 0.0;
      for (int64_t i = 0; i < term.size(); ++i) {
        max_abs =
            std::max(max_abs, std::fabs(static_cast<double>(term.data()[i])));
      }
      local.final_residual = max_abs;
      if (max_abs < tol) {
        local.converged = true;
        break;
      }
    }
    tensor::Axpy(1.0f, z, &out);
    total.iterations += local.iterations;
    total.final_residual = std::max(total.final_residual, local.final_residual);
    total.converged = (m == scales.front()) ? local.converged
                                            : (total.converged && local.converged);
  }
  tensor::Scale(1.0f / static_cast<float>(scales.size()), &out);
  if (stats != nullptr) *stats = total;
  return out;
}

}  // namespace sgnn::algebra
