#ifndef SGNN_ALGEBRA_IMPLICIT_H_
#define SGNN_ALGEBRA_IMPLICIT_H_

#include "graph/propagate.h"
#include "tensor/matrix.h"

namespace sgnn::algebra {

/// Graph-algebra (implicit GNN) solvers (§3.2.3).
///
/// Implicit GNNs define embeddings as the equilibrium of
///   Z = gamma * S Z + X,
/// whose solution Z* = (I - gamma S)^{-1} X captures *all* path lengths in
/// a single "layer" — the multi-scale property EIGNN/MGNNI build on. With
/// the symmetric normalisation, ||S||_2 <= 1, so any gamma < 1 makes the
/// map a contraction and the Neumann series converges geometrically.

struct SolveStats {
  int iterations = 0;
  double final_residual = 0.0;  ///< Max-abs of the last increment.
  bool converged = false;
};

/// Solves Z = gamma S Z + X by the Neumann series
/// Z = sum_k (gamma S)^k X, truncated when the increment's max-abs entry
/// falls below `tol` (or after `max_iters` terms). Requires 0 <= gamma < 1.
tensor::Matrix NeumannSolve(const graph::Propagator& prop,
                            const tensor::Matrix& x, double gamma, double tol,
                            int max_iters, SolveStats* stats = nullptr);

/// Naive Picard iteration Z_{t+1} = gamma S Z_t + X from Z_0 = X; same
/// fixed point, kept as the baseline implicit solver (each step costs one
/// propagation but convergence is measured on iterates, not increments).
tensor::Matrix PicardSolve(const graph::Propagator& prop,
                           const tensor::Matrix& x, double gamma, double tol,
                           int max_iters, SolveStats* stats = nullptr);

/// MGNNI-style multiscale equilibrium: solves the implicit equation at
/// several propagation scales m (Z_m = gamma S^m Z_m + X) and sums the
/// solutions, widening the receptive field without deep stacking.
/// `scales` are hop counts, e.g. {1, 2, 4}.
tensor::Matrix MultiscaleImplicit(const graph::Propagator& prop,
                                  const tensor::Matrix& x, double gamma,
                                  const std::vector<int>& scales, double tol,
                                  int max_iters, SolveStats* stats = nullptr);

}  // namespace sgnn::algebra

#endif  // SGNN_ALGEBRA_IMPLICIT_H_
