#include "models/saint.h"

#include <algorithm>
#include <unordered_set>

#include "common/timer.h"
#include "graph/propagate.h"
#include "models/gcn.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "sampling/subgraph_sampler.h"

namespace sgnn::models {

using graph::NodeId;
using sampling::SampledSubgraph;
using tensor::Matrix;

ModelResult TrainSaint(const graph::CsrGraph& graph, const Matrix& x,
                       std::span<const int> labels, const NodeSplits& splits,
                       const nn::TrainConfig& config,
                       const SaintConfig& saint) {
  const int num_classes =
      1 + *std::max_element(labels.begin(), labels.end());
  common::ScopedCounterDelta counters;
  common::WallTimer timer;
  common::Rng rng(config.seed);

  // Inclusion-probability estimate for the loss normalisation: weight a
  // node's loss by 1/p(included) so the expected mini-batch gradient
  // matches the full-graph one.
  std::vector<double> inclusion;
  if (saint.norm_trials > 0) {
    common::Rng norm_rng(config.seed ^ 0x5151);
    if (saint.sampler == SaintConfig::Sampler::kNode) {
      inclusion = sampling::EstimateInclusionProbabilities(
          graph, saint.node_budget, saint.norm_trials, &norm_rng);
    } else {
      std::vector<int64_t> hits(graph.num_nodes(), 0);
      for (int t = 0; t < saint.norm_trials; ++t) {
        SampledSubgraph s = sampling::SampleSubgraphWalks(
            graph, saint.walk_roots, saint.walk_length, &norm_rng);
        for (NodeId u : s.nodes) hits[u]++;
      }
      inclusion.resize(graph.num_nodes());
      for (NodeId u = 0; u < graph.num_nodes(); ++u) {
        inclusion[u] = static_cast<double>(hits[u]) / saint.norm_trials;
      }
    }
  }

  Gcn model(x.cols(), config.hidden_dim, num_classes, config.dropout, &rng);
  nn::Adam opt(model.Params(), config.lr, 0.9, 0.999, 1e-8,
               config.weight_decay);
  EarlyStopTracker tracker(config.patience);
  std::unordered_set<NodeId> train_set(splits.train.begin(),
                                       splits.train.end());
  graph::Propagator full_prop(graph, graph::Normalization::kSymmetric, true);

  ModelResult result;
  result.name = saint.sampler == SaintConfig::Sampler::kWalk ? "saint_walk"
                                                             : "saint_node";
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    double epoch_loss = 0.0;
    int counted = 0;
    for (int b = 0; b < saint.batches_per_epoch; ++b) {
      SampledSubgraph sub =
          saint.sampler == SaintConfig::Sampler::kNode
              ? sampling::SampleSubgraphNodes(graph, saint.node_budget, &rng)
              : sampling::SampleSubgraphWalks(graph, saint.walk_roots,
                                              saint.walk_length, &rng);
      std::vector<NodeId> local_train;
      std::vector<float> weights;
      for (size_t i = 0; i < sub.nodes.size(); ++i) {
        const NodeId global = sub.nodes[i];
        if (train_set.count(global) == 0) continue;
        local_train.push_back(static_cast<NodeId>(i));
        float w = 1.0f;
        if (!inclusion.empty() && inclusion[global] > 0.0) {
          w = static_cast<float>(1.0 / inclusion[global]);
        }
        weights.push_back(w);
      }
      if (local_train.empty()) continue;

      graph::Propagator sub_prop(sub.subgraph,
                                 graph::Normalization::kSymmetric, true);
      std::vector<int64_t> gather(sub.nodes.begin(), sub.nodes.end());
      Matrix sub_x = x.GatherRows(gather);
      const uint64_t resident = static_cast<uint64_t>(sub_x.size());
      common::GlobalCounters().Acquire(resident);
      std::vector<int> sub_labels(sub.nodes.size());
      for (size_t i = 0; i < sub.nodes.size(); ++i) {
        sub_labels[i] = labels[sub.nodes[i]];
      }
      model.ZeroGrad();
      epoch_loss += model.TrainStepWeighted(sub_prop, sub_x, sub_labels,
                                            local_train, weights, &rng);
      opt.Step();
      common::GlobalCounters().Release(resident);
      ++counted;
    }
    if (counted > 0) result.report.final_train_loss = epoch_loss / counted;
    result.report.epochs_run = epoch + 1;

    Matrix logits = model.Predict(full_prop, x);
    const double val = nn::Accuracy(logits, labels, splits.val);
    const double test = nn::Accuracy(logits, labels, splits.test);
    if (tracker.Update(val, test)) break;
  }
  result.report.best_val_accuracy = tracker.best_val();
  result.report.test_accuracy = tracker.test_at_best();
  result.report.train_seconds = timer.Seconds();
  result.ops = counters.Delta();
  return result;
}

}  // namespace sgnn::models
