#ifndef SGNN_MODELS_SAINT_H_
#define SGNN_MODELS_SAINT_H_

#include <span>

#include "models/api.h"

namespace sgnn::models {

/// GraphSAINT-style subgraph-sampled training (§3.3.2 "subgraph-level"):
/// per step, draw a subgraph (random-walk or uniform-node sampler), run a
/// full GCN step on it, and normalise the loss by estimated node
/// inclusion probabilities so the mini-batch gradient stays (close to)
/// unbiased. Completes the sampling family next to node-wise (SAGE) and
/// layer-wise (FastGCN) training.
struct SaintConfig {
  enum class Sampler { kNode, kWalk };
  Sampler sampler = Sampler::kWalk;
  int64_t node_budget = 512;   ///< For the node sampler.
  int walk_roots = 64;         ///< For the walk sampler.
  int walk_length = 8;
  int batches_per_epoch = 8;
  /// Trials used to estimate inclusion probabilities for the loss
  /// normalisation (0 disables normalisation).
  int norm_trials = 20;
};

ModelResult TrainSaint(const graph::CsrGraph& graph, const tensor::Matrix& x,
                       std::span<const int> labels, const NodeSplits& splits,
                       const nn::TrainConfig& config,
                       const SaintConfig& saint = SaintConfig());

}  // namespace sgnn::models

#endif  // SGNN_MODELS_SAINT_H_
