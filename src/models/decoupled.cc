#include "models/decoupled.h"

#include <algorithm>

#include "algebra/implicit.h"
#include "common/check.h"
#include "common/timer.h"
#include "graph/propagate.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "ppr/feature_propagation.h"
#include "ppr/ppr.h"
#include "spectral/embeddings.h"
#include "tensor/ops.h"

namespace sgnn::models {

using graph::Propagator;
using tensor::Matrix;

namespace {

int NumClasses(std::span<const int> labels) {
  return 1 + *std::max_element(labels.begin(), labels.end());
}

/// Shared tail for precompute-style models: train an MLP head on fixed
/// embeddings and package the result, keeping the fitted head so the run
/// can be frozen into an inference artifact (`serve::FrozenModel`).
ModelResult FitHead(const char* name, const Matrix& embeddings,
                    std::span<const int> labels, const NodeSplits& splits,
                    const nn::TrainConfig& config,
                    common::ScopedCounterDelta* counters,
                    common::WallTimer* timer) {
  common::Rng rng(config.seed);
  auto head = std::make_shared<nn::Mlp>(
      std::vector<int64_t>{embeddings.cols(), config.hidden_dim,
                           static_cast<int64_t>(NumClasses(labels))},
      config.dropout, &rng);
  ModelResult result;
  result.name = name;
  result.report = nn::TrainMlpOnEmbeddings(head.get(), embeddings, labels,
                                           splits.train, splits.val,
                                           splits.test, config);
  result.report.train_seconds = timer->Seconds();
  result.ops = counters->Delta();
  result.fitted_head = std::move(head);
  return result;
}

}  // namespace

ModelResult TrainSgc(const graph::CsrGraph& graph, const Matrix& x,
                     std::span<const int> labels, const NodeSplits& splits,
                     const nn::TrainConfig& config, const SgcConfig& sgc) {
  common::ScopedCounterDelta counters;
  common::WallTimer timer;
  Propagator prop(graph, graph::Normalization::kSymmetric, true);
  Matrix embeddings = graph::PropagateKHops(prop, x, sgc.hops);
  return FitHead("sgc", embeddings, labels, splits, config, &counters,
                 &timer);
}

ModelResult TrainSpectralDecoupled(const graph::CsrGraph& graph,
                                   const Matrix& x,
                                   std::span<const int> labels,
                                   const NodeSplits& splits,
                                   const nn::TrainConfig& config,
                                   const SpectralDecoupledConfig& spectral) {
  common::ScopedCounterDelta counters;
  common::WallTimer timer;
  Propagator prop(graph, graph::Normalization::kSymmetric, true);
  spectral::CombinedEmbeddingConfig embed;
  embed.hops = spectral.hops;
  embed.alpha = spectral.alpha;
  embed.include_high_pass = spectral.include_high_pass;
  Matrix embeddings = spectral::CombinedEmbeddings(prop, x, embed);
  return FitHead("spectral_decoupled", embeddings, labels, splits, config,
                 &counters, &timer);
}

ModelResult TrainLabelProp(const graph::CsrGraph& graph, const Matrix& x,
                           std::span<const int> labels,
                           const NodeSplits& splits,
                           const nn::TrainConfig& config,
                           const LabelPropConfig& lp) {
  (void)x;  // Feature-free by design.
  SGNN_CHECK(lp.alpha > 0.0 && lp.alpha <= 1.0);
  SGNN_CHECK_GE(lp.iterations, 1);
  common::ScopedCounterDelta counters;
  common::WallTimer timer;
  const int num_classes = NumClasses(labels);

  Propagator prop(graph, graph::Normalization::kSymmetric, true);
  Matrix y0(static_cast<int64_t>(graph.num_nodes()), num_classes);
  for (graph::NodeId u : splits.train) {
    y0.at(static_cast<int64_t>(u), labels[u]) = 1.0f;
  }
  Matrix y = y0;
  Matrix sy;
  for (int it = 0; it < lp.iterations; ++it) {
    prop.Apply(y, &sy);
    tensor::Scale(static_cast<float>(1.0 - lp.alpha), &sy);
    tensor::Axpy(static_cast<float>(lp.alpha), y0, &sy);
    y = std::move(sy);
    // Clamp the training rows back to their one-hot labels.
    for (graph::NodeId u : splits.train) {
      auto row = y.Row(static_cast<int64_t>(u));
      std::fill(row.begin(), row.end(), 0.0f);
      row[labels[u]] = 1.0f;
    }
  }

  ModelResult result;
  result.name = "label_prop";
  result.report.epochs_run = lp.iterations;
  result.report.best_val_accuracy = nn::Accuracy(y, labels, splits.val);
  result.report.test_accuracy = nn::Accuracy(y, labels, splits.test);
  result.report.train_seconds = timer.Seconds();
  (void)config;
  result.ops = counters.Delta();
  return result;
}

ModelResult TrainPprgo(const graph::CsrGraph& graph, const Matrix& x,
                       std::span<const int> labels, const NodeSplits& splits,
                       const nn::TrainConfig& config,
                       const PprgoConfig& pprgo) {
  common::ScopedCounterDelta counters;
  common::WallTimer timer;
  // Per-node sparse propagation: embedding(u) = sum over u's top-k PPR
  // neighbours v of pi_u(v) * x[v]. Push cost is independent of n for
  // fixed alpha/r_max, which is PPRGo's scalability argument.
  Matrix embeddings(x.rows(), x.cols());
  for (graph::NodeId u = 0; u < graph.num_nodes(); ++u) {
    auto top = ppr::TopKPpr(graph, u, pprgo.alpha, pprgo.top_k, pprgo.r_max);
    auto out = embeddings.Row(static_cast<int64_t>(u));
    for (const auto& [v, mass] : top) {
      auto row = x.Row(static_cast<int64_t>(v));
      for (int64_t c = 0; c < x.cols(); ++c) {
        out[c] += static_cast<float>(mass) * row[c];
      }
    }
  }
  return FitHead("pprgo", embeddings, labels, splits, config, &counters,
                 &timer);
}

ModelResult TrainSign(const graph::CsrGraph& graph, const Matrix& x,
                      std::span<const int> labels, const NodeSplits& splits,
                      const nn::TrainConfig& config, const SignConfig& sign) {
  SGNN_CHECK_GE(sign.hops, 1);
  common::ScopedCounterDelta counters;
  common::WallTimer timer;
  Propagator prop(graph, graph::Normalization::kSymmetric, true);
  Matrix embeddings = x;
  Matrix hop = x;
  Matrix next;
  for (int k = 0; k < sign.hops; ++k) {
    prop.Apply(hop, &next);
    hop = std::move(next);
    embeddings = tensor::ConcatCols(embeddings, hop);
  }
  return FitHead("sign", embeddings, labels, splits, config, &counters,
                 &timer);
}

ModelResult TrainImplicit(const graph::CsrGraph& graph, const Matrix& x,
                          std::span<const int> labels,
                          const NodeSplits& splits,
                          const nn::TrainConfig& config,
                          const ImplicitConfig& implicit) {
  common::ScopedCounterDelta counters;
  common::WallTimer timer;
  Propagator prop(graph, graph::Normalization::kSymmetric, true);
  Matrix equilibrium = algebra::MultiscaleImplicit(
      prop, x, implicit.gamma, implicit.scales, implicit.tol,
      implicit.max_iters);
  // Scale the equilibrium to unit rows: Neumann magnitudes grow with
  // 1/(1-gamma) and would otherwise dominate the head's init scale.
  tensor::NormalizeRows(2, &equilibrium);
  return FitHead("implicit", equilibrium, labels, splits, config, &counters,
                 &timer);
}

ModelResult TrainAppnp(const graph::CsrGraph& graph, const Matrix& x,
                       std::span<const int> labels, const NodeSplits& splits,
                       const nn::TrainConfig& config,
                       const AppnpConfig& appnp) {
  common::ScopedCounterDelta counters;
  common::WallTimer timer;
  common::Rng rng(config.seed);
  const int num_classes = NumClasses(labels);
  Propagator prop(graph, graph::Normalization::kSymmetric, true);
  nn::Mlp mlp({x.cols(), config.hidden_dim,
               static_cast<int64_t>(num_classes)},
              config.dropout, &rng);
  nn::Adam opt(mlp.Params(), config.lr, 0.9, 0.999, 1e-8,
               config.weight_decay);
  EarlyStopTracker tracker(config.patience);

  ModelResult result;
  result.name = "appnp";
  // APPNP trains full-batch: MLP activations plus propagated logits are
  // resident for every node (the memory profile that motivates PPRGo's
  // per-node sparse variant).
  const uint64_t resident = static_cast<uint64_t>(
      2 * x.rows() * (config.hidden_dim + num_classes));
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    common::GlobalCounters().Acquire(resident);
    Matrix h;
    mlp.Forward(x, /*training=*/true, &rng, &h);
    Matrix logits =
        ppr::AppnpPropagate(prop, h, appnp.alpha, appnp.hops);
    Matrix dlogits;
    result.report.final_train_loss =
        nn::SoftmaxCrossEntropy(logits, labels, splits.train, &dlogits);
    // The propagation operator P = sum_k alpha(1-alpha)^k S^k is symmetric,
    // so dH = P dlogits is computed by the same routine.
    Matrix dh = ppr::AppnpPropagate(prop, dlogits, appnp.alpha, appnp.hops);
    mlp.ZeroGrad();
    mlp.Backward(dh, nullptr);
    opt.Step();
    common::GlobalCounters().Release(resident);
    result.report.epochs_run = epoch + 1;

    Matrix h_eval;
    mlp.Forward(x, /*training=*/false, nullptr, &h_eval);
    Matrix eval_logits =
        ppr::AppnpPropagate(prop, h_eval, appnp.alpha, appnp.hops);
    const double val = nn::Accuracy(eval_logits, labels, splits.val);
    const double test = nn::Accuracy(eval_logits, labels, splits.test);
    if (tracker.Update(val, test)) break;
  }
  result.report.best_val_accuracy = tracker.best_val();
  result.report.test_accuracy = tracker.test_at_best();
  result.report.train_seconds = timer.Seconds();
  result.ops = counters.Delta();
  return result;
}

}  // namespace sgnn::models
