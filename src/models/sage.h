#ifndef SGNN_MODELS_SAGE_H_
#define SGNN_MODELS_SAGE_H_

#include <span>

#include "models/api.h"
#include "nn/linear.h"
#include "sampling/block.h"

namespace sgnn::models {

/// GraphSAGE (Hamilton et al.) with mean aggregation: the canonical
/// node-wise-sampled mini-batch GNN of §3.1.2/§3.3.2. Per layer,
///   h'_v = ReLU(W_self h_v + W_nbr mean_{u in sampled N(v)} h_u + b),
/// trained on blocks produced by `sampling::SampleNodeWise` (or any
/// compatible sampler: LABOR works unchanged).
class SageModel {
 public:
  /// `dims` = {in, hidden..., out}: one Sage layer per consecutive pair.
  SageModel(const std::vector<int64_t>& dims, double dropout,
            common::Rng* rng);

  /// Forward + masked-CE backward over one sampled mini-batch whose
  /// `batch.layers.size()` equals the number of Sage layers.
  /// `input_features` are rows for `batch.input_nodes()`, gathered by the
  /// caller. Loss is over all seeds. Returns the loss.
  double TrainStep(const sampling::MiniBatch& batch,
                   const tensor::Matrix& input_features,
                   std::span<const int> seed_labels, common::Rng* rng);

  /// Full-graph inference: exact mean aggregation per layer.
  tensor::Matrix Predict(const graph::CsrGraph& graph,
                         const tensor::Matrix& x);

  void ZeroGrad();
  std::vector<nn::ParamRef> Params();
  int num_layers() const { return static_cast<int>(self_.size()); }

 private:
  std::vector<nn::Linear> self_;
  std::vector<nn::Linear> nbr_;
  double dropout_;
};

/// Mini-batch GraphSAGE training with node-wise sampling.
struct SageConfig {
  std::vector<int> fanouts = {10, 10};
  bool use_labor = false;  ///< Swap in the LABOR sampler.
};
ModelResult TrainSage(const graph::CsrGraph& graph, const tensor::Matrix& x,
                      std::span<const int> labels, const NodeSplits& splits,
                      const nn::TrainConfig& config,
                      const SageConfig& sage = SageConfig());

}  // namespace sgnn::models

#endif  // SGNN_MODELS_SAGE_H_
