#include "models/gcn.h"

#include <algorithm>

#include "common/check.h"
#include "common/timer.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace sgnn::models {

using graph::Propagator;
using tensor::Matrix;

Gcn::Gcn(int64_t in_dim, int64_t hidden_dim, int64_t out_dim, double dropout,
         common::Rng* rng)
    : l0_(in_dim, hidden_dim, rng),
      l1_(hidden_dim, out_dim, rng),
      dropout_(dropout) {}

double Gcn::TrainStep(const Propagator& prop, const Matrix& x,
                      std::span<const int> labels,
                      std::span<const graph::NodeId> loss_rows,
                      common::Rng* rng) {
  return TrainStepWeighted(prop, x, labels, loss_rows, {}, rng);
}

double Gcn::TrainStepWeighted(const Propagator& prop, const Matrix& x,
                              std::span<const int> labels,
                              std::span<const graph::NodeId> loss_rows,
                              std::span<const float> loss_weights,
                              common::Rng* rng) {
  // Resident-activation accounting for the E13 memory comparison: a
  // full-batch step materialises hidden and logit activations (and their
  // gradients) for every node of the graph passed in.
  const uint64_t resident =
      2 * static_cast<uint64_t>(x.rows()) *
      static_cast<uint64_t>(l0_.out_dim() + l1_.out_dim());
  common::GlobalCounters().Acquire(resident);
  // Forward: t0 = X W0 + b0; h_pre = S t0; h = dropout(relu(h_pre));
  //          t1 = h W1 + b1; logits = S t1.
  Matrix t0;
  l0_.Forward(x, &t0);
  Matrix h_pre;
  prop.Apply(t0, &h_pre);
  Matrix h = h_pre;
  tensor::Relu(&h);
  Matrix mask;
  nn::DropoutForward(dropout_, /*training=*/true, rng, &h, &mask);
  Matrix t1;
  l1_.Forward(h, &t1);
  Matrix logits;
  prop.Apply(t1, &logits);

  Matrix dlogits;
  const double loss =
      loss_weights.empty()
          ? nn::SoftmaxCrossEntropy(logits, labels, loss_rows, &dlogits)
          : nn::SoftmaxCrossEntropyWeighted(logits, labels, loss_rows,
                                            loss_weights, &dlogits);

  // Backward (S is symmetric, so S^T = S).
  Matrix dt1;
  prop.Apply(dlogits, &dt1);
  Matrix dh;
  l1_.Backward(h, dt1, &dh);
  nn::DropoutBackward(mask, &dh);
  tensor::ReluBackward(h_pre, &dh);
  Matrix dt0;
  prop.Apply(dh, &dt0);
  l0_.Backward(x, dt0, nullptr);
  common::GlobalCounters().Release(resident);
  return loss;
}

Matrix Gcn::Predict(const Propagator& prop, const Matrix& x) {
  Matrix t0;
  l0_.Forward(x, &t0);
  Matrix h;
  prop.Apply(t0, &h);
  tensor::Relu(&h);
  Matrix t1;
  l1_.Forward(h, &t1);
  Matrix logits;
  prop.Apply(t1, &logits);
  return logits;
}

void Gcn::ZeroGrad() {
  l0_.ZeroGrad();
  l1_.ZeroGrad();
}

std::vector<nn::ParamRef> Gcn::Params() {
  std::vector<nn::ParamRef> params = l0_.Params();
  for (const nn::ParamRef& p : l1_.Params()) params.push_back(p);
  return params;
}

ModelResult TrainGcn(const graph::CsrGraph& graph, const Matrix& x,
                     std::span<const int> labels, const NodeSplits& splits,
                     const nn::TrainConfig& config, const GcnConfig& gcn) {
  const int num_classes =
      1 + *std::max_element(labels.begin(), labels.end());
  common::Rng rng(config.seed);
  common::ScopedCounterDelta counters;
  common::WallTimer timer;

  Propagator prop(graph, graph::Normalization::kSymmetric, gcn.self_loops);
  Gcn model(x.cols(), config.hidden_dim, num_classes, config.dropout, &rng);
  nn::Adam opt(model.Params(), config.lr, 0.9, 0.999, 1e-8,
               config.weight_decay);
  EarlyStopTracker tracker(config.patience);

  ModelResult result;
  result.name = "gcn";
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    model.ZeroGrad();
    result.report.final_train_loss =
        model.TrainStep(prop, x, labels, splits.train, &rng);
    opt.Step();
    result.report.epochs_run = epoch + 1;

    Matrix logits = model.Predict(prop, x);
    const double val = nn::Accuracy(logits, labels, splits.val);
    const double test = nn::Accuracy(logits, labels, splits.test);
    if (tracker.Update(val, test)) break;
  }
  result.report.best_val_accuracy = tracker.best_val();
  result.report.test_accuracy = tracker.test_at_best();
  result.report.train_seconds = timer.Seconds();
  result.ops = counters.Delta();
  return result;
}

}  // namespace sgnn::models
