#ifndef SGNN_MODELS_CLUSTER_GCN_H_
#define SGNN_MODELS_CLUSTER_GCN_H_

#include <span>

#include "models/api.h"

namespace sgnn::models {

/// Cluster-GCN (Chiang et al.): partition the graph once, then run
/// full-GCN steps on induced subgraphs of a few merged parts per batch —
/// partition-based mini-batching (§3.1.2 "Graph Partition"). Activation
/// memory is bounded by the batch subgraph, not the whole graph (E13).
struct ClusterGcnConfig {
  int num_parts = 16;
  int parts_per_batch = 2;
  bool use_multilevel = true;  ///< false = LDG streaming partitioner.
};

ModelResult TrainClusterGcn(const graph::CsrGraph& graph,
                            const tensor::Matrix& x,
                            std::span<const int> labels,
                            const NodeSplits& splits,
                            const nn::TrainConfig& config,
                            const ClusterGcnConfig& cluster =
                                ClusterGcnConfig());

}  // namespace sgnn::models

#endif  // SGNN_MODELS_CLUSTER_GCN_H_
