#include "models/api.h"

#include "common/check.h"
#include "common/rng.h"

namespace sgnn::models {

NodeSplits MakeSplits(graph::NodeId num_nodes, double train_frac,
                      double val_frac, uint64_t seed) {
  SGNN_CHECK(train_frac > 0.0 && val_frac > 0.0);
  SGNN_CHECK(train_frac + val_frac < 1.0);
  common::Rng rng(seed);
  std::vector<graph::NodeId> order(num_nodes);
  for (graph::NodeId u = 0; u < num_nodes; ++u) order[u] = u;
  rng.Shuffle(&order);
  const size_t train_end =
      static_cast<size_t>(train_frac * static_cast<double>(num_nodes));
  const size_t val_end = train_end + static_cast<size_t>(
      val_frac * static_cast<double>(num_nodes));
  NodeSplits splits;
  splits.train.assign(order.begin(), order.begin() + static_cast<int64_t>(train_end));
  splits.val.assign(order.begin() + static_cast<int64_t>(train_end),
                    order.begin() + static_cast<int64_t>(val_end));
  splits.test.assign(order.begin() + static_cast<int64_t>(val_end), order.end());
  SGNN_CHECK(!splits.train.empty());
  SGNN_CHECK(!splits.val.empty());
  SGNN_CHECK(!splits.test.empty());
  return splits;
}

}  // namespace sgnn::models
