#ifndef SGNN_MODELS_GRAPH_TRANSFORMER_H_
#define SGNN_MODELS_GRAPH_TRANSFORMER_H_

#include <span>

#include "models/api.h"

namespace sgnn::models {

/// DHIL-GT-style scalable graph Transformer (§3.2.2 hub labelling +
/// §3.4.1 graph Transformers): node tokens attend to a small anchor set
/// with an additive shortest-path-distance bias answered by a hub-label
/// index, so topology enters through O(1) index queries instead of
/// message passing, and attention cost is O(n * anchors), not O(n^2).
///
///   logits = (ReLU(Attn(X, X_anchors, -beta * SPD) + X W_skip)) W_out
struct GraphTransformerConfig {
  int num_anchors = 32;
  /// Anchor selection: highest-degree nodes (the hub-label ordering) when
  /// true, uniform random when false.
  bool degree_anchors = true;
  /// SPD bias strength; 0 disables the structural bias entirely (the
  /// ablation of the DHIL-GT claim).
  double spd_beta = 1.0;
  /// Bias assigned to disconnected (unreachable) node-anchor pairs.
  double unreachable_bias = -30.0;
  /// DHIL-GT also derives *token* features from the label index: each
  /// node token is extended with exp(-spd(u, anchor_j)/2) for the first
  /// `spd_encoding_dim` anchors (a hub-label positional encoding).
  /// 0 disables the encoding (tokens are raw features only).
  int spd_encoding_dim = 8;
};

ModelResult TrainGraphTransformer(
    const graph::CsrGraph& graph, const tensor::Matrix& x,
    std::span<const int> labels, const NodeSplits& splits,
    const nn::TrainConfig& config,
    const GraphTransformerConfig& gt = GraphTransformerConfig());

}  // namespace sgnn::models

#endif  // SGNN_MODELS_GRAPH_TRANSFORMER_H_
