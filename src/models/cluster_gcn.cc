#include "models/cluster_gcn.h"

#include <algorithm>
#include <unordered_set>

#include "common/timer.h"
#include "graph/propagate.h"
#include "models/gcn.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "partition/partition.h"

namespace sgnn::models {

using graph::NodeId;
using tensor::Matrix;

ModelResult TrainClusterGcn(const graph::CsrGraph& graph, const Matrix& x,
                            std::span<const int> labels,
                            const NodeSplits& splits,
                            const nn::TrainConfig& config,
                            const ClusterGcnConfig& cluster) {
  const int num_classes =
      1 + *std::max_element(labels.begin(), labels.end());
  common::ScopedCounterDelta counters;
  common::WallTimer timer;
  common::Rng rng(config.seed);

  // One-time partitioning (the preprocessing the method amortises).
  partition::Partition parts =
      cluster.use_multilevel
          ? partition::MultilevelPartition(graph, cluster.num_parts,
                                           partition::MultilevelConfig{},
                                           config.seed)
          : partition::LdgPartition(graph, cluster.num_parts, 1.1,
                                    config.seed);

  Gcn model(x.cols(), config.hidden_dim, num_classes, config.dropout, &rng);
  nn::Adam opt(model.Params(), config.lr, 0.9, 0.999, 1e-8,
               config.weight_decay);
  EarlyStopTracker tracker(config.patience);
  std::unordered_set<NodeId> train_set(splits.train.begin(),
                                       splits.train.end());
  graph::Propagator full_prop(graph, graph::Normalization::kSymmetric, true);

  ModelResult result;
  result.name = "cluster_gcn";
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    auto batches = partition::ClusterBatches(parts, cluster.parts_per_batch,
                                             rng.engine()());
    double epoch_loss = 0.0;
    int counted = 0;
    for (const auto& batch_nodes : batches) {
      // Track peak resident activations: batch features + two layers.
      std::vector<NodeId> local_train;
      for (size_t i = 0; i < batch_nodes.size(); ++i) {
        if (train_set.count(batch_nodes[i]) > 0) {
          local_train.push_back(static_cast<NodeId>(i));
        }
      }
      if (local_train.empty()) continue;
      graph::CsrGraph sub = graph.InducedSubgraph(batch_nodes);
      graph::Propagator sub_prop(sub, graph::Normalization::kSymmetric, true);
      std::vector<int64_t> gather(batch_nodes.begin(), batch_nodes.end());
      Matrix sub_x = x.GatherRows(gather);
      // Batch features are resident alongside the activations that
      // Gcn::TrainStep accounts for itself.
      const uint64_t resident = static_cast<uint64_t>(sub_x.size());
      common::GlobalCounters().Acquire(resident);
      std::vector<int> sub_labels(batch_nodes.size());
      for (size_t i = 0; i < batch_nodes.size(); ++i) {
        sub_labels[i] = labels[batch_nodes[i]];
      }
      model.ZeroGrad();
      epoch_loss +=
          model.TrainStep(sub_prop, sub_x, sub_labels, local_train, &rng);
      opt.Step();
      common::GlobalCounters().Release(resident);
      ++counted;
    }
    if (counted > 0) {
      result.report.final_train_loss = epoch_loss / counted;
    }
    result.report.epochs_run = epoch + 1;

    Matrix logits = model.Predict(full_prop, x);
    const double val = nn::Accuracy(logits, labels, splits.val);
    const double test = nn::Accuracy(logits, labels, splits.test);
    if (tracker.Update(val, test)) break;
  }
  result.report.best_val_accuracy = tracker.best_val();
  result.report.test_accuracy = tracker.test_at_best();
  result.report.train_seconds = timer.Seconds();
  result.ops = counters.Delta();
  return result;
}

}  // namespace sgnn::models
