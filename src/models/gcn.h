#ifndef SGNN_MODELS_GCN_H_
#define SGNN_MODELS_GCN_H_

#include <span>

#include "graph/propagate.h"
#include "models/api.h"
#include "nn/linear.h"

namespace sgnn::models {

/// Two-layer graph convolutional network (Kipf & Welling):
///   logits = S ReLU(S X W0 + b0) W1 + b1,  S = D̃^-1/2 Ã D̃^-1/2.
/// The canonical *coupled* design whose full-graph propagation per
/// optimisation step is the scalability baseline of §3.1 — every scalable
/// model in the zoo is an answer to this one's cost profile.
class Gcn {
 public:
  Gcn(int64_t in_dim, int64_t hidden_dim, int64_t out_dim, double dropout,
      common::Rng* rng);

  /// One full-batch training step (forward, masked CE on `loss_rows`,
  /// backward; gradients accumulate in the layers). Returns the loss.
  /// `prop` must be the kSymmetric operator of the training graph (any
  /// graph whose node count matches `x`; Cluster-GCN passes subgraphs).
  double TrainStep(const graph::Propagator& prop, const tensor::Matrix& x,
                   std::span<const int> labels,
                   std::span<const graph::NodeId> loss_rows, common::Rng* rng);

  /// As `TrainStep` but with per-row loss weights (GraphSAINT inclusion
  /// normalisation). `loss_weights` aligns with `loss_rows`.
  double TrainStepWeighted(const graph::Propagator& prop,
                           const tensor::Matrix& x,
                           std::span<const int> labels,
                           std::span<const graph::NodeId> loss_rows,
                           std::span<const float> loss_weights,
                           common::Rng* rng);

  /// Inference logits (no dropout).
  tensor::Matrix Predict(const graph::Propagator& prop,
                         const tensor::Matrix& x);

  void ZeroGrad();
  std::vector<nn::ParamRef> Params();

 private:
  nn::Linear l0_;
  nn::Linear l1_;
  double dropout_;
};

/// Full-batch GCN training with early stopping on validation accuracy.
struct GcnConfig {
  /// The "renormalisation trick" (A + I with adjusted degrees). Exposed
  /// for the E14 ablation; on by default as in the original model.
  bool self_loops = true;
};
ModelResult TrainGcn(const graph::CsrGraph& graph, const tensor::Matrix& x,
                     std::span<const int> labels, const NodeSplits& splits,
                     const nn::TrainConfig& config,
                     const GcnConfig& gcn = GcnConfig());

}  // namespace sgnn::models

#endif  // SGNN_MODELS_GCN_H_
