#ifndef SGNN_MODELS_DECOUPLED_H_
#define SGNN_MODELS_DECOUPLED_H_

#include <span>

#include "models/api.h"

namespace sgnn::models {

/// Decoupled models (§3.1.2 "Decoupled Graph Propagation", §3.2): graph
/// propagation is performed once outside the training loop (or on logits
/// only), so training itself is mini-batchable MLP work.

/// SGC (Wu et al.): logistic regression / MLP on the precomputed
/// K-hop-smoothed features S^K X.
struct SgcConfig {
  int hops = 2;
};
ModelResult TrainSgc(const graph::CsrGraph& graph, const tensor::Matrix& x,
                     std::span<const int> labels, const NodeSplits& splits,
                     const nn::TrainConfig& config,
                     const SgcConfig& sgc = SgcConfig());

/// APPNP (Klicpera et al.): logits = PPR_K(MLP(X)). The propagation is a
/// fixed linear operator applied to the MLP output, so the backward pass
/// applies the same (symmetric) operator to the loss gradient.
struct AppnpConfig {
  double alpha = 0.15;
  int hops = 10;
};
ModelResult TrainAppnp(const graph::CsrGraph& graph, const tensor::Matrix& x,
                       std::span<const int> labels, const NodeSplits& splits,
                       const nn::TrainConfig& config,
                       const AppnpConfig& appnp = AppnpConfig());

/// LD2-style decoupled spectral model: multi-channel embeddings
/// (identity + low-pass + high-pass) precomputed once, MLP on top; the
/// heterophily-capable decoupled design of §3.2.1.
struct SpectralDecoupledConfig {
  int hops = 4;
  double alpha = 0.15;
  bool include_high_pass = true;
};
ModelResult TrainSpectralDecoupled(
    const graph::CsrGraph& graph, const tensor::Matrix& x,
    std::span<const int> labels, const NodeSplits& splits,
    const nn::TrainConfig& config,
    const SpectralDecoupledConfig& spectral = SpectralDecoupledConfig());

/// Label propagation: no learned parameters at all — train labels are
/// smoothed over the graph, Y_{t+1} = (1-alpha) S Y_t + alpha Y_0 with
/// train rows clamped. The classical graph-data-management baseline for
/// the insufficient-label regime of §3.4.2 ("Learning Data Efficiency"):
/// with very few labels and noisy features it can beat trained models.
struct LabelPropConfig {
  double alpha = 0.1;  ///< Weight pulled back toward the clamped labels.
  int iterations = 50;
};
ModelResult TrainLabelProp(const graph::CsrGraph& graph,
                           const tensor::Matrix& x,
                           std::span<const int> labels,
                           const NodeSplits& splits,
                           const nn::TrainConfig& config,
                           const LabelPropConfig& lp = LabelPropConfig());

/// PPRGo/SCARA-style top-k PPR model: each node's embedding is a sparse
/// combination of the raw features of its top-k PPR neighbours (computed
/// by forward push, so preprocessing is sublinear per node); an MLP head
/// trains on the result. The node-level propagation-sparsification design
/// of §3.3.1.
struct PprgoConfig {
  double alpha = 0.15;
  int top_k = 32;
  double r_max = 1e-4;
};
ModelResult TrainPprgo(const graph::CsrGraph& graph, const tensor::Matrix& x,
                       std::span<const int> labels, const NodeSplits& splits,
                       const nn::TrainConfig& config,
                       const PprgoConfig& pprgo = PprgoConfig());

/// SIGN/GAMLP-style multi-hop concatenation: embeddings are
/// [X | SX | S^2 X | ... | S^K X]; the MLP head learns its own per-hop
/// weighting (the learnable multi-scale attention GAMLP decouples,
/// §3.3.1 "Subgraph-level").
struct SignConfig {
  int hops = 3;
};
ModelResult TrainSign(const graph::CsrGraph& graph, const tensor::Matrix& x,
                      std::span<const int> labels, const NodeSplits& splits,
                      const nn::TrainConfig& config,
                      const SignConfig& sign = SignConfig());

/// EIGNN/MGNNI-style implicit model: embeddings are the equilibrium
/// (I - gamma S)^-1 X (optionally at several scales), then an MLP.
struct ImplicitConfig {
  double gamma = 0.8;
  std::vector<int> scales = {1};
  double tol = 1e-5;
  int max_iters = 200;
};
ModelResult TrainImplicit(const graph::CsrGraph& graph,
                          const tensor::Matrix& x,
                          std::span<const int> labels,
                          const NodeSplits& splits,
                          const nn::TrainConfig& config,
                          const ImplicitConfig& implicit = ImplicitConfig());

}  // namespace sgnn::models

#endif  // SGNN_MODELS_DECOUPLED_H_
