#ifndef SGNN_MODELS_API_H_
#define SGNN_MODELS_API_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/counters.h"
#include "graph/csr_graph.h"
#include "nn/trainer.h"
#include "tensor/matrix.h"

namespace sgnn::models {

/// Train/validation/test node splits shared by every model.
struct NodeSplits {
  std::vector<graph::NodeId> train;
  std::vector<graph::NodeId> val;
  std::vector<graph::NodeId> test;
};

/// Random split with the given fractions (remainder becomes test).
NodeSplits MakeSplits(graph::NodeId num_nodes, double train_frac,
                      double val_frac, uint64_t seed);

/// Uniform result record for the model zoo: training metrics plus the
/// hardware-independent work counters accumulated during fit + final eval
/// (the quantities E12/E13 compare across models).
struct ModelResult {
  std::string name;
  nn::TrainReport report;
  common::OpCounters ops;
  /// The fitted classification head, populated by decoupled trainers whose
  /// inference path is "propagate, then MLP" (SGC, SIGN, PPRGo, spectral,
  /// implicit). Shared so results stay copyable; null for models whose
  /// forward pass is not a plain MLP over precomputed embeddings. This is
  /// the hook `serve::FrozenModel` freezes for online inference.
  std::shared_ptr<nn::Mlp> fitted_head;
};

/// Tracks the best validation accuracy and the test accuracy achieved at
/// that point; signals early stop after `patience` non-improving updates.
class EarlyStopTracker {
 public:
  explicit EarlyStopTracker(int patience) : patience_(patience) {}

  /// Returns true when training should stop.
  bool Update(double val_accuracy, double test_accuracy) {
    if (val_accuracy > best_val_) {
      best_val_ = val_accuracy;
      test_at_best_ = test_accuracy;
      since_best_ = 0;
      return false;
    }
    return ++since_best_ >= patience_;
  }

  double best_val() const { return best_val_; }
  double test_at_best() const { return test_at_best_; }

 private:
  int patience_;
  int since_best_ = 0;
  double best_val_ = 0.0;
  double test_at_best_ = 0.0;
};

}  // namespace sgnn::models

#endif  // SGNN_MODELS_API_H_
