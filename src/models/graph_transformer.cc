#include "models/graph_transformer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/timer.h"
#include "graph/metrics.h"
#include "nn/attention.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace sgnn::models {

using graph::NodeId;
using tensor::Matrix;

namespace {

std::vector<NodeId> PickAnchors(const graph::CsrGraph& graph, int count,
                                bool by_degree, common::Rng* rng) {
  count = std::min<int>(count, static_cast<int>(graph.num_nodes()));
  std::vector<NodeId> order(graph.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  if (by_degree) {
    std::sort(order.begin(), order.end(), [&graph](NodeId a, NodeId b) {
      const auto da = graph.OutDegree(a), db = graph.OutDegree(b);
      return da != db ? da > db : a < b;
    });
  } else {
    rng->Shuffle(&order);
  }
  order.resize(static_cast<size_t>(count));
  return order;
}

}  // namespace

ModelResult TrainGraphTransformer(const graph::CsrGraph& graph,
                                  const Matrix& x,
                                  std::span<const int> labels,
                                  const NodeSplits& splits,
                                  const nn::TrainConfig& config,
                                  const GraphTransformerConfig& gt) {
  const int num_classes =
      1 + *std::max_element(labels.begin(), labels.end());
  common::ScopedCounterDelta counters;
  common::WallTimer timer;
  common::Rng rng(config.seed);

  // Preprocessing (DHIL-GT's decoupled part): anchors + SPD bias table;
  // training never touches the graph again.
  const std::vector<NodeId> anchors =
      PickAnchors(graph, gt.num_anchors, gt.degree_anchors, &rng);
  Matrix bias(static_cast<int64_t>(graph.num_nodes()),
              static_cast<int64_t>(anchors.size()));
  Matrix tokens = x;
  if (gt.spd_beta != 0.0 || gt.spd_encoding_dim > 0) {
    // Node-to-anchor SPD table: one BFS per anchor, O(anchors * |E|).
    // (DHIL-GT's hub-label index — similarity::HubLabeling — answers
    // *arbitrary* pair queries in O(label); for a fixed anchor set the
    // per-anchor sweep is strictly cheaper and gives the same distances.)
    std::vector<std::vector<int>> spd_to_anchor;
    spd_to_anchor.reserve(anchors.size());
    for (NodeId anchor : anchors) {
      spd_to_anchor.push_back(graph::BfsDistances(graph, anchor));
    }
    if (gt.spd_beta != 0.0) {
      for (NodeId u = 0; u < graph.num_nodes(); ++u) {
        for (size_t a = 0; a < anchors.size(); ++a) {
          const int spd = spd_to_anchor[a][u];
          bias.at(static_cast<int64_t>(u), static_cast<int64_t>(a)) =
              spd < 0 ? static_cast<float>(gt.unreachable_bias)
                      : static_cast<float>(-gt.spd_beta * spd);
        }
      }
    }
    if (gt.spd_encoding_dim > 0) {
      // Distance positional encoding: proximity to the leading anchors.
      const int enc_dim =
          std::min<int>(gt.spd_encoding_dim, static_cast<int>(anchors.size()));
      Matrix encoding(static_cast<int64_t>(graph.num_nodes()), enc_dim);
      for (NodeId u = 0; u < graph.num_nodes(); ++u) {
        for (int j = 0; j < enc_dim; ++j) {
          const int spd = spd_to_anchor[static_cast<size_t>(j)][u];
          encoding.at(static_cast<int64_t>(u), j) =
              spd < 0 ? 0.0f : std::exp(-0.5f * static_cast<float>(spd));
        }
      }
      tokens = tensor::ConcatCols(tokens, encoding);
    }
  }
  std::vector<int64_t> anchor_gather(anchors.begin(), anchors.end());
  const Matrix anchor_tokens = tokens.GatherRows(anchor_gather);

  // Model: anchor attention + skip, ReLU, linear head.
  nn::AnchorAttention attention(tokens.cols(), config.hidden_dim, &rng);
  nn::Linear skip(tokens.cols(), config.hidden_dim, &rng);
  nn::Linear head(config.hidden_dim, num_classes, &rng);
  std::vector<nn::ParamRef> params = attention.Params();
  for (const auto& p : skip.Params()) params.push_back(p);
  for (const auto& p : head.Params()) params.push_back(p);
  nn::Adam opt(params, config.lr, 0.9, 0.999, 1e-8, config.weight_decay);
  EarlyStopTracker tracker(config.patience);

  auto forward = [&](bool training, Matrix* pre, Matrix* hidden,
                     Matrix* logits) {
    Matrix attn_out;
    attention.Forward(tokens, anchor_tokens, bias, training, &attn_out);
    Matrix skip_out;
    skip.Forward(tokens, &skip_out);
    tensor::Axpy(1.0f, skip_out, &attn_out);
    if (pre != nullptr) *pre = attn_out;
    tensor::Relu(&attn_out);
    if (hidden != nullptr) *hidden = attn_out;
    head.Forward(attn_out, logits);
  };

  ModelResult result;
  result.name = gt.spd_beta != 0.0 ? "graph_transformer"
                                   : "graph_transformer_nobias";
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    Matrix pre, hidden, logits;
    forward(/*training=*/true, &pre, &hidden, &logits);
    Matrix dlogits;
    result.report.final_train_loss =
        nn::SoftmaxCrossEntropy(logits, labels, splits.train, &dlogits);

    attention.ZeroGrad();
    skip.ZeroGrad();
    head.ZeroGrad();
    Matrix dhidden;
    head.Backward(hidden, dlogits, &dhidden);
    tensor::ReluBackward(pre, &dhidden);
    // The residual splits: one copy into the skip projection, one into
    // attention (anchor-token gradients are dropped — anchors are raw
    // feature rows, not parameters).
    skip.Backward(tokens, dhidden, nullptr);
    attention.Backward(dhidden, nullptr, nullptr);
    opt.Step();
    result.report.epochs_run = epoch + 1;

    Matrix eval_logits;
    forward(/*training=*/false, nullptr, nullptr, &eval_logits);
    const double val = nn::Accuracy(eval_logits, labels, splits.val);
    const double test = nn::Accuracy(eval_logits, labels, splits.test);
    if (tracker.Update(val, test)) break;
  }
  result.report.best_val_accuracy = tracker.best_val();
  result.report.test_accuracy = tracker.test_at_best();
  result.report.train_seconds = timer.Seconds();
  result.ops = counters.Delta();
  return result;
}

}  // namespace sgnn::models
