#include "models/sage.h"

#include <algorithm>

#include "common/check.h"
#include "common/counters.h"
#include "common/timer.h"
#include "graph/propagate.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "sampling/neighbor_sampler.h"
#include "tensor/ops.h"

namespace sgnn::models {

using graph::NodeId;
using sampling::LayerSample;
using sampling::MiniBatch;
using tensor::Matrix;

SageModel::SageModel(const std::vector<int64_t>& dims, double dropout,
                     common::Rng* rng)
    : dropout_(dropout) {
  SGNN_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    self_.emplace_back(dims[i], dims[i + 1], rng);
    nbr_.emplace_back(dims[i], dims[i + 1], rng);
  }
}

namespace {

/// Rows 0..n-1 of `m` (dst prefix of a block's src representation).
Matrix Prefix(const Matrix& m, int64_t n) {
  Matrix out(n, m.cols());
  std::copy(m.data(), m.data() + n * m.cols(), out.data());
  return out;
}

/// Weighted aggregation over a block using *local* source representations
/// (rows of `h` are ordered like layer.src). Distinct from
/// `sampling::AggregateThroughLayer`, which reads globally-indexed rows.
Matrix AggregateLocal(const LayerSample& layer, const Matrix& h) {
  const int64_t cols = h.cols();
  Matrix out(static_cast<int64_t>(layer.dst.size()), cols);
  for (size_t i = 0; i < layer.dst.size(); ++i) {
    float* orow = out.data() + static_cast<int64_t>(i) * cols;
    for (graph::EdgeIndex e = layer.offsets[i]; e < layer.offsets[i + 1];
         ++e) {
      const float w = layer.weights[static_cast<size_t>(e)];
      const float* hrow =
          h.data() +
          static_cast<int64_t>(layer.src_local[static_cast<size_t>(e)]) * cols;
      for (int64_t c = 0; c < cols; ++c) orow[c] += w * hrow[c];
    }
  }
  common::GlobalCounters().edges_touched +=
      static_cast<uint64_t>(layer.num_edges());
  return out;
}

}  // namespace

double SageModel::TrainStep(const MiniBatch& batch,
                            const Matrix& input_features,
                            std::span<const int> seed_labels,
                            common::Rng* rng) {
  SGNN_CHECK_EQ(batch.layers.size(), self_.size());
  SGNN_CHECK_EQ(input_features.rows(),
                static_cast<int64_t>(batch.input_nodes().size()));
  const size_t num_layers = self_.size();

  // Resident-activation accounting (E13): a sampled step keeps one
  // activation (and one gradient) row per sampled source per layer.
  uint64_t resident = static_cast<uint64_t>(input_features.size());
  for (size_t l = 0; l < num_layers; ++l) {
    resident += 2 * static_cast<uint64_t>(batch.layers[l].src.size()) *
                static_cast<uint64_t>(self_[l].out_dim());
  }
  common::GlobalCounters().Acquire(resident);

  // Forward with caches.
  std::vector<Matrix> h_in;       // Input rep per layer (rows = src).
  std::vector<Matrix> h_self;     // dst prefix per layer.
  std::vector<Matrix> agg;        // Aggregated neighbours per layer.
  std::vector<Matrix> pre;        // Pre-activation per layer.
  std::vector<Matrix> masks;      // Dropout masks per non-final layer.
  Matrix cur = input_features;
  for (size_t l = 0; l < num_layers; ++l) {
    const LayerSample& layer = batch.layers[l];
    h_in.push_back(cur);
    SGNN_CHECK_EQ(cur.rows(), static_cast<int64_t>(layer.src.size()));
    Matrix self_rows = Prefix(cur, static_cast<int64_t>(layer.dst.size()));
    Matrix agg_rows = AggregateLocal(layer, cur);
    h_self.push_back(self_rows);
    agg.push_back(agg_rows);
    Matrix out_self, out_nbr;
    self_[l].Forward(self_rows, &out_self);
    nbr_[l].Forward(agg_rows, &out_nbr);
    tensor::Axpy(1.0f, out_nbr, &out_self);
    const bool is_last = (l + 1 == num_layers);
    if (!is_last) {
      pre.push_back(out_self);
      tensor::Relu(&out_self);
      Matrix mask;
      nn::DropoutForward(dropout_, true, rng, &out_self, &mask);
      masks.push_back(std::move(mask));
    }
    cur = std::move(out_self);
  }

  // Loss over all seeds.
  std::vector<NodeId> rows(batch.seeds().size());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<NodeId>(i);
  Matrix dout;
  const double loss =
      nn::SoftmaxCrossEntropy(cur, seed_labels, rows, &dout);

  // Backward.
  for (size_t l = num_layers; l-- > 0;) {
    const LayerSample& layer = batch.layers[l];
    const bool is_last = (l + 1 == num_layers);
    if (!is_last) {
      nn::DropoutBackward(masks[l], &dout);
      tensor::ReluBackward(pre[l], &dout);
    }
    Matrix dself, dagg;
    self_[l].Backward(h_self[l], dout, &dself);
    nbr_[l].Backward(agg[l], dout, &dagg);
    // d(input rep): self path hits the dst prefix; aggregation transposes
    // onto sampled sources.
    Matrix dinput(static_cast<int64_t>(layer.src.size()), dself.cols());
    std::copy(dself.data(),
              dself.data() + dself.rows() * dself.cols(), dinput.data());
    const int64_t cols = dagg.cols();
    for (size_t i = 0; i < layer.dst.size(); ++i) {
      const float* grow = dagg.data() + static_cast<int64_t>(i) * cols;
      for (graph::EdgeIndex e = layer.offsets[i]; e < layer.offsets[i + 1];
           ++e) {
        float* drow = dinput.data() +
                      static_cast<int64_t>(layer.src_local[static_cast<size_t>(e)]) * cols;
        const float w = layer.weights[static_cast<size_t>(e)];
        for (int64_t c = 0; c < cols; ++c) drow[c] += w * grow[c];
      }
    }
    common::GlobalCounters().edges_touched +=
        static_cast<uint64_t>(layer.num_edges());
    dout = std::move(dinput);
  }
  common::GlobalCounters().Release(resident);
  return loss;
}

Matrix SageModel::Predict(const graph::CsrGraph& graph, const Matrix& x) {
  // Exact mean aggregation: D^-1 A without self loops.
  graph::Propagator mean_prop(graph, graph::Normalization::kRow,
                              /*add_self_loops=*/false);
  Matrix cur = x;
  for (size_t l = 0; l < self_.size(); ++l) {
    Matrix aggregated;
    mean_prop.Apply(cur, &aggregated);
    Matrix out_self, out_nbr;
    self_[l].Forward(cur, &out_self);
    nbr_[l].Forward(aggregated, &out_nbr);
    tensor::Axpy(1.0f, out_nbr, &out_self);
    if (l + 1 < self_.size()) tensor::Relu(&out_self);
    cur = std::move(out_self);
  }
  return cur;
}

void SageModel::ZeroGrad() {
  for (auto& layer : self_) layer.ZeroGrad();
  for (auto& layer : nbr_) layer.ZeroGrad();
}

std::vector<nn::ParamRef> SageModel::Params() {
  std::vector<nn::ParamRef> params;
  for (auto& layer : self_) {
    for (const auto& p : layer.Params()) params.push_back(p);
  }
  for (auto& layer : nbr_) {
    for (const auto& p : layer.Params()) params.push_back(p);
  }
  return params;
}

ModelResult TrainSage(const graph::CsrGraph& graph, const Matrix& x,
                      std::span<const int> labels, const NodeSplits& splits,
                      const nn::TrainConfig& config, const SageConfig& sage) {
  SGNN_CHECK(!sage.fanouts.empty());
  const int num_classes =
      1 + *std::max_element(labels.begin(), labels.end());
  common::ScopedCounterDelta counters;
  common::WallTimer timer;
  common::Rng rng(config.seed);

  // dims = {in, hidden x (L-1), out} with L = fanouts.size().
  std::vector<int64_t> dims = {x.cols()};
  for (size_t l = 0; l + 1 < sage.fanouts.size(); ++l) {
    dims.push_back(config.hidden_dim);
  }
  dims.push_back(num_classes);
  SGNN_CHECK_EQ(dims.size(), sage.fanouts.size() + 1);

  SageModel model(dims, config.dropout, &rng);
  nn::Adam opt(model.Params(), config.lr, 0.9, 0.999, 1e-8,
               config.weight_decay);
  EarlyStopTracker tracker(config.patience);

  const size_t batch_size =
      config.batch_size > 0 ? static_cast<size_t>(config.batch_size) : 64;
  std::vector<NodeId> order(splits.train.begin(), splits.train.end());

  ModelResult result;
  result.name = sage.use_labor ? "sage_labor" : "sage";
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    size_t num_batches = 0;
    for (size_t start = 0; start < order.size(); start += batch_size) {
      const size_t end = std::min(order.size(), start + batch_size);
      std::vector<NodeId> seeds(order.begin() + static_cast<int64_t>(start),
                                order.begin() + static_cast<int64_t>(end));
      MiniBatch batch =
          sage.use_labor
              ? sampling::SampleLabor(graph, seeds, sage.fanouts, &rng)
              : sampling::SampleNodeWise(graph, seeds, sage.fanouts, &rng);
      std::vector<int64_t> gather(batch.input_nodes().begin(),
                                  batch.input_nodes().end());
      Matrix input = x.GatherRows(gather);
      std::vector<int> seed_labels(seeds.size());
      for (size_t i = 0; i < seeds.size(); ++i) {
        seed_labels[i] = labels[seeds[i]];
      }
      model.ZeroGrad();
      epoch_loss += model.TrainStep(batch, input, seed_labels, &rng);
      opt.Step();
      ++num_batches;
    }
    result.report.final_train_loss =
        epoch_loss / static_cast<double>(num_batches);
    result.report.epochs_run = epoch + 1;

    Matrix logits = model.Predict(graph, x);
    const double val = nn::Accuracy(logits, labels, splits.val);
    const double test = nn::Accuracy(logits, labels, splits.test);
    if (tracker.Update(val, test)) break;
  }
  result.report.best_val_accuracy = tracker.best_val();
  result.report.test_accuracy = tracker.test_at_best();
  result.report.train_seconds = timer.Seconds();
  result.ops = counters.Delta();
  return result;
}

}  // namespace sgnn::models
