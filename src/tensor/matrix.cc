#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>

namespace sgnn::tensor {

Matrix Matrix::FromRows(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(static_cast<int64_t>(rows.size()),
           static_cast<int64_t>(rows[0].size()));
  for (size_t r = 0; r < rows.size(); ++r) {
    SGNN_CHECK_EQ(static_cast<int64_t>(rows[r].size()), m.cols());
    std::copy(rows[r].begin(), rows[r].end(), m.Row(static_cast<int64_t>(r)).begin());
  }
  return m;
}

Matrix Matrix::Identity(int64_t n) {
  Matrix m(n, n);
  for (int64_t i = 0; i < n; ++i) m.at(i, i) = 1.0f;
  return m;
}

Matrix Matrix::GlorotUniform(int64_t rows, int64_t cols,
                             sgnn::common::Rng* rng) {
  SGNN_CHECK(rng != nullptr);
  Matrix m(rows, cols);
  const double limit = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->Uniform(-limit, limit));
  }
  return m;
}

Matrix Matrix::Gaussian(int64_t rows, int64_t cols, float mean, float stddev,
                        sgnn::common::Rng* rng) {
  SGNN_CHECK(rng != nullptr);
  Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->Gaussian(mean, stddev));
  }
  return m;
}

void Matrix::Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Matrix Matrix::GatherRows(std::span<const int64_t> indices) const {
  Matrix out(static_cast<int64_t>(indices.size()), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    SGNN_CHECK(indices[i] >= 0 && indices[i] < rows_);
    auto src = Row(indices[i]);
    std::copy(src.begin(), src.end(), out.Row(static_cast<int64_t>(i)).begin());
  }
  return out;
}

void Matrix::AccumulateRow(int64_t dst_row, std::span<const float> src) {
  SGNN_CHECK_EQ(static_cast<int64_t>(src.size()), cols_);
  auto dst = Row(dst_row);
  for (int64_t c = 0; c < cols_; ++c) dst[c] += src[c];
}

}  // namespace sgnn::tensor
