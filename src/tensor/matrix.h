#ifndef SGNN_TENSOR_MATRIX_H_
#define SGNN_TENSOR_MATRIX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace sgnn::tensor {

/// Dense row-major float matrix: the feature/parameter container for the
/// whole library. Copyable and movable; copies are deep.
///
/// A `Matrix` with zero rows or columns is valid and empty. Element access
/// is bounds-checked in debug builds only, so hot loops should iterate over
/// `Row()` spans or raw `data()`.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  /// Creates a `rows` x `cols` matrix initialised to `fill`.
  Matrix(int64_t rows, int64_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), fill) {
    SGNN_CHECK_GE(rows, 0);
    SGNN_CHECK_GE(cols, 0);
  }

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  /// Builds a matrix from nested initialiser data (test convenience).
  static Matrix FromRows(const std::vector<std::vector<float>>& rows);

  /// Identity matrix of size n x n.
  static Matrix Identity(int64_t n);

  /// Glorot/Xavier-uniform initialised matrix, the standard NN weight init.
  static Matrix GlorotUniform(int64_t rows, int64_t cols,
                              sgnn::common::Rng* rng);

  /// Entries drawn i.i.d. from N(mean, stddev^2).
  static Matrix Gaussian(int64_t rows, int64_t cols, float mean, float stddev,
                         sgnn::common::Rng* rng);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  float& at(int64_t r, int64_t c) {
    SGNN_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  float at(int64_t r, int64_t c) const {
    SGNN_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }

  std::span<float> Row(int64_t r) {
    SGNN_DCHECK(r >= 0 && r < rows_);
    return {data_.data() + r * cols_, static_cast<size_t>(cols_)};
  }
  std::span<const float> Row(int64_t r) const {
    SGNN_DCHECK(r >= 0 && r < rows_);
    return {data_.data() + r * cols_, static_cast<size_t>(cols_)};
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Sets every entry to `v`.
  void Fill(float v);

  /// Sets every entry to zero (gradient reset idiom).
  void Zero() { Fill(0.0f); }

  /// Returns a new matrix containing the given rows, in order.
  Matrix GatherRows(std::span<const int64_t> indices) const;

  /// Adds `src` row r into this matrix's row `dst_row` (scatter-accumulate).
  void AccumulateRow(int64_t dst_row, std::span<const float> src);

  /// Exact equality (useful in determinism tests).
  bool Equals(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<float> data_;
};

}  // namespace sgnn::tensor

#endif  // SGNN_TENSOR_MATRIX_H_
