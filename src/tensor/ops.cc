#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "common/counters.h"
#include "par/par.h"
#include "simd/simd.h"

namespace sgnn::tensor {

namespace {

void CountMoved(uint64_t n) {
  sgnn::common::GlobalCounters().floats_moved += n;
}

/// Bytes-moved accounting for the microkernel substrate. Each call site
/// bills the logical bytes its microkernel invocations consume/produce —
/// operand elements read (including the read half of read-modify-write
/// accumulations) and result elements written — as a pure function of the
/// workload, so the totals are identical at any thread count and on either
/// simd backend. Per-call costs, in floats of length n:
///
///   axpy / mul / add / relu_backward   read 2n   write n
///   scale / add_scalar / relu          read  n   write n
///   max                                read  n   write 0
///   dot                                read 2n   write 0
void CountBytes(uint64_t read_floats, uint64_t written_floats) {
  sgnn::common::GlobalCounters().BillBytes(read_floats * sizeof(float),
                                           written_floats * sizeof(float));
}

// Shard-geometry grains (pure functions of problem size, per the par
// determinism contract): sections below the grain run as one shard, so
// small matrices never pay dispatch overhead.
constexpr int64_t kGemmGrainFlops = 256 * 1024;  ///< Fused mul-adds/shard.
constexpr int64_t kElemGrain = 64 * 1024;        ///< Scalars per shard.
constexpr int64_t kGemmPanel = 256;              ///< k-panel rows kept hot.
constexpr int64_t kTransposeTile = 32;           ///< Transpose tile edge.

/// Cap on `GemmTransposeA` reduction partials: each costs an m x n
/// accumulator, so the shard count is bounded tighter than `kMaxShards`.
constexpr int kMaxGemmPartials = 8;

std::vector<par::Range> ElemRanges(int64_t n) {
  return par::SplitUniform(n, par::ShardsFor(n, kElemGrain));
}

std::vector<par::Range> RowRangesFor(int64_t rows, int64_t flops_per_row) {
  return par::SplitUniform(
      rows, par::ShardsFor(rows * std::max<int64_t>(flops_per_row, 1),
                           kGemmGrainFlops));
}

}  // namespace

void Gemm(const Matrix& a, const Matrix& b, Matrix* out) {
  SGNN_CHECK(out != nullptr);
  SGNN_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  *out = Matrix(m, n);
  if (m == 0 || k == 0 || n == 0) return;
  const auto rows = RowRangesFor(m, k * n);
  const simd::KernelTable& kt = simd::Active();
  par::ParallelFor("tensor.gemm", rows, [&](int, par::Range range) {
    // k-panelled i-k-j: the b panel stays cache-hot across the shard's
    // rows, and each output element still accumulates in ascending k — the
    // same summation order as the naive loop, so blocking changes no bits.
    // The accumulation row itself is the axpy microkernel, whose lanes use
    // unfused mul/add (simd contract #1), so vectorizing over j preserves
    // every bit too.
    uint64_t nnz = 0;
    for (int64_t p0 = 0; p0 < k; p0 += kGemmPanel) {
      const int64_t p1 = std::min(k, p0 + kGemmPanel);
      for (int64_t i = range.begin; i < range.end; ++i) {
        const float* arow = a.data() + i * k;
        float* orow = out->data() + i * n;
        for (int64_t p = p0; p < p1; ++p) {
          const float av = arow[p];
          if (av == 0.0f) continue;
          ++nnz;
          kt.axpy(av, b.data() + p * n, orow, n);
        }
      }
    }
    // Bill the multiplies actually issued: the zero-skip fast path does no
    // work, so sparse operands (ReLU outputs, masks) are not overbilled.
    CountMoved(nnz * static_cast<uint64_t>(n));
    // Bytes: the zero-skip scan reads every a element in the shard once
    // across the panels; each surviving element issues one axpy over n.
    CountBytes(static_cast<uint64_t>(range.size()) * k + nnz * 2u * n,
               nnz * static_cast<uint64_t>(n));
  });
}

void GemmTransposeA(const Matrix& a, const Matrix& b, Matrix* out) {
  SGNN_CHECK(out != nullptr);
  SGNN_CHECK_EQ(a.rows(), b.rows());
  const int64_t m = a.cols(), k = a.rows(), n = b.cols();
  *out = Matrix(m, n);
  if (m == 0 || k == 0 || n == 0) return;
  // The k rows all scatter into the same m x n output, so shards reduce
  // into private partials that fold in ascending shard order — a fixed
  // summation tree, identical for any worker count (the tree differs from
  // the historical serial order, but deterministically so).
  const int shards = std::min(
      par::ShardsFor(k * m * n, kGemmGrainFlops), kMaxGemmPartials);
  const auto panels = par::SplitUniform(k, shards);
  std::vector<Matrix> partials(panels.size());
  const simd::KernelTable& kt = simd::Active();
  par::ParallelFor("tensor.gemm_ta", panels, [&](int shard, par::Range pr) {
    Matrix& part = partials[static_cast<size_t>(shard)];
    part = Matrix(m, n);
    uint64_t nnz = 0;
    for (int64_t p = pr.begin; p < pr.end; ++p) {
      const float* arow = a.data() + p * a.cols();
      const float* brow = b.data() + p * n;
      for (int64_t i = 0; i < m; ++i) {
        const float av = arow[i];
        if (av == 0.0f) continue;
        ++nnz;
        kt.axpy(av, brow, part.data() + i * n, n);
      }
    }
    CountMoved(nnz * static_cast<uint64_t>(n));
    CountBytes(static_cast<uint64_t>(pr.size()) * m + nnz * 2u * n,
               nnz * static_cast<uint64_t>(n));
  });
  // Ascending-shard fold of the partials (one add microkernel per partial:
  // read both operands, write the accumulator).
  for (Matrix& part : partials) {
    kt.add(part.data(), out->data(), out->size());
  }
  CountBytes(static_cast<uint64_t>(partials.size()) * out->size() * 2u,
             static_cast<uint64_t>(partials.size()) * out->size());
}

void GemmTransposeB(const Matrix& a, const Matrix& b, Matrix* out) {
  SGNN_CHECK(out != nullptr);
  SGNN_CHECK_EQ(a.cols(), b.cols());
  const int64_t m = a.rows(), k = a.cols(), n = b.rows();
  *out = Matrix(m, n);
  if (m == 0 || k == 0 || n == 0) return;
  const auto rows = RowRangesFor(m, k * n);
  const simd::KernelTable& kt = simd::Active();
  // Both operands are walked row-major, so each (i, j) cell is a unit-
  // stride dot of two length-k rows — the lane-folded double-accumulating
  // microkernel (simd contract #2). The b row base is hoisted out of the
  // inner loop instead of re-deriving it per element.
  const float* bdata = b.data();
  par::ParallelFor("tensor.gemm_tb", rows, [&](int, par::Range range) {
    for (int64_t i = range.begin; i < range.end; ++i) {
      const float* arow = a.data() + i * k;
      float* orow = out->data() + i * n;
      for (int64_t j = 0; j < n; ++j) {
        orow[j] = static_cast<float>(kt.dot(arow, bdata + j * k, k));
      }
    }
    CountMoved(static_cast<uint64_t>(range.size()) * k * n);
    CountBytes(static_cast<uint64_t>(range.size()) * n * 2u * k,
               static_cast<uint64_t>(range.size()) * n);
  });
}

Matrix Transpose(const Matrix& m) {
  Matrix out(m.cols(), m.rows());
  const int64_t rows = m.rows(), cols = m.cols();
  // Tiled so both the row-major read and the column-major write stay inside
  // a kTransposeTile^2 block that fits in L1 — the naive double loop
  // touched a fresh cache line per element on the write side. Element
  // copies are order-independent, so tiling changes no bits.
  for (int64_t r0 = 0; r0 < rows; r0 += kTransposeTile) {
    const int64_t r1 = std::min(rows, r0 + kTransposeTile);
    for (int64_t c0 = 0; c0 < cols; c0 += kTransposeTile) {
      const int64_t c1 = std::min(cols, c0 + kTransposeTile);
      for (int64_t r = r0; r < r1; ++r) {
        const float* mrow = m.data() + r * cols;
        for (int64_t c = c0; c < c1; ++c) {
          out.data()[c * rows + r] = mrow[c];
        }
      }
    }
  }
  CountMoved(static_cast<uint64_t>(m.size()));
  CountBytes(static_cast<uint64_t>(m.size()),
             static_cast<uint64_t>(m.size()));
  return out;
}

void Axpy(float alpha, const Matrix& other, Matrix* m) {
  SGNN_CHECK(m != nullptr);
  SGNN_CHECK_EQ(m->rows(), other.rows());
  SGNN_CHECK_EQ(m->cols(), other.cols());
  const simd::KernelTable& kt = simd::Active();
  par::ParallelFor("tensor.axpy", ElemRanges(m->size()),
                   [&](int, par::Range r) {
                     kt.axpy(alpha, other.data() + r.begin,
                             m->data() + r.begin, r.size());
                     CountMoved(static_cast<uint64_t>(r.size()));
                     CountBytes(2u * static_cast<uint64_t>(r.size()),
                                static_cast<uint64_t>(r.size()));
                   });
}

void Scale(float alpha, Matrix* m) {
  SGNN_CHECK(m != nullptr);
  const simd::KernelTable& kt = simd::Active();
  par::ParallelFor("tensor.scale", ElemRanges(m->size()),
                   [&](int, par::Range r) {
                     kt.scale(alpha, m->data() + r.begin, r.size());
                     CountBytes(static_cast<uint64_t>(r.size()),
                                static_cast<uint64_t>(r.size()));
                   });
}

void Hadamard(const Matrix& other, Matrix* m) {
  SGNN_CHECK(m != nullptr);
  SGNN_CHECK_EQ(m->rows(), other.rows());
  SGNN_CHECK_EQ(m->cols(), other.cols());
  const simd::KernelTable& kt = simd::Active();
  par::ParallelFor("tensor.hadamard", ElemRanges(m->size()),
                   [&](int, par::Range r) {
                     kt.mul(other.data() + r.begin, m->data() + r.begin,
                            r.size());
                     CountBytes(2u * static_cast<uint64_t>(r.size()),
                                static_cast<uint64_t>(r.size()));
                   });
}

void AddBiasRow(std::span<const float> bias, Matrix* m) {
  SGNN_CHECK(m != nullptr);
  SGNN_CHECK_EQ(static_cast<int64_t>(bias.size()), m->cols());
  const auto rows = par::SplitUniform(
      m->rows(), par::ShardsFor(m->size(), kElemGrain));
  const simd::KernelTable& kt = simd::Active();
  par::ParallelFor("tensor.add_bias", rows, [&](int, par::Range range) {
    for (int64_t r = range.begin; r < range.end; ++r) {
      kt.add(bias.data(), m->Row(r).data(), m->cols());
    }
    CountBytes(static_cast<uint64_t>(range.size()) * m->cols() * 2u,
               static_cast<uint64_t>(range.size()) * m->cols());
  });
}

void Relu(Matrix* m) {
  SGNN_CHECK(m != nullptr);
  const simd::KernelTable& kt = simd::Active();
  par::ParallelFor("tensor.relu", ElemRanges(m->size()),
                   [&](int, par::Range r) {
                     kt.relu(m->data() + r.begin, r.size());
                     CountBytes(static_cast<uint64_t>(r.size()),
                                static_cast<uint64_t>(r.size()));
                   });
}

void ReluBackward(const Matrix& pre_activation, Matrix* grad) {
  SGNN_CHECK(grad != nullptr);
  SGNN_CHECK_EQ(grad->rows(), pre_activation.rows());
  SGNN_CHECK_EQ(grad->cols(), pre_activation.cols());
  const simd::KernelTable& kt = simd::Active();
  par::ParallelFor("tensor.relu_bwd", ElemRanges(grad->size()),
                   [&](int, par::Range r) {
                     kt.relu_backward(pre_activation.data() + r.begin,
                                      grad->data() + r.begin, r.size());
                     CountBytes(2u * static_cast<uint64_t>(r.size()),
                                static_cast<uint64_t>(r.size()));
                   });
}

void SoftmaxRows(Matrix* m) {
  SGNN_CHECK(m != nullptr);
  const auto rows = par::SplitUniform(
      m->rows(), par::ShardsFor(m->size(), kElemGrain));
  const simd::KernelTable& kt = simd::Active();
  par::ParallelFor("tensor.softmax", rows, [&](int, par::Range range) {
    for (int64_t r = range.begin; r < range.end; ++r) {
      auto row = m->Row(r);
      if (row.empty()) continue;
      const float mx = kt.max(row.data(), m->cols());
      double sum = 0.0;
      for (float& v : row) {
        v = std::exp(v - mx);
        sum += v;
      }
      const float inv = static_cast<float>(1.0 / sum);
      kt.scale(inv, row.data(), m->cols());
    }
    // Per row: max reads c; the exp pass reads and writes c; the scale
    // reads and writes c.
    CountBytes(static_cast<uint64_t>(range.size()) * m->cols() * 3u,
               static_cast<uint64_t>(range.size()) * m->cols() * 2u);
  });
}

void LogSoftmaxRows(Matrix* m) {
  SGNN_CHECK(m != nullptr);
  const auto rows = par::SplitUniform(
      m->rows(), par::ShardsFor(m->size(), kElemGrain));
  const simd::KernelTable& kt = simd::Active();
  par::ParallelFor("tensor.log_softmax", rows, [&](int, par::Range range) {
    for (int64_t r = range.begin; r < range.end; ++r) {
      auto row = m->Row(r);
      if (row.empty()) continue;
      const float mx = kt.max(row.data(), m->cols());
      double sum = 0.0;
      for (float v : row) sum += std::exp(static_cast<double>(v - mx));
      const float lse = mx + static_cast<float>(std::log(sum));
      // v -= lse as v += (-lse): the identical IEEE operation, in the
      // add_scalar microkernel.
      kt.add_scalar(-lse, row.data(), m->cols());
    }
    CountBytes(static_cast<uint64_t>(range.size()) * m->cols() * 3u,
               static_cast<uint64_t>(range.size()) * m->cols());
  });
}

void NormalizeRows(int p, Matrix* m) {
  SGNN_CHECK(m != nullptr);
  SGNN_CHECK(p == 1 || p == 2);
  const auto rows = par::SplitUniform(
      m->rows(), par::ShardsFor(m->size(), kElemGrain));
  const simd::KernelTable& kt = simd::Active();
  par::ParallelFor("tensor.normalize", rows, [&](int, par::Range range) {
    for (int64_t r = range.begin; r < range.end; ++r) {
      auto row = m->Row(r);
      double norm = 0.0;
      if (p == 2) {
        // Sum of squares is the row's dot with itself — the lane-folded
        // double-accumulating microkernel.
        norm = std::sqrt(kt.dot(row.data(), row.data(), m->cols()));
      } else {
        for (float v : row) norm += std::fabs(v);
      }
      if (norm == 0.0) continue;
      const float inv = static_cast<float>(1.0 / norm);
      kt.scale(inv, row.data(), m->cols());
    }
    CountBytes(static_cast<uint64_t>(range.size()) * m->cols() * 3u,
               static_cast<uint64_t>(range.size()) * m->cols());
  });
}

std::vector<int64_t> ArgmaxRows(const Matrix& m) {
  std::vector<int64_t> out(static_cast<size_t>(m.rows()));
  for (int64_t r = 0; r < m.rows(); ++r) {
    auto row = m.Row(r);
    out[static_cast<size_t>(r)] =
        std::max_element(row.begin(), row.end()) - row.begin();
  }
  return out;
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  SGNN_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.rows(), a.cols() + b.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    auto arow = a.Row(r);
    auto brow = b.Row(r);
    auto orow = out.Row(r);
    std::copy(arow.begin(), arow.end(), orow.begin());
    std::copy(brow.begin(), brow.end(), orow.begin() + a.cols());
  }
  return out;
}

double FrobeniusNorm(const Matrix& m) {
  return std::sqrt(simd::Active().dot(m.data(), m.data(), m.size()));
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  SGNN_CHECK_EQ(a.rows(), b.rows());
  SGNN_CHECK_EQ(a.cols(), b.cols());
  double mx = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    mx = std::max(mx, std::fabs(static_cast<double>(a.data()[i]) - b.data()[i]));
  }
  return mx;
}

double Dot(std::span<const float> a, std::span<const float> b) {
  SGNN_CHECK_EQ(a.size(), b.size());
  return simd::Active().dot(a.data(), b.data(),
                            static_cast<int64_t>(a.size()));
}

double Norm2(std::span<const float> v) {
  return std::sqrt(simd::Active().dot(v.data(), v.data(),
                                      static_cast<int64_t>(v.size())));
}

}  // namespace sgnn::tensor
