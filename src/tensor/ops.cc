#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "common/counters.h"

namespace sgnn::tensor {

namespace {

void CountMoved(uint64_t n) {
  sgnn::common::GlobalCounters().floats_moved += n;
}

}  // namespace

void Gemm(const Matrix& a, const Matrix& b, Matrix* out) {
  SGNN_CHECK(out != nullptr);
  SGNN_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  *out = Matrix(m, n);
  // i-k-j loop order: streams through b and out rows contiguously.
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    float* orow = out->data() + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.data() + p * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  CountMoved(static_cast<uint64_t>(m) * k * n);
}

void GemmTransposeA(const Matrix& a, const Matrix& b, Matrix* out) {
  SGNN_CHECK(out != nullptr);
  SGNN_CHECK_EQ(a.rows(), b.rows());
  const int64_t m = a.cols(), k = a.rows(), n = b.cols();
  *out = Matrix(m, n);
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = a.data() + p * a.cols();
    const float* brow = b.data() + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = out->data() + i * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  CountMoved(static_cast<uint64_t>(m) * k * n);
}

void GemmTransposeB(const Matrix& a, const Matrix& b, Matrix* out) {
  SGNN_CHECK(out != nullptr);
  SGNN_CHECK_EQ(a.cols(), b.cols());
  const int64_t m = a.rows(), k = a.cols(), n = b.rows();
  *out = Matrix(m, n);
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    float* orow = out->data() + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b.data() + j * k;
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      orow[j] = static_cast<float>(acc);
    }
  }
  CountMoved(static_cast<uint64_t>(m) * k * n);
}

Matrix Transpose(const Matrix& m) {
  Matrix out(m.cols(), m.rows());
  for (int64_t r = 0; r < m.rows(); ++r) {
    for (int64_t c = 0; c < m.cols(); ++c) out.at(c, r) = m.at(r, c);
  }
  return out;
}

void Axpy(float alpha, const Matrix& other, Matrix* m) {
  SGNN_CHECK(m != nullptr);
  SGNN_CHECK_EQ(m->rows(), other.rows());
  SGNN_CHECK_EQ(m->cols(), other.cols());
  for (int64_t i = 0; i < m->size(); ++i) m->data()[i] += alpha * other.data()[i];
  CountMoved(static_cast<uint64_t>(m->size()));
}

void Scale(float alpha, Matrix* m) {
  SGNN_CHECK(m != nullptr);
  for (int64_t i = 0; i < m->size(); ++i) m->data()[i] *= alpha;
}

void Hadamard(const Matrix& other, Matrix* m) {
  SGNN_CHECK(m != nullptr);
  SGNN_CHECK_EQ(m->rows(), other.rows());
  SGNN_CHECK_EQ(m->cols(), other.cols());
  for (int64_t i = 0; i < m->size(); ++i) m->data()[i] *= other.data()[i];
}

void AddBiasRow(std::span<const float> bias, Matrix* m) {
  SGNN_CHECK(m != nullptr);
  SGNN_CHECK_EQ(static_cast<int64_t>(bias.size()), m->cols());
  for (int64_t r = 0; r < m->rows(); ++r) {
    auto row = m->Row(r);
    for (int64_t c = 0; c < m->cols(); ++c) row[c] += bias[c];
  }
}

void Relu(Matrix* m) {
  SGNN_CHECK(m != nullptr);
  for (int64_t i = 0; i < m->size(); ++i) {
    if (m->data()[i] < 0.0f) m->data()[i] = 0.0f;
  }
}

void ReluBackward(const Matrix& pre_activation, Matrix* grad) {
  SGNN_CHECK(grad != nullptr);
  SGNN_CHECK_EQ(grad->rows(), pre_activation.rows());
  SGNN_CHECK_EQ(grad->cols(), pre_activation.cols());
  for (int64_t i = 0; i < grad->size(); ++i) {
    if (pre_activation.data()[i] <= 0.0f) grad->data()[i] = 0.0f;
  }
}

void SoftmaxRows(Matrix* m) {
  SGNN_CHECK(m != nullptr);
  for (int64_t r = 0; r < m->rows(); ++r) {
    auto row = m->Row(r);
    float mx = *std::max_element(row.begin(), row.end());
    double sum = 0.0;
    for (float& v : row) {
      v = std::exp(v - mx);
      sum += v;
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (float& v : row) v *= inv;
  }
}

void LogSoftmaxRows(Matrix* m) {
  SGNN_CHECK(m != nullptr);
  for (int64_t r = 0; r < m->rows(); ++r) {
    auto row = m->Row(r);
    float mx = *std::max_element(row.begin(), row.end());
    double sum = 0.0;
    for (float v : row) sum += std::exp(static_cast<double>(v - mx));
    const float lse = mx + static_cast<float>(std::log(sum));
    for (float& v : row) v -= lse;
  }
}

void NormalizeRows(int p, Matrix* m) {
  SGNN_CHECK(m != nullptr);
  SGNN_CHECK(p == 1 || p == 2);
  for (int64_t r = 0; r < m->rows(); ++r) {
    auto row = m->Row(r);
    double norm = 0.0;
    for (float v : row) norm += (p == 1) ? std::fabs(v) : static_cast<double>(v) * v;
    if (p == 2) norm = std::sqrt(norm);
    if (norm == 0.0) continue;
    const float inv = static_cast<float>(1.0 / norm);
    for (float& v : row) v *= inv;
  }
}

std::vector<int64_t> ArgmaxRows(const Matrix& m) {
  std::vector<int64_t> out(static_cast<size_t>(m.rows()));
  for (int64_t r = 0; r < m.rows(); ++r) {
    auto row = m.Row(r);
    out[static_cast<size_t>(r)] =
        std::max_element(row.begin(), row.end()) - row.begin();
  }
  return out;
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  SGNN_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.rows(), a.cols() + b.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    auto arow = a.Row(r);
    auto brow = b.Row(r);
    auto orow = out.Row(r);
    std::copy(arow.begin(), arow.end(), orow.begin());
    std::copy(brow.begin(), brow.end(), orow.begin() + a.cols());
  }
  return out;
}

double FrobeniusNorm(const Matrix& m) {
  double acc = 0.0;
  for (int64_t i = 0; i < m.size(); ++i) {
    acc += static_cast<double>(m.data()[i]) * m.data()[i];
  }
  return std::sqrt(acc);
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  SGNN_CHECK_EQ(a.rows(), b.rows());
  SGNN_CHECK_EQ(a.cols(), b.cols());
  double mx = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    mx = std::max(mx, std::fabs(static_cast<double>(a.data()[i]) - b.data()[i]));
  }
  return mx;
}

double Dot(std::span<const float> a, std::span<const float> b) {
  SGNN_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += static_cast<double>(a[i]) * b[i];
  return acc;
}

double Norm2(std::span<const float> v) {
  double acc = 0.0;
  for (float x : v) acc += static_cast<double>(x) * x;
  return std::sqrt(acc);
}

}  // namespace sgnn::tensor
