#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "common/counters.h"
#include "par/par.h"

namespace sgnn::tensor {

namespace {

void CountMoved(uint64_t n) {
  sgnn::common::GlobalCounters().floats_moved += n;
}

// Shard-geometry grains (pure functions of problem size, per the par
// determinism contract): sections below the grain run as one shard, so
// small matrices never pay dispatch overhead.
constexpr int64_t kGemmGrainFlops = 256 * 1024;  ///< Fused mul-adds/shard.
constexpr int64_t kElemGrain = 64 * 1024;        ///< Scalars per shard.
constexpr int64_t kGemmPanel = 256;              ///< k-panel rows kept hot.

/// Cap on `GemmTransposeA` reduction partials: each costs an m x n
/// accumulator, so the shard count is bounded tighter than `kMaxShards`.
constexpr int kMaxGemmPartials = 8;

std::vector<par::Range> ElemRanges(int64_t n) {
  return par::SplitUniform(n, par::ShardsFor(n, kElemGrain));
}

std::vector<par::Range> RowRangesFor(int64_t rows, int64_t flops_per_row) {
  return par::SplitUniform(
      rows, par::ShardsFor(rows * std::max<int64_t>(flops_per_row, 1),
                           kGemmGrainFlops));
}

}  // namespace

void Gemm(const Matrix& a, const Matrix& b, Matrix* out) {
  SGNN_CHECK(out != nullptr);
  SGNN_CHECK_EQ(a.cols(), b.rows());
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  *out = Matrix(m, n);
  if (m == 0 || k == 0 || n == 0) return;
  const auto rows = RowRangesFor(m, k * n);
  par::ParallelFor("tensor.gemm", rows, [&](int, par::Range range) {
    // k-panelled i-k-j: the b panel stays cache-hot across the shard's
    // rows, and each output element still accumulates in ascending k — the
    // same summation order as the naive loop, so blocking changes no bits.
    uint64_t nnz = 0;
    for (int64_t p0 = 0; p0 < k; p0 += kGemmPanel) {
      const int64_t p1 = std::min(k, p0 + kGemmPanel);
      for (int64_t i = range.begin; i < range.end; ++i) {
        const float* arow = a.data() + i * k;
        float* orow = out->data() + i * n;
        for (int64_t p = p0; p < p1; ++p) {
          const float av = arow[p];
          if (av == 0.0f) continue;
          ++nnz;
          const float* brow = b.data() + p * n;
          for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
        }
      }
    }
    // Bill the multiplies actually issued: the zero-skip fast path does no
    // work, so sparse operands (ReLU outputs, masks) are not overbilled.
    CountMoved(nnz * static_cast<uint64_t>(n));
  });
}

void GemmTransposeA(const Matrix& a, const Matrix& b, Matrix* out) {
  SGNN_CHECK(out != nullptr);
  SGNN_CHECK_EQ(a.rows(), b.rows());
  const int64_t m = a.cols(), k = a.rows(), n = b.cols();
  *out = Matrix(m, n);
  if (m == 0 || k == 0 || n == 0) return;
  // The k rows all scatter into the same m x n output, so shards reduce
  // into private partials that fold in ascending shard order — a fixed
  // summation tree, identical for any worker count (the tree differs from
  // the historical serial order, but deterministically so).
  const int shards = std::min(
      par::ShardsFor(k * m * n, kGemmGrainFlops), kMaxGemmPartials);
  const auto panels = par::SplitUniform(k, shards);
  std::vector<Matrix> partials(panels.size());
  par::ParallelFor("tensor.gemm_ta", panels, [&](int shard, par::Range pr) {
    Matrix& part = partials[static_cast<size_t>(shard)];
    part = Matrix(m, n);
    uint64_t nnz = 0;
    for (int64_t p = pr.begin; p < pr.end; ++p) {
      const float* arow = a.data() + p * a.cols();
      const float* brow = b.data() + p * n;
      for (int64_t i = 0; i < m; ++i) {
        const float av = arow[i];
        if (av == 0.0f) continue;
        ++nnz;
        float* prow = part.data() + i * n;
        for (int64_t j = 0; j < n; ++j) prow[j] += av * brow[j];
      }
    }
    CountMoved(nnz * static_cast<uint64_t>(n));
  });
  for (Matrix& part : partials) {
    for (int64_t i = 0; i < out->size(); ++i) {
      out->data()[i] += part.data()[i];
    }
  }
}

void GemmTransposeB(const Matrix& a, const Matrix& b, Matrix* out) {
  SGNN_CHECK(out != nullptr);
  SGNN_CHECK_EQ(a.cols(), b.cols());
  const int64_t m = a.rows(), k = a.cols(), n = b.rows();
  *out = Matrix(m, n);
  if (m == 0 || k == 0 || n == 0) return;
  const auto rows = RowRangesFor(m, k * n);
  par::ParallelFor("tensor.gemm_tb", rows, [&](int, par::Range range) {
    for (int64_t i = range.begin; i < range.end; ++i) {
      const float* arow = a.data() + i * k;
      float* orow = out->data() + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b.data() + j * k;
        double acc = 0.0;
        for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        orow[j] = static_cast<float>(acc);
      }
    }
    CountMoved(static_cast<uint64_t>(range.size()) * k * n);
  });
}

Matrix Transpose(const Matrix& m) {
  Matrix out(m.cols(), m.rows());
  for (int64_t r = 0; r < m.rows(); ++r) {
    for (int64_t c = 0; c < m.cols(); ++c) out.at(c, r) = m.at(r, c);
  }
  return out;
}

void Axpy(float alpha, const Matrix& other, Matrix* m) {
  SGNN_CHECK(m != nullptr);
  SGNN_CHECK_EQ(m->rows(), other.rows());
  SGNN_CHECK_EQ(m->cols(), other.cols());
  par::ParallelFor("tensor.axpy", ElemRanges(m->size()),
                   [&](int, par::Range r) {
                     for (int64_t i = r.begin; i < r.end; ++i) {
                       m->data()[i] += alpha * other.data()[i];
                     }
                     CountMoved(static_cast<uint64_t>(r.size()));
                   });
}

void Scale(float alpha, Matrix* m) {
  SGNN_CHECK(m != nullptr);
  par::ParallelFor("tensor.scale", ElemRanges(m->size()),
                   [&](int, par::Range r) {
                     for (int64_t i = r.begin; i < r.end; ++i) {
                       m->data()[i] *= alpha;
                     }
                   });
}

void Hadamard(const Matrix& other, Matrix* m) {
  SGNN_CHECK(m != nullptr);
  SGNN_CHECK_EQ(m->rows(), other.rows());
  SGNN_CHECK_EQ(m->cols(), other.cols());
  par::ParallelFor("tensor.hadamard", ElemRanges(m->size()),
                   [&](int, par::Range r) {
                     for (int64_t i = r.begin; i < r.end; ++i) {
                       m->data()[i] *= other.data()[i];
                     }
                   });
}

void AddBiasRow(std::span<const float> bias, Matrix* m) {
  SGNN_CHECK(m != nullptr);
  SGNN_CHECK_EQ(static_cast<int64_t>(bias.size()), m->cols());
  const auto rows = par::SplitUniform(
      m->rows(), par::ShardsFor(m->size(), kElemGrain));
  par::ParallelFor("tensor.add_bias", rows, [&](int, par::Range range) {
    for (int64_t r = range.begin; r < range.end; ++r) {
      auto row = m->Row(r);
      for (int64_t c = 0; c < m->cols(); ++c) row[c] += bias[c];
    }
  });
}

void Relu(Matrix* m) {
  SGNN_CHECK(m != nullptr);
  par::ParallelFor("tensor.relu", ElemRanges(m->size()),
                   [&](int, par::Range r) {
                     for (int64_t i = r.begin; i < r.end; ++i) {
                       if (m->data()[i] < 0.0f) m->data()[i] = 0.0f;
                     }
                   });
}

void ReluBackward(const Matrix& pre_activation, Matrix* grad) {
  SGNN_CHECK(grad != nullptr);
  SGNN_CHECK_EQ(grad->rows(), pre_activation.rows());
  SGNN_CHECK_EQ(grad->cols(), pre_activation.cols());
  par::ParallelFor("tensor.relu_bwd", ElemRanges(grad->size()),
                   [&](int, par::Range r) {
                     for (int64_t i = r.begin; i < r.end; ++i) {
                       if (pre_activation.data()[i] <= 0.0f) {
                         grad->data()[i] = 0.0f;
                       }
                     }
                   });
}

void SoftmaxRows(Matrix* m) {
  SGNN_CHECK(m != nullptr);
  const auto rows = par::SplitUniform(
      m->rows(), par::ShardsFor(m->size(), kElemGrain));
  par::ParallelFor("tensor.softmax", rows, [&](int, par::Range range) {
    for (int64_t r = range.begin; r < range.end; ++r) {
      auto row = m->Row(r);
      float mx = *std::max_element(row.begin(), row.end());
      double sum = 0.0;
      for (float& v : row) {
        v = std::exp(v - mx);
        sum += v;
      }
      const float inv = static_cast<float>(1.0 / sum);
      for (float& v : row) v *= inv;
    }
  });
}

void LogSoftmaxRows(Matrix* m) {
  SGNN_CHECK(m != nullptr);
  const auto rows = par::SplitUniform(
      m->rows(), par::ShardsFor(m->size(), kElemGrain));
  par::ParallelFor("tensor.log_softmax", rows, [&](int, par::Range range) {
    for (int64_t r = range.begin; r < range.end; ++r) {
      auto row = m->Row(r);
      float mx = *std::max_element(row.begin(), row.end());
      double sum = 0.0;
      for (float v : row) sum += std::exp(static_cast<double>(v - mx));
      const float lse = mx + static_cast<float>(std::log(sum));
      for (float& v : row) v -= lse;
    }
  });
}

void NormalizeRows(int p, Matrix* m) {
  SGNN_CHECK(m != nullptr);
  SGNN_CHECK(p == 1 || p == 2);
  const auto rows = par::SplitUniform(
      m->rows(), par::ShardsFor(m->size(), kElemGrain));
  par::ParallelFor("tensor.normalize", rows, [&](int, par::Range range) {
    for (int64_t r = range.begin; r < range.end; ++r) {
      auto row = m->Row(r);
      double norm = 0.0;
      for (float v : row) {
        norm += (p == 1) ? std::fabs(v) : static_cast<double>(v) * v;
      }
      if (p == 2) norm = std::sqrt(norm);
      if (norm == 0.0) continue;
      const float inv = static_cast<float>(1.0 / norm);
      for (float& v : row) v *= inv;
    }
  });
}

std::vector<int64_t> ArgmaxRows(const Matrix& m) {
  std::vector<int64_t> out(static_cast<size_t>(m.rows()));
  for (int64_t r = 0; r < m.rows(); ++r) {
    auto row = m.Row(r);
    out[static_cast<size_t>(r)] =
        std::max_element(row.begin(), row.end()) - row.begin();
  }
  return out;
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  SGNN_CHECK_EQ(a.rows(), b.rows());
  Matrix out(a.rows(), a.cols() + b.cols());
  for (int64_t r = 0; r < a.rows(); ++r) {
    auto arow = a.Row(r);
    auto brow = b.Row(r);
    auto orow = out.Row(r);
    std::copy(arow.begin(), arow.end(), orow.begin());
    std::copy(brow.begin(), brow.end(), orow.begin() + a.cols());
  }
  return out;
}

double FrobeniusNorm(const Matrix& m) {
  double acc = 0.0;
  for (int64_t i = 0; i < m.size(); ++i) {
    acc += static_cast<double>(m.data()[i]) * m.data()[i];
  }
  return std::sqrt(acc);
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  SGNN_CHECK_EQ(a.rows(), b.rows());
  SGNN_CHECK_EQ(a.cols(), b.cols());
  double mx = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) {
    mx = std::max(mx, std::fabs(static_cast<double>(a.data()[i]) - b.data()[i]));
  }
  return mx;
}

double Dot(std::span<const float> a, std::span<const float> b) {
  SGNN_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += static_cast<double>(a[i]) * b[i];
  return acc;
}

double Norm2(std::span<const float> v) {
  double acc = 0.0;
  for (float x : v) acc += static_cast<double>(x) * x;
  return std::sqrt(acc);
}

}  // namespace sgnn::tensor
