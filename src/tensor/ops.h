#ifndef SGNN_TENSOR_OPS_H_
#define SGNN_TENSOR_OPS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.h"

namespace sgnn::tensor {

/// Dense kernels used by the NN stack and the spectral/decoupled modules.
/// All kernels are single-threaded and instrument `common::GlobalCounters()`
/// with the number of scalars they move.

/// out = a * b. Requires a.cols == b.rows; `out` is resized/overwritten.
void Gemm(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a^T * b (avoids materialising the transpose).
void GemmTransposeA(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a * b^T.
void GemmTransposeB(const Matrix& a, const Matrix& b, Matrix* out);

/// Returns the transpose of `m`.
Matrix Transpose(const Matrix& m);

/// m += alpha * other (element-wise). Shapes must match.
void Axpy(float alpha, const Matrix& other, Matrix* m);

/// m *= alpha (element-wise).
void Scale(float alpha, Matrix* m);

/// Element-wise product: m *= other.
void Hadamard(const Matrix& other, Matrix* m);

/// Adds a length-cols bias row vector to every row of `m`.
void AddBiasRow(std::span<const float> bias, Matrix* m);

/// In-place ReLU.
void Relu(Matrix* m);

/// grad *= 1[pre_activation > 0]; the backward of `Relu`.
void ReluBackward(const Matrix& pre_activation, Matrix* grad);

/// Row-wise softmax, numerically stabilised, in place.
void SoftmaxRows(Matrix* m);

/// Row-wise log-softmax, numerically stabilised, in place.
void LogSoftmaxRows(Matrix* m);

/// Normalises each row to unit Lp norm (p in {1, 2}); zero rows untouched.
void NormalizeRows(int p, Matrix* m);

/// Index of the maximum entry per row (ties break to the lowest index).
std::vector<int64_t> ArgmaxRows(const Matrix& m);

/// Horizontal concatenation [a | b]; row counts must match.
Matrix ConcatCols(const Matrix& a, const Matrix& b);

/// Frobenius norm.
double FrobeniusNorm(const Matrix& m);

/// Largest absolute entry difference between two same-shape matrices.
double MaxAbsDiff(const Matrix& a, const Matrix& b);

/// Dot product of two equal-length spans.
double Dot(std::span<const float> a, std::span<const float> b);

/// Euclidean norm of a span.
double Norm2(std::span<const float> v);

}  // namespace sgnn::tensor

#endif  // SGNN_TENSOR_OPS_H_
