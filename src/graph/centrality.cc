#include "graph/centrality.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/counters.h"

namespace sgnn::graph {

std::vector<int64_t> TrianglesPerNode(const CsrGraph& graph) {
  const NodeId n = graph.num_nodes();
  // Rank nodes by (degree, id); orient each edge toward the higher rank
  // and intersect forward-neighbour lists.
  std::vector<NodeId> rank(n);
  {
    std::vector<NodeId> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&graph](NodeId a, NodeId b) {
      const auto da = graph.OutDegree(a), db = graph.OutDegree(b);
      return da != db ? da < db : a < b;
    });
    for (NodeId i = 0; i < n; ++i) rank[order[i]] = i;
  }
  std::vector<std::vector<NodeId>> forward(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : graph.Neighbors(u)) {
      if (rank[u] < rank[v]) forward[u].push_back(v);
    }
    std::sort(forward[u].begin(), forward[u].end());
  }
  std::vector<int64_t> triangles(n, 0);
  uint64_t merge_steps = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : forward[u]) {
      // Triangles u-v-w with w in forward[u] ∩ forward[v].
      const auto& fu = forward[u];
      const auto& fv = forward[v];
      size_t i = 0, j = 0;
      while (i < fu.size() && j < fv.size()) {
        ++merge_steps;
        if (fu[i] == fv[j]) {
          triangles[u]++;
          triangles[v]++;
          triangles[fu[i]]++;
          ++i;
          ++j;
        } else if (fu[i] < fv[j]) {
          ++i;
        } else {
          ++j;
        }
      }
    }
  }
  // Orientation scan reads every directed edge once; each merge step is
  // one forward-list entry visit.
  common::GlobalCounters().edges_touched += graph.num_edges() + merge_steps;
  return triangles;
}

int64_t CountTriangles(const CsrGraph& graph) {
  auto per_node = TrianglesPerNode(graph);
  const int64_t total = std::accumulate(per_node.begin(), per_node.end(),
                                        static_cast<int64_t>(0));
  return total / 3;
}

std::vector<int> CoreNumbers(const CsrGraph& graph) {
  const NodeId n = graph.num_nodes();
  std::vector<int> degree(n);
  int max_degree = 0;
  for (NodeId u = 0; u < n; ++u) {
    degree[u] = static_cast<int>(graph.OutDegree(u));
    max_degree = std::max(max_degree, degree[u]);
  }
  // Bucket sort by degree (Batagelj–Zaveršnik peeling).
  std::vector<int> bin(static_cast<size_t>(max_degree) + 2, 0);
  for (NodeId u = 0; u < n; ++u) bin[static_cast<size_t>(degree[u])]++;
  int start = 0;
  for (size_t d = 0; d < bin.size(); ++d) {
    const int count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<NodeId> sorted(n);
  std::vector<int> position(n);
  {
    std::vector<int> cursor(bin.begin(), bin.end());
    for (NodeId u = 0; u < n; ++u) {
      position[u] = cursor[static_cast<size_t>(degree[u])]++;
      sorted[static_cast<size_t>(position[u])] = u;
    }
  }
  std::vector<int> core(n);
  for (NodeId i = 0; i < n; ++i) {
    const NodeId u = sorted[i];
    core[u] = degree[u];
    for (NodeId v : graph.Neighbors(u)) {
      if (degree[v] <= degree[u]) continue;
      // Move v one bucket down: swap with the first node of its bucket.
      const int dv = degree[v];
      const int pos_v = position[v];
      const int pos_first = bin[static_cast<size_t>(dv)];
      const NodeId first = sorted[static_cast<size_t>(pos_first)];
      if (first != v) {
        std::swap(sorted[static_cast<size_t>(pos_v)],
                  sorted[static_cast<size_t>(pos_first)]);
        position[v] = pos_first;
        position[first] = pos_v;
      }
      bin[static_cast<size_t>(dv)]++;
      degree[v]--;
    }
  }
  // The peel visits every directed edge exactly once.
  common::GlobalCounters().edges_touched += graph.num_edges();
  return core;
}

std::vector<double> GlobalPageRank(const CsrGraph& graph, double alpha,
                                   double tol, int max_iters) {
  SGNN_CHECK(alpha > 0.0 && alpha < 1.0);
  const NodeId n = graph.num_nodes();
  SGNN_CHECK_GT(n, 0u);
  std::vector<double> pr(n, 1.0 / n);
  std::vector<double> next(n, 0.0);
  int iters_run = 0;
  for (int iter = 0; iter < max_iters; ++iter) {
    ++iters_run;
    double dangling = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (NodeId u = 0; u < n; ++u) {
      const double wdeg = graph.WeightedDegree(u);
      if (wdeg == 0.0) {
        dangling += pr[u];
        continue;
      }
      const double spread = (1.0 - alpha) * pr[u] / wdeg;
      auto nbrs = graph.Neighbors(u);
      auto ws = graph.Weights(u);
      for (size_t i = 0; i < nbrs.size(); ++i) next[nbrs[i]] += spread * ws[i];
    }
    const double uniform = (alpha + (1.0 - alpha) * dangling) / n;
    double diff = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      next[u] += uniform;
      diff += std::fabs(next[u] - pr[u]);
    }
    pr.swap(next);
    if (diff < tol) break;
  }
  const uint64_t edge_work =
      static_cast<uint64_t>(iters_run) * graph.num_edges();
  auto& counters = common::GlobalCounters();
  counters.edges_touched += edge_work;
  counters.floats_moved += edge_work;  // one weighted value per edge
  return pr;
}

std::vector<double> ImportanceWeights(const CsrGraph& graph,
                                      ImportanceMetric metric) {
  const NodeId n = graph.num_nodes();
  std::vector<double> weights(n, 0.0);
  switch (metric) {
    case ImportanceMetric::kDegree:
      for (NodeId u = 0; u < n; ++u) {
        weights[u] = static_cast<double>(graph.OutDegree(u));
      }
      break;
    case ImportanceMetric::kCore: {
      auto core = CoreNumbers(graph);
      for (NodeId u = 0; u < n; ++u) weights[u] = core[u];
      break;
    }
    case ImportanceMetric::kTriangles: {
      auto triangles = TrianglesPerNode(graph);
      for (NodeId u = 0; u < n; ++u) {
        weights[u] = static_cast<double>(triangles[u]);
      }
      break;
    }
    case ImportanceMetric::kPageRank:
      weights = GlobalPageRank(graph, 0.15, 1e-10);
      break;
  }
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total > 0.0) {
    for (double& w : weights) w /= total;
  }
  return weights;
}

}  // namespace sgnn::graph
