#ifndef SGNN_GRAPH_CENTRALITY_H_
#define SGNN_GRAPH_CENTRALITY_H_

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

namespace sgnn::graph {

/// Centrality / importance metrics (§3.1.4: "graph centrality metrics can
/// be utilized to measure the importance of components for sampling").

/// Exact triangle count per node (each triangle counted once per corner)
/// via the forward (degree-ordered) algorithm; O(m^{3/2}).
std::vector<int64_t> TrianglesPerNode(const CsrGraph& graph);

/// Total number of distinct triangles in the graph.
int64_t CountTriangles(const CsrGraph& graph);

/// Core number per node (the largest k such that the node survives in
/// the k-core) via the standard peeling algorithm; O(m).
std::vector<int> CoreNumbers(const CsrGraph& graph);

/// Global (non-personalised) PageRank by power iteration to L1 tolerance
/// `tol`; teleport probability `alpha` (mass `alpha` is redistributed
/// uniformly each step). Dangling mass is redistributed uniformly.
std::vector<double> GlobalPageRank(const CsrGraph& graph, double alpha,
                                   double tol, int max_iters = 200);

/// Importance weights for samplers: one of the above, normalised to sum
/// to 1. Exposed as a convenience for importance-sampling pipelines.
enum class ImportanceMetric { kDegree, kCore, kTriangles, kPageRank };
std::vector<double> ImportanceWeights(const CsrGraph& graph,
                                      ImportanceMetric metric);

}  // namespace sgnn::graph

#endif  // SGNN_GRAPH_CENTRALITY_H_
