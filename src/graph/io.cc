#include "graph/io.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace sgnn::graph {

common::Status SaveEdgeList(const CsrGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return common::Status::IOError("cannot open for write: " + path);
  out << "# nodes " << graph.num_nodes() << "\n";
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    auto nbrs = graph.Neighbors(u);
    auto ws = graph.Weights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      out << u << ' ' << nbrs[i] << ' ' << ws[i] << '\n';
    }
  }
  if (!out) return common::Status::IOError("write failed: " + path);
  return common::Status::OK();
}

common::StatusOr<CsrGraph> LoadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return common::Status::IOError("cannot open for read: " + path);
  std::vector<Edge> edges;
  NodeId num_nodes = 0;
  bool have_header = false;
  std::string line;
  int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream hs(line.substr(1));
      std::string word;
      if (hs >> word && word == "nodes") {
        uint64_t n = 0;
        if (hs >> n) {
          num_nodes = static_cast<NodeId>(n);
          have_header = true;
        }
      }
      continue;
    }
    std::istringstream ls(line);
    uint64_t src = 0, dst = 0;
    float weight = 1.0f;
    if (!(ls >> src >> dst)) {
      return common::Status::InvalidArgument(
          "malformed edge at line " + std::to_string(line_no) + " of " + path);
    }
    ls >> weight;  // optional
    edges.push_back(Edge{static_cast<NodeId>(src), static_cast<NodeId>(dst),
                         weight});
  }
  if (!have_header) {
    for (const Edge& e : edges) {
      num_nodes = std::max({num_nodes, e.src + 1, e.dst + 1});
    }
  } else {
    for (const Edge& e : edges) {
      if (e.src >= num_nodes || e.dst >= num_nodes) {
        return common::Status::InvalidArgument(
            "edge id exceeds declared node count in " + path);
      }
    }
  }
  return CsrGraph::FromEdges(num_nodes, std::move(edges));
}

}  // namespace sgnn::graph
