#ifndef SGNN_GRAPH_METRICS_H_
#define SGNN_GRAPH_METRICS_H_

#include <span>
#include <vector>

#include "graph/csr_graph.h"

namespace sgnn::graph {

/// Summary statistics of the degree distribution.
struct DegreeStats {
  EdgeIndex min = 0;
  EdgeIndex max = 0;
  double mean = 0.0;
  double stddev = 0.0;
};

DegreeStats ComputeDegreeStats(const CsrGraph& graph);

/// Edge homophily: fraction of edges whose endpoints share a label.
/// The quantity the tutorial's heterophily discussion (§3.1.3, §3.2) is
/// parameterised by.
double EdgeHomophily(const CsrGraph& graph, std::span<const int> labels);

/// Connected components via BFS; returns the component id per node and the
/// number of components.
struct Components {
  std::vector<int> component_of;
  int count = 0;
};
Components ConnectedComponents(const CsrGraph& graph);

/// BFS distances from `source` (-1 for unreachable nodes).
std::vector<int> BfsDistances(const CsrGraph& graph, NodeId source);

/// Lower bound on the diameter via a double-sweep BFS from `start`.
int DiameterLowerBound(const CsrGraph& graph, NodeId start);

/// Average local clustering coefficient over a node sample (exact for
/// `sample_size >= n`). Deterministic given `seed`.
double ClusteringCoefficient(const CsrGraph& graph, NodeId sample_size,
                             uint64_t seed);

/// Number of nodes reachable within `hops` of `source` (including it):
/// the receptive-field size behind the neighbourhood-explosion claim (E2).
int64_t ReceptiveFieldSize(const CsrGraph& graph, NodeId source, int hops);

}  // namespace sgnn::graph

#endif  // SGNN_GRAPH_METRICS_H_
