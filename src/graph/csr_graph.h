#ifndef SGNN_GRAPH_CSR_GRAPH_H_
#define SGNN_GRAPH_CSR_GRAPH_H_

#include <span>
#include <vector>

#include "common/check.h"
#include "graph/coo.h"
#include "graph/types.h"

namespace sgnn::graph {

/// Immutable compressed-sparse-row graph: the frozen adjacency every other
/// module consumes. Adjacency lists are sorted by destination id, enabling
/// O(log d) `HasEdge` and deterministic iteration.
///
/// Edge counts are *directed*: an undirected graph built via
/// `EdgeListBuilder::Symmetrize()` reports twice its undirected edge count.
class CsrGraph {
 public:
  /// Empty graph with `num_nodes` isolated nodes.
  explicit CsrGraph(NodeId num_nodes = 0);

  /// Freezes a builder. De-duplicates first; builder edge order does not
  /// affect the result.
  static CsrGraph FromBuilder(EdgeListBuilder builder);

  /// Builds directly from (already clean) sorted-by-src edges.
  static CsrGraph FromEdges(NodeId num_nodes, std::vector<Edge> edges);

  NodeId num_nodes() const { return static_cast<NodeId>(offsets_.size() - 1); }
  EdgeIndex num_edges() const { return static_cast<EdgeIndex>(neighbors_.size()); }

  EdgeIndex OutDegree(NodeId u) const {
    SGNN_DCHECK(u < num_nodes());
    return offsets_[u + 1] - offsets_[u];
  }

  /// Sorted neighbour ids of u.
  std::span<const NodeId> Neighbors(NodeId u) const {
    SGNN_DCHECK(u < num_nodes());
    return {neighbors_.data() + offsets_[u],
            static_cast<size_t>(offsets_[u + 1] - offsets_[u])};
  }

  /// Edge weights aligned with `Neighbors(u)`.
  std::span<const float> Weights(NodeId u) const {
    SGNN_DCHECK(u < num_nodes());
    return {weights_.data() + offsets_[u],
            static_cast<size_t>(offsets_[u + 1] - offsets_[u])};
  }

  /// Offset of u's adjacency block in the flat arrays.
  EdgeIndex OffsetOf(NodeId u) const { return offsets_[u]; }

  /// Binary search over the sorted adjacency list.
  bool HasEdge(NodeId u, NodeId v) const;

  /// Weight of edge (u, v), or 0 if absent.
  float EdgeWeight(NodeId u, NodeId v) const;

  /// Sum of weights of u's out-edges.
  double WeightedDegree(NodeId u) const;

  /// All edges in (src-major, dst-minor) order; for round-tripping and
  /// edit pipelines.
  std::vector<Edge> ToEdges() const;

  /// Induced subgraph on `nodes` (ids relabelled 0..k-1 in the given order).
  /// Also returns nothing extra: callers keep the `nodes` vector as the
  /// local->global mapping.
  CsrGraph InducedSubgraph(std::span<const NodeId> nodes) const;

  const std::vector<EdgeIndex>& offsets() const { return offsets_; }
  const std::vector<NodeId>& neighbors() const { return neighbors_; }
  const std::vector<float>& weights() const { return weights_; }

 private:
  std::vector<EdgeIndex> offsets_;   // size num_nodes + 1
  std::vector<NodeId> neighbors_;    // size num_edges, sorted per node
  std::vector<float> weights_;       // aligned with neighbors_
};

}  // namespace sgnn::graph

#endif  // SGNN_GRAPH_CSR_GRAPH_H_
