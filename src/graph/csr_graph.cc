#include "graph/csr_graph.h"

#include <algorithm>
#include <unordered_map>

namespace sgnn::graph {

CsrGraph::CsrGraph(NodeId num_nodes) : offsets_(num_nodes + 1, 0) {}

CsrGraph CsrGraph::FromBuilder(EdgeListBuilder builder) {
  builder.Deduplicate();
  return FromEdges(builder.num_nodes(), builder.edges());
}

CsrGraph CsrGraph::FromEdges(NodeId num_nodes, std::vector<Edge> edges) {
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  CsrGraph g(num_nodes);
  g.neighbors_.resize(edges.size());
  g.weights_.resize(edges.size());
  for (const Edge& e : edges) {
    SGNN_CHECK_LT(e.src, num_nodes);
    SGNN_CHECK_LT(e.dst, num_nodes);
    g.offsets_[e.src + 1]++;
  }
  for (NodeId u = 0; u < num_nodes; ++u) g.offsets_[u + 1] += g.offsets_[u];
  std::vector<EdgeIndex> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges) {
    const EdgeIndex pos = cursor[e.src]++;
    g.neighbors_[static_cast<size_t>(pos)] = e.dst;
    g.weights_[static_cast<size_t>(pos)] = e.weight;
  }
  return g;
}

bool CsrGraph::HasEdge(NodeId u, NodeId v) const {
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

float CsrGraph::EdgeWeight(NodeId u, NodeId v) const {
  auto nbrs = Neighbors(u);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return 0.0f;
  return Weights(u)[static_cast<size_t>(it - nbrs.begin())];
}

double CsrGraph::WeightedDegree(NodeId u) const {
  double acc = 0.0;
  for (float w : Weights(u)) acc += w;
  return acc;
}

std::vector<Edge> CsrGraph::ToEdges() const {
  std::vector<Edge> out;
  out.reserve(static_cast<size_t>(num_edges()));
  for (NodeId u = 0; u < num_nodes(); ++u) {
    auto nbrs = Neighbors(u);
    auto ws = Weights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      out.push_back(Edge{u, nbrs[i], ws[i]});
    }
  }
  return out;
}

CsrGraph CsrGraph::InducedSubgraph(std::span<const NodeId> nodes) const {
  std::unordered_map<NodeId, NodeId> local;
  local.reserve(nodes.size() * 2);
  for (size_t i = 0; i < nodes.size(); ++i) {
    SGNN_CHECK_LT(nodes[i], num_nodes());
    const bool inserted =
        local.emplace(nodes[i], static_cast<NodeId>(i)).second;
    SGNN_CHECK(inserted);  // Duplicate node in induced-subgraph request.
  }
  std::vector<Edge> edges;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const NodeId u = nodes[i];
    auto nbrs = Neighbors(u);
    auto ws = Weights(u);
    for (size_t j = 0; j < nbrs.size(); ++j) {
      auto it = local.find(nbrs[j]);
      if (it == local.end()) continue;
      edges.push_back(Edge{static_cast<NodeId>(i), it->second, ws[j]});
    }
  }
  return FromEdges(static_cast<NodeId>(nodes.size()), std::move(edges));
}

}  // namespace sgnn::graph
