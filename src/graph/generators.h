#ifndef SGNN_GRAPH_GENERATORS_H_
#define SGNN_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/csr_graph.h"

namespace sgnn::graph {

/// Synthetic graph generators. All outputs are undirected (symmetrised),
/// simple (no self loops, no parallel edges) and deterministic given the
/// seed. These stand in for the real datasets the tutorial cites: every
/// claim is parameterised by a graph *property* (scale, degree skew,
/// homophily), which the generators control directly.

/// G(n, m): `num_edges` undirected edges placed uniformly at random.
CsrGraph ErdosRenyi(NodeId num_nodes, int64_t num_edges, uint64_t seed);

/// Barabási–Albert preferential attachment: each incoming node attaches to
/// `edges_per_node` existing nodes with probability proportional to degree.
/// Produces the heavy-tailed degree distributions behind the tutorial's
/// neighbourhood-explosion discussion.
CsrGraph BarabasiAlbert(NodeId num_nodes, int edges_per_node, uint64_t seed);

/// R-MAT recursive-matrix generator (Chakrabarti et al.): `num_nodes` must
/// be a power of two. Skewed, community-ish graphs at large scale.
struct RmatConfig {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;  // d = 1 - a - b - c
};
CsrGraph Rmat(NodeId num_nodes, int64_t num_edges, const RmatConfig& config,
              uint64_t seed);

/// Stochastic block model with a single homophily dial.
///
/// `homophily` is the expected fraction of each node's edges that stay
/// inside its own class: 1/num_classes is the uninformative level, values
/// near 1 are homophilous (Cora-like), values near 0 are heterophilous
/// (the anomaly-detection regime of §3.1.3 "Multi-scale").
struct SbmConfig {
  NodeId num_nodes = 0;
  int num_classes = 2;
  double avg_degree = 10.0;
  double homophily = 0.8;
};

/// SBM sample: the graph plus the planted class of every node.
struct SbmGraph {
  CsrGraph graph;
  std::vector<int> labels;
};

SbmGraph StochasticBlockModel(const SbmConfig& config, uint64_t seed);

/// Deterministic fixtures for tests and small examples.
CsrGraph Path(NodeId num_nodes);
CsrGraph Cycle(NodeId num_nodes);
CsrGraph Star(NodeId num_leaves);      ///< Node 0 is the hub.
CsrGraph Complete(NodeId num_nodes);
CsrGraph Grid(NodeId rows, NodeId cols);

/// Zachary's karate club (34 nodes, 78 undirected edges) with the canonical
/// two-faction labels; the classic community-structure fixture.
SbmGraph KarateClub();

}  // namespace sgnn::graph

#endif  // SGNN_GRAPH_GENERATORS_H_
