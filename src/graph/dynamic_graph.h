#ifndef SGNN_GRAPH_DYNAMIC_GRAPH_H_
#define SGNN_GRAPH_DYNAMIC_GRAPH_H_

#include <vector>

#include "common/rng.h"
#include "graph/csr_graph.h"

namespace sgnn::graph {

/// Append-only dynamic graph with edge timestamps: the streaming-graph
/// substrate of §3.4.2 ("Dynamic graphs") and the setting GENTI's
/// walk-based extraction targets. Edges arrive with non-decreasing
/// timestamps; adjacency is maintained incrementally, and any past state
/// can be frozen into a `CsrGraph` snapshot.
class DynamicGraph {
 public:
  explicit DynamicGraph(NodeId num_nodes);

  NodeId num_nodes() const { return static_cast<NodeId>(adjacency_.size()); }
  int64_t num_edges() const { return num_edges_; }  ///< Directed count.

  /// Appends an undirected edge at `timestamp`. Timestamps must be
  /// non-decreasing across calls (stream order).
  void AddUndirectedEdge(NodeId u, NodeId v, int64_t timestamp);

  /// Current out-degree of u.
  int64_t Degree(NodeId u) const {
    SGNN_DCHECK(u < num_nodes());
    return static_cast<int64_t>(adjacency_[u].size());
  }

  /// Snapshot of all edges with timestamp <= `timestamp` as a static
  /// CSR graph (equal to building that prefix of the stream statically).
  CsrGraph SnapshotAt(int64_t timestamp) const;

  /// Snapshot of everything seen so far.
  CsrGraph Snapshot() const;

  /// One temporal random walk from `seed` starting at `start_time`:
  /// the first step takes an edge with timestamp >= start_time, and each
  /// later step an edge with a strictly larger timestamp than the one
  /// just taken (time-respecting paths, CTDNE-style), chosen uniformly
  /// among the eligible edges. Stops early when no eligible edge exists.
  /// Returns visited nodes including the seed.
  std::vector<NodeId> TemporalWalk(NodeId seed, int max_steps,
                                   int64_t start_time,
                                   common::Rng* rng) const;

 private:
  struct Arc {
    NodeId to;
    int64_t timestamp;
  };
  // Per node, arcs in arrival (= timestamp) order, so the eligible
  // suffix for a temporal step is found by binary search.
  std::vector<std::vector<Arc>> adjacency_;
  int64_t num_edges_ = 0;
  int64_t last_timestamp_ = 0;
};

}  // namespace sgnn::graph

#endif  // SGNN_GRAPH_DYNAMIC_GRAPH_H_
