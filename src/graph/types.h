#ifndef SGNN_GRAPH_TYPES_H_
#define SGNN_GRAPH_TYPES_H_

#include <cstdint>

namespace sgnn::graph {

/// Node identifier. 32 bits covers the multi-million-node graphs this
/// library targets while halving adjacency memory vs 64-bit ids.
using NodeId = uint32_t;

/// Edge-array index / count; 64-bit because edge counts exceed 2^32 on the
/// graph scales the paper discusses.
using EdgeIndex = int64_t;

/// Invalid / "no node" sentinel.
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

}  // namespace sgnn::graph

#endif  // SGNN_GRAPH_TYPES_H_
