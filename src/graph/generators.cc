#include "graph/generators.h"

#include <algorithm>
#include <cmath>

namespace sgnn::graph {

namespace {

CsrGraph Finish(EdgeListBuilder builder) {
  builder.RemoveSelfLoops();
  builder.Symmetrize();
  return CsrGraph::FromBuilder(std::move(builder));
}

}  // namespace

CsrGraph ErdosRenyi(NodeId num_nodes, int64_t num_edges, uint64_t seed) {
  SGNN_CHECK_GE(num_nodes, 2u);
  common::Rng rng(seed);
  EdgeListBuilder builder(num_nodes);
  for (int64_t i = 0; i < num_edges; ++i) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(num_nodes));
    NodeId v = static_cast<NodeId>(rng.UniformInt(num_nodes));
    if (u == v) continue;
    builder.AddEdge(u, v);
  }
  return Finish(std::move(builder));
}

CsrGraph BarabasiAlbert(NodeId num_nodes, int edges_per_node, uint64_t seed) {
  SGNN_CHECK_GE(edges_per_node, 1);
  SGNN_CHECK_GT(num_nodes, static_cast<NodeId>(edges_per_node));
  common::Rng rng(seed);
  EdgeListBuilder builder(num_nodes);
  // `targets` holds one entry per edge endpoint, so uniform draws from it
  // realise preferential attachment.
  std::vector<NodeId> targets;
  targets.reserve(static_cast<size_t>(num_nodes) * edges_per_node * 2);
  // Seed clique over the first edges_per_node + 1 nodes.
  const NodeId seed_nodes = static_cast<NodeId>(edges_per_node) + 1;
  for (NodeId u = 0; u < seed_nodes; ++u) {
    for (NodeId v = u + 1; v < seed_nodes; ++v) {
      builder.AddEdge(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  for (NodeId u = seed_nodes; u < num_nodes; ++u) {
    std::vector<NodeId> chosen;
    while (static_cast<int>(chosen.size()) < edges_per_node) {
      NodeId v = targets[rng.UniformInt(targets.size())];
      if (v == u) continue;
      if (std::find(chosen.begin(), chosen.end(), v) != chosen.end()) continue;
      chosen.push_back(v);
    }
    for (NodeId v : chosen) {
      builder.AddEdge(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  return Finish(std::move(builder));
}

CsrGraph Rmat(NodeId num_nodes, int64_t num_edges, const RmatConfig& config,
              uint64_t seed) {
  SGNN_CHECK_GT(num_nodes, 0u);
  SGNN_CHECK((num_nodes & (num_nodes - 1)) == 0);  // power of two
  const double d = 1.0 - config.a - config.b - config.c;
  SGNN_CHECK(d >= 0.0);
  int scale = 0;
  while ((NodeId(1) << scale) < num_nodes) ++scale;
  common::Rng rng(seed);
  EdgeListBuilder builder(num_nodes);
  for (int64_t e = 0; e < num_edges; ++e) {
    NodeId u = 0, v = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double r = rng.Uniform();
      if (r < config.a) {
        // top-left quadrant: no bits set
      } else if (r < config.a + config.b) {
        v |= NodeId(1) << bit;
      } else if (r < config.a + config.b + config.c) {
        u |= NodeId(1) << bit;
      } else {
        u |= NodeId(1) << bit;
        v |= NodeId(1) << bit;
      }
    }
    if (u == v) continue;
    builder.AddEdge(u, v);
  }
  return Finish(std::move(builder));
}

SbmGraph StochasticBlockModel(const SbmConfig& config, uint64_t seed) {
  SGNN_CHECK_GT(config.num_nodes, 0u);
  SGNN_CHECK_GE(config.num_classes, 2);
  SGNN_CHECK(config.homophily >= 0.0 && config.homophily <= 1.0);
  common::Rng rng(seed);
  const NodeId n = config.num_nodes;
  const int k = config.num_classes;

  // Round-robin class assignment keeps blocks balanced and deterministic.
  std::vector<int> labels(n);
  std::vector<std::vector<NodeId>> members(static_cast<size_t>(k));
  for (NodeId u = 0; u < n; ++u) {
    labels[u] = static_cast<int>(u % static_cast<NodeId>(k));
    members[static_cast<size_t>(labels[u])].push_back(u);
  }

  // G(n, m)-style SBM: place the expected number of intra-/inter-class
  // edges by sampling endpoint pairs uniformly within the class pair. This
  // realises the target homophily in expectation and scales linearly in
  // the edge count (a pairwise Bernoulli sweep would be quadratic).
  const double total_edges = config.avg_degree * n / 2.0;
  const int64_t intra_edges =
      static_cast<int64_t>(std::llround(total_edges * config.homophily));
  const int64_t inter_edges =
      static_cast<int64_t>(std::llround(total_edges * (1.0 - config.homophily)));

  EdgeListBuilder builder(n);
  for (int64_t e = 0; e < intra_edges; ++e) {
    const auto& block = members[rng.UniformInt(static_cast<uint64_t>(k))];
    if (block.size() < 2) continue;
    NodeId u = block[rng.UniformInt(block.size())];
    NodeId v = block[rng.UniformInt(block.size())];
    if (u == v) continue;
    builder.AddEdge(u, v);
  }
  for (int64_t e = 0; e < inter_edges; ++e) {
    uint64_t a = rng.UniformInt(static_cast<uint64_t>(k));
    uint64_t b = rng.UniformInt(static_cast<uint64_t>(k - 1));
    if (b >= a) ++b;
    const auto& block_a = members[a];
    const auto& block_b = members[b];
    if (block_a.empty() || block_b.empty()) continue;
    builder.AddEdge(block_a[rng.UniformInt(block_a.size())],
                    block_b[rng.UniformInt(block_b.size())]);
  }
  SbmGraph out;
  out.graph = Finish(std::move(builder));
  out.labels = std::move(labels);
  return out;
}

CsrGraph Path(NodeId num_nodes) {
  EdgeListBuilder builder(num_nodes);
  for (NodeId u = 0; u + 1 < num_nodes; ++u) builder.AddUndirectedEdge(u, u + 1);
  return CsrGraph::FromBuilder(std::move(builder));
}

CsrGraph Cycle(NodeId num_nodes) {
  SGNN_CHECK_GE(num_nodes, 3u);
  EdgeListBuilder builder(num_nodes);
  for (NodeId u = 0; u < num_nodes; ++u) {
    builder.AddUndirectedEdge(u, (u + 1) % num_nodes);
  }
  return CsrGraph::FromBuilder(std::move(builder));
}

CsrGraph Star(NodeId num_leaves) {
  EdgeListBuilder builder(num_leaves + 1);
  for (NodeId leaf = 1; leaf <= num_leaves; ++leaf) {
    builder.AddUndirectedEdge(0, leaf);
  }
  return CsrGraph::FromBuilder(std::move(builder));
}

CsrGraph Complete(NodeId num_nodes) {
  EdgeListBuilder builder(num_nodes);
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (NodeId v = u + 1; v < num_nodes; ++v) builder.AddUndirectedEdge(u, v);
  }
  return CsrGraph::FromBuilder(std::move(builder));
}

CsrGraph Grid(NodeId rows, NodeId cols) {
  EdgeListBuilder builder(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.AddUndirectedEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.AddUndirectedEdge(id(r, c), id(r + 1, c));
    }
  }
  return CsrGraph::FromBuilder(std::move(builder));
}

SbmGraph KarateClub() {
  // Zachary (1977), 0-indexed edge list.
  static constexpr int kEdges[][2] = {
      {0, 1},   {0, 2},   {0, 3},   {0, 4},   {0, 5},   {0, 6},   {0, 7},
      {0, 8},   {0, 10},  {0, 11},  {0, 12},  {0, 13},  {0, 17},  {0, 19},
      {0, 21},  {0, 31},  {1, 2},   {1, 3},   {1, 7},   {1, 13},  {1, 17},
      {1, 19},  {1, 21},  {1, 30},  {2, 3},   {2, 7},   {2, 8},   {2, 9},
      {2, 13},  {2, 27},  {2, 28},  {2, 32},  {3, 7},   {3, 12},  {3, 13},
      {4, 6},   {4, 10},  {5, 6},   {5, 10},  {5, 16},  {6, 16},  {8, 30},
      {8, 32},  {8, 33},  {9, 33},  {13, 33}, {14, 32}, {14, 33}, {15, 32},
      {15, 33}, {18, 32}, {18, 33}, {19, 33}, {20, 32}, {20, 33}, {22, 32},
      {22, 33}, {23, 25}, {23, 27}, {23, 29}, {23, 32}, {23, 33}, {24, 25},
      {24, 27}, {24, 31}, {25, 31}, {26, 29}, {26, 33}, {27, 33}, {28, 31},
      {28, 33}, {29, 32}, {29, 33}, {30, 32}, {30, 33}, {31, 32}, {31, 33},
      {32, 33}};
  static constexpr int kFaction[34] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0,
                                       0, 0, 1, 1, 0, 0, 1, 0, 1, 0, 1, 1,
                                       1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
  EdgeListBuilder builder(34);
  for (const auto& e : kEdges) {
    builder.AddUndirectedEdge(static_cast<NodeId>(e[0]),
                              static_cast<NodeId>(e[1]));
  }
  SbmGraph out;
  out.graph = CsrGraph::FromBuilder(std::move(builder));
  out.labels.assign(kFaction, kFaction + 34);
  return out;
}

}  // namespace sgnn::graph
