#include "graph/metrics.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/counters.h"
#include "common/rng.h"

namespace sgnn::graph {

DegreeStats ComputeDegreeStats(const CsrGraph& graph) {
  DegreeStats stats;
  const NodeId n = graph.num_nodes();
  if (n == 0) return stats;
  stats.min = graph.OutDegree(0);
  double sum = 0.0, sum_sq = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    const EdgeIndex d = graph.OutDegree(u);
    stats.min = std::min(stats.min, d);
    stats.max = std::max(stats.max, d);
    sum += static_cast<double>(d);
    sum_sq += static_cast<double>(d) * static_cast<double>(d);
  }
  stats.mean = sum / n;
  stats.stddev = std::sqrt(std::max(0.0, sum_sq / n - stats.mean * stats.mean));
  return stats;
}

double EdgeHomophily(const CsrGraph& graph, std::span<const int> labels) {
  SGNN_CHECK_EQ(labels.size(), static_cast<size_t>(graph.num_nodes()));
  if (graph.num_edges() == 0) return 0.0;
  int64_t same = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.Neighbors(u)) {
      if (labels[u] == labels[v]) ++same;
    }
  }
  common::GlobalCounters().edges_touched += graph.num_edges();
  return static_cast<double>(same) / static_cast<double>(graph.num_edges());
}

Components ConnectedComponents(const CsrGraph& graph) {
  Components out;
  out.component_of.assign(graph.num_nodes(), -1);
  std::queue<NodeId> frontier;
  for (NodeId root = 0; root < graph.num_nodes(); ++root) {
    if (out.component_of[root] != -1) continue;
    const int comp = out.count++;
    out.component_of[root] = comp;
    frontier.push(root);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (NodeId v : graph.Neighbors(u)) {
        if (out.component_of[v] == -1) {
          out.component_of[v] = comp;
          frontier.push(v);
        }
      }
    }
  }
  // Every node is popped exactly once, so every directed edge is read once.
  common::GlobalCounters().edges_touched += graph.num_edges();
  return out;
}

std::vector<int> BfsDistances(const CsrGraph& graph, NodeId source) {
  SGNN_CHECK_LT(source, graph.num_nodes());
  std::vector<int> dist(graph.num_nodes(), -1);
  dist[source] = 0;
  std::queue<NodeId> frontier;
  frontier.push(source);
  uint64_t edges = 0;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    edges += graph.OutDegree(u);
    for (NodeId v : graph.Neighbors(u)) {
      if (dist[v] == -1) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  common::GlobalCounters().edges_touched += edges;
  return dist;
}

int DiameterLowerBound(const CsrGraph& graph, NodeId start) {
  auto first = BfsDistances(graph, start);
  NodeId far = start;
  int best = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    if (first[u] > best) {
      best = first[u];
      far = u;
    }
  }
  auto second = BfsDistances(graph, far);
  for (int d : second) best = std::max(best, d);
  return best;
}

double ClusteringCoefficient(const CsrGraph& graph, NodeId sample_size,
                             uint64_t seed) {
  const NodeId n = graph.num_nodes();
  if (n == 0) return 0.0;
  common::Rng rng(seed);
  std::vector<NodeId> nodes;
  if (sample_size >= n) {
    nodes.resize(n);
    for (NodeId u = 0; u < n; ++u) nodes[u] = u;
  } else {
    for (uint64_t idx : rng.SampleWithoutReplacement(n, sample_size)) {
      nodes.push_back(static_cast<NodeId>(idx));
    }
  }
  double acc = 0.0;
  int64_t counted = 0;
  uint64_t probes = 0;
  for (NodeId u : nodes) {
    auto nbrs = graph.Neighbors(u);
    const size_t d = nbrs.size();
    if (d < 2) continue;
    int64_t closed = 0;
    probes += static_cast<uint64_t>(d) + (d * (d - 1)) / 2;
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = i + 1; j < d; ++j) {
        if (graph.HasEdge(nbrs[i], nbrs[j])) ++closed;
      }
    }
    acc += 2.0 * static_cast<double>(closed) /
           (static_cast<double>(d) * static_cast<double>(d - 1));
    ++counted;
  }
  // One neighbour-list scan per sampled node plus one adjacency probe per
  // neighbour pair.
  common::GlobalCounters().edges_touched += probes;
  return counted == 0 ? 0.0 : acc / static_cast<double>(counted);
}

int64_t ReceptiveFieldSize(const CsrGraph& graph, NodeId source, int hops) {
  SGNN_CHECK_GE(hops, 0);
  auto dist = BfsDistances(graph, source);
  int64_t count = 0;
  for (int d : dist) {
    if (d >= 0 && d <= hops) ++count;
  }
  return count;
}

}  // namespace sgnn::graph
