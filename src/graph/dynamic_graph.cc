#include "graph/dynamic_graph.h"

#include <algorithm>

namespace sgnn::graph {

DynamicGraph::DynamicGraph(NodeId num_nodes) : adjacency_(num_nodes) {}

void DynamicGraph::AddUndirectedEdge(NodeId u, NodeId v, int64_t timestamp) {
  SGNN_CHECK_LT(u, num_nodes());
  SGNN_CHECK_LT(v, num_nodes());
  SGNN_CHECK_GE(timestamp, last_timestamp_);  // Stream order.
  last_timestamp_ = timestamp;
  adjacency_[u].push_back(Arc{v, timestamp});
  adjacency_[v].push_back(Arc{u, timestamp});
  num_edges_ += 2;
}

CsrGraph DynamicGraph::SnapshotAt(int64_t timestamp) const {
  EdgeListBuilder builder(num_nodes());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (const Arc& arc : adjacency_[u]) {
      if (arc.timestamp > timestamp) break;  // Arrival order per node.
      builder.AddEdge(u, arc.to);
    }
  }
  builder.Deduplicate();
  return CsrGraph::FromBuilder(std::move(builder));
}

CsrGraph DynamicGraph::Snapshot() const { return SnapshotAt(last_timestamp_); }

std::vector<NodeId> DynamicGraph::TemporalWalk(NodeId seed, int max_steps,
                                               int64_t start_time,
                                               common::Rng* rng) const {
  SGNN_CHECK(rng != nullptr);
  SGNN_CHECK_LT(seed, num_nodes());
  SGNN_CHECK_GE(max_steps, 0);
  std::vector<NodeId> walk = {seed};
  NodeId cur = seed;
  // First step accepts timestamps >= start_time; afterwards timestamps
  // must strictly increase (otherwise the walk could bounce back along
  // the edge it just took).
  int64_t min_time = start_time;
  for (int step = 0; step < max_steps; ++step) {
    const auto& arcs = adjacency_[cur];
    // Eligible arcs form a suffix (timestamps are in arrival order).
    const auto first = std::lower_bound(
        arcs.begin(), arcs.end(), min_time,
        [](const Arc& arc, int64_t t) { return arc.timestamp < t; });
    if (first == arcs.end()) break;
    const size_t eligible = static_cast<size_t>(arcs.end() - first);
    const Arc& pick = *(first + static_cast<int64_t>(rng->UniformInt(eligible)));
    cur = pick.to;
    min_time = pick.timestamp + 1;
    walk.push_back(cur);
  }
  return walk;
}

}  // namespace sgnn::graph
