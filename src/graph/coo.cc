#include "graph/coo.h"

#include <algorithm>

#include "common/check.h"

namespace sgnn::graph {

void EdgeListBuilder::AddEdge(NodeId src, NodeId dst, float weight) {
  SGNN_CHECK_LT(src, num_nodes_);
  SGNN_CHECK_LT(dst, num_nodes_);
  edges_.push_back(Edge{src, dst, weight});
}

void EdgeListBuilder::AddUndirectedEdge(NodeId u, NodeId v, float weight) {
  AddEdge(u, v, weight);
  AddEdge(v, u, weight);
}

void EdgeListBuilder::Symmetrize() {
  const size_t n = edges_.size();
  edges_.reserve(2 * n);
  for (size_t i = 0; i < n; ++i) {
    const Edge& e = edges_[i];
    if (e.src != e.dst) edges_.push_back(Edge{e.dst, e.src, e.weight});
  }
  Deduplicate();
}

void EdgeListBuilder::RemoveSelfLoops() {
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [](const Edge& e) { return e.src == e.dst; }),
               edges_.end());
}

void EdgeListBuilder::Deduplicate() {
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  std::vector<Edge> out;
  out.reserve(edges_.size());
  for (const Edge& e : edges_) {
    if (!out.empty() && out.back().src == e.src && out.back().dst == e.dst) {
      out.back().weight += e.weight;
    } else {
      out.push_back(e);
    }
  }
  edges_ = std::move(out);
}

}  // namespace sgnn::graph
