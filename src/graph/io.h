#ifndef SGNN_GRAPH_IO_H_
#define SGNN_GRAPH_IO_H_

#include <string>

#include "common/status.h"
#include "graph/csr_graph.h"

namespace sgnn::graph {

/// Writes the graph as a whitespace-separated "src dst weight" text edge
/// list (one directed edge per line), preceded by a "# nodes <n>" header.
common::Status SaveEdgeList(const CsrGraph& graph, const std::string& path);

/// Loads a graph written by `SaveEdgeList` (or any compatible edge list;
/// missing weights default to 1). Lines starting with '#' other than the
/// node-count header are ignored. Without a header the node count is
/// 1 + max id.
common::StatusOr<CsrGraph> LoadEdgeList(const std::string& path);

}  // namespace sgnn::graph

#endif  // SGNN_GRAPH_IO_H_
