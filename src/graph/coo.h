#ifndef SGNN_GRAPH_COO_H_
#define SGNN_GRAPH_COO_H_

#include <cstddef>
#include <vector>

#include "graph/types.h"

namespace sgnn::graph {

/// A single weighted directed edge in coordinate form.
struct Edge {
  NodeId src = 0;
  NodeId dst = 0;
  float weight = 1.0f;
};

/// Mutable coordinate-format edge list used to assemble graphs before
/// freezing them into CSR. Append-only; structural clean-up (symmetrise,
/// de-duplicate, drop self-loops) happens at build time.
class EdgeListBuilder {
 public:
  /// `num_nodes` fixes the node-id universe [0, num_nodes).
  explicit EdgeListBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

  NodeId num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Appends a directed edge; ids must be < num_nodes.
  void AddEdge(NodeId src, NodeId dst, float weight = 1.0f);

  /// Appends both (u,v) and (v,u).
  void AddUndirectedEdge(NodeId u, NodeId v, float weight = 1.0f);

  /// Adds the reverse of every present edge (idempotent after Deduplicate).
  void Symmetrize();

  /// Removes u->u edges.
  void RemoveSelfLoops();

  /// Collapses parallel edges, summing weights. Leaves edges sorted by
  /// (src, dst).
  void Deduplicate();

 private:
  NodeId num_nodes_;
  std::vector<Edge> edges_;
};

}  // namespace sgnn::graph

#endif  // SGNN_GRAPH_COO_H_
