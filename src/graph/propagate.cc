#include "graph/propagate.h"

#include <cmath>

#include "common/counters.h"
#include "par/par.h"
#include "simd/simd.h"

namespace sgnn::graph {

namespace {

/// Edge traversals per shard below which a section stays single-shard.
constexpr int64_t kEdgeGrain = 32 * 1024;

/// Cache-blocked CSR schedule for wide-feature SpMM. Skewed degree
/// distributions make the x-row gather the bottleneck: a hub neighbour's
/// row is re-fetched from memory once per referencing output row when the
/// full row (cols * 4 bytes) no longer fits alongside the working set. The
/// blocked schedule walks output rows in panels of ~kSpmmPanelEdges edges
/// and feature columns in blocks of kSpmmColBlock floats, so each gathered
/// x-row *slice* is a few cache lines and the panel's hub slices stay
/// resident across the rows that share them. This is loop blocking only —
/// per output element the edge accumulation order is unchanged (ascending
/// edge index, self-loop last), so the result is bit-identical to the
/// unblocked walk. Engaged only above kSpmmColBlockEngage columns; narrow
/// rows already fit and the re-scanned coefficient stream would be pure
/// overhead.
constexpr int64_t kSpmmColBlock = 64;        ///< Floats per column block.
constexpr int64_t kSpmmColBlockEngage = 128; ///< Engage when cols exceed.
constexpr int64_t kSpmmPanelEdges = 4096;    ///< Edge budget per row panel.

/// Edge-balanced row shards over the graph's CSR offsets. Geometry depends
/// only on the graph, so shard-local work is identical for any worker
/// count (the par determinism contract).
std::vector<par::Range> NodeShards(const CsrGraph& graph) {
  return par::RowRanges(graph.offsets(),
                        par::ShardsFor(graph.num_edges(), kEdgeGrain));
}

}  // namespace

Propagator::Propagator(const CsrGraph& graph, Normalization norm,
                       bool add_self_loops)
    : graph_(graph), norm_(norm) {
  const NodeId n = graph.num_nodes();
  const auto shards = NodeShards(graph);
  std::vector<double> degree(n, 0.0);
  par::ParallelFor("prop.degrees", shards, [&](int, par::Range range) {
    for (int64_t u = range.begin; u < range.end; ++u) {
      degree[u] = graph.WeightedDegree(static_cast<NodeId>(u)) +
                  (add_self_loops ? 1.0 : 0.0);
    }
  });
  auto inv = [](double d) { return d > 0.0 ? 1.0 / d : 0.0; };
  auto inv_sqrt = [](double d) { return d > 0.0 ? 1.0 / std::sqrt(d) : 0.0; };

  coeff_.resize(static_cast<size_t>(graph.num_edges()));
  par::ParallelFor("prop.coeffs", shards, [&](int, par::Range range) {
    for (int64_t uu = range.begin; uu < range.end; ++uu) {
      const NodeId u = static_cast<NodeId>(uu);
      auto nbrs = graph.Neighbors(u);
      auto ws = graph.Weights(u);
      const EdgeIndex base = graph.OffsetOf(u);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        const NodeId v = nbrs[i];
        double c = ws[i];
        switch (norm_) {
          case Normalization::kNone:
            break;
          case Normalization::kRow:
            c *= inv(degree[u]);
            break;
          case Normalization::kColumn:
            c *= inv(degree[v]);
            break;
          case Normalization::kSymmetric:
            c *= inv_sqrt(degree[u]) * inv_sqrt(degree[v]);
            break;
        }
        coeff_[static_cast<size_t>(base) + i] = static_cast<float>(c);
      }
    }
  });
  if (add_self_loops) {
    self_loop_coeff_.resize(n);
    for (NodeId u = 0; u < n; ++u) {
      double c = 1.0;
      switch (norm_) {
        case Normalization::kNone:
          break;
        case Normalization::kRow:
        case Normalization::kColumn:
          c = inv(degree[u]);
          break;
        case Normalization::kSymmetric:
          c = inv(degree[u]);  // 1/sqrt(d) * 1/sqrt(d)
          break;
      }
      self_loop_coeff_[u] = static_cast<float>(c);
    }
  }
}

void Propagator::Apply(const tensor::Matrix& x, tensor::Matrix* out) const {
  SGNN_CHECK(out != nullptr);
  SGNN_CHECK_EQ(x.rows(), static_cast<int64_t>(graph_.num_nodes()));
  SGNN_DCHECK_EQ(coeff_.size(), static_cast<size_t>(graph_.num_edges()));
  const int64_t cols = x.cols();
  *out = tensor::Matrix(x.rows(), cols);
  // Row-partitioned SpMM: each shard owns a contiguous block of output
  // rows and gathers from x, so no write is shared and no atomics are
  // needed; per-row accumulation order is the serial order, so the result
  // is bit-identical for any worker count. The accumulation row is the
  // axpy microkernel (unfused mul/add lanes, simd contract #1), and wide
  // feature matrices additionally take the cache-blocked panel schedule
  // above — neither changes a bit.
  const simd::KernelTable& kt = simd::Active();
  par::ParallelFor("prop.apply", NodeShards(graph_), [&](int, par::Range range) {
    // Applied axpy rows (nonzero edge coefficients + engaged self-loops):
    // the data-movement term of the byte bill.
    uint64_t applied = 0;
    auto row_block = [&](NodeId u, int64_t j0, int64_t bw) {
      auto nbrs = graph_.Neighbors(u);
      const float* cs = coeff_.data() + graph_.OffsetOf(u);
      float* orow = out->data() + static_cast<int64_t>(u) * cols + j0;
      for (size_t i = 0; i < nbrs.size(); ++i) {
        const float c = cs[i];
        if (c == 0.0f) continue;
        ++applied;
        kt.axpy(c, x.data() + static_cast<int64_t>(nbrs[i]) * cols + j0,
                orow, bw);
      }
      if (!self_loop_coeff_.empty() && self_loop_coeff_[u] != 0.0f) {
        ++applied;
        kt.axpy(self_loop_coeff_[u],
                x.data() + static_cast<int64_t>(u) * cols + j0, orow, bw);
      }
    };
    if (cols > kSpmmColBlockEngage) {
      for (int64_t p0 = range.begin; p0 < range.end;) {
        // Grow the panel until its edge mass reaches the budget (always at
        // least one row, so a hub row becomes its own panel).
        int64_t p1 = p0;
        const EdgeIndex panel_base = graph_.OffsetOf(static_cast<NodeId>(p0));
        while (p1 < range.end &&
               (p1 == p0 ||
                graph_.OffsetOf(static_cast<NodeId>(p1)) - panel_base <
                    kSpmmPanelEdges)) {
          ++p1;
        }
        for (int64_t j0 = 0; j0 < cols; j0 += kSpmmColBlock) {
          const int64_t bw = std::min(kSpmmColBlock, cols - j0);
          for (int64_t uu = p0; uu < p1; ++uu) {
            row_block(static_cast<NodeId>(uu), j0, bw);
          }
        }
        p0 = p1;
      }
      // The column loop visits each (row, edge) pair once per block; the
      // `applied` bill below wants whole rows, so rescale.
      applied /= static_cast<uint64_t>((cols + kSpmmColBlock - 1) /
                                       kSpmmColBlock);
    } else {
      for (int64_t uu = range.begin; uu < range.end; ++uu) {
        row_block(static_cast<NodeId>(uu), 0, cols);
      }
    }
    const uint64_t edges = static_cast<uint64_t>(
        graph_.OffsetOf(static_cast<NodeId>(range.end)) -
        graph_.OffsetOf(static_cast<NodeId>(range.begin)));
    auto& counters = common::GlobalCounters();
    counters.edges_touched += edges;
    counters.floats_moved += edges * static_cast<uint64_t>(cols);
    // Bytes: the coefficient (float) and neighbour-index (NodeId) streams
    // are scanned for every edge; each applied axpy row reads the gathered
    // x slice plus the output row (RMW) and writes the output row.
    counters.BillBytes(
        edges * (sizeof(float) + sizeof(NodeId)) +
            applied * 2u * static_cast<uint64_t>(cols) * sizeof(float),
        applied * static_cast<uint64_t>(cols) * sizeof(float));
  });
}

void Propagator::ApplyVector(const std::vector<double>& x,
                             std::vector<double>* out) const {
  SGNN_CHECK(out != nullptr);
  SGNN_CHECK_EQ(x.size(), static_cast<size_t>(graph_.num_nodes()));
  SGNN_DCHECK_EQ(coeff_.size(), static_cast<size_t>(graph_.num_edges()));
  out->assign(x.size(), 0.0);
  par::ParallelFor(
      "prop.apply_vec", NodeShards(graph_), [&](int, par::Range range) {
        for (int64_t uu = range.begin; uu < range.end; ++uu) {
          const NodeId u = static_cast<NodeId>(uu);
          auto nbrs = graph_.Neighbors(u);
          const float* cs = coeff_.data() + graph_.OffsetOf(u);
          double acc = 0.0;
          for (size_t i = 0; i < nbrs.size(); ++i) acc += cs[i] * x[nbrs[i]];
          if (!self_loop_coeff_.empty()) acc += self_loop_coeff_[u] * x[u];
          (*out)[u] = acc;
        }
        common::GlobalCounters().edges_touched += static_cast<uint64_t>(
            graph_.OffsetOf(static_cast<NodeId>(range.end)) -
            graph_.OffsetOf(static_cast<NodeId>(range.begin)));
      });
}

void Propagator::ApplyTranspose(const tensor::Matrix& x,
                                tensor::Matrix* out) const {
  // Deliberately serial: the transpose scatters into rows indexed by the
  // *neighbour* ids, so row partitioning does not give disjoint writes.
  // Making this parallel would need a transposed CSR or atomics (which
  // break bit-determinism); the kernel is off the hot path.
  SGNN_CHECK(out != nullptr);
  SGNN_CHECK_EQ(x.rows(), static_cast<int64_t>(graph_.num_nodes()));
  SGNN_DCHECK_EQ(coeff_.size(), static_cast<size_t>(graph_.num_edges()));
  const int64_t cols = x.cols();
  *out = tensor::Matrix(x.rows(), cols);
  const simd::KernelTable& kt = simd::Active();
  uint64_t applied = 0;
  for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
    auto nbrs = graph_.Neighbors(u);
    const float* cs = coeff_.data() + graph_.OffsetOf(u);
    const float* xrow = x.data() + static_cast<int64_t>(u) * cols;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const float c = cs[i];
      if (c == 0.0f) continue;
      ++applied;
      kt.axpy(c, xrow, out->data() + static_cast<int64_t>(nbrs[i]) * cols,
              cols);
    }
    if (!self_loop_coeff_.empty() && self_loop_coeff_[u] != 0.0f) {
      ++applied;
      kt.axpy(self_loop_coeff_[u], xrow,
              out->data() + static_cast<int64_t>(u) * cols, cols);
    }
  }
  auto& counters = common::GlobalCounters();
  counters.edges_touched += static_cast<uint64_t>(graph_.num_edges());
  counters.floats_moved +=
      static_cast<uint64_t>(graph_.num_edges()) * static_cast<uint64_t>(cols);
  counters.BillBytes(
      static_cast<uint64_t>(graph_.num_edges()) *
              (sizeof(float) + sizeof(NodeId)) +
          applied * 2u * static_cast<uint64_t>(cols) * sizeof(float),
      applied * static_cast<uint64_t>(cols) * sizeof(float));
}

tensor::Matrix PropagateKHops(const Propagator& prop, const tensor::Matrix& x,
                              int hops) {
  SGNN_CHECK_GE(hops, 0);
  tensor::Matrix cur = x;
  tensor::Matrix next;
  for (int k = 0; k < hops; ++k) {
    prop.Apply(cur, &next);
    cur = std::move(next);
  }
  return cur;
}

}  // namespace sgnn::graph
