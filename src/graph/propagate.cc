#include "graph/propagate.h"

#include <cmath>

#include "common/counters.h"
#include "par/par.h"

namespace sgnn::graph {

namespace {

/// Edge traversals per shard below which a section stays single-shard.
constexpr int64_t kEdgeGrain = 32 * 1024;

/// Edge-balanced row shards over the graph's CSR offsets. Geometry depends
/// only on the graph, so shard-local work is identical for any worker
/// count (the par determinism contract).
std::vector<par::Range> NodeShards(const CsrGraph& graph) {
  return par::RowRanges(graph.offsets(),
                        par::ShardsFor(graph.num_edges(), kEdgeGrain));
}

}  // namespace

Propagator::Propagator(const CsrGraph& graph, Normalization norm,
                       bool add_self_loops)
    : graph_(graph), norm_(norm) {
  const NodeId n = graph.num_nodes();
  const auto shards = NodeShards(graph);
  std::vector<double> degree(n, 0.0);
  par::ParallelFor("prop.degrees", shards, [&](int, par::Range range) {
    for (int64_t u = range.begin; u < range.end; ++u) {
      degree[u] = graph.WeightedDegree(static_cast<NodeId>(u)) +
                  (add_self_loops ? 1.0 : 0.0);
    }
  });
  auto inv = [](double d) { return d > 0.0 ? 1.0 / d : 0.0; };
  auto inv_sqrt = [](double d) { return d > 0.0 ? 1.0 / std::sqrt(d) : 0.0; };

  coeff_.resize(static_cast<size_t>(graph.num_edges()));
  par::ParallelFor("prop.coeffs", shards, [&](int, par::Range range) {
    for (int64_t uu = range.begin; uu < range.end; ++uu) {
      const NodeId u = static_cast<NodeId>(uu);
      auto nbrs = graph.Neighbors(u);
      auto ws = graph.Weights(u);
      const EdgeIndex base = graph.OffsetOf(u);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        const NodeId v = nbrs[i];
        double c = ws[i];
        switch (norm_) {
          case Normalization::kNone:
            break;
          case Normalization::kRow:
            c *= inv(degree[u]);
            break;
          case Normalization::kColumn:
            c *= inv(degree[v]);
            break;
          case Normalization::kSymmetric:
            c *= inv_sqrt(degree[u]) * inv_sqrt(degree[v]);
            break;
        }
        coeff_[static_cast<size_t>(base) + i] = static_cast<float>(c);
      }
    }
  });
  if (add_self_loops) {
    self_loop_coeff_.resize(n);
    for (NodeId u = 0; u < n; ++u) {
      double c = 1.0;
      switch (norm_) {
        case Normalization::kNone:
          break;
        case Normalization::kRow:
        case Normalization::kColumn:
          c = inv(degree[u]);
          break;
        case Normalization::kSymmetric:
          c = inv(degree[u]);  // 1/sqrt(d) * 1/sqrt(d)
          break;
      }
      self_loop_coeff_[u] = static_cast<float>(c);
    }
  }
}

void Propagator::Apply(const tensor::Matrix& x, tensor::Matrix* out) const {
  SGNN_CHECK(out != nullptr);
  SGNN_CHECK_EQ(x.rows(), static_cast<int64_t>(graph_.num_nodes()));
  SGNN_DCHECK_EQ(coeff_.size(), static_cast<size_t>(graph_.num_edges()));
  const int64_t cols = x.cols();
  *out = tensor::Matrix(x.rows(), cols);
  // Row-partitioned SpMM: each shard owns a contiguous block of output
  // rows and gathers from x, so no write is shared and no atomics are
  // needed; per-row accumulation order is the serial order, so the result
  // is bit-identical for any worker count.
  par::ParallelFor("prop.apply", NodeShards(graph_), [&](int, par::Range range) {
    for (int64_t uu = range.begin; uu < range.end; ++uu) {
      const NodeId u = static_cast<NodeId>(uu);
      auto nbrs = graph_.Neighbors(u);
      const float* cs = coeff_.data() + graph_.OffsetOf(u);
      float* orow = out->data() + static_cast<int64_t>(u) * cols;
      for (size_t i = 0; i < nbrs.size(); ++i) {
        const float c = cs[i];
        if (c == 0.0f) continue;
        const float* xrow = x.data() + static_cast<int64_t>(nbrs[i]) * cols;
        for (int64_t j = 0; j < cols; ++j) orow[j] += c * xrow[j];
      }
      if (!self_loop_coeff_.empty() && self_loop_coeff_[u] != 0.0f) {
        const float c = self_loop_coeff_[u];
        const float* xrow = x.data() + static_cast<int64_t>(u) * cols;
        for (int64_t j = 0; j < cols; ++j) orow[j] += c * xrow[j];
      }
    }
    const uint64_t edges = static_cast<uint64_t>(
        graph_.OffsetOf(static_cast<NodeId>(range.end)) -
        graph_.OffsetOf(static_cast<NodeId>(range.begin)));
    auto& counters = common::GlobalCounters();
    counters.edges_touched += edges;
    counters.floats_moved += edges * static_cast<uint64_t>(cols);
  });
}

void Propagator::ApplyVector(const std::vector<double>& x,
                             std::vector<double>* out) const {
  SGNN_CHECK(out != nullptr);
  SGNN_CHECK_EQ(x.size(), static_cast<size_t>(graph_.num_nodes()));
  SGNN_DCHECK_EQ(coeff_.size(), static_cast<size_t>(graph_.num_edges()));
  out->assign(x.size(), 0.0);
  par::ParallelFor(
      "prop.apply_vec", NodeShards(graph_), [&](int, par::Range range) {
        for (int64_t uu = range.begin; uu < range.end; ++uu) {
          const NodeId u = static_cast<NodeId>(uu);
          auto nbrs = graph_.Neighbors(u);
          const float* cs = coeff_.data() + graph_.OffsetOf(u);
          double acc = 0.0;
          for (size_t i = 0; i < nbrs.size(); ++i) acc += cs[i] * x[nbrs[i]];
          if (!self_loop_coeff_.empty()) acc += self_loop_coeff_[u] * x[u];
          (*out)[u] = acc;
        }
        common::GlobalCounters().edges_touched += static_cast<uint64_t>(
            graph_.OffsetOf(static_cast<NodeId>(range.end)) -
            graph_.OffsetOf(static_cast<NodeId>(range.begin)));
      });
}

void Propagator::ApplyTranspose(const tensor::Matrix& x,
                                tensor::Matrix* out) const {
  // Deliberately serial: the transpose scatters into rows indexed by the
  // *neighbour* ids, so row partitioning does not give disjoint writes.
  // Making this parallel would need a transposed CSR or atomics (which
  // break bit-determinism); the kernel is off the hot path.
  SGNN_CHECK(out != nullptr);
  SGNN_CHECK_EQ(x.rows(), static_cast<int64_t>(graph_.num_nodes()));
  SGNN_DCHECK_EQ(coeff_.size(), static_cast<size_t>(graph_.num_edges()));
  const int64_t cols = x.cols();
  *out = tensor::Matrix(x.rows(), cols);
  for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
    auto nbrs = graph_.Neighbors(u);
    const float* cs = coeff_.data() + graph_.OffsetOf(u);
    const float* xrow = x.data() + static_cast<int64_t>(u) * cols;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const float c = cs[i];
      if (c == 0.0f) continue;
      float* orow = out->data() + static_cast<int64_t>(nbrs[i]) * cols;
      for (int64_t j = 0; j < cols; ++j) orow[j] += c * xrow[j];
    }
    if (!self_loop_coeff_.empty() && self_loop_coeff_[u] != 0.0f) {
      const float c = self_loop_coeff_[u];
      float* orow = out->data() + static_cast<int64_t>(u) * cols;
      for (int64_t j = 0; j < cols; ++j) orow[j] += c * xrow[j];
    }
  }
  auto& counters = common::GlobalCounters();
  counters.edges_touched += static_cast<uint64_t>(graph_.num_edges());
  counters.floats_moved +=
      static_cast<uint64_t>(graph_.num_edges()) * static_cast<uint64_t>(cols);
}

tensor::Matrix PropagateKHops(const Propagator& prop, const tensor::Matrix& x,
                              int hops) {
  SGNN_CHECK_GE(hops, 0);
  tensor::Matrix cur = x;
  tensor::Matrix next;
  for (int k = 0; k < hops; ++k) {
    prop.Apply(cur, &next);
    cur = std::move(next);
  }
  return cur;
}

}  // namespace sgnn::graph
