#ifndef SGNN_GRAPH_PROPAGATE_H_
#define SGNN_GRAPH_PROPAGATE_H_

#include <vector>

#include "common/check.h"
#include "graph/csr_graph.h"
#include "tensor/matrix.h"

namespace sgnn::graph {

/// Adjacency normalisation used by graph propagation.
enum class Normalization {
  kNone,       ///< A
  kRow,        ///< D^-1 A            (random-walk / row-stochastic)
  kColumn,     ///< A D^-1            (PPR transition transpose)
  kSymmetric,  ///< D^-1/2 A D^-1/2   (GCN convolution)
};

/// Precomputed normalised sparse operator \hat{A}; the message-passing /
/// propagation kernel shared by all GNN models and decoupled methods.
///
/// With `add_self_loops`, the operator is built on A + I with degrees
/// incremented accordingly (the GCN "renormalisation trick"). Construction
/// normalises by *weighted* degree; zero-degree nodes propagate nothing.
class Propagator {
 public:
  Propagator(const CsrGraph& graph, Normalization norm, bool add_self_loops);

  /// out = \hat{A} x, dense feature version. `out` is overwritten.
  /// Instruments `common::GlobalCounters()` with edges touched and floats
  /// moved.
  void Apply(const tensor::Matrix& x, tensor::Matrix* out) const;

  /// Double-precision vector version (used by PPR / spectral iteration).
  void ApplyVector(const std::vector<double>& x, std::vector<double>* out) const;

  /// Applies the transpose operator \hat{A}^T (needed for backward passes
  /// on non-symmetric normalisations).
  void ApplyTranspose(const tensor::Matrix& x, tensor::Matrix* out) const;

  NodeId num_nodes() const { return graph_.num_nodes(); }
  EdgeIndex num_edges() const { return graph_.num_edges(); }
  Normalization normalization() const { return norm_; }
  bool self_loops() const { return self_loop_coeff_.size() > 0; }

  /// Normalised coefficient for the i-th stored edge of node u (aligned
  /// with `graph().Neighbors(u)`).
  std::span<const float> Coefficients(NodeId u) const {
    SGNN_DCHECK_LT(u, graph_.num_nodes());
    return {coeff_.data() + graph_.OffsetOf(u),
            static_cast<size_t>(graph_.OutDegree(u))};
  }

  /// Self-loop coefficient of node u (0 when self loops are disabled).
  float SelfLoopCoefficient(NodeId u) const {
    SGNN_DCHECK_LT(u, graph_.num_nodes());
    return self_loop_coeff_.empty() ? 0.0f : self_loop_coeff_[u];
  }

  const CsrGraph& graph() const { return graph_; }

 private:
  const CsrGraph& graph_;  // Not owned; must outlive the propagator.
  Normalization norm_;
  std::vector<float> coeff_;            // Per stored edge.
  std::vector<float> self_loop_coeff_;  // Per node; empty if no self loops.
};

/// Convenience: returns \hat{A}^k x by repeated application.
tensor::Matrix PropagateKHops(const Propagator& prop, const tensor::Matrix& x,
                              int hops);

}  // namespace sgnn::graph

#endif  // SGNN_GRAPH_PROPAGATE_H_
