#include "serve/admission.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"

namespace sgnn::serve {

const char* ShedTierName(ShedTier tier) {
  switch (tier) {
    case ShedTier::kExact:
      return "exact";
    case ShedTier::kStale:
      return "stale";
    case ShedTier::kReject:
      return "reject";
  }
  return "unknown";
}

ShedTier ShedPolicy::Decide(common::CircuitBreaker::State breaker,
                            double fill) const {
  if (breaker == common::CircuitBreaker::State::kClosed) {
    return ShedTier::kExact;
  }
  if (breaker == common::CircuitBreaker::State::kOpen && fill >= reject_fill) {
    return ShedTier::kReject;
  }
  return ShedTier::kStale;
}

AdmissionQueue::AdmissionQueue(const AdmissionConfig& config)
    : config_(config) {
  SGNN_CHECK_GT(config_.per_tenant_capacity, 0u);
  common::MutexLock lock(mu_);
  for (const auto& [id, quota] : config_.tenants) {
    tenants_.emplace(
        id, std::make_unique<Tenant>(quota, config_.per_tenant_capacity));
  }
}

AdmissionQueue::Tenant& AdmissionQueue::TenantFor(const std::string& id) {
  auto it = tenants_.find(id);
  if (it == tenants_.end()) {
    it = tenants_
             .emplace(id, std::make_unique<Tenant>(
                              config_.default_quota,
                              config_.per_tenant_capacity))
             .first;
  }
  return *it->second;
}

common::StatusOr<ShedTier> AdmissionQueue::Offer(
    InferenceRequest request, uint64_t cookie,
    common::CircuitBreaker::State breaker) {
  common::MutexLock lock(mu_);
  if (closed_) {
    return common::Status::FailedPrecondition("admission queue is closed");
  }
  const ShedTier tier = config_.shed.Decide(breaker, FillFractionLocked());
  if (tier == ShedTier::kReject) {
    return common::Status::Unavailable(
        "load shed: breaker open and admission queues saturated");
  }
  Tenant& tenant = TenantFor(request.tenant_id);
  if (tenant.tokens < 1.0) {
    return common::Status::ResourceExhausted("tenant '" + request.tenant_id +
                                             "' is out of quota tokens");
  }
  if (tier == ShedTier::kStale) request.stale_only = true;
  common::Status pushed =
      tenant.queue.TryPush(Queued{std::move(request), cookie});
  if (!pushed.ok()) return pushed;  // kUnavailable: per-tenant backpressure.
  tenant.tokens -= 1.0;
  cv_.notify_one();
  return tier;
}

bool AdmissionQueue::PopDispatch(InferenceRequest* request, uint64_t* cookie,
                                 int64_t timeout_micros) {
  SGNN_CHECK(request != nullptr);
  SGNN_CHECK(cookie != nullptr);
  common::MutexLock lock(mu_);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout_micros);
  for (;;) {
    Queued item;
    if (!paused_ && TryDwrrPop(&item)) {
      RefillAll();
      if (config_.record_dispatch_log) {
        dispatch_log_.push_back(item.request.tenant_id);
      }
      *request = std::move(item.request);
      *cookie = item.cookie;
      return true;
    }
    if (closed_ && !paused_) return false;  // Closed and fully drained.
    if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout) {
      // One more non-waiting attempt absorbs a wakeup that raced the
      // timeout; then give up.
      if (!paused_ && TryDwrrPop(&item)) {
        RefillAll();
        if (config_.record_dispatch_log) {
          dispatch_log_.push_back(item.request.tenant_id);
        }
        *request = std::move(item.request);
        *cookie = item.cookie;
        return true;
      }
      return false;
    }
  }
}

bool AdmissionQueue::TryDwrrPop(Queued* out) {
  if (tenants_.empty()) return false;
  // At most two sweeps over the tenant map: the first may spend visits
  // resetting deficits of empty queues; if any queue is non-empty, its
  // tenant accrues at least one grant within two sweeps (weights are
  // checked positive) unless quantum * weight < 1, in which case servicing
  // legitimately waits for enough full rounds — bounded here by giving
  // every non-empty tenant one grant per sweep and bailing once a full
  // double sweep produced nothing.
  const size_t max_visits = 2 * tenants_.size() + 2;
  bool any_nonempty = false;
  for (const auto& [id, tenant] : tenants_) {
    if (tenant->queue.size() > 0) {
      any_nonempty = true;
      break;
    }
  }
  if (!any_nonempty) return false;
  auto it = tenants_.lower_bound(cursor_);
  if (it == tenants_.end()) it = tenants_.begin();
  for (size_t visits = 0; visits < max_visits; ++visits) {
    Tenant& tenant = *it->second;
    const bool nonempty = tenant.queue.size() > 0;
    if (!cursor_granted_) {
      // Classic DRR: an idle tenant's deficit resets so it cannot hoard
      // service credit while it has nothing to send.
      if (nonempty) {
        tenant.deficit += config_.quantum * std::max(tenant.quota.weight, 0.0);
      } else {
        tenant.deficit = 0.0;
      }
      cursor_granted_ = true;
    }
    if (nonempty && tenant.deficit >= 1.0) {
      SGNN_CHECK(tenant.queue.TryPop(out));
      tenant.deficit -= 1.0;
      if (tenant.queue.size() == 0) {
        tenant.deficit = 0.0;
        ++it;
        if (it == tenants_.end()) it = tenants_.begin();
        cursor_ = it->first;
        cursor_granted_ = false;
      } else {
        cursor_ = it->first;
      }
      return true;
    }
    ++it;
    if (it == tenants_.end()) it = tenants_.begin();
    cursor_ = it->first;
    cursor_granted_ = false;
  }
  // quantum * weight < 1 for every backlogged tenant: deficits accrued this
  // call; the next call continues accruing until one crosses 1.
  return false;
}

void AdmissionQueue::RefillAll() {
  for (auto& [id, tenant] : tenants_) {
    tenant->tokens = std::min(tenant->quota.bucket_capacity,
                              tenant->tokens + tenant->quota.refill_per_dispatch);
  }
}

void AdmissionQueue::Pause() {
  common::MutexLock lock(mu_);
  paused_ = true;
}

void AdmissionQueue::Resume() {
  {
    common::MutexLock lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void AdmissionQueue::Close() {
  {
    common::MutexLock lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

size_t AdmissionQueue::TotalQueued() const {
  common::MutexLock lock(mu_);
  size_t total = 0;
  for (const auto& [id, tenant] : tenants_) total += tenant->queue.size();
  return total;
}

double AdmissionQueue::FillFraction() const {
  common::MutexLock lock(mu_);
  return FillFractionLocked();
}

double AdmissionQueue::FillFractionLocked() const {
  if (tenants_.empty()) return 0.0;
  size_t total = 0;
  for (const auto& [id, tenant] : tenants_) total += tenant->queue.size();
  const size_t capacity = tenants_.size() * config_.per_tenant_capacity;
  return static_cast<double>(total) / static_cast<double>(capacity);
}

std::vector<std::string> AdmissionQueue::DispatchLog() const {
  common::MutexLock lock(mu_);
  return dispatch_log_;
}

}  // namespace sgnn::serve
