#include "serve/batching_server.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/counters.h"

namespace sgnn::serve {

using Clock = std::chrono::steady_clock;

BatchingServer::BatchingServer(FrozenModel model, EmbeddingFn embed_fn,
                               graph::NodeId num_nodes,
                               const ServeConfig& config,
                               const core::RunContext& ctx)
    : config_(config),
      model_(std::move(model)),
      embed_fn_(std::move(embed_fn)),
      num_nodes_(num_nodes),
      queue_(config.queue_capacity),
      pool_(std::make_unique<common::ThreadPool>(config.num_workers)),
      cache_(num_nodes, model_.in_dim()),
      tracer_(ctx.tracer),
      faults_(ctx.faults),
      metrics_(ctx.metrics),
      breaker_(config.breaker) {
  SGNN_CHECK_GE(config.max_batch, 1);
  SGNN_CHECK_GE(config.max_delay_micros, 0);
  SGNN_CHECK_GE(config.num_workers, 1);
  SGNN_CHECK_GE(config.max_staleness, 0);
  SGNN_CHECK_GE(config.deadline_micros, 0);
  SGNN_CHECK_GE(config.embed_retry.max_attempts, 1);
  SGNN_CHECK(embed_fn_ != nullptr);
  base_ops_ = common::AggregateThreadCounters();
  batcher_ = std::thread([this] { BatcherLoop(); });
}

BatchingServer::~BatchingServer() { Shutdown(); }

common::StatusOr<std::future<InferenceResponse>> BatchingServer::Submit(
    const InferenceRequest& inference_request) {
  const graph::NodeId node = inference_request.node;
  if (node >= num_nodes_) {
    return common::Status::InvalidArgument("node id out of range");
  }
  // Injected admission fault (site "serve.admit", token = node id): bills
  // as a rejection, exactly like real backpressure, so resilience tests
  // can target admission without saturating the queue.
  if (faults_ != nullptr &&
      faults_->ShouldFail("serve.admit", static_cast<uint64_t>(node))) {
    metrics_.RecordRejected();
    return common::Status::Unavailable("injected admission fault");
  }
  const int64_t deadline_micros = inference_request.deadline_micros > 0
                                      ? inference_request.deadline_micros
                                      : config_.deadline_micros;
  Request request;
  request.node = node;
  request.tenant_id = inference_request.tenant_id;
  request.stale_only = inference_request.stale_only;
  request.enqueue_tick = latency_clock_.Next();
  request.deadline = deadline_micros > 0
                         ? common::Deadline::After(deadline_micros)
                         : common::Deadline::Infinite();
  std::future<InferenceResponse> future = request.promise.get_future();
  common::Status status = queue_.TryPush(std::move(request));
  if (!status.ok()) {
    if (status.code() == common::StatusCode::kUnavailable) {
      metrics_.RecordRejected();
    }
    return status;
  }
  return future;
}

void BatchingServer::WarmCache(const tensor::Matrix& embeddings) {
  SGNN_CHECK_EQ(embeddings.rows(), static_cast<int64_t>(num_nodes_));
  SGNN_CHECK_EQ(embeddings.cols(), model_.in_dim());
  const int64_t step = step_.load(std::memory_order_relaxed);
  common::WriterMutexLock lock(cache_mu_);
  for (int64_t u = 0; u < embeddings.rows(); ++u) {
    cache_.Put(static_cast<graph::NodeId>(u), embeddings.Row(u), step);
  }
}

ServeMetricsSnapshot BatchingServer::Metrics() const {
  ServeMetricsSnapshot snap = metrics_.Snapshot();
  snap.ops = common::OpCounters::Delta(base_ops_,
                                       common::AggregateThreadCounters());
  snap.health.breaker_state = common::CircuitBreaker::StateName(
      breaker_.state());
  snap.health.breaker_trips = static_cast<uint64_t>(breaker_.trips());
  // The breaker's own count is authoritative: it includes fast-failed
  // calls later rescued by a degraded serve.
  snap.health.breaker_fast_fails = static_cast<uint64_t>(breaker_.fast_fails());

  // Refresh the registry-side gauges that mirror server-owned state, so a
  // scrape taken after this call sees the breaker, worker pool, and
  // data-movement counters too. All scheduling-dependent, hence volatile.
  obs::MetricsRegistry& r = *metrics_.registry();
  r.GetGauge("sgnn_serve_breaker_state",
             "Circuit breaker state (0 closed, 1 open, 2 half-open).", {},
             obs::kVolatile)
      ->Set(static_cast<double>(static_cast<int>(breaker_.state())));
  r.GetGauge("sgnn_serve_breaker_trips",
             "Closed/half-open -> open transitions.", {}, obs::kVolatile)
      ->Set(static_cast<double>(breaker_.trips()));
  r.GetGauge("sgnn_serve_breaker_fast_fails",
             "Calls rejected by the open breaker (breaker-side count).", {},
             obs::kVolatile)
      ->Set(static_cast<double>(breaker_.fast_fails()));
  const common::ThreadPoolStats pool = pool_->Stats();
  r.GetGauge("sgnn_serve_pool_submitted", "Batches handed to the worker pool.",
             {}, obs::kVolatile)
      ->Set(static_cast<double>(pool.submitted));
  r.GetGauge("sgnn_serve_pool_executed", "Batches completed by the pool.", {},
             obs::kVolatile)
      ->Set(static_cast<double>(pool.executed));
  r.GetGauge("sgnn_serve_pool_queue_depth", "Tasks waiting in the pool queue.",
             {}, obs::kVolatile)
      ->Set(static_cast<double>(pool.queue_depth));
  r.GetGauge("sgnn_serve_pool_max_queue_depth",
             "Deepest pool queue observed.", {}, obs::kVolatile)
      ->Set(static_cast<double>(pool.max_queue_depth));
  r.GetGauge("sgnn_serve_pool_active", "Tasks executing right now.", {},
             obs::kVolatile)
      ->Set(static_cast<double>(pool.active));
  r.SetOpCounterGauges("sgnn_serve_ops",
                       "Serving-thread data movement since server start.", {},
                       snap.ops, obs::kVolatile);
  return snap;
}

void BatchingServer::Shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true)) return;
  queue_.Close();
  if (batcher_.joinable()) batcher_.join();
  pool_->Shutdown();  // Drains submitted batches before joining.
}

void BatchingServer::BatcherLoop() {
  const auto max_delay = std::chrono::microseconds(config_.max_delay_micros);
  const auto idle_poll = std::chrono::milliseconds(5);
  for (;;) {
    Request first;
    if (!queue_.WaitPop(&first, idle_poll)) {
      // Timeout, or closed-and-drained: only the latter ends the loop (no
      // new item can arrive after Close, so this is a stable condition).
      if (queue_.closed() && queue_.size() == 0) return;
      continue;
    }
    auto batch = std::make_shared<std::vector<Request>>();
    batch->push_back(std::move(first));
    const auto deadline = Clock::now() + max_delay;
    while (static_cast<int>(batch->size()) < config_.max_batch) {
      const auto now = Clock::now();
      if (now >= deadline) break;
      Request next;
      if (!queue_.WaitPop(&next, deadline - now)) break;
      batch->push_back(std::move(next));
    }
    metrics_.RecordBatch(batch->size(), queue_.size());

    // Admit at most num_workers concurrent batches: while this waits, the
    // bounded queue fills and Submit starts rejecting — backpressure
    // reaches the client instead of growing an invisible backlog.
    {
      common::MutexLock lock(inflight_mu_);
      while (in_flight_ >= config_.num_workers) inflight_cv_.wait(inflight_mu_);
      ++in_flight_;
    }
    pool_->Submit([this, batch] {
      ProcessBatch(batch.get());
      {
        common::MutexLock lock(inflight_mu_);
        --in_flight_;
      }
      inflight_cv_.notify_one();
    });
  }
}

common::Status BatchingServer::ResolveMiss(graph::NodeId node,
                                           const common::Deadline& dl,
                                           std::span<float> out, int64_t step,
                                           bool* degraded) {
  common::Status status;
  bool breaker_fast_fail = false;
  if (!breaker_.Allow()) {
    // Fast-fail without touching the (presumed dead) embedder.
    breaker_fast_fail = true;
    status = common::Status::Unavailable("embedder circuit breaker open");
  } else {
    for (int attempt = 1;; ++attempt) {
      status = embed_fn_(node, out);
      if (status.ok()) break;
      metrics_.RecordEmbedFailure();
      breaker_.RecordFailure();
      if (!common::RetryPolicy::Retryable(status.code()) ||
          attempt >= config_.embed_retry.max_attempts) {
        break;
      }
      const int64_t backoff = config_.embed_retry.BackoffMicros(
          attempt, static_cast<uint64_t>(node));
      if (!dl.infinite() && dl.remaining_micros() <= backoff) {
        break;  // The backoff alone would blow the deadline.
      }
      metrics_.RecordRetry();
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
      if (!breaker_.Allow()) {
        breaker_fast_fail = true;
        status = common::Status::Unavailable(
            "embedder circuit breaker opened during retries");
        break;
      }
    }
    if (status.ok()) {
      breaker_.RecordSuccess();
      if (config_.update_cache) {
        common::WriterMutexLock lock(cache_mu_);
        cache_.Put(node, out, step);
      }
      return status;
    }
  }

  // Persistent failure: degrade to the stale cache row when allowed —
  // a slightly old embedding beats an error page.
  if (config_.degraded_serving) {
    common::ReaderMutexLock lock(cache_mu_);
    if (cache_.Has(node)) {
      auto row = cache_.Get(node);
      std::copy(row.begin(), row.end(), out.begin());
      *degraded = true;
      return common::Status::OK();
    }
  }
  metrics_.RecordTerminalFailure(status.code(), breaker_fast_fail);
  return status;
}

void BatchingServer::ProcessBatch(std::vector<Request>* batch) {
  obs::TraceSpan span = obs::StartSpan(tracer_, "serve.batch", "serve");
  const int64_t step = step_.fetch_add(1, std::memory_order_relaxed);
  const int64_t n = static_cast<int64_t>(batch->size());
  const int64_t dim = model_.in_dim();

  tensor::Matrix embeddings(n, dim);
  std::vector<bool> hit(static_cast<size_t>(n), false);
  std::vector<bool> degraded(static_cast<size_t>(n), false);
  std::vector<common::Status> row_status(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const size_t s = static_cast<size_t>(i);
    Request& request = (*batch)[s];
    // Deadline check at dequeue: a request that expired while queued (or
    // waiting for a worker slot) skips all embedding work.
    if (request.deadline.expired()) {
      row_status[s] = common::Status::DeadlineExceeded(
          "request expired before processing");
      metrics_.RecordTerminalFailure(row_status[s].code(), false);
      continue;
    }
    const graph::NodeId node = request.node;
    {
      common::ReaderMutexLock lock(cache_mu_);
      const int64_t staleness = cache_.Staleness(node, step);
      if (staleness >= 0 && staleness <= config_.max_staleness) {
        auto row = cache_.Get(node);
        std::copy(row.begin(), row.end(), embeddings.Row(i).begin());
        hit[s] = true;
      } else if (request.stale_only && staleness >= 0) {
        // Stale-tier serve: the shed controller asked for the cached row
        // at any staleness, embedder untouched. Flagged degraded so the
        // client can tell it got yesterday's embedding.
        auto row = cache_.Get(node);
        std::copy(row.begin(), row.end(), embeddings.Row(i).begin());
        degraded[s] = true;
      }
    }
    if (!hit[s] && !degraded[s]) {
      if (request.stale_only) {
        // Stale-only miss: shedding forbids the embedder and there is no
        // row to fall back on — reject rather than do exact work.
        row_status[s] = common::Status::Unavailable(
            "stale-only request has no cached row");
        metrics_.RecordTerminalFailure(row_status[s].code(), false);
      } else {
        bool row_degraded = false;
        row_status[s] = ResolveMiss(node, request.deadline, embeddings.Row(i),
                                    step, &row_degraded);
        degraded[s] = row_degraded;
      }
    }
  }

  // The micro-batching win: one head forward for the whole batch. Rows
  // that failed to resolve are zero; their logits are never delivered.
  tensor::Matrix logits;
  model_.Forward(embeddings, &logits);

  for (int64_t i = 0; i < n; ++i) {
    const size_t s = static_cast<size_t>(i);
    Request& request = (*batch)[s];
    InferenceResponse response;
    response.node = request.node;
    response.tenant_id = std::move(request.tenant_id);
    response.latency_ticks = static_cast<int64_t>(latency_clock_.Next() -
                                                  request.enqueue_tick);
    if (row_status[s].ok() && request.deadline.expired()) {
      // Post-batch check: the result arrived too late to count.
      row_status[s] = common::Status::DeadlineExceeded(
          "request completed after its deadline");
      metrics_.RecordTerminalFailure(row_status[s].code(), false);
    }
    response.status = row_status[s];
    if (response.status.ok()) {
      auto row = logits.Row(i);
      response.logits.assign(row.begin(), row.end());
      response.predicted_class = static_cast<int>(
          std::max_element(row.begin(), row.end()) - row.begin());
      response.cache_hit = hit[s];
      response.degraded = degraded[s];
      metrics_.RecordRequest(response.latency_ticks, response.cache_hit,
                             response.degraded);
    }
    request.promise.set_value(std::move(response));
  }
}

}  // namespace sgnn::serve
