#include "serve/khop_embedder.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/counters.h"
#include "subgraph/khop.h"

namespace sgnn::serve {

using graph::NodeId;
using tensor::Matrix;

KHopEmbedder::KHopEmbedder(const graph::CsrGraph& graph,
                           const tensor::Matrix& features, int hops,
                           int64_t node_budget)
    : graph_(graph),
      features_(features),
      hops_(hops),
      node_budget_(node_budget) {
  SGNN_CHECK_GE(hops, 0);
  SGNN_CHECK_GE(node_budget, 0);
  SGNN_CHECK_EQ(features.rows(), static_cast<int64_t>(graph.num_nodes()));
  inv_sqrt_degree_.resize(graph.num_nodes());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    // Renormalisation-trick degree: weighted degree of A plus the self loop.
    const double d = graph.WeightedDegree(u) + 1.0;
    inv_sqrt_degree_[u] = static_cast<float>(1.0 / std::sqrt(d));
  }
}

void KHopEmbedder::Embed(NodeId center, std::span<float> out) const {
  SGNN_CHECK_EQ(static_cast<int64_t>(out.size()), dim());
  const subgraph::EgoNet ego =
      subgraph::ExtractKHop(graph_, center, hops_, node_budget_);
  const int64_t k = static_cast<int64_t>(ego.nodes.size());
  const int64_t cols = dim();

  // Gather the ball's raw features (the request's feature-movement cost).
  Matrix cur(k, cols);
  for (int64_t i = 0; i < k; ++i) {
    auto src = features_.Row(static_cast<int64_t>(ego.nodes[i]));
    std::copy(src.begin(), src.end(), cur.Row(i).begin());
  }
  auto& counters = common::GlobalCounters();
  counters.floats_moved += static_cast<uint64_t>(k * cols);
  counters.Acquire(static_cast<uint64_t>(2 * k * cols));

  // Local S^K over the ball with global-degree coefficients. Only the
  // center row is read out, so boundary inexactness never surfaces (see
  // header comment).
  Matrix next(k, cols);
  for (int step = 0; step < hops_; ++step) {
    next.Zero();
    for (int64_t u = 0; u < k; ++u) {
      const float inv_u = inv_sqrt_degree_[ego.nodes[u]];
      auto nbrs = ego.subgraph.Neighbors(static_cast<NodeId>(u));
      auto ws = ego.subgraph.Weights(static_cast<NodeId>(u));
      auto orow = next.Row(u);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        const float c =
            ws[i] * inv_u * inv_sqrt_degree_[ego.nodes[nbrs[i]]];
        if (c == 0.0f) continue;
        auto xrow = cur.Row(static_cast<int64_t>(nbrs[i]));
        for (int64_t j = 0; j < cols; ++j) orow[j] += c * xrow[j];
      }
      const float self_c = inv_u * inv_u;
      auto xrow = cur.Row(u);
      for (int64_t j = 0; j < cols; ++j) orow[j] += self_c * xrow[j];
    }
    std::swap(cur, next);
    counters.edges_touched += static_cast<uint64_t>(ego.subgraph.num_edges());
    counters.floats_moved +=
        static_cast<uint64_t>(ego.subgraph.num_edges()) *
        static_cast<uint64_t>(cols);
  }

  auto center_row = cur.Row(0);  // ego.nodes[0] == center by construction.
  std::copy(center_row.begin(), center_row.end(), out.begin());
  counters.Release(static_cast<uint64_t>(2 * k * cols));
}

}  // namespace sgnn::serve
