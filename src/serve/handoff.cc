#include "serve/handoff.h"

#include <utility>

#include "serve/khop_embedder.h"

namespace sgnn::serve {

common::StatusOr<std::unique_ptr<BatchingServer>> ServePipeline(
    const core::Dataset& dataset, const core::PipelineReport& report,
    int hops, const ServeConfig& config, const core::RunContext& ctx) {
  if (report.model.fitted_head == nullptr) {
    return common::Status::FailedPrecondition(
        "model '" + report.model.name +
        "' carries no fitted MLP head to freeze");
  }
  FrozenModel model = FrozenModel::FromMlp(*report.model.fitted_head);
  if (model.in_dim() != dataset.features.cols()) {
    return common::Status::InvalidArgument(
        "fitted head expects " + std::to_string(model.in_dim()) +
        "-dim embeddings but the dataset has " +
        std::to_string(dataset.features.cols()) +
        "-dim features; serve the model whose embedding is S^K X "
        "(e.g. SGC), not a concatenation model");
  }
  auto embedder = std::make_shared<KHopEmbedder>(dataset.graph,
                                                 dataset.features, hops);
  EmbeddingFn embed_fn = [embedder](graph::NodeId node,
                                    std::span<float> out) {
    embedder->Embed(node, out);
    return common::Status::OK();
  };
  return std::make_unique<BatchingServer>(std::move(model),
                                          std::move(embed_fn),
                                          dataset.num_nodes(), config, ctx);
}

}  // namespace sgnn::serve
