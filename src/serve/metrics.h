#ifndef SGNN_SERVE_METRICS_H_
#define SGNN_SERVE_METRICS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/counters.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace sgnn::serve {

/// Health view of the resilience machinery: how often the server missed
/// deadlines, retried or lost embedder calls, fell back to stale cache
/// rows, and what the circuit breaker is doing. The first page of an
/// incident dashboard.
struct ServeHealth {
  uint64_t deadline_misses = 0;    ///< Requests resolved `kDeadlineExceeded`.
  uint64_t retries = 0;            ///< Embedder retry attempts (backoffs).
  uint64_t embed_failures = 0;     ///< Individual failed embedder calls.
  uint64_t degraded_serves = 0;    ///< Stale-cache fallbacks (degraded=true).
  uint64_t failed_requests = 0;    ///< Terminal non-OK responses.
  uint64_t breaker_fast_fails = 0; ///< Calls rejected by the open breaker.
  uint64_t breaker_trips = 0;      ///< Closed/half-open -> open transitions.
  const char* breaker_state = "closed";

  std::string ToString() const;
};

/// Point-in-time view of the serving metrics; everything a load test or
/// dashboard row needs, in the same work units (`OpCounters`) the training
/// side reports. Computed from the `obs::MetricsRegistry` series the
/// server writes — the snapshot and a Prometheus scrape can never
/// disagree, because they read the same counters.
struct ServeMetricsSnapshot {
  uint64_t requests_served = 0;
  uint64_t requests_rejected = 0;  ///< Backpressure (queue-full) rejections.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t batches = 0;
  double mean_batch_size = 0.0;
  uint64_t max_batch_size = 0;
  uint64_t max_queue_depth = 0;
  /// Latency percentiles in logical ticks of the server's latency clock
  /// (two ticks book-end every request; see
  /// `InferenceResponse::latency_ticks`), not wall time.
  double p50_ticks = 0.0;
  double p95_ticks = 0.0;
  double p99_ticks = 0.0;
  /// Work counters aggregated across the serving threads
  /// (`common::AggregateThreadCounters` delta since server start).
  common::OpCounters ops;
  /// Resilience counters; breaker fields are filled by the server.
  ServeHealth health;

  /// Hit fraction among served requests; 0 before any service.
  double CacheHitRate() const {
    const uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) /
                                  static_cast<double>(total);
  }

  std::string ToString() const;
};

/// Recording facade shared by the batcher and worker threads, backed by
/// `obs::MetricsRegistry` series (`sgnn_serve_*`). Construction registers
/// every series in `registry` — pass the run's registry so serving shows
/// up in the same scrape as the pipeline, or pass null and the facade owns
/// a private registry (the standalone-server case). Either way `Snapshot()`
/// is a pure view over the registry handles, and the latency/batch-size
/// percentile math lives in `obs::Histogram`, not here.
///
/// Every `sgnn_serve_*` series is registered `kVolatile`: admission,
/// batching, and retry counts depend on thread scheduling and wall time,
/// so they are excluded from deterministic exports by design.
///
/// Thread-safe: all handles are registry-owned atomics/histograms.
class ServeMetrics {
 public:
  explicit ServeMetrics(obs::MetricsRegistry* registry = nullptr);

  ServeMetrics(const ServeMetrics&) = delete;
  ServeMetrics& operator=(const ServeMetrics&) = delete;

  /// Records one successfully served request with its end-to-end latency
  /// in logical ticks (enqueue to promise fulfilment, measured by the
  /// server's `common::TickClock` — no wall time, so the series carries
  /// the volatility tag only for thread-interleaving reasons), whether the
  /// embedding came from the cache fresh, and whether it was a degraded
  /// (stale-row) serve.
  void RecordRequest(int64_t latency_ticks, bool cache_hit,
                     bool degraded = false);

  void RecordRejected();

  /// Records a request resolved with a terminal non-OK status. The latency
  /// histogram tracks successful serves only; failures are counted here
  /// (`kDeadlineExceeded` also bumps `deadline_misses`, `kUnavailable`
  /// from an open breaker bumps `breaker_fast_fails`).
  void RecordTerminalFailure(common::StatusCode code, bool breaker_fast_fail);

  /// Records one embedder retry (a backoff was taken).
  void RecordRetry();

  /// Records one failed embedder call (each attempt counts).
  void RecordEmbedFailure();

  /// Records one flushed micro-batch and the queue depth observed when it
  /// was formed (the batch-size and queue-depth distributions).
  void RecordBatch(uint64_t batch_size, uint64_t queue_depth);

  ServeMetricsSnapshot Snapshot() const;

  /// The registry the series live in (the external one, or the owned
  /// fallback) — scrape it with `PrometheusText()` / `JsonText()`.
  obs::MetricsRegistry* registry() const { return registry_; }

 private:
  std::unique_ptr<obs::MetricsRegistry> owned_;  ///< When constructed null.
  obs::MetricsRegistry* registry_;

  obs::Counter* requests_served_;
  obs::Counter* requests_rejected_;
  obs::Counter* cache_hits_;
  obs::Counter* cache_misses_;
  obs::Counter* batches_;
  obs::Counter* deadline_misses_;
  obs::Counter* retries_;
  obs::Counter* embed_failures_;
  obs::Counter* degraded_serves_;
  obs::Counter* failed_requests_;
  obs::Counter* breaker_fast_fails_;
  obs::Histogram* latency_ticks_;
  obs::Histogram* batch_size_;
  obs::Gauge* max_batch_size_;
  obs::Gauge* max_queue_depth_;
};

}  // namespace sgnn::serve

#endif  // SGNN_SERVE_METRICS_H_
