#ifndef SGNN_SERVE_METRICS_H_
#define SGNN_SERVE_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace sgnn::serve {

/// Geometric-bucket latency histogram over microseconds: ~7% bucket
/// resolution from 1 us to ~100 s, constant memory, O(buckets) percentile
/// queries. Not internally synchronised — `ServeMetrics` guards it.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(double micros);

  /// Latency at quantile `q` in [0, 1] (0.5 = p50). Returns the geometric
  /// midpoint of the bucket holding the q-th sample, clamped to the exact
  /// observed min/max; 0 when empty.
  double Percentile(double q) const;

  uint64_t count() const { return count_; }
  double min_micros() const { return count_ ? min_micros_ : 0.0; }
  double max_micros() const { return count_ ? max_micros_ : 0.0; }

  void Merge(const LatencyHistogram& other);

 private:
  static constexpr double kFirstBucketMicros = 1.0;
  static constexpr double kGrowth = 1.07;
  static constexpr int kNumBuckets = 256;

  static int BucketFor(double micros);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double min_micros_ = 0.0;
  double max_micros_ = 0.0;
};

/// Health view of the resilience machinery: how often the server missed
/// deadlines, retried or lost embedder calls, fell back to stale cache
/// rows, and what the circuit breaker is doing. The first page of an
/// incident dashboard.
struct ServeHealth {
  uint64_t deadline_misses = 0;    ///< Requests resolved `kDeadlineExceeded`.
  uint64_t retries = 0;            ///< Embedder retry attempts (backoffs).
  uint64_t embed_failures = 0;     ///< Individual failed embedder calls.
  uint64_t degraded_serves = 0;    ///< Stale-cache fallbacks (degraded=true).
  uint64_t failed_requests = 0;    ///< Terminal non-OK responses.
  uint64_t breaker_fast_fails = 0; ///< Calls rejected by the open breaker.
  uint64_t breaker_trips = 0;      ///< Closed/half-open -> open transitions.
  const char* breaker_state = "closed";

  std::string ToString() const;
};

/// Point-in-time view of the serving metrics; everything a load test or
/// dashboard row needs, in the same work units (`OpCounters`) the training
/// side reports.
struct ServeMetricsSnapshot {
  uint64_t requests_served = 0;
  uint64_t requests_rejected = 0;  ///< Backpressure (queue-full) rejections.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t batches = 0;
  double mean_batch_size = 0.0;
  uint64_t max_batch_size = 0;
  uint64_t max_queue_depth = 0;
  double p50_micros = 0.0;
  double p95_micros = 0.0;
  double p99_micros = 0.0;
  /// Work counters aggregated across the serving threads
  /// (`common::AggregateThreadCounters` delta since server start).
  common::OpCounters ops;
  /// Resilience counters; breaker fields are filled by the server.
  ServeHealth health;

  /// Hit fraction among served requests; 0 before any service.
  double CacheHitRate() const {
    const uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) /
                                  static_cast<double>(total);
  }

  std::string ToString() const;
};

/// Thread-safe recorder shared by the batcher and worker threads. One
/// mutex suffices: recording happens once per request/batch, far off any
/// inner loop. Every counter is `SGNN_GUARDED_BY(mu_)`, so a recording
/// path that forgets the lock fails to compile under `-Wthread-safety`.
class ServeMetrics {
 public:
  ServeMetrics() = default;

  /// Records one successfully served request with its end-to-end latency
  /// (enqueue to promise fulfilment), whether the embedding came from the
  /// cache fresh, and whether it was a degraded (stale-row) serve.
  void RecordRequest(double latency_micros, bool cache_hit,
                     bool degraded = false) SGNN_EXCLUDES(mu_);

  void RecordRejected() SGNN_EXCLUDES(mu_);

  /// Records a request resolved with a terminal non-OK status. The latency
  /// histogram tracks successful serves only; failures are counted here
  /// (`kDeadlineExceeded` also bumps `deadline_misses`, `kUnavailable`
  /// from an open breaker bumps `breaker_fast_fails`).
  void RecordTerminalFailure(common::StatusCode code, bool breaker_fast_fail)
      SGNN_EXCLUDES(mu_);

  /// Records one embedder retry (a backoff was taken).
  void RecordRetry() SGNN_EXCLUDES(mu_);

  /// Records one failed embedder call (each attempt counts).
  void RecordEmbedFailure() SGNN_EXCLUDES(mu_);

  /// Records one flushed micro-batch and the queue depth observed when it
  /// was formed (the batch-size and queue-depth distributions).
  void RecordBatch(uint64_t batch_size, uint64_t queue_depth)
      SGNN_EXCLUDES(mu_);

  ServeMetricsSnapshot Snapshot() const SGNN_EXCLUDES(mu_);

 private:
  mutable common::Mutex mu_;
  LatencyHistogram latency_ SGNN_GUARDED_BY(mu_);
  uint64_t requests_served_ SGNN_GUARDED_BY(mu_) = 0;
  uint64_t requests_rejected_ SGNN_GUARDED_BY(mu_) = 0;
  uint64_t cache_hits_ SGNN_GUARDED_BY(mu_) = 0;
  uint64_t cache_misses_ SGNN_GUARDED_BY(mu_) = 0;
  uint64_t batches_ SGNN_GUARDED_BY(mu_) = 0;
  uint64_t batch_size_sum_ SGNN_GUARDED_BY(mu_) = 0;
  uint64_t max_batch_size_ SGNN_GUARDED_BY(mu_) = 0;
  uint64_t max_queue_depth_ SGNN_GUARDED_BY(mu_) = 0;
  uint64_t deadline_misses_ SGNN_GUARDED_BY(mu_) = 0;
  uint64_t retries_ SGNN_GUARDED_BY(mu_) = 0;
  uint64_t embed_failures_ SGNN_GUARDED_BY(mu_) = 0;
  uint64_t degraded_serves_ SGNN_GUARDED_BY(mu_) = 0;
  uint64_t failed_requests_ SGNN_GUARDED_BY(mu_) = 0;
  uint64_t breaker_fast_fails_ SGNN_GUARDED_BY(mu_) = 0;
};

}  // namespace sgnn::serve

#endif  // SGNN_SERVE_METRICS_H_
