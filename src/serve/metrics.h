#ifndef SGNN_SERVE_METRICS_H_
#define SGNN_SERVE_METRICS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/counters.h"

namespace sgnn::serve {

/// Geometric-bucket latency histogram over microseconds: ~7% bucket
/// resolution from 1 us to ~100 s, constant memory, O(buckets) percentile
/// queries. Not internally synchronised — `ServeMetrics` guards it.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(double micros);

  /// Latency at quantile `q` in [0, 1] (0.5 = p50). Returns the geometric
  /// midpoint of the bucket holding the q-th sample, clamped to the exact
  /// observed min/max; 0 when empty.
  double Percentile(double q) const;

  uint64_t count() const { return count_; }
  double min_micros() const { return count_ ? min_micros_ : 0.0; }
  double max_micros() const { return count_ ? max_micros_ : 0.0; }

  void Merge(const LatencyHistogram& other);

 private:
  static constexpr double kFirstBucketMicros = 1.0;
  static constexpr double kGrowth = 1.07;
  static constexpr int kNumBuckets = 256;

  static int BucketFor(double micros);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double min_micros_ = 0.0;
  double max_micros_ = 0.0;
};

/// Point-in-time view of the serving metrics; everything a load test or
/// dashboard row needs, in the same work units (`OpCounters`) the training
/// side reports.
struct ServeMetricsSnapshot {
  uint64_t requests_served = 0;
  uint64_t requests_rejected = 0;  ///< Backpressure (queue-full) rejections.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t batches = 0;
  double mean_batch_size = 0.0;
  uint64_t max_batch_size = 0;
  uint64_t max_queue_depth = 0;
  double p50_micros = 0.0;
  double p95_micros = 0.0;
  double p99_micros = 0.0;
  /// Work counters aggregated across the serving threads
  /// (`common::AggregateThreadCounters` delta since server start).
  common::OpCounters ops;

  /// Hit fraction among served requests; 0 before any service.
  double CacheHitRate() const {
    const uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) /
                                  static_cast<double>(total);
  }

  std::string ToString() const;
};

/// Thread-safe recorder shared by the batcher and worker threads. One
/// mutex suffices: recording happens once per request/batch, far off any
/// inner loop.
class ServeMetrics {
 public:
  ServeMetrics() = default;

  /// Records one completed request with its end-to-end latency (enqueue to
  /// promise fulfilment) and whether the embedding came from the cache.
  void RecordRequest(double latency_micros, bool cache_hit);

  void RecordRejected();

  /// Records one flushed micro-batch and the queue depth observed when it
  /// was formed (the batch-size and queue-depth distributions).
  void RecordBatch(uint64_t batch_size, uint64_t queue_depth);

  ServeMetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  LatencyHistogram latency_;
  uint64_t requests_served_ = 0;
  uint64_t requests_rejected_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  uint64_t batches_ = 0;
  uint64_t batch_size_sum_ = 0;
  uint64_t max_batch_size_ = 0;
  uint64_t max_queue_depth_ = 0;
};

}  // namespace sgnn::serve

#endif  // SGNN_SERVE_METRICS_H_
