#include "serve/frozen_model.h"

#include <algorithm>

#include "common/check.h"
#include "tensor/ops.h"

namespace sgnn::serve {

using tensor::Matrix;

FrozenModel FrozenModel::FromMlp(const nn::Mlp& mlp) {
  SGNN_CHECK(!mlp.layers().empty());
  std::vector<FrozenLayer> layers;
  layers.reserve(mlp.layers().size());
  for (const nn::Linear& layer : mlp.layers()) {
    layers.push_back({layer.weight(), layer.bias()});
  }
  return FrozenModel(std::move(layers));
}

void FrozenModel::Forward(const Matrix& x, Matrix* logits) const {
  SGNN_CHECK(logits != nullptr);
  SGNN_CHECK_EQ(x.cols(), in_dim());
  Matrix cur = x;
  for (size_t l = 0; l < layers_.size(); ++l) {
    Matrix out;
    tensor::Gemm(cur, layers_[l].weight, &out);
    tensor::AddBiasRow(layers_[l].bias.Row(0), &out);
    if (l + 1 < layers_.size()) tensor::Relu(&out);
    cur = std::move(out);
  }
  *logits = std::move(cur);
}

int FrozenModel::Predict(std::span<const float> embedding) const {
  SGNN_CHECK_EQ(static_cast<int64_t>(embedding.size()), in_dim());
  Matrix x(1, in_dim());
  std::copy(embedding.begin(), embedding.end(), x.Row(0).begin());
  Matrix logits;
  Forward(x, &logits);
  auto row = logits.Row(0);
  return static_cast<int>(
      std::max_element(row.begin(), row.end()) - row.begin());
}

}  // namespace sgnn::serve
