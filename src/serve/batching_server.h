#ifndef SGNN_SERVE_BATCHING_SERVER_H_
#define SGNN_SERVE_BATCHING_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <future>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/mpmc_queue.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/run_context.h"
#include "graph/types.h"
#include "obs/trace.h"
#include "sampling/historical_cache.h"
#include "serve/frozen_model.h"
#include "serve/metrics.h"
#include "tensor/matrix.h"

namespace sgnn::serve {

/// Tuning knobs of the online inference server.
struct ServeConfig {
  /// Flush a micro-batch at this many requests...
  int max_batch = 32;
  /// ...or once the oldest request in the forming batch has waited this
  /// long, whichever comes first.
  int64_t max_delay_micros = 1000;
  /// Admission-queue bound; submissions beyond it are rejected with
  /// `kUnavailable` (backpressure) instead of blocking.
  size_t queue_capacity = 1024;
  /// Threads executing batches. In-flight batches are capped at this
  /// number, so pressure propagates back to the admission queue.
  int num_workers = 2;
  /// Embedding-cache entries older than this many flushed batches are
  /// recomputed; default accepts any staleness (weights are frozen, so
  /// cached embeddings only go stale if the graph/features change
  /// underneath the server).
  int64_t max_staleness = std::numeric_limits<int64_t>::max();
  /// Write freshly computed embeddings back into the cache.
  bool update_cache = true;
  /// Per-request time budget from enqueue, in microseconds; 0 = none.
  /// Checked when a worker dequeues the request (expired requests skip all
  /// embedding work) and again after the batch forward (late results are
  /// not delivered as successes). Both resolve to `kDeadlineExceeded`.
  int64_t deadline_micros = 0;
  /// Transient embedder failures (`kUnavailable`/`kAborted`) are retried
  /// under this policy; the backoff never sleeps past the request deadline.
  common::RetryPolicy embed_retry;
  /// On persistent embedder failure, serve the node's stale cache row —
  /// even beyond `max_staleness` — flagged `degraded=true`, instead of
  /// failing the request. Off: the request resolves with the error.
  bool degraded_serving = true;
  /// Consecutive embedder failures trip this breaker; while open, misses
  /// fast-fail (`kUnavailable`, or a degraded serve when possible) without
  /// calling the embedder, so a dead embedder doesn't burn worker time.
  common::CircuitBreaker::Config breaker;
};

/// One classification request: the single admission currency of the
/// serving tier. The in-process `BatchingServer::Submit` path, the
/// admission stage (`serve::AdmissionQueue`), and the HTTP front door
/// (`sgnn::net`) all build exactly this struct, so quotas, fair
/// scheduling, and shedding reason about one shape.
struct InferenceRequest {
  InferenceRequest() = default;
  /// Bare single-node request: default tenant, inherited deadline.
  explicit InferenceRequest(graph::NodeId node_in) : node(node_in) {}

  graph::NodeId node = 0;
  /// Tenant the request bills to; per-tenant quotas and weighted-fair
  /// dequeue key on it. Empty = the anonymous default tenant. The server
  /// itself only echoes it into the response.
  std::string tenant_id;
  /// Per-request time budget in microseconds from submission; 0 = inherit
  /// `ServeConfig::deadline_micros`.
  int64_t deadline_micros = 0;
  /// Degraded-tier request (set by the load shedder's stale tier): serve
  /// the node's cached row at *any* staleness and never call the embedder;
  /// resolves `kUnavailable` when no cached row exists.
  bool stale_only = false;
};

/// Answer to a single-node classification request. Every admitted request
/// receives exactly one response; `status` says whether `logits` is
/// meaningful. Terminal statuses: OK (fresh or degraded serve),
/// `kDeadlineExceeded` (time budget blown), `kUnavailable` (breaker open /
/// embedder down with no fallback row / stale-only miss), or the
/// embedder's own permanent error.
struct InferenceResponse {
  common::Status status;
  graph::NodeId node = 0;
  std::string tenant_id;            ///< Echoed from the request.
  std::vector<float> logits;        ///< Empty unless `status.ok()`.
  int predicted_class = 0;
  bool cache_hit = false;           ///< Embedding came from the cache fresh.
  bool degraded = false;            ///< Served from a stale cache row after
                                    ///< the fresh path failed, or because
                                    ///< the request was stale-only.
  /// Enqueue-to-fulfilment latency in logical ticks of the server's
  /// `common::TickClock` (one tick per admission/fulfilment event, no wall
  /// time), so the serve latency series honour the obs determinism tags.
  int64_t latency_ticks = 0;
};

/// Computes a node's embedding into the provided row buffer, or returns
/// why it could not (`kUnavailable`/`kAborted` are treated as transient
/// and retried; other codes are permanent). Must be thread-safe; called
/// concurrently from worker threads on cache misses.
using EmbeddingFn =
    std::function<common::Status(graph::NodeId, std::span<float>)>;

/// Online inference server: clients submit single-node classification
/// requests; a batcher thread coalesces them into dynamic micro-batches
/// (flush on `max_batch` or `max_delay_micros`); worker threads resolve
/// each batch by consulting the shared `HistoricalEmbeddingCache` first —
/// hits skip feature gathering and propagation entirely — computing misses
/// via the `EmbeddingFn`, and running the frozen head once per batch.
///
/// The first concurrent subsystem in the library: admission is lossy by
/// design (`kUnavailable` when the bounded queue is full), shutdown drains
/// (every admitted request is answered), and all shared state is either
/// immutable (`FrozenModel`), lock-protected (cache, metrics), or
/// thread-local (work counters).
///
/// Failure handling: every admitted request resolves to a terminal
/// `InferenceResponse.status` — never a hung future. Embedder errors are
/// retried under `ServeConfig::embed_retry`; persistent failures degrade
/// to a stale cache row (`degraded=true`) when one exists; consecutive
/// failures trip a `CircuitBreaker` so a dead embedder fast-fails; and
/// per-request deadlines resolve to `kDeadlineExceeded`. The
/// `ServeHealth` slice of `Metrics()` reports all of it.
class BatchingServer {
 public:
  /// Serves `model` over `num_nodes` nodes whose embeddings `embed_fn`
  /// computes on demand. The embedding dimension is `model.in_dim()`.
  ///
  /// `ctx` carries the observability sinks and the fault injector: when
  /// `ctx.metrics` is set, every `sgnn_serve_*` series lands in that
  /// registry (else the server owns a private one); `ctx.tracer` gets a
  /// span per processed batch; `ctx.faults` is observed at site
  /// `"serve.admit"` (token = node id) so admission failures can be
  /// injected deterministically. The caller keeps the sinks alive for the
  /// server's lifetime. A default context reproduces the unobserved
  /// server exactly.
  BatchingServer(FrozenModel model, EmbeddingFn embed_fn,
                 graph::NodeId num_nodes, const ServeConfig& config,
                 const core::RunContext& ctx = core::RunContext());

  /// Drains and stops.
  ~BatchingServer();

  BatchingServer(const BatchingServer&) = delete;
  BatchingServer& operator=(const BatchingServer&) = delete;

  /// Enqueues a classification request. Returns the future carrying the
  /// response, or `kInvalidArgument` (node out of range), `kUnavailable`
  /// when the server is saturated (backpressure; the caller may retry), or
  /// `kFailedPrecondition` after shutdown. Thread-safe.
  common::StatusOr<std::future<InferenceResponse>> Submit(
      const InferenceRequest& request);

  /// DEPRECATED single-node overload; use `Submit(const InferenceRequest&)`.
  [[deprecated("use Submit(const InferenceRequest&)")]]
  common::StatusOr<std::future<InferenceResponse>> Submit(
      graph::NodeId node) {
    return Submit(InferenceRequest(node));
  }

  /// Pre-populates the embedding cache with row `u` of `embeddings` for
  /// every node (e.g. the training-time S^K X), so serving starts warm.
  void WarmCache(const tensor::Matrix& embeddings);

  /// Current metrics snapshot, including the work counters accumulated by
  /// the serving threads since construction. Also refreshes the
  /// registry-side `sgnn_serve_breaker_*`, `sgnn_serve_pool_*`, and
  /// `sgnn_serve_ops_*` gauges, so call it before scraping. Thread-safe.
  ServeMetricsSnapshot Metrics() const;

  /// Current circuit-breaker state. This is the load shedder's input
  /// signal (`serve::ShedPolicy::Decide`), cheap enough for the admission
  /// hot path — unlike `Metrics()`, which aggregates every counter.
  common::CircuitBreaker::State breaker_state() const {
    return breaker_.state();
  }

  /// Stops admissions, flushes every queued request, joins all threads.
  /// Idempotent; also run by the destructor.
  void Shutdown();

  const ServeConfig& config() const { return config_; }

 private:
  struct Request {
    graph::NodeId node = 0;
    std::string tenant_id;
    bool stale_only = false;
    std::promise<InferenceResponse> promise;
    uint64_t enqueue_tick = 0;  ///< `latency_clock_` tick at admission.
    common::Deadline deadline;  ///< Infinite when no deadline applies.
  };

  void BatcherLoop();
  void ProcessBatch(std::vector<Request>* batch);
  /// Resolves one cache miss: breaker gate, embedder with retry/backoff,
  /// degraded fallback. Returns OK (row written into `out`; `*degraded`
  /// set if it came from a stale cache row) or the terminal error.
  common::Status ResolveMiss(graph::NodeId node, const common::Deadline& dl,
                             std::span<float> out, int64_t step,
                             bool* degraded) SGNN_EXCLUDES(cache_mu_);

  const ServeConfig config_;
  const FrozenModel model_;
  const EmbeddingFn embed_fn_;
  /// Served id universe [0, num_nodes_); immutable, so admission-time
  /// bounds checks need no lock.
  const graph::NodeId num_nodes_;

  common::BoundedMpmcQueue<Request> queue_;
  std::unique_ptr<common::ThreadPool> pool_;

  /// Embedding cache shared across worker threads; reads take the shared
  /// lock (concurrent), writes the exclusive lock. The guard annotation
  /// makes an unlocked cache touch a compile error under Clang.
  mutable common::SharedMutex cache_mu_;
  sampling::HistoricalEmbeddingCache cache_ SGNN_GUARDED_BY(cache_mu_);
  /// Monotone batch counter: the cache's staleness clock at serve time.
  std::atomic<int64_t> step_{0};
  /// Logical latency clock: ticked once at admission and once at
  /// fulfilment, so `InferenceResponse::latency_ticks` measures program
  /// structure (how many serve events passed) rather than wall time.
  common::TickClock latency_clock_;

  /// In-flight batch cap (== num_workers): keeps pressure on the admission
  /// queue instead of an unbounded pool backlog.
  common::Mutex inflight_mu_;
  std::condition_variable_any inflight_cv_;
  int in_flight_ SGNN_GUARDED_BY(inflight_mu_) = 0;

  /// Observability sinks from the construction-time `RunContext` (null =
  /// off); the injector is consulted at admission (`"serve.admit"`).
  obs::Tracer* const tracer_;
  common::FaultInjector* const faults_;

  ServeMetrics metrics_;
  common::CircuitBreaker breaker_;
  /// Aggregate counters at construction.
  // sgnn-lint: allow(lock/unannotated-field): written once in the
  // constructor before the batcher thread starts, read-only afterwards.
  common::OpCounters base_ops_;

  std::atomic<bool> shutdown_{false};
  // sgnn-lint: allow(lock/unannotated-field): started in the constructor,
  // joined in Shutdown(); no access in between.
  std::thread batcher_;
};

}  // namespace sgnn::serve

#endif  // SGNN_SERVE_BATCHING_SERVER_H_
