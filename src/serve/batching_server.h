#ifndef SGNN_SERVE_BATCHING_SERVER_H_
#define SGNN_SERVE_BATCHING_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "common/mpmc_queue.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "graph/types.h"
#include "sampling/historical_cache.h"
#include "serve/frozen_model.h"
#include "serve/metrics.h"
#include "tensor/matrix.h"

namespace sgnn::serve {

/// Tuning knobs of the online inference server.
struct ServeConfig {
  /// Flush a micro-batch at this many requests...
  int max_batch = 32;
  /// ...or once the oldest request in the forming batch has waited this
  /// long, whichever comes first.
  int64_t max_delay_micros = 1000;
  /// Admission-queue bound; submissions beyond it are rejected with
  /// `kUnavailable` (backpressure) instead of blocking.
  size_t queue_capacity = 1024;
  /// Threads executing batches. In-flight batches are capped at this
  /// number, so pressure propagates back to the admission queue.
  int num_workers = 2;
  /// Embedding-cache entries older than this many flushed batches are
  /// recomputed; default accepts any staleness (weights are frozen, so
  /// cached embeddings only go stale if the graph/features change
  /// underneath the server).
  int64_t max_staleness = std::numeric_limits<int64_t>::max();
  /// Write freshly computed embeddings back into the cache.
  bool update_cache = true;
};

/// Answer to a single-node classification request.
struct InferenceResponse {
  graph::NodeId node = 0;
  std::vector<float> logits;
  int predicted_class = 0;
  bool cache_hit = false;           ///< Embedding came from the cache.
  double latency_micros = 0.0;      ///< Enqueue to fulfilment.
};

/// Computes a node's embedding into the provided row buffer. Must be
/// thread-safe; called concurrently from worker threads on cache misses.
using EmbeddingFn = std::function<void(graph::NodeId, std::span<float>)>;

/// Online inference server: clients submit single-node classification
/// requests; a batcher thread coalesces them into dynamic micro-batches
/// (flush on `max_batch` or `max_delay_micros`); worker threads resolve
/// each batch by consulting the shared `HistoricalEmbeddingCache` first —
/// hits skip feature gathering and propagation entirely — computing misses
/// via the `EmbeddingFn`, and running the frozen head once per batch.
///
/// The first concurrent subsystem in the library: admission is lossy by
/// design (`kUnavailable` when the bounded queue is full), shutdown drains
/// (every admitted request is answered), and all shared state is either
/// immutable (`FrozenModel`), lock-protected (cache, metrics), or
/// thread-local (work counters).
class BatchingServer {
 public:
  /// Serves `model` over `num_nodes` nodes whose embeddings `embed_fn`
  /// computes on demand. The embedding dimension is `model.in_dim()`.
  BatchingServer(FrozenModel model, EmbeddingFn embed_fn,
                 graph::NodeId num_nodes, const ServeConfig& config);

  /// Drains and stops.
  ~BatchingServer();

  BatchingServer(const BatchingServer&) = delete;
  BatchingServer& operator=(const BatchingServer&) = delete;

  /// Enqueues a classification request for node `node`. Returns the future
  /// carrying the response, or `kUnavailable` when the server is saturated
  /// (backpressure; the caller may retry) / `kFailedPrecondition` after
  /// shutdown. Thread-safe.
  common::StatusOr<std::future<InferenceResponse>> Submit(graph::NodeId node);

  /// Pre-populates the embedding cache with row `u` of `embeddings` for
  /// every node (e.g. the training-time S^K X), so serving starts warm.
  void WarmCache(const tensor::Matrix& embeddings);

  /// Current metrics snapshot, including the work counters accumulated by
  /// the serving threads since construction. Thread-safe.
  ServeMetricsSnapshot Metrics() const;

  /// Stops admissions, flushes every queued request, joins all threads.
  /// Idempotent; also run by the destructor.
  void Shutdown();

  const ServeConfig& config() const { return config_; }

 private:
  struct Request {
    graph::NodeId node = 0;
    std::promise<InferenceResponse> promise;
    std::chrono::steady_clock::time_point enqueue_time;
  };

  void BatcherLoop();
  void ProcessBatch(std::vector<Request>* batch);

  const ServeConfig config_;
  const FrozenModel model_;
  const EmbeddingFn embed_fn_;

  common::BoundedMpmcQueue<Request> queue_;
  std::unique_ptr<common::ThreadPool> pool_;

  /// Embedding cache shared across worker threads; reads take the shared
  /// lock (concurrent), writes the exclusive lock.
  mutable std::shared_mutex cache_mu_;
  sampling::HistoricalEmbeddingCache cache_;
  /// Monotone batch counter: the cache's staleness clock at serve time.
  std::atomic<int64_t> step_{0};

  /// In-flight batch cap (== num_workers): keeps pressure on the admission
  /// queue instead of an unbounded pool backlog.
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  int in_flight_ = 0;

  ServeMetrics metrics_;
  common::OpCounters base_ops_;  ///< Aggregate counters at construction.

  std::atomic<bool> shutdown_{false};
  std::thread batcher_;
};

}  // namespace sgnn::serve

#endif  // SGNN_SERVE_BATCHING_SERVER_H_
