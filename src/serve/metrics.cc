#include "serve/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace sgnn::serve {

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets, 0) {}

int LatencyHistogram::BucketFor(double micros) {
  if (micros <= kFirstBucketMicros) return 0;
  const int b = static_cast<int>(
      std::log(micros / kFirstBucketMicros) / std::log(kGrowth));
  return std::min(b, kNumBuckets - 1);
}

void LatencyHistogram::Record(double micros) {
  micros = std::max(micros, 0.0);
  if (count_ == 0) {
    min_micros_ = max_micros_ = micros;
  } else {
    min_micros_ = std::min(min_micros_, micros);
    max_micros_ = std::max(max_micros_, micros);
  }
  ++buckets_[static_cast<size_t>(BucketFor(micros))];
  ++count_;
}

double LatencyHistogram::Percentile(double q) const {
  SGNN_CHECK(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  // Rank of the q-th sample (1-based, ceil), clamped into [1, count].
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_))));
  uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[static_cast<size_t>(b)];
    if (seen >= rank) {
      const double lo = b == 0 ? 0.0
                               : kFirstBucketMicros * std::pow(kGrowth, b);
      const double hi = kFirstBucketMicros * std::pow(kGrowth, b + 1);
      const double mid = b == 0 ? hi * 0.5 : std::sqrt(lo * hi);
      return std::clamp(mid, min_micros_, max_micros_);
    }
  }
  return max_micros_;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_micros_ = other.min_micros_;
    max_micros_ = other.max_micros_;
  } else {
    min_micros_ = std::min(min_micros_, other.min_micros_);
    max_micros_ = std::max(max_micros_, other.max_micros_);
  }
  for (int b = 0; b < kNumBuckets; ++b) {
    buckets_[static_cast<size_t>(b)] += other.buckets_[static_cast<size_t>(b)];
  }
  count_ += other.count_;
}

void ServeMetrics::RecordRequest(double latency_micros, bool cache_hit,
                                 bool degraded) {
  common::MutexLock lock(mu_);
  latency_.Record(latency_micros);
  ++requests_served_;
  if (degraded) {
    ++degraded_serves_;
    ++cache_misses_;  // The fresh path failed; not a real hit.
  } else if (cache_hit) {
    ++cache_hits_;
  } else {
    ++cache_misses_;
  }
}

void ServeMetrics::RecordRejected() {
  common::MutexLock lock(mu_);
  ++requests_rejected_;
}

void ServeMetrics::RecordTerminalFailure(common::StatusCode code,
                                         bool breaker_fast_fail) {
  common::MutexLock lock(mu_);
  ++failed_requests_;
  if (code == common::StatusCode::kDeadlineExceeded) ++deadline_misses_;
  if (breaker_fast_fail) ++breaker_fast_fails_;
}

void ServeMetrics::RecordRetry() {
  common::MutexLock lock(mu_);
  ++retries_;
}

void ServeMetrics::RecordEmbedFailure() {
  common::MutexLock lock(mu_);
  ++embed_failures_;
}

void ServeMetrics::RecordBatch(uint64_t batch_size, uint64_t queue_depth) {
  common::MutexLock lock(mu_);
  ++batches_;
  batch_size_sum_ += batch_size;
  max_batch_size_ = std::max(max_batch_size_, batch_size);
  max_queue_depth_ = std::max(max_queue_depth_, queue_depth);
}

ServeMetricsSnapshot ServeMetrics::Snapshot() const {
  common::MutexLock lock(mu_);
  ServeMetricsSnapshot snap;
  snap.requests_served = requests_served_;
  snap.requests_rejected = requests_rejected_;
  snap.cache_hits = cache_hits_;
  snap.cache_misses = cache_misses_;
  snap.batches = batches_;
  snap.mean_batch_size =
      batches_ == 0 ? 0.0 : static_cast<double>(batch_size_sum_) /
                                static_cast<double>(batches_);
  snap.max_batch_size = max_batch_size_;
  snap.max_queue_depth = max_queue_depth_;
  snap.p50_micros = latency_.Percentile(0.50);
  snap.p95_micros = latency_.Percentile(0.95);
  snap.p99_micros = latency_.Percentile(0.99);
  snap.health.deadline_misses = deadline_misses_;
  snap.health.retries = retries_;
  snap.health.embed_failures = embed_failures_;
  snap.health.degraded_serves = degraded_serves_;
  snap.health.failed_requests = failed_requests_;
  snap.health.breaker_fast_fails = breaker_fast_fails_;
  return snap;
}

std::string ServeHealth::ToString() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "deadline_misses=%llu retries=%llu embed_failures=%llu "
      "degraded=%llu failed=%llu breaker=%s trips=%llu fast_fails=%llu",
      static_cast<unsigned long long>(deadline_misses),
      static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(embed_failures),
      static_cast<unsigned long long>(degraded_serves),
      static_cast<unsigned long long>(failed_requests), breaker_state,
      static_cast<unsigned long long>(breaker_trips),
      static_cast<unsigned long long>(breaker_fast_fails));
  return buf;
}

std::string ServeMetricsSnapshot::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "served=%llu rejected=%llu hit_rate=%.3f batches=%llu "
      "mean_batch=%.2f max_batch=%llu max_queue=%llu "
      "p50=%.1fus p95=%.1fus p99=%.1fus",
      static_cast<unsigned long long>(requests_served),
      static_cast<unsigned long long>(requests_rejected), CacheHitRate(),
      static_cast<unsigned long long>(batches), mean_batch_size,
      static_cast<unsigned long long>(max_batch_size),
      static_cast<unsigned long long>(max_queue_depth), p50_micros,
      p95_micros, p99_micros);
  std::string out(buf);
  out += "\nhealth: " + health.ToString();
  out += "\nops: " + ops.ToString();
  return out;
}

}  // namespace sgnn::serve
