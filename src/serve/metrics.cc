#include "serve/metrics.h"

#include <cstdio>

namespace sgnn::serve {

namespace {

/// Latency is measured in logical ticks (two per request, so values scale
/// with the in-flight population, not wall time); ~16% geometric
/// resolution from 1 tick to ~2^31 covers any realistic backlog.
std::vector<double> LatencyBuckets() {
  return obs::ExponentialBuckets(1.0, 1.16, 145);
}

/// Batch sizes are small integers bounded by `ServeConfig::max_batch`;
/// powers of two up to 4096 resolve them plenty.
std::vector<double> BatchSizeBuckets() {
  return obs::ExponentialBuckets(1.0, 2.0, 13);
}

}  // namespace

ServeMetrics::ServeMetrics(obs::MetricsRegistry* registry)
    : owned_(registry == nullptr ? std::make_unique<obs::MetricsRegistry>()
                                 : nullptr),
      registry_(registry == nullptr ? owned_.get() : registry) {
  obs::MetricsRegistry& r = *registry_;
  requests_served_ =
      r.GetCounter("sgnn_serve_requests_served_total",
                   "Requests resolved OK (fresh or degraded).", {},
                   obs::kVolatile);
  requests_rejected_ =
      r.GetCounter("sgnn_serve_requests_rejected_total",
                   "Admissions rejected by backpressure or fault injection.",
                   {}, obs::kVolatile);
  cache_hits_ = r.GetCounter("sgnn_serve_cache_hits_total",
                             "Embeddings served fresh from the cache.", {},
                             obs::kVolatile);
  cache_misses_ = r.GetCounter("sgnn_serve_cache_misses_total",
                               "Embeddings recomputed (or served stale).", {},
                               obs::kVolatile);
  batches_ = r.GetCounter("sgnn_serve_batches_total",
                          "Micro-batches flushed by the batcher.", {},
                          obs::kVolatile);
  deadline_misses_ =
      r.GetCounter("sgnn_serve_deadline_misses_total",
                   "Requests resolved kDeadlineExceeded.", {}, obs::kVolatile);
  retries_ = r.GetCounter("sgnn_serve_retries_total",
                          "Embedder retry attempts (backoffs taken).", {},
                          obs::kVolatile);
  embed_failures_ =
      r.GetCounter("sgnn_serve_embed_failures_total",
                   "Individual failed embedder calls.", {}, obs::kVolatile);
  degraded_serves_ =
      r.GetCounter("sgnn_serve_degraded_serves_total",
                   "Stale-cache fallbacks after a failed fresh path.", {},
                   obs::kVolatile);
  failed_requests_ =
      r.GetCounter("sgnn_serve_failed_requests_total",
                   "Requests resolved with a terminal non-OK status.", {},
                   obs::kVolatile);
  breaker_fast_fails_ = r.GetCounter(
      "sgnn_serve_breaker_fast_fails_total",
      "Misses fast-failed by the open circuit breaker (metrics-side count).",
      {}, obs::kVolatile);
  latency_ticks_ = r.GetHistogram(
      "sgnn_serve_latency_ticks",
      "End-to-end latency of successful serves in logical ticks "
      "(enqueue to fulfilment on the server's TickClock; no wall time).",
      LatencyBuckets(), {}, obs::kVolatile);
  batch_size_ =
      r.GetHistogram("sgnn_serve_batch_size",
                     "Requests coalesced per flushed micro-batch.",
                     BatchSizeBuckets(), {}, obs::kVolatile);
  max_batch_size_ =
      r.GetGauge("sgnn_serve_max_batch_size",
                 "Largest micro-batch flushed so far.", {}, obs::kVolatile);
  max_queue_depth_ = r.GetGauge(
      "sgnn_serve_max_queue_depth",
      "Deepest admission queue observed at batch formation.", {},
      obs::kVolatile);
}

void ServeMetrics::RecordRequest(int64_t latency_ticks, bool cache_hit,
                                 bool degraded) {
  latency_ticks_->Record(
      latency_ticks < 0 ? 0.0 : static_cast<double>(latency_ticks));
  requests_served_->Increment();
  if (degraded) {
    degraded_serves_->Increment();
    cache_misses_->Increment();  // The fresh path failed; not a real hit.
  } else if (cache_hit) {
    cache_hits_->Increment();
  } else {
    cache_misses_->Increment();
  }
}

void ServeMetrics::RecordRejected() { requests_rejected_->Increment(); }

void ServeMetrics::RecordTerminalFailure(common::StatusCode code,
                                         bool breaker_fast_fail) {
  failed_requests_->Increment();
  if (code == common::StatusCode::kDeadlineExceeded) {
    deadline_misses_->Increment();
  }
  if (breaker_fast_fail) breaker_fast_fails_->Increment();
}

void ServeMetrics::RecordRetry() { retries_->Increment(); }

void ServeMetrics::RecordEmbedFailure() { embed_failures_->Increment(); }

void ServeMetrics::RecordBatch(uint64_t batch_size, uint64_t queue_depth) {
  batches_->Increment();
  batch_size_->Record(static_cast<double>(batch_size));
  max_batch_size_->SetMax(static_cast<double>(batch_size));
  max_queue_depth_->SetMax(static_cast<double>(queue_depth));
}

ServeMetricsSnapshot ServeMetrics::Snapshot() const {
  ServeMetricsSnapshot snap;
  snap.requests_served = requests_served_->value();
  snap.requests_rejected = requests_rejected_->value();
  snap.cache_hits = cache_hits_->value();
  snap.cache_misses = cache_misses_->value();
  snap.batches = batches_->value();
  const obs::HistogramSnapshot batch = batch_size_->Snapshot();
  snap.mean_batch_size = batch.Mean();
  snap.max_batch_size = static_cast<uint64_t>(max_batch_size_->value());
  snap.max_queue_depth = static_cast<uint64_t>(max_queue_depth_->value());
  const obs::HistogramSnapshot latency = latency_ticks_->Snapshot();
  snap.p50_ticks = latency.Percentile(0.50);
  snap.p95_ticks = latency.Percentile(0.95);
  snap.p99_ticks = latency.Percentile(0.99);
  snap.health.deadline_misses = deadline_misses_->value();
  snap.health.retries = retries_->value();
  snap.health.embed_failures = embed_failures_->value();
  snap.health.degraded_serves = degraded_serves_->value();
  snap.health.failed_requests = failed_requests_->value();
  snap.health.breaker_fast_fails = breaker_fast_fails_->value();
  return snap;
}

std::string ServeHealth::ToString() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "deadline_misses=%llu retries=%llu embed_failures=%llu "
      "degraded=%llu failed=%llu breaker=%s trips=%llu fast_fails=%llu",
      static_cast<unsigned long long>(deadline_misses),
      static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(embed_failures),
      static_cast<unsigned long long>(degraded_serves),
      static_cast<unsigned long long>(failed_requests), breaker_state,
      static_cast<unsigned long long>(breaker_trips),
      static_cast<unsigned long long>(breaker_fast_fails));
  return buf;
}

std::string ServeMetricsSnapshot::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "served=%llu rejected=%llu hit_rate=%.3f batches=%llu "
      "mean_batch=%.2f max_batch=%llu max_queue=%llu "
      "p50=%.1ft p95=%.1ft p99=%.1ft",
      static_cast<unsigned long long>(requests_served),
      static_cast<unsigned long long>(requests_rejected), CacheHitRate(),
      static_cast<unsigned long long>(batches), mean_batch_size,
      static_cast<unsigned long long>(max_batch_size),
      static_cast<unsigned long long>(max_queue_depth), p50_ticks,
      p95_ticks, p99_ticks);
  std::string out(buf);
  out += "\nhealth: " + health.ToString();
  out += "\nops: " + ops.ToString();
  return out;
}

}  // namespace sgnn::serve
