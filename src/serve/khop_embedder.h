#ifndef SGNN_SERVE_KHOP_EMBEDDER_H_
#define SGNN_SERVE_KHOP_EMBEDDER_H_

#include <span>
#include <vector>

#include "graph/csr_graph.h"
#include "tensor/matrix.h"

namespace sgnn::serve {

/// Online feature gathering for decoupled inference: computes the row of
/// S^K X belonging to one node by extracting its K-hop ego-net
/// (`subgraph::ExtractKHop`) and propagating inside it with *global*
/// symmetric-normalised coefficients (A + I renormalisation, matching
/// `graph::Propagator(graph, kSymmetric, /*add_self_loops=*/true)`).
///
/// Exactness: after t local steps only rows within distance K - t of the
/// center have absorbed every global path, and the inexact boundary ring
/// never reaches level 0 in K steps — so with an unlimited node budget the
/// center row equals the full-graph `PropagateKHops` row (up to float
/// summation order). A positive `node_budget` truncates the ego-net and
/// makes the result approximate; that is the latency/recall dial.
///
/// Const and allocation-local, so one instance serves all threads.
class KHopEmbedder {
 public:
  /// `graph` and `features` must outlive the embedder.
  KHopEmbedder(const graph::CsrGraph& graph, const tensor::Matrix& features,
               int hops, int64_t node_budget = 0);

  /// Writes node `center`'s propagated embedding into `out`
  /// (`out.size() == dim()`). Thread-safe.
  void Embed(graph::NodeId center, std::span<float> out) const;

  int64_t dim() const { return features_.cols(); }
  int hops() const { return hops_; }

 private:
  const graph::CsrGraph& graph_;
  const tensor::Matrix& features_;
  const int hops_;
  const int64_t node_budget_;
  /// Global 1/sqrt(weighted_degree + 1) per node (0 for isolated nodes),
  /// precomputed once so per-request work is local to the ego-net.
  std::vector<float> inv_sqrt_degree_;
};

}  // namespace sgnn::serve

#endif  // SGNN_SERVE_KHOP_EMBEDDER_H_
