#ifndef SGNN_SERVE_ADMISSION_H_
#define SGNN_SERVE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/mpmc_queue.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "serve/batching_server.h"

namespace sgnn::serve {

/// Multi-tenant admission stage between a front door (in-process caller or
/// the `sgnn::net` HTTP server) and the `BatchingServer`: per-tenant
/// token-bucket quotas, deficit-weighted-fair dequeue over per-tenant
/// `common::BoundedMpmcQueue`s, and tiered load shedding driven by the
/// server's `CircuitBreaker` state.
///
/// Everything is counting-based — token buckets refill per *dispatch
/// event*, the shed policy reads breaker state and queue fill, and DWRR
/// deficits advance per pop — so the whole stage is deterministic given
/// the offer/dispatch sequence (no wall clock), which is what makes the
/// fairness and shedding tests exact instead of statistical.

/// Degradation ladder applied to an admitted request, in order of
/// increasing desperation: serve exactly, serve the cached row at any
/// staleness (`InferenceRequest::stale_only`), or reject outright.
enum class ShedTier { kExact = 0, kStale = 1, kReject = 2 };

const char* ShedTierName(ShedTier tier);

/// Per-tenant admission parameters.
struct TenantQuota {
  /// Relative fair share under saturation: a tenant with weight 2 drains
  /// twice as fast as one with weight 1 while both are backlogged.
  double weight = 1.0;
  /// Token-bucket burst size; each admitted request spends one token and
  /// an empty bucket rejects with `kResourceExhausted` (HTTP 429). The
  /// default is effectively unlimited — quotas are opt-in.
  double bucket_capacity = 1e18;
  /// Tokens granted back per dispatch event anywhere in the stage (a
  /// counting clock, not a wall clock): a tenant capped at
  /// `refill_per_dispatch = 0.5` can sustain at most half the total
  /// dispatch rate regardless of its weight.
  double refill_per_dispatch = 0.0;
};

/// Maps (breaker state, queue fill) to the shed tier. Counting-based and
/// pure, so the exact → stale → reject walk is reproducible in tests.
struct ShedPolicy {
  /// Queue fill fraction at or above which an open breaker escalates from
  /// stale serving to outright rejection.
  double reject_fill = 0.5;

  /// Breaker closed → `kExact`. Open or half-open (the embedder is
  /// presumed down) → `kStale`, so cached rows keep flowing without
  /// burning worker time. Open *and* the admission queues at least
  /// `reject_fill` full → `kReject`: the backlog cannot drain through a
  /// dead embedder, so new work is turned away at the door.
  ShedTier Decide(common::CircuitBreaker::State breaker, double fill) const;
};

struct AdmissionConfig {
  /// Known tenants and their quotas; tenants not listed here are created
  /// on first use with `default_quota`.
  std::map<std::string, TenantQuota> tenants;
  TenantQuota default_quota;
  /// Bound of each tenant's FIFO; `Offer` rejects `kUnavailable` beyond it
  /// (per-tenant backpressure — one flooding tenant fills its own queue,
  /// not its neighbours').
  size_t per_tenant_capacity = 256;
  /// DWRR quantum: deficit granted per visit is `quantum * weight`. One
  /// unit of deficit buys one request.
  double quantum = 1.0;
  ShedPolicy shed;
  /// Record the tenant-id sequence of every dispatch (test/bench hook for
  /// exact fairness assertions; unbounded, so off by default).
  bool record_dispatch_log = false;
};

/// The admission queue itself. `Offer` (any thread) applies shedding and
/// quota, then enqueues into the tenant's bounded queue; `PopDispatch`
/// (dispatcher threads) dequeues deficit-weighted-fair across tenants.
/// The `cookie` travels with the request so a front door can route the
/// eventual response back to its connection.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(const AdmissionConfig& config);

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Admission decision for one request. On success returns the tier that
  /// was applied — `kExact`, or `kStale` (the request's `stale_only` flag
  /// is then set) — and the request is queued. Failures:
  /// `kUnavailable` (shed tier `kReject`, or the tenant queue is full),
  /// `kResourceExhausted` (token bucket empty), `kFailedPrecondition`
  /// (after `Close`). `breaker` is the serving breaker's current state,
  /// the shedding signal.
  common::StatusOr<ShedTier> Offer(InferenceRequest request, uint64_t cookie,
                                   common::CircuitBreaker::State breaker);

  /// Dequeues the next request by deficit-weighted round-robin over the
  /// backlogged tenants, waiting up to `timeout_micros`. False on timeout
  /// or when closed and fully drained. Also advances the token-bucket
  /// refill clock by one dispatch event.
  bool PopDispatch(InferenceRequest* request, uint64_t* cookie,
                   int64_t timeout_micros);

  /// While paused, `PopDispatch` blocks (offers still queue): the
  /// saturation switch for fairness tests and the soak bench.
  void Pause();
  void Resume();

  /// Rejects future offers and wakes dispatchers; queued requests remain
  /// poppable (drain-then-stop).
  void Close();

  size_t TotalQueued() const;
  /// Queue fill fraction over all currently known tenants, in [0, 1].
  double FillFraction() const;

  /// Tenant-id sequence of every dispatch so far (empty unless
  /// `record_dispatch_log`).
  std::vector<std::string> DispatchLog() const;

 private:
  struct Queued {
    InferenceRequest request;
    uint64_t cookie = 0;
  };

  struct Tenant {
    explicit Tenant(const TenantQuota& q, size_t capacity)
        : quota(q), tokens(q.bucket_capacity), queue(capacity) {}
    const TenantQuota quota;
    // sgnn-lint: allow(lock/unannotated-field): guarded by the owning
    // AdmissionQueue's mu_; the annotation cannot name an outer mutex.
    double tokens;
    // sgnn-lint: allow(lock/unannotated-field): internally synchronized
    // BoundedMpmcQueue.
    common::BoundedMpmcQueue<Queued> queue;
    // sgnn-lint: allow(lock/unannotated-field): guarded by the owning
    // AdmissionQueue's mu_ (DWRR state).
    double deficit = 0.0;
  };

  Tenant& TenantFor(const std::string& id) SGNN_REQUIRES(mu_);
  /// One DWRR pop attempt over the current tenant map; false when every
  /// queue is empty.
  bool TryDwrrPop(Queued* out) SGNN_REQUIRES(mu_);
  void RefillAll() SGNN_REQUIRES(mu_);
  double FillFractionLocked() const SGNN_REQUIRES(mu_);

  const AdmissionConfig config_;

  mutable common::Mutex mu_;
  std::condition_variable_any cv_;
  /// Sorted by tenant id: DWRR visits tenants in deterministic key order.
  std::map<std::string, std::unique_ptr<Tenant>> tenants_ SGNN_GUARDED_BY(mu_);
  /// DWRR cursor: id of the tenant the next visit starts at ("" = first).
  std::string cursor_ SGNN_GUARDED_BY(mu_);
  /// Whether the cursor's tenant already received its per-visit deficit
  /// grant (a grant happens once per arrival, not once per pop).
  bool cursor_granted_ SGNN_GUARDED_BY(mu_) = false;
  bool paused_ SGNN_GUARDED_BY(mu_) = false;
  bool closed_ SGNN_GUARDED_BY(mu_) = false;
  std::vector<std::string> dispatch_log_ SGNN_GUARDED_BY(mu_);
};

}  // namespace sgnn::serve

#endif  // SGNN_SERVE_ADMISSION_H_
