#ifndef SGNN_SERVE_FROZEN_MODEL_H_
#define SGNN_SERVE_FROZEN_MODEL_H_

#include <vector>

#include "nn/mlp.h"
#include "tensor/matrix.h"

namespace sgnn::serve {

/// Immutable forward-only snapshot of a trained MLP head: the inference
/// artifact a pipeline run hands to the serving layer. All state is frozen
/// at construction, so a single instance is safely shared by any number of
/// serving threads without locks (every method is const and allocation-free
/// on shared state).
///
/// `Forward` reproduces `nn::Mlp::Forward(x, /*training=*/false, ...)`
/// bit-for-bit: same GEMM, bias and ReLU kernels, and inference-mode
/// dropout is the identity.
class FrozenModel {
 public:
  /// Snapshots the current weights of `mlp` (deep copy; later training
  /// steps on `mlp` do not affect this artifact).
  static FrozenModel FromMlp(const nn::Mlp& mlp);

  FrozenModel(const FrozenModel&) = default;
  FrozenModel& operator=(const FrozenModel&) = default;
  FrozenModel(FrozenModel&&) = default;
  FrozenModel& operator=(FrozenModel&&) = default;

  /// Computes logits for a batch of embedding rows. Thread-safe.
  void Forward(const tensor::Matrix& x, tensor::Matrix* logits) const;

  /// Argmax class of a single embedding row (ties break to the lowest
  /// index); convenience for single-request paths and tests.
  int Predict(std::span<const float> embedding) const;

  int64_t in_dim() const { return layers_.front().weight.rows(); }
  int64_t out_dim() const { return layers_.back().weight.cols(); }
  int num_layers() const { return static_cast<int>(layers_.size()); }

 private:
  struct FrozenLayer {
    tensor::Matrix weight;  // in x out
    tensor::Matrix bias;    // 1 x out
  };

  explicit FrozenModel(std::vector<FrozenLayer> layers)
      : layers_(std::move(layers)) {}

  std::vector<FrozenLayer> layers_;
};

}  // namespace sgnn::serve

#endif  // SGNN_SERVE_FROZEN_MODEL_H_
