#ifndef SGNN_SERVE_HANDOFF_H_
#define SGNN_SERVE_HANDOFF_H_

#include <memory>

#include "common/status.h"
#include "core/dataset.h"
#include "core/pipeline.h"
#include "serve/batching_server.h"

namespace sgnn::serve {

/// Train-to-serve handoff (`Pipeline::Run` -> online inference): freezes
/// the fitted head carried by `report.model` and stands up a
/// `BatchingServer` whose cache misses are resolved by exact `hops`-hop
/// ego-net propagation over `dataset`'s graph and features — the serving
/// twin of the SGC-style decoupled training path, so `hops` should match
/// the trained model's propagation depth.
///
/// `dataset` must outlive the returned server. Fails with
/// `kFailedPrecondition` when the pipeline's model carries no fitted head
/// (e.g. label propagation or a sampled GNN).
///
/// Pass the same `RunContext` the pipeline ran under and the server's
/// `sgnn_serve_*` series land in the same registry (one scrape covers
/// training and serving) with batch spans on the same tracer.
common::StatusOr<std::unique_ptr<BatchingServer>> ServePipeline(
    const core::Dataset& dataset, const core::PipelineReport& report,
    int hops, const ServeConfig& config,
    const core::RunContext& ctx = core::RunContext());

}  // namespace sgnn::serve

#endif  // SGNN_SERVE_HANDOFF_H_
