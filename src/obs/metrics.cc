#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace sgnn::obs {

namespace {

/// Shortest exact-looking rendering that is still deterministic: integers
/// print without a fraction, everything else with 9 significant digits.
std::string FormatNumber(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

std::string FormatCount(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

/// Prometheus label-value / help escaping (backslash, quote, newline).
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}

/// Serialized sorted label set, `k="v",k2="v2"`; the series key within a
/// family and the exact text spliced into the exposition line.
std::string SerializeLabels(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& [key, value] : sorted) {
    SGNN_CHECK(ValidMetricName(key));
    if (!out.empty()) out.push_back(',');
    out += key + "=\"" + Escape(value) + "\"";
  }
  return out;
}

/// `name{labels}` or bare `name`; `extra` is appended inside the braces
/// (the histogram `le` label).
std::string SampleName(const std::string& name, const std::string& labels,
                       const std::string& extra = "") {
  std::string inside = labels;
  if (!extra.empty()) {
    if (!inside.empty()) inside.push_back(',');
    inside += extra;
  }
  if (inside.empty()) return name;
  return name + "{" + inside + "}";
}

/// Re-renders a serialized label key (`k="v",k2="v2"`, values escaped) as a
/// JSON object body (`"k":"v","k2":"v2"`). The input is machine-generated
/// by `SerializeLabels`, so the parse is exact: key up to '=', then a
/// quoted value honouring backslash escapes.
std::string PromLabelsToJson(const std::string& serialized) {
  std::string out;
  size_t i = 0;
  while (i < serialized.size()) {
    if (!out.empty()) out.push_back(',');
    const size_t eq = serialized.find('=', i);
    SGNN_CHECK(eq != std::string::npos);
    out.push_back('"');
    out.append(serialized, i, eq - i);
    out += "\":";
    SGNN_CHECK_EQ(serialized[eq + 1], '"');
    size_t j = eq + 2;
    bool escaped = false;
    while (j < serialized.size()) {
      const char c = serialized[j];
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        break;
      }
      ++j;
    }
    out += serialized.substr(eq + 1, j - eq);  // Includes both quotes.
    i = j + 1;
    if (i < serialized.size() && serialized[i] == ',') ++i;
  }
  return out;
}

}  // namespace

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void Gauge::SetMax(double v) {
  double current = value_.load(std::memory_order_relaxed);
  while (current < v && !value_.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      counts_(upper_bounds_.size() + 1, 0) {
  SGNN_CHECK(!upper_bounds_.empty());
  for (size_t i = 1; i < upper_bounds_.size(); ++i) {
    SGNN_CHECK_LT(upper_bounds_[i - 1], upper_bounds_[i]);
  }
}

void Histogram::Record(double value) {
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value) -
      upper_bounds_.begin());
  common::MutexLock lock(mu_);
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++counts_[bucket];
  ++count_;
  sum_ += value;
}

HistogramSnapshot Histogram::Snapshot() const {
  common::MutexLock lock(mu_);
  HistogramSnapshot snap;
  snap.upper_bounds = upper_bounds_;
  snap.counts = counts_;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  return snap;
}

uint64_t Histogram::count() const {
  common::MutexLock lock(mu_);
  return count_;
}

double HistogramSnapshot::Percentile(double q) const {
  SGNN_CHECK(q >= 0.0 && q <= 1.0);
  if (count == 0) return 0.0;
  // Rank of the q-th sample (1-based, ceil), clamped into [1, count].
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count))));
  uint64_t seen = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    seen += counts[b];
    if (seen < rank) continue;
    if (b >= upper_bounds.size()) return max;  // Overflow (+Inf) bucket.
    const double lo = b == 0 ? 0.0 : upper_bounds[b - 1];
    const double hi = upper_bounds[b];
    const double mid = lo > 0.0 ? std::sqrt(lo * hi) : hi * 0.5;
    return std::clamp(mid, min, max);
  }
  return max;
}

std::vector<double> ExponentialBuckets(double first_upper, double growth,
                                       int count) {
  SGNN_CHECK_GT(first_upper, 0.0);
  SGNN_CHECK_GT(growth, 1.0);
  SGNN_CHECK_GE(count, 1);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double bound = first_upper;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= growth;
  }
  return bounds;
}

MetricsRegistry::Family& MetricsRegistry::FamilyFor(const std::string& name,
                                                   const std::string& help,
                                                   Type type,
                                                   Volatility volatility) {
  SGNN_CHECK(ValidMetricName(name));
  auto [it, inserted] = families_.try_emplace(name);
  Family& family = it->second;
  if (inserted) {
    family.type = type;
    family.help = help;
    family.volatility = volatility;
  } else {
    // A family's identity is fixed by its first registration.
    SGNN_CHECK(family.type == type);
    SGNN_CHECK(family.volatility == volatility);
  }
  return family;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const Labels& labels,
                                     Volatility volatility) {
  const std::string key = SerializeLabels(labels);
  common::MutexLock lock(mu_);
  Family& family = FamilyFor(name, help, Type::kCounter, volatility);
  auto& slot = family.counters[key];
  if (slot == nullptr) slot.reset(new Counter());
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help, const Labels& labels,
                                 Volatility volatility) {
  const std::string key = SerializeLabels(labels);
  common::MutexLock lock(mu_);
  Family& family = FamilyFor(name, help, Type::kGauge, volatility);
  auto& slot = family.gauges[key];
  if (slot == nullptr) slot.reset(new Gauge());
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> upper_bounds,
                                         const Labels& labels,
                                         Volatility volatility) {
  const std::string key = SerializeLabels(labels);
  common::MutexLock lock(mu_);
  Family& family = FamilyFor(name, help, Type::kHistogram, volatility);
  if (family.upper_bounds.empty()) {
    family.upper_bounds = std::move(upper_bounds);
  }
  auto& slot = family.histograms[key];
  if (slot == nullptr) slot.reset(new Histogram(family.upper_bounds));
  return slot.get();
}

void MetricsRegistry::SetOpCounterGauges(const std::string& prefix,
                                         const std::string& help,
                                         const Labels& labels,
                                         const common::OpCounters& counters,
                                         Volatility volatility) {
  GetGauge(prefix + "_edges_touched", help + " (edges touched)", labels,
           volatility)
      ->Set(static_cast<double>(counters.edges_touched));
  GetGauge(prefix + "_floats_moved", help + " (feature scalars moved)", labels,
           volatility)
      ->Set(static_cast<double>(counters.floats_moved));
  GetGauge(prefix + "_kernel_bytes_read", help + " (kernel bytes read)",
           labels, volatility)
      ->Set(static_cast<double>(counters.bytes_read));
  GetGauge(prefix + "_kernel_bytes_written", help + " (kernel bytes written)",
           labels, volatility)
      ->Set(static_cast<double>(counters.bytes_written));
  GetGauge(prefix + "_peak_resident_floats",
           help + " (peak resident feature scalars)", labels, volatility)
      ->Set(static_cast<double>(counters.peak_resident_floats));
  GetGauge(prefix + "_resident_floats", help + " (resident feature scalars)",
           labels, volatility)
      ->Set(static_cast<double>(counters.resident_floats));
}

std::string MetricsRegistry::PrometheusText(bool include_volatile) const {
  common::MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    if (!include_volatile && family.volatility == kVolatile) continue;
    out += "# HELP " + name + " " + Escape(family.help) + "\n";
    switch (family.type) {
      case Type::kCounter: {
        out += "# TYPE " + name + " counter\n";
        for (const auto& [labels, counter] : family.counters) {
          out += SampleName(name, labels) + " " +
                 FormatCount(counter->value()) + "\n";
        }
        break;
      }
      case Type::kGauge: {
        out += "# TYPE " + name + " gauge\n";
        for (const auto& [labels, gauge] : family.gauges) {
          out +=
              SampleName(name, labels) + " " + FormatNumber(gauge->value()) +
              "\n";
        }
        break;
      }
      case Type::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        for (const auto& [labels, histogram] : family.histograms) {
          const HistogramSnapshot snap = histogram->Snapshot();
          uint64_t cumulative = 0;
          for (size_t b = 0; b < snap.upper_bounds.size(); ++b) {
            cumulative += snap.counts[b];
            out += SampleName(name + "_bucket", labels,
                              "le=\"" + FormatNumber(snap.upper_bounds[b]) +
                                  "\"") +
                   " " + FormatCount(cumulative) + "\n";
          }
          out += SampleName(name + "_bucket", labels, "le=\"+Inf\"") + " " +
                 FormatCount(snap.count) + "\n";
          out += SampleName(name + "_sum", labels) + " " +
                 FormatNumber(snap.sum) + "\n";
          out += SampleName(name + "_count", labels) + " " +
                 FormatCount(snap.count) + "\n";
        }
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::JsonText(bool include_volatile) const {
  common::MutexLock lock(mu_);
  std::string counters, gauges, histograms;
  auto append = [](std::string* dst, const std::string& item) {
    if (!dst->empty()) dst->push_back(',');
    *dst += item;
  };
  for (const auto& [name, family] : families_) {
    if (!include_volatile && family.volatility == kVolatile) continue;
    // The serialized label key is already sorted; re-render it as JSON by
    // walking the per-series maps (sorted by that key).
    switch (family.type) {
      case Type::kCounter:
        for (const auto& [labels, counter] : family.counters) {
          append(&counters, "{\"name\":\"" + name + "\",\"labels\":{" +
                                PromLabelsToJson(labels) + "},\"value\":" +
                                FormatCount(counter->value()) + "}");
        }
        break;
      case Type::kGauge:
        for (const auto& [labels, gauge] : family.gauges) {
          append(&gauges, "{\"name\":\"" + name + "\",\"labels\":{" +
                              PromLabelsToJson(labels) + "},\"value\":" +
                              FormatNumber(gauge->value()) + "}");
        }
        break;
      case Type::kHistogram:
        for (const auto& [labels, histogram] : family.histograms) {
          const HistogramSnapshot snap = histogram->Snapshot();
          std::string buckets;
          uint64_t cumulative = 0;
          for (size_t b = 0; b < snap.upper_bounds.size(); ++b) {
            cumulative += snap.counts[b];
            append(&buckets, "{\"le\":" + FormatNumber(snap.upper_bounds[b]) +
                                 ",\"count\":" + FormatCount(cumulative) +
                                 "}");
          }
          append(&buckets, "{\"le\":\"+Inf\",\"count\":" +
                               FormatCount(snap.count) + "}");
          append(&histograms,
                 "{\"name\":\"" + name + "\",\"labels\":{" +
                     PromLabelsToJson(labels) +
                     "},\"count\":" + FormatCount(snap.count) +
                     ",\"sum\":" + FormatNumber(snap.sum) +
                     ",\"buckets\":[" + buckets + "]}");
        }
        break;
    }
  }
  return "{\"counters\":[" + counters + "],\"gauges\":[" + gauges +
         "],\"histograms\":[" + histograms + "]}";
}

size_t MetricsRegistry::NumSeries() const {
  common::MutexLock lock(mu_);
  size_t n = 0;
  for (const auto& [name, family] : families_) {
    (void)name;
    n += family.counters.size() + family.gauges.size() +
         family.histograms.size();
  }
  return n;
}

}  // namespace sgnn::obs
