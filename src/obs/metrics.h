#ifndef SGNN_OBS_METRICS_H_
#define SGNN_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/counters.h"
#include "common/thread_annotations.h"

namespace sgnn::obs {

/// `sgnn::obs` metrics: one registry of named counters, gauges, and
/// fixed-bucket histograms shared by every subsystem (pipeline stages,
/// checkpointing, serving, the fault machinery), replacing the per-module
/// metric stores that grew ad hoc before it. Two exporters — Prometheus
/// text exposition and stable-sorted JSON — read the registry, so a
/// dashboard and a golden-file test see the same bytes.
///
/// Determinism contract: a metric registered `kVolatile` depends on wall
/// time or thread scheduling (latencies, queue depths); everything else
/// must be a pure function of the seeded workload. Exporters can exclude
/// volatile metrics (`include_volatile = false`), and the result is then
/// byte-identical across runs of the same seeded program — the property
/// the golden tests and the replay story rely on.

/// Label set attached to a metric, e.g. `{{"stage", "sparsify:uniform"}}`.
/// Keys are sorted on registration, so label order never affects identity
/// or export order.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Whether a metric's value is reproducible under a fixed seed.
enum class Volatility {
  kDeterministic,  ///< Pure function of the seeded workload.
  kVolatile,       ///< Depends on wall time / thread scheduling.
};
inline constexpr Volatility kDeterministic = Volatility::kDeterministic;
inline constexpr Volatility kVolatile = Volatility::kVolatile;

/// Monotone event count. Handle returned by `MetricsRegistry::GetCounter`;
/// valid for the registry's lifetime. Thread-safe, lock-free.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time value that can move both ways. Thread-safe, lock-free.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  /// Raises the gauge to `v` if `v` exceeds the current value (high-water
  /// marks: max batch size, max queue depth).
  void SetMax(double v);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// Consistent copy of a histogram's state, for percentile math and tests.
struct HistogramSnapshot {
  std::vector<double> upper_bounds;  ///< Ascending; +Inf bucket is implicit.
  std::vector<uint64_t> counts;      ///< `upper_bounds.size() + 1` buckets.
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< Smallest recorded value; 0 when empty.
  double max = 0.0;  ///< Largest recorded value; 0 when empty.

  /// Value at quantile `q` in [0, 1]: the midpoint of the bucket holding
  /// the q-th sample (geometric midpoint when the bucket's lower bound is
  /// positive), clamped to the observed min/max; 0 when empty. O(buckets).
  double Percentile(double q) const;

  double Mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Fixed-bucket histogram: values are counted into the first bucket whose
/// upper bound is >= the value (an implicit +Inf bucket catches the rest).
/// Constant memory, O(buckets) percentile queries. Thread-safe.
class Histogram {
 public:
  void Record(double value) SGNN_EXCLUDES(mu_);
  HistogramSnapshot Snapshot() const SGNN_EXCLUDES(mu_);
  /// Shorthand for `Snapshot().Percentile(q)`.
  double Percentile(double q) const { return Snapshot().Percentile(q); }
  uint64_t count() const SGNN_EXCLUDES(mu_);

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> upper_bounds);

  const std::vector<double> upper_bounds_;
  mutable common::Mutex mu_;
  std::vector<uint64_t> counts_ SGNN_GUARDED_BY(mu_);
  uint64_t count_ SGNN_GUARDED_BY(mu_) = 0;
  double sum_ SGNN_GUARDED_BY(mu_) = 0.0;
  double min_ SGNN_GUARDED_BY(mu_) = 0.0;
  double max_ SGNN_GUARDED_BY(mu_) = 0.0;
};

/// Geometric bucket ladder: `count` upper bounds starting at `first_upper`,
/// each `growth` times the previous. The serving-latency default
/// (1 us, 1.07, 256) gives ~7% resolution from 1 us to ~35 s in constant
/// memory — the ladder `serve::ServeMetrics` used before it moved here.
std::vector<double> ExponentialBuckets(double first_upper, double growth,
                                       int count);

/// The shared metric store. `Get*` registers on first use and returns the
/// existing handle on every later call with the same (name, labels) — so
/// independent subsystems can contribute to one family. Handles stay valid
/// and thread-safe for the registry's lifetime; registration itself is
/// also thread-safe.
///
/// Names must match Prometheus conventions (`[a-zA-Z_:][a-zA-Z0-9_:]*`);
/// re-registering a name with a different metric type, help string, or
/// volatility is a programming error (SGNN_CHECK).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help,
                      const Labels& labels = {},
                      Volatility volatility = kDeterministic)
      SGNN_EXCLUDES(mu_);

  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const Labels& labels = {},
                  Volatility volatility = kDeterministic) SGNN_EXCLUDES(mu_);

  /// All histograms of one family share the first registration's buckets.
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> upper_bounds,
                          const Labels& labels = {},
                          Volatility volatility = kVolatile)
      SGNN_EXCLUDES(mu_);

  /// Sets the data-movement `OpCounters` fields as gauges
  /// `<prefix>_edges_touched`, `_floats_moved`, `_kernel_bytes_read`,
  /// `_kernel_bytes_written`, `_peak_resident_floats`, `_resident_floats`
  /// under `labels`. Gauges (Set, not Add): the exported value IS the
  /// delta the caller computed, so a report row and the export cannot
  /// disagree.
  void SetOpCounterGauges(const std::string& prefix, const std::string& help,
                          const Labels& labels,
                          const common::OpCounters& counters,
                          Volatility volatility = kDeterministic);

  /// Prometheus text exposition format, families stable-sorted by name and
  /// samples by label key. Histograms expose cumulative `_bucket{le=...}`
  /// (including `le="+Inf"`), `_sum`, and `_count`.
  std::string PrometheusText(bool include_volatile = true) const
      SGNN_EXCLUDES(mu_);

  /// Stable-sorted JSON: {"counters":[...],"gauges":[...],"histograms":[...]}.
  std::string JsonText(bool include_volatile = true) const SGNN_EXCLUDES(mu_);

  /// Number of registered metric instances (labeled series, not families).
  size_t NumSeries() const SGNN_EXCLUDES(mu_);

 private:
  enum class Type { kCounter, kGauge, kHistogram };

  struct Family {
    Type type = Type::kCounter;
    std::string help;
    Volatility volatility = kDeterministic;
    std::vector<double> upper_bounds;  ///< Histogram families only.
    // One entry per label set, keyed by the serialized sorted labels.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
  };

  Family& FamilyFor(const std::string& name, const std::string& help,
                    Type type, Volatility volatility) SGNN_REQUIRES(mu_);

  mutable common::Mutex mu_;
  std::map<std::string, Family> families_ SGNN_GUARDED_BY(mu_);
};

}  // namespace sgnn::obs

#endif  // SGNN_OBS_METRICS_H_
