#ifndef SGNN_OBS_TRACE_H_
#define SGNN_OBS_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "common/timer.h"

namespace sgnn::obs {

/// `sgnn::obs` tracing: nestable, thread-safe spans recorded into a
/// lock-sharded in-memory buffer, exportable as Chrome `trace_event` JSON
/// (load the string in `chrome://tracing` / Perfetto).
///
/// Timestamps are *logical ticks* from a per-tracer `common::TickClock`,
/// never wall time: a tick is taken when a span opens and when it closes,
/// so nesting and ordering are exact, and a seeded single-threaded run
/// exports byte-identical JSON every time (the property the golden tests
/// pin). Ticks measure program structure — how many traced boundaries
/// passed — not seconds; pair the trace with registry metrics when you
/// need wall time.

/// One closed span. `track` is a small per-tracer thread index (the
/// `tid` lane in the Chrome viewer), assigned in first-use order.
struct TraceEvent {
  std::string name;
  std::string category;
  uint64_t begin_tick = 0;
  uint64_t end_tick = 0;
  int track = 0;
};

class Tracer;

/// RAII scope: opens on construction (via `Tracer::Span` or the null-safe
/// `StartSpan`), records its event when destroyed or `End()`ed. Movable,
/// not copyable; a default-constructed span is inert, which is how
/// untraced runs (`tracer == nullptr`) cost nothing but two branches.
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(TraceSpan&& other) noexcept { *this = std::move(other); }
  TraceSpan& operator=(TraceSpan&& other) noexcept;
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Closes the span now (idempotent; the destructor calls it too).
  void End();

  bool active() const { return tracer_ != nullptr; }

 private:
  friend class Tracer;
  TraceSpan(Tracer* tracer, std::string name, std::string category);

  Tracer* tracer_ = nullptr;
  std::string name_;
  std::string category_;
  uint64_t begin_tick_ = 0;
  int track_ = 0;
};

/// Span recorder. Concurrent spans append to `num_shards` independently
/// locked buffers (sharded by the recording thread's track id), so tracing
/// a hot multi-threaded path serialises on a shard, not on the tracer.
class Tracer {
 public:
  explicit Tracer(int num_shards = 8);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span; it records itself when it goes out of scope.
  TraceSpan Span(std::string name, std::string category = "");

  /// All recorded events, merged across shards and sorted by begin tick
  /// (ticks are unique, so the order is total and deterministic).
  std::vector<TraceEvent> Events() const;

  uint64_t NumEvents() const;

  /// Chrome `trace_event` JSON (array-of-complete-events form): one
  /// `"ph":"X"` entry per span with `ts`/`dur` in logical ticks. Byte
  /// deterministic for a deterministic span sequence.
  std::string ChromeTraceJson() const;

 private:
  friend class TraceSpan;

  uint64_t Tick() { return clock_.Next(); }
  /// Stable small id for the calling thread (assigned on first use).
  int TrackId();
  void Record(TraceEvent event);

  struct Shard {
    mutable common::Mutex mu;
    std::vector<TraceEvent> events SGNN_GUARDED_BY(mu);
  };

  common::TickClock clock_;
  // sgnn-lint: allow(lock/unannotated-field): sized at construction and
  // never resized; each shard's mutable state is guarded by Shard::mu.
  std::vector<std::unique_ptr<Shard>> shards_;
  common::Mutex track_mu_;
  int next_track_ SGNN_GUARDED_BY(track_mu_) = 0;
};

/// Null-safe span factory: an inert span when `tracer` is null, so call
/// sites instrument unconditionally and pay nothing when tracing is off.
inline TraceSpan StartSpan(Tracer* tracer, std::string name,
                           std::string category = "") {
  if (tracer == nullptr) return TraceSpan();
  return tracer->Span(std::move(name), std::move(category));
}

}  // namespace sgnn::obs

#endif  // SGNN_OBS_TRACE_H_
