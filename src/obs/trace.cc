#include "obs/trace.h"

#include <algorithm>

#include "common/check.h"

namespace sgnn::obs {

namespace {

/// JSON string escaping for span names/categories (control characters do
/// not appear in practice; quotes and backslashes must not break the doc).
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

TraceSpan::TraceSpan(Tracer* tracer, std::string name, std::string category)
    : tracer_(tracer), name_(std::move(name)), category_(std::move(category)) {
  track_ = tracer_->TrackId();
  begin_tick_ = tracer_->Tick();
}

TraceSpan& TraceSpan::operator=(TraceSpan&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    name_ = std::move(other.name_);
    category_ = std::move(other.category_);
    begin_tick_ = other.begin_tick_;
    track_ = other.track_;
    other.tracer_ = nullptr;
  }
  return *this;
}

void TraceSpan::End() {
  if (tracer_ == nullptr) return;
  TraceEvent event;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.begin_tick = begin_tick_;
  event.end_tick = tracer_->Tick();
  event.track = track_;
  tracer_->Record(std::move(event));
  tracer_ = nullptr;
}

Tracer::Tracer(int num_shards) {
  SGNN_CHECK_GE(num_shards, 1);
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

TraceSpan Tracer::Span(std::string name, std::string category) {
  return TraceSpan(this, std::move(name), std::move(category));
}

int Tracer::TrackId() {
  // One-entry per-thread cache: the common case is one tracer per run, so
  // the mutex is touched once per (thread, tracer) pair. A thread that
  // alternates between tracers re-registers on each switch and gets a new
  // track each time — cosmetic (an extra viewer lane), never incorrect.
  thread_local const Tracer* cached_tracer = nullptr;
  thread_local int cached_track = 0;
  if (cached_tracer != this) {
    common::MutexLock lock(track_mu_);
    cached_track = next_track_++;
    cached_tracer = this;
  }
  return cached_track;
}

void Tracer::Record(TraceEvent event) {
  Shard& shard =
      *shards_[static_cast<size_t>(event.track) % shards_.size()];
  common::MutexLock lock(shard.mu);
  shard.events.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> merged;
  for (const auto& shard : shards_) {
    common::MutexLock lock(shard->mu);
    merged.insert(merged.end(), shard->events.begin(), shard->events.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.begin_tick < b.begin_tick;
            });
  return merged;
}

uint64_t Tracer::NumEvents() const {
  uint64_t n = 0;
  for (const auto& shard : shards_) {
    common::MutexLock lock(shard->mu);
    n += shard->events.size();
  }
  return n;
}

std::string Tracer::ChromeTraceJson() const {
  const std::vector<TraceEvent> events = Events();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out.push_back(',');
    first = false;
    out += "\n{\"name\":\"" + Escape(event.name) + "\",\"cat\":\"" +
           Escape(event.category.empty() ? "default" : event.category) +
           "\",\"ph\":\"X\",\"pid\":0,\"tid\":" +
           std::to_string(event.track) +
           ",\"ts\":" + std::to_string(event.begin_tick) +
           ",\"dur\":" + std::to_string(event.end_tick - event.begin_tick) +
           "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

}  // namespace sgnn::obs
