#ifndef SGNN_SUBGRAPH_WALK_STORE_H_
#define SGNN_SUBGRAPH_WALK_STORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "graph/csr_graph.h"

namespace sgnn::subgraph {

/// SUREL-style walk-set storage (§3.3.3 "Subgraph Storage"): per seed, a
/// bundle of random walks is stored as (a) the deduplicated set of visited
/// nodes and (b) the walks themselves as small local indices into that
/// set. Repeated visits to the same node cost one pool entry plus an
/// index, so storage shrinks exactly where ego-nets overlap — the
/// algorithm/system co-design claim of SUREL/SUREL+.
class WalkStore {
 public:
  WalkStore() = default;

  /// Samples `num_walks` uniform walks of `walk_length` steps from `seed`
  /// and appends the bundle. Returns the bundle's index.
  int AddSeed(const graph::CsrGraph& graph, graph::NodeId seed, int num_walks,
              int walk_length, common::Rng* rng);

  int num_seeds() const { return static_cast<int>(seeds_.size()); }
  graph::NodeId seed(int bundle) const { return seeds_[CheckBundle(bundle)]; }

  /// Deduplicated visited-node set of a bundle (first-visit order,
  /// starting with the seed itself).
  std::span<const graph::NodeId> NodeSet(int bundle) const;

  /// Reconstructs walk `w` of a bundle as global node ids. Walks may be
  /// shorter than requested if they hit a dangling node.
  std::vector<graph::NodeId> Walk(int bundle, int w) const;

  int NumWalks(int bundle) const { return num_walks_[CheckBundle(bundle)]; }

  /// Storage accounting: `dense_slots` is what naive per-walk node storage
  /// would use; `pool_entries` + `index_entries` is what the store uses.
  struct StorageStats {
    int64_t dense_slots = 0;
    int64_t pool_entries = 0;
    int64_t index_entries = 0;

    /// Bytes assuming 4-byte node ids and 2-byte local indices.
    int64_t dense_bytes() const { return dense_slots * 4; }
    int64_t stored_bytes() const {
      return pool_entries * 4 + index_entries * 2;
    }
  };
  StorageStats Stats() const;

 private:
  size_t CheckBundle(int bundle) const;

  std::vector<graph::NodeId> seeds_;
  std::vector<int> num_walks_;
  // Deduplicated node pool across bundles, with per-bundle offsets.
  std::vector<graph::NodeId> node_pool_;
  std::vector<int64_t> node_offsets_ = {0};
  // Walk index pool: local 16-bit indices into the bundle's node set, with
  // per-walk offsets (walks can terminate early at dangling nodes).
  std::vector<uint16_t> index_pool_;
  std::vector<int64_t> walk_offsets_ = {0};
  std::vector<int64_t> bundle_walk_start_ = {0};  ///< Into walk_offsets_.
};

}  // namespace sgnn::subgraph

#endif  // SGNN_SUBGRAPH_WALK_STORE_H_
