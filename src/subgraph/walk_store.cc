#include "subgraph/walk_store.h"

#include <unordered_map>

#include "common/check.h"

namespace sgnn::subgraph {

using graph::CsrGraph;
using graph::NodeId;

size_t WalkStore::CheckBundle(int bundle) const {
  SGNN_CHECK(bundle >= 0 && bundle < num_seeds());
  return static_cast<size_t>(bundle);
}

int WalkStore::AddSeed(const CsrGraph& graph, NodeId seed, int num_walks,
                       int walk_length, common::Rng* rng) {
  SGNN_CHECK(rng != nullptr);
  SGNN_CHECK_LT(seed, graph.num_nodes());
  SGNN_CHECK_GE(num_walks, 1);
  SGNN_CHECK_GE(walk_length, 0);

  std::unordered_map<NodeId, uint16_t> local;
  auto local_of = [this, &local](NodeId v) {
    auto [it, inserted] =
        local.emplace(v, static_cast<uint16_t>(local.size()));
    if (inserted) {
      // 16-bit local ids cap a bundle's distinct nodes at 65536, ample for
      // walk bundles (num_walks * (walk_length+1) distinct visits max).
      SGNN_CHECK_LE(local.size(), 65536u);
      node_pool_.push_back(v);
    }
    return it->second;
  };

  local_of(seed);  // Node set starts with the seed.
  for (int w = 0; w < num_walks; ++w) {
    NodeId cur = seed;
    index_pool_.push_back(local_of(cur));
    for (int step = 0; step < walk_length; ++step) {
      auto nbrs = graph.Neighbors(cur);
      if (nbrs.empty()) break;
      cur = nbrs[rng->UniformInt(nbrs.size())];
      index_pool_.push_back(local_of(cur));
    }
    walk_offsets_.push_back(static_cast<int64_t>(index_pool_.size()));
  }

  seeds_.push_back(seed);
  num_walks_.push_back(num_walks);
  node_offsets_.push_back(static_cast<int64_t>(node_pool_.size()));
  bundle_walk_start_.push_back(
      static_cast<int64_t>(walk_offsets_.size()) - 1);
  return num_seeds() - 1;
}

std::span<const NodeId> WalkStore::NodeSet(int bundle) const {
  const size_t b = CheckBundle(bundle);
  return {node_pool_.data() + node_offsets_[b],
          static_cast<size_t>(node_offsets_[b + 1] - node_offsets_[b])};
}

std::vector<NodeId> WalkStore::Walk(int bundle, int w) const {
  const size_t b = CheckBundle(bundle);
  SGNN_CHECK(w >= 0 && w < num_walks_[b]);
  const int64_t walk_idx = bundle_walk_start_[b] + w;
  const int64_t begin = walk_offsets_[static_cast<size_t>(walk_idx)];
  const int64_t end = walk_offsets_[static_cast<size_t>(walk_idx) + 1];
  const NodeId* pool = node_pool_.data() + node_offsets_[b];
  std::vector<NodeId> out;
  out.reserve(static_cast<size_t>(end - begin));
  for (int64_t i = begin; i < end; ++i) {
    out.push_back(pool[index_pool_[static_cast<size_t>(i)]]);
  }
  return out;
}

WalkStore::StorageStats WalkStore::Stats() const {
  StorageStats stats;
  stats.dense_slots = static_cast<int64_t>(index_pool_.size());
  stats.pool_entries = static_cast<int64_t>(node_pool_.size());
  stats.index_entries = static_cast<int64_t>(index_pool_.size());
  return stats;
}

}  // namespace sgnn::subgraph
