#include "subgraph/khop.h"

#include <queue>
#include <unordered_set>

#include "common/check.h"

namespace sgnn::subgraph {

using graph::CsrGraph;
using graph::NodeId;

EgoNet ExtractKHop(const CsrGraph& graph, NodeId center, int hops,
                   int64_t node_budget) {
  SGNN_CHECK_LT(center, graph.num_nodes());
  SGNN_CHECK_GE(hops, 0);
  SGNN_CHECK_GE(node_budget, 0);
  EgoNet out;
  out.nodes.push_back(center);
  std::unordered_set<NodeId> seen = {center};
  std::queue<std::pair<NodeId, int>> frontier;
  frontier.emplace(center, 0);
  while (!frontier.empty()) {
    const auto [u, depth] = frontier.front();
    frontier.pop();
    if (depth >= hops) continue;
    for (NodeId v : graph.Neighbors(u)) {
      if (node_budget > 0 &&
          static_cast<int64_t>(out.nodes.size()) >= node_budget) {
        break;
      }
      if (!seen.insert(v).second) continue;
      out.nodes.push_back(v);
      out.hops_reached = depth + 1;
      frontier.emplace(v, depth + 1);
    }
  }
  out.subgraph = graph.InducedSubgraph(out.nodes);
  return out;
}

}  // namespace sgnn::subgraph
