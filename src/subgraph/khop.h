#ifndef SGNN_SUBGRAPH_KHOP_H_
#define SGNN_SUBGRAPH_KHOP_H_

#include <vector>

#include "graph/csr_graph.h"

namespace sgnn::subgraph {

/// k-hop ego-network extraction (§3.3.3): the materialised-subgraph
/// baseline that walk-based storage is compared against.
struct EgoNet {
  std::vector<graph::NodeId> nodes;  ///< BFS order, nodes[0] == center.
  graph::CsrGraph subgraph;          ///< Induced subgraph over `nodes`.
  int hops_reached = 0;              ///< Depth actually explored.
};

/// Extracts the `hops`-hop neighbourhood of `center`, truncating the BFS
/// frontier once `node_budget` nodes are collected (budget includes the
/// center; a budget of 0 means unlimited).
EgoNet ExtractKHop(const graph::CsrGraph& graph, graph::NodeId center,
                   int hops, int64_t node_budget);

}  // namespace sgnn::subgraph

#endif  // SGNN_SUBGRAPH_KHOP_H_
