#include "sparsify/sparsify.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace sgnn::sparsify {

using graph::CsrGraph;
using graph::Edge;
using graph::NodeId;

namespace {

/// Undirected edge list (u < v) of a symmetric graph.
std::vector<Edge> UndirectedEdges(const CsrGraph& graph) {
  std::vector<Edge> out;
  out.reserve(static_cast<size_t>(graph.num_edges() / 2));
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    auto nbrs = graph.Neighbors(u);
    auto ws = graph.Weights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (u < nbrs[i]) out.push_back(Edge{u, nbrs[i], ws[i]});
    }
  }
  return out;
}

CsrGraph FromUndirected(NodeId num_nodes, const std::vector<Edge>& edges) {
  graph::EdgeListBuilder builder(num_nodes);
  for (const Edge& e : edges) builder.AddUndirectedEdge(e.src, e.dst, e.weight);
  builder.Deduplicate();
  return CsrGraph::FromBuilder(std::move(builder));
}

}  // namespace

CsrGraph UniformSparsify(const CsrGraph& graph, double keep_prob,
                         bool reweight, uint64_t seed) {
  SGNN_CHECK(keep_prob > 0.0 && keep_prob <= 1.0);
  common::Rng rng(seed);
  std::vector<Edge> kept;
  for (const Edge& e : UndirectedEdges(graph)) {
    if (!rng.Bernoulli(keep_prob)) continue;
    Edge copy = e;
    if (reweight) copy.weight = static_cast<float>(copy.weight / keep_prob);
    kept.push_back(copy);
  }
  return FromUndirected(graph.num_nodes(), kept);
}

CsrGraph SpectralSparsify(const CsrGraph& graph, int64_t num_samples,
                          uint64_t seed) {
  SGNN_CHECK_GE(num_samples, 1);
  common::Rng rng(seed);
  const std::vector<Edge> edges = UndirectedEdges(graph);
  SGNN_CHECK(!edges.empty());

  // Sampling distribution p_e ∝ w_e * (1/d(u) + 1/d(v)).
  std::vector<double> score(edges.size());
  double total = 0.0;
  for (size_t i = 0; i < edges.size(); ++i) {
    const double du = static_cast<double>(graph.OutDegree(edges[i].src));
    const double dv = static_cast<double>(graph.OutDegree(edges[i].dst));
    score[i] = edges[i].weight * (1.0 / du + 1.0 / dv);
    total += score[i];
  }
  std::vector<double> cdf(edges.size());
  double acc = 0.0;
  for (size_t i = 0; i < edges.size(); ++i) {
    acc += score[i];
    cdf[i] = acc;
  }

  // num_samples draws with replacement; accumulate w/(q * p) per edge.
  std::vector<double> weight_acc(edges.size(), 0.0);
  for (int64_t s = 0; s < num_samples; ++s) {
    const double r = rng.Uniform() * total;
    const size_t idx = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), r) - cdf.begin());
    const double p = score[idx] / total;
    weight_acc[idx] += edges[idx].weight / (num_samples * p);
  }
  std::vector<Edge> kept;
  for (size_t i = 0; i < edges.size(); ++i) {
    if (weight_acc[i] <= 0.0) continue;
    kept.push_back(Edge{edges[i].src, edges[i].dst,
                        static_cast<float>(weight_acc[i])});
  }
  return FromUndirected(graph.num_nodes(), kept);
}

CsrGraph DegreeAwarePrune(const CsrGraph& graph,
                          graph::EdgeIndex degree_threshold, int keep_per_hub,
                          DegreeAwareStats* stats) {
  SGNN_CHECK_GE(keep_per_hub, 1);
  DegreeAwareStats local;
  local.edges_before = graph.num_edges();

  // For each node, mark which of its incident undirected edges it wants.
  // An edge survives if either endpoint wants it.
  std::vector<Edge> kept;
  auto wants = [&](NodeId u, NodeId v, float w) {
    auto deg = graph.OutDegree(u);
    if (deg <= degree_threshold) return true;
    // Hub: wants v only if (w, v) ranks in its top keep_per_hub by weight
    // (ties by smaller neighbour id first).
    auto nbrs = graph.Neighbors(u);
    auto ws = graph.Weights(u);
    int better = 0;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (ws[i] > w || (ws[i] == w && nbrs[i] < v)) ++better;
      if (better >= keep_per_hub) return false;
    }
    return true;
  };
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    if (graph.OutDegree(u) > degree_threshold) ++local.hubs;
  }
  for (const Edge& e : UndirectedEdges(graph)) {
    if (wants(e.src, e.dst, e.weight) || wants(e.dst, e.src, e.weight)) {
      kept.push_back(e);
    }
  }
  CsrGraph out = FromUndirected(graph.num_nodes(), kept);
  local.edges_after = out.num_edges();
  if (stats != nullptr) *stats = local;
  return out;
}

CsrGraph ThresholdPrune(const CsrGraph& graph, float min_weight) {
  std::vector<Edge> kept;
  for (const Edge& e : UndirectedEdges(graph)) {
    if (e.weight >= min_weight) kept.push_back(e);
  }
  return FromUndirected(graph.num_nodes(), kept);
}

}  // namespace sgnn::sparsify
