#ifndef SGNN_SPARSIFY_SPARSIFY_H_
#define SGNN_SPARSIFY_SPARSIFY_H_

#include <cstdint>

#include "graph/csr_graph.h"

namespace sgnn::sparsify {

/// Graph sparsification (§3.3.1): shrink the edge set while preserving the
/// properties propagation depends on. Every routine treats the input as
/// undirected (both directions of an edge are kept or dropped together)
/// and returns a simple undirected graph.

/// Keeps each undirected edge independently with probability `keep_prob`.
/// With `reweight`, surviving edges are scaled by 1/keep_prob so the
/// expected adjacency (hence expected propagation) is unchanged.
graph::CsrGraph UniformSparsify(const graph::CsrGraph& graph,
                                double keep_prob, bool reweight,
                                uint64_t seed);

/// Spielman–Srivastava-flavoured spectral sparsifier with the degree-based
/// effective-resistance proxy R(u,v) ≈ 1/d(u) + 1/d(v): draws
/// `num_samples` edges with probability proportional to w * R and
/// accumulates weight w/(num_samples * p) per draw, approximately
/// preserving the Laplacian quadratic form (tested via Rayleigh quotients).
graph::CsrGraph SpectralSparsify(const graph::CsrGraph& graph,
                                 int64_t num_samples, uint64_t seed);

/// ATP-style degree-aware pruning: hubs (degree > `degree_threshold`) keep
/// only their `keep_per_hub` heaviest edges; low-degree nodes keep
/// everything. An edge survives if either endpoint wants it.
struct DegreeAwareStats {
  int64_t hubs = 0;
  int64_t edges_before = 0;  ///< Directed.
  int64_t edges_after = 0;   ///< Directed.
};
graph::CsrGraph DegreeAwarePrune(const graph::CsrGraph& graph,
                                 graph::EdgeIndex degree_threshold,
                                 int keep_per_hub, DegreeAwareStats* stats);

/// Drops undirected edges with weight below `min_weight`.
graph::CsrGraph ThresholdPrune(const graph::CsrGraph& graph,
                               float min_weight);

}  // namespace sgnn::sparsify

#endif  // SGNN_SPARSIFY_SPARSIFY_H_
