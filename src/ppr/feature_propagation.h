#ifndef SGNN_PPR_FEATURE_PROPAGATION_H_
#define SGNN_PPR_FEATURE_PROPAGATION_H_

#include "graph/propagate.h"
#include "tensor/matrix.h"

namespace sgnn::ppr {

/// Decoupled PPR smoothing of a whole feature/logit matrix:
///   Z = sum_{k=0..K} alpha (1-alpha)^k S^k H   (+ (1-alpha)^K tail on S^K H)
/// computed iteratively as Z_{k+1} = (1-alpha) S Z_k + alpha H. This is the
/// APPNP propagation step (Klicpera et al., the tutorial's pioneering
/// decoupled model) and is linear in edges per hop.
struct AppnpStats {
  int hops_run = 0;
  double final_delta = 0.0;  ///< Max-abs change in the final hop.
};

/// Runs K hops (or stops early when the max-abs update falls below
/// `early_stop_tol` > 0). `prop` should be a symmetric or row normalisation
/// of the graph.
tensor::Matrix AppnpPropagate(const graph::Propagator& prop,
                              const tensor::Matrix& h, double alpha, int hops,
                              double early_stop_tol = 0.0,
                              AppnpStats* stats = nullptr);

/// SCARA/Unifews-flavoured *sparse-aware* propagation: identical recurrence,
/// but entries whose absolute update contribution is below `threshold` are
/// skipped (entry-wise sparsification of the propagation, §3.3.1). Returns
/// the smoothed matrix; `ops_performed`/`ops_skipped` expose the saving.
struct ThresholdedStats {
  int64_t ops_performed = 0;
  int64_t ops_skipped = 0;
};

tensor::Matrix ThresholdedPropagate(const graph::Propagator& prop,
                                    const tensor::Matrix& h, double alpha,
                                    int hops, double threshold,
                                    ThresholdedStats* stats = nullptr);

/// SCARA-style *feature push* (§3.3.1 "Node-level"): treats every feature
/// column as a (signed) source distribution and runs forward push on it,
/// so work adapts to each column's support instead of sweeping all edges
/// per hop. Computes the fixed point
///   Z = alpha * sum_k (1-alpha)^k M^k X,   M = A D^-1 (column-stochastic)
/// to per-entry tolerance r_max * degree (same bound as single-source
/// push). Equivalent to running `AppnpPropagate` with a kColumn
/// propagator to convergence, but touches only active entries.
struct FeaturePushStats {
  int64_t pushes = 0;
  int64_t edges_touched = 0;
};

tensor::Matrix FeaturePush(const graph::CsrGraph& graph,
                           const tensor::Matrix& x, double alpha,
                           double r_max, FeaturePushStats* stats = nullptr);

}  // namespace sgnn::ppr

#endif  // SGNN_PPR_FEATURE_PROPAGATION_H_
