#include "ppr/feature_propagation.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/counters.h"
#include "tensor/ops.h"

namespace sgnn::ppr {

using tensor::Matrix;

Matrix AppnpPropagate(const graph::Propagator& prop, const Matrix& h,
                      double alpha, int hops, double early_stop_tol,
                      AppnpStats* stats) {
  SGNN_CHECK(alpha > 0.0 && alpha <= 1.0);
  SGNN_CHECK_GE(hops, 0);
  Matrix z = h;
  Matrix sz;
  int k = 0;
  double delta = 0.0;
  for (; k < hops; ++k) {
    prop.Apply(z, &sz);
    // z <- (1-alpha) S z + alpha h
    tensor::Scale(static_cast<float>(1.0 - alpha), &sz);
    tensor::Axpy(static_cast<float>(alpha), h, &sz);
    delta = tensor::MaxAbsDiff(z, sz);
    z = std::move(sz);
    if (early_stop_tol > 0.0 && delta < early_stop_tol) {
      ++k;
      break;
    }
  }
  if (stats != nullptr) {
    stats->hops_run = k;
    stats->final_delta = delta;
  }
  return z;
}

Matrix ThresholdedPropagate(const graph::Propagator& prop, const Matrix& h,
                            double alpha, int hops, double threshold,
                            ThresholdedStats* stats) {
  SGNN_CHECK(alpha > 0.0 && alpha <= 1.0);
  SGNN_CHECK_GE(hops, 0);
  SGNN_CHECK_GE(threshold, 0.0);
  const auto& g = prop.graph();
  const int64_t cols = h.cols();
  Matrix z = h;
  Matrix next(h.rows(), cols);
  ThresholdedStats local;
  for (int k = 0; k < hops; ++k) {
    next.Zero();
    for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
      auto nbrs = g.Neighbors(u);
      auto cs = prop.Coefficients(u);
      float* orow = next.data() + static_cast<int64_t>(u) * cols;
      for (size_t i = 0; i < nbrs.size(); ++i) {
        const float c = cs[i];
        const float* zrow = z.data() + static_cast<int64_t>(nbrs[i]) * cols;
        for (int64_t j = 0; j < cols; ++j) {
          const float contrib = c * zrow[j];
          // Entry-wise pruning (Unifews): drop sub-threshold messages.
          if (std::fabs(contrib) < threshold) {
            ++local.ops_skipped;
            continue;
          }
          orow[j] += contrib;
          ++local.ops_performed;
        }
      }
      const float self = prop.SelfLoopCoefficient(u);
      if (self != 0.0f) {
        const float* zrow = z.data() + static_cast<int64_t>(u) * cols;
        for (int64_t j = 0; j < cols; ++j) orow[j] += self * zrow[j];
      }
    }
    tensor::Scale(static_cast<float>(1.0 - alpha), &next);
    tensor::Axpy(static_cast<float>(alpha), h, &next);
    std::swap(z, next);
  }
  if (stats != nullptr) *stats = local;
  return z;
}

tensor::Matrix FeaturePush(const graph::CsrGraph& graph,
                           const tensor::Matrix& x, double alpha,
                           double r_max, FeaturePushStats* stats) {
  SGNN_CHECK(alpha > 0.0 && alpha < 1.0);
  SGNN_CHECK_GT(r_max, 0.0);
  SGNN_CHECK_EQ(x.rows(), static_cast<int64_t>(graph.num_nodes()));
  const graph::NodeId n = graph.num_nodes();
  tensor::Matrix z(x.rows(), x.cols());
  FeaturePushStats local;

  std::vector<double> r(n);
  std::vector<double> p(n);
  std::vector<bool> queued(n);
  std::vector<graph::NodeId> active;
  for (int64_t col = 0; col < x.cols(); ++col) {
    std::fill(p.begin(), p.end(), 0.0);
    std::fill(queued.begin(), queued.end(), false);
    active.clear();
    for (graph::NodeId u = 0; u < n; ++u) {
      r[u] = x.at(static_cast<int64_t>(u), col);
      if (std::fabs(r[u]) >
          r_max * std::max<double>(1.0, static_cast<double>(graph.OutDegree(u)))) {
        active.push_back(u);
        queued[u] = true;
      }
    }
    // Signed forward push: identical recurrence, residuals may be
    // negative (features are arbitrary signals, not distributions).
    while (!active.empty()) {
      const graph::NodeId u = active.back();
      active.pop_back();
      queued[u] = false;
      const auto deg = graph.OutDegree(u);
      if (deg == 0) {
        p[u] += r[u];
        r[u] = 0.0;
        continue;
      }
      if (std::fabs(r[u]) <= r_max * static_cast<double>(deg)) continue;
      const double ru = r[u];
      p[u] += alpha * ru;
      r[u] = 0.0;
      ++local.pushes;
      local.edges_touched += deg;
      const double spread = (1.0 - alpha) * ru / graph.WeightedDegree(u);
      auto nbrs = graph.Neighbors(u);
      auto ws = graph.Weights(u);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        const graph::NodeId v = nbrs[i];
        r[v] += spread * ws[i];
        if (!queued[v] &&
            std::fabs(r[v]) >
                r_max * std::max<double>(
                            1.0, static_cast<double>(graph.OutDegree(v)))) {
          active.push_back(v);
          queued[v] = true;
        }
      }
    }
    for (graph::NodeId u = 0; u < n; ++u) {
      z.at(static_cast<int64_t>(u), col) = static_cast<float>(p[u]);
    }
  }
  common::GlobalCounters().edges_touched +=
      static_cast<uint64_t>(local.edges_touched);
  if (stats != nullptr) *stats = local;
  return z;
}

}  // namespace sgnn::ppr
