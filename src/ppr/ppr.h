#ifndef SGNN_PPR_PPR_H_
#define SGNN_PPR_PPR_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/csr_graph.h"

namespace sgnn::ppr {

/// Personalised PageRank with restart probability `alpha` over the
/// row-stochastic random-walk transition: for source s,
///   pi_s = alpha * sum_k (1-alpha)^k P^k e_s,  P = (D^-1 A)^T acting on
/// distributions. This is the graph-analytics primitive behind APPNP,
/// PPRGo and SCARA (§3.1.2 "decoupled propagation").

/// Result of an approximate single-source computation.
struct PushResult {
  /// Estimate p(v) for nodes with non-zero mass (unsorted sparse form).
  std::vector<std::pair<graph::NodeId, double>> estimate;
  /// Number of push operations performed.
  int64_t pushes = 0;
  /// Directed edges traversed; the sublinearity measure of E3.
  int64_t edges_touched = 0;
};

/// Andersen-Chung-Lang forward push. Pushes node u while its residual
/// exceeds `r_max * degree(u)`; the returned estimate satisfies
/// |pi_s(v) - p(v)| <= r_max * degree(v) for all v.
/// Requires 0 < alpha < 1 and r_max > 0. Zero-degree sources return all
/// mass on the source.
PushResult ForwardPush(const graph::CsrGraph& graph, graph::NodeId source,
                       double alpha, double r_max);

/// Forward push from every seed in `seeds` (PPRGo/SCARA-style batch
/// precompute). Runs seeds as a parallel section over the process-wide
/// `par` worker pool; each seed's push is the same computation as
/// `ForwardPush`, so `results[i]` is bit-identical to
/// `ForwardPush(graph, seeds[i], ...)` for any `SGNN_THREADS`. Duplicate
/// seeds are allowed and computed independently.
std::vector<PushResult> PushBatch(const graph::CsrGraph& graph,
                                  std::span<const graph::NodeId> seeds,
                                  double alpha, double r_max);

/// Dense power iteration to additive tolerance `tol` (L1); the exact
/// baseline the approximate methods are validated against.
std::vector<double> PowerIterationPpr(const graph::CsrGraph& graph,
                                      graph::NodeId source, double alpha,
                                      double tol, int max_iters = 1000);

/// Monte-Carlo estimate from `num_walks` alpha-terminated random walks.
std::vector<double> MonteCarloPpr(const graph::CsrGraph& graph,
                                  graph::NodeId source, double alpha,
                                  int64_t num_walks, uint64_t seed);

/// Top-k PPR neighbours of `source` by approximate mass, descending
/// (ties by node id). Uses forward push at `r_max`.
std::vector<std::pair<graph::NodeId, double>> TopKPpr(
    const graph::CsrGraph& graph, graph::NodeId source, double alpha, int k,
    double r_max);

}  // namespace sgnn::ppr

#endif  // SGNN_PPR_PPR_H_
