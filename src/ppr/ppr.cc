#include "ppr/ppr.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.h"
#include "common/counters.h"
#include "common/rng.h"
#include "par/par.h"

namespace sgnn::ppr {

using graph::CsrGraph;
using graph::NodeId;

PushResult ForwardPush(const CsrGraph& graph, NodeId source, double alpha,
                       double r_max) {
  SGNN_CHECK(alpha > 0.0 && alpha < 1.0);
  SGNN_CHECK_GT(r_max, 0.0);
  SGNN_CHECK_LT(source, graph.num_nodes());

  std::vector<double> p(graph.num_nodes(), 0.0);
  std::vector<double> r(graph.num_nodes(), 0.0);
  std::vector<bool> queued(graph.num_nodes(), false);
  std::queue<NodeId> active;

  r[source] = 1.0;
  active.push(source);
  queued[source] = true;

  PushResult result;
  while (!active.empty()) {
    const NodeId u = active.front();
    active.pop();
    queued[u] = false;
    const auto deg = graph.OutDegree(u);
    if (deg == 0) {
      // Dangling node: all residual mass settles here.
      p[u] += r[u];
      r[u] = 0.0;
      continue;
    }
    if (r[u] <= r_max * static_cast<double>(deg)) continue;
    const double ru = r[u];
    p[u] += alpha * ru;
    r[u] = 0.0;
    ++result.pushes;
    result.edges_touched += deg;
    const double w_deg = graph.WeightedDegree(u);
    const double spread = (1.0 - alpha) * ru / w_deg;
    auto nbrs = graph.Neighbors(u);
    auto ws = graph.Weights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const NodeId v = nbrs[i];
      r[v] += spread * ws[i];
      if (!queued[v] && r[v] > r_max * static_cast<double>(graph.OutDegree(v))) {
        active.push(v);
        queued[v] = true;
      }
    }
  }

  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (p[v] > 0.0) result.estimate.emplace_back(v, p[v]);
  }
  common::GlobalCounters().edges_touched +=
      static_cast<uint64_t>(result.edges_touched);
  return result;
}

std::vector<PushResult> PushBatch(const CsrGraph& graph,
                                  std::span<const NodeId> seeds, double alpha,
                                  double r_max) {
  std::vector<PushResult> results(seeds.size());
  // One seed per shard (up to the cap): pushes vary wildly in cost with
  // the seed's neighbourhood, and the shard-claiming loop load-balances
  // dynamically while each result stays a pure function of its seed.
  const auto shards = par::SplitUniform(
      static_cast<int64_t>(seeds.size()),
      par::ShardsFor(static_cast<int64_t>(seeds.size()), /*grain=*/1));
  par::ParallelFor("ppr.push_batch", shards, [&](int, par::Range range) {
    for (int64_t i = range.begin; i < range.end; ++i) {
      results[static_cast<size_t>(i)] =
          ForwardPush(graph, seeds[static_cast<size_t>(i)], alpha, r_max);
    }
  });
  return results;
}

std::vector<double> PowerIterationPpr(const CsrGraph& graph, NodeId source,
                                      double alpha, double tol,
                                      int max_iters) {
  SGNN_CHECK(alpha > 0.0 && alpha < 1.0);
  SGNN_CHECK_LT(source, graph.num_nodes());
  const NodeId n = graph.num_nodes();
  std::vector<double> pi(n, 0.0);
  std::vector<double> next(n, 0.0);
  pi[source] = 1.0;
  for (int iter = 0; iter < max_iters; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    // next = (1-alpha) * P pi + alpha * e_s, with P spreading mass from
    // each node to its out-neighbours proportionally to edge weight.
    for (NodeId u = 0; u < n; ++u) {
      if (pi[u] == 0.0) continue;
      const double w_deg = graph.WeightedDegree(u);
      if (w_deg == 0.0) {
        next[u] += (1.0 - alpha) * pi[u];  // Dangling mass stays put.
        continue;
      }
      const double spread = (1.0 - alpha) * pi[u] / w_deg;
      auto nbrs = graph.Neighbors(u);
      auto ws = graph.Weights(u);
      for (size_t i = 0; i < nbrs.size(); ++i) next[nbrs[i]] += spread * ws[i];
    }
    next[source] += alpha;
    common::GlobalCounters().edges_touched +=
        static_cast<uint64_t>(graph.num_edges());
    double diff = 0.0;
    for (NodeId v = 0; v < n; ++v) diff += std::fabs(next[v] - pi[v]);
    pi.swap(next);
    if (diff < tol) break;
  }
  // The fixed point of the update above is alpha * sum (1-alpha)^k P^k e_s
  // scaled by 1/alpha contributions; normalise exactly: the iteration as
  // written already converges to the PPR distribution (mass 1).
  return pi;
}

std::vector<double> MonteCarloPpr(const CsrGraph& graph, NodeId source,
                                  double alpha, int64_t num_walks,
                                  uint64_t seed) {
  SGNN_CHECK(alpha > 0.0 && alpha < 1.0);
  SGNN_CHECK_GT(num_walks, 0);
  SGNN_CHECK_LT(source, graph.num_nodes());
  common::Rng rng(seed);
  std::vector<int64_t> stops(graph.num_nodes(), 0);
  for (int64_t w = 0; w < num_walks; ++w) {
    NodeId cur = source;
    while (!rng.Bernoulli(alpha)) {
      auto nbrs = graph.Neighbors(cur);
      if (nbrs.empty()) break;  // Dangling: terminate here.
      // Weight-proportional step, consistent with the push/power-iteration
      // transition D^-1 A on weighted graphs.
      auto ws = graph.Weights(cur);
      const double pick = rng.Uniform() * graph.WeightedDegree(cur);
      double acc = 0.0;
      size_t idx = nbrs.size() - 1;
      for (size_t i = 0; i < ws.size(); ++i) {
        acc += ws[i];
        if (pick < acc) {
          idx = i;
          break;
        }
      }
      cur = nbrs[idx];
      common::GlobalCounters().edges_touched += 1;
    }
    stops[cur]++;
  }
  std::vector<double> pi(graph.num_nodes(), 0.0);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    pi[v] = static_cast<double>(stops[v]) / static_cast<double>(num_walks);
  }
  return pi;
}

std::vector<std::pair<NodeId, double>> TopKPpr(const CsrGraph& graph,
                                               NodeId source, double alpha,
                                               int k, double r_max) {
  SGNN_CHECK_GT(k, 0);
  PushResult push = ForwardPush(graph, source, alpha, r_max);
  auto& est = push.estimate;
  std::sort(est.begin(), est.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (static_cast<int>(est.size()) > k) est.resize(static_cast<size_t>(k));
  return est;
}

}  // namespace sgnn::ppr
