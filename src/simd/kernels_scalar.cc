// The portable backend. Every loop replicates the AVX2 path's arithmetic
// structure — same lane partition, same fold order, exactly rounded
// single-precision mul/add (never fused) — so the two backends are byte
// identical (the contract in simd.h). The CMake rule compiles this TU with
// -ffp-contract=off so no compiler, at any -march, can fuse a mul/add pair
// behind our back.

#include "simd/kernels.h"

namespace sgnn::simd::internal {

namespace {

void AxpyScalar(float alpha, const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleScalar(float alpha, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] *= alpha;
}

void MulScalar(const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] *= x[i];
}

void AddScalar(const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += x[i];
}

void AddScalarScalar(float alpha, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += alpha;
}

void ReluScalar(float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    if (y[i] < 0.0f) y[i] = 0.0f;
  }
}

void ReluBackwardScalar(const float* pre, float* g, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    if (pre[i] <= 0.0f) g[i] = 0.0f;
  }
}

float MaxScalar(const float* x, int64_t n) {
  // Eight running lane maxima (lane = i mod 8 over the full blocks), each
  // updated with the vmaxps select `(acc > x) ? acc : x`, folded pairwise
  // ((0,4),(1,5),(2,6),(3,7)) then ((0,2),(1,3)) then (0,1) — the exact
  // shape the AVX2 backend's extract/shuffle fold produces — and the tail
  // folded in ascending order.
  if (n < 8) {
    float m = x[0];
    for (int64_t i = 1; i < n; ++i) m = (m > x[i]) ? m : x[i];
    return m;
  }
  float lane[8];
  for (int i = 0; i < 8; ++i) lane[i] = x[i];
  const int64_t nb = n & ~int64_t{7};
  for (int64_t i = 8; i < nb; i += 8) {
    for (int l = 0; l < 8; ++l) {
      lane[l] = (lane[l] > x[i + l]) ? lane[l] : x[i + l];
    }
  }
  for (int l = 0; l < 4; ++l) {
    lane[l] = (lane[l] > lane[l + 4]) ? lane[l] : lane[l + 4];
  }
  for (int l = 0; l < 2; ++l) {
    lane[l] = (lane[l] > lane[l + 2]) ? lane[l] : lane[l + 2];
  }
  float m = (lane[0] > lane[1]) ? lane[0] : lane[1];
  for (int64_t i = nb; i < n; ++i) m = (m > x[i]) ? m : x[i];
  return m;
}

double DotScalar(const float* a, const float* b, int64_t n) {
  // Four running double sums (lane = i mod 4 over the full blocks). A
  // float*float product is exact in double, so the AVX2 backend's fused
  // vfmadd accumulates the identical values; only the fold order matters,
  // and both backends use (l0 + l1) + (l2 + l3) then the ascending tail.
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  const int64_t nb = n & ~int64_t{3};
  for (int64_t i = 0; i < nb; i += 4) {
    l0 += static_cast<double>(a[i]) * b[i];
    l1 += static_cast<double>(a[i + 1]) * b[i + 1];
    l2 += static_cast<double>(a[i + 2]) * b[i + 2];
    l3 += static_cast<double>(a[i + 3]) * b[i + 3];
  }
  double sum = (l0 + l1) + (l2 + l3);
  for (int64_t i = nb; i < n; ++i) {
    sum += static_cast<double>(a[i]) * b[i];
  }
  return sum;
}

constexpr KernelTable kScalarTable = {
    AxpyScalar,        ScaleScalar, MulScalar, AddScalar, AddScalarScalar,
    ReluScalar,        ReluBackwardScalar,     MaxScalar, DotScalar,
    "scalar",
};

}  // namespace

const KernelTable& ScalarTable() { return kScalarTable; }

}  // namespace sgnn::simd::internal
