#ifndef SGNN_SIMD_KERNELS_H_
#define SGNN_SIMD_KERNELS_H_

#include "simd/simd.h"

namespace sgnn::simd::internal {

/// The portable backend; always available.
const KernelTable& ScalarTable();

/// The AVX2+FMA backend, or nullptr when the build target cannot express
/// it (non-x86). Availability of the *running* CPU is probed separately by
/// `Supported()`; this only says the code exists.
const KernelTable* Avx2Table();

/// True when the running CPU reports AVX2 and FMA.
bool CpuHasAvx2Fma();

}  // namespace sgnn::simd::internal

#endif  // SGNN_SIMD_KERNELS_H_
