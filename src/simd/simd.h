#ifndef SGNN_SIMD_SIMD_H_
#define SGNN_SIMD_SIMD_H_

#include <cstdint>

namespace sgnn::simd {

/// `sgnn::simd` — the vectorized microkernel substrate under the hot
/// kernels (`tensor::Gemm` and friends, the `Propagator`/`OocPropagator`
/// SpMM inner loops, the row/elementwise ops). Two backends implement one
/// kernel table:
///
///   * `avx2`   — 8-lane single-precision AVX2 (FMA only where fusion is
///                provably bit-neutral, see below), selected at runtime
///                when the CPU reports AVX2+FMA;
///   * `scalar` — a portable fallback whose loops replicate the vector
///                path's arithmetic *structure* (same lane partition, same
///                fold order), so both backends produce byte-identical
///                results.
///
/// Bit-identity contract — `scalar(x) == avx2(x)` to the last bit:
///
///  1. Elementwise lanes (axpy, scale, hadamard, add, relu) use exactly
///     rounded single-precision mul/add — never fused — so a vector lane
///     computes the identical operation the scalar loop does. The two
///     backends differ only in how many elements advance per iteration,
///     which is unobservable.
///  2. Reductions fix the lane-fold order: `Dot` partitions index i into
///     lane i mod 4, accumulates each lane in ascending order in double,
///     and folds `(l0 + l1) + (l2 + l3)` before adding the scalar tail in
///     ascending order. The scalar backend runs the same four running sums.
///     Products of two floats are exact in double (24+24 < 53 mantissa
///     bits), so the AVX2 path may fuse (`vfmadd...pd`) without changing a
///     bit — the only FMA the substrate uses.
///  3. `Max` uses the lane semantics of `vmaxps` (`(acc > x) ? acc : x`)
///     in both backends, eight lanes folded pairwise in a fixed order.
///  4. Nothing here consults the thread count: callers shard with
///     `par::ParallelFor` and invoke microkernels per row or range, so the
///     par bit-identity-across-worker-count contract is untouched.
///
/// Backend selection: the `SGNN_SIMD` environment variable is read once at
/// first use (`off`/`0`/`false`/`scalar` force the scalar backend; unset or
/// anything else = auto), and `SetEnabled()` / `core::RunContext::simd`
/// override it at runtime so tests and CI can prove SIMD output == scalar
/// output byte for byte. Intrinsics are confined to `src/simd/` by the
/// `det/simd-intrinsics` lint rule; every other module sees only this
/// dispatch surface.

/// The microkernel table both backends implement. Hot loops hoist
/// `Active()` once per shard and call through the table, so the per-row
/// cost is one indirect call, not a dispatch lookup.
struct KernelTable {
  /// y[i] += alpha * x[i] — the SpMM/GEMM accumulation row.
  void (*axpy)(float alpha, const float* x, float* y, int64_t n);
  /// y[i] *= alpha.
  void (*scale)(float alpha, float* y, int64_t n);
  /// y[i] *= x[i] (hadamard).
  void (*mul)(const float* x, float* y, int64_t n);
  /// y[i] += x[i] (bias rows, partial folds).
  void (*add)(const float* x, float* y, int64_t n);
  /// y[i] += alpha (log-softmax shift; x - c is computed as x + (-c),
  /// which is the identical IEEE operation).
  void (*add_scalar)(float alpha, float* y, int64_t n);
  /// y[i] = max(y[i], 0).
  void (*relu)(float* y, int64_t n);
  /// g[i] = pre[i] > 0 ? g[i] : 0 — the ReLU backward mask.
  void (*relu_backward)(const float* pre, float* g, int64_t n);
  /// Maximum of x[0..n); requires n >= 1. Lane-structured (contract #3).
  float (*max)(const float* x, int64_t n);
  /// Lane-folded double dot product (contract #2).
  double (*dot)(const float* a, const float* b, int64_t n);

  /// Backend name for logs/benchmarks: "avx2" or "scalar".
  const char* name;
};

/// True when the running CPU supports the AVX2+FMA backend.
bool Supported();

/// True when the AVX2 backend is currently dispatched.
bool Enabled();

/// Forces the backend: `on && Supported()` dispatches AVX2, otherwise the
/// scalar fallback. Returns the previous `Enabled()` so scopes can restore
/// it. Safe to call between kernels; not during a running parallel section.
bool SetEnabled(bool on);

/// Parses an `SGNN_SIMD`-style value: false for `off`/`0`/`false`/
/// `scalar` (case-insensitive), `fallback` for null/empty, true otherwise.
/// Exposed for tests; first use of `Active()` applies it to the real
/// environment.
bool SimdFromEnv(const char* value, bool fallback);

/// The active kernel table. First call reads `SGNN_SIMD` and probes the
/// CPU; thereafter selection only changes via `SetEnabled`.
const KernelTable& Active();

}  // namespace sgnn::simd

#endif  // SGNN_SIMD_SIMD_H_
