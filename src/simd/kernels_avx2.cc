// The AVX2 (FMA) backend. This is the only translation unit in the tree
// allowed to touch <immintrin.h> (lint rule det/simd-intrinsics); it is
// compiled with -mavx2 -mfma -ffp-contract=off and reached only through
// the runtime dispatch in simd.cc, so a host without AVX2 never executes a
// vector instruction.
//
// Bit-identity with the scalar backend (the contract in simd.h) rests on
// three facts encoded below:
//   * elementwise lanes use vmulps/vaddps — exactly rounded, never fused —
//     so each lane is the identical IEEE operation the scalar loop does;
//   * the double dot uses vfmaddpd only because float*float is exact in
//     double, making fusion bit-neutral; the lane partition (i mod 4) and
//     fold order (l0 + l1) + (l2 + l3) match the scalar backend;
//   * max uses the vmaxps select `(acc > x) ? acc : x` and a fixed
//     pairwise fold, and the ReLU pair uses ordered-quiet compares so NaN
//     and signed-zero handling matches the scalar branches.

#include "simd/kernels.h"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace sgnn::simd::internal {

bool CpuHasAvx2Fma() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

#if defined(__AVX2__) && defined(__FMA__)

namespace {

void AxpyAvx2(float alpha, const float* x, float* y, int64_t n) {
  // 4x unrolled: axpy is the GEMM inner kernel, so shaving loop overhead
  // here is what moves the dense-GEMM roofline. Every lane is independent
  // (one unfused mul + add per element), so the unroll is bit-neutral.
  const __m256 va = _mm256_set1_ps(alpha);
  int64_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256 p0 = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
    const __m256 p1 = _mm256_mul_ps(va, _mm256_loadu_ps(x + i + 8));
    const __m256 p2 = _mm256_mul_ps(va, _mm256_loadu_ps(x + i + 16));
    const __m256 p3 = _mm256_mul_ps(va, _mm256_loadu_ps(x + i + 24));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), p0));
    _mm256_storeu_ps(y + i + 8,
                     _mm256_add_ps(_mm256_loadu_ps(y + i + 8), p1));
    _mm256_storeu_ps(y + i + 16,
                     _mm256_add_ps(_mm256_loadu_ps(y + i + 16), p2));
    _mm256_storeu_ps(y + i + 24,
                     _mm256_add_ps(_mm256_loadu_ps(y + i + 24), p3));
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 prod = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleAvx2(float alpha, float* y, int64_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(_mm256_loadu_ps(y + i), va));
  }
  for (; i < n; ++i) y[i] *= alpha;
}

void MulAvx2(const float* x, float* y, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_mul_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] *= x[i];
}

void AddAvx2(const float* x, float* y, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void AddScalarAvx2(float alpha, float* y, int64_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), va));
  }
  for (; i < n; ++i) y[i] += alpha;
}

void ReluAvx2(float* y, int64_t n) {
  // blendv on `v < 0`, not max(v, 0): max would rewrite -0.0f to +0.0f
  // where the scalar branch keeps it, and the ordered-quiet compare passes
  // NaN through exactly like `if (v < 0)` does.
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(y + i);
    const __m256 neg = _mm256_cmp_ps(v, zero, _CMP_LT_OQ);
    _mm256_storeu_ps(y + i, _mm256_blendv_ps(v, zero, neg));
  }
  for (; i < n; ++i) {
    if (y[i] < 0.0f) y[i] = 0.0f;
  }
}

void ReluBackwardAvx2(const float* pre, float* g, int64_t n) {
  // Zero where pre <= 0 (ordered-quiet: NaN pre keeps the gradient, the
  // same verdict as the scalar `if (pre[i] <= 0.0f)` branch).
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 dead = _mm256_cmp_ps(_mm256_loadu_ps(pre + i), zero,
                                      _CMP_LE_OQ);
    _mm256_storeu_ps(g + i, _mm256_andnot_ps(dead, _mm256_loadu_ps(g + i)));
  }
  for (; i < n; ++i) {
    if (pre[i] <= 0.0f) g[i] = 0.0f;
  }
}

float MaxAvx2(const float* x, int64_t n) {
  if (n < 8) {
    float m = x[0];
    for (int64_t i = 1; i < n; ++i) m = (m > x[i]) ? m : x[i];
    return m;
  }
  __m256 acc = _mm256_loadu_ps(x);
  const int64_t nb = n & ~int64_t{7};
  for (int64_t i = 8; i < nb; i += 8) {
    acc = _mm256_max_ps(acc, _mm256_loadu_ps(x + i));
  }
  // Pairwise fold (l, l+4), (l, l+2), (l, l+1) — mirrored lane for lane by
  // the scalar backend.
  __m128 m4 = _mm_max_ps(_mm256_castps256_ps128(acc),
                         _mm256_extractf128_ps(acc, 1));
  __m128 m2 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
  __m128 m1 = _mm_max_ss(m2, _mm_shuffle_ps(m2, m2, 0x1));
  float m = _mm_cvtss_f32(m1);
  for (int64_t i = nb; i < n; ++i) m = (m > x[i]) ? m : x[i];
  return m;
}

double DotAvx2(const float* a, const float* b, int64_t n) {
  __m256d acc = _mm256_setzero_pd();
  const int64_t nb = n & ~int64_t{3};
  for (int64_t i = 0; i < nb; i += 4) {
    acc = _mm256_fmadd_pd(_mm256_cvtps_pd(_mm_loadu_ps(a + i)),
                          _mm256_cvtps_pd(_mm_loadu_ps(b + i)), acc);
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  double sum = (lane[0] + lane[1]) + (lane[2] + lane[3]);
  for (int64_t i = nb; i < n; ++i) {
    sum += static_cast<double>(a[i]) * b[i];
  }
  return sum;
}

constexpr KernelTable kAvx2Table = {
    AxpyAvx2,  ScaleAvx2,        MulAvx2, AddAvx2, AddScalarAvx2,
    ReluAvx2,  ReluBackwardAvx2, MaxAvx2, DotAvx2,
    "avx2",
};

}  // namespace

const KernelTable* Avx2Table() { return &kAvx2Table; }

#else  // !(__AVX2__ && __FMA__): non-x86 build or vector ISA unavailable.

const KernelTable* Avx2Table() { return nullptr; }

#endif

}  // namespace sgnn::simd::internal
