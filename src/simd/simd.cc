#include "simd/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "simd/kernels.h"

namespace sgnn::simd {

namespace {

/// Process-wide dispatch state: the active table pointer, swapped whole so
/// a reader never sees a half-updated backend. First use resolves the
/// environment and the CPU probe exactly once.
struct SimdState {
  bool supported = false;
  std::atomic<const KernelTable*> active{nullptr};

  SimdState() {
    supported = internal::Avx2Table() != nullptr && internal::CpuHasAvx2Fma();
    const bool want =
        SimdFromEnv(std::getenv("SGNN_SIMD"), /*fallback=*/true);
    active.store((want && supported) ? internal::Avx2Table()
                                     : &internal::ScalarTable(),
                 std::memory_order_release);
  }
};

SimdState& State() {
  static SimdState state;
  return state;
}

}  // namespace

bool SimdFromEnv(const char* value, bool fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  // Case-insensitive match against the disable spellings.
  char lower[8] = {0};
  size_t n = std::strlen(value);
  if (n >= sizeof(lower)) return true;
  for (size_t i = 0; i < n; ++i) {
    lower[i] = static_cast<char>(
        (value[i] >= 'A' && value[i] <= 'Z') ? value[i] - 'A' + 'a'
                                             : value[i]);
  }
  return std::strcmp(lower, "off") != 0 && std::strcmp(lower, "0") != 0 &&
         std::strcmp(lower, "false") != 0 && std::strcmp(lower, "scalar") != 0;
}

bool Supported() { return State().supported; }

bool Enabled() {
  SimdState& state = State();
  return state.active.load(std::memory_order_acquire) !=
         &internal::ScalarTable();
}

bool SetEnabled(bool on) {
  SimdState& state = State();
  const KernelTable* next = (on && state.supported)
                                ? internal::Avx2Table()
                                : &internal::ScalarTable();
  return state.active.exchange(next, std::memory_order_acq_rel) !=
         &internal::ScalarTable();
}

const KernelTable& Active() {
  return *State().active.load(std::memory_order_acquire);
}

}  // namespace sgnn::simd
