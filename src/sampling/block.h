#ifndef SGNN_SAMPLING_BLOCK_H_
#define SGNN_SAMPLING_BLOCK_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace sgnn::sampling {

/// One sampled bipartite layer (a "message-flow block"): aggregation flows
/// from `src` representations into `dst` representations.
///
/// `dst` is always a prefix of `src` (every destination also appears as a
/// source), so self/skip connections index the same buffer. Adjacency is
/// CSR over destinations; `src_local[i]` indexes into `src`, and
/// `weights[i]` is the aggregation weight (already importance-corrected by
/// the sampler, so a plain weighted sum is the unbiased mean estimate).
struct LayerSample {
  std::vector<graph::NodeId> dst;        ///< Global ids of outputs.
  std::vector<graph::NodeId> src;        ///< Global ids of inputs.
  std::vector<graph::EdgeIndex> offsets; ///< Size dst.size() + 1.
  std::vector<uint32_t> src_local;       ///< Per edge: index into src.
  std::vector<float> weights;            ///< Per edge: aggregation weight.

  int64_t num_edges() const { return static_cast<int64_t>(src_local.size()); }
};

/// A full mini-batch: `layers[0]` is the innermost block (touching raw
/// features) and `layers.back().dst` are the seed nodes the loss is taken
/// on. `layers[l].src == layers[l-1].dst` as id lists.
struct MiniBatch {
  std::vector<LayerSample> layers;

  const std::vector<graph::NodeId>& seeds() const {
    return layers.back().dst;
  }
  const std::vector<graph::NodeId>& input_nodes() const {
    return layers.front().src;
  }
  /// Total sampled edges across layers: the per-batch compute cost.
  int64_t TotalEdges() const {
    int64_t total = 0;
    for (const auto& layer : layers) total += layer.num_edges();
    return total;
  }
};

}  // namespace sgnn::sampling

#endif  // SGNN_SAMPLING_BLOCK_H_
