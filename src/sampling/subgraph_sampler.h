#ifndef SGNN_SAMPLING_SUBGRAPH_SAMPLER_H_
#define SGNN_SAMPLING_SUBGRAPH_SAMPLER_H_

#include <span>
#include <vector>

#include "common/rng.h"
#include "graph/csr_graph.h"

namespace sgnn::sampling {

/// Subgraph-level sampling (GraphSAINT family, §3.3.2): draw a node set,
/// train a full GNN on its induced subgraph. The returned `nodes` maps
/// local ids back to global ids.
struct SampledSubgraph {
  std::vector<graph::NodeId> nodes;  ///< Sorted global ids; local id = index.
  graph::CsrGraph subgraph;          ///< Induced subgraph over `nodes`.
};

/// Uniform-node sampler: `budget` distinct nodes uniformly at random.
SampledSubgraph SampleSubgraphNodes(const graph::CsrGraph& graph,
                                    int64_t budget, common::Rng* rng);

/// Importance node sampler (GraphSAINT-N proper): `budget` distinct nodes
/// drawn without replacement with probability proportional to `weights`
/// (see graph::ImportanceWeights for degree/core/triangle/PageRank
/// choices). Weights must be non-negative with a positive sum.
SampledSubgraph SampleSubgraphImportance(const graph::CsrGraph& graph,
                                         int64_t budget,
                                         std::span<const double> weights,
                                         common::Rng* rng);

/// Edge sampler: draws `num_edges` edges uniformly and keeps all their
/// endpoints (GraphSAINT-E); biased toward high-degree regions.
SampledSubgraph SampleSubgraphEdges(const graph::CsrGraph& graph,
                                    int64_t num_edges, common::Rng* rng);

/// Random-walk sampler (GraphSAINT-RW): `num_roots` uniform roots, one
/// walk of `walk_length` steps each; node set is the union of visits.
SampledSubgraph SampleSubgraphWalks(const graph::CsrGraph& graph,
                                    int num_roots, int walk_length,
                                    common::Rng* rng);

/// Per-node inclusion frequencies estimated from `trials` repeated
/// subgraph draws; GraphSAINT uses these to normalise the loss so the
/// mini-batch estimator stays unbiased.
std::vector<double> EstimateInclusionProbabilities(
    const graph::CsrGraph& graph, int64_t budget, int trials,
    common::Rng* rng);

}  // namespace sgnn::sampling

#endif  // SGNN_SAMPLING_SUBGRAPH_SAMPLER_H_
