#ifndef SGNN_SAMPLING_ASSEMBLY_H_
#define SGNN_SAMPLING_ASSEMBLY_H_

#include <span>
#include <utility>
#include <vector>

#include "graph/types.h"
#include "sampling/block.h"

namespace sgnn::sampling {

/// Assembles a `LayerSample` from per-destination sampled
/// (neighbour, weight) lists: `src` = dst (prefix, same order) followed by
/// newly seen neighbours in first-appearance order, `src_local`/`weights`
/// flattened in destination order. Pure assembly — no draws — shared by
/// the in-memory samplers and the out-of-core sampler in `sgnn::storage`,
/// so both produce byte-identical blocks from identical edge lists.
LayerSample AssembleLayer(
    std::span<const graph::NodeId> dst,
    const std::vector<std::vector<std::pair<graph::NodeId, float>>>& edges);

}  // namespace sgnn::sampling

#endif  // SGNN_SAMPLING_ASSEMBLY_H_
