#ifndef SGNN_SAMPLING_VARIANCE_H_
#define SGNN_SAMPLING_VARIANCE_H_

#include <span>
#include <vector>

#include "graph/csr_graph.h"
#include "sampling/block.h"
#include "tensor/matrix.h"

namespace sgnn::sampling {

/// Estimator-quality utilities for §3.3.2 "Graph Variance": samplers are
/// compared by the error of their one-layer neighbourhood-mean estimate
/// against the exact aggregation.

/// Exact neighbourhood mean of `features` for node u (zero if isolated).
std::vector<double> ExactNeighborhoodMean(const graph::CsrGraph& graph,
                                          const tensor::Matrix& features,
                                          graph::NodeId u);

/// Aggregates `features` through a single LayerSample: for each dst i,
/// out[i] = sum_edges w * features[src_global]. This mirrors what a GNN
/// layer computes and is what the unbiasedness claims are about.
tensor::Matrix AggregateThroughLayer(const LayerSample& layer,
                                     const tensor::Matrix& features);

/// Kind of one-layer sampler to analyse.
enum class SamplerKind { kNodeWise, kLabor, kLayerWise };

struct VarianceReport {
  double mean_squared_error = 0.0;  ///< Avg over seeds, dims and trials.
  double mean_bias = 0.0;           ///< Avg signed deviation (≈0 if unbiased).
  double avg_distinct_sources = 0.0;  ///< Distinct sampled vertices/trial.
};

/// Monte-Carlo estimate of one-layer aggregation error for a sampler at
/// the given budget (fanout for node-wise/LABOR, layer width for
/// layer-wise). Deterministic given `seed`.
VarianceReport MeasureSamplerVariance(const graph::CsrGraph& graph,
                                      const tensor::Matrix& features,
                                      std::span<const graph::NodeId> seeds,
                                      SamplerKind kind, int budget, int trials,
                                      uint64_t seed);

}  // namespace sgnn::sampling

#endif  // SGNN_SAMPLING_VARIANCE_H_
