#ifndef SGNN_SAMPLING_HISTORICAL_CACHE_H_
#define SGNN_SAMPLING_HISTORICAL_CACHE_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "graph/types.h"
#include "tensor/matrix.h"

namespace sgnn::sampling {

/// Historical embedding cache (HDSGNN/GAS-style, §3.3.2 "Graph Variance"):
/// stores the last computed embedding of every node together with the step
/// it was written at, so samplers can substitute slightly stale cached
/// rows for out-of-batch neighbours instead of recursively expanding them.
class HistoricalEmbeddingCache {
 public:
  /// `dim` is the embedding width; entries start invalid.
  HistoricalEmbeddingCache(graph::NodeId num_nodes, int64_t dim);

  int64_t dim() const { return store_.cols(); }
  graph::NodeId num_nodes() const {
    return static_cast<graph::NodeId>(written_at_.size());
  }

  bool Has(graph::NodeId u) const { return written_at_[u] >= 0; }

  /// Staleness in steps of u's entry; -1 when absent.
  int64_t Staleness(graph::NodeId u, int64_t current_step) const {
    return Has(u) ? current_step - written_at_[u] : -1;
  }

  /// Writes u's embedding at `step`.
  void Put(graph::NodeId u, std::span<const float> embedding, int64_t step);

  /// Cached row of u; requires Has(u).
  std::span<const float> Get(graph::NodeId u) const {
    SGNN_CHECK(Has(u));
    return store_.Row(static_cast<int64_t>(u));
  }

  /// Fraction of requested nodes currently cached with staleness at most
  /// `max_staleness`: the cache's usefulness measure for a batch. The
  /// bound is *inclusive*: an entry whose staleness equals `max_staleness`
  /// exactly still counts as a hit (consumers test
  /// `Staleness(u) <= max_staleness`), so `max_staleness = 0` admits only
  /// entries written at the current step.
  double HitRate(std::span<const graph::NodeId> nodes, int64_t current_step,
                 int64_t max_staleness) const;

  /// Drops u's entry (e.g. after the node's features or neighbourhood
  /// changed, or degraded-mode bookkeeping decided the stale row must not
  /// be served again). `Has(u)` is false afterwards; the row data is
  /// zeroed so a use-after-invalidate reads zeros, not ghosts.
  void Invalidate(graph::NodeId u);

  /// Drops every entry.
  void Clear();

 private:
  tensor::Matrix store_;
  std::vector<int64_t> written_at_;  ///< -1 when invalid.
};

}  // namespace sgnn::sampling

#endif  // SGNN_SAMPLING_HISTORICAL_CACHE_H_
