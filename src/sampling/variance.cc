#include "sampling/variance.h"

#include <unordered_set>

#include "common/check.h"
#include "common/rng.h"
#include "sampling/neighbor_sampler.h"

namespace sgnn::sampling {

using graph::CsrGraph;
using graph::NodeId;
using tensor::Matrix;

std::vector<double> ExactNeighborhoodMean(const CsrGraph& graph,
                                          const Matrix& features, NodeId u) {
  std::vector<double> mean(static_cast<size_t>(features.cols()), 0.0);
  auto nbrs = graph.Neighbors(u);
  if (nbrs.empty()) return mean;
  for (NodeId v : nbrs) {
    auto row = features.Row(static_cast<int64_t>(v));
    for (int64_t c = 0; c < features.cols(); ++c) mean[static_cast<size_t>(c)] += row[c];
  }
  for (double& m : mean) m /= static_cast<double>(nbrs.size());
  return mean;
}

Matrix AggregateThroughLayer(const LayerSample& layer, const Matrix& features) {
  const int64_t cols = features.cols();
  Matrix out(static_cast<int64_t>(layer.dst.size()), cols);
  for (size_t i = 0; i < layer.dst.size(); ++i) {
    float* orow = out.data() + static_cast<int64_t>(i) * cols;
    for (graph::EdgeIndex e = layer.offsets[i]; e < layer.offsets[i + 1]; ++e) {
      const NodeId global = layer.src[layer.src_local[static_cast<size_t>(e)]];
      const float w = layer.weights[static_cast<size_t>(e)];
      const float* frow = features.data() + static_cast<int64_t>(global) * cols;
      for (int64_t c = 0; c < cols; ++c) orow[c] += w * frow[c];
    }
  }
  return out;
}

VarianceReport MeasureSamplerVariance(const CsrGraph& graph,
                                      const Matrix& features,
                                      std::span<const NodeId> seeds,
                                      SamplerKind kind, int budget, int trials,
                                      uint64_t seed) {
  SGNN_CHECK_GE(trials, 1);
  SGNN_CHECK(!seeds.empty());
  common::Rng rng(seed);

  // Exact targets per seed.
  std::vector<std::vector<double>> exact;
  exact.reserve(seeds.size());
  for (NodeId s : seeds) {
    exact.push_back(ExactNeighborhoodMean(graph, features, s));
  }

  VarianceReport report;
  double se_acc = 0.0, bias_acc = 0.0, distinct_acc = 0.0;
  int64_t count = 0;
  const std::vector<int> budgets = {budget};
  for (int t = 0; t < trials; ++t) {
    MiniBatch batch;
    switch (kind) {
      case SamplerKind::kNodeWise:
        batch = SampleNodeWise(graph, seeds, budgets, &rng);
        break;
      case SamplerKind::kLabor:
        batch = SampleLabor(graph, seeds, budgets, &rng);
        break;
      case SamplerKind::kLayerWise:
        batch = SampleLayerWise(graph, seeds, budgets, &rng);
        break;
    }
    const LayerSample& layer = batch.layers.front();
    Matrix agg = AggregateThroughLayer(layer, features);
    for (size_t i = 0; i < seeds.size(); ++i) {
      for (int64_t c = 0; c < features.cols(); ++c) {
        const double err = static_cast<double>(agg.at(static_cast<int64_t>(i), c)) -
                           exact[i][static_cast<size_t>(c)];
        se_acc += err * err;
        bias_acc += err;
        ++count;
      }
    }
    // Distinct sampled sources beyond the destinations themselves.
    std::unordered_set<NodeId> distinct(layer.src.begin() +
                                            static_cast<int64_t>(layer.dst.size()),
                                        layer.src.end());
    distinct_acc += static_cast<double>(distinct.size());
  }
  report.mean_squared_error = se_acc / static_cast<double>(count);
  report.mean_bias = bias_acc / static_cast<double>(count);
  report.avg_distinct_sources = distinct_acc / trials;
  return report;
}

}  // namespace sgnn::sampling
