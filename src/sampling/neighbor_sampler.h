#ifndef SGNN_SAMPLING_NEIGHBOR_SAMPLER_H_
#define SGNN_SAMPLING_NEIGHBOR_SAMPLER_H_

#include <span>
#include <vector>

#include "common/rng.h"
#include "graph/csr_graph.h"
#include "sampling/block.h"

namespace sgnn::sampling {

/// The samplers below fan out over the `sgnn::par` worker pool. Each
/// destination draws from a keyed stream derived from (layer, node) via
/// `common::MixSeed`, never from the shared `rng` stream directly, so a
/// batch is bit-identical for any `SGNN_THREADS`; `rng` advances once per
/// layer (plus the global draws of layer-wise sampling).

/// Node-wise (GraphSAGE-style) neighbour sampling: every destination node
/// independently draws up to `fanout` neighbours without replacement.
/// The classic node-level strategy of §3.3.2, and the one whose sampled
/// vertex count explodes with depth (E2/E5).
///
/// `fanouts[0]` applies to the outermost layer (adjacent to the seeds);
/// `fanouts.back()` to the innermost. Aggregation weights are 1/k for a
/// node with k sampled neighbours (unbiased neighbourhood-mean estimate).
MiniBatch SampleNodeWise(const graph::CsrGraph& graph,
                         std::span<const graph::NodeId> seeds,
                         std::span<const int> fanouts, common::Rng* rng);

/// LABOR-0 layer-neighbour sampling (Balin & Çatalyürek): matches the
/// per-edge inclusion probability min(1, fanout/d(s)) of node-wise
/// sampling, but decides inclusion with a *per-source-vertex* uniform
/// variate shared by all destinations in the layer, so overlapping
/// neighbourhoods sample the same vertices and the number of distinct
/// sampled vertices drops (E5). Weights are importance-corrected:
/// w = 1 / (d(s) * p_inclusion).
MiniBatch SampleLabor(const graph::CsrGraph& graph,
                      std::span<const graph::NodeId> seeds,
                      std::span<const int> fanouts, common::Rng* rng);

/// Layer-wise importance sampling (FastGCN-style): each layer draws
/// `layer_size` nodes globally with probability proportional to degree,
/// independent of destinations; edges to sampled nodes are reweighted by
/// 1/(layer_size * q(v)) for unbiasedness. Bounds the per-layer width.
MiniBatch SampleLayerWise(const graph::CsrGraph& graph,
                          std::span<const graph::NodeId> seeds,
                          std::span<const int> layer_sizes, common::Rng* rng);

/// Exact (no sampling) blocks: full neighbourhoods; the baseline whose
/// receptive field realises the neighbourhood explosion.
MiniBatch FullNeighborhood(const graph::CsrGraph& graph,
                           std::span<const graph::NodeId> seeds,
                           int num_layers);

}  // namespace sgnn::sampling

#endif  // SGNN_SAMPLING_NEIGHBOR_SAMPLER_H_
