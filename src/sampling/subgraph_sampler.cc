#include "sampling/subgraph_sampler.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace sgnn::sampling {

using graph::CsrGraph;
using graph::NodeId;

namespace {

SampledSubgraph Materialize(const CsrGraph& graph,
                            std::unordered_set<NodeId> node_set) {
  SampledSubgraph out;
  out.nodes.assign(node_set.begin(), node_set.end());
  std::sort(out.nodes.begin(), out.nodes.end());
  out.subgraph = graph.InducedSubgraph(out.nodes);
  return out;
}

}  // namespace

SampledSubgraph SampleSubgraphNodes(const CsrGraph& graph, int64_t budget,
                                    common::Rng* rng) {
  SGNN_CHECK(rng != nullptr);
  SGNN_CHECK_GE(budget, 1);
  budget = std::min<int64_t>(budget, graph.num_nodes());
  std::unordered_set<NodeId> nodes;
  for (uint64_t idx : rng->SampleWithoutReplacement(
           graph.num_nodes(), static_cast<uint64_t>(budget))) {
    nodes.insert(static_cast<NodeId>(idx));
  }
  return Materialize(graph, std::move(nodes));
}

SampledSubgraph SampleSubgraphImportance(const CsrGraph& graph,
                                         int64_t budget,
                                         std::span<const double> weights,
                                         common::Rng* rng) {
  SGNN_CHECK(rng != nullptr);
  SGNN_CHECK_GE(budget, 1);
  SGNN_CHECK_EQ(weights.size(), static_cast<size_t>(graph.num_nodes()));
  budget = std::min<int64_t>(budget, graph.num_nodes());
  // Cumulative weights for inverse-CDF draws; rejection handles repeats
  // (fine while budget << n; falls back to including everything positive
  // if the distribution is too concentrated to fill the budget).
  std::vector<double> cdf(weights.size());
  double acc = 0.0;
  int64_t positive = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    SGNN_CHECK_GE(weights[i], 0.0);
    if (weights[i] > 0.0) ++positive;
    acc += weights[i];
    cdf[i] = acc;
  }
  SGNN_CHECK_GT(acc, 0.0);
  budget = std::min<int64_t>(budget, positive);
  std::unordered_set<NodeId> nodes;
  int64_t attempts = 0;
  const int64_t max_attempts = 50 * budget + 1000;
  while (static_cast<int64_t>(nodes.size()) < budget &&
         attempts++ < max_attempts) {
    const double r = rng->Uniform() * acc;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
    nodes.insert(static_cast<NodeId>(it - cdf.begin()));
  }
  return Materialize(graph, std::move(nodes));
}

SampledSubgraph SampleSubgraphEdges(const CsrGraph& graph, int64_t num_edges,
                                    common::Rng* rng) {
  SGNN_CHECK(rng != nullptr);
  SGNN_CHECK_GE(num_edges, 1);
  SGNN_CHECK_GT(graph.num_edges(), 0);
  std::unordered_set<NodeId> nodes;
  // Uniform edge draws via a uniform position in the flat neighbour array.
  for (int64_t e = 0; e < num_edges; ++e) {
    const uint64_t pos =
        rng->UniformInt(static_cast<uint64_t>(graph.num_edges()));
    // Find the source whose adjacency block contains `pos`.
    const auto& offsets = graph.offsets();
    const auto it = std::upper_bound(offsets.begin(), offsets.end(),
                                     static_cast<graph::EdgeIndex>(pos));
    const NodeId u = static_cast<NodeId>(it - offsets.begin() - 1);
    nodes.insert(u);
    nodes.insert(graph.neighbors()[pos]);
  }
  return Materialize(graph, std::move(nodes));
}

SampledSubgraph SampleSubgraphWalks(const CsrGraph& graph, int num_roots,
                                    int walk_length, common::Rng* rng) {
  SGNN_CHECK(rng != nullptr);
  SGNN_CHECK_GE(num_roots, 1);
  SGNN_CHECK_GE(walk_length, 0);
  std::unordered_set<NodeId> nodes;
  for (int r = 0; r < num_roots; ++r) {
    NodeId cur = static_cast<NodeId>(rng->UniformInt(graph.num_nodes()));
    nodes.insert(cur);
    for (int step = 0; step < walk_length; ++step) {
      auto nbrs = graph.Neighbors(cur);
      if (nbrs.empty()) break;
      cur = nbrs[rng->UniformInt(nbrs.size())];
      nodes.insert(cur);
    }
  }
  return Materialize(graph, std::move(nodes));
}

std::vector<double> EstimateInclusionProbabilities(const CsrGraph& graph,
                                                   int64_t budget, int trials,
                                                   common::Rng* rng) {
  SGNN_CHECK(rng != nullptr);
  SGNN_CHECK_GE(trials, 1);
  std::vector<int64_t> hits(graph.num_nodes(), 0);
  for (int t = 0; t < trials; ++t) {
    SampledSubgraph s = SampleSubgraphNodes(graph, budget, rng);
    for (NodeId u : s.nodes) hits[u]++;
  }
  std::vector<double> probs(graph.num_nodes());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    probs[u] = static_cast<double>(hits[u]) / trials;
  }
  return probs;
}

}  // namespace sgnn::sampling
