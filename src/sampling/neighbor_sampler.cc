#include "sampling/neighbor_sampler.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"
#include "par/par.h"
#include "sampling/assembly.h"

namespace sgnn::sampling {

using graph::CsrGraph;
using graph::NodeId;

LayerSample AssembleLayer(
    std::span<const NodeId> dst,
    const std::vector<std::vector<std::pair<NodeId, float>>>& edges) {
  SGNN_CHECK_EQ(dst.size(), edges.size());
  LayerSample layer;
  layer.dst.assign(dst.begin(), dst.end());
  layer.src = layer.dst;
  std::unordered_map<NodeId, uint32_t> local;
  local.reserve(dst.size() * 2);
  for (size_t i = 0; i < dst.size(); ++i) {
    local.emplace(dst[i], static_cast<uint32_t>(i));
  }
  layer.offsets.push_back(0);
  for (size_t i = 0; i < dst.size(); ++i) {
    for (const auto& [v, w] : edges[i]) {
      auto [it, inserted] =
          local.emplace(v, static_cast<uint32_t>(layer.src.size()));
      if (inserted) layer.src.push_back(v);
      layer.src_local.push_back(it->second);
      layer.weights.push_back(w);
    }
    layer.offsets.push_back(static_cast<graph::EdgeIndex>(layer.src_local.size()));
  }
  return layer;
}

namespace {

/// Destinations per shard below which a layer's fan-out stays one shard.
constexpr int64_t kDstGrain = 256;

std::vector<par::Range> DstShards(size_t num_dst) {
  const int64_t n = static_cast<int64_t>(num_dst);
  return par::SplitUniform(n, par::ShardsFor(n, kDstGrain));
}

/// Runs `sample_one_layer` from the seeds inward and packages the blocks
/// innermost-first.
template <typename SampleLayerFn>
MiniBatch BuildBatch(std::span<const NodeId> seeds, int num_layers,
                     SampleLayerFn&& sample_one_layer) {
  SGNN_CHECK_GE(num_layers, 1);
  SGNN_CHECK(!seeds.empty());
  std::vector<LayerSample> outer_first;
  std::vector<NodeId> frontier(seeds.begin(), seeds.end());
  for (int l = 0; l < num_layers; ++l) {
    LayerSample layer = sample_one_layer(l, frontier);
    frontier = layer.src;
    outer_first.push_back(std::move(layer));
  }
  MiniBatch batch;
  batch.layers.assign(std::make_move_iterator(outer_first.rbegin()),
                      std::make_move_iterator(outer_first.rend()));
  return batch;
}

}  // namespace

MiniBatch SampleNodeWise(const CsrGraph& graph,
                         std::span<const NodeId> seeds,
                         std::span<const int> fanouts, common::Rng* rng) {
  SGNN_CHECK(rng != nullptr);
  return BuildBatch(
      seeds, static_cast<int>(fanouts.size()),
      [&graph, &fanouts, rng](int l, const std::vector<NodeId>& dst) {
        const int fanout = fanouts[static_cast<size_t>(l)];
        SGNN_CHECK_GE(fanout, 1);
        // One caller-side engine draw seeds the layer; each destination
        // then owns the keyed stream (layer_base, node). Which worker runs
        // a destination never affects its draws, so the batch is identical
        // for any SGNN_THREADS.
        const uint64_t layer_base = rng->engine()();
        std::vector<std::vector<std::pair<NodeId, float>>> edges(dst.size());
        par::ParallelFor(
            "sample.node_wise", DstShards(dst.size()),
            [&](int, par::Range range) {
              for (int64_t i = range.begin; i < range.end; ++i) {
                auto nbrs = graph.Neighbors(dst[static_cast<size_t>(i)]);
                auto& out = edges[static_cast<size_t>(i)];
                if (nbrs.empty()) continue;
                if (static_cast<int>(nbrs.size()) <= fanout) {
                  const float w = 1.0f / static_cast<float>(nbrs.size());
                  for (NodeId v : nbrs) out.emplace_back(v, w);
                } else {
                  common::Rng local(common::MixSeed(
                      layer_base, dst[static_cast<size_t>(i)]));
                  auto picks = local.SampleWithoutReplacement(
                      nbrs.size(), static_cast<uint64_t>(fanout));
                  const float w = 1.0f / static_cast<float>(fanout);
                  for (uint64_t p : picks) out.emplace_back(nbrs[p], w);
                }
              }
            });
        return AssembleLayer(dst, edges);
      });
}

MiniBatch SampleLabor(const CsrGraph& graph, std::span<const NodeId> seeds,
                      std::span<const int> fanouts, common::Rng* rng) {
  SGNN_CHECK(rng != nullptr);
  return BuildBatch(
      seeds, static_cast<int>(fanouts.size()),
      [&graph, &fanouts, rng](int l, const std::vector<NodeId>& dst) {
        const int fanout = fanouts[static_cast<size_t>(l)];
        SGNN_CHECK_GE(fanout, 1);
        // One uniform variate per candidate source vertex, shared by every
        // destination in this layer: the LABOR trick. The variate is a pure
        // hash of (layer_base, vertex) — no memo table, so destinations can
        // fan out in parallel and still agree on every shared vertex.
        const uint64_t layer_base = rng->engine()();
        std::vector<std::vector<std::pair<NodeId, float>>> edges(dst.size());
        par::ParallelFor(
            "sample.labor", DstShards(dst.size()), [&](int, par::Range range) {
              for (int64_t i = range.begin; i < range.end; ++i) {
                auto nbrs = graph.Neighbors(dst[static_cast<size_t>(i)]);
                auto& out = edges[static_cast<size_t>(i)];
                if (nbrs.empty()) continue;
                const double degree = static_cast<double>(nbrs.size());
                const double p =
                    std::min(1.0, static_cast<double>(fanout) / degree);
                const float w = static_cast<float>(1.0 / (degree * p));
                for (NodeId v : nbrs) {
                  if (common::KeyedUniform(layer_base, v) < p) {
                    out.emplace_back(v, w);
                  }
                }
              }
            });
        return AssembleLayer(dst, edges);
      });
}

MiniBatch SampleLayerWise(const CsrGraph& graph,
                          std::span<const NodeId> seeds,
                          std::span<const int> layer_sizes, common::Rng* rng) {
  SGNN_CHECK(rng != nullptr);
  // Degree-proportional proposal over all nodes (FastGCN's q).
  const double total_degree = static_cast<double>(graph.num_edges());
  SGNN_CHECK_GT(total_degree, 0.0);
  // Cumulative degree array for O(log n) inverse-CDF sampling.
  std::vector<double> cdf(graph.num_nodes());
  double acc = 0.0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    acc += static_cast<double>(graph.OutDegree(u));
    cdf[u] = acc;
  }
  return BuildBatch(
      seeds, static_cast<int>(layer_sizes.size()),
      [&graph, &layer_sizes, rng, &cdf,
       total_degree](int l, const std::vector<NodeId>& dst) {
        const int m = layer_sizes[static_cast<size_t>(l)];
        SGNN_CHECK_GE(m, 1);
        // Sample m nodes with replacement from q(v) = deg(v) / 2|E|.
        std::unordered_map<NodeId, int> counts;
        for (int s = 0; s < m; ++s) {
          const double r = rng->Uniform() * total_degree;
          const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
          counts[static_cast<NodeId>(it - cdf.begin())]++;
        }
        std::vector<std::vector<std::pair<NodeId, float>>> edges(dst.size());
        // The m global draws above stay on the caller's stream; only the
        // per-destination edge assembly (which merely reads `counts`) fans
        // out across workers.
        par::ParallelFor(
            "sample.layer_wise", DstShards(dst.size()),
            [&](int, par::Range range) {
              for (int64_t i = range.begin; i < range.end; ++i) {
                auto nbrs = graph.Neighbors(dst[static_cast<size_t>(i)]);
                auto& out = edges[static_cast<size_t>(i)];
                if (nbrs.empty()) continue;
                const double inv_deg = 1.0 / static_cast<double>(nbrs.size());
                for (NodeId v : nbrs) {
                  auto it = counts.find(v);
                  if (it == counts.end()) continue;
                  const double q =
                      static_cast<double>(graph.OutDegree(v)) / total_degree;
                  const double w =
                      static_cast<double>(it->second) / (m * q) * inv_deg;
                  out.emplace_back(v, static_cast<float>(w));
                }
              }
            });
        return AssembleLayer(dst, edges);
      });
}

MiniBatch FullNeighborhood(const CsrGraph& graph,
                           std::span<const NodeId> seeds, int num_layers) {
  return BuildBatch(
      seeds, num_layers, [&graph](int, const std::vector<NodeId>& dst) {
        std::vector<std::vector<std::pair<NodeId, float>>> edges(dst.size());
        par::ParallelFor(
            "sample.full", DstShards(dst.size()), [&](int, par::Range range) {
              for (int64_t i = range.begin; i < range.end; ++i) {
                auto nbrs = graph.Neighbors(dst[static_cast<size_t>(i)]);
                auto& out = edges[static_cast<size_t>(i)];
                if (nbrs.empty()) continue;
                const float w = 1.0f / static_cast<float>(nbrs.size());
                for (NodeId v : nbrs) out.emplace_back(v, w);
              }
            });
        return AssembleLayer(dst, edges);
      });
}

}  // namespace sgnn::sampling
