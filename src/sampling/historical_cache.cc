#include "sampling/historical_cache.h"

#include <algorithm>

namespace sgnn::sampling {

HistoricalEmbeddingCache::HistoricalEmbeddingCache(graph::NodeId num_nodes,
                                                   int64_t dim)
    : store_(static_cast<int64_t>(num_nodes), dim),
      written_at_(num_nodes, -1) {}

void HistoricalEmbeddingCache::Put(graph::NodeId u,
                                   std::span<const float> embedding,
                                   int64_t step) {
  SGNN_CHECK_LT(u, written_at_.size());
  SGNN_CHECK_EQ(static_cast<int64_t>(embedding.size()), store_.cols());
  SGNN_CHECK_GE(step, 0);
  auto row = store_.Row(static_cast<int64_t>(u));
  std::copy(embedding.begin(), embedding.end(), row.begin());
  written_at_[u] = step;
}

double HistoricalEmbeddingCache::HitRate(std::span<const graph::NodeId> nodes,
                                         int64_t current_step,
                                         int64_t max_staleness) const {
  if (nodes.empty()) return 0.0;
  int64_t hits = 0;
  for (graph::NodeId u : nodes) {
    const int64_t staleness = Staleness(u, current_step);
    if (staleness >= 0 && staleness <= max_staleness) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(nodes.size());
}

void HistoricalEmbeddingCache::Invalidate(graph::NodeId u) {
  SGNN_CHECK_LT(u, written_at_.size());
  written_at_[u] = -1;
  auto row = store_.Row(static_cast<int64_t>(u));
  std::fill(row.begin(), row.end(), 0.0f);
}

void HistoricalEmbeddingCache::Clear() {
  std::fill(written_at_.begin(), written_at_.end(), -1);
  store_.Zero();
}

}  // namespace sgnn::sampling
