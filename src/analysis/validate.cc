#include "analysis/validate.h"

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/counters.h"

namespace sgnn::analysis {

using common::Status;
using graph::EdgeIndex;
using graph::NodeId;

namespace {

/// Small printf helper: every diagnostic here is "<invariant>: <ids>".
template <typename... Args>
Status Invalid(const char* fmt, Args... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  return Status::Internal(buf);
}

}  // namespace

Status ValidateCsr(NodeId num_nodes, std::span<const EdgeIndex> offsets,
                   std::span<const NodeId> neighbors,
                   std::span<const float> weights) {
  if (offsets.size() != static_cast<size_t>(num_nodes) + 1) {
    return Invalid("csr offsets size mismatch: %zu entries for %llu nodes",
                   offsets.size(), static_cast<unsigned long long>(num_nodes));
  }
  if (offsets.front() != 0) {
    return Invalid("csr offsets[0] != 0: %lld",
                   static_cast<long long>(offsets.front()));
  }
  if (offsets.back() != static_cast<EdgeIndex>(neighbors.size())) {
    return Invalid("csr offsets[n] != num_edges: %lld vs %zu",
                   static_cast<long long>(offsets.back()), neighbors.size());
  }
  if (weights.size() != neighbors.size()) {
    return Invalid("csr weights misaligned with neighbors: %zu vs %zu",
                   weights.size(), neighbors.size());
  }
  for (NodeId u = 0; u < num_nodes; ++u) {
    if (offsets[u + 1] < offsets[u]) {
      return Invalid("csr offsets not monotone at node %llu: %lld > %lld",
                     static_cast<unsigned long long>(u),
                     static_cast<long long>(offsets[u]),
                     static_cast<long long>(offsets[u + 1]));
    }
  }
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (EdgeIndex e = offsets[u]; e < offsets[u + 1]; ++e) {
      const NodeId v = neighbors[static_cast<size_t>(e)];
      if (v >= num_nodes) {
        return Invalid(
            "csr neighbor id out of bounds: node %llu edge %lld -> %llu "
            "(num_nodes %llu)",
            static_cast<unsigned long long>(u), static_cast<long long>(e),
            static_cast<unsigned long long>(v),
            static_cast<unsigned long long>(num_nodes));
      }
      if (e > offsets[u] && neighbors[static_cast<size_t>(e - 1)] >= v) {
        return Invalid(
            "csr adjacency not sorted strictly increasing: node %llu has "
            "%llu then %llu",
            static_cast<unsigned long long>(u),
            static_cast<unsigned long long>(neighbors[static_cast<size_t>(e - 1)]),
            static_cast<unsigned long long>(v));
      }
      const float w = weights[static_cast<size_t>(e)];
      if (!std::isfinite(w)) {
        return Invalid("csr weight not finite: node %llu edge %lld",
                       static_cast<unsigned long long>(u),
                       static_cast<long long>(e));
      }
    }
  }
  // Validation is a real scan; account for it in the same units as kernels
  // so pipeline reports expose the overhead.
  auto& counters = common::GlobalCounters();
  counters.edges_touched += static_cast<uint64_t>(neighbors.size());
  counters.floats_moved += static_cast<uint64_t>(weights.size());
  return Status::OK();
}

Status Validate(const graph::CsrGraph& graph) {
  return ValidateCsr(graph.num_nodes(), graph.offsets(), graph.neighbors(),
                     graph.weights());
}

Status ValidateEdges(NodeId num_nodes, std::span<const graph::Edge> edges) {
  for (size_t i = 0; i < edges.size(); ++i) {
    const graph::Edge& e = edges[i];
    if (e.src >= num_nodes || e.dst >= num_nodes) {
      return Invalid(
          "edge endpoint out of bounds: edge %zu = (%llu, %llu), num_nodes "
          "%llu",
          i, static_cast<unsigned long long>(e.src),
          static_cast<unsigned long long>(e.dst),
          static_cast<unsigned long long>(num_nodes));
    }
    if (!std::isfinite(e.weight)) {
      return Invalid("edge weight not finite: edge %zu = (%llu, %llu)", i,
                     static_cast<unsigned long long>(e.src),
                     static_cast<unsigned long long>(e.dst));
    }
  }
  common::GlobalCounters().edges_touched += static_cast<uint64_t>(edges.size());
  return Status::OK();
}

Status Validate(const graph::EdgeListBuilder& builder) {
  return ValidateEdges(builder.num_nodes(), builder.edges());
}

Status ValidateFeatures(const tensor::Matrix& features) {
  const float* data = features.data();
  const int64_t size = features.size();
  for (int64_t i = 0; i < size; ++i) {
    if (!std::isfinite(data[i])) {
      return Invalid("feature not finite at row %lld col %lld",
                     static_cast<long long>(i / features.cols()),
                     static_cast<long long>(i % features.cols()));
    }
  }
  common::GlobalCounters().floats_moved += static_cast<uint64_t>(size);
  return Status::OK();
}

Status Validate(const core::Dataset& dataset) {
  SGNN_RETURN_IF_ERROR(Validate(dataset.graph));
  const NodeId n = dataset.num_nodes();
  if (dataset.features.rows() != static_cast<int64_t>(n)) {
    return Invalid("dataset features rows != num_nodes: %lld vs %llu",
                   static_cast<long long>(dataset.features.rows()),
                   static_cast<unsigned long long>(n));
  }
  SGNN_RETURN_IF_ERROR(ValidateFeatures(dataset.features));
  if (dataset.labels.size() != static_cast<size_t>(n)) {
    return Invalid("dataset labels size != num_nodes: %zu vs %llu",
                   dataset.labels.size(), static_cast<unsigned long long>(n));
  }
  if (dataset.num_classes <= 0) {
    return Invalid("dataset num_classes not positive: %d", dataset.num_classes);
  }
  for (size_t u = 0; u < dataset.labels.size(); ++u) {
    const int label = dataset.labels[u];
    if (label < 0 || label >= dataset.num_classes) {
      return Invalid("dataset label out of range at node %zu: %d (classes %d)",
                     u, label, dataset.num_classes);
    }
  }
  // Splits: in-bounds and mutually disjoint (a node leaking from train
  // into val/test silently inflates accuracy).
  std::vector<uint8_t> seen(n, 0);
  const std::span<const NodeId> splits[] = {dataset.splits.train,
                                            dataset.splits.val,
                                            dataset.splits.test};
  const char* split_names[] = {"train", "val", "test"};
  for (int s = 0; s < 3; ++s) {
    for (NodeId u : splits[s]) {
      if (u >= n) {
        return Invalid("dataset %s split id out of bounds: %llu",
                       split_names[s], static_cast<unsigned long long>(u));
      }
      if (seen[u] != 0) {
        return Invalid("dataset splits overlap: node %llu appears twice "
                       "(second time in %s)",
                       static_cast<unsigned long long>(u), split_names[s]);
      }
      seen[u] = 1;
    }
  }
  return Status::OK();
}

Status Validate(const partition::Partition& partition,
                const graph::CsrGraph& graph) {
  if (partition.k <= 0) {
    return Invalid("partition k not positive: %d", partition.k);
  }
  if (partition.part_of.size() != static_cast<size_t>(graph.num_nodes())) {
    return Invalid("partition does not cover node universe: %zu assignments "
                   "for %llu nodes",
                   partition.part_of.size(),
                   static_cast<unsigned long long>(graph.num_nodes()));
  }
  for (size_t u = 0; u < partition.part_of.size(); ++u) {
    const int p = partition.part_of[u];
    if (p < 0 || p >= partition.k) {
      return Invalid("partition part id out of range at node %zu: %d (k %d)",
                     u, p, partition.k);
    }
  }
  return Status::OK();
}

Status ValidateCheckpoint(const core::PipelineSnapshot& snapshot,
                          uint64_t expected_signature) {
  if (snapshot.signature != expected_signature) {
    return Status::FailedPrecondition(
        "checkpoint belongs to a different pipeline (signature mismatch)");
  }
  if (snapshot.stages_done < 0 ||
      static_cast<size_t>(snapshot.stages_done) != snapshot.stages.size()) {
    return Invalid("checkpoint stage bookkeeping inconsistent: stages_done "
                   "%d vs %zu recorded stages",
                   snapshot.stages_done, snapshot.stages.size());
  }
  for (size_t i = 0; i < snapshot.stages.size(); ++i) {
    const double s = snapshot.stages[i].seconds;
    if (!std::isfinite(s) || s < 0.0) {
      return Invalid("checkpoint stage %zu timing invalid: %f", i, s);
    }
  }
  if (snapshot.edges_before < 0) {
    return Invalid("checkpoint edges_before negative: %lld",
                   static_cast<long long>(snapshot.edges_before));
  }
  if (snapshot.feature_cols_before < 0) {
    return Invalid("checkpoint feature_cols_before negative: %lld",
                   static_cast<long long>(snapshot.feature_cols_before));
  }
  SGNN_RETURN_IF_ERROR(Validate(snapshot.graph));
  if (snapshot.features.rows() !=
      static_cast<int64_t>(snapshot.graph.num_nodes())) {
    return Invalid("checkpoint features rows != graph nodes: %lld vs %llu",
                   static_cast<long long>(snapshot.features.rows()),
                   static_cast<unsigned long long>(snapshot.graph.num_nodes()));
  }
  return ValidateFeatures(snapshot.features);
}

Status ValidateShardManifest(const storage::ShardManifest& manifest) {
  if (manifest.version != storage::kFormatVersion) {
    return Invalid("shard manifest version unsupported: %u (expected %u)",
                   manifest.version, storage::kFormatVersion);
  }
  if (manifest.shards.empty() && manifest.num_nodes > 0) {
    return Invalid("shard manifest has no shards for %llu nodes",
                   static_cast<unsigned long long>(manifest.num_nodes));
  }
  if (manifest.shard_of.size() != static_cast<size_t>(manifest.num_nodes)) {
    return Invalid("shard assignment does not cover node universe: %zu "
                   "entries for %llu nodes",
                   manifest.shard_of.size(),
                   static_cast<unsigned long long>(manifest.num_nodes));
  }
  const int num_shards = static_cast<int>(manifest.shards.size());
  // One counting pass over the assignment recovers each shard's row count
  // and node range; any disagreement with the shard table means the table
  // describes overlapping or gapped shard ranges.
  std::vector<uint64_t> counts(manifest.shards.size(), 0);
  std::vector<NodeId> lo(manifest.shards.size(), 0);
  std::vector<NodeId> hi(manifest.shards.size(), 0);
  for (size_t u = 0; u < manifest.shard_of.size(); ++u) {
    const uint32_t s = manifest.shard_of[u];
    if (s >= static_cast<uint32_t>(num_shards)) {
      return Invalid("shard assignment out of range at node %zu: shard %u "
                     "(num_shards %d)",
                     u, s, num_shards);
    }
    const NodeId node = static_cast<NodeId>(u);
    if (counts[s] == 0) {
      lo[s] = node;
    }
    hi[s] = node;
    ++counts[s];
  }
  uint64_t total_edges = 0;
  for (int s = 0; s < num_shards; ++s) {
    const storage::ShardEntry& entry = manifest.shards[static_cast<size_t>(s)];
    if (counts[static_cast<size_t>(s)] != entry.num_rows) {
      return Invalid("shard %d row count disagrees with assignment: table "
                     "says %u, assignment gives %llu (overlapping or missing "
                     "shard ranges)",
                     s, entry.num_rows,
                     static_cast<unsigned long long>(
                         counts[static_cast<size_t>(s)]));
    }
    if (entry.num_rows > 0 &&
        (entry.min_node != lo[static_cast<size_t>(s)] ||
         entry.max_node != hi[static_cast<size_t>(s)])) {
      return Invalid("shard %d node range [%llu, %llu] disagrees with "
                     "assignment range [%llu, %llu] (overlapping shard "
                     "ranges)",
                     s, static_cast<unsigned long long>(entry.min_node),
                     static_cast<unsigned long long>(entry.max_node),
                     static_cast<unsigned long long>(lo[static_cast<size_t>(s)]),
                     static_cast<unsigned long long>(hi[static_cast<size_t>(s)]));
    }
    const storage::ShardLayout layout =
        storage::LayoutFor(entry.num_rows, entry.num_edges);
    if (entry.file_bytes != layout.file_bytes) {
      return Invalid("shard %d file size inconsistent with its counts: %llu "
                     "bytes for %u rows / %llu edges (layout needs %llu — "
                     "truncated shard file)",
                     s, static_cast<unsigned long long>(entry.file_bytes),
                     entry.num_rows,
                     static_cast<unsigned long long>(entry.num_edges),
                     static_cast<unsigned long long>(layout.file_bytes));
    }
    total_edges += entry.num_edges;
  }
  if (total_edges != manifest.num_edges) {
    return Invalid("shard edge totals do not sum to the graph: %llu vs %llu",
                   static_cast<unsigned long long>(total_edges),
                   static_cast<unsigned long long>(manifest.num_edges));
  }
  return Status::OK();
}

Status ValidateShardData(const storage::ShardManifest& manifest, int shard_id,
                         const storage::ShardData& shard) {
  if (shard_id < 0 ||
      static_cast<size_t>(shard_id) >= manifest.shards.size()) {
    return Invalid("shard id out of range: %d (num_shards %zu)", shard_id,
                   manifest.shards.size());
  }
  const storage::ShardEntry& entry =
      manifest.shards[static_cast<size_t>(shard_id)];
  if (shard.shard_id != static_cast<uint32_t>(shard_id)) {
    return Invalid("shard file claims id %u but the manifest places it at "
                   "%d",
                   shard.shard_id, shard_id);
  }
  if (shard.rows.size() != entry.num_rows) {
    return Invalid("shard %d row count mismatch: file has %zu rows, "
                   "manifest says %u",
                   shard_id, shard.rows.size(), entry.num_rows);
  }
  if (shard.offsets.size() != shard.rows.size() + 1) {
    return Invalid("shard %d offsets size mismatch: %zu entries for %zu "
                   "rows",
                   shard_id, shard.offsets.size(), shard.rows.size());
  }
  if (!shard.offsets.empty() && shard.offsets.front() != 0) {
    return Invalid("shard %d offsets[0] != 0: %llu", shard_id,
                   static_cast<unsigned long long>(shard.offsets.front()));
  }
  if (shard.neighbors.size() != entry.num_edges ||
      (!shard.offsets.empty() &&
       shard.offsets.back() != shard.neighbors.size())) {
    return Invalid("shard %d edge count mismatch: offsets end at %llu, "
                   "%zu neighbours stored, manifest says %llu",
                   shard_id,
                   static_cast<unsigned long long>(
                       shard.offsets.empty() ? 0 : shard.offsets.back()),
                   shard.neighbors.size(),
                   static_cast<unsigned long long>(entry.num_edges));
  }
  if (shard.weights.size() != shard.neighbors.size()) {
    return Invalid("shard %d weights misaligned with neighbours: %zu vs %zu",
                   shard_id, shard.weights.size(), shard.neighbors.size());
  }
  for (size_t r = 0; r < shard.rows.size(); ++r) {
    const NodeId u = shard.rows[r];
    if (u >= manifest.num_nodes) {
      return Invalid("shard %d row id out of bounds at position %zu: %llu "
                     "(num_nodes %llu)",
                     shard_id, r, static_cast<unsigned long long>(u),
                     static_cast<unsigned long long>(manifest.num_nodes));
    }
    if (r > 0 && shard.rows[r - 1] >= u) {
      return Invalid("shard %d rows not strictly ascending at position %zu: "
                     "%llu then %llu",
                     shard_id, r,
                     static_cast<unsigned long long>(shard.rows[r - 1]),
                     static_cast<unsigned long long>(u));
    }
    if (manifest.shard_of[u] != static_cast<uint32_t>(shard_id)) {
      return Invalid("node %llu stored in shard %d but assigned to shard %u "
                     "(overlapping shard ranges)",
                     static_cast<unsigned long long>(u), shard_id,
                     manifest.shard_of[u]);
    }
    if (shard.offsets[r + 1] < shard.offsets[r]) {
      return Invalid("shard %d offsets not monotone at row %zu: %llu > %llu",
                     shard_id, r,
                     static_cast<unsigned long long>(shard.offsets[r]),
                     static_cast<unsigned long long>(shard.offsets[r + 1]));
    }
    for (uint64_t e = shard.offsets[r]; e < shard.offsets[r + 1]; ++e) {
      const NodeId v = shard.neighbors[static_cast<size_t>(e)];
      if (v >= manifest.num_nodes) {
        return Invalid("shard %d neighbour id out of range: row %zu (node "
                       "%llu) edge %llu -> %llu (num_nodes %llu)",
                       shard_id, r, static_cast<unsigned long long>(u),
                       static_cast<unsigned long long>(e),
                       static_cast<unsigned long long>(v),
                       static_cast<unsigned long long>(manifest.num_nodes));
      }
      if (e > shard.offsets[r] &&
          shard.neighbors[static_cast<size_t>(e - 1)] >= v) {
        return Invalid("shard %d adjacency not sorted strictly increasing: "
                       "node %llu has %llu then %llu",
                       shard_id, static_cast<unsigned long long>(u),
                       static_cast<unsigned long long>(
                           shard.neighbors[static_cast<size_t>(e - 1)]),
                       static_cast<unsigned long long>(v));
      }
      if (!std::isfinite(shard.weights[static_cast<size_t>(e)])) {
        return Invalid("shard %d weight not finite: node %llu edge %llu",
                       shard_id, static_cast<unsigned long long>(u),
                       static_cast<unsigned long long>(e));
      }
    }
  }
  if (!shard.rows.empty() && (shard.rows.front() != entry.min_node ||
                              shard.rows.back() != entry.max_node)) {
    return Invalid("shard %d node range [%llu, %llu] disagrees with its "
                   "manifest entry [%llu, %llu]",
                   shard_id,
                   static_cast<unsigned long long>(shard.rows.front()),
                   static_cast<unsigned long long>(shard.rows.back()),
                   static_cast<unsigned long long>(entry.min_node),
                   static_cast<unsigned long long>(entry.max_node));
  }
  auto& counters = common::GlobalCounters();
  counters.edges_touched += static_cast<uint64_t>(shard.neighbors.size());
  counters.floats_moved += static_cast<uint64_t>(shard.weights.size());
  return Status::OK();
}

Status ValidateShardFile(const storage::ShardManifest& manifest, int shard_id,
                         const std::string& path) {
  auto shard_or = storage::ReadShardFile(path);
  if (!shard_or.ok()) return shard_or.status();
  return ValidateShardData(manifest, shard_id, shard_or.value());
}

Status ValidateShardedGraph(const std::string& dir) {
  auto manifest_or = storage::ReadManifest(storage::ManifestPath(dir));
  if (!manifest_or.ok()) return manifest_or.status();
  const storage::ShardManifest& manifest = manifest_or.value();
  SGNN_RETURN_IF_ERROR(ValidateShardManifest(manifest));
  for (size_t s = 0; s < manifest.shards.size(); ++s) {
    SGNN_RETURN_IF_ERROR(ValidateShardFile(
        manifest, static_cast<int>(s),
        storage::ShardPath(dir, static_cast<int>(s))));
  }
  return Status::OK();
}

storage::OpenOptions ShardOpenOptions(const core::RunContext& ctx) {
  storage::OpenOptions options = storage::OptionsFromRunContext(ctx);
  if (ctx.validate_stages) {
    options.deep_validator = ValidateShardedGraph;
  }
  return options;
}

Status ValidateStageOutput(const std::string& stage_name,
                           const graph::CsrGraph& graph,
                           const tensor::Matrix& features) {
  auto annotate = [&stage_name](Status status) {
    if (status.ok()) return status;
    return Status(status.code(),
                  "after stage '" + stage_name + "': " + status.message());
  };
  Status status = Validate(graph);
  if (!status.ok()) return annotate(std::move(status));
  if (features.rows() != static_cast<int64_t>(graph.num_nodes())) {
    return annotate(Invalid("features rows != graph nodes: %lld vs %llu",
                            static_cast<long long>(features.rows()),
                            static_cast<unsigned long long>(graph.num_nodes())));
  }
  return annotate(ValidateFeatures(features));
}

}  // namespace sgnn::analysis
