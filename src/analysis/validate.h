#ifndef SGNN_ANALYSIS_VALIDATE_H_
#define SGNN_ANALYSIS_VALIDATE_H_

#include <span>
#include <string>

#include "common/status.h"
#include "core/checkpoint.h"
#include "core/dataset.h"
#include "core/run_context.h"
#include "graph/coo.h"
#include "graph/csr_graph.h"
#include "partition/partition.h"
#include "storage/format.h"
#include "storage/sharded_graph.h"
#include "tensor/matrix.h"

namespace sgnn::analysis {

/// Invariant validation suite (the static-analysis / correctness layer).
///
/// Every stage of the pipeline silently assumes structural invariants of
/// the data it consumes — sorted CSR adjacency, in-bounds node ids,
/// weight/neighbour alignment, partition covers, checkpoint integrity.
/// The GNN-systems evaluation literature traces wrong-result and crash
/// bugs to exactly these data-management invariants being violated
/// *between* stages. These validators make each invariant checkable: they
/// return `Status::OK()` or a rich diagnostic naming the violated
/// invariant and the first offending node/edge, and never mutate their
/// input.
///
/// Cost model: each validator is a single linear scan and instruments
/// `common::GlobalCounters()` with the edges/floats it touches, so a
/// `ScopedCounterDelta` (and hence `PipelineReport`) records validation
/// overhead in the same units as real work (see EXPERIMENTS.md E19).
///
/// The `Validate*` overloads that take raw arrays are the testable cores:
/// corruption-injection tests (tests/analysis_test.cc) mutate raw copies
/// of a valid structure and assert the specific invariant failure is
/// reported, which the immutable wrapper types would not allow.

/// Validates a CSR structure given as raw arrays:
///  - `offsets` has `num_nodes + 1` entries, starts at 0, ends at
///    `neighbors.size()`, and is monotone non-decreasing;
///  - `weights` is aligned with `neighbors` (same length);
///  - every neighbour id is in `[0, num_nodes)`;
///  - each adjacency list is sorted strictly increasing (sorted and
///    duplicate-free — the invariant `HasEdge`'s binary search and
///    `EdgeListBuilder::Deduplicate` guarantee);
///  - every weight is finite (no NaN/Inf).
common::Status ValidateCsr(graph::NodeId num_nodes,
                           std::span<const graph::EdgeIndex> offsets,
                           std::span<const graph::NodeId> neighbors,
                           std::span<const float> weights);

/// Validates a frozen graph via `ValidateCsr` over its internal arrays.
common::Status Validate(const graph::CsrGraph& graph);

/// Validates a COO edge list: endpoints in `[0, num_nodes)` and finite
/// weights. Reports the first offending edge index.
common::Status ValidateEdges(graph::NodeId num_nodes,
                             std::span<const graph::Edge> edges);

/// Validates a builder via `ValidateEdges` over its pending edges.
common::Status Validate(const graph::EdgeListBuilder& builder);

/// Validates that every entry of a feature/embedding matrix is finite.
/// NaNs from a divergent stage otherwise propagate silently into every
/// downstream consumer.
common::Status ValidateFeatures(const tensor::Matrix& features);

/// Validates a dataset: graph invariants, features aligned with the node
/// universe and finite, labels sized/ranged against `num_classes`, and
/// splits in-bounds and mutually disjoint.
common::Status Validate(const core::Dataset& dataset);

/// Validates a partition against its graph: `k > 0`, the assignment
/// covers every node (size match), and every part id is in `[0, k)`.
common::Status Validate(const partition::Partition& partition,
                        const graph::CsrGraph& graph);

/// Validates an in-memory pipeline snapshot: signature match against the
/// owning pipeline (`kFailedPrecondition` on mismatch, the same contract
/// as `core::LoadSnapshot`), stage bookkeeping consistency, and full
/// graph/feature validation of the payload. File-level integrity (CRC,
/// framing) is `core::LoadSnapshot`'s job; use
/// `core::ValidateCheckpointFile` for the end-to-end check.
common::Status ValidateCheckpoint(const core::PipelineSnapshot& snapshot,
                                  uint64_t expected_signature);

/// The pipeline's between-stage hook (`core::RunContext::validate_stages`):
/// validates a stage's output graph + features and their alignment,
/// prefixing diagnostics with the stage name.
common::Status ValidateStageOutput(const std::string& stage_name,
                                   const graph::CsrGraph& graph,
                                   const tensor::Matrix& features);

/// Deep semantic validation of a decoded shard manifest. File-level
/// integrity (framing, CRCs) is `storage::ReadManifest`'s job; this layer
/// checks what the CRCs cannot — that the manifest is *consistent*:
/// supported version, every assignment entry in `[0, num_shards)`, each
/// shard's row count and `[min_node, max_node]` range agreeing with the
/// assignment (a disagreement means overlapping or missing shard ranges),
/// edge totals summing to `num_edges`, and each recorded `file_bytes`
/// matching the layout its counts imply (a short record means a truncated
/// shard file).
common::Status ValidateShardManifest(const storage::ShardManifest& manifest);

/// Deep validation of one decoded shard against its manifest: the shard id
/// and row/edge counts match the manifest entry, rows are strictly
/// ascending global ids that the assignment really maps to this shard
/// (overlap detection), local offsets are monotone and span the edge
/// array, every neighbour id is in `[0, num_nodes)`, adjacency is sorted
/// strictly increasing per row, and weights are finite. This is the
/// testable core: corruption-injection tests mutate a decoded `ShardData`
/// and assert the specific first-offender diagnostic.
common::Status ValidateShardData(const storage::ShardManifest& manifest,
                                 int shard_id,
                                 const storage::ShardData& shard);

/// Reads one shard file (surfacing `storage::ReadShardFile`'s truncation /
/// CRC-mismatch diagnostics) and deep-validates it via `ValidateShardData`.
common::Status ValidateShardFile(const storage::ShardManifest& manifest,
                                 int shard_id, const std::string& path);

/// End-to-end validation of an on-disk sharded graph directory: manifest
/// read + `ValidateShardManifest`, then every shard file through
/// `ValidateShardFile`. This is the hook `storage::OpenOptions::
/// deep_validator` expects; it reports the first offending file/section.
common::Status ValidateShardedGraph(const std::string& dir);

/// `storage::OptionsFromRunContext` plus the validate-every-stage wiring:
/// when `ctx.validate_stages` is set, the returned options carry
/// `ValidateShardedGraph` as the deep validator, so debug-mode runs
/// deep-check shard files at open exactly like `ValidateCheckpointFile`
/// deep-checks snapshots.
storage::OpenOptions ShardOpenOptions(const core::RunContext& ctx);

}  // namespace sgnn::analysis

#endif  // SGNN_ANALYSIS_VALIDATE_H_
