#ifndef SGNN_CORE_LINK_PREDICTION_H_
#define SGNN_CORE_LINK_PREDICTION_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/csr_graph.h"
#include "tensor/matrix.h"

namespace sgnn::core {

/// Link prediction (§3.1.1's second canonical task): hold out a fraction
/// of edges, embed nodes using the *training* graph only, and rank the
/// held-out (positive) pairs against sampled non-edges by embedding
/// similarity; quality is ROC-AUC.
struct LinkSplit {
  graph::CsrGraph train_graph;  ///< Original graph minus held-out edges.
  std::vector<std::pair<graph::NodeId, graph::NodeId>> test_pos;
  std::vector<std::pair<graph::NodeId, graph::NodeId>> test_neg;
};

/// Holds out `test_frac` of the undirected edges (both directions
/// removed) and samples an equal number of non-edges as negatives.
LinkSplit SplitLinkPrediction(const graph::CsrGraph& graph, double test_frac,
                              uint64_t seed);

/// ROC-AUC of positive scores against negative scores (probability a
/// random positive outranks a random negative; ties count half).
double RocAuc(const std::vector<double>& positive_scores,
              const std::vector<double>& negative_scores);

/// Scores every test pair by the dot product of its endpoint embedding
/// rows and returns the AUC.
double EmbeddingLinkAuc(const tensor::Matrix& embeddings,
                        const LinkSplit& split);

}  // namespace sgnn::core

#endif  // SGNN_CORE_LINK_PREDICTION_H_
