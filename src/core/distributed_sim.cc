#include "core/distributed_sim.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace sgnn::core {

using graph::CsrGraph;
using graph::NodeId;

DistributedReport SimulateDistributedEpoch(const CsrGraph& graph,
                                           const partition::Partition& parts,
                                           int64_t feature_dim,
                                           const DistributedCostModel& cost) {
  SGNN_CHECK_EQ(parts.part_of.size(), static_cast<size_t>(graph.num_nodes()));
  SGNN_CHECK_GT(parts.k, 0);
  SGNN_CHECK_GT(feature_dim, 0);

  DistributedReport report;
  report.num_workers = parts.k;
  report.workers.assign(static_cast<size_t>(parts.k), WorkerLoad{});

  // Halo sets: for each worker, the distinct remote nodes whose state it
  // must receive (any remote neighbour of a local node).
  std::vector<std::unordered_set<NodeId>> halo(static_cast<size_t>(parts.k));
  std::vector<int64_t> local_nodes(static_cast<size_t>(parts.k), 0);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const int w = parts.part_of[u];
    local_nodes[static_cast<size_t>(w)]++;
    report.workers[static_cast<size_t>(w)].local_edges += graph.OutDegree(u);
    for (NodeId v : graph.Neighbors(u)) {
      if (parts.part_of[v] != w) halo[static_cast<size_t>(w)].insert(v);
    }
  }

  double compute_sum = 0.0;
  double max_compute = 0.0;
  int64_t max_receive = 0;
  int64_t replicated_nodes = 0;
  for (int w = 0; w < parts.k; ++w) {
    WorkerLoad& load = report.workers[static_cast<size_t>(w)];
    load.halo_values =
        static_cast<int64_t>(halo[static_cast<size_t>(w)].size()) * feature_dim;
    const double compute =
        cost.seconds_per_edge * static_cast<double>(load.local_edges);
    compute_sum += compute;
    max_compute = std::max(max_compute, compute);
    max_receive = std::max(max_receive, load.halo_values);
    replicated_nodes +=
        static_cast<int64_t>(halo[static_cast<size_t>(w)].size());
  }

  report.compute_seconds_max = max_compute;
  report.compute_seconds_avg = compute_sum / parts.k;
  // BSP round: everyone computes, then the slowest receive dominates the
  // exchange (full-duplex links, receives bound the round).
  report.comm_seconds = cost.round_latency_seconds +
                        cost.seconds_per_value *
                            static_cast<double>(max_receive);
  report.epoch_seconds = report.compute_seconds_max + report.comm_seconds;

  const double single_worker =
      cost.seconds_per_edge * static_cast<double>(graph.num_edges());
  report.speedup =
      report.epoch_seconds > 0.0 ? single_worker / report.epoch_seconds : 0.0;
  report.replication_factor =
      graph.num_nodes() > 0
          ? static_cast<double>(replicated_nodes + graph.num_nodes()) /
                static_cast<double>(graph.num_nodes())
          : 0.0;
  return report;
}

}  // namespace sgnn::core
