#include "core/distributed_sim.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"

namespace sgnn::core {

using graph::CsrGraph;
using graph::NodeId;

DistributedReport SimulateDistributedEpoch(const CsrGraph& graph,
                                           const partition::Partition& parts,
                                           int64_t feature_dim,
                                           const DistributedCostModel& cost) {
  SGNN_CHECK_EQ(parts.part_of.size(), static_cast<size_t>(graph.num_nodes()));
  SGNN_CHECK_GT(parts.k, 0);
  SGNN_CHECK_GT(feature_dim, 0);

  DistributedReport report;
  report.num_workers = parts.k;
  report.workers.assign(static_cast<size_t>(parts.k), WorkerLoad{});

  // Halo sets: for each worker, the distinct remote nodes whose state it
  // must receive (any remote neighbour of a local node).
  std::vector<std::unordered_set<NodeId>> halo(static_cast<size_t>(parts.k));
  std::vector<int64_t> local_nodes(static_cast<size_t>(parts.k), 0);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    const int w = parts.part_of[u];
    local_nodes[static_cast<size_t>(w)]++;
    report.workers[static_cast<size_t>(w)].local_edges += graph.OutDegree(u);
    for (NodeId v : graph.Neighbors(u)) {
      if (parts.part_of[v] != w) halo[static_cast<size_t>(w)].insert(v);
    }
  }

  double compute_sum = 0.0;
  double max_compute = 0.0;
  int64_t max_receive = 0;
  int64_t replicated_nodes = 0;
  for (int w = 0; w < parts.k; ++w) {
    WorkerLoad& load = report.workers[static_cast<size_t>(w)];
    load.halo_values =
        static_cast<int64_t>(halo[static_cast<size_t>(w)].size()) * feature_dim;
    const double compute =
        cost.seconds_per_edge * static_cast<double>(load.local_edges);
    compute_sum += compute;
    max_compute = std::max(max_compute, compute);
    max_receive = std::max(max_receive, load.halo_values);
    replicated_nodes +=
        static_cast<int64_t>(halo[static_cast<size_t>(w)].size());
  }

  report.compute_seconds_max = max_compute;
  report.compute_seconds_avg = compute_sum / parts.k;
  // BSP round: everyone computes, then the slowest receive dominates the
  // exchange (full-duplex links, receives bound the round).
  report.comm_seconds = cost.round_latency_seconds +
                        cost.seconds_per_value *
                            static_cast<double>(max_receive);
  report.epoch_seconds = report.compute_seconds_max + report.comm_seconds;

  const double single_worker =
      cost.seconds_per_edge * static_cast<double>(graph.num_edges());
  report.speedup =
      report.epoch_seconds > 0.0 ? single_worker / report.epoch_seconds : 0.0;
  report.replication_factor =
      graph.num_nodes() > 0
          ? static_cast<double>(replicated_nodes + graph.num_nodes()) /
                static_cast<double>(graph.num_nodes())
          : 0.0;

  // Failure economics. Stragglers: with each of w workers independently
  // straggling with probability q at factor s, the round waits on the
  // slowest worker, so in expectation the critical path inflates by
  // (s - 1) * P(at least one straggler) — a first-order bound that treats
  // the straggler as landing on the critical-path worker (the BSP
  // worst case the tutorial's systems discussion budgets for).
  const FailureModel& f = cost.failure;
  if (f.straggler_prob > 0.0 && f.straggler_factor > 1.0) {
    const double p_any =
        1.0 - std::pow(1.0 - f.straggler_prob, parts.k);
    report.straggler_seconds =
        report.compute_seconds_max * (f.straggler_factor - 1.0) * p_any;
  }
  const double epoch_with_stragglers =
      report.epoch_seconds + report.straggler_seconds;
  report.checkpoint = PlanCheckpoints(epoch_with_stragglers, parts.k, f);
  report.expected_epoch_seconds =
      epoch_with_stragglers * report.checkpoint.expected_overhead;
  return report;
}

double CheckpointOverhead(double interval_seconds, double mtbf_seconds,
                          double checkpoint_write_seconds,
                          double restart_seconds) {
  SGNN_CHECK_GT(interval_seconds, 0.0);
  double overhead = 1.0 + checkpoint_write_seconds / interval_seconds;
  if (mtbf_seconds > 0.0) {
    // Each failure rewinds to the last checkpoint: half an interval of
    // lost work in expectation, plus the restart cost.
    overhead +=
        (interval_seconds / 2.0 + restart_seconds) / mtbf_seconds;
  }
  return overhead;
}

CheckpointPlan PlanCheckpoints(double epoch_seconds, int num_workers,
                               const FailureModel& failure) {
  CheckpointPlan plan;
  const double p = failure.worker_failure_prob;
  if (p <= 0.0 || epoch_seconds <= 0.0 || num_workers <= 0) {
    return plan;  // No failures: never checkpoint, overhead 1.
  }
  // Any of the w workers failing stalls the BSP round, so the run fails
  // per epoch with probability 1 - (1-p)^w; failures are geometric in
  // epochs, giving MTBF = epoch / P(fail per epoch).
  const double p_epoch = 1.0 - std::pow(1.0 - p, num_workers);
  plan.mtbf_seconds = epoch_seconds / p_epoch;
  const double c = failure.checkpoint_write_seconds;
  if (c > 0.0) {
    // Young's approximation: tau* = sqrt(2 * C * MTBF) minimises
    // C/tau + tau/(2*MTBF).
    plan.optimal_interval_seconds = std::sqrt(2.0 * c * plan.mtbf_seconds);
    plan.expected_overhead =
        CheckpointOverhead(plan.optimal_interval_seconds, plan.mtbf_seconds,
                           c, failure.restart_seconds);
  } else {
    // Free checkpoints: checkpoint continuously; only restarts cost.
    plan.optimal_interval_seconds = 0.0;
    plan.expected_overhead =
        1.0 + failure.restart_seconds / plan.mtbf_seconds;
  }
  return plan;
}

}  // namespace sgnn::core
