#include "core/stages.h"

#include "algebra/implicit.h"
#include "graph/propagate.h"
#include "sparsify/sparsify.h"
#include "tensor/ops.h"

namespace sgnn::core {

namespace {

class UniformSparsifyStage : public EditStage {
 public:
  UniformSparsifyStage(double keep_prob, uint64_t seed)
      : keep_prob_(keep_prob), seed_(seed) {}
  std::string name() const override { return "sparsify:uniform"; }
  graph::CsrGraph Edit(const graph::CsrGraph& graph,
                       const tensor::Matrix&) override {
    return sparsify::UniformSparsify(graph, keep_prob_, /*reweight=*/true,
                                     seed_);
  }

 private:
  double keep_prob_;
  uint64_t seed_;
};

class SpectralSparsifyStage : public EditStage {
 public:
  SpectralSparsifyStage(int64_t num_samples, uint64_t seed)
      : num_samples_(num_samples), seed_(seed) {}
  std::string name() const override { return "sparsify:spectral"; }
  graph::CsrGraph Edit(const graph::CsrGraph& graph,
                       const tensor::Matrix&) override {
    return sparsify::SpectralSparsify(graph, num_samples_, seed_);
  }

 private:
  int64_t num_samples_;
  uint64_t seed_;
};

class RewiringStage : public EditStage {
 public:
  explicit RewiringStage(const similarity::RewiringConfig& config)
      : config_(config) {}
  std::string name() const override { return "edit:rewire"; }
  graph::CsrGraph Edit(const graph::CsrGraph& graph,
                       const tensor::Matrix& features) override {
    return similarity::RewireBySimilarity(graph, features, config_).graph;
  }

 private:
  similarity::RewiringConfig config_;
};

class CombinedEmbeddingStage : public AnalyticsStage {
 public:
  explicit CombinedEmbeddingStage(
      const spectral::CombinedEmbeddingConfig& config)
      : config_(config) {}
  std::string name() const override { return "analytics:combined-embed"; }
  tensor::Matrix Augment(const graph::CsrGraph& graph,
                         const tensor::Matrix& features) override {
    graph::Propagator prop(graph, graph::Normalization::kSymmetric, true);
    return spectral::CombinedEmbeddings(prop, features, config_);
  }

 private:
  spectral::CombinedEmbeddingConfig config_;
};

class PprSmoothingStage : public AnalyticsStage {
 public:
  PprSmoothingStage(double alpha, int hops) : alpha_(alpha), hops_(hops) {}
  std::string name() const override { return "analytics:ppr-smooth"; }
  tensor::Matrix Augment(const graph::CsrGraph& graph,
                         const tensor::Matrix& features) override {
    graph::Propagator prop(graph, graph::Normalization::kSymmetric, true);
    return ppr::AppnpPropagate(prop, features, alpha_, hops_);
  }

 private:
  double alpha_;
  int hops_;
};

class ImplicitEmbeddingStage : public AnalyticsStage {
 public:
  ImplicitEmbeddingStage(double gamma, double tol, int max_iters)
      : gamma_(gamma), tol_(tol), max_iters_(max_iters) {}
  std::string name() const override { return "analytics:implicit"; }
  tensor::Matrix Augment(const graph::CsrGraph& graph,
                         const tensor::Matrix& features) override {
    graph::Propagator prop(graph, graph::Normalization::kSymmetric, true);
    tensor::Matrix z =
        algebra::NeumannSolve(prop, features, gamma_, tol_, max_iters_);
    tensor::NormalizeRows(2, &z);
    return z;
  }

 private:
  double gamma_;
  double tol_;
  int max_iters_;
};

}  // namespace

std::unique_ptr<EditStage> MakeUniformSparsifyStage(double keep_prob,
                                                    uint64_t seed) {
  return std::make_unique<UniformSparsifyStage>(keep_prob, seed);
}

std::unique_ptr<EditStage> MakeSpectralSparsifyStage(int64_t num_samples,
                                                     uint64_t seed) {
  return std::make_unique<SpectralSparsifyStage>(num_samples, seed);
}

std::unique_ptr<EditStage> MakeRewiringStage(
    const similarity::RewiringConfig& config) {
  return std::make_unique<RewiringStage>(config);
}

std::unique_ptr<AnalyticsStage> MakeCombinedEmbeddingStage(
    const spectral::CombinedEmbeddingConfig& config) {
  return std::make_unique<CombinedEmbeddingStage>(config);
}

std::unique_ptr<AnalyticsStage> MakePprSmoothingStage(double alpha,
                                                      int hops) {
  return std::make_unique<PprSmoothingStage>(alpha, hops);
}

std::unique_ptr<AnalyticsStage> MakeImplicitEmbeddingStage(double gamma,
                                                           double tol,
                                                           int max_iters) {
  return std::make_unique<ImplicitEmbeddingStage>(gamma, tol, max_iters);
}

}  // namespace sgnn::core
