#ifndef SGNN_CORE_PIPELINE_H_
#define SGNN_CORE_PIPELINE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/fault.h"
#include "common/status.h"
#include "core/dataset.h"

namespace sgnn::core {

/// The paper's two technique families as pipeline stages (Figure 1):
/// *editing* stages rewrite the graph, *analytics* stages rewrite the
/// features (embeddings); a model trains on whatever comes out.

/// Rewrites the graph (sparsify, rewire, coarsen-project, ...). May read
/// the features (e.g. similarity rewiring).
class EditStage {
 public:
  virtual ~EditStage() = default;
  virtual std::string name() const = 0;
  virtual graph::CsrGraph Edit(const graph::CsrGraph& graph,
                               const tensor::Matrix& features) = 0;
};

/// Rewrites the features (spectral embeddings, PPR smoothing, ...).
class AnalyticsStage {
 public:
  virtual ~AnalyticsStage() = default;
  virtual std::string name() const = 0;
  virtual tensor::Matrix Augment(const graph::CsrGraph& graph,
                                 const tensor::Matrix& features) = 0;
};

/// A trainer taking the (possibly edited/augmented) dataset pieces.
using ModelFn = std::function<models::ModelResult(
    const graph::CsrGraph&, const tensor::Matrix&, std::span<const int>,
    const models::NodeSplits&, const nn::TrainConfig&)>;

/// Per-stage timing entry of a pipeline run, with the work-counter delta
/// the stage accounted for (`ScopedCounterDelta`), so preprocessing,
/// training, and serving all report in the same units.
struct StageTiming {
  std::string name;
  double seconds = 0.0;
  common::OpCounters ops;
};

struct PipelineReport {
  std::vector<StageTiming> stages;
  models::ModelResult model;
  graph::EdgeIndex edges_before = 0;
  graph::EdgeIndex edges_after = 0;
  int64_t feature_cols_before = 0;
  int64_t feature_cols_after = 0;
  /// OK on a completed run; `kAborted` when an injected crash stopped the
  /// run partway (the model fields are then unset).
  common::Status status;
  /// Stages restored from a snapshot instead of recomputed this run.
  int resumed_stages = 0;

  std::string ToString() const;
};

/// Between-stage validation hook: receives the stage's name and its output
/// graph + features; a non-OK return aborts the run with that status. The
/// default (`analysis::ValidateStageOutput`) checks the full CSR/feature
/// invariant suite; tests can substitute their own to target one invariant.
using ValidationStage = std::function<common::Status(
    const std::string& stage_name, const graph::CsrGraph& graph,
    const tensor::Matrix& features)>;

/// Fault-tolerance and debug knobs for `Pipeline::Run`. Default-constructed
/// options reproduce the plain (non-checkpointed) run exactly.
struct PipelineRunOptions {
  /// Snapshot file written after every completed stage; empty = no
  /// checkpointing. See `core/checkpoint.h` for the format guarantees.
  std::string checkpoint_path;
  /// When true and `checkpoint_path` holds a valid snapshot from this same
  /// pipeline, completed stages are restored instead of recomputed. A
  /// corrupted or foreign snapshot is ignored (from-scratch run).
  bool resume = true;
  /// Optional injector observed at site `"pipeline.after_stage"` once per
  /// completed stage (token = stage index): a firing trigger simulates a
  /// crash — the run stops with `kAborted`, leaving the snapshot behind
  /// for a later resume.
  common::FaultInjector* faults = nullptr;
  /// Debug mode: validate the input dataset and every stage's output
  /// against the `sgnn::analysis` invariant suite. A violation stops the
  /// run with the validator's diagnostic instead of letting a corrupt
  /// graph/feature matrix flow into later stages. Validation never mutates
  /// state, so results are bit-identical to a plain run; its cost appears
  /// as extra `validate:<stage>` rows in the report.
  bool validate_stages = false;
  /// Override for the between-stage validator; defaults to
  /// `analysis::ValidateStageOutput`. Only consulted when
  /// `validate_stages` is true.
  ValidationStage stage_validator;
};

/// Composable scalable-GNN pipeline: edits run first (in insertion
/// order), then analytics stages (each replacing the feature matrix),
/// then the model trains.
class Pipeline {
 public:
  Pipeline() = default;

  Pipeline& AddEdit(std::unique_ptr<EditStage> stage);
  Pipeline& AddAnalytics(std::unique_ptr<AnalyticsStage> stage);
  Pipeline& SetModel(std::string name, ModelFn model);

  /// Runs the full pipeline on a dataset. Requires a model to be set.
  PipelineReport Run(const Dataset& dataset,
                     const nn::TrainConfig& config) const;

  /// As above, with stage checkpointing / resume / fault injection. With
  /// default options this is identical to the two-argument overload.
  PipelineReport Run(const Dataset& dataset, const nn::TrainConfig& config,
                     const PipelineRunOptions& options) const;

  /// Hash of this pipeline's stage-name sequence + model name; the identity
  /// a snapshot must match to be resumable.
  uint64_t Signature() const;

 private:
  std::vector<std::unique_ptr<EditStage>> edits_;
  std::vector<std::unique_ptr<AnalyticsStage>> analytics_;
  std::string model_name_;
  ModelFn model_;
};

}  // namespace sgnn::core

#endif  // SGNN_CORE_PIPELINE_H_
