#ifndef SGNN_CORE_PIPELINE_H_
#define SGNN_CORE_PIPELINE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/fault.h"
#include "common/status.h"
#include "core/dataset.h"
#include "core/run_context.h"

namespace sgnn::core {

/// The paper's two technique families as pipeline stages (Figure 1):
/// *editing* stages rewrite the graph, *analytics* stages rewrite the
/// features (embeddings); a model trains on whatever comes out.

/// Rewrites the graph (sparsify, rewire, coarsen-project, ...). May read
/// the features (e.g. similarity rewiring).
class EditStage {
 public:
  virtual ~EditStage() = default;
  virtual std::string name() const = 0;
  virtual graph::CsrGraph Edit(const graph::CsrGraph& graph,
                               const tensor::Matrix& features) = 0;
};

/// Rewrites the features (spectral embeddings, PPR smoothing, ...).
class AnalyticsStage {
 public:
  virtual ~AnalyticsStage() = default;
  virtual std::string name() const = 0;
  virtual tensor::Matrix Augment(const graph::CsrGraph& graph,
                                 const tensor::Matrix& features) = 0;
};

/// A trainer taking the (possibly edited/augmented) dataset pieces.
using ModelFn = std::function<models::ModelResult(
    const graph::CsrGraph&, const tensor::Matrix&, std::span<const int>,
    const models::NodeSplits&, const nn::TrainConfig&)>;

/// Per-stage timing entry of a pipeline run, with the work-counter delta
/// the stage accounted for (`ScopedCounterDelta`), so preprocessing,
/// training, and serving all report in the same units.
struct StageTiming {
  std::string name;
  double seconds = 0.0;
  common::OpCounters ops;
};

struct PipelineReport {
  std::vector<StageTiming> stages;
  models::ModelResult model;
  graph::EdgeIndex edges_before = 0;
  graph::EdgeIndex edges_after = 0;
  int64_t feature_cols_before = 0;
  int64_t feature_cols_after = 0;
  /// OK on a completed run; `kAborted` when an injected crash stopped the
  /// run partway (the model fields are then unset).
  common::Status status;
  /// Stages restored from a snapshot instead of recomputed this run.
  int resumed_stages = 0;

  std::string ToString() const;
};

/// Composable scalable-GNN pipeline: edits run first (in insertion
/// order), then analytics stages (each replacing the feature matrix),
/// then the model trains.
class Pipeline {
 public:
  Pipeline() = default;

  Pipeline& AddEdit(std::unique_ptr<EditStage> stage);
  Pipeline& AddAnalytics(std::unique_ptr<AnalyticsStage> stage);
  Pipeline& SetModel(std::string name, ModelFn model);

  /// Runs the full pipeline on a dataset. Requires a model to be set.
  PipelineReport Run(const Dataset& dataset,
                     const nn::TrainConfig& config) const;

  /// Primary entry point: runs the pipeline under `ctx` — tracing spans
  /// and registry metrics when sinks are set, checkpointing / resume /
  /// fault injection / deadline / validation per the context's knobs.
  /// With a default context this is identical to the two-argument
  /// overload. The report's stage rows and the registry's
  /// `sgnn_pipeline_stage_*` series are views over the same measurements.
  PipelineReport Run(const Dataset& dataset, const nn::TrainConfig& config,
                     const RunContext& ctx) const;

  /// Hash of this pipeline's stage-name sequence + model name; the identity
  /// a snapshot must match to be resumable.
  uint64_t Signature() const;

 private:
  std::vector<std::unique_ptr<EditStage>> edits_;
  std::vector<std::unique_ptr<AnalyticsStage>> analytics_;
  std::string model_name_;
  ModelFn model_;
};

}  // namespace sgnn::core

#endif  // SGNN_CORE_PIPELINE_H_
