#ifndef SGNN_CORE_RUN_CONTEXT_H_
#define SGNN_CORE_RUN_CONTEXT_H_

#include <functional>
#include <string>

#include "common/fault.h"
#include "common/status.h"

namespace sgnn::graph {
class CsrGraph;
}
namespace sgnn::tensor {
class Matrix;
}
namespace sgnn::obs {
class Tracer;
class MetricsRegistry;
}  // namespace sgnn::obs

namespace sgnn::core {

/// Between-stage validation hook: receives the stage's name and its output
/// graph + features; a non-OK return aborts the run with that status. The
/// default (`analysis::ValidateStageOutput`) checks the full CSR/feature
/// invariant suite; tests can substitute their own to target one invariant.
using ValidationStage = std::function<common::Status(
    const std::string& stage_name, const graph::CsrGraph& graph,
    const tensor::Matrix& features)>;

/// The one object threaded through a run — `Pipeline::Run`,
/// `ServePipeline`, `BatchingServer` all take a `RunContext` — carrying
/// observability sinks plus the fault-tolerance and debug knobs that used
/// to live in `PipelineRunOptions`. A default-constructed context
/// reproduces the plain (untraced, unmetered, non-checkpointed) run
/// exactly: every field is optional and the null/empty state means "off".
///
/// The context does not own anything it points to; the caller keeps the
/// tracer/registry/injector alive for the duration of the run. Copying a
/// context is cheap and shares the same sinks, which is how a pipeline
/// hands its context on to serving (`ServePipeline`).
struct RunContext {
  /// Span sink: every pipeline stage, checkpoint save/restore, validation
  /// pass, and serve batch opens a span here. Null = tracing off.
  obs::Tracer* tracer = nullptr;
  /// Metric sink: stage counters/gauges, serve counters and latency
  /// histograms. Null = metrics off.
  obs::MetricsRegistry* metrics = nullptr;
  /// Fault injector observed at site `"pipeline.after_stage"` (token =
  /// stage index) and, in serving, `"serve.admit"` (token = node id).
  common::FaultInjector* faults = nullptr;
  /// Time budget for the whole run: checked between stages and before
  /// training; an expired deadline stops the run with `kDeadlineExceeded`.
  common::Deadline deadline = common::Deadline::Infinite();
  /// Snapshot file written after every completed stage; empty = no
  /// checkpointing. See `core/checkpoint.h` for the format guarantees.
  std::string checkpoint_path;
  /// When true and `checkpoint_path` holds a valid snapshot from this same
  /// pipeline, completed stages are restored instead of recomputed. A
  /// corrupted or foreign snapshot is ignored (from-scratch run).
  bool resume = true;
  /// Debug mode: validate the input dataset and every stage's output
  /// against the `sgnn::analysis` invariant suite. A violation stops the
  /// run with the validator's diagnostic instead of letting a corrupt
  /// graph/feature matrix flow into later stages. Validation never mutates
  /// state, so results are bit-identical to a plain run; its cost appears
  /// as extra `validate:<stage>` rows in the report.
  bool validate_stages = false;
  /// Override for the between-stage validator; defaults to
  /// `analysis::ValidateStageOutput`. Only consulted when
  /// `validate_stages` is true.
  ValidationStage stage_validator;
  /// Worker count for the `sgnn::par` kernel substrate: > 0 calls
  /// `par::SetThreads` at run entry (process-wide — it outlives the run);
  /// 0 leaves the current setting (`SGNN_THREADS`, default 1) alone.
  /// Results are bit-identical for any value by the par determinism
  /// contract; only wall time changes.
  int num_threads = 0;
  /// Backend override for the `sgnn::simd` microkernel substrate, applied
  /// at run entry (process-wide — it outlives the run, like
  /// `num_threads`): > 0 dispatches the vector backend when the CPU
  /// supports it, < 0 forces the portable scalar backend, 0 leaves the
  /// current setting (`SGNN_SIMD`, default auto) alone. Results are
  /// bit-identical for any value by the simd bit-identity contract; only
  /// wall time changes.
  int simd = 0;
  /// When true (and `tracer` is set), parallel kernel sections emit
  /// `par:<label>` spans into `tracer` for the duration of the run.
  /// Off by default: hot kernels run thousands of sections per run, which
  /// drowns the stage-level trace.
  bool trace_parallel = false;
  /// Hard cap, in bytes, on the shard bytes an out-of-core graph opened
  /// from this context (`storage::ShardedGraph`) may keep mapped at once.
  /// The shard cache evicts to stay under it and returns
  /// `kResourceExhausted` when a single working set cannot fit. 0 = consult
  /// the `SGNN_RESIDENT_BUDGET` environment variable (decimal bytes with an
  /// optional K/M/G suffix, 1024-based); unset there too = unlimited.
  /// Results are bit-identical at any budget; only faults/evictions change.
  uint64_t resident_budget_bytes = 0;
};

}  // namespace sgnn::core

#endif  // SGNN_CORE_RUN_CONTEXT_H_
