#include "core/coarse_flow.h"

#include "common/timer.h"
#include "graph/propagate.h"
#include "models/gcn.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace sgnn::core {

using graph::NodeId;
using tensor::Matrix;

CoarseTrainResult TrainOnCoarseGraph(const Dataset& dataset,
                                     double target_ratio,
                                     const nn::TrainConfig& config) {
  common::ScopedCounterDelta counters;
  common::WallTimer timer;
  common::Rng rng(config.seed);

  coarsen::Coarsening coarsening =
      coarsen::HeavyEdgeCoarsen(dataset.graph, target_ratio, config.seed);
  Matrix coarse_x = coarsen::RestrictFeatures(coarsening, dataset.features);
  std::vector<int> coarse_labels = coarsen::RestrictLabels(
      coarsening, dataset.labels, dataset.num_classes);

  // Coarse-side split for early stopping (test side is evaluated on the
  // fine graph, so any coarse test set would be redundant).
  models::NodeSplits coarse_splits =
      models::MakeSplits(coarsening.num_coarse(), 0.7, 0.29, config.seed);

  graph::Propagator coarse_prop(coarsening.coarse,
                                graph::Normalization::kSymmetric, true);
  models::Gcn model(coarse_x.cols(), config.hidden_dim, dataset.num_classes,
                    config.dropout, &rng);
  nn::Adam opt(model.Params(), config.lr, 0.9, 0.999, 1e-8,
               config.weight_decay);
  models::EarlyStopTracker tracker(config.patience);

  CoarseTrainResult result;
  result.coarse_nodes = coarsening.num_coarse();
  result.model.name = "coarse_gcn";
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    model.ZeroGrad();
    result.model.report.final_train_loss = model.TrainStep(
        coarse_prop, coarse_x, coarse_labels, coarse_splits.train, &rng);
    opt.Step();
    result.model.report.epochs_run = epoch + 1;

    // Lift coarse logits to fine nodes and score on the FINE splits.
    Matrix coarse_logits = model.Predict(coarse_prop, coarse_x);
    Matrix fine_logits = coarsen::LiftFeatures(coarsening, coarse_logits);
    const double val =
        nn::Accuracy(fine_logits, dataset.labels, dataset.splits.val);
    const double test =
        nn::Accuracy(fine_logits, dataset.labels, dataset.splits.test);
    if (tracker.Update(val, test)) break;
  }
  result.model.report.best_val_accuracy = tracker.best_val();
  result.model.report.test_accuracy = tracker.test_at_best();
  result.model.report.train_seconds = timer.Seconds();
  result.model.ops = counters.Delta();
  result.spectral_distortion =
      coarsen::SpectralDistortion(dataset.graph, coarsening, 4, config.seed);
  return result;
}

}  // namespace sgnn::core
