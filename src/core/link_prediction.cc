#include "core/link_prediction.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "tensor/ops.h"

namespace sgnn::core {

using graph::CsrGraph;
using graph::NodeId;

LinkSplit SplitLinkPrediction(const CsrGraph& graph, double test_frac,
                              uint64_t seed) {
  SGNN_CHECK(test_frac > 0.0 && test_frac < 1.0);
  SGNN_CHECK_GE(graph.num_nodes(), 2u);
  common::Rng rng(seed);

  std::vector<std::pair<NodeId, NodeId>> undirected;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.Neighbors(u)) {
      if (u < v) undirected.emplace_back(u, v);
    }
  }
  SGNN_CHECK(!undirected.empty());
  rng.Shuffle(&undirected);
  const size_t num_test = std::max<size_t>(
      1, static_cast<size_t>(test_frac * static_cast<double>(undirected.size())));

  LinkSplit split;
  split.test_pos.assign(undirected.begin(),
                        undirected.begin() + static_cast<int64_t>(num_test));

  graph::EdgeListBuilder builder(graph.num_nodes());
  for (size_t i = num_test; i < undirected.size(); ++i) {
    builder.AddUndirectedEdge(undirected[i].first, undirected[i].second);
  }
  split.train_graph = CsrGraph::FromBuilder(std::move(builder));

  // Negative pairs: uniform non-edges of the ORIGINAL graph (so a good
  // embedding is not rewarded for predicting held-out positives as
  // negatives).
  split.test_neg.reserve(num_test);
  while (split.test_neg.size() < num_test) {
    const NodeId u = static_cast<NodeId>(rng.UniformInt(graph.num_nodes()));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(graph.num_nodes()));
    if (u == v || graph.HasEdge(u, v)) continue;
    split.test_neg.emplace_back(u, v);
  }
  return split;
}

double RocAuc(const std::vector<double>& positive_scores,
              const std::vector<double>& negative_scores) {
  SGNN_CHECK(!positive_scores.empty());
  SGNN_CHECK(!negative_scores.empty());
  // O((p+n) log(p+n)) rank-based computation.
  std::vector<std::pair<double, int>> all;
  all.reserve(positive_scores.size() + negative_scores.size());
  for (double s : positive_scores) all.emplace_back(s, 1);
  for (double s : negative_scores) all.emplace_back(s, 0);
  std::sort(all.begin(), all.end());
  double rank_sum_pos = 0.0;
  size_t i = 0;
  while (i < all.size()) {
    size_t j = i;
    while (j < all.size() && all[j].first == all[i].first) ++j;
    // Average rank for ties (1-based ranks i+1 .. j).
    const double avg_rank = 0.5 * static_cast<double>(i + 1 + j);
    for (size_t k = i; k < j; ++k) {
      if (all[k].second == 1) rank_sum_pos += avg_rank;
    }
    i = j;
  }
  const double p = static_cast<double>(positive_scores.size());
  const double n = static_cast<double>(negative_scores.size());
  return (rank_sum_pos - p * (p + 1.0) / 2.0) / (p * n);
}

double EmbeddingLinkAuc(const tensor::Matrix& embeddings,
                        const LinkSplit& split) {
  auto score = [&embeddings](const std::pair<NodeId, NodeId>& pair) {
    return tensor::Dot(embeddings.Row(static_cast<int64_t>(pair.first)),
                       embeddings.Row(static_cast<int64_t>(pair.second)));
  };
  std::vector<double> pos, neg;
  pos.reserve(split.test_pos.size());
  neg.reserve(split.test_neg.size());
  for (const auto& pair : split.test_pos) pos.push_back(score(pair));
  for (const auto& pair : split.test_neg) neg.push_back(score(pair));
  return RocAuc(pos, neg);
}

}  // namespace sgnn::core
