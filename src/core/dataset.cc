#include "core/dataset.h"

#include "common/check.h"
#include "common/rng.h"

namespace sgnn::core {

namespace {

tensor::Matrix PrototypeFeatures(const std::vector<int>& labels,
                                 int num_classes, int64_t feature_dim,
                                 double noise, common::Rng* rng) {
  SGNN_CHECK_GE(feature_dim, num_classes);
  tensor::Matrix x(static_cast<int64_t>(labels.size()), feature_dim);
  for (size_t u = 0; u < labels.size(); ++u) {
    auto row = x.Row(static_cast<int64_t>(u));
    row[labels[u]] = 1.0f;
    for (int64_t c = 0; c < feature_dim; ++c) {
      row[c] += static_cast<float>(rng->Gaussian(0.0, noise));
    }
  }
  return x;
}

}  // namespace

Dataset MakeSbmDataset(const SbmDatasetConfig& config, uint64_t seed) {
  common::Rng rng(seed);
  graph::SbmGraph sbm =
      graph::StochasticBlockModel(config.sbm, rng.engine()());
  Dataset dataset;
  dataset.num_classes = config.sbm.num_classes;
  dataset.features =
      PrototypeFeatures(sbm.labels, dataset.num_classes, config.feature_dim,
                        config.feature_noise, &rng);
  dataset.labels = std::move(sbm.labels);
  dataset.graph = std::move(sbm.graph);
  dataset.splits = models::MakeSplits(dataset.graph.num_nodes(),
                                      config.train_frac, config.val_frac,
                                      rng.engine()());
  return dataset;
}

Dataset MakeKarateDataset(double feature_noise, uint64_t seed) {
  common::Rng rng(seed);
  graph::SbmGraph karate = graph::KarateClub();
  Dataset dataset;
  dataset.num_classes = 2;
  dataset.features = PrototypeFeatures(karate.labels, 2, 4, feature_noise,
                                       &rng);
  dataset.labels = std::move(karate.labels);
  dataset.graph = std::move(karate.graph);
  dataset.splits =
      models::MakeSplits(dataset.graph.num_nodes(), 0.5, 0.2, rng.engine()());
  return dataset;
}

}  // namespace sgnn::core
