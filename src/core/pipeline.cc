#include "core/pipeline.h"

#include <cstdio>

#include "common/check.h"
#include "common/counters.h"
#include "common/timer.h"

namespace sgnn::core {

std::string PipelineReport::ToString() const {
  std::string out;
  char buf[256];
  for (const StageTiming& stage : stages) {
    std::snprintf(buf, sizeof(buf), "stage %-24s %8.3fs  [%s]\n",
                  stage.name.c_str(), stage.seconds,
                  stage.ops.ToString().c_str());
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "edges %lld -> %lld, feature cols %lld -> %lld\n",
                static_cast<long long>(edges_before),
                static_cast<long long>(edges_after),
                static_cast<long long>(feature_cols_before),
                static_cast<long long>(feature_cols_after));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "model %-16s val %.4f test %.4f epochs %d (%.3fs)\n",
                model.name.c_str(), model.report.best_val_accuracy,
                model.report.test_accuracy, model.report.epochs_run,
                model.report.train_seconds);
  out += buf;
  out += "ops: " + model.ops.ToString() + "\n";
  return out;
}

Pipeline& Pipeline::AddEdit(std::unique_ptr<EditStage> stage) {
  SGNN_CHECK(stage != nullptr);
  edits_.push_back(std::move(stage));
  return *this;
}

Pipeline& Pipeline::AddAnalytics(std::unique_ptr<AnalyticsStage> stage) {
  SGNN_CHECK(stage != nullptr);
  analytics_.push_back(std::move(stage));
  return *this;
}

Pipeline& Pipeline::SetModel(std::string name, ModelFn model) {
  SGNN_CHECK(model != nullptr);
  model_name_ = std::move(name);
  model_ = std::move(model);
  return *this;
}

PipelineReport Pipeline::Run(const Dataset& dataset,
                             const nn::TrainConfig& config) const {
  SGNN_CHECK(model_ != nullptr);
  PipelineReport report;
  report.edges_before = dataset.graph.num_edges();
  report.feature_cols_before = dataset.features.cols();

  graph::CsrGraph graph = dataset.graph;
  tensor::Matrix features = dataset.features;
  for (const auto& stage : edits_) {
    common::ScopedCounterDelta counters;
    common::WallTimer timer;
    graph = stage->Edit(graph, features);
    report.stages.push_back(
        {stage->name(), timer.Seconds(), counters.Delta()});
  }
  for (const auto& stage : analytics_) {
    common::ScopedCounterDelta counters;
    common::WallTimer timer;
    features = stage->Augment(graph, features);
    report.stages.push_back(
        {stage->name(), timer.Seconds(), counters.Delta()});
  }
  report.edges_after = graph.num_edges();
  report.feature_cols_after = features.cols();

  common::ScopedCounterDelta counters;
  common::WallTimer timer;
  report.model =
      model_(graph, features, dataset.labels, dataset.splits, config);
  report.stages.push_back(
      {"train:" + model_name_, timer.Seconds(), counters.Delta()});
  return report;
}

}  // namespace sgnn::core
