#include "core/pipeline.h"

#include <cstdio>

#include "analysis/validate.h"
#include "common/check.h"
#include "common/counters.h"
#include "common/timer.h"
#include "core/checkpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/par.h"
#include "simd/simd.h"

namespace sgnn::core {

namespace {

/// Runs `fn` when the enclosing scope exits (any return path).
template <typename F>
struct ScopeExit {
  F fn;
  ~ScopeExit() { fn(); }
};

}  // namespace

std::string PipelineReport::ToString() const {
  std::string out;
  char buf[256];
  for (const StageTiming& stage : stages) {
    std::snprintf(buf, sizeof(buf), "stage %-24s %8.3fs  [%s]\n",
                  stage.name.c_str(), stage.seconds,
                  stage.ops.ToString().c_str());
    out += buf;
  }
  if (resumed_stages > 0) {
    std::snprintf(buf, sizeof(buf), "resumed %d stage(s) from snapshot\n",
                  resumed_stages);
    out += buf;
  }
  if (!status.ok()) {
    out += "run stopped: " + status.ToString() + "\n";
    return out;
  }
  std::snprintf(buf, sizeof(buf),
                "edges %lld -> %lld, feature cols %lld -> %lld\n",
                static_cast<long long>(edges_before),
                static_cast<long long>(edges_after),
                static_cast<long long>(feature_cols_before),
                static_cast<long long>(feature_cols_after));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "model %-16s val %.4f test %.4f epochs %d (%.3fs)\n",
                model.name.c_str(), model.report.best_val_accuracy,
                model.report.test_accuracy, model.report.epochs_run,
                model.report.train_seconds);
  out += buf;
  out += "ops: " + model.ops.ToString() + "\n";
  return out;
}

Pipeline& Pipeline::AddEdit(std::unique_ptr<EditStage> stage) {
  SGNN_CHECK(stage != nullptr);
  edits_.push_back(std::move(stage));
  return *this;
}

Pipeline& Pipeline::AddAnalytics(std::unique_ptr<AnalyticsStage> stage) {
  SGNN_CHECK(stage != nullptr);
  analytics_.push_back(std::move(stage));
  return *this;
}

Pipeline& Pipeline::SetModel(std::string name, ModelFn model) {
  SGNN_CHECK(model != nullptr);
  model_name_ = std::move(name);
  model_ = std::move(model);
  return *this;
}

PipelineReport Pipeline::Run(const Dataset& dataset,
                             const nn::TrainConfig& config) const {
  return Run(dataset, config, RunContext());
}

uint64_t Pipeline::Signature() const {
  std::vector<std::string> names;
  names.reserve(edits_.size() + analytics_.size());
  for (const auto& stage : edits_) names.push_back("edit:" + stage->name());
  for (const auto& stage : analytics_) {
    names.push_back("analytics:" + stage->name());
  }
  return PipelineSignature(names, model_name_);
}

PipelineReport Pipeline::Run(const Dataset& dataset,
                             const nn::TrainConfig& config,
                             const RunContext& ctx) const {
  SGNN_CHECK(model_ != nullptr);
  // Peak residency is a monotone per-thread high-water mark; re-base it to
  // the current residency so this run's per-stage peaks are run-local and
  // reproducible regardless of what ran on this thread before — the
  // property the byte-identical deterministic exports pin.
  common::GlobalCounters().RebasePeaks();
  // Parallel substrate: apply the requested worker count, optionally
  // mirror the run's tracer into par, and export the run's section/shard
  // deltas on exit. Sections and shards are pure functions of the workload
  // (deterministic gauges); the worker count is configuration (volatile).
  if (ctx.num_threads > 0) par::SetThreads(ctx.num_threads);
  if (ctx.simd != 0) simd::SetEnabled(ctx.simd > 0);
  obs::Tracer* prev_par_tracer =
      (ctx.trace_parallel && ctx.tracer != nullptr) ? par::SetTracer(ctx.tracer)
                                                    : nullptr;
  const par::ParStats par_before = par::Stats();
  const common::OpCounters run_counters_before = common::GlobalCounters();
  ScopeExit par_scope{[&] {
    if (ctx.trace_parallel && ctx.tracer != nullptr) {
      par::SetTracer(prev_par_tracer);
    }
    if (ctx.metrics != nullptr) {
      const par::ParStats par_after = par::Stats();
      ctx.metrics
          ->GetGauge("sgnn_par_workers",
                     "Configured par worker count at run exit.",
                     /*labels=*/{}, obs::kVolatile)
          ->Set(static_cast<double>(par::NumThreads()));
      ctx.metrics
          ->GetGauge("sgnn_par_sections",
                     "Parallel sections executed by the latest run.")
          ->Set(static_cast<double>(par_after.sections - par_before.sections));
      ctx.metrics
          ->GetGauge("sgnn_par_shards",
                     "Parallel shards executed by the latest run.")
          ->Set(static_cast<double>(par_after.shards - par_before.shards));
      // Kernel byte accounting: billed by the microkernel call sites as a
      // pure function of the workload, so these are deterministic across
      // thread counts and simd backends. ParallelFor re-bills shard deltas
      // to this thread, so the calling thread's delta covers the whole run.
      const common::OpCounters run_delta = common::OpCounters::Delta(
          run_counters_before, common::GlobalCounters());
      ctx.metrics
          ->GetGauge("sgnn_kernel_bytes_read",
                     "Logical bytes read by kernels during the latest run.")
          ->Set(static_cast<double>(run_delta.bytes_read));
      ctx.metrics
          ->GetGauge("sgnn_kernel_bytes_written",
                     "Logical bytes written by kernels during the latest run.")
          ->Set(static_cast<double>(run_delta.bytes_written));
    }
  }};

  obs::TraceSpan run_span =
      obs::StartSpan(ctx.tracer, "pipeline.run", "pipeline");
  if (ctx.metrics != nullptr) {
    ctx.metrics
        ->GetCounter("sgnn_pipeline_runs_total", "Pipeline runs started.")
        ->Increment();
  }

  PipelineReport report;
  report.edges_before = dataset.graph.num_edges();
  report.feature_cols_before = dataset.features.cols();

  graph::CsrGraph graph = dataset.graph;
  tensor::Matrix features = dataset.features;

  // Publishes one completed report row into the registry: the row and the
  // `sgnn_pipeline_stage_*` series carry the same values, so the report is
  // a view over what a scraper sees. Data-movement gauges are pure
  // functions of the seeded workload; seconds are wall time and therefore
  // volatile (excluded from deterministic exports).
  auto publish_stage = [&](const StageTiming& row) {
    if (ctx.metrics == nullptr) return;
    const obs::Labels labels = {{"stage", row.name}};
    ctx.metrics
        ->GetCounter("sgnn_pipeline_stage_runs_total",
                     "Completed executions per pipeline stage.", labels)
        ->Increment();
    ctx.metrics->SetOpCounterGauges(
        "sgnn_pipeline_stage",
        "Data-movement delta of the stage's latest execution.", labels,
        row.ops);
    ctx.metrics
        ->GetGauge("sgnn_pipeline_stage_seconds",
                   "Wall-clock seconds of the stage's latest execution.",
                   labels, obs::kVolatile)
        ->Set(row.seconds);
  };
  auto deadline_abort = [&](const std::string& next) -> bool {
    if (!ctx.deadline.expired()) return false;
    if (ctx.metrics != nullptr) {
      ctx.metrics
          ->GetCounter("sgnn_pipeline_deadline_aborts_total",
                       "Pipeline runs stopped by an expired deadline.",
                       /*labels=*/{}, obs::kVolatile)
          ->Increment();
    }
    report.status = common::Status::DeadlineExceeded(
        "pipeline deadline expired before " + next);
    return true;
  };

  const bool checkpointing = !ctx.checkpoint_path.empty();
  const uint64_t signature = checkpointing ? Signature() : 0;
  int start_stage = 0;
  if (checkpointing && ctx.resume) {
    obs::TraceSpan restore_span =
        obs::StartSpan(ctx.tracer, "checkpoint.restore", "checkpoint");
    auto snapshot = LoadSnapshot(ctx.checkpoint_path, signature);
    if (snapshot.ok()) {
      PipelineSnapshot snap = std::move(snapshot).value();
      graph = std::move(snap.graph);
      features = std::move(snap.features);
      report.stages = std::move(snap.stages);
      report.edges_before = snap.edges_before;
      report.feature_cols_before = snap.feature_cols_before;
      start_stage = snap.stages_done;
      report.resumed_stages = snap.stages_done;
      if (ctx.metrics != nullptr) {
        ctx.metrics
            ->GetCounter("sgnn_pipeline_checkpoint_restores_total",
                         "Successful snapshot restores.")
            ->Increment();
        ctx.metrics
            ->GetGauge("sgnn_pipeline_resumed_stages",
                       "Stages restored from a snapshot by the latest run.")
            ->Set(static_cast<double>(snap.stages_done));
      }
    }
    // Missing, corrupt, or foreign snapshot: fall through to a clean run.
  }

  // Debug mode: run the invariant suite over the current graph/features
  // and bill the scan as its own `validate:<label>` stage so reports show
  // exactly what the checking costs. Validation reads but never writes, so
  // enabling it cannot change any downstream result.
  const ValidationStage validator =
      ctx.stage_validator ? ctx.stage_validator
                          : ValidationStage(analysis::ValidateStageOutput);
  auto validate = [&](const std::string& label) -> common::Status {
    obs::TraceSpan span =
        obs::StartSpan(ctx.tracer, "validate:" + label, "validate");
    common::ScopedCounterDelta counters;
    common::WallTimer timer;
    common::Status status = validator(label, graph, features);
    report.stages.push_back(
        {"validate:" + label, timer.Seconds(), counters.Delta()});
    publish_stage(report.stages.back());
    return status;
  };
  if (ctx.validate_stages) {
    report.status = validate(start_stage > 0 ? "resume" : "input");
    if (!report.status.ok()) return report;
  }

  // Checkpoint after stage `stage_index`, then let an armed injector
  // simulate a crash at that boundary. Snapshot write failures are
  // best-effort (the run itself is fine without them).
  auto after_stage = [&](int stage_index) -> common::Status {
    if (checkpointing) {
      obs::TraceSpan span =
          obs::StartSpan(ctx.tracer, "checkpoint.save", "checkpoint");
      PipelineSnapshot snap;
      snap.signature = signature;
      snap.stages_done = stage_index + 1;
      snap.stages = report.stages;
      snap.edges_before = report.edges_before;
      snap.feature_cols_before = report.feature_cols_before;
      snap.graph = graph;
      snap.features = features;
      if (SaveSnapshot(snap, ctx.checkpoint_path).ok() &&
          ctx.metrics != nullptr) {
        ctx.metrics
            ->GetCounter("sgnn_pipeline_checkpoint_saves_total",
                         "Successful snapshot writes.")
            ->Increment();
      }
    }
    if (ctx.faults != nullptr &&
        ctx.faults->ShouldFail("pipeline.after_stage",
                               static_cast<uint64_t>(stage_index))) {
      return common::Status::Aborted("injected crash after stage " +
                                     report.stages.back().name);
    }
    return common::Status::OK();
  };

  int stage_index = 0;
  for (const auto& stage : edits_) {
    if (stage_index++ < start_stage) continue;
    if (deadline_abort("stage " + stage->name())) return report;
    {
      obs::TraceSpan span = obs::StartSpan(ctx.tracer, stage->name(), "stage");
      common::ScopedCounterDelta counters;
      common::WallTimer timer;
      graph = stage->Edit(graph, features);
      report.stages.push_back(
          {stage->name(), timer.Seconds(), counters.Delta()});
    }
    publish_stage(report.stages.back());
    if (ctx.validate_stages) {
      report.status = validate(stage->name());
      if (!report.status.ok()) return report;
    }
    report.status = after_stage(stage_index - 1);
    if (!report.status.ok()) return report;
  }
  for (const auto& stage : analytics_) {
    if (stage_index++ < start_stage) continue;
    if (deadline_abort("stage " + stage->name())) return report;
    {
      obs::TraceSpan span = obs::StartSpan(ctx.tracer, stage->name(), "stage");
      common::ScopedCounterDelta counters;
      common::WallTimer timer;
      features = stage->Augment(graph, features);
      report.stages.push_back(
          {stage->name(), timer.Seconds(), counters.Delta()});
    }
    publish_stage(report.stages.back());
    if (ctx.validate_stages) {
      report.status = validate(stage->name());
      if (!report.status.ok()) return report;
    }
    report.status = after_stage(stage_index - 1);
    if (!report.status.ok()) return report;
  }
  report.edges_after = graph.num_edges();
  report.feature_cols_after = features.cols();

  if (deadline_abort("train:" + model_name_)) return report;
  {
    obs::TraceSpan span =
        obs::StartSpan(ctx.tracer, "train:" + model_name_, "stage");
    common::ScopedCounterDelta counters;
    common::WallTimer timer;
    report.model =
        model_(graph, features, dataset.labels, dataset.splits, config);
    report.stages.push_back(
        {"train:" + model_name_, timer.Seconds(), counters.Delta()});
  }
  publish_stage(report.stages.back());
  return report;
}

}  // namespace sgnn::core
