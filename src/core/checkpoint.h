#ifndef SGNN_CORE_CHECKPOINT_H_
#define SGNN_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/pipeline.h"
#include "graph/csr_graph.h"
#include "tensor/matrix.h"

namespace sgnn::core {

/// Pipeline stage checkpointing (the preprocessing side of the robustness
/// story): after each edit/analytics stage the pipeline can persist its
/// intermediate state — the current graph, the current feature matrix, and
/// the timings of the stages already done — to a single binary snapshot
/// file. A crashed run then resumes from the last completed stage instead
/// of recomputing hours of preprocessing.
///
/// Integrity and compatibility:
///  - the whole payload is covered by a trailing CRC-32, so a torn or
///    bit-rotted snapshot is *detected* and reported (the caller falls back
///    to a from-scratch run) rather than silently resumed;
///  - a `signature` — a hash of the pipeline's stage-name sequence and
///    model name — is embedded, so a snapshot from a *different* pipeline
///    is rejected even when structurally well-formed;
///  - floats are stored as raw bits, so a resumed run continues from
///    bit-identical state and produces bit-identical results.
struct PipelineSnapshot {
  uint64_t signature = 0;  ///< `PipelineSignature` of the owning pipeline.
  /// Number of completed (edit + analytics) stages; resume skips this many.
  int32_t stages_done = 0;
  std::vector<StageTiming> stages;  ///< Timings of the completed stages.
  graph::EdgeIndex edges_before = 0;
  int64_t feature_cols_before = 0;
  graph::CsrGraph graph;      ///< Graph state after `stages_done` stages.
  tensor::Matrix features;    ///< Feature state after `stages_done` stages.
};

/// Order-sensitive hash of the pipeline shape (stage names + model name).
/// Two pipelines that would replay the same stage sequence share it.
uint64_t PipelineSignature(const std::vector<std::string>& stage_names,
                           const std::string& model_name);

/// Serialises `snapshot` to `path` (atomically via rename from a `.tmp`
/// sibling, so a crash mid-write never corrupts an older valid snapshot).
SGNN_NODISCARD common::Status SaveSnapshot(const PipelineSnapshot& snapshot,
                            const std::string& path);

/// Loads and validates a snapshot: `kNotFound` when no file exists,
/// `kIOError` when the file is unreadable or fails the CRC / framing
/// checks (corruption), `kFailedPrecondition` when the snapshot belongs to
/// a different pipeline (`expected_signature` mismatch).
SGNN_NODISCARD common::StatusOr<PipelineSnapshot> LoadSnapshot(const std::string& path,
                                                uint64_t expected_signature);

/// Deep-checks a snapshot file beyond the CRC: loads it, then runs the
/// `sgnn::analysis` checkpoint validators (stage bookkeeping, payload graph
/// invariants, feature alignment/finiteness). Use before trusting a
/// snapshot produced by an earlier — possibly crashed — run.
SGNN_NODISCARD common::Status ValidateCheckpointFile(const std::string& path,
                                      uint64_t expected_signature);

}  // namespace sgnn::core

#endif  // SGNN_CORE_CHECKPOINT_H_
