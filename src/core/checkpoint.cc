#include "core/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <type_traits>

#include "analysis/validate.h"
#include "common/crc32.h"

namespace sgnn::core {

using common::Status;
using common::StatusOr;

namespace {

constexpr char kMagic[8] = {'S', 'G', 'N', 'N', 'C', 'K', 'P', 'T'};
constexpr uint32_t kVersion = 1;

// ---- little serialisation helpers over a growable byte buffer ----------

void PutBytes(std::string* buf, const void* data, size_t n) {
  buf->append(static_cast<const char*>(data), n);
}

template <typename T>
void PutPod(std::string* buf, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  PutBytes(buf, &v, sizeof(v));
}

void PutString(std::string* buf, const std::string& s) {
  PutPod<uint32_t>(buf, static_cast<uint32_t>(s.size()));
  PutBytes(buf, s.data(), s.size());
}

/// Bounds-checked forward reader over the loaded snapshot bytes. Every
/// getter reports underrun through `ok`, so a truncated file surfaces as a
/// framing error instead of undefined behaviour.
struct Cursor {
  const char* p;
  size_t left;
  bool ok = true;

  bool Take(void* out, size_t n) {
    if (!ok || n > left) {
      ok = false;
      return false;
    }
    std::memcpy(out, p, n);
    p += n;
    left -= n;
    return true;
  }

  template <typename T>
  T Pod() {
    T v{};
    Take(&v, sizeof(v));
    return v;
  }

  std::string Str() {
    const uint32_t n = Pod<uint32_t>();
    if (!ok || n > left) {
      ok = false;
      return {};
    }
    std::string s(p, n);
    p += n;
    left -= n;
    return s;
  }
};

std::string Serialize(const PipelineSnapshot& snap) {
  std::string buf;
  PutBytes(&buf, kMagic, sizeof(kMagic));
  PutPod<uint32_t>(&buf, kVersion);
  PutPod<uint64_t>(&buf, snap.signature);
  PutPod<int32_t>(&buf, snap.stages_done);

  PutPod<uint32_t>(&buf, static_cast<uint32_t>(snap.stages.size()));
  for (const StageTiming& stage : snap.stages) {
    PutString(&buf, stage.name);
    PutPod<double>(&buf, stage.seconds);
    PutPod<uint64_t>(&buf, stage.ops.edges_touched);
    PutPod<uint64_t>(&buf, stage.ops.floats_moved);
    PutPod<uint64_t>(&buf, stage.ops.peak_resident_floats);
    PutPod<uint64_t>(&buf, stage.ops.resident_floats);
  }

  PutPod<int64_t>(&buf, snap.edges_before);
  PutPod<int64_t>(&buf, snap.feature_cols_before);

  PutPod<uint32_t>(&buf, snap.graph.num_nodes());
  const std::vector<graph::Edge> edges = snap.graph.ToEdges();
  PutPod<uint64_t>(&buf, static_cast<uint64_t>(edges.size()));
  for (const graph::Edge& e : edges) {
    PutPod<uint32_t>(&buf, e.src);
    PutPod<uint32_t>(&buf, e.dst);
    PutPod<float>(&buf, e.weight);  // Raw bits: resume is bit-identical.
  }

  PutPod<int64_t>(&buf, snap.features.rows());
  PutPod<int64_t>(&buf, snap.features.cols());
  PutBytes(&buf, snap.features.data(),
           static_cast<size_t>(snap.features.size()) * sizeof(float));
  return buf;
}

Status Corrupt(const std::string& path, const std::string& why) {
  return Status::IOError("corrupt snapshot " + path + ": " + why);
}

}  // namespace

uint64_t PipelineSignature(const std::vector<std::string>& stage_names,
                           const std::string& model_name) {
  // FNV-1a over the framed name sequence; framing (length prefix) keeps
  // {"ab","c"} distinct from {"a","bc"}.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const std::string& s) {
    h = (h ^ s.size()) * 1099511628211ull;
    for (unsigned char c : s) h = (h ^ c) * 1099511628211ull;
  };
  for (const std::string& name : stage_names) mix(name);
  mix(model_name);
  return h;
}

Status SaveSnapshot(const PipelineSnapshot& snapshot,
                    const std::string& path) {
  std::string payload = Serialize(snapshot);
  const uint32_t crc = common::Crc32(payload.data(), payload.size());

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open for write: " + tmp);
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    if (!out) return Status::IOError("write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

StatusOr<PipelineSnapshot> LoadSnapshot(const std::string& path,
                                        uint64_t expected_signature) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no snapshot at " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::IOError("read failed: " + path);
  }
  if (bytes.size() < sizeof(kMagic) + sizeof(uint32_t)) {
    return Corrupt(path, "truncated");
  }

  const size_t payload_size = bytes.size() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + payload_size, sizeof(stored_crc));
  if (common::Crc32(bytes.data(), payload_size) != stored_crc) {
    return Corrupt(path, "CRC mismatch");
  }

  Cursor cur{bytes.data(), payload_size};
  char magic[sizeof(kMagic)];
  cur.Take(magic, sizeof(magic));
  if (!cur.ok || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt(path, "bad magic");
  }
  if (cur.Pod<uint32_t>() != kVersion) {
    return Corrupt(path, "unsupported version");
  }

  PipelineSnapshot snap;
  snap.signature = cur.Pod<uint64_t>();
  if (cur.ok && snap.signature != expected_signature) {
    return Status::FailedPrecondition(
        "snapshot " + path + " belongs to a different pipeline");
  }
  snap.stages_done = cur.Pod<int32_t>();

  const uint32_t num_stages = cur.Pod<uint32_t>();
  for (uint32_t i = 0; cur.ok && i < num_stages; ++i) {
    StageTiming stage;
    stage.name = cur.Str();
    stage.seconds = cur.Pod<double>();
    stage.ops.edges_touched = cur.Pod<uint64_t>();
    stage.ops.floats_moved = cur.Pod<uint64_t>();
    stage.ops.peak_resident_floats = cur.Pod<uint64_t>();
    stage.ops.resident_floats = cur.Pod<uint64_t>();
    snap.stages.push_back(std::move(stage));
  }

  snap.edges_before = cur.Pod<int64_t>();
  snap.feature_cols_before = cur.Pod<int64_t>();

  const uint32_t num_nodes = cur.Pod<uint32_t>();
  const uint64_t num_edges = cur.Pod<uint64_t>();
  constexpr size_t kEdgeBytes = 2 * sizeof(uint32_t) + sizeof(float);
  if (!cur.ok || num_edges > cur.left / kEdgeBytes) {
    return Corrupt(path, "bad edge count");
  }
  std::vector<graph::Edge> edges;
  edges.reserve(num_edges);
  for (uint64_t i = 0; cur.ok && i < num_edges; ++i) {
    graph::Edge e;
    e.src = cur.Pod<uint32_t>();
    e.dst = cur.Pod<uint32_t>();
    e.weight = cur.Pod<float>();
    if (e.src >= num_nodes || e.dst >= num_nodes) {
      return Corrupt(path, "edge endpoint out of range");
    }
    edges.push_back(e);
  }

  const int64_t rows = cur.Pod<int64_t>();
  const int64_t cols = cur.Pod<int64_t>();
  if (!cur.ok || rows < 0 || cols < 0 ||
      static_cast<uint64_t>(rows) * static_cast<uint64_t>(cols) *
              sizeof(float) !=
          cur.left) {
    return Corrupt(path, "bad feature dimensions");
  }
  snap.features = tensor::Matrix(rows, cols);
  cur.Take(snap.features.data(),
           static_cast<size_t>(snap.features.size()) * sizeof(float));
  if (!cur.ok) return Corrupt(path, "truncated payload");

  snap.graph = graph::CsrGraph::FromEdges(num_nodes, std::move(edges));
  if (snap.stages_done < 0 ||
      static_cast<size_t>(snap.stages_done) > snap.stages.size()) {
    return Corrupt(path, "inconsistent stage count");
  }
  return snap;
}

Status ValidateCheckpointFile(const std::string& path,
                              uint64_t expected_signature) {
  auto snapshot = LoadSnapshot(path, expected_signature);
  if (!snapshot.ok()) return snapshot.status();
  return analysis::ValidateCheckpoint(snapshot.value(), expected_signature);
}

}  // namespace sgnn::core
