#ifndef SGNN_CORE_DATASET_IO_H_
#define SGNN_CORE_DATASET_IO_H_

#include <string>

#include "common/status.h"
#include "core/dataset.h"

namespace sgnn::core {

/// Persists a dataset as a directory of text files: `graph.txt` (edge
/// list, see graph::SaveEdgeList), `features.txt`, `labels.txt` and
/// `splits.txt`. The directory must exist.
SGNN_NODISCARD common::Status SaveDataset(const Dataset& dataset, const std::string& dir);

/// Loads a dataset written by `SaveDataset`. Validates cross-file
/// consistency (row counts, label range, split disjointness).
SGNN_NODISCARD common::StatusOr<Dataset> LoadDataset(const std::string& dir);

}  // namespace sgnn::core

#endif  // SGNN_CORE_DATASET_IO_H_
