#include "core/dataset_io.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "graph/io.h"

namespace sgnn::core {

using common::Status;
using common::StatusOr;

namespace {

Status WriteFeatures(const tensor::Matrix& features, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << features.rows() << ' ' << features.cols() << '\n';
  for (int64_t r = 0; r < features.rows(); ++r) {
    auto row = features.Row(r);
    for (int64_t c = 0; c < features.cols(); ++c) {
      out << row[c] << (c + 1 < features.cols() ? ' ' : '\n');
    }
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<tensor::Matrix> ReadFeatures(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  int64_t rows = 0, cols = 0;
  if (!(in >> rows >> cols) || rows < 0 || cols < 0) {
    return Status::InvalidArgument("bad features header in " + path);
  }
  tensor::Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    if (!(in >> m.data()[i])) {
      return Status::InvalidArgument("truncated features in " + path);
    }
  }
  return m;
}

Status WriteLabels(const std::vector<int>& labels, int num_classes,
                   const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << labels.size() << ' ' << num_classes << '\n';
  for (int label : labels) out << label << '\n';
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status WriteSplits(const models::NodeSplits& splits, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  auto write_part = [&out](const char* name,
                           const std::vector<graph::NodeId>& part) {
    out << name << ' ' << part.size();
    for (graph::NodeId u : part) out << ' ' << u;
    out << '\n';
  };
  write_part("train", splits.train);
  write_part("val", splits.val);
  write_part("test", splits.test);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<std::vector<graph::NodeId>> ReadPart(std::istream& in,
                                              const std::string& expected) {
  std::string name;
  size_t count = 0;
  if (!(in >> name >> count) || name != expected) {
    return Status::InvalidArgument("bad splits section, expected " + expected);
  }
  std::vector<graph::NodeId> part(count);
  for (size_t i = 0; i < count; ++i) {
    uint64_t v = 0;
    if (!(in >> v)) {
      return Status::InvalidArgument("truncated splits section " + expected);
    }
    part[i] = static_cast<graph::NodeId>(v);
  }
  return part;
}

}  // namespace

Status SaveDataset(const Dataset& dataset, const std::string& dir) {
  SGNN_RETURN_IF_ERROR(graph::SaveEdgeList(dataset.graph, dir + "/graph.txt"));
  SGNN_RETURN_IF_ERROR(WriteFeatures(dataset.features, dir + "/features.txt"));
  SGNN_RETURN_IF_ERROR(
      WriteLabels(dataset.labels, dataset.num_classes, dir + "/labels.txt"));
  return WriteSplits(dataset.splits, dir + "/splits.txt");
}

StatusOr<Dataset> LoadDataset(const std::string& dir) {
  Dataset dataset;

  auto graph = graph::LoadEdgeList(dir + "/graph.txt");
  if (!graph.ok()) return graph.status();
  dataset.graph = std::move(graph).value();

  auto features = ReadFeatures(dir + "/features.txt");
  if (!features.ok()) return features.status();
  dataset.features = std::move(features).value();

  {
    const std::string path = dir + "/labels.txt";
    std::ifstream in(path);
    if (!in) return Status::IOError("cannot open for read: " + path);
    size_t count = 0;
    if (!(in >> count >> dataset.num_classes) || dataset.num_classes <= 0) {
      return Status::InvalidArgument("bad labels header in " + path);
    }
    dataset.labels.resize(count);
    for (size_t i = 0; i < count; ++i) {
      if (!(in >> dataset.labels[i])) {
        return Status::InvalidArgument("truncated labels in " + path);
      }
      if (dataset.labels[i] < 0 || dataset.labels[i] >= dataset.num_classes) {
        return Status::InvalidArgument("label out of range in " + path);
      }
    }
  }

  {
    const std::string path = dir + "/splits.txt";
    std::ifstream in(path);
    if (!in) return Status::IOError("cannot open for read: " + path);
    auto train = ReadPart(in, "train");
    if (!train.ok()) return train.status();
    auto val = ReadPart(in, "val");
    if (!val.ok()) return val.status();
    auto test = ReadPart(in, "test");
    if (!test.ok()) return test.status();
    dataset.splits.train = std::move(train).value();
    dataset.splits.val = std::move(val).value();
    dataset.splits.test = std::move(test).value();
  }

  // Cross-file consistency.
  const auto n = static_cast<int64_t>(dataset.graph.num_nodes());
  if (dataset.features.rows() != n) {
    return Status::InvalidArgument("features row count != graph nodes");
  }
  if (static_cast<int64_t>(dataset.labels.size()) != n) {
    return Status::InvalidArgument("label count != graph nodes");
  }
  std::vector<bool> seen(static_cast<size_t>(n), false);
  for (const auto* part :
       {&dataset.splits.train, &dataset.splits.val, &dataset.splits.test}) {
    for (graph::NodeId u : *part) {
      if (static_cast<int64_t>(u) >= n) {
        return Status::InvalidArgument("split node id out of range");
      }
      if (seen[u]) return Status::InvalidArgument("overlapping splits");
      seen[u] = true;
    }
  }
  return dataset;
}

}  // namespace sgnn::core
