#ifndef SGNN_CORE_STAGES_H_
#define SGNN_CORE_STAGES_H_

#include <memory>

#include "core/pipeline.h"
#include "ppr/feature_propagation.h"
#include "similarity/rewiring.h"
#include "spectral/embeddings.h"

namespace sgnn::core {

/// Ready-made pipeline stages wrapping the technique modules, so callers
/// compose Figure-1 pipelines without writing subclasses.

/// Uniform edge sparsification (editing / sparsification).
std::unique_ptr<EditStage> MakeUniformSparsifyStage(double keep_prob,
                                                    uint64_t seed);

/// Effective-resistance-proxy spectral sparsification.
std::unique_ptr<EditStage> MakeSpectralSparsifyStage(int64_t num_samples,
                                                     uint64_t seed);

/// DHGR-style similarity rewiring (analytics-informed editing).
std::unique_ptr<EditStage> MakeRewiringStage(
    const similarity::RewiringConfig& config);

/// LD2-style combined spectral embeddings (analytics / spectral).
std::unique_ptr<AnalyticsStage> MakeCombinedEmbeddingStage(
    const spectral::CombinedEmbeddingConfig& config);

/// APPNP/PPR feature smoothing (analytics / decoupled propagation).
std::unique_ptr<AnalyticsStage> MakePprSmoothingStage(double alpha, int hops);

/// Implicit-equilibrium embeddings (analytics / graph algebras).
std::unique_ptr<AnalyticsStage> MakeImplicitEmbeddingStage(double gamma,
                                                           double tol,
                                                           int max_iters);

}  // namespace sgnn::core

#endif  // SGNN_CORE_STAGES_H_
