#ifndef SGNN_CORE_REGISTRY_H_
#define SGNN_CORE_REGISTRY_H_

#include <functional>
#include <string>
#include <vector>

#include "core/dataset.h"

namespace sgnn::core {

/// A technique in the paper's Figure-1 taxonomy, with a runnable demo:
/// calling `demo` exercises the implementing module on a dataset and
/// returns a one-line summary statistic, so the taxonomy is executable,
/// not just documentation (experiment E1).
struct Technique {
  std::string name;           ///< e.g. "hub-labeling".
  std::string figure1_path;   ///< e.g. "analytics/node-pair-similarity".
  std::string description;    ///< What it does and which papers it mirrors.
  std::function<std::string(const Dataset&)> demo;
};

/// All registered techniques, in Figure-1 order (classic methods, then
/// graph analytics, then graph editing).
const std::vector<Technique>& TechniqueRegistry();

/// Lookup by name; aborts on unknown names (programming error).
const Technique& FindTechnique(const std::string& name);

}  // namespace sgnn::core

#endif  // SGNN_CORE_REGISTRY_H_
