#ifndef SGNN_CORE_DISTRIBUTED_SIM_H_
#define SGNN_CORE_DISTRIBUTED_SIM_H_

#include <vector>

#include "graph/csr_graph.h"
#include "partition/partition.h"

namespace sgnn::core {

/// Distributed full-graph training simulator (§3.4.3 "Scalable Training
/// Schemes and Systems"). Workers hold one partition each; an epoch is
/// one synchronous round: every worker processes its local edges, then
/// exchanges the boundary (halo) node states its neighbours need. The
/// wire is simulated with an alpha-beta cost model — the quantities the
/// tutorial's distributed discussion (and systems like SANCUS/ByteGNN)
/// optimise are exactly the partition-induced compute balance and
/// communication volume this reports.
/// Failure/straggler model layered on the BSP round (the robustness side
/// of the distributed-training story: SANCUS/ByteGNN-class systems budget
/// for stragglers and worker restarts, not just the happy path). All
/// expectations are closed-form, so the simulator stays deterministic.
struct FailureModel {
  /// Probability any given worker straggles in a round (slow NIC, GC
  /// pause, co-tenant burst...).
  double straggler_prob = 0.0;
  /// A straggling worker's compute runs this many times slower (>= 1).
  double straggler_factor = 1.0;
  /// Per-worker, per-epoch probability of a crash requiring restart.
  double worker_failure_prob = 0.0;
  /// Wall time to write one cluster-wide checkpoint.
  double checkpoint_write_seconds = 0.0;
  /// Restart/recovery overhead after a failure (re-spawn, reload, rewind
  /// to the last checkpoint; the lost recompute is modelled separately).
  double restart_seconds = 0.0;

  bool active() const {
    return straggler_prob > 0.0 || worker_failure_prob > 0.0;
  }
};

struct DistributedCostModel {
  double seconds_per_edge = 2e-8;        ///< Aggregation cost per edge.
  double seconds_per_value = 5e-9;       ///< Wire cost per replicated scalar.
  double round_latency_seconds = 5e-4;   ///< Fixed per-sync-round latency.
  FailureModel failure;                  ///< Benign by default.
};

struct WorkerLoad {
  int64_t local_edges = 0;     ///< Edges whose source lives on the worker.
  int64_t halo_values = 0;     ///< Remote scalars the worker must receive.
};

/// Checkpoint/restart economics for a run under a failure model:
/// mean time between failures, the Young-approximation optimal
/// checkpoint interval, and the resulting expected slowdown.
struct CheckpointPlan {
  double mtbf_seconds = 0.0;              ///< Infinity encoded as 0 when p=0.
  double optimal_interval_seconds = 0.0;  ///< tau* = sqrt(2*C*MTBF); 0 = n/a.
  /// Expected time inflation at tau*: 1 + C/tau + (tau/2 + R)/MTBF.
  double expected_overhead = 1.0;
};

struct DistributedReport {
  int num_workers = 0;
  std::vector<WorkerLoad> workers;
  double compute_seconds_max = 0.0;  ///< Slowest worker's compute.
  double compute_seconds_avg = 0.0;
  double comm_seconds = 0.0;         ///< Latency + max receive volume.
  double epoch_seconds = 0.0;        ///< max-compute + comm (BSP round).
  double speedup = 0.0;              ///< Single-worker epoch / this epoch.
  double replication_factor = 0.0;   ///< (local + halo nodes) / n.
  /// Expected extra seconds per epoch lost to stragglers (0 when the
  /// failure model is benign).
  double straggler_seconds = 0.0;
  /// Checkpoint/restart plan under the failure model; `expected_overhead`
  /// is 1 and intervals 0 when no failures are modelled.
  CheckpointPlan checkpoint;
  /// epoch_seconds + stragglers, inflated by the checkpoint overhead:
  /// what an epoch actually costs once failures are priced in.
  double expected_epoch_seconds = 0.0;
};

/// Simulates one synchronous epoch of full-graph message passing with
/// `feature_dim`-wide node states under the given partition.
DistributedReport SimulateDistributedEpoch(const graph::CsrGraph& graph,
                                           const partition::Partition& parts,
                                           int64_t feature_dim,
                                           const DistributedCostModel& cost);

/// Expected time-inflation factor of checkpointing every `interval_seconds`
/// under mean time between failures `mtbf_seconds` (first-order model:
/// 1 + C/tau + (tau/2 + R)/M — checkpoint cost amortised over the
/// interval, plus expected half-interval recompute and restart per
/// failure). `mtbf_seconds <= 0` means no failures (overhead from
/// checkpoint writes only). Exposed so benchmarks can sweep the interval
/// against the closed-form optimum.
double CheckpointOverhead(double interval_seconds, double mtbf_seconds,
                          double checkpoint_write_seconds,
                          double restart_seconds);

/// Closed-form plan for a run whose failure-free epoch takes
/// `epoch_seconds`: MTBF from the per-worker, per-epoch failure
/// probability, Young's optimal interval tau* = sqrt(2*C*MTBF), and the
/// overhead at tau*.
CheckpointPlan PlanCheckpoints(double epoch_seconds, int num_workers,
                               const FailureModel& failure);

}  // namespace sgnn::core

#endif  // SGNN_CORE_DISTRIBUTED_SIM_H_
