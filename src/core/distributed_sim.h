#ifndef SGNN_CORE_DISTRIBUTED_SIM_H_
#define SGNN_CORE_DISTRIBUTED_SIM_H_

#include <vector>

#include "graph/csr_graph.h"
#include "partition/partition.h"

namespace sgnn::core {

/// Distributed full-graph training simulator (§3.4.3 "Scalable Training
/// Schemes and Systems"). Workers hold one partition each; an epoch is
/// one synchronous round: every worker processes its local edges, then
/// exchanges the boundary (halo) node states its neighbours need. The
/// wire is simulated with an alpha-beta cost model — the quantities the
/// tutorial's distributed discussion (and systems like SANCUS/ByteGNN)
/// optimise are exactly the partition-induced compute balance and
/// communication volume this reports.
struct DistributedCostModel {
  double seconds_per_edge = 2e-8;        ///< Aggregation cost per edge.
  double seconds_per_value = 5e-9;       ///< Wire cost per replicated scalar.
  double round_latency_seconds = 5e-4;   ///< Fixed per-sync-round latency.
};

struct WorkerLoad {
  int64_t local_edges = 0;     ///< Edges whose source lives on the worker.
  int64_t halo_values = 0;     ///< Remote scalars the worker must receive.
};

struct DistributedReport {
  int num_workers = 0;
  std::vector<WorkerLoad> workers;
  double compute_seconds_max = 0.0;  ///< Slowest worker's compute.
  double compute_seconds_avg = 0.0;
  double comm_seconds = 0.0;         ///< Latency + max receive volume.
  double epoch_seconds = 0.0;        ///< max-compute + comm (BSP round).
  double speedup = 0.0;              ///< Single-worker epoch / this epoch.
  double replication_factor = 0.0;   ///< (local + halo nodes) / n.
};

/// Simulates one synchronous epoch of full-graph message passing with
/// `feature_dim`-wide node states under the given partition.
DistributedReport SimulateDistributedEpoch(const graph::CsrGraph& graph,
                                           const partition::Partition& parts,
                                           int64_t feature_dim,
                                           const DistributedCostModel& cost);

}  // namespace sgnn::core

#endif  // SGNN_CORE_DISTRIBUTED_SIM_H_
