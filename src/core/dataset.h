#ifndef SGNN_CORE_DATASET_H_
#define SGNN_CORE_DATASET_H_

#include <vector>

#include "graph/generators.h"
#include "models/api.h"
#include "tensor/matrix.h"

namespace sgnn::core {

/// A node-classification dataset: the unit every pipeline and benchmark
/// consumes. Stands in for the ogbn/heterophily datasets the tutorial's
/// cited systems evaluate on (see DESIGN.md substitution table).
struct Dataset {
  graph::CsrGraph graph;
  tensor::Matrix features;
  std::vector<int> labels;
  int num_classes = 0;
  models::NodeSplits splits;

  graph::NodeId num_nodes() const { return graph.num_nodes(); }
};

/// Synthetic SBM dataset: graph from `StochasticBlockModel`, features are
/// noisy class prototypes (`feature_dim` >= num_classes; prototype c is
/// the one-hot of c padded with zeros), random splits.
struct SbmDatasetConfig {
  graph::SbmConfig sbm;
  int64_t feature_dim = 16;
  double feature_noise = 0.5;  ///< Gaussian sigma around the prototype.
  double train_frac = 0.6;
  double val_frac = 0.2;
};
Dataset MakeSbmDataset(const SbmDatasetConfig& config, uint64_t seed);

/// Zachary's karate club with degree/one-hot-free features (prototype +
/// noise like the SBM path) — the small smoke-test dataset.
Dataset MakeKarateDataset(double feature_noise, uint64_t seed);

}  // namespace sgnn::core

#endif  // SGNN_CORE_DATASET_H_
