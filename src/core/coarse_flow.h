#ifndef SGNN_CORE_COARSE_FLOW_H_
#define SGNN_CORE_COARSE_FLOW_H_

#include "coarsen/coarsen.h"
#include "core/dataset.h"

namespace sgnn::core {

/// Coarse-train / fine-infer flow (§3.3.4): coarsen the graph, train a GCN
/// on the coarse graph with restricted features and majority labels, then
/// lift the coarse logits back to fine nodes and evaluate on the original
/// splits. The GNN never touches the full graph during training.
struct CoarseTrainResult {
  models::ModelResult model;     ///< Metrics measured on the FINE splits.
  graph::NodeId coarse_nodes = 0;
  double spectral_distortion = 0.0;
};

CoarseTrainResult TrainOnCoarseGraph(const Dataset& dataset,
                                     double target_ratio,
                                     const nn::TrainConfig& config);

}  // namespace sgnn::core

#endif  // SGNN_CORE_COARSE_FLOW_H_
