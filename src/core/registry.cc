#include "core/registry.h"

#include <cstdarg>
#include <cstdio>

#include "algebra/implicit.h"
#include "coarsen/coarsen.h"
#include "common/check.h"
#include "common/timer.h"
#include "core/distributed_sim.h"
#include "graph/dynamic_graph.h"
#include "graph/generators.h"
#include "graph/propagate.h"
#include "models/decoupled.h"
#include "models/graph_transformer.h"
#include "partition/partition.h"
#include "ppr/feature_propagation.h"
#include "ppr/ppr.h"
#include "sampling/historical_cache.h"
#include "sampling/neighbor_sampler.h"
#include "sampling/variance.h"
#include "similarity/hub_labeling.h"
#include "similarity/simrank.h"
#include "sparsify/sparsify.h"
#include "spectral/embeddings.h"
#include "spectral/filters.h"
#include "subgraph/khop.h"
#include "subgraph/walk_store.h"
#include "tensor/ops.h"

namespace sgnn::core {

namespace {

std::string Fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return std::string(buf);
}

std::vector<Technique> BuildRegistry() {
  std::vector<Technique> reg;

  // ------- Classic scalable GNN methods (§3.1.2) -------
  reg.push_back({"graph-partition", "classic/graph-partition",
                 "Multilevel + streaming partitioners for distributed / "
                 "partition-batched training (Cluster-GCN, ByteGNN).",
                 [](const Dataset& d) {
                   auto random = partition::EvaluatePartition(
                       d.graph, partition::RandomPartition(d.graph, 4, 1));
                   auto ml = partition::EvaluatePartition(
                       d.graph, partition::MultilevelPartition(
                                    d.graph, 4, partition::MultilevelConfig{},
                                    1));
                   return Fmt("edge-cut multilevel=%lld random=%lld",
                              static_cast<long long>(ml.edge_cut),
                              static_cast<long long>(random.edge_cut));
                 }});
  reg.push_back({"graph-sampling", "classic/graph-sampling",
                 "Node-/layer-/subgraph-level mini-batch sampling "
                 "(GraphSAGE, FastGCN, GraphSAINT).",
                 [](const Dataset& d) {
                   common::Rng rng(1);
                   std::vector<graph::NodeId> seeds(
                       d.splits.train.begin(),
                       d.splits.train.begin() +
                           std::min<size_t>(16, d.splits.train.size()));
                   std::vector<int> fanouts = {5, 5};
                   auto batch = sampling::SampleNodeWise(d.graph, seeds,
                                                         fanouts, &rng);
                   return Fmt("seeds=%zu sampled_inputs=%zu edges=%lld",
                              seeds.size(), batch.input_nodes().size(),
                              static_cast<long long>(batch.TotalEdges()));
                 }});
  reg.push_back({"decoupled-propagation", "classic/decoupled-propagation",
                 "Propagate-then-train via approximate PPR (APPNP, SGC, "
                 "SCARA).",
                 [](const Dataset& d) {
                   auto push = ppr::ForwardPush(d.graph, 0, 0.15, 1e-4);
                   return Fmt("push edges=%lld of %lld (%.1f%%)",
                              static_cast<long long>(push.edges_touched),
                              static_cast<long long>(d.graph.num_edges()),
                              100.0 * static_cast<double>(push.edges_touched) /
                                  static_cast<double>(d.graph.num_edges()));
                 }});

  // ------- Graph analytics & querying (§3.2) -------
  reg.push_back({"combined-embeddings",
                 "analytics/spectral-embeddings/combined",
                 "Multi-channel low/high-pass decoupled embeddings under "
                 "heterophily (LD2).",
                 [](const Dataset& d) {
                   graph::Propagator prop(
                       d.graph, graph::Normalization::kSymmetric, true);
                   auto z = spectral::CombinedEmbeddings(
                       prop, d.features, spectral::CombinedEmbeddingConfig{});
                   return Fmt("embedding cols %lld -> %lld",
                              static_cast<long long>(d.features.cols()),
                              static_cast<long long>(z.cols()));
                 }});
  reg.push_back({"adaptive-basis", "analytics/spectral-embeddings/adaptive",
                 "Filter bases fitted to arbitrary frequency responses "
                 "(UniFilter, AdaptKry).",
                 [](const Dataset&) {
                   // Band-reject is the hard (non-smooth) target; a
                   // degree-8 universal basis already fits it closely.
                   auto filter = spectral::FitFilter(
                       spectral::PolyBasis::kJacobi, 8,
                       spectral::BandRejectResponse, 64, 1.0, 1.0);
                   double err = 0.0;
                   for (int i = 0; i < 32; ++i) {
                     const double lambda = 2.0 * (i + 0.5) / 32;
                     err += std::fabs(
                         spectral::EvaluateResponse(filter, lambda) -
                         spectral::BandRejectResponse(lambda));
                   }
                   return Fmt("deg-8 Jacobi band-reject fit, mean err=%.4f",
                              err / 32);
                 }});
  reg.push_back({"topology-similarity",
                 "analytics/node-pair-similarity/topology",
                 "Top-k SimRank / cosine rewiring against heterophily "
                 "(SIMGA, DHGR).",
                 [](const Dataset& d) {
                   auto top = similarity::TopKSimRank(d.graph, 0, 0.6, 5,
                                                      1000, 10, 20, 7);
                   int same = 0;
                   for (const auto& [v, s] : top) {
                     same += (d.labels[v] == d.labels[0]);
                   }
                   return Fmt("top-%zu simrank same-class=%d", top.size(),
                              same);
                 }});
  reg.push_back({"hub-labeling", "analytics/node-pair-similarity/hub-label",
                 "2-hop pruned landmark labels for exact SPD queries "
                 "(CFGNN, DHIL-GT).",
                 [](const Dataset& d) {
                   similarity::HubLabeling index(d.graph);
                   return Fmt("label entries=%lld (%.2f per node)",
                              static_cast<long long>(index.TotalLabelEntries()),
                              static_cast<double>(index.TotalLabelEntries()) /
                                  d.graph.num_nodes());
                 }});
  reg.push_back({"matrix-decomposition",
                 "analytics/graph-algebras/decomposition",
                 "Closed-form implicit equilibrium via Neumann series "
                 "(EIGNN).",
                 [](const Dataset& d) {
                   graph::Propagator prop(
                       d.graph, graph::Normalization::kSymmetric, true);
                   algebra::SolveStats stats;
                   algebra::NeumannSolve(prop, d.features, 0.8, 1e-5, 500,
                                         &stats);
                   return Fmt("equilibrium in %d matvecs (residual %.2e)",
                              stats.iterations, stats.final_residual);
                 }});
  reg.push_back({"approximate-iteration",
                 "analytics/graph-algebras/approximate-iteration",
                 "Multiscale implicit aggregation widening the receptive "
                 "field (MGNNI).",
                 [](const Dataset& d) {
                   graph::Propagator prop(
                       d.graph, graph::Normalization::kSymmetric, true);
                   algebra::SolveStats stats;
                   algebra::MultiscaleImplicit(prop, d.features, 0.8, {1, 2},
                                               1e-5, 500, &stats);
                   return Fmt("2-scale solve, %d total matvec rounds",
                              stats.iterations);
                 }});
  reg.push_back({"graph-simplification",
                 "analytics/graph-algebras/simplification",
                 "Coarse-node mini-batching for implicit models on large "
                 "graphs (SEIGNN).",
                 [](const Dataset& d) {
                   auto c = coarsen::HeavyEdgeCoarsen(d.graph, 0.2, 3);
                   graph::Propagator prop(
                       c.coarse, graph::Normalization::kSymmetric, true);
                   auto xc = coarsen::RestrictFeatures(c, d.features);
                   algebra::SolveStats stats;
                   algebra::NeumannSolve(prop, xc, 0.8, 1e-5, 500, &stats);
                   return Fmt("implicit solve on %u coarse nodes (%d iters)",
                              c.num_coarse(), stats.iterations);
                 }});

  // ------- Graph editing (§3.3) -------
  reg.push_back({"sparsify-node-level",
                 "editing/graph-sparsification/node-level",
                 "Feature-oriented / entry-wise propagation pruning "
                 "(SCARA, Unifews).",
                 [](const Dataset& d) {
                   graph::Propagator prop(
                       d.graph, graph::Normalization::kSymmetric, true);
                   ppr::ThresholdedStats stats;
                   ppr::ThresholdedPropagate(prop, d.features, 0.2, 3, 5e-3,
                                             &stats);
                   return Fmt("ops skipped %.1f%%",
                              100.0 * static_cast<double>(stats.ops_skipped) /
                                  static_cast<double>(stats.ops_skipped +
                                                      stats.ops_performed));
                 }});
  reg.push_back({"sparsify-layer-level",
                 "editing/graph-sparsification/layer-level",
                 "Degree-aware propagation pruning distinguishing hubs "
                 "(NIGCN, ATP).",
                 [](const Dataset& d) {
                   sparsify::DegreeAwareStats stats;
                   sparsify::DegreeAwarePrune(d.graph, 16, 8, &stats);
                   return Fmt("hubs=%lld edges %lld -> %lld",
                              static_cast<long long>(stats.hubs),
                              static_cast<long long>(stats.edges_before),
                              static_cast<long long>(stats.edges_after));
                 }});
  reg.push_back({"sparsify-subgraph-level",
                 "editing/graph-sparsification/subgraph-level",
                 "Whole-graph spectral sparsification before decoupled "
                 "training (GAMLP/NAI-style precompute thinning).",
                 [](const Dataset& d) {
                   auto s = sparsify::SpectralSparsify(
                       d.graph, d.graph.num_edges() / 4, 5);
                   return Fmt("edges %lld -> %lld",
                              static_cast<long long>(d.graph.num_edges()),
                              static_cast<long long>(s.num_edges()));
                 }});
  reg.push_back({"sampling-expressiveness",
                 "editing/graph-sampling/expressiveness",
                 "Layer-wise importance sampling bounding layer width "
                 "(FastGCN, PyGNN, ADGNN).",
                 [](const Dataset& d) {
                   common::Rng rng(3);
                   std::vector<graph::NodeId> seeds(
                       d.splits.train.begin(),
                       d.splits.train.begin() +
                           std::min<size_t>(16, d.splits.train.size()));
                   std::vector<int> sizes = {64, 64};
                   auto batch = sampling::SampleLayerWise(d.graph, seeds,
                                                          sizes, &rng);
                   return Fmt("layer widths capped at 64, inputs=%zu",
                              batch.input_nodes().size());
                 }});
  reg.push_back({"sampling-variance", "editing/graph-sampling/variance",
                 "Variance-controlled layer-neighbour sampling (LABOR, "
                 "HDSGNN, LMC).",
                 [](const Dataset& d) {
                   std::vector<graph::NodeId> seeds(
                       d.splits.train.begin(),
                       d.splits.train.begin() +
                           std::min<size_t>(32, d.splits.train.size()));
                   auto nw = sampling::MeasureSamplerVariance(
                       d.graph, d.features, seeds,
                       sampling::SamplerKind::kNodeWise, 5, 20, 9);
                   auto lb = sampling::MeasureSamplerVariance(
                       d.graph, d.features, seeds,
                       sampling::SamplerKind::kLabor, 5, 20, 9);
                   return Fmt("distinct sources: node-wise=%.0f labor=%.0f",
                              nw.avg_distinct_sources,
                              lb.avg_distinct_sources);
                 }});
  reg.push_back({"sampling-device", "editing/graph-sampling/device",
                 "Historical-embedding caching standing in for CPU-GPU "
                 "transfer savings (GIDS, NeutronOrch, DAHA).",
                 [](const Dataset& d) {
                   sampling::HistoricalEmbeddingCache cache(d.num_nodes(), 8);
                   std::vector<float> row(8, 1.0f);
                   for (graph::NodeId u = 0; u < d.num_nodes() / 2; ++u) {
                     cache.Put(u, row, 0);
                   }
                   std::vector<graph::NodeId> all(d.num_nodes());
                   for (graph::NodeId u = 0; u < d.num_nodes(); ++u) all[u] = u;
                   return Fmt("cache hit rate %.2f after warming half",
                              cache.HitRate(all, 1, 10));
                 }});
  reg.push_back({"subgraph-generation",
                 "editing/subgraph-extraction/generation",
                 "Budgeted k-hop ego-net extraction feeding subgraph GNNs "
                 "(G3, TIGER).",
                 [](const Dataset& d) {
                   auto ego = subgraph::ExtractKHop(d.graph, 0, 2, 100);
                   return Fmt("2-hop ego-net: %zu nodes %lld edges",
                              ego.nodes.size(),
                              static_cast<long long>(ego.subgraph.num_edges()));
                 }});
  reg.push_back({"subgraph-storage", "editing/subgraph-extraction/storage",
                 "Deduplicated walk-set storage (SUREL, SUREL+, GENTI).",
                 [](const Dataset& d) {
                   common::Rng rng(11);
                   subgraph::WalkStore store;
                   for (graph::NodeId s = 0; s < std::min<graph::NodeId>(
                                                     8, d.num_nodes());
                        ++s) {
                     store.AddSeed(d.graph, s, 100, 4, &rng);
                   }
                   auto stats = store.Stats();
                   return Fmt("walk slots=%lld distinct nodes=%lld "
                              "(feature dedup %.1fx)",
                              static_cast<long long>(stats.dense_slots),
                              static_cast<long long>(stats.pool_entries),
                              static_cast<double>(stats.dense_slots) /
                                  static_cast<double>(stats.pool_entries));
                 }});
  reg.push_back({"coarsening-structure",
                 "editing/graph-coarsening/structure-based",
                 "Heavy-edge contraction with restrict/lift operators "
                 "(ConvMatch-style).",
                 [](const Dataset& d) {
                   auto c = coarsen::HeavyEdgeCoarsen(d.graph, 0.2, 13);
                   return Fmt("nodes %u -> %u, distortion=%.3f",
                              d.num_nodes(), c.num_coarse(),
                              coarsen::SpectralDistortion(d.graph, c, 4, 1));
                 }});
  reg.push_back({"coarsening-spectral",
                 "editing/graph-coarsening/spectral-based",
                 "Spectrum-preserving condensation; structural-equivalence "
                 "merging is exact for propagation (GDEM, GC-SNTK).",
                 [](const Dataset& d) {
                   // Random graphs have no exact twins, so demonstrate the
                   // lossless merge on a hub fixture, then report the
                   // spectrum-tracking distortion on the dataset graph.
                   auto twins =
                       coarsen::StructuralCoarsen(graph::Star(500));
                   auto c = coarsen::HeavyEdgeCoarsen(d.graph, 0.3, 3);
                   return Fmt("star-500 twins: 501 -> %u nodes; dataset "
                              "0.3-coarsen distortion=%.3f",
                              twins.num_coarse(),
                              coarsen::SpectralDistortion(d.graph, c, 4, 1));
                 }});
  // ------- Future directions (§3.4) — Figure 1's bottom row -------
  reg.push_back({"graph-transformer", "future/large-models",
                 "Anchor-attention graph Transformer with hub-label SPD "
                 "bias and encodings (DHIL-GT; §3.4.1).",
                 [](const Dataset& d) {
                   nn::TrainConfig config;
                   config.epochs = 30;
                   config.hidden_dim = 32;
                   config.lr = 0.01;
                   auto result = models::TrainGraphTransformer(
                       d.graph, d.features, d.labels, d.splits, config);
                   return Fmt("anchor attention, test acc=%.3f",
                              result.report.test_accuracy);
                 }});
  reg.push_back({"label-propagation", "future/data-efficiency",
                 "Feature-free label smoothing: the few-label baseline "
                 "(§3.4.2 data efficiency).",
                 [](const Dataset& d) {
                   auto result = models::TrainLabelProp(
                       d.graph, d.features, d.labels, d.splits,
                       nn::TrainConfig{});
                   return Fmt("zero parameters, test acc=%.3f",
                              result.report.test_accuracy);
                 }});
  reg.push_back({"temporal-walks", "future/data-efficiency",
                 "Timestamped dynamic graph with time-respecting walks "
                 "(GENTI's streaming setting; §3.4.2).",
                 [](const Dataset& d) {
                   graph::DynamicGraph dynamic(d.num_nodes());
                   int64_t t = 0;
                   for (graph::NodeId u = 0; u < d.num_nodes(); ++u) {
                     for (graph::NodeId v : d.graph.Neighbors(u)) {
                       if (u < v) dynamic.AddUndirectedEdge(u, v, ++t);
                     }
                   }
                   common::Rng rng(3);
                   const auto walk = dynamic.TemporalWalk(0, 16, 0, &rng);
                   return Fmt("streamed %lld edges; temporal walk length=%zu",
                              static_cast<long long>(dynamic.num_edges() / 2),
                              walk.size());
                 }});
  reg.push_back({"distributed-simulation", "future/training-systems",
                 "BSP distributed-epoch cost model: compute balance + halo "
                 "exchange (§3.4.3).",
                 [](const Dataset& d) {
                   auto parts = partition::MultilevelPartition(
                       d.graph, 4, partition::MultilevelConfig{}, 1);
                   auto report = SimulateDistributedEpoch(
                       d.graph, parts, 16, DistributedCostModel{});
                   return Fmt("4 workers: speedup=%.2f replication=%.2f",
                              report.speedup, report.replication_factor);
                 }});
  return reg;
}

}  // namespace

const std::vector<Technique>& TechniqueRegistry() {
  static const std::vector<Technique>& registry =
      *new std::vector<Technique>(BuildRegistry());
  return registry;
}

const Technique& FindTechnique(const std::string& name) {
  for (const Technique& t : TechniqueRegistry()) {
    if (t.name == name) return t;
  }
  SGNN_CHECK(false);  // Unknown technique name.
  __builtin_unreachable();
}

}  // namespace sgnn::core
