#include <gtest/gtest.h>

#include <numeric>

#include "coarsen/coarsen.h"
#include "graph/generators.h"
#include "tensor/ops.h"

namespace sgnn::coarsen {
namespace {

using graph::CsrGraph;
using graph::NodeId;
using tensor::Matrix;

void CheckCoarseningInvariants(const Coarsening& c, NodeId fine_n) {
  ASSERT_EQ(c.coarse_of.size(), static_cast<size_t>(fine_n));
  int64_t total = 0;
  for (int64_t s : c.cluster_size) {
    EXPECT_GE(s, 1);
    total += s;
  }
  EXPECT_EQ(total, static_cast<int64_t>(fine_n));
  for (NodeId u = 0; u < fine_n; ++u) {
    EXPECT_LT(c.coarse_of[u], c.num_coarse());
  }
  EXPECT_EQ(c.coarse.num_nodes(), c.num_coarse());
  // Coarse graph has no self loops (intra-cluster edges are dropped).
  for (NodeId a = 0; a < c.coarse.num_nodes(); ++a) {
    EXPECT_FALSE(c.coarse.HasEdge(a, a));
  }
}

class CoarsenRatioSweep : public ::testing::TestWithParam<double> {};

TEST_P(CoarsenRatioSweep, HeavyEdgeReachesTargetRatio) {
  const double ratio = GetParam();
  CsrGraph g = graph::ErdosRenyi(800, 4800, 1);
  Coarsening c = HeavyEdgeCoarsen(g, ratio, 7);
  CheckCoarseningInvariants(c, g.num_nodes());
  // Each matching level at most halves the node count; the result must be
  // at or below target (within one halving) and above ratio/2.
  EXPECT_LE(c.num_coarse(), static_cast<NodeId>(ratio * 800) + 1);
  EXPECT_GE(c.num_coarse(), static_cast<NodeId>(ratio * 800 / 2) - 1);
}

INSTANTIATE_TEST_SUITE_P(Ratios, CoarsenRatioSweep,
                         ::testing::Values(0.5, 0.25, 0.1));

TEST(HeavyEdgeCoarsenTest, PreservesTotalCrossWeight) {
  // Coarse edge weights are the summed fine weights across clusters.
  CsrGraph g = graph::ErdosRenyi(200, 1000, 3);
  Coarsening c = HeavyEdgeCoarsen(g, 0.3, 5);
  double coarse_weight = 0.0;
  for (NodeId a = 0; a < c.coarse.num_nodes(); ++a) {
    coarse_weight += c.coarse.WeightedDegree(a);
  }
  double cross_weight = 0.0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto nbrs = g.Neighbors(u);
    auto ws = g.Weights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (c.coarse_of[u] != c.coarse_of[nbrs[i]]) cross_weight += ws[i];
    }
  }
  EXPECT_NEAR(coarse_weight, cross_weight, 1e-3);
}

TEST(HeavyEdgeCoarsenTest, DisconnectedGraphStalls) {
  CsrGraph g(10);  // No edges: nothing to contract.
  Coarsening c = HeavyEdgeCoarsen(g, 0.1, 1);
  EXPECT_EQ(c.num_coarse(), 10u);
}

TEST(StructuralCoarsenTest, MergesTwinLeaves) {
  // All leaves of a star have the identical neighbour set {hub}.
  CsrGraph g = graph::Star(10);
  Coarsening c = StructuralCoarsen(g);
  CheckCoarseningInvariants(c, 11);
  EXPECT_EQ(c.num_coarse(), 2u);  // Hub + merged leaves.
}

TEST(StructuralCoarsenTest, NoTwinsMeansNoChange) {
  CsrGraph g = graph::Path(6);  // All neighbour sets distinct.
  Coarsening c = StructuralCoarsen(g);
  EXPECT_EQ(c.num_coarse(), 6u);
}

TEST(RestrictFeaturesTest, ClusterMeans) {
  CsrGraph g = graph::Star(3);  // Nodes 0..3; leaves 1,2,3 are twins.
  Coarsening c = StructuralCoarsen(g);
  Matrix x = Matrix::FromRows({{10}, {1}, {2}, {3}});
  Matrix coarse = RestrictFeatures(c, x);
  ASSERT_EQ(coarse.rows(), 2);
  // One supernode holds the hub (10), the other the leaf mean (2).
  const float a = coarse.at(0, 0), b = coarse.at(1, 0);
  EXPECT_TRUE((a == 10.0f && b == 2.0f) || (a == 2.0f && b == 10.0f));
}

TEST(LiftFeaturesTest, RoundTripOnClusterConstantInput) {
  CsrGraph g = graph::ErdosRenyi(60, 240, 9);
  Coarsening c = HeavyEdgeCoarsen(g, 0.4, 11);
  common::Rng rng(1);
  Matrix coarse = Matrix::Gaussian(static_cast<int64_t>(c.num_coarse()), 3, 0,
                                   1, &rng);
  // Lift then restrict is the identity (restrict averages equal rows).
  Matrix lifted = LiftFeatures(c, coarse);
  Matrix back = RestrictFeatures(c, lifted);
  EXPECT_LT(tensor::MaxAbsDiff(coarse, back), 1e-5);
}

TEST(RestrictLabelsTest, MajorityWins) {
  CsrGraph g = graph::Star(4);
  Coarsening c = StructuralCoarsen(g);
  // Leaves 1..4 labelled {1,1,1,0}: majority 1. Hub labelled 0.
  std::vector<int> labels = {0, 1, 1, 1, 0};
  auto coarse_labels = RestrictLabels(c, labels, 2);
  ASSERT_EQ(coarse_labels.size(), 2u);
  // One cluster is the hub (label 0), the other the leaves (majority 1).
  EXPECT_NE(coarse_labels[0], coarse_labels[1]);
}

TEST(SpectralDistortionTest, MilderCoarseningDistortsLess) {
  auto sbm = graph::StochasticBlockModel(
      graph::SbmConfig{.num_nodes = 500, .num_classes = 2, .avg_degree = 12,
                       .homophily = 0.9},
      13);
  Coarsening mild = HeavyEdgeCoarsen(sbm.graph, 0.5, 15);
  Coarsening aggressive = HeavyEdgeCoarsen(sbm.graph, 0.05, 15);
  const double d_mild = SpectralDistortion(sbm.graph, mild, 5, 1);
  const double d_aggr = SpectralDistortion(sbm.graph, aggressive, 5, 1);
  EXPECT_LE(d_mild, d_aggr + 0.05);
}

TEST(SpectralDistortionTest, CommunityStructureSurvivesCoarsening) {
  // Coarsening a 2-community graph to 10% keeps the small spectral gap:
  // the community split lives at the coarse level too.
  auto sbm = graph::StochasticBlockModel(
      graph::SbmConfig{.num_nodes = 600, .num_classes = 2, .avg_degree = 14,
                       .homophily = 0.95},
      17);
  Coarsening c = HeavyEdgeCoarsen(sbm.graph, 0.1, 19);
  const double distortion = SpectralDistortion(sbm.graph, c, 3, 2);
  EXPECT_LT(distortion, 0.35);
}

}  // namespace
}  // namespace sgnn::coarsen
