#include <gtest/gtest.h>

#include <algorithm>

#include "graph/dynamic_graph.h"
#include "graph/generators.h"

namespace sgnn::graph {
namespace {

TEST(DynamicGraphTest, StartsEmpty) {
  DynamicGraph g(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.Degree(0), 0);
}

TEST(DynamicGraphTest, IncrementalDegreesMatchInsertions) {
  DynamicGraph g(4);
  g.AddUndirectedEdge(0, 1, 1);
  g.AddUndirectedEdge(0, 2, 2);
  g.AddUndirectedEdge(0, 3, 3);
  EXPECT_EQ(g.Degree(0), 3);
  EXPECT_EQ(g.Degree(1), 1);
  EXPECT_EQ(g.num_edges(), 6);
}

TEST(DynamicGraphTest, SnapshotMatchesStaticConstruction) {
  // Stream a random edge sequence; the final snapshot must equal the
  // statically built graph over the same edges.
  CsrGraph reference = ErdosRenyi(100, 300, 3);
  DynamicGraph dynamic(100);
  int64_t t = 0;
  for (NodeId u = 0; u < reference.num_nodes(); ++u) {
    for (NodeId v : reference.Neighbors(u)) {
      if (u < v) dynamic.AddUndirectedEdge(u, v, ++t);
    }
  }
  CsrGraph snapshot = dynamic.Snapshot();
  ASSERT_EQ(snapshot.num_edges(), reference.num_edges());
  for (NodeId u = 0; u < 100; ++u) {
    auto a = snapshot.Neighbors(u);
    auto b = reference.Neighbors(u);
    ASSERT_EQ(a.size(), b.size()) << u;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
  }
}

TEST(DynamicGraphTest, SnapshotAtHonoursTimestamps) {
  DynamicGraph g(4);
  g.AddUndirectedEdge(0, 1, 10);
  g.AddUndirectedEdge(1, 2, 20);
  g.AddUndirectedEdge(2, 3, 30);
  CsrGraph early = g.SnapshotAt(15);
  EXPECT_TRUE(early.HasEdge(0, 1));
  EXPECT_FALSE(early.HasEdge(1, 2));
  EXPECT_EQ(early.num_edges(), 2);
  CsrGraph all = g.SnapshotAt(100);
  EXPECT_EQ(all.num_edges(), 6);
}

TEST(DynamicGraphTest, RejectsOutOfOrderTimestamps) {
  DynamicGraph g(3);
  g.AddUndirectedEdge(0, 1, 5);
  EXPECT_DEATH(g.AddUndirectedEdge(1, 2, 3), "SGNN_CHECK");
}

TEST(TemporalWalkTest, WalksRespectTimeOrdering) {
  // Path 0-1-2-3 with strictly increasing edge times: a walk from 0 at
  // time 0 can only move forward along the chain.
  DynamicGraph g(4);
  g.AddUndirectedEdge(0, 1, 1);
  g.AddUndirectedEdge(1, 2, 2);
  g.AddUndirectedEdge(2, 3, 3);
  common::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    auto walk = g.TemporalWalk(0, 10, 0, &rng);
    // The only time-respecting maximal walk is 0,1,2,3.
    std::vector<NodeId> expected = {0, 1, 2, 3};
    EXPECT_EQ(walk, expected);
  }
}

TEST(TemporalWalkTest, StartTimeFiltersOldEdges) {
  DynamicGraph g(3);
  g.AddUndirectedEdge(0, 1, 1);
  g.AddUndirectedEdge(0, 2, 10);
  common::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    auto walk = g.TemporalWalk(0, 1, 5, &rng);
    ASSERT_EQ(walk.size(), 2u);
    EXPECT_EQ(walk[1], 2u);  // The t=1 edge is in the past.
  }
}

TEST(TemporalWalkTest, StopsWhenNoEligibleEdge) {
  DynamicGraph g(3);
  g.AddUndirectedEdge(0, 1, 1);
  common::Rng rng(3);
  auto walk = g.TemporalWalk(2, 5, 0, &rng);  // Isolated node.
  EXPECT_EQ(walk.size(), 1u);
  auto stale = g.TemporalWalk(0, 5, 100, &rng);  // Everything in the past.
  EXPECT_EQ(stale.size(), 1u);
}

TEST(TemporalWalkTest, VisitsOnlyAdjacentNodes) {
  CsrGraph base = BarabasiAlbert(200, 3, 5);
  DynamicGraph g(200);
  int64_t t = 0;
  for (NodeId u = 0; u < 200; ++u) {
    for (NodeId v : base.Neighbors(u)) {
      if (u < v) g.AddUndirectedEdge(u, v, ++t);
    }
  }
  common::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    auto walk = g.TemporalWalk(static_cast<NodeId>(trial * 13), 6, 0, &rng);
    for (size_t i = 1; i < walk.size(); ++i) {
      EXPECT_TRUE(base.HasEdge(walk[i - 1], walk[i]));
    }
  }
}

}  // namespace
}  // namespace sgnn::graph
