#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <unordered_set>

#include "graph/generators.h"
#include "sampling/historical_cache.h"
#include "sampling/neighbor_sampler.h"
#include "sampling/subgraph_sampler.h"
#include "sampling/variance.h"

namespace sgnn::sampling {
namespace {

using graph::CsrGraph;
using graph::NodeId;
using tensor::Matrix;

std::vector<NodeId> FirstSeeds(int n) {
  std::vector<NodeId> seeds(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) seeds[static_cast<size_t>(i)] = static_cast<NodeId>(i);
  return seeds;
}

void CheckBatchInvariants(const MiniBatch& batch,
                          const std::vector<NodeId>& seeds) {
  ASSERT_FALSE(batch.layers.empty());
  EXPECT_EQ(batch.seeds(), seeds);
  for (size_t l = 0; l < batch.layers.size(); ++l) {
    const LayerSample& layer = batch.layers[l];
    // dst is a prefix of src.
    ASSERT_LE(layer.dst.size(), layer.src.size());
    for (size_t i = 0; i < layer.dst.size(); ++i) {
      EXPECT_EQ(layer.dst[i], layer.src[i]);
    }
    // Offsets are monotone and sized dst+1.
    ASSERT_EQ(layer.offsets.size(), layer.dst.size() + 1);
    EXPECT_EQ(layer.offsets.front(), 0);
    EXPECT_TRUE(std::is_sorted(layer.offsets.begin(), layer.offsets.end()));
    EXPECT_EQ(layer.offsets.back(),
              static_cast<graph::EdgeIndex>(layer.src_local.size()));
    // Edge endpoints index into src.
    for (uint32_t idx : layer.src_local) EXPECT_LT(idx, layer.src.size());
    // Layer chaining: inner layer's dst equals this layer's src.
    if (l + 1 < batch.layers.size()) {
      EXPECT_EQ(batch.layers[l + 1].src, layer.dst);
    }
  }
}

TEST(NodeWiseSamplerTest, BatchInvariantsHold) {
  CsrGraph g = graph::ErdosRenyi(200, 1000, 1);
  common::Rng rng(1);
  auto seeds = FirstSeeds(16);
  std::vector<int> fanouts = {5, 5};
  MiniBatch batch = SampleNodeWise(g, seeds, fanouts, &rng);
  ASSERT_EQ(batch.layers.size(), 2u);
  CheckBatchInvariants(batch, seeds);
}

TEST(NodeWiseSamplerTest, RespectsFanout) {
  CsrGraph g = graph::Complete(50);
  common::Rng rng(2);
  auto seeds = FirstSeeds(5);
  std::vector<int> fanouts = {7};
  MiniBatch batch = SampleNodeWise(g, seeds, fanouts, &rng);
  const LayerSample& layer = batch.layers[0];
  for (size_t i = 0; i < layer.dst.size(); ++i) {
    EXPECT_EQ(layer.offsets[i + 1] - layer.offsets[i], 7);
  }
}

TEST(NodeWiseSamplerTest, SmallDegreeTakesAllNeighbors) {
  CsrGraph g = graph::Cycle(10);  // Degree 2 < fanout 5.
  common::Rng rng(3);
  std::vector<NodeId> seeds = {0};
  std::vector<int> fanouts = {5};
  MiniBatch batch = SampleNodeWise(g, seeds, fanouts, &rng);
  EXPECT_EQ(batch.layers[0].num_edges(), 2);
  // Weight is 1/2 each: exact mean.
  EXPECT_FLOAT_EQ(batch.layers[0].weights[0], 0.5f);
}

TEST(NodeWiseSamplerTest, WeightsFormUnbiasedMeanEstimate) {
  CsrGraph g = graph::BarabasiAlbert(300, 5, 7);
  common::Rng rng(5);
  Matrix x = Matrix::Gaussian(300, 3, 0, 1, &rng);
  auto seeds = FirstSeeds(20);
  VarianceReport report = MeasureSamplerVariance(
      g, x, seeds, SamplerKind::kNodeWise, 4, 600, 11);
  EXPECT_NEAR(report.mean_bias, 0.0, 0.02);
  EXPECT_GT(report.mean_squared_error, 0.0);
}

TEST(NodeWiseSamplerTest, ReceptiveFieldExplodesWithDepth) {
  CsrGraph g = graph::BarabasiAlbert(5000, 5, 9);
  common::Rng rng(7);
  std::vector<NodeId> seeds = {0};
  std::vector<int> f1 = {10};
  std::vector<int> f3 = {10, 10, 10};
  const auto b1 = SampleNodeWise(g, seeds, f1, &rng);
  const auto b3 = SampleNodeWise(g, seeds, f3, &rng);
  EXPECT_GT(static_cast<int64_t>(b3.input_nodes().size()),
            5 * static_cast<int64_t>(b1.input_nodes().size()));
}

TEST(LaborSamplerTest, BatchInvariantsHold) {
  CsrGraph g = graph::ErdosRenyi(200, 1200, 13);
  common::Rng rng(4);
  auto seeds = FirstSeeds(24);
  std::vector<int> fanouts = {5, 5};
  MiniBatch batch = SampleLabor(g, seeds, fanouts, &rng);
  CheckBatchInvariants(batch, seeds);
}

TEST(LaborSamplerTest, UnbiasedMeanEstimate) {
  CsrGraph g = graph::BarabasiAlbert(300, 5, 15);
  common::Rng rng(6);
  Matrix x = Matrix::Gaussian(300, 3, 0, 1, &rng);
  auto seeds = FirstSeeds(20);
  VarianceReport report =
      MeasureSamplerVariance(g, x, seeds, SamplerKind::kLabor, 4, 600, 17);
  EXPECT_NEAR(report.mean_bias, 0.0, 0.02);
}

TEST(LaborSamplerTest, FewerDistinctVerticesThanNodeWiseAtSameFanout) {
  // The LABOR claim (E5): shared variates collapse overlapping
  // neighbourhoods, so fewer distinct vertices are materialised.
  auto sbm = graph::StochasticBlockModel(
      graph::SbmConfig{.num_nodes = 1000, .num_classes = 2,
                       .avg_degree = 30, .homophily = 0.9},
      19);
  common::Rng rng(8);
  Matrix x = Matrix::Gaussian(1000, 2, 0, 1, &rng);
  auto seeds = FirstSeeds(100);
  auto node_wise = MeasureSamplerVariance(sbm.graph, x, seeds,
                                          SamplerKind::kNodeWise, 5, 50, 21);
  auto labor = MeasureSamplerVariance(sbm.graph, x, seeds,
                                      SamplerKind::kLabor, 5, 50, 21);
  EXPECT_LT(labor.avg_distinct_sources, node_wise.avg_distinct_sources);
}

TEST(LayerWiseSamplerTest, BoundsLayerWidth) {
  CsrGraph g = graph::BarabasiAlbert(2000, 5, 23);
  common::Rng rng(9);
  auto seeds = FirstSeeds(50);
  std::vector<int> sizes = {64, 64};
  MiniBatch batch = SampleLayerWise(g, seeds, sizes, &rng);
  CheckBatchInvariants(batch, seeds);
  for (const auto& layer : batch.layers) {
    // src = dst + at most layer_size distinct sampled nodes.
    EXPECT_LE(layer.src.size(), layer.dst.size() + 64);
  }
}

TEST(LayerWiseSamplerTest, ApproximatelyUnbiasedAtLargeWidth) {
  CsrGraph g = graph::ErdosRenyi(300, 2400, 25);
  common::Rng rng(10);
  Matrix x = Matrix::Gaussian(300, 3, 0, 1, &rng);
  auto seeds = FirstSeeds(20);
  VarianceReport report = MeasureSamplerVariance(
      g, x, seeds, SamplerKind::kLayerWise, 200, 400, 27);
  EXPECT_NEAR(report.mean_bias, 0.0, 0.05);
}

TEST(LayerWiseSamplerTest, WiderLayersReduceVariance) {
  CsrGraph g = graph::ErdosRenyi(300, 2400, 29);
  common::Rng rng(11);
  Matrix x = Matrix::Gaussian(300, 3, 0, 1, &rng);
  auto seeds = FirstSeeds(20);
  auto narrow = MeasureSamplerVariance(g, x, seeds, SamplerKind::kLayerWise,
                                       32, 200, 31);
  auto wide = MeasureSamplerVariance(g, x, seeds, SamplerKind::kLayerWise,
                                     256, 200, 31);
  EXPECT_LT(wide.mean_squared_error, narrow.mean_squared_error);
}

TEST(FullNeighborhoodTest, MatchesExactAggregation) {
  CsrGraph g = graph::ErdosRenyi(100, 500, 33);
  common::Rng rng(12);
  Matrix x = Matrix::Gaussian(100, 4, 0, 1, &rng);
  auto seeds = FirstSeeds(10);
  MiniBatch batch = FullNeighborhood(g, seeds, 1);
  Matrix agg = AggregateThroughLayer(batch.layers[0], x);
  for (size_t i = 0; i < seeds.size(); ++i) {
    auto exact = ExactNeighborhoodMean(g, x, seeds[i]);
    for (int64_t c = 0; c < x.cols(); ++c) {
      EXPECT_NEAR(agg.at(static_cast<int64_t>(i), c),
                  exact[static_cast<size_t>(c)], 1e-4);
    }
  }
}

TEST(FullNeighborhoodTest, VarianceDecreasesWithFanout) {
  CsrGraph g = graph::BarabasiAlbert(400, 8, 35);
  common::Rng rng(13);
  Matrix x = Matrix::Gaussian(400, 3, 0, 1, &rng);
  auto seeds = FirstSeeds(20);
  auto f2 = MeasureSamplerVariance(g, x, seeds, SamplerKind::kNodeWise, 2,
                                   300, 37);
  auto f8 = MeasureSamplerVariance(g, x, seeds, SamplerKind::kNodeWise, 8,
                                   300, 37);
  EXPECT_LT(f8.mean_squared_error, f2.mean_squared_error);
}

TEST(SubgraphNodeSamplerTest, BudgetRespectedAndSorted) {
  CsrGraph g = graph::ErdosRenyi(500, 2000, 39);
  common::Rng rng(14);
  SampledSubgraph s = SampleSubgraphNodes(g, 100, &rng);
  EXPECT_EQ(s.nodes.size(), 100u);
  EXPECT_TRUE(std::is_sorted(s.nodes.begin(), s.nodes.end()));
  EXPECT_EQ(s.subgraph.num_nodes(), 100u);
}

TEST(SubgraphNodeSamplerTest, BudgetExceedingGraphTakesAll) {
  CsrGraph g = graph::Cycle(20);
  common::Rng rng(15);
  SampledSubgraph s = SampleSubgraphNodes(g, 1000, &rng);
  EXPECT_EQ(s.nodes.size(), 20u);
  EXPECT_EQ(s.subgraph.num_edges(), g.num_edges());
}

TEST(SubgraphImportanceSamplerTest, PrefersHighWeightNodes) {
  CsrGraph g = graph::BarabasiAlbert(500, 3, 45);
  common::Rng rng(20);
  // Weight mass concentrated on nodes < 50.
  std::vector<double> weights(500, 0.01);
  for (int i = 0; i < 50; ++i) weights[static_cast<size_t>(i)] = 10.0;
  SampledSubgraph s = SampleSubgraphImportance(g, 40, weights, &rng);
  int in_head = 0;
  for (NodeId u : s.nodes) in_head += (u < 50);
  EXPECT_GT(in_head, 30);  // Vast majority from the heavy region.
}

TEST(SubgraphImportanceSamplerTest, DegreeWeightedSamplerHitsHubs) {
  CsrGraph g = graph::Star(300);
  common::Rng rng(21);
  std::vector<double> weights(301);
  for (NodeId u = 0; u < 301; ++u) {
    weights[u] = static_cast<double>(g.OutDegree(u));
  }
  int hub_included = 0;
  for (int t = 0; t < 20; ++t) {
    SampledSubgraph s = SampleSubgraphImportance(g, 10, weights, &rng);
    hub_included += std::binary_search(s.nodes.begin(), s.nodes.end(), 0u);
  }
  EXPECT_EQ(hub_included, 20);  // Hub carries half the total weight.
}

TEST(SubgraphImportanceSamplerTest, ZeroWeightNodesNeverSampled) {
  CsrGraph g = graph::Cycle(100);
  common::Rng rng(22);
  std::vector<double> weights(100, 0.0);
  for (int i = 0; i < 10; ++i) weights[static_cast<size_t>(i)] = 1.0;
  SampledSubgraph s = SampleSubgraphImportance(g, 50, weights, &rng);
  EXPECT_LE(s.nodes.size(), 10u);
  for (NodeId u : s.nodes) EXPECT_LT(u, 10u);
}

TEST(SubgraphEdgeSamplerTest, EndpointsAreIncluded) {
  CsrGraph g = graph::ErdosRenyi(300, 1500, 41);
  common::Rng rng(16);
  SampledSubgraph s = SampleSubgraphEdges(g, 50, &rng);
  EXPECT_GE(s.nodes.size(), 2u);
  EXPECT_LE(s.nodes.size(), 100u);
}

TEST(SubgraphEdgeSamplerTest, BiasedTowardHighDegreeNodes) {
  CsrGraph g = graph::Star(200);
  common::Rng rng(17);
  int hub_included = 0;
  for (int t = 0; t < 50; ++t) {
    SampledSubgraph s = SampleSubgraphEdges(g, 3, &rng);
    hub_included += std::binary_search(s.nodes.begin(), s.nodes.end(), 0u);
  }
  EXPECT_EQ(hub_included, 50);  // Every edge touches the hub.
}

TEST(SubgraphWalkSamplerTest, ConnectedRegionsPreferred) {
  CsrGraph g = graph::Grid(20, 20);
  common::Rng rng(18);
  SampledSubgraph s = SampleSubgraphWalks(g, 5, 10, &rng);
  EXPECT_LE(s.nodes.size(), 5u * 11u);
  EXPECT_GE(s.nodes.size(), 5u);
  // A walk-induced subgraph on a grid should contain edges.
  EXPECT_GT(s.subgraph.num_edges(), 0);
}

TEST(InclusionProbabilityTest, UniformNodeSamplerMatchesBudgetRatio) {
  CsrGraph g = graph::ErdosRenyi(200, 800, 43);
  common::Rng rng(19);
  auto probs = EstimateInclusionProbabilities(g, 50, 400, &rng);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_NEAR(probs[u], 0.25, 0.08);
  }
}

TEST(HistoricalCacheTest, PutGetRoundTrip) {
  HistoricalEmbeddingCache cache(10, 3);
  EXPECT_FALSE(cache.Has(2));
  std::vector<float> emb = {1, 2, 3};
  cache.Put(2, emb, 5);
  ASSERT_TRUE(cache.Has(2));
  auto row = cache.Get(2);
  EXPECT_FLOAT_EQ(row[0], 1.0f);
  EXPECT_FLOAT_EQ(row[2], 3.0f);
  EXPECT_EQ(cache.Staleness(2, 9), 4);
  EXPECT_EQ(cache.Staleness(3, 9), -1);
}

TEST(HistoricalCacheTest, HitRateCountsFreshEntriesOnly) {
  HistoricalEmbeddingCache cache(10, 2);
  std::vector<float> emb = {0, 0};
  cache.Put(0, emb, 0);
  cache.Put(1, emb, 8);
  std::vector<NodeId> nodes = {0, 1, 2, 3};
  // At step 10 with max staleness 5: only node 1 qualifies.
  EXPECT_DOUBLE_EQ(cache.HitRate(nodes, 10, 5), 0.25);
  // With generous staleness both cached nodes qualify.
  EXPECT_DOUBLE_EQ(cache.HitRate(nodes, 10, 100), 0.5);
}

TEST(HistoricalCacheTest, ClearInvalidatesAll) {
  HistoricalEmbeddingCache cache(5, 2);
  std::vector<float> emb = {1, 1};
  cache.Put(4, emb, 1);
  cache.Clear();
  EXPECT_FALSE(cache.Has(4));
}

TEST(HistoricalCacheTest, OverwriteUpdatesStaleness) {
  HistoricalEmbeddingCache cache(5, 1);
  std::vector<float> a = {1.0f}, b = {2.0f};
  cache.Put(0, a, 1);
  cache.Put(0, b, 7);
  EXPECT_EQ(cache.Staleness(0, 8), 1);
  EXPECT_FLOAT_EQ(cache.Get(0)[0], 2.0f);
}

TEST(HistoricalCacheTest, HitRateMixedStalenessSweep) {
  // Entries written at steps 0..9 have staleness 10-u at step 10, so with
  // bound s exactly the s entries written at steps >= 10 - s qualify.
  HistoricalEmbeddingCache cache(16, 2);
  std::vector<float> emb = {1, 2};
  std::vector<NodeId> nodes;
  for (NodeId u = 0; u < 10; ++u) {
    cache.Put(u, emb, static_cast<int64_t>(u));
    nodes.push_back(u);
  }
  for (int64_t bound = 0; bound <= 10; ++bound) {
    EXPECT_DOUBLE_EQ(cache.HitRate(nodes, 10, bound),
                     static_cast<double>(bound) / 10.0)
        << "bound=" << bound;
  }
}

TEST(HistoricalCacheTest, StalenessBoundIsInclusive) {
  // The documented contract: an entry whose staleness equals the bound
  // exactly is still a hit, and one step older is a miss.
  HistoricalEmbeddingCache cache(4, 2);
  std::vector<float> emb = {1, 2};
  cache.Put(0, emb, 3);  // Staleness 7 at step 10.
  std::vector<NodeId> nodes = {0};
  EXPECT_EQ(cache.Staleness(0, 10), 7);
  EXPECT_DOUBLE_EQ(cache.HitRate(nodes, 10, 7), 1.0);  // == bound: hit.
  EXPECT_DOUBLE_EQ(cache.HitRate(nodes, 10, 6), 0.0);  // bound - 1: miss.
  // max_staleness = 0 admits only entries written at the current step.
  EXPECT_DOUBLE_EQ(cache.HitRate(nodes, 3, 0), 1.0);
  EXPECT_DOUBLE_EQ(cache.HitRate(nodes, 4, 0), 0.0);
}

TEST(HistoricalCacheTest, InvalidateDropsOneEntryAndZeroesRow) {
  HistoricalEmbeddingCache cache(4, 2);
  std::vector<float> a = {1, 2}, b = {3, 4};
  cache.Put(0, a, 1);
  cache.Put(1, b, 1);
  cache.Invalidate(0);
  EXPECT_FALSE(cache.Has(0));
  EXPECT_EQ(cache.Staleness(0, 5), -1);
  ASSERT_TRUE(cache.Has(1));  // Neighbours untouched.
  EXPECT_FLOAT_EQ(cache.Get(1)[0], 3.0f);
  // Re-inserting after invalidation behaves like a fresh write.
  cache.Put(0, b, 9);
  ASSERT_TRUE(cache.Has(0));
  EXPECT_EQ(cache.Staleness(0, 9), 0);
  EXPECT_FLOAT_EQ(cache.Get(0)[1], 4.0f);
}

TEST(HistoricalCacheTest, StalenessOfAbsentNodesIsNegative) {
  HistoricalEmbeddingCache cache(4, 2);
  for (NodeId u = 0; u < 4; ++u) {
    EXPECT_EQ(cache.Staleness(u, 100), -1);
    EXPECT_FALSE(cache.Has(u));
  }
  std::vector<NodeId> nodes = {0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(cache.HitRate(nodes, 100, 1000), 0.0);
}

TEST(HistoricalCacheTest, ClearDropsEveryEntryAndHitRate) {
  HistoricalEmbeddingCache cache(8, 3);
  std::vector<float> emb = {1, 2, 3};
  std::vector<NodeId> nodes;
  for (NodeId u = 0; u < 8; ++u) {
    cache.Put(u, emb, 1);
    nodes.push_back(u);
  }
  EXPECT_DOUBLE_EQ(cache.HitRate(nodes, 1, 0), 1.0);
  cache.Clear();
  for (NodeId u = 0; u < 8; ++u) {
    EXPECT_FALSE(cache.Has(u));
    EXPECT_EQ(cache.Staleness(u, 1), -1);
  }
  EXPECT_DOUBLE_EQ(cache.HitRate(nodes, 1, 1000), 0.0);
}

TEST(HistoricalCacheTest, ConcurrentReadSmoke) {
  // The serving layer shares one cache across worker threads; reads are
  // const and must be safe to run concurrently once the writes are done.
  const NodeId n = 64;
  HistoricalEmbeddingCache cache(n, 4);
  for (NodeId u = 0; u < n; ++u) {
    std::vector<float> emb = {static_cast<float>(u), 1, 2, 3};
    cache.Put(u, emb, static_cast<int64_t>(u % 7));
  }
  std::vector<NodeId> nodes;
  for (NodeId u = 0; u < n; ++u) nodes.push_back(u);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&cache, &nodes, &mismatches, n] {
      for (int rep = 0; rep < 200; ++rep) {
        for (NodeId u = 0; u < n; ++u) {
          if (!cache.Has(u) ||
              cache.Get(u)[0] != static_cast<float>(u) ||
              cache.Staleness(u, 7) != 7 - static_cast<int64_t>(u % 7)) {
            mismatches.fetch_add(1);
          }
        }
        if (cache.HitRate(nodes, 6, 6) != 1.0) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace sgnn::sampling
