#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/dataset.h"
#include "core/pipeline.h"
#include "core/stages.h"
#include "models/gcn.h"
#include "nn/mlp.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/par.h"
#include "serve/batching_server.h"
#include "serve/frozen_model.h"
#include "serve/metrics.h"

namespace sgnn::obs {
namespace {

// ---------------------------------------------------------------- registry

TEST(MetricsRegistryTest, HandlesAreStableAndArithmeticIsExact) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("events_total", "Events.");
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
  // Same (name, labels) -> same handle; new labels -> new series.
  EXPECT_EQ(registry.GetCounter("events_total", "Events."), c);
  Counter* labeled =
      registry.GetCounter("events_total", "Events.", {{"kind", "a"}});
  EXPECT_NE(labeled, c);
  // Label order never affects identity.
  EXPECT_EQ(registry.GetCounter("events_total", "Events.",
                                {{"x", "1"}, {"kind", "a"}}),
            registry.GetCounter("events_total", "Events.",
                                {{"kind", "a"}, {"x", "1"}}));

  Gauge* g = registry.GetGauge("depth", "Depth.");
  g->Set(3.0);
  g->Add(-1.5);
  EXPECT_DOUBLE_EQ(g->value(), 1.5);
  g->SetMax(9.0);
  g->SetMax(2.0);  // Below the high-water mark: no effect.
  EXPECT_DOUBLE_EQ(g->value(), 9.0);

  Histogram* h = registry.GetHistogram("size", "Sizes.", {1.0, 10.0, 100.0});
  h->Record(0.5);
  h->Record(5.0);
  h->Record(5000.0);  // Overflow (+Inf) bucket.
  const HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 5005.5);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 5000.0);
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 0u);
  EXPECT_EQ(snap.counts[3], 1u);
  // The overflow bucket's percentile is the observed max, not infinity.
  EXPECT_DOUBLE_EQ(snap.Percentile(1.0), 5000.0);

  EXPECT_EQ(registry.NumSeries(), 5u);
}

TEST(MetricsRegistryTest, ConcurrentRecordingUnderThreadPoolSumsExactly) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("work_total", "Work items.");
  Gauge* high_water = registry.GetGauge("peak", "Peak task id.");
  Histogram* sizes =
      registry.GetHistogram("task_size", "Task sizes.", {10.0, 100.0, 1000.0});

  constexpr int kTasks = 16;
  constexpr int kPerTask = 5000;
  {
    common::ThreadPool pool(4);
    for (int t = 0; t < kTasks; ++t) {
      pool.Submit([&, t] {
        for (int i = 0; i < kPerTask; ++i) counter->Increment();
        high_water->SetMax(static_cast<double>(t));
        sizes->Record(static_cast<double>(t * 100));
      });
    }
    pool.WaitIdle();
    const common::ThreadPoolStats stats = pool.Stats();
    EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kTasks));
    EXPECT_EQ(stats.executed, static_cast<uint64_t>(kTasks));
    EXPECT_EQ(stats.queue_depth, 0u);
    EXPECT_EQ(stats.active, 0);
  }
  EXPECT_EQ(counter->value(), static_cast<uint64_t>(kTasks) * kPerTask);
  EXPECT_DOUBLE_EQ(high_water->value(), kTasks - 1.0);
  EXPECT_EQ(sizes->Snapshot().count, static_cast<uint64_t>(kTasks));
}

/// Golden-file test: the Prometheus exposition of a hand-built registry,
/// byte for byte. Families sort by name, samples by serialized label key,
/// histograms expose cumulative buckets plus `_sum`/`_count`.
TEST(MetricsRegistryTest, PrometheusTextMatchesGolden) {
  MetricsRegistry registry;
  registry
      .GetCounter("demo_requests_total", "Requests handled.",
                  {{"route", "predict"}})
      ->Increment(3);
  Histogram* h =
      registry.GetHistogram("demo_size", "Batch sizes.", {1.0, 10.0, 100.0},
                            {}, kDeterministic);
  h->Record(0.5);
  h->Record(5.0);
  h->Record(5000.0);
  registry.GetGauge("demo_temperature", "Die temperature.", {{"chip", "0"}})
      ->Set(41.5);

  const std::string expected =
      "# HELP demo_requests_total Requests handled.\n"
      "# TYPE demo_requests_total counter\n"
      "demo_requests_total{route=\"predict\"} 3\n"
      "# HELP demo_size Batch sizes.\n"
      "# TYPE demo_size histogram\n"
      "demo_size_bucket{le=\"1\"} 1\n"
      "demo_size_bucket{le=\"10\"} 2\n"
      "demo_size_bucket{le=\"100\"} 2\n"
      "demo_size_bucket{le=\"+Inf\"} 3\n"
      "demo_size_sum 5005.5\n"
      "demo_size_count 3\n"
      "# HELP demo_temperature Die temperature.\n"
      "# TYPE demo_temperature gauge\n"
      "demo_temperature{chip=\"0\"} 41.5\n";
  EXPECT_EQ(registry.PrometheusText(), expected);
}

TEST(MetricsRegistryTest, JsonTextMatchesGolden) {
  MetricsRegistry registry;
  registry
      .GetCounter("demo_requests_total", "Requests handled.",
                  {{"route", "predict"}})
      ->Increment(3);
  Histogram* h =
      registry.GetHistogram("demo_size", "Batch sizes.", {1.0, 10.0, 100.0},
                            {}, kDeterministic);
  h->Record(0.5);
  h->Record(5.0);
  h->Record(5000.0);
  registry.GetGauge("demo_temperature", "Die temperature.", {{"chip", "0"}})
      ->Set(41.5);

  const std::string expected =
      "{\"counters\":["
      "{\"name\":\"demo_requests_total\",\"labels\":{\"route\":\"predict\"},"
      "\"value\":3}"
      "],\"gauges\":["
      "{\"name\":\"demo_temperature\",\"labels\":{\"chip\":\"0\"},"
      "\"value\":41.5}"
      "],\"histograms\":["
      "{\"name\":\"demo_size\",\"labels\":{},\"count\":3,\"sum\":5005.5,"
      "\"buckets\":[{\"le\":1,\"count\":1},{\"le\":10,\"count\":2},"
      "{\"le\":100,\"count\":2},{\"le\":\"+Inf\",\"count\":3}]}"
      "]}";
  EXPECT_EQ(registry.JsonText(), expected);
}

TEST(MetricsRegistryTest, VolatileSeriesExcludedFromDeterministicExport) {
  MetricsRegistry registry;
  registry.GetCounter("stable_total", "Stable.")->Increment();
  registry.GetGauge("wall_seconds", "Wall time.", {}, kVolatile)->Set(1.23);

  const std::string all = registry.PrometheusText(/*include_volatile=*/true);
  EXPECT_NE(all.find("wall_seconds"), std::string::npos);
  const std::string det = registry.PrometheusText(/*include_volatile=*/false);
  EXPECT_EQ(det.find("wall_seconds"), std::string::npos);
  EXPECT_NE(det.find("stable_total"), std::string::npos);
  EXPECT_EQ(registry.JsonText(false).find("wall_seconds"), std::string::npos);
}

// ------------------------------------------------------------------ tracer

TEST(TracerTest, NestedSpansRecordExactLogicalTicks) {
  Tracer tracer;
  {
    TraceSpan outer = tracer.Span("outer");
    {
      TraceSpan inner = tracer.Span("inner", "stage");
    }
  }
  const std::vector<TraceEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by begin tick: outer opened first (tick 0), inner nested within.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].begin_tick, 0u);
  EXPECT_EQ(events[0].end_tick, 3u);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].begin_tick, 1u);
  EXPECT_EQ(events[1].end_tick, 2u);
  EXPECT_EQ(events[0].track, events[1].track);
}

TEST(TracerTest, ChromeTraceJsonMatchesGolden) {
  Tracer tracer;
  {
    TraceSpan outer = tracer.Span("outer");
    TraceSpan inner = tracer.Span("inner", "stage");
  }  // `inner` (declared last) destructs first: ticks 0,1,2,3.
  const std::string expected =
      "{\"traceEvents\":[\n"
      "{\"name\":\"outer\",\"cat\":\"default\",\"ph\":\"X\",\"pid\":0,"
      "\"tid\":0,\"ts\":0,\"dur\":3},\n"
      "{\"name\":\"inner\",\"cat\":\"stage\",\"ph\":\"X\",\"pid\":0,"
      "\"tid\":0,\"ts\":1,\"dur\":1}\n"
      "],\"displayTimeUnit\":\"ms\"}\n";
  EXPECT_EQ(tracer.ChromeTraceJson(), expected);
}

TEST(TracerTest, NullTracerSpansAreInert) {
  TraceSpan inert = StartSpan(nullptr, "nothing");
  EXPECT_FALSE(inert.active());
  inert.End();  // No-op, no crash.

  TraceSpan moved;
  {
    Tracer tracer;
    TraceSpan live = StartSpan(&tracer, "real");
    EXPECT_TRUE(live.active());
    TraceSpan taken = std::move(live);
    EXPECT_FALSE(live.active());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(taken.active());
    taken.End();
    EXPECT_EQ(tracer.NumEvents(), 1u);
  }
  (void)moved;
}

TEST(TracerTest, ConcurrentSpansAreAllRecordedOnDistinctTracks) {
  Tracer tracer(/*num_shards=*/4);
  constexpr int kTasks = 8;
  constexpr int kSpansPerTask = 100;
  {
    common::ThreadPool pool(4);
    for (int t = 0; t < kTasks; ++t) {
      pool.Submit([&tracer] {
        for (int i = 0; i < kSpansPerTask; ++i) {
          TraceSpan span = tracer.Span("work");
        }
      });
    }
    pool.WaitIdle();
  }
  EXPECT_EQ(tracer.NumEvents(),
            static_cast<uint64_t>(kTasks) * kSpansPerTask);
  std::set<int> tracks;
  for (const TraceEvent& event : tracer.Events()) tracks.insert(event.track);
  // One track per pool thread that ran spans (<= 4 workers).
  EXPECT_GE(tracks.size(), 1u);
  EXPECT_LE(tracks.size(), 4u);
}

// ----------------------------------------------------- RunContext + pipeline

core::Dataset SmallDataset(uint64_t seed = 1) {
  core::SbmDatasetConfig config;
  config.sbm = {.num_nodes = 200, .num_classes = 3, .avg_degree = 8,
                .homophily = 0.85};
  config.feature_dim = 6;
  config.feature_noise = 0.5;
  return core::MakeSbmDataset(config, seed);
}

nn::TrainConfig FastConfig() {
  nn::TrainConfig config;
  config.epochs = 20;
  config.hidden_dim = 16;
  config.patience = 10;
  return config;
}

core::Pipeline MakePipeline() {
  core::Pipeline pipeline;
  pipeline.AddEdit(core::MakeUniformSparsifyStage(0.7, 7))
      .AddAnalytics(core::MakePprSmoothingStage(0.15, 2))
      .SetModel("gcn", [](const graph::CsrGraph& g, const tensor::Matrix& x,
                          std::span<const int> labels,
                          const models::NodeSplits& splits,
                          const nn::TrainConfig& c) {
        return models::TrainGcn(g, x, labels, splits, c);
      });
  return pipeline;
}

/// The tentpole determinism guarantee: two runs of the same seeded
/// pipeline, each with fresh sinks, export byte-identical deterministic
/// metrics (Prometheus and JSON) and a byte-identical trace.
TEST(RunContextTest, SeededPipelineExportsAreByteIdentical) {
  struct Export {
    std::string prometheus, json, trace;
  };
  auto run_once = [] {
    Tracer tracer;
    MetricsRegistry registry;
    core::RunContext ctx;
    ctx.tracer = &tracer;
    ctx.metrics = &registry;
    core::Dataset d = SmallDataset(13);
    core::PipelineReport report = MakePipeline().Run(d, FastConfig(), ctx);
    EXPECT_TRUE(report.status.ok());
    return Export{registry.PrometheusText(/*include_volatile=*/false),
                  registry.JsonText(/*include_volatile=*/false),
                  tracer.ChromeTraceJson()};
  };
  const Export a = run_once();
  const Export b = run_once();
  EXPECT_EQ(a.prometheus, b.prometheus);
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.trace, b.trace);
  // Sanity: the deterministic export actually carries the stage series.
  EXPECT_NE(a.prometheus.find("sgnn_pipeline_stage_runs_total{"
                              "stage=\"sparsify:uniform\"} 1"),
            std::string::npos);
  EXPECT_NE(a.trace.find("\"name\":\"pipeline.run\""), std::string::npos);
}

/// The parallel-substrate determinism guarantee, observed end to end: the
/// same seeded pipeline run with 1 worker and with 8 workers exports
/// byte-identical deterministic metrics, a byte-identical trace (par spans
/// open on the calling thread, so even `par:<label>` spans agree), and
/// reports identical stage rows (wall-clock seconds excluded — time is the
/// only thing the worker count may change).
TEST(RunContextTest, ExportsAreByteIdenticalAcrossThreadCounts) {
  struct Export {
    std::string prometheus, json, trace;
    core::PipelineReport report;
  };
  auto run_with = [](int threads) {
    Tracer tracer;
    MetricsRegistry registry;
    core::RunContext ctx;
    ctx.tracer = &tracer;
    ctx.metrics = &registry;
    ctx.num_threads = threads;
    ctx.trace_parallel = true;
    core::Dataset d = SmallDataset(13);
    core::PipelineReport report = MakePipeline().Run(d, FastConfig(), ctx);
    EXPECT_TRUE(report.status.ok());
    return Export{registry.PrometheusText(/*include_volatile=*/false),
                  registry.JsonText(/*include_volatile=*/false),
                  tracer.ChromeTraceJson(), std::move(report)};
  };
  const Export one = run_with(1);
  const Export eight = run_with(8);
  sgnn::par::SetThreads(1);  // ctx.num_threads is process-wide; reset.
  EXPECT_EQ(one.prometheus, eight.prometheus);
  EXPECT_EQ(one.json, eight.json);
  EXPECT_EQ(one.trace, eight.trace);
  ASSERT_EQ(one.report.stages.size(), eight.report.stages.size());
  for (size_t i = 0; i < one.report.stages.size(); ++i) {
    EXPECT_EQ(one.report.stages[i].name, eight.report.stages[i].name);
    EXPECT_EQ(one.report.stages[i].ops.edges_touched,
              eight.report.stages[i].ops.edges_touched);
    EXPECT_EQ(one.report.stages[i].ops.floats_moved,
              eight.report.stages[i].ops.floats_moved);
  }
  EXPECT_DOUBLE_EQ(one.report.model.report.test_accuracy,
                   eight.report.model.report.test_accuracy);
  // The deterministic export carries the substrate's workload gauges...
  EXPECT_NE(one.prometheus.find("sgnn_par_sections"), std::string::npos);
  // ...while the configuration-dependent worker gauge is volatile-only.
  EXPECT_EQ(one.prometheus.find("sgnn_par_workers"), std::string::npos);
  // The par spans really are in the trace.
  EXPECT_NE(one.trace.find("par:prop.apply"), std::string::npos);
}

/// The report and the registry are two views over the same measurements.
TEST(RunContextTest, ReportRowsMatchRegistrySeries) {
  Tracer tracer;
  MetricsRegistry registry;
  core::RunContext ctx;
  ctx.tracer = &tracer;
  ctx.metrics = &registry;
  core::Dataset d = SmallDataset(17);
  core::PipelineReport report = MakePipeline().Run(d, FastConfig(), ctx);
  ASSERT_TRUE(report.status.ok());
  ASSERT_EQ(report.stages.size(), 3u);

  EXPECT_EQ(registry.GetCounter("sgnn_pipeline_runs_total", "Pipeline runs "
                                "started.")->value(),
            1u);
  for (const core::StageTiming& row : report.stages) {
    const Labels labels = {{"stage", row.name}};
    EXPECT_EQ(registry
                  .GetCounter("sgnn_pipeline_stage_runs_total",
                              "Completed executions per pipeline stage.",
                              labels)
                  ->value(),
              1u)
        << row.name;
    EXPECT_DOUBLE_EQ(
        registry
            .GetGauge("sgnn_pipeline_stage_edges_touched",
                      "Data-movement delta of the stage's latest execution. "
                      "(edges touched)",
                      labels)
            ->value(),
        static_cast<double>(row.ops.edges_touched))
        << row.name;
  }
  // Each report row has a matching span with the same name.
  std::set<std::string> span_names;
  for (const TraceEvent& event : tracer.Events()) span_names.insert(event.name);
  for (const core::StageTiming& row : report.stages) {
    EXPECT_TRUE(span_names.count(row.name) == 1) << row.name;
  }
}

/// A default `RunContext` reproduces the plain two-argument run exactly:
/// same stage rows, same work counters, same trained model. This is the
/// contract that let the old `PipelineRunOptions` shim be deleted — the
/// context's null/empty state IS the options-era default.
TEST(RunContextTest, DefaultContextMatchesPlainRun) {
  core::Dataset d = SmallDataset(19);
  const core::RunContext ctx;
  core::PipelineReport via_ctx = MakePipeline().Run(d, FastConfig(), ctx);
  core::PipelineReport plain = MakePipeline().Run(d, FastConfig());

  ASSERT_TRUE(plain.status.ok());
  ASSERT_TRUE(via_ctx.status.ok());
  ASSERT_EQ(plain.stages.size(), via_ctx.stages.size());
  for (size_t i = 0; i < plain.stages.size(); ++i) {
    EXPECT_EQ(plain.stages[i].name, via_ctx.stages[i].name);
    EXPECT_EQ(plain.stages[i].ops.edges_touched,
              via_ctx.stages[i].ops.edges_touched);
  }
  EXPECT_DOUBLE_EQ(plain.model.report.test_accuracy,
                   via_ctx.model.report.test_accuracy);
}

TEST(RunContextTest, ExpiredDeadlineAbortsBeforeAnyStage) {
  MetricsRegistry registry;
  core::RunContext ctx;
  ctx.metrics = &registry;
  ctx.deadline = common::Deadline::After(0);
  core::Dataset d = SmallDataset(23);
  core::PipelineReport report = MakePipeline().Run(d, FastConfig(), ctx);
  EXPECT_EQ(report.status.code(), common::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(report.stages.empty());
  EXPECT_EQ(registry
                .GetCounter("sgnn_pipeline_deadline_aborts_total",
                            "Pipeline runs stopped by an expired deadline.",
                            {}, kVolatile)
                ->value(),
            1u);
}

// ------------------------------------------------------------ serve + obs

serve::FrozenModel TinyModel(int in_dim, int classes) {
  common::Rng rng(17);
  nn::Mlp mlp({in_dim, classes}, /*dropout=*/0.0, &rng);
  return serve::FrozenModel::FromMlp(mlp);
}

TEST(ServeObsTest, AdmissionFaultInjectsDeterministicRejections) {
  MetricsRegistry registry;
  common::FaultInjector faults(7);
  faults.ArmAt("serve.admit", 3);  // Token trigger: node 3 always rejected.
  core::RunContext ctx;
  ctx.metrics = &registry;
  ctx.faults = &faults;

  serve::ServeConfig config;
  config.num_workers = 1;
  serve::BatchingServer server(
      TinyModel(4, 3),
      [](graph::NodeId node, std::span<float> out) {
        for (size_t j = 0; j < out.size(); ++j) {
          out[j] = static_cast<float>(node) + static_cast<float>(j);
        }
        return common::Status::OK();
      },
      /*num_nodes=*/8, config, ctx);

  auto rejected = server.Submit(serve::InferenceRequest(3));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), common::StatusCode::kUnavailable);
  auto admitted = server.Submit(serve::InferenceRequest(1));
  ASSERT_TRUE(admitted.ok());
  EXPECT_TRUE(admitted.value().get().status.ok());
  server.Shutdown();

  EXPECT_EQ(registry
                .GetCounter("sgnn_serve_requests_rejected_total",
                            "Admissions rejected by backpressure or fault "
                            "injection.",
                            {}, kVolatile)
                ->value(),
            1u);
}

/// `ServeMetricsSnapshot` is a view over the registry series: the numbers
/// a snapshot reports and the numbers a scrape exposes are the same.
TEST(ServeObsTest, ServeMetricsSnapshotIsViewOverRegistry) {
  MetricsRegistry registry;
  serve::ServeMetrics metrics(&registry);
  EXPECT_EQ(metrics.registry(), &registry);
  metrics.RecordRequest(/*latency_ticks=*/10, /*cache_hit=*/true);
  metrics.RecordRequest(/*latency_ticks=*/30, /*cache_hit=*/false);
  metrics.RecordRequest(/*latency_ticks=*/20, /*cache_hit=*/false,
                        /*degraded=*/true);
  metrics.RecordBatch(/*batch_size=*/3, /*queue_depth=*/5);
  metrics.RecordTerminalFailure(common::StatusCode::kDeadlineExceeded, false);

  const serve::ServeMetricsSnapshot snap = metrics.Snapshot();
  EXPECT_EQ(snap.requests_served, 3u);
  EXPECT_EQ(snap.cache_hits, 1u);
  EXPECT_EQ(snap.cache_misses, 2u);  // Degraded bills as a miss.
  EXPECT_EQ(snap.health.degraded_serves, 1u);
  EXPECT_EQ(snap.health.deadline_misses, 1u);
  EXPECT_EQ(snap.batches, 1u);
  EXPECT_DOUBLE_EQ(snap.mean_batch_size, 3.0);
  EXPECT_EQ(snap.max_queue_depth, 5u);
  EXPECT_GT(snap.p50_ticks, 0.0);
  EXPECT_LE(snap.p50_ticks, snap.p99_ticks);

  // The scrape carries the same counts.
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("sgnn_serve_requests_served_total 3"),
            std::string::npos);
  EXPECT_NE(text.find("sgnn_serve_cache_hits_total 1"), std::string::npos);
  EXPECT_NE(text.find("sgnn_serve_latency_ticks_count 3"),
            std::string::npos);

  // Owned-registry fallback: a standalone facade still works.
  serve::ServeMetrics standalone;
  standalone.RecordRejected();
  EXPECT_EQ(standalone.Snapshot().requests_rejected, 1u);
  EXPECT_NE(standalone.registry(), nullptr);
}

}  // namespace
}  // namespace sgnn::obs
