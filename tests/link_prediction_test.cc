#include <gtest/gtest.h>

#include "core/dataset.h"
#include "core/link_prediction.h"
#include "graph/generators.h"
#include "graph/propagate.h"
#include "ppr/feature_propagation.h"
#include "spectral/embeddings.h"

namespace sgnn::core {
namespace {

using graph::CsrGraph;
using graph::NodeId;

TEST(RocAucTest, PerfectSeparationIsOne) {
  EXPECT_DOUBLE_EQ(RocAuc({3.0, 4.0, 5.0}, {0.0, 1.0, 2.0}), 1.0);
}

TEST(RocAucTest, ReversedSeparationIsZero) {
  EXPECT_DOUBLE_EQ(RocAuc({0.0, 1.0}, {2.0, 3.0}), 0.0);
}

TEST(RocAucTest, AllTiedIsHalf) {
  EXPECT_DOUBLE_EQ(RocAuc({1.0, 1.0}, {1.0, 1.0, 1.0}), 0.5);
}

TEST(RocAucTest, HandComputedMixedCase) {
  // pos {2, 0}, neg {1}: pair (2,1) correct, (0,1) wrong -> AUC 0.5.
  EXPECT_DOUBLE_EQ(RocAuc({2.0, 0.0}, {1.0}), 0.5);
}

TEST(SplitLinkPredictionTest, RemovesHeldOutEdgesFromTrainGraph) {
  CsrGraph g = graph::ErdosRenyi(200, 800, 1);
  LinkSplit split = SplitLinkPrediction(g, 0.2, 3);
  EXPECT_LT(split.train_graph.num_edges(), g.num_edges());
  EXPECT_EQ(split.test_pos.size(), split.test_neg.size());
  for (const auto& [u, v] : split.test_pos) {
    EXPECT_TRUE(g.HasEdge(u, v));
    EXPECT_FALSE(split.train_graph.HasEdge(u, v));
  }
  for (const auto& [u, v] : split.test_neg) {
    EXPECT_FALSE(g.HasEdge(u, v));
    EXPECT_NE(u, v);
  }
}

TEST(SplitLinkPredictionTest, DeterministicGivenSeed) {
  CsrGraph g = graph::ErdosRenyi(100, 400, 5);
  LinkSplit a = SplitLinkPrediction(g, 0.3, 7);
  LinkSplit b = SplitLinkPrediction(g, 0.3, 7);
  EXPECT_EQ(a.test_pos, b.test_pos);
  EXPECT_EQ(a.test_neg, b.test_neg);
}

TEST(EmbeddingLinkAucTest, SmoothedEmbeddingsPredictCommunityLinks) {
  // On a homophilous SBM, held-out links are mostly intra-community, so
  // PPR-smoothed features should rank them far above random non-edges.
  SbmDatasetConfig config;
  config.sbm = {.num_nodes = 600, .num_classes = 3, .avg_degree = 14,
                .homophily = 0.9};
  config.feature_noise = 0.4;
  Dataset d = MakeSbmDataset(config, 9);
  LinkSplit split = SplitLinkPrediction(d.graph, 0.15, 11);

  graph::Propagator prop(split.train_graph,
                         graph::Normalization::kSymmetric, true);
  tensor::Matrix smoothed =
      ppr::AppnpPropagate(prop, d.features, 0.15, 8);
  const double auc_smoothed = EmbeddingLinkAuc(smoothed, split);
  const double auc_raw = EmbeddingLinkAuc(d.features, split);
  // Class-level embeddings cap out below perfect AUC here: ~1/3 of the
  // sampled negatives are same-class pairs that look exactly like
  // positives to any community-level signal.
  EXPECT_GT(auc_smoothed, 0.7);
  EXPECT_GT(auc_smoothed, auc_raw);
}

TEST(EmbeddingLinkAucTest, RandomEmbeddingsAreNearChance) {
  CsrGraph g = graph::ErdosRenyi(300, 1200, 13);
  LinkSplit split = SplitLinkPrediction(g, 0.2, 15);
  common::Rng rng(1);
  tensor::Matrix random =
      tensor::Matrix::Gaussian(g.num_nodes(), 8, 0, 1, &rng);
  EXPECT_NEAR(EmbeddingLinkAuc(random, split), 0.5, 0.1);
}

}  // namespace
}  // namespace sgnn::core
