#include <gtest/gtest.h>

#include "algebra/implicit.h"
#include "graph/generators.h"
#include "graph/propagate.h"
#include "tensor/ops.h"

namespace sgnn::algebra {
namespace {

using graph::CsrGraph;
using graph::Normalization;
using graph::Propagator;
using tensor::Matrix;

Matrix RandomFeatures(int64_t n, int64_t d, uint64_t seed) {
  common::Rng rng(seed);
  return Matrix::Gaussian(n, d, 0, 1, &rng);
}

TEST(NeumannSolveTest, GammaZeroIsIdentity) {
  CsrGraph g = graph::Cycle(10);
  Propagator prop(g, Normalization::kSymmetric, false);
  Matrix x = RandomFeatures(10, 3, 1);
  Matrix z = NeumannSolve(prop, x, 0.0, 1e-8, 50);
  EXPECT_LT(tensor::MaxAbsDiff(z, x), 1e-6);
}

TEST(NeumannSolveTest, SatisfiesFixedPointEquation) {
  CsrGraph g = graph::ErdosRenyi(40, 160, 3);
  Propagator prop(g, Normalization::kSymmetric, true);
  Matrix x = RandomFeatures(40, 4, 2);
  SolveStats stats;
  Matrix z = NeumannSolve(prop, x, 0.6, 1e-8, 500, &stats);
  EXPECT_TRUE(stats.converged);
  Matrix sz;
  prop.Apply(z, &sz);
  tensor::Scale(0.6f, &sz);
  tensor::Axpy(1.0f, x, &sz);
  EXPECT_LT(tensor::MaxAbsDiff(z, sz), 1e-4);
}

TEST(NeumannSolveTest, AgreesWithPicard) {
  CsrGraph g = graph::BarabasiAlbert(100, 3, 5);
  Propagator prop(g, Normalization::kSymmetric, true);
  Matrix x = RandomFeatures(100, 2, 3);
  Matrix zn = NeumannSolve(prop, x, 0.5, 1e-9, 500);
  Matrix zp = PicardSolve(prop, x, 0.5, 1e-9, 500);
  EXPECT_LT(tensor::MaxAbsDiff(zn, zp), 1e-4);
}

TEST(NeumannSolveTest, LargerGammaNeedsMoreIterations) {
  CsrGraph g = graph::ErdosRenyi(60, 240, 7);
  Propagator prop(g, Normalization::kSymmetric, true);
  Matrix x = RandomFeatures(60, 2, 4);
  SolveStats lo, hi;
  NeumannSolve(prop, x, 0.3, 1e-8, 1000, &lo);
  NeumannSolve(prop, x, 0.9, 1e-8, 1000, &hi);
  EXPECT_TRUE(lo.converged);
  EXPECT_TRUE(hi.converged);
  EXPECT_GT(hi.iterations, lo.iterations);
}

TEST(NeumannSolveTest, ReportsNonConvergenceWhenTruncated) {
  CsrGraph g = graph::Complete(20);
  Propagator prop(g, Normalization::kSymmetric, true);
  Matrix x = RandomFeatures(20, 2, 5);
  SolveStats stats;
  NeumannSolve(prop, x, 0.95, 1e-12, 3, &stats);
  EXPECT_FALSE(stats.converged);
  EXPECT_EQ(stats.iterations, 3);
  EXPECT_GT(stats.final_residual, 1e-12);
}

TEST(PicardSolveTest, FixedPointOnPath) {
  CsrGraph g = graph::Path(12);
  Propagator prop(g, Normalization::kSymmetric, true);
  Matrix x = RandomFeatures(12, 3, 6);
  SolveStats stats;
  Matrix z = PicardSolve(prop, x, 0.7, 1e-9, 1000, &stats);
  EXPECT_TRUE(stats.converged);
  Matrix sz;
  prop.Apply(z, &sz);
  tensor::Scale(0.7f, &sz);
  tensor::Axpy(1.0f, x, &sz);
  EXPECT_LT(tensor::MaxAbsDiff(z, sz), 1e-4);
}

TEST(ImplicitReceptiveFieldTest, EquilibriumSeesWholeChain) {
  // The headline implicit-GNN property (E8): signal injected at one end of
  // a long path reaches the far end through a single equilibrium solve,
  // whereas K-hop propagation strictly cannot pass distance K.
  const int n = 30;
  CsrGraph g = graph::Path(n);
  Propagator prop(g, Normalization::kSymmetric, true);
  Matrix x(n, 1);
  x.at(0, 0) = 1.0f;

  Matrix z = NeumannSolve(prop, x, 0.9, 1e-10, 2000);
  EXPECT_GT(z.at(n - 1, 0), 0.0f);  // Far end is reached.

  // 5-hop explicit propagation leaves the far end at exactly zero.
  Matrix k5 = graph::PropagateKHops(prop, x, 5);
  EXPECT_FLOAT_EQ(k5.at(n - 1, 0), 0.0f);
}

TEST(MultiscaleImplicitTest, SingleScaleOneMatchesNeumann) {
  CsrGraph g = graph::ErdosRenyi(30, 120, 9);
  Propagator prop(g, Normalization::kSymmetric, true);
  Matrix x = RandomFeatures(30, 3, 7);
  Matrix single = MultiscaleImplicit(prop, x, 0.5, {1}, 1e-9, 500);
  Matrix direct = NeumannSolve(prop, x, 0.5, 1e-9, 500);
  EXPECT_LT(tensor::MaxAbsDiff(single, direct), 1e-5);
}

TEST(MultiscaleImplicitTest, ScalesWidenReceptiveFieldFaster) {
  // With scale m, each Neumann term advances m hops: distant mass appears
  // with fewer iterations at larger scales.
  const int n = 24;
  CsrGraph g = graph::Path(n);
  Propagator prop(g, Normalization::kSymmetric, true);
  Matrix x(n, 1);
  x.at(0, 0) = 1.0f;
  SolveStats s1, s4;
  MultiscaleImplicit(prop, x, 0.8, {1}, 1e-8, 2000, &s1);
  MultiscaleImplicit(prop, x, 0.8, {4}, 1e-8, 2000, &s4);
  EXPECT_TRUE(s1.converged);
  EXPECT_TRUE(s4.converged);
  EXPECT_LT(s4.iterations, s1.iterations);
}

TEST(MultiscaleImplicitTest, CombinedScalesAreAveraged) {
  CsrGraph g = graph::Cycle(16);
  Propagator prop(g, Normalization::kSymmetric, true);
  Matrix x = RandomFeatures(16, 2, 8);
  Matrix m1 = MultiscaleImplicit(prop, x, 0.5, {1}, 1e-10, 1000);
  Matrix m2 = MultiscaleImplicit(prop, x, 0.5, {2}, 1e-10, 1000);
  Matrix both = MultiscaleImplicit(prop, x, 0.5, {1, 2}, 1e-10, 1000);
  Matrix avg = m1;
  tensor::Axpy(1.0f, m2, &avg);
  tensor::Scale(0.5f, &avg);
  EXPECT_LT(tensor::MaxAbsDiff(both, avg), 1e-5);
}

}  // namespace
}  // namespace sgnn::algebra
