#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.h"
#include "graph/metrics.h"
#include "subgraph/khop.h"
#include "subgraph/walk_store.h"

namespace sgnn::subgraph {
namespace {

using graph::CsrGraph;
using graph::NodeId;

TEST(KHopTest, ZeroHopsIsJustTheCenter) {
  CsrGraph g = graph::ErdosRenyi(50, 200, 1);
  EgoNet ego = ExtractKHop(g, 7, 0, 0);
  ASSERT_EQ(ego.nodes.size(), 1u);
  EXPECT_EQ(ego.nodes[0], 7u);
  EXPECT_EQ(ego.hops_reached, 0);
}

TEST(KHopTest, CollectsExactKHopBall) {
  CsrGraph g = graph::Path(10);
  EgoNet ego = ExtractKHop(g, 5, 2, 0);
  std::set<NodeId> expected = {3, 4, 5, 6, 7};
  EXPECT_EQ(std::set<NodeId>(ego.nodes.begin(), ego.nodes.end()), expected);
  EXPECT_EQ(ego.hops_reached, 2);
}

TEST(KHopTest, MatchesReceptiveFieldSize) {
  CsrGraph g = graph::BarabasiAlbert(500, 3, 3);
  for (int hops : {1, 2, 3}) {
    EgoNet ego = ExtractKHop(g, 0, hops, 0);
    EXPECT_EQ(static_cast<int64_t>(ego.nodes.size()),
              graph::ReceptiveFieldSize(g, 0, hops));
  }
}

TEST(KHopTest, BudgetTruncates) {
  CsrGraph g = graph::Complete(100);
  EgoNet ego = ExtractKHop(g, 0, 2, 10);
  EXPECT_EQ(ego.nodes.size(), 10u);
  EXPECT_EQ(ego.subgraph.num_nodes(), 10u);
  // Induced subgraph of a clique is a clique.
  EXPECT_EQ(ego.subgraph.num_edges(), 90);
}

TEST(KHopTest, SubgraphEdgesAreInduced) {
  CsrGraph g = graph::Cycle(12);
  EgoNet ego = ExtractKHop(g, 0, 2, 0);  // Nodes {10,11,0,1,2}.
  EXPECT_EQ(ego.nodes.size(), 5u);
  EXPECT_EQ(ego.subgraph.num_edges(), 8);  // A path of 5 nodes: 4 und. edges.
}

TEST(WalkStoreTest, WalksStartAtSeedAndFollowEdges) {
  CsrGraph g = graph::ErdosRenyi(100, 500, 5);
  common::Rng rng(7);
  WalkStore store;
  const int bundle = store.AddSeed(g, 13, 8, 6, &rng);
  EXPECT_EQ(store.seed(bundle), 13u);
  EXPECT_EQ(store.NumWalks(bundle), 8);
  for (int w = 0; w < 8; ++w) {
    auto walk = store.Walk(bundle, w);
    ASSERT_FALSE(walk.empty());
    EXPECT_EQ(walk[0], 13u);
    for (size_t i = 1; i < walk.size(); ++i) {
      EXPECT_TRUE(g.HasEdge(walk[i - 1], walk[i]));
    }
  }
}

TEST(WalkStoreTest, NodeSetIsDeduplicatedUnionOfWalks) {
  CsrGraph g = graph::Cycle(20);
  common::Rng rng(9);
  WalkStore store;
  const int bundle = store.AddSeed(g, 0, 10, 5, &rng);
  auto node_set = store.NodeSet(bundle);
  std::set<NodeId> unique(node_set.begin(), node_set.end());
  EXPECT_EQ(unique.size(), node_set.size());  // No duplicates.
  std::set<NodeId> visited;
  for (int w = 0; w < 10; ++w) {
    for (NodeId v : store.Walk(bundle, w)) visited.insert(v);
  }
  EXPECT_EQ(unique, visited);
  EXPECT_EQ(node_set[0], 0u);  // Seed first.
}

TEST(WalkStoreTest, MultipleBundlesAreIndependent) {
  CsrGraph g = graph::ErdosRenyi(200, 1000, 11);
  common::Rng rng(13);
  WalkStore store;
  const int b0 = store.AddSeed(g, 5, 4, 3, &rng);
  const int b1 = store.AddSeed(g, 50, 6, 4, &rng);
  EXPECT_EQ(store.num_seeds(), 2);
  EXPECT_EQ(store.Walk(b0, 0)[0], 5u);
  EXPECT_EQ(store.Walk(b1, 0)[0], 50u);
  EXPECT_EQ(store.NumWalks(b1), 6);
}

TEST(WalkStoreTest, DanglingNodeTruncatesWalk) {
  graph::EdgeListBuilder b(3);
  b.AddEdge(0, 1);  // Directed: 1 has no out-edges.
  CsrGraph g = CsrGraph::FromBuilder(std::move(b));
  common::Rng rng(15);
  WalkStore store;
  const int bundle = store.AddSeed(g, 0, 2, 5, &rng);
  for (int w = 0; w < 2; ++w) {
    auto walk = store.Walk(bundle, w);
    EXPECT_EQ(walk.size(), 2u);  // 0 -> 1, then stuck.
  }
}

TEST(WalkStoreTest, DedupCompressesRepeatedVisits) {
  // On a small cycle, long walks revisit few distinct nodes: the pool is
  // tiny while the dense representation is large (the SUREL claim).
  CsrGraph g = graph::Cycle(10);
  common::Rng rng(17);
  WalkStore store;
  store.AddSeed(g, 0, 50, 20, &rng);
  auto stats = store.Stats();
  EXPECT_EQ(stats.dense_slots, 50 * 21);
  EXPECT_LE(stats.pool_entries, 10);
  EXPECT_LT(stats.stored_bytes(), stats.dense_bytes());
}

TEST(WalkStoreTest, StorageAccountingAddsUpAcrossBundles) {
  CsrGraph g = graph::ErdosRenyi(300, 1500, 19);
  common::Rng rng(21);
  WalkStore store;
  store.AddSeed(g, 1, 5, 4, &rng);
  auto before = store.Stats();
  store.AddSeed(g, 2, 5, 4, &rng);
  auto after = store.Stats();
  EXPECT_GT(after.dense_slots, before.dense_slots);
  EXPECT_GT(after.pool_entries, before.pool_entries);
}

}  // namespace
}  // namespace sgnn::subgraph
