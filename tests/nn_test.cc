#include <gtest/gtest.h>

#include <cmath>

#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"
#include "tensor/ops.h"

namespace sgnn::nn {
namespace {

using graph::NodeId;
using tensor::Matrix;

TEST(LinearTest, ForwardMatchesHandComputation) {
  common::Rng rng(1);
  Linear layer(2, 2, &rng);
  // Overwrite with known weights via Params().
  auto params = layer.Params();
  *params[0].value = Matrix::FromRows({{1, 2}, {3, 4}});  // W
  *params[1].value = Matrix::FromRows({{0.5, -0.5}});     // b
  Matrix x = Matrix::FromRows({{1, 1}});
  Matrix out;
  layer.Forward(x, &out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 4.5f);   // 1+3+0.5
  EXPECT_FLOAT_EQ(out.at(0, 1), 5.5f);   // 2+4-0.5
}

TEST(LinearTest, BackwardGradientsMatchFiniteDifference) {
  common::Rng rng(2);
  Linear layer(3, 2, &rng);
  Matrix x = Matrix::Gaussian(4, 3, 0, 1, &rng);
  // Loss = sum(out): dout = ones.
  Matrix out;
  layer.Forward(x, &out);
  double base = 0.0;
  for (int64_t i = 0; i < out.size(); ++i) base += out.data()[i];

  layer.ZeroGrad();
  Matrix dout(4, 2, 1.0f);
  Matrix dx;
  layer.Backward(x, dout, &dx);

  auto params = layer.Params();
  const double eps = 1e-3;
  // Check a few weight entries by finite differences.
  for (auto [r, c] : std::vector<std::pair<int, int>>{{0, 0}, {2, 1}}) {
    Matrix& w = *params[0].value;
    const float saved = w.at(r, c);
    w.at(r, c) = saved + static_cast<float>(eps);
    Matrix out2;
    layer.Forward(x, &out2);
    double bumped = 0.0;
    for (int64_t i = 0; i < out2.size(); ++i) bumped += out2.data()[i];
    w.at(r, c) = saved;
    const double fd = (bumped - base) / eps;
    EXPECT_NEAR(params[0].grad->at(r, c), fd, 1e-2);
  }
  // dx = dout W^T: each dx entry is a row-sum of W.
  for (int64_t i = 0; i < 3; ++i) {
    const double expected = params[0].value->at(i, 0) +
                            params[0].value->at(i, 1);
    EXPECT_NEAR(dx.at(0, i), expected, 1e-5);
  }
}

TEST(LinearTest, GradientsAccumulateAcrossBackwardCalls) {
  common::Rng rng(3);
  Linear layer(2, 2, &rng);
  Matrix x = Matrix::FromRows({{1, 0}});
  Matrix dout(1, 2, 1.0f);
  layer.ZeroGrad();
  layer.Backward(x, dout, nullptr);
  auto params = layer.Params();
  const float once = params[0].grad->at(0, 0);
  layer.Backward(x, dout, nullptr);
  EXPECT_FLOAT_EQ(params[0].grad->at(0, 0), 2.0f * once);
}

TEST(DropoutTest, InferenceModeIsIdentity) {
  common::Rng rng(4);
  Matrix x = Matrix::FromRows({{1, 2, 3}});
  Matrix orig = x;
  Matrix mask;
  DropoutForward(0.5, /*training=*/false, &rng, &x, &mask);
  EXPECT_TRUE(x.Equals(orig));
}

TEST(DropoutTest, TrainingModePreservesExpectation) {
  common::Rng rng(5);
  const int n = 20000;
  Matrix x(1, n, 1.0f);
  Matrix mask;
  DropoutForward(0.3, true, &rng, &x, &mask);
  double mean = 0.0;
  for (int64_t i = 0; i < n; ++i) mean += x.data()[i];
  mean /= n;
  EXPECT_NEAR(mean, 1.0, 0.05);
}

TEST(DropoutTest, BackwardAppliesSameMask) {
  common::Rng rng(6);
  Matrix x(1, 100, 1.0f);
  Matrix mask;
  DropoutForward(0.5, true, &rng, &x, &mask);
  Matrix grad(1, 100, 1.0f);
  DropoutBackward(mask, &grad);
  EXPECT_TRUE(grad.Equals(x));  // Same scaling pattern.
}

TEST(LossTest, UniformLogitsGiveLogC) {
  Matrix logits(4, 3, 0.0f);
  std::vector<int> labels = {0, 1, 2, 0};
  std::vector<NodeId> rows = {0, 1, 2, 3};
  const double loss = SoftmaxCrossEntropy(logits, labels, rows, nullptr);
  EXPECT_NEAR(loss, std::log(3.0), 1e-6);
}

TEST(LossTest, GradientSumsToZeroPerRow) {
  common::Rng rng(7);
  Matrix logits = Matrix::Gaussian(5, 4, 0, 1, &rng);
  std::vector<int> labels = {0, 1, 2, 3, 0};
  std::vector<NodeId> rows = {0, 2, 4};
  Matrix dlogits;
  SoftmaxCrossEntropy(logits, labels, rows, &dlogits);
  for (NodeId r : rows) {
    double sum = 0.0;
    for (int64_t c = 0; c < 4; ++c) sum += dlogits.at(r, c);
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
  // Unlisted rows have zero gradient.
  for (int64_t c = 0; c < 4; ++c) {
    EXPECT_FLOAT_EQ(dlogits.at(1, c), 0.0f);
    EXPECT_FLOAT_EQ(dlogits.at(3, c), 0.0f);
  }
}

TEST(LossTest, GradientMatchesFiniteDifference) {
  common::Rng rng(8);
  Matrix logits = Matrix::Gaussian(3, 3, 0, 1, &rng);
  std::vector<int> labels = {2, 0, 1};
  std::vector<NodeId> rows = {0, 1, 2};
  Matrix dlogits;
  const double base = SoftmaxCrossEntropy(logits, labels, rows, &dlogits);
  const double eps = 1e-3;
  for (auto [r, c] : std::vector<std::pair<int, int>>{{0, 0}, {1, 2}, {2, 1}}) {
    Matrix bumped = logits;
    bumped.at(r, c) += static_cast<float>(eps);
    const double loss2 = SoftmaxCrossEntropy(bumped, labels, rows, nullptr);
    EXPECT_NEAR(dlogits.at(r, c), (loss2 - base) / eps, 1e-2);
  }
}

TEST(LossTest, WeightedCeReducesToUniformWithEqualWeights) {
  common::Rng rng(20);
  Matrix logits = Matrix::Gaussian(4, 3, 0, 1, &rng);
  std::vector<int> labels = {0, 1, 2, 0};
  std::vector<NodeId> rows = {0, 1, 3};
  std::vector<float> weights = {2.0f, 2.0f, 2.0f};  // Equal: scale cancels.
  Matrix da, db;
  const double uniform = SoftmaxCrossEntropy(logits, labels, rows, &da);
  const double weighted =
      SoftmaxCrossEntropyWeighted(logits, labels, rows, weights, &db);
  EXPECT_NEAR(uniform, weighted, 1e-9);
  EXPECT_LT(MaxAbsDiff(da, db), 1e-6);
}

TEST(LossTest, WeightedCeZeroWeightRowContributesNothing) {
  common::Rng rng(21);
  Matrix logits = Matrix::Gaussian(3, 2, 0, 1, &rng);
  std::vector<int> labels = {0, 1, 0};
  std::vector<NodeId> all_rows = {0, 1, 2};
  std::vector<float> weights = {1.0f, 0.0f, 1.0f};
  Matrix d_weighted;
  const double weighted = SoftmaxCrossEntropyWeighted(
      logits, labels, all_rows, weights, &d_weighted);
  std::vector<NodeId> subset = {0, 2};
  Matrix d_subset;
  const double subset_loss =
      SoftmaxCrossEntropy(logits, labels, subset, &d_subset);
  EXPECT_NEAR(weighted, subset_loss, 1e-9);
  for (int64_t c = 0; c < 2; ++c) {
    EXPECT_FLOAT_EQ(d_weighted.at(1, c), 0.0f);
  }
}

TEST(LossTest, WeightedCeGradientMatchesFiniteDifference) {
  common::Rng rng(22);
  Matrix logits = Matrix::Gaussian(3, 3, 0, 1, &rng);
  std::vector<int> labels = {2, 0, 1};
  std::vector<NodeId> rows = {0, 1, 2};
  std::vector<float> weights = {0.5f, 2.0f, 1.0f};
  Matrix dlogits;
  const double base = SoftmaxCrossEntropyWeighted(logits, labels, rows,
                                                  weights, &dlogits);
  const double eps = 1e-3;
  for (auto [r, c] : std::vector<std::pair<int, int>>{{0, 2}, {1, 0}, {2, 2}}) {
    Matrix bumped = logits;
    bumped.at(r, c) += static_cast<float>(eps);
    const double loss2 = SoftmaxCrossEntropyWeighted(bumped, labels, rows,
                                                     weights, nullptr);
    EXPECT_NEAR(dlogits.at(r, c), (loss2 - base) / eps, 1e-2);
  }
}

TEST(LossTest, AccuracyAndF1OnPerfectPredictions) {
  Matrix logits = Matrix::FromRows({{5, 0}, {0, 5}, {5, 0}});
  std::vector<int> labels = {0, 1, 0};
  std::vector<NodeId> rows = {0, 1, 2};
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels, rows), 1.0);
  EXPECT_DOUBLE_EQ(MacroF1(logits, labels, rows, 2), 1.0);
}

TEST(LossTest, MacroF1PenalizesMissingClass) {
  // Predict class 0 always; class 1 gets F1 = 0.
  Matrix logits = Matrix::FromRows({{5, 0}, {5, 0}, {5, 0}, {5, 0}});
  std::vector<int> labels = {0, 0, 1, 1};
  std::vector<NodeId> rows = {0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels, rows), 0.5);
  // Class 0: P=0.5, R=1 -> F1=2/3; class 1: 0. Macro = 1/3.
  EXPECT_NEAR(MacroF1(logits, labels, rows, 2), 1.0 / 3.0, 1e-9);
}

TEST(SgdTest, StepsDownhillOnQuadratic) {
  // Minimise ||p||^2 with gradient 2p.
  Matrix p = Matrix::FromRows({{4, -2}});
  Matrix g(1, 2);
  Sgd opt({{&p, &g}}, 0.1);
  for (int i = 0; i < 100; ++i) {
    g.at(0, 0) = 2 * p.at(0, 0);
    g.at(0, 1) = 2 * p.at(0, 1);
    opt.Step();
  }
  EXPECT_NEAR(p.at(0, 0), 0.0, 1e-6);
  EXPECT_NEAR(p.at(0, 1), 0.0, 1e-6);
}

TEST(SgdTest, WeightDecayShrinksParameters) {
  Matrix p = Matrix::FromRows({{1.0}});
  Matrix g(1, 1, 0.0f);  // Zero gradient: only decay acts.
  Sgd opt({{&p, &g}}, 0.1, 0.5);
  opt.Step();
  EXPECT_NEAR(p.at(0, 0), 1.0 - 0.1 * 0.5, 1e-6);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Matrix p = Matrix::FromRows({{3, -5}});
  Matrix g(1, 2);
  Adam opt({{&p, &g}}, 0.1);
  for (int i = 0; i < 500; ++i) {
    g.at(0, 0) = 2 * p.at(0, 0);
    g.at(0, 1) = 2 * p.at(0, 1);
    opt.Step();
  }
  EXPECT_NEAR(p.at(0, 0), 0.0, 1e-3);
  EXPECT_NEAR(p.at(0, 1), 0.0, 1e-3);
}

TEST(AdamTest, FirstStepIsLrSizedRegardlessOfGradientScale) {
  // Bias correction makes the first update ~lr * sign(g).
  for (float scale : {1e-3f, 1.0f, 1e3f}) {
    Matrix p = Matrix::FromRows({{0.0}});
    Matrix g = Matrix::FromRows({{scale}});
    Adam opt({{&p, &g}}, 0.01);
    opt.Step();
    EXPECT_NEAR(p.at(0, 0), -0.01, 1e-4) << "scale " << scale;
  }
}

TEST(MlpTest, ForwardShapeAndDeterminism) {
  common::Rng rng(9);
  Mlp mlp({4, 8, 3}, 0.0, &rng);
  Matrix x = Matrix::Gaussian(5, 4, 0, 1, &rng);
  Matrix a, b;
  mlp.Forward(x, false, nullptr, &a);
  mlp.Forward(x, false, nullptr, &b);
  EXPECT_EQ(a.rows(), 5);
  EXPECT_EQ(a.cols(), 3);
  EXPECT_TRUE(a.Equals(b));
}

TEST(MlpTest, BackwardGradientMatchesFiniteDifference) {
  common::Rng rng(10);
  Mlp mlp({3, 5, 2}, 0.0, &rng);
  Matrix x = Matrix::Gaussian(4, 3, 0, 1, &rng);
  std::vector<int> labels = {0, 1, 0, 1};
  std::vector<NodeId> rows = {0, 1, 2, 3};

  Matrix logits;
  mlp.Forward(x, true, &rng, &logits);
  Matrix dlogits;
  const double base = SoftmaxCrossEntropy(logits, labels, rows, &dlogits);
  mlp.ZeroGrad();
  mlp.Backward(dlogits, nullptr);

  auto params = mlp.Params();
  const double eps = 1e-3;
  // Probe entries in the first weight matrix and last bias.
  struct Probe {
    size_t param;
    int64_t r, c;
  };
  for (const Probe& probe :
       {Probe{0, 0, 0}, Probe{0, 2, 3}, Probe{3, 0, 1}}) {
    Matrix& value = *params[probe.param].value;
    const float saved = value.at(probe.r, probe.c);
    value.at(probe.r, probe.c) = saved + static_cast<float>(eps);
    Matrix logits2;
    mlp.Forward(x, false, nullptr, &logits2);
    const double loss2 = SoftmaxCrossEntropy(logits2, labels, rows, nullptr);
    value.at(probe.r, probe.c) = saved;
    const double fd = (loss2 - base) / eps;
    EXPECT_NEAR(params[probe.param].grad->at(probe.r, probe.c), fd, 5e-2);
  }
}

TEST(MlpTest, LearnsXor) {
  common::Rng rng(11);
  Mlp mlp({2, 16, 2}, 0.0, &rng);
  Matrix x = Matrix::FromRows({{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  std::vector<int> labels = {0, 1, 1, 0};
  std::vector<NodeId> rows = {0, 1, 2, 3};
  Adam opt(mlp.Params(), 0.01);
  for (int epoch = 0; epoch < 500; ++epoch) {
    Matrix logits, dlogits;
    mlp.Forward(x, true, &rng, &logits);
    SoftmaxCrossEntropy(logits, labels, rows, &dlogits);
    mlp.ZeroGrad();
    mlp.Backward(dlogits, nullptr);
    opt.Step();
  }
  Matrix logits;
  mlp.Forward(x, false, nullptr, &logits);
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels, rows), 1.0);
}

TEST(TrainerTest, FitsLinearlySeparableEmbeddings) {
  common::Rng rng(12);
  const int n = 300;
  Matrix emb(n, 2);
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) {
    labels[static_cast<size_t>(i)] = i % 2;
    emb.at(i, 0) = static_cast<float>((i % 2 ? 1.0 : -1.0) +
                                      rng.Gaussian(0, 0.3));
    emb.at(i, 1) = static_cast<float>(rng.Gaussian(0, 0.3));
  }
  std::vector<NodeId> train, val, test;
  for (int i = 0; i < n; ++i) {
    if (i % 5 < 3) {
      train.push_back(static_cast<NodeId>(i));
    } else if (i % 5 == 3) {
      val.push_back(static_cast<NodeId>(i));
    } else {
      test.push_back(static_cast<NodeId>(i));
    }
  }
  Mlp mlp({2, 16, 2}, 0.1, &rng);
  TrainConfig config;
  config.epochs = 100;
  config.lr = 0.01;
  TrainReport report = TrainMlpOnEmbeddings(&mlp, emb, labels, train, val,
                                            test, config);
  EXPECT_GT(report.best_val_accuracy, 0.9);
  EXPECT_GT(report.test_accuracy, 0.9);
  EXPECT_GT(report.epochs_run, 0);
}

TEST(TrainerTest, EarlyStoppingTriggersOnPlateau) {
  common::Rng rng(13);
  // Pure-noise task: validation accuracy cannot improve for long.
  Matrix emb = Matrix::Gaussian(100, 4, 0, 1, &rng);
  std::vector<int> labels(100);
  for (int i = 0; i < 100; ++i) {
    labels[static_cast<size_t>(i)] = static_cast<int>(rng.UniformInt(2));
  }
  std::vector<NodeId> train, val, test;
  for (int i = 0; i < 100; ++i) {
    (i < 60 ? train : i < 80 ? val : test).push_back(static_cast<NodeId>(i));
  }
  Mlp mlp({4, 8, 2}, 0.0, &rng);
  TrainConfig config;
  config.epochs = 1000;
  config.patience = 10;
  TrainReport report = TrainMlpOnEmbeddings(&mlp, emb, labels, train, val,
                                            test, config);
  EXPECT_LT(report.epochs_run, 1000);
}

TEST(TrainerTest, MiniBatchAndFullBatchBothLearn) {
  common::Rng rng(14);
  const int n = 200;
  Matrix emb(n, 2);
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) {
    labels[static_cast<size_t>(i)] = i % 2;
    emb.at(i, 0) = static_cast<float>(labels[static_cast<size_t>(i)] * 2 - 1);
    emb.at(i, 1) = static_cast<float>(rng.Gaussian(0, 0.2));
  }
  std::vector<NodeId> train, val, test;
  for (int i = 0; i < n; ++i) {
    (i % 3 == 0 ? val : i % 3 == 1 ? test : train)
        .push_back(static_cast<NodeId>(i));
  }
  for (int batch_size : {0, 16}) {
    common::Rng mlp_rng(15);
    Mlp mlp({2, 8, 2}, 0.0, &mlp_rng);
    TrainConfig config;
    config.epochs = 60;
    config.batch_size = batch_size;
    TrainReport report = TrainMlpOnEmbeddings(&mlp, emb, labels, train, val,
                                              test, config);
    EXPECT_GT(report.test_accuracy, 0.95) << "batch " << batch_size;
  }
}

}  // namespace
}  // namespace sgnn::nn
