// Cross-module property sweeps: invariants that must hold for every graph
// family, parameter setting and seed in the sweep, exercised via
// TEST_P / INSTANTIATE_TEST_SUITE_P.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "graph/generators.h"
#include "graph/propagate.h"
#include "ppr/ppr.h"
#include "sampling/variance.h"
#include "spectral/filters.h"
#include "tensor/ops.h"

namespace sgnn {
namespace {

using graph::CsrGraph;
using graph::NodeId;

enum class GraphFamily { kErdosRenyi, kBarabasiAlbert, kRmat, kSbm, kGrid };

CsrGraph MakeGraph(GraphFamily family, uint64_t seed) {
  switch (family) {
    case GraphFamily::kErdosRenyi:
      return graph::ErdosRenyi(300, 1500, seed);
    case GraphFamily::kBarabasiAlbert:
      return graph::BarabasiAlbert(300, 4, seed);
    case GraphFamily::kRmat:
      return graph::Rmat(256, 1500, graph::RmatConfig{}, seed);
    case GraphFamily::kSbm:
      return graph::StochasticBlockModel(
                 graph::SbmConfig{.num_nodes = 300, .num_classes = 3,
                                  .avg_degree = 10, .homophily = 0.7},
                 seed)
          .graph;
    case GraphFamily::kGrid:
      return graph::Grid(15, 20);
  }
  return CsrGraph(0);
}

std::string FamilyName(GraphFamily family) {
  switch (family) {
    case GraphFamily::kErdosRenyi: return "er";
    case GraphFamily::kBarabasiAlbert: return "ba";
    case GraphFamily::kRmat: return "rmat";
    case GraphFamily::kSbm: return "sbm";
    case GraphFamily::kGrid: return "grid";
  }
  return "?";
}

// ---------------------------------------------------------------- PPR --

class PprBoundSweep
    : public ::testing::TestWithParam<std::tuple<GraphFamily, double>> {};

TEST_P(PprBoundSweep, PushErrorWithinDegreeBoundEverywhere) {
  const auto [family, alpha] = GetParam();
  CsrGraph g = MakeGraph(family, 7);
  const double r_max = 1e-4;
  for (NodeId source : {NodeId(0), NodeId(13)}) {
    auto exact = ppr::PowerIterationPpr(g, source, alpha, 1e-12, 5000);
    auto push = ppr::ForwardPush(g, source, alpha, r_max);
    std::vector<double> approx(g.num_nodes(), 0.0);
    for (const auto& [v, mass] : push.estimate) approx[v] = mass;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const double bound =
          r_max * std::max<double>(1.0, static_cast<double>(g.OutDegree(v)));
      EXPECT_LE(std::fabs(exact[v] - approx[v]), bound + 1e-9)
          << FamilyName(family) << " alpha=" << alpha << " node " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndAlphas, PprBoundSweep,
    ::testing::Combine(::testing::Values(GraphFamily::kErdosRenyi,
                                         GraphFamily::kBarabasiAlbert,
                                         GraphFamily::kRmat,
                                         GraphFamily::kSbm,
                                         GraphFamily::kGrid),
                       ::testing::Values(0.1, 0.3, 0.6)));

// ------------------------------------------------------------ spectral --

class FilterRealizationSweep
    : public ::testing::TestWithParam<std::tuple<spectral::PolyBasis, int>> {};

TEST_P(FilterRealizationSweep, OperatorRealizesScalarResponseOnCycle) {
  // On a cycle (no self loops), cos(2*pi*j*u/n) is an exact eigenvector;
  // applying any polynomial filter must scale it by the scalar response.
  const auto [basis, degree] = GetParam();
  const int n = 24;
  CsrGraph g = graph::Cycle(n);
  graph::Propagator prop(g, graph::Normalization::kSymmetric, false);

  spectral::PolyFilter filter;
  filter.basis = basis;
  filter.jacobi_a = 0.5;
  filter.jacobi_b = 0.5;
  common::Rng rng(degree);
  filter.coeffs.resize(static_cast<size_t>(degree) + 1);
  for (double& c : filter.coeffs) c = rng.Uniform(-1.0, 1.0);

  for (int j : {1, 5, 9}) {
    tensor::Matrix v(n, 1);
    for (int u = 0; u < n; ++u) {
      v.at(u, 0) = static_cast<float>(std::cos(2.0 * M_PI * j * u / n));
    }
    const double lambda = 1.0 - std::cos(2.0 * M_PI * j / n);
    const double gain = spectral::EvaluateResponse(filter, lambda);
    tensor::Matrix filtered = spectral::ApplyFilter(prop, filter, v);
    for (int u = 0; u < n; ++u) {
      EXPECT_NEAR(filtered.at(u, 0), gain * v.at(u, 0), 2e-3)
          << "basis " << static_cast<int>(basis) << " degree " << degree
          << " mode " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BasesAndDegrees, FilterRealizationSweep,
    ::testing::Combine(::testing::Values(spectral::PolyBasis::kMonomialAdj,
                                         spectral::PolyBasis::kChebyshev,
                                         spectral::PolyBasis::kJacobi),
                       ::testing::Values(1, 3, 6, 10)));

// ------------------------------------------------------------ sampling --

class SamplerUnbiasednessSweep
    : public ::testing::TestWithParam<
          std::tuple<GraphFamily, sampling::SamplerKind>> {};

TEST_P(SamplerUnbiasednessSweep, OneLayerAggregationIsUnbiased) {
  const auto [family, kind] = GetParam();
  CsrGraph g = MakeGraph(family, 11);
  common::Rng rng(1);
  tensor::Matrix x = tensor::Matrix::Gaussian(g.num_nodes(), 3, 0, 1, &rng);
  std::vector<NodeId> seeds;
  for (NodeId u = 0; u < 20; ++u) seeds.push_back(u * 7);
  const int budget =
      kind == sampling::SamplerKind::kLayerWise ? 150 : 4;
  auto report = sampling::MeasureSamplerVariance(g, x, seeds, kind, budget,
                                                 800, 13);
  // Bias shrinks as 1/sqrt(trials * seeds * dims): 0.03 is ~4 sigma here
  // for node-wise/LABOR; layer-wise gets slack for its higher variance.
  const double tol =
      kind == sampling::SamplerKind::kLayerWise ? 0.08 : 0.03;
  EXPECT_NEAR(report.mean_bias, 0.0, tol) << FamilyName(family);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSamplers, SamplerUnbiasednessSweep,
    ::testing::Combine(::testing::Values(GraphFamily::kErdosRenyi,
                                         GraphFamily::kBarabasiAlbert,
                                         GraphFamily::kSbm),
                       ::testing::Values(sampling::SamplerKind::kNodeWise,
                                         sampling::SamplerKind::kLabor,
                                         sampling::SamplerKind::kLayerWise)));

// ----------------------------------------------------------- propagate --

class PropagatorSweep : public ::testing::TestWithParam<GraphFamily> {};

TEST_P(PropagatorSweep, RowNormalizedRowsSumToOneOnNonIsolatedNodes) {
  CsrGraph g = MakeGraph(GetParam(), 17);
  graph::Propagator prop(g, graph::Normalization::kRow, false);
  tensor::Matrix ones(g.num_nodes(), 1, 1.0f);
  tensor::Matrix out;
  prop.Apply(ones, &out);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.OutDegree(u) == 0) {
      EXPECT_FLOAT_EQ(out.at(u, 0), 0.0f);
    } else {
      EXPECT_NEAR(out.at(u, 0), 1.0, 1e-5) << FamilyName(GetParam());
    }
  }
}

TEST_P(PropagatorSweep, SymmetricOperatorIsSelfAdjoint) {
  // <S x, y> == <x, S y> for the kSymmetric normalisation.
  CsrGraph g = MakeGraph(GetParam(), 19);
  graph::Propagator prop(g, graph::Normalization::kSymmetric, true);
  common::Rng rng(2);
  tensor::Matrix x = tensor::Matrix::Gaussian(g.num_nodes(), 1, 0, 1, &rng);
  tensor::Matrix y = tensor::Matrix::Gaussian(g.num_nodes(), 1, 0, 1, &rng);
  tensor::Matrix sx, sy;
  prop.Apply(x, &sx);
  prop.Apply(y, &sy);
  double sx_y = 0.0, x_sy = 0.0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    sx_y += static_cast<double>(sx.at(u, 0)) * y.at(u, 0);
    x_sy += static_cast<double>(x.at(u, 0)) * sy.at(u, 0);
  }
  EXPECT_NEAR(sx_y, x_sy, 1e-3) << FamilyName(GetParam());
}

TEST_P(PropagatorSweep, SpectralRadiusAtMostOne) {
  // ||S x|| <= ||x|| for the symmetric normalisation (eigenvalues in
  // [-1, 1]); checked via repeated application.
  CsrGraph g = MakeGraph(GetParam(), 23);
  graph::Propagator prop(g, graph::Normalization::kSymmetric, true);
  common::Rng rng(3);
  tensor::Matrix x = tensor::Matrix::Gaussian(g.num_nodes(), 1, 0, 1, &rng);
  double prev = tensor::FrobeniusNorm(x);
  tensor::Matrix next;
  for (int k = 0; k < 5; ++k) {
    prop.Apply(x, &next);
    const double norm = tensor::FrobeniusNorm(next);
    EXPECT_LE(norm, prev * (1.0 + 1e-5)) << FamilyName(GetParam());
    x = std::move(next);
    prev = norm;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, PropagatorSweep,
                         ::testing::Values(GraphFamily::kErdosRenyi,
                                           GraphFamily::kBarabasiAlbert,
                                           GraphFamily::kRmat,
                                           GraphFamily::kSbm,
                                           GraphFamily::kGrid));

}  // namespace
}  // namespace sgnn
