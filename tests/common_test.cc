#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/counters.h"
#include "common/mpmc_queue.h"
#include "common/posix.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace sgnn::common {
namespace {

TEST(CheckDeathTest, ComparisonFailurePrintsBothOperands) {
  const int lhs = 3;
  const int rhs = 7;
  // The upgraded SGNN_CHECK_EQ captures and prints the operand values, not
  // just the stringified expression.
  EXPECT_DEATH(SGNN_CHECK_EQ(lhs, rhs), "lhs == rhs.*3 vs. 7");
  EXPECT_DEATH(SGNN_CHECK_GT(lhs * 2, rhs), "lhs \\* 2 > rhs.*6 vs. 7");
}

TEST(CheckDeathTest, OperandsEvaluatedExactlyOnce) {
  int calls = 0;
  auto next = [&calls] { return ++calls; };
  SGNN_CHECK_LT(next(), 10);
  EXPECT_EQ(calls, 1);
}

TEST(CheckDeathTest, StringOperandsPrint) {
  const std::string a = "alpha";
  const std::string b = "beta";
  EXPECT_DEATH(SGNN_CHECK_EQ(a, b), "alpha vs. beta");
}

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
}

TEST(StatusTest, EveryCodeHasADistinctNonNullName) {
  // Keep in sync with the last StatusCode enumerator.
  constexpr auto kLast = StatusCode::kAborted;
  std::set<std::string> names;
  for (int c = 0; c <= static_cast<int>(kLast); ++c) {
    const char* name = StatusCodeName(static_cast<StatusCode>(c));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "Unknown") << "code " << c;
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate name '" << name << "' for code " << c;
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kLast) + 1);
}

Status FailsThenUnreachable(bool fail, bool* reached_end) {
  SGNN_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
  *reached_end = true;
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroShortCircuits) {
  bool reached = false;
  Status s = FailsThenUnreachable(true, &reached);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(reached);
  s = FailsThenUnreachable(false, &reached);
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(reached);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(1000), b.UniformInt(1000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(1 << 30) == b.UniformInt(1 << 30)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Uniform(-2.0, 5.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.rbegin(), 4u);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(5);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(9);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Gaussian(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(13);
  for (uint64_t n : {10ULL, 100ULL, 1000ULL}) {
    for (uint64_t k : std::vector<uint64_t>{0, 1, 5, n / 2, n}) {
      auto sample = rng.SampleWithoutReplacement(n, k);
      EXPECT_EQ(sample.size(), k);
      std::set<uint64_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), k);
      for (uint64_t v : sample) EXPECT_LT(v, n);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementIsUniformish) {
  // Each element of [0,20) should appear in a 10-sample about half the time.
  std::vector<int> counts(20, 0);
  const int reps = 4000;
  Rng rng(17);
  for (int r = 0; r < reps; ++r) {
    for (uint64_t v : rng.SampleWithoutReplacement(20, 10)) counts[v]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / reps, 0.5, 0.05);
  }
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(21);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) counts[rng.Categorical(w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / trials, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / trials, 0.75, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  auto copy = v;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, sorted);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(31);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.UniformInt(1 << 30) == child.UniformInt(1 << 30)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(CountersTest, AcquireReleaseTracksPeak) {
  OpCounters c;
  c.Acquire(100);
  c.Acquire(50);
  EXPECT_EQ(c.peak_resident_floats, 150u);
  c.Release(120);
  EXPECT_EQ(c.resident_floats, 30u);
  c.Acquire(10);
  EXPECT_EQ(c.peak_resident_floats, 150u);  // Peak unchanged.
  c.Release(1000);                          // Over-release clamps to zero.
  EXPECT_EQ(c.resident_floats, 0u);
}

TEST(CountersTest, ScopedDeltaMeasuresOnlyScope) {
  GlobalCounters().Reset();
  GlobalCounters().edges_touched = 10;
  ScopedCounterDelta scope;
  GlobalCounters().edges_touched += 7;
  EXPECT_EQ(scope.Delta().edges_touched, 7u);
}

TEST(CountersTest, ToStringMentionsFields) {
  OpCounters c;
  c.edges_touched = 3;
  EXPECT_NE(c.ToString().find("edges_touched=3"), std::string::npos);
}

TEST(CountersTest, AggregateSumsAcrossThreads) {
  const OpCounters before = AggregateThreadCounters();
  const uint64_t kPerThread = 1000;
  const int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([kPerThread] {
      // Each thread increments its own thread-local instance.
      for (uint64_t i = 0; i < kPerThread; ++i) {
        GlobalCounters().edges_touched += 1;
        GlobalCounters().floats_moved += 2;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const OpCounters after = AggregateThreadCounters();
  // Joined threads retire their totals, so the delta is exact.
  EXPECT_EQ(after.edges_touched - before.edges_touched,
            kPerThread * kThreads);
  EXPECT_EQ(after.floats_moved - before.floats_moved,
            2 * kPerThread * kThreads);
}

TEST(CountersTest, ThreadsObservePrivateCounters) {
  const uint64_t main_edges = GlobalCounters().edges_touched;
  std::thread worker([] { GlobalCounters().edges_touched += 12345; });
  worker.join();
  // The worker's increments never show up in this thread's instance.
  EXPECT_EQ(GlobalCounters().edges_touched, main_edges);
}

TEST(MpmcQueueTest, RejectsWhenFullAcceptsAfterPop) {
  BoundedMpmcQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1).ok());
  EXPECT_TRUE(queue.TryPush(2).ok());
  Status full = queue.TryPush(3);
  EXPECT_EQ(full.code(), StatusCode::kUnavailable);
  int out = 0;
  EXPECT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.TryPush(3).ok());
  EXPECT_EQ(queue.size(), 2u);
}

TEST(MpmcQueueTest, CloseRejectsPushesButDrains) {
  BoundedMpmcQueue<int> queue(4);
  ASSERT_TRUE(queue.TryPush(7).ok());
  queue.Close();
  EXPECT_EQ(queue.TryPush(8).code(), StatusCode::kFailedPrecondition);
  int out = 0;
  EXPECT_TRUE(queue.WaitPop(&out, std::chrono::milliseconds(10)));
  EXPECT_EQ(out, 7);
  // Closed and drained: WaitPop returns immediately, not after timeout.
  WallTimer timer;
  EXPECT_FALSE(queue.WaitPop(&out, std::chrono::seconds(10)));
  EXPECT_LT(timer.Seconds(), 5.0);
}

TEST(MpmcQueueTest, WaitPopTimesOutWhenEmpty) {
  BoundedMpmcQueue<int> queue(1);
  int out = 0;
  EXPECT_FALSE(queue.WaitPop(&out, std::chrono::milliseconds(5)));
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  std::atomic<int> sum{0};
  {
    ThreadPool pool(4);
    for (int i = 1; i <= 100; ++i) {
      pool.Submit([&sum, i] { sum.fetch_add(i); });
    }
    pool.WaitIdle();
    EXPECT_EQ(sum.load(), 5050);
  }  // Destructor joins cleanly.
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  ThreadPool pool(1);
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.Shutdown();  // Must run everything already submitted.
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, ResizeDrainsAndPreservesCumulativeStats) {
  std::atomic<int> ran{0};
  ThreadPool pool(2);
  for (int i = 0; i < 30; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.Resize(5);
  // Resize drained the queue: everything submitted before it already ran.
  EXPECT_EQ(ran.load(), 30);
  EXPECT_EQ(pool.num_threads(), 5);
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 50);
  // Cumulative counts are exact across the resize — submitted/executed
  // carry over, nothing is lost or double-counted.
  const ThreadPoolStats stats = pool.Stats();
  EXPECT_EQ(stats.submitted, 50u);
  EXPECT_EQ(stats.executed, 50u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.active, 0);
  pool.Resize(5);  // Same size: a no-op, counts untouched.
  EXPECT_EQ(pool.Stats().submitted, 50u);
  pool.Resize(1);  // Shrinking works too.
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> more{0};
  pool.Submit([&more] { more.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(more.load(), 1);
  EXPECT_EQ(pool.Stats().executed, 51u);
}

TEST(TimerTest, MeasuresForwardTime) {
  WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  EXPECT_GE(t.Seconds(), 0.0);
  EXPECT_GE(t.Millis(), t.Seconds());  // ms >= s numerically for t>0
}

// ------------------------------------------------------------ posix helpers

TEST(PosixStatusTest, ErrnoValuesMapOntoTheStatusTaxonomy) {
  EXPECT_EQ(StatusFromErrno("x", EPIPE).code(), StatusCode::kUnavailable);
  EXPECT_EQ(StatusFromErrno("x", ECONNRESET).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(StatusFromErrno("x", ENOENT).code(), StatusCode::kNotFound);
  EXPECT_EQ(StatusFromErrno("x", ETIMEDOUT).code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(StatusFromErrno("x", ENOSPC).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(StatusFromErrno("x", EMFILE).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(StatusFromErrno("x", EACCES).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(StatusFromErrno("x", EINVAL).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(StatusFromErrno("x", EIO).code(), StatusCode::kIOError);
  const Status s = StatusFromErrno("opening /tmp/zzz", ENOENT);
  EXPECT_NE(s.ToString().find("opening /tmp/zzz"), std::string::npos);
}

TEST(PosixStatusTest, OverloadReadsTheCallingThreadsErrno) {
  errno = EPIPE;
  EXPECT_EQ(StatusFromErrno("send").code(), StatusCode::kUnavailable);
}

TEST(PosixIoTest, WriteFullThenReadFullRoundTrips) {
  // tmpfile()/fileno() keeps the test inside the stdio wrappers the
  // determinism lint allows tree-wide (raw open()/pipe() are confined).
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  const int fd = fileno(f);
  std::string data(70'000, '\0');
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i * 131 % 251);
  }
  ASSERT_TRUE(WriteFull(fd, data.data(), data.size()).ok());
  ASSERT_EQ(lseek(fd, 0, SEEK_SET), 0);
  std::string got(data.size(), '\0');
  size_t bytes_read = 0;
  ASSERT_TRUE(ReadFull(fd, got.data(), got.size(), &bytes_read).ok());
  EXPECT_EQ(bytes_read, data.size());
  EXPECT_EQ(got, data);
  std::fclose(f);
}

TEST(PosixIoTest, ShortStreamIsDataLossWithByteAccounting) {
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  const int fd = fileno(f);
  const char payload[10] = "123456789";
  ASSERT_TRUE(WriteFull(fd, payload, 10).ok());
  ASSERT_EQ(lseek(fd, 0, SEEK_SET), 0);
  char buf[16];
  size_t bytes_read = 0;
  const Status s = ReadFull(fd, buf, sizeof(buf), &bytes_read);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(bytes_read, 10u);  // The framing layer sees a *torn* frame.
  EXPECT_NE(s.ToString().find("10/16"), std::string::npos) << s.ToString();
  std::fclose(f);
}

TEST(PosixIoTest, CleanEofReadsZeroBytes) {
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  char buf[8];
  size_t bytes_read = 99;
  const Status s = ReadFull(fileno(f), buf, sizeof(buf), &bytes_read);
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(bytes_read, 0u);  // A peer that closed *between* frames.
  std::fclose(f);
}

TEST(PosixIoTest, BadDescriptorMapsThroughErrno) {
  char buf[4] = {0};
  EXPECT_EQ(ReadFull(-1, buf, sizeof(buf)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(WriteFull(-1, buf, sizeof(buf)).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sgnn::common
