#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "graph/generators.h"
#include "partition/partition.h"

namespace sgnn::partition {
namespace {

using graph::CsrGraph;
using graph::NodeId;

void CheckValidPartition(const Partition& p, NodeId n, int k) {
  ASSERT_EQ(p.k, k);
  ASSERT_EQ(p.part_of.size(), static_cast<size_t>(n));
  for (int part : p.part_of) {
    EXPECT_GE(part, 0);
    EXPECT_LT(part, k);
  }
}

class PartitionerSweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(PartitionerSweep, AllPartitionersProduceValidBalancedPartitions) {
  const auto [k, seed] = GetParam();
  auto sbm = graph::StochasticBlockModel(
      graph::SbmConfig{.num_nodes = 600, .num_classes = 4, .avg_degree = 10,
                       .homophily = 0.8},
      seed);
  const CsrGraph& g = sbm.graph;
  for (auto [name, p] : std::vector<std::pair<const char*, Partition>>{
           {"random", RandomPartition(g, k, seed)},
           {"ldg", LdgPartition(g, k, 1.1, seed)},
           {"fennel", FennelPartition(g, k, 1.5, seed)},
           {"multilevel",
            MultilevelPartition(g, k, MultilevelConfig{}, seed)}}) {
    CheckValidPartition(p, g.num_nodes(), k);
    PartitionQuality q = EvaluatePartition(g, p);
    // Random partitions balance statistically; streaming/multilevel are
    // capacity-capped. Allow generous slack for the random baseline.
    EXPECT_LT(q.imbalance, 1.5) << name << " k=" << k;
    EXPECT_GE(q.edge_cut, 0) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    KAndSeed, PartitionerSweep,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values(1ULL, 7ULL)));

TEST(EvaluatePartitionTest, HandComputedCut) {
  // Path 0-1-2-3 split {0,1} | {2,3}: one cut edge (1,2).
  CsrGraph g = graph::Path(4);
  Partition p{{0, 0, 1, 1}, 2};
  PartitionQuality q = EvaluatePartition(g, p);
  EXPECT_EQ(q.edge_cut, 1);
  EXPECT_EQ(q.comm_volume, 2);  // Nodes 1 and 2 each see one remote part.
  EXPECT_DOUBLE_EQ(q.imbalance, 1.0);
}

TEST(EvaluatePartitionTest, AllInOnePartHasZeroCut) {
  CsrGraph g = graph::Complete(6);
  Partition p{std::vector<int>(6, 0), 2};
  PartitionQuality q = EvaluatePartition(g, p);
  EXPECT_EQ(q.edge_cut, 0);
  EXPECT_EQ(q.comm_volume, 0);
  EXPECT_DOUBLE_EQ(q.imbalance, 2.0);  // One part holds everything.
}

TEST(LdgTest, BeatsRandomOnCommunityGraph) {
  auto sbm = graph::StochasticBlockModel(
      graph::SbmConfig{.num_nodes = 1000, .num_classes = 4, .avg_degree = 12,
                       .homophily = 0.9},
      3);
  auto random = EvaluatePartition(sbm.graph,
                                  RandomPartition(sbm.graph, 4, 5));
  auto ldg = EvaluatePartition(sbm.graph, LdgPartition(sbm.graph, 4, 1.1, 5));
  EXPECT_LT(ldg.edge_cut, random.edge_cut);
}

TEST(FennelTest, BeatsRandomOnCommunityGraph) {
  auto sbm = graph::StochasticBlockModel(
      graph::SbmConfig{.num_nodes = 1000, .num_classes = 4, .avg_degree = 12,
                       .homophily = 0.9},
      9);
  auto random = EvaluatePartition(sbm.graph,
                                  RandomPartition(sbm.graph, 4, 11));
  auto fennel =
      EvaluatePartition(sbm.graph, FennelPartition(sbm.graph, 4, 1.5, 11));
  EXPECT_LT(fennel.edge_cut, random.edge_cut);
}

TEST(MultilevelTest, RecoversPlantedCommunities) {
  // With strong homophily and k = #classes, the multilevel cut should be a
  // small fraction of the random cut.
  auto sbm = graph::StochasticBlockModel(
      graph::SbmConfig{.num_nodes = 2000, .num_classes = 4, .avg_degree = 16,
                       .homophily = 0.95},
      13);
  auto random = EvaluatePartition(sbm.graph,
                                  RandomPartition(sbm.graph, 4, 17));
  auto ml = EvaluatePartition(
      sbm.graph, MultilevelPartition(sbm.graph, 4, MultilevelConfig{}, 17));
  EXPECT_LT(ml.edge_cut, random.edge_cut / 3);
  EXPECT_LT(ml.imbalance, 1.2);
}

TEST(MultilevelTest, BeatsStreamingOnAverage) {
  auto sbm = graph::StochasticBlockModel(
      graph::SbmConfig{.num_nodes = 1500, .num_classes = 8, .avg_degree = 14,
                       .homophily = 0.9},
      19);
  int64_t ml_total = 0, ldg_total = 0;
  for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    ml_total += EvaluatePartition(sbm.graph,
                                  MultilevelPartition(sbm.graph, 8,
                                                      MultilevelConfig{}, seed))
                    .edge_cut;
    ldg_total += EvaluatePartition(sbm.graph,
                                   LdgPartition(sbm.graph, 8, 1.1, seed))
                     .edge_cut;
  }
  EXPECT_LE(ml_total, ldg_total);
}

TEST(MultilevelTest, WorksOnTinyGraphs) {
  CsrGraph g = graph::Cycle(8);
  Partition p = MultilevelPartition(g, 2, MultilevelConfig{}, 1);
  CheckValidPartition(p, 8, 2);
  // Optimal 2-cut of a cycle is 2.
  EXPECT_LE(EvaluatePartition(g, p).edge_cut, 4);
}

TEST(MultilevelTest, DeterministicGivenSeed) {
  CsrGraph g = graph::ErdosRenyi(400, 1600, 21);
  Partition a = MultilevelPartition(g, 4, MultilevelConfig{}, 99);
  Partition b = MultilevelPartition(g, 4, MultilevelConfig{}, 99);
  EXPECT_EQ(a.part_of, b.part_of);
}

TEST(ClusterBatchesTest, CoversAllNodesExactlyOnce) {
  auto sbm = graph::StochasticBlockModel(
      graph::SbmConfig{.num_nodes = 300, .num_classes = 3, .avg_degree = 8,
                       .homophily = 0.8},
      23);
  Partition p = LdgPartition(sbm.graph, 6, 1.1, 25);
  auto batches = ClusterBatches(p, 2, 27);
  EXPECT_EQ(batches.size(), 3u);
  std::set<NodeId> seen;
  for (const auto& batch : batches) {
    EXPECT_TRUE(std::is_sorted(batch.begin(), batch.end()));
    for (NodeId u : batch) EXPECT_TRUE(seen.insert(u).second);
  }
  EXPECT_EQ(seen.size(), 300u);
}

TEST(ClusterBatchesTest, SingleGroupReturnsWholeGraph) {
  CsrGraph g = graph::Cycle(12);
  Partition p = RandomPartition(g, 3, 1);
  auto batches = ClusterBatches(p, 3, 2);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].size(), 12u);
}

}  // namespace
}  // namespace sgnn::partition
