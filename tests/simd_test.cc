// The simd bit-identity matrix: every kernel converted to the
// `sgnn::simd` microkernel substrate must produce byte-identical output
// with the vector backend and the portable scalar fallback, at any thread
// count, on ragged sizes (lengths that are not multiples of the lane
// width, empty rows, single-element tails). On a CPU without AVX2 the
// backend sweep degenerates to scalar-vs-scalar and every comparison still
// holds, so the suite is meaningful on every machine the CI matrix covers.

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/counters.h"
#include "common/rng.h"
#include "graph/coo.h"
#include "graph/csr_graph.h"
#include "graph/generators.h"
#include "graph/propagate.h"
#include "par/par.h"
#include "simd/simd.h"
#include "storage/ooc.h"
#include "storage/shard_writer.h"
#include "storage/sharded_graph.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"

namespace sgnn {
namespace {

using graph::CsrGraph;
using graph::NodeId;
using graph::Normalization;
using tensor::Matrix;

/// Ragged lengths: below one 8-lane vector, exactly one vector, vector
/// plus a 1..7-element tail, around the dot kernel's 4-lane width, and a
/// couple of long sizes with tails.
const int64_t kRaggedSizes[] = {1, 2, 3, 4, 5, 7, 8, 9, 12, 15, 16, 17,
                                31, 33, 63, 64, 65, 100, 257, 1000, 1003};

Matrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Matrix m(rows, cols);
  common::Rng rng(seed);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  return m;
}

std::vector<float> RandomVec(int64_t n, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return v;
}

bool BytesEqual(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.size()) * sizeof(float)) == 0;
}

bool BytesEqual(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Restores the backend and thread count a test toggles.
class SimdTest : public ::testing::Test {
 protected:
  void TearDown() override {
    simd::SetEnabled(true);
    par::SetThreads(1);
  }
};

TEST_F(SimdTest, DispatchAndEnvParsing) {
  // SetEnabled round-trips and reports the previous state.
  const bool was = simd::SetEnabled(false);
  EXPECT_FALSE(simd::Enabled());
  EXPECT_STREQ(simd::Active().name, "scalar");
  EXPECT_FALSE(simd::SetEnabled(true));
  EXPECT_EQ(simd::Enabled(), simd::Supported());
  if (simd::Supported()) {
    EXPECT_STREQ(simd::Active().name, "avx2");
  }
  simd::SetEnabled(was);

  // SGNN_SIMD value parsing (case-insensitive disable spellings).
  EXPECT_FALSE(simd::SimdFromEnv("off", true));
  EXPECT_FALSE(simd::SimdFromEnv("OFF", true));
  EXPECT_FALSE(simd::SimdFromEnv("0", true));
  EXPECT_FALSE(simd::SimdFromEnv("false", true));
  EXPECT_FALSE(simd::SimdFromEnv("scalar", true));
  EXPECT_TRUE(simd::SimdFromEnv(nullptr, true));
  EXPECT_FALSE(simd::SimdFromEnv("", false));
  EXPECT_TRUE(simd::SimdFromEnv("on", false));
  EXPECT_TRUE(simd::SimdFromEnv("auto", false));
}

// Every microkernel in the table, scalar vs vector, over the ragged sweep.
TEST_F(SimdTest, MicrokernelsBitIdenticalAcrossBackends) {
  simd::SetEnabled(false);
  const simd::KernelTable scalar = simd::Active();
  simd::SetEnabled(true);
  const simd::KernelTable vec = simd::Active();
  for (const int64_t n : kRaggedSizes) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const std::vector<float> x = RandomVec(n, 100 + static_cast<uint64_t>(n));
    const std::vector<float> y0 = RandomVec(n, 200 + static_cast<uint64_t>(n));
    // Mix signed zeros and exact zeros into the relu/max operands.
    std::vector<float> edgy = y0;
    if (n > 1) edgy[static_cast<size_t>(n / 2)] = -0.0f;
    if (n > 2) edgy[static_cast<size_t>(n / 3)] = 0.0f;

    auto check = [&](auto&& apply) {
      std::vector<float> a = y0, b = y0;
      apply(scalar, a);
      apply(vec, b);
      EXPECT_TRUE(BytesEqual(a, b));
    };
    check([&](const simd::KernelTable& kt, std::vector<float>& y) {
      kt.axpy(0.75f, x.data(), y.data(), n);
    });
    check([&](const simd::KernelTable& kt, std::vector<float>& y) {
      kt.scale(1.3f, y.data(), n);
    });
    check([&](const simd::KernelTable& kt, std::vector<float>& y) {
      kt.mul(x.data(), y.data(), n);
    });
    check([&](const simd::KernelTable& kt, std::vector<float>& y) {
      kt.add(x.data(), y.data(), n);
    });
    check([&](const simd::KernelTable& kt, std::vector<float>& y) {
      kt.add_scalar(-0.4f, y.data(), n);
    });
    check([&](const simd::KernelTable& kt, std::vector<float>& y) {
      y = edgy;
      kt.relu(y.data(), n);
    });
    check([&](const simd::KernelTable& kt, std::vector<float>& y) {
      kt.relu_backward(edgy.data(), y.data(), n);
    });

    const float mx_s = scalar.max(edgy.data(), n);
    const float mx_v = vec.max(edgy.data(), n);
    EXPECT_EQ(std::memcmp(&mx_s, &mx_v, sizeof(float)), 0);

    const double dot_s = scalar.dot(x.data(), y0.data(), n);
    const double dot_v = vec.dot(x.data(), y0.data(), n);
    EXPECT_EQ(std::memcmp(&dot_s, &dot_v, sizeof(double)), 0);
  }
}

// The converted tensor kernels: {simd on, off} x {1, 8 threads} must all
// agree byte for byte, on shapes with ragged columns.
TEST_F(SimdTest, ConvertedTensorOpsBitIdentical) {
  // 37 columns: four full 8-lane vectors plus a 5-element tail per row.
  auto run_all = [](bool simd_on, int threads) {
    simd::SetEnabled(simd_on);
    par::SetThreads(threads);
    Matrix m = RandomMatrix(113, 37, 11);
    const Matrix other = RandomMatrix(113, 37, 12);
    const std::vector<float> bias = RandomVec(37, 13);
    tensor::Axpy(0.5f, other, &m);
    tensor::Scale(1.25f, &m);
    tensor::Hadamard(other, &m);
    tensor::AddBiasRow(bias, &m);
    tensor::Relu(&m);
    tensor::ReluBackward(other, &m);
    tensor::SoftmaxRows(&m);
    tensor::LogSoftmaxRows(&m);
    tensor::NormalizeRows(2, &m);
    tensor::NormalizeRows(1, &m);
    return m;
  };
  const Matrix reference = run_all(false, 1);
  for (const bool simd_on : {false, true}) {
    for (const int threads : {1, 8}) {
      SCOPED_TRACE(std::string("simd=") + (simd_on ? "on" : "off") +
                   " threads=" + std::to_string(threads));
      EXPECT_TRUE(BytesEqual(reference, run_all(simd_on, threads)));
    }
  }
}

// Single-column matrices exercise the all-tail path of every row kernel.
TEST_F(SimdTest, SingleElementRowsBitIdentical) {
  auto run = [](bool simd_on) {
    simd::SetEnabled(simd_on);
    Matrix m = RandomMatrix(64, 1, 21);
    tensor::SoftmaxRows(&m);
    tensor::LogSoftmaxRows(&m);
    tensor::NormalizeRows(2, &m);
    tensor::Relu(&m);
    return m;
  };
  EXPECT_TRUE(BytesEqual(run(false), run(true)));
}

TEST_F(SimdTest, GemmFamilyBitIdentical) {
  // Ragged inner and outer dimensions; a carries zeros so Gemm's zero-skip
  // path runs too.
  Matrix a = RandomMatrix(37, 33, 31);
  for (int64_t i = 0; i < a.size(); i += 3) a.data()[i] = 0.0f;
  const Matrix b = RandomMatrix(33, 29, 32);
  const Matrix at = tensor::Transpose(a);
  const Matrix bt = tensor::Transpose(b);
  auto run = [&](bool simd_on, int threads) {
    simd::SetEnabled(simd_on);
    par::SetThreads(threads);
    Matrix c, cta, ctb;
    tensor::Gemm(a, b, &c);
    tensor::GemmTransposeA(at, b, &cta);
    tensor::GemmTransposeB(a, bt, &ctb);
    Matrix joined = tensor::ConcatCols(tensor::ConcatCols(c, cta), ctb);
    return joined;
  };
  const Matrix reference = run(false, 1);
  for (const bool simd_on : {false, true}) {
    for (const int threads : {1, 8}) {
      SCOPED_TRACE(std::string("simd=") + (simd_on ? "on" : "off") +
                   " threads=" + std::to_string(threads));
      EXPECT_TRUE(BytesEqual(reference, run(simd_on, threads)));
    }
  }
}

TEST_F(SimdTest, TiledTransposeMatchesNaive) {
  // 70x45 spans multiple 32x32 tiles with ragged edges in both dimensions.
  const Matrix m = RandomMatrix(70, 45, 41);
  const Matrix t = tensor::Transpose(m);
  ASSERT_EQ(t.rows(), 45);
  ASSERT_EQ(t.cols(), 70);
  for (int64_t r = 0; r < m.rows(); ++r) {
    for (int64_t c = 0; c < m.cols(); ++c) {
      const float tv = t.at(c, r), mv = m.at(r, c);
      ASSERT_EQ(std::memcmp(&tv, &mv, sizeof(float)), 0);
    }
  }
  EXPECT_TRUE(BytesEqual(m, tensor::Transpose(t)));
}

// SpMM: a skewed graph with a feature width that engages the cache-blocked
// row-panel schedule (cols > 128, and 160 is 2.5 column blocks), plus a
// narrow width on the unblocked path, across backends and thread counts.
TEST_F(SimdTest, PropagatorApplyBitIdentical) {
  const CsrGraph g = graph::BarabasiAlbert(500, 6, 42);
  for (const int64_t cols : {17L, 160L}) {
    const Matrix x = RandomMatrix(g.num_nodes(), cols, 50 + cols);
    auto run = [&](bool simd_on, int threads) {
      simd::SetEnabled(simd_on);
      par::SetThreads(threads);
      graph::Propagator prop(g, Normalization::kSymmetric,
                             /*add_self_loops=*/true);
      Matrix out;
      prop.Apply(x, &out);
      Matrix out_t;
      prop.ApplyTranspose(x, &out_t);
      return tensor::ConcatCols(out, out_t);
    };
    const Matrix reference = run(false, 1);
    for (const bool simd_on : {false, true}) {
      for (const int threads : {1, 8}) {
        SCOPED_TRACE("cols=" + std::to_string(cols) + " simd=" +
                     (simd_on ? std::string("on") : std::string("off")) +
                     " threads=" + std::to_string(threads));
        EXPECT_TRUE(BytesEqual(reference, run(simd_on, threads)));
      }
    }
  }
}

// Empty rows (isolated nodes) and single-edge rows through the blocked
// schedule: panels must handle zero-degree rows without skipping billing
// or touching their output.
TEST_F(SimdTest, PropagatorHandlesIsolatedNodes) {
  std::vector<graph::Edge> edges;
  // Nodes 0..9; node 3 and 7 isolated; node 0 is a small hub.
  for (NodeId v : {1u, 2u, 4u, 5u, 6u, 8u, 9u}) {
    edges.push_back({0, v, 1.0f});
    edges.push_back({v, 0, 1.0f});
  }
  edges.push_back({5, 6, 2.0f});
  const CsrGraph g = CsrGraph::FromEdges(10, edges);
  const Matrix x = RandomMatrix(10, 200, 61);  // Engages the blocked path.
  auto run = [&](bool simd_on) {
    simd::SetEnabled(simd_on);
    graph::Propagator prop(g, Normalization::kRow, /*add_self_loops=*/false);
    Matrix out;
    prop.Apply(x, &out);
    return out;
  };
  const Matrix scalar_out = run(false);
  EXPECT_TRUE(BytesEqual(scalar_out, run(true)));
  // Isolated nodes propagate nothing: their output rows stay zero.
  for (int64_t c = 0; c < scalar_out.cols(); ++c) {
    EXPECT_EQ(scalar_out.at(3, c), 0.0f);
    EXPECT_EQ(scalar_out.at(7, c), 0.0f);
  }
}

// The out-of-core SpMM must match the in-memory propagator byte for byte
// on both backends, including under a budget that forces eviction.
TEST_F(SimdTest, OocPropagatorBitIdenticalToInMemory) {
  const CsrGraph g = graph::ErdosRenyi(300, 2400, 77);
  const Matrix x = RandomMatrix(g.num_nodes(), 24, 78);
  Matrix want;
  {
    simd::SetEnabled(false);
    graph::Propagator prop(g, Normalization::kSymmetric,
                           /*add_self_loops=*/true);
    prop.Apply(x, &want);
  }
  const std::string dir = ::testing::TempDir() + "/sgnn_simd_ooc";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(storage::WriteShardedGraph(
                  g, storage::ShardPlan::Contiguous(g, 5), dir)
                  .ok());
  for (const bool simd_on : {false, true}) {
    for (const int threads : {1, 8}) {
      SCOPED_TRACE(std::string("simd=") + (simd_on ? "on" : "off") +
                   " threads=" + std::to_string(threads));
      simd::SetEnabled(simd_on);
      par::SetThreads(threads);
      auto open_or = storage::ShardedGraph::Open(dir);
      ASSERT_TRUE(open_or.ok()) << open_or.status().message();
      auto prop_or = storage::OocPropagator::Create(
          open_or.value().get(), Normalization::kSymmetric,
          /*add_self_loops=*/true);
      ASSERT_TRUE(prop_or.ok()) << prop_or.status().message();
      Matrix out;
      ASSERT_TRUE(prop_or.value().Apply(x, &out).ok());
      EXPECT_TRUE(BytesEqual(want, out));
    }
  }
}

// Byte accounting is a pure function of the workload: identical at any
// thread count and on either backend, and exactly the documented formula
// for a dense kernel.
TEST_F(SimdTest, ByteAccountingExactAndInvariant) {
  const Matrix other = RandomMatrix(100, 37, 91);
  // Axpy over s scalars: reads both operands, writes one — 8s bytes read,
  // 4s written, exactly, regardless of how par shards the range.
  const uint64_t s = static_cast<uint64_t>(other.size());
  uint64_t want_read = 8 * s, want_written = 4 * s;
  for (const bool simd_on : {false, true}) {
    for (const int threads : {1, 8}) {
      SCOPED_TRACE(std::string("simd=") + (simd_on ? "on" : "off") +
                   " threads=" + std::to_string(threads));
      simd::SetEnabled(simd_on);
      par::SetThreads(threads);
      Matrix m = RandomMatrix(100, 37, 90);
      common::ScopedCounterDelta scope;
      tensor::Axpy(0.5f, other, &m);
      EXPECT_EQ(scope.Delta().bytes_read, want_read);
      EXPECT_EQ(scope.Delta().bytes_written, want_written);
    }
  }

  // Dense Gemm(m x k, k x n): every a element survives the zero-skip, so
  // the bill is the scan (m*k reads) plus m*k axpys over n.
  const int64_t gm = 23, gk = 17, gn = 13;
  Matrix a(gm, gk), b(gk, gn);
  for (int64_t i = 0; i < a.size(); ++i) a.data()[i] = 1.0f;
  for (int64_t i = 0; i < b.size(); ++i) b.data()[i] = 2.0f;
  want_read = 4u * (static_cast<uint64_t>(gm * gk) +
                    static_cast<uint64_t>(gm * gk) * 2u * gn);
  want_written = 4u * static_cast<uint64_t>(gm * gk) * gn;
  for (const int threads : {1, 8}) {
    par::SetThreads(threads);
    Matrix c;
    common::ScopedCounterDelta scope;
    tensor::Gemm(a, b, &c);
    EXPECT_EQ(scope.Delta().bytes_read, want_read) << threads;
    EXPECT_EQ(scope.Delta().bytes_written, want_written) << threads;
  }

  // SpMM bills the same bytes at any thread count and on both backends
  // (formula is degree-dependent, so pin invariance rather than a closed
  // form).
  const CsrGraph g = graph::BarabasiAlbert(400, 5, 17);
  const Matrix x = RandomMatrix(g.num_nodes(), 160, 92);
  uint64_t ref_read = 0, ref_written = 0;
  for (const bool simd_on : {false, true}) {
    for (const int threads : {1, 8}) {
      SCOPED_TRACE(std::string("simd=") + (simd_on ? "on" : "off") +
                   " threads=" + std::to_string(threads));
      simd::SetEnabled(simd_on);
      par::SetThreads(threads);
      graph::Propagator prop(g, Normalization::kSymmetric,
                             /*add_self_loops=*/true);
      Matrix out;
      common::ScopedCounterDelta scope;
      prop.Apply(x, &out);
      if (ref_read == 0) {
        ref_read = scope.Delta().bytes_read;
        ref_written = scope.Delta().bytes_written;
        EXPECT_GT(ref_read, 0u);
        EXPECT_GT(ref_written, 0u);
      } else {
        EXPECT_EQ(scope.Delta().bytes_read, ref_read);
        EXPECT_EQ(scope.Delta().bytes_written, ref_written);
      }
    }
  }
}

}  // namespace
}  // namespace sgnn
